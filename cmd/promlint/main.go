// promlint validates Prometheus text exposition (version 0.0.4) read
// from stdin or the files named on the command line: every sample must
// parse, every family must declare its TYPE before its samples, and
// histogram bucket series must be cumulative with a +Inf bucket that
// matches _count. Exit status 0 means every input page is well-formed;
// 1 means at least one is not (the first error per input prints to
// stderr). CI pipes /metrics scrapes through it so a malformed
// exposition fails the build instead of silently breaking scrapers.
//
//	Usage: curl -s http://127.0.0.1:7070/metrics | promlint
//	       promlint page1.prom page2.prom
package main

import (
	"fmt"
	"os"

	"pdp/internal/telemetry"
)

func main() {
	if len(os.Args) < 2 {
		if err := telemetry.LintProm(os.Stdin); err != nil {
			fmt.Fprintf(os.Stderr, "promlint: stdin: %v\n", err)
			os.Exit(1)
		}
		return
	}
	bad := false
	for _, path := range os.Args[1:] {
		f, err := os.Open(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "promlint: %v\n", err)
			bad = true
			continue
		}
		err = telemetry.LintProm(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "promlint: %s: %v\n", path, err)
			bad = true
		}
	}
	if bad {
		os.Exit(1)
	}
}
