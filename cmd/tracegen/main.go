// Command tracegen exports a synthetic benchmark model as a binary trace
// file (the tracefile format), so the workloads can feed external tools —
// or be archived and replayed bit-identically with `pdpsim -trace`.
//
// Usage:
//
//	tracegen -bench 436.cactusADM -n 1000000 -o cactus.pdpt
package main

import (
	"flag"
	"fmt"
	"os"

	"pdp/internal/trace"
	"pdp/internal/tracefile"
	"pdp/internal/workload"
)

func main() {
	bench := flag.String("bench", "436.cactusADM", "benchmark model name (see pdpsim -list)")
	n := flag.Int("n", 1_000_000, "number of accesses")
	out := flag.String("o", "", "output file (default <bench>.pdpt)")
	sets := flag.Int("sets", 2048, "target LLC sets the model is built for")
	seed := flag.Uint64("seed", 42, "random seed")
	flag.Parse()

	// Validate at the flag boundary: bad parameters get a usage error here
	// instead of a raw panic from deep inside a generator constructor.
	if *n <= 0 {
		fmt.Fprintf(os.Stderr, "-n must be positive, got %d\n", *n)
		os.Exit(2)
	}
	if *sets <= 0 {
		fmt.Fprintf(os.Stderr, "-sets must be positive, got %d\n", *sets)
		os.Exit(2)
	}

	b, ok := workload.ByName(*bench)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown benchmark %q\n", *bench)
		os.Exit(2)
	}
	path := *out
	if path == "" {
		path = b.Name + ".pdpt"
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer f.Close()

	w, err := tracefile.NewWriter(f)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	// Generator constructors panic on invalid parameters; turn any
	// remaining one into a usage error rather than a stack trace.
	var g trace.Generator
	func() {
		defer func() {
			if v := recover(); v != nil {
				fmt.Fprintf(os.Stderr, "building %s generator: %v\n", b.Name, v)
				os.Exit(2)
			}
		}()
		g = b.Generator(*sets, 1, *seed)
	}()
	for i := 0; i < *n; i++ {
		if err := w.Write(g.Next()); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if err := w.Flush(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	info, _ := f.Stat()
	fmt.Printf("wrote %d accesses to %s (%d bytes, %.2f bytes/access)\n",
		w.Count(), path, info.Size(), float64(info.Size())/float64(w.Count()))
}
