// Command rddplot measures and prints the set-level reuse-distance
// distribution (RDD) of a benchmark model or a recorded trace — the
// quantity at the heart of the PDP paper — together with the hit-rate
// model E(d_p) and the computed protecting distance.
//
// Usage:
//
//	rddplot -bench 436.cactusADM
//	rddplot -trace cactus.pdpt -csv > rdd.csv
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"pdp/internal/core"
	"pdp/internal/sampler"
	"pdp/internal/trace"
	"pdp/internal/tracefile"
	"pdp/internal/workload"
)

func main() {
	bench := flag.String("bench", "436.cactusADM", "benchmark model name")
	traceFile := flag.String("trace", "", "measure a recorded .pdpt trace instead of a model")
	n := flag.Int("n", 1_000_000, "accesses to measure (after an equal warm-up for models)")
	sets := flag.Int("sets", 2048, "cache sets (paper: 2048 for the 2MB LLC)")
	ways := flag.Int("ways", 16, "associativity (d_e term of the model)")
	sc := flag.Int("sc", 4, "counter step S_c")
	csv := flag.Bool("csv", false, "emit CSV (distance,count,E) instead of a chart")
	seed := flag.Uint64("seed", 42, "random seed")
	flag.Parse()

	var g trace.Generator
	if *traceFile != "" {
		f, err := os.Open(*traceFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		accs, err := tracefile.ReadAll(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		g = tracefile.NewGenerator(*traceFile, accs)
	} else {
		b, ok := workload.ByName(*bench)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown benchmark %q (see pdpsim -list)\n", *bench)
			os.Exit(2)
		}
		g = b.Generator(*sets, 1, *seed)
		// Warm the generator so long-distance reuse exists.
		for i := 0; i < *n/2; i++ {
			g.Next()
		}
	}

	s := sampler.New(sampler.FullConfig(*sets, *sc))
	s.Array().NiMax = 1 << 31
	s.Array().NtMax = 1 << 62
	for i := 0; i < *n; i++ {
		a := g.Next()
		s.Access(int(a.Addr/trace.LineSize%uint64(*sets)), a.Addr)
	}
	arr := s.Array()
	ev := core.EValues(arr, *ways)
	pd, e := core.FindPD(arr, *ways)

	if *csv {
		fmt.Println("distance,count,E")
		for k := 0; k < arr.K(); k++ {
			fmt.Printf("%d,%d,%.9f\n", arr.Dist(k), arr.Count(k), ev[k])
		}
		return
	}

	var hits uint64
	maxC := uint32(0)
	for k := 0; k < arr.K(); k++ {
		hits += uint64(arr.Count(k))
		if arr.Count(k) > maxC {
			maxC = arr.Count(k)
		}
	}
	fmt.Printf("accesses %d, reuse below d_max: %.1f%%\n\n", arr.Total(),
		100*float64(hits)/float64(arr.Total()+1))
	for k := 0; k < arr.K(); k++ {
		c := arr.Count(k)
		bar := ""
		if maxC > 0 {
			bar = strings.Repeat("#", int(60*float64(c)/float64(maxC)))
		}
		marker := "  "
		if arr.Dist(k) == pd {
			marker = "<-- PD"
		}
		fmt.Printf("d<=%3d %8d |%-60s| %s\n", arr.Dist(k), c, bar, marker)
	}
	fmt.Printf("\ncomputed PD = %d (E = %.6f)\n", pd, e)
}
