// Command pdpsim runs one benchmark model through one LLC policy and
// prints the resulting statistics.
//
// Usage:
//
//	pdpsim -bench 436.cactusADM -policy pdp-8 -n 1000000
//	pdpsim -trace cactus.pdpt -policy drrip
//	pdpsim -list
//
// Policies: lru, dip, drrip, drrip:1/64, eelru, sdp, pdp-2, pdp-3, pdp-8,
// spdp-b:<pd>, spdp-nb:<pd>.
package main

import (
	"flag"
	"fmt"
	"os"

	"pdp/internal/experiments"
	"pdp/internal/tracefile"
	"pdp/internal/workload"
)

func main() {
	bench := flag.String("bench", "436.cactusADM", "benchmark model name")
	traceFile := flag.String("trace", "", "replay a recorded .pdpt trace instead of a model")
	apki := flag.Float64("apki", 10, "accesses per kiloinstruction for -trace runs")
	policy := flag.String("policy", "pdp-8", "LLC policy")
	n := flag.Int("n", 1_000_000, "measured LLC accesses")
	seed := flag.Uint64("seed", 42, "random seed")
	list := flag.Bool("list", false, "list benchmark models and exit")
	flag.Parse()

	if *list {
		fmt.Println("suite:")
		for _, b := range workload.All() {
			fmt.Printf("  %-20s APKI=%.0f\n", b.Name, b.APKI)
		}
		fmt.Println("phase-changing:")
		for _, b := range workload.Phased() {
			fmt.Printf("  %-20s APKI=%.0f\n", b.Name, b.APKI)
		}
		return
	}

	var b workload.Benchmark
	if *traceFile != "" {
		f, err := os.Open(*traceFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		accs, err := tracefile.ReadAll(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "reading %s: %v\n", *traceFile, err)
			os.Exit(1)
		}
		b = workload.FromAccesses(*traceFile, *apki, accs)
	} else {
		var ok bool
		b, ok = workload.ByName(*bench)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown benchmark %q; run `pdpsim -list`\n", *bench)
			os.Exit(2)
		}
	}
	spec, err := experiments.SpecByName(*policy, *n)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	r := experiments.RunSingle(b, spec, *n, *seed)
	fmt.Printf("benchmark   %s\n", r.Bench)
	fmt.Printf("policy      %s\n", r.Policy)
	fmt.Printf("accesses    %d (after %d warm-up)\n", r.Stats.Accesses, experiments.Warmup(*n))
	fmt.Printf("hits        %d (%.2f%%)\n", r.Stats.Hits, 100*r.Stats.HitRate())
	fmt.Printf("misses      %d\n", r.Stats.Misses)
	fmt.Printf("bypasses    %d (%.2f%% of accesses)\n", r.Stats.Bypasses, 100*r.BypassFrac())
	fmt.Printf("evictions   %d (writebacks %d)\n", r.Stats.Evictions, r.Stats.Writebacks)
	fmt.Printf("instructions %d\n", r.Instr)
	fmt.Printf("IPC         %.4f\n", r.IPC)
	fmt.Printf("MPKI        %.3f\n", r.MPKI)
}
