// Command pdpsim runs one benchmark model through one LLC policy and
// prints the resulting statistics.
//
// Usage:
//
//	pdpsim -bench 436.cactusADM -policy pdp-8 -n 1000000
//	pdpsim -bench 436.cactusADM -policy pdp-8 -stats json \
//	       -telemetry run.jsonl -snapshot-every 100000
//	pdpsim -trace cactus.pdpt -policy drrip
//	pdpsim -bench 403.gcc -policy dip,drrip,pdp-8 -jobs 4
//	pdpsim -list
//
// Policies: lru, dip, drrip, drrip:1/64, eelru, sdp, pdp-2, pdp-3, pdp-8,
// spdp-b:<pd>, spdp-nb:<pd>.
//
// A comma-separated -policy list selects batch mode: every policy runs
// over the same benchmark window, fanned across -jobs workers, and one
// summary row prints per policy in list order (the output is identical at
// any -jobs value).
//
// Observability (see README "Observability" for the JSONL schema):
//
//	-stats json          machine-readable run summary on stdout
//	-telemetry FILE      JSONL event journal + time-series snapshots
//	-snapshot-every N    snapshot cadence in measured accesses
//	-journal-sample N    sample rate for high-frequency events
//	-pprof ADDR          live pprof/expvar HTTP server for long runs
//	-cpuprofile FILE     CPU profile of the run
//	-memprofile FILE     heap profile at exit
//
// Robustness (see README "Robustness"):
//
//	-timeout D           watchdog: fail the run after D wall-clock time
//	-checkpoint FILE     save the trace offset periodically; with -resume,
//	                     restart an interrupted run from the saved offset
//	-resume              resume from the checkpoint's saved offset
//	-inject SPEC         seeded fault injection (trace + PDP sampler faults)
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"
	"text/tabwriter"
	"time"

	"pdp/internal/cache"
	"pdp/internal/core"
	"pdp/internal/experiments"
	"pdp/internal/faultinject"
	"pdp/internal/parallel"
	"pdp/internal/resilience"
	"pdp/internal/telemetry"
	"pdp/internal/tracefile"
	"pdp/internal/workload"
)

func main() {
	bench := flag.String("bench", "436.cactusADM", "benchmark model name")
	traceFile := flag.String("trace", "", "replay a recorded .pdpt trace instead of a model")
	apki := flag.Float64("apki", 10, "accesses per kiloinstruction for -trace runs")
	policy := flag.String("policy", "pdp-8", "LLC policy, or a comma-separated list (batch mode)")
	jobs := flag.Int("jobs", 1, "concurrent runs in batch mode (0 = all cores)")
	n := flag.Int("n", 1_000_000, "measured LLC accesses")
	seed := flag.Uint64("seed", 42, "random seed")
	list := flag.Bool("list", false, "list benchmark models and exit")
	statsFmt := flag.String("stats", "text", "stats output format: text or json")
	telemetryOut := flag.String("telemetry", "", "write a JSONL telemetry journal to this file")
	snapshotEvery := flag.Uint64("snapshot-every", 0, "emit a telemetry snapshot every N measured accesses (0 disables)")
	journalSample := flag.Uint64("journal-sample", 1024, "journal 1 in N bypass/eviction/sampler events (1 = all)")
	timeout := flag.Duration("timeout", 0, "watchdog timeout for the run (0 disables)")
	checkpoint := flag.String("checkpoint", "", "save the run's trace offset to this JSON file for -resume")
	resume := flag.Bool("resume", false, "resume the measured window from the checkpoint's saved offset")
	inject := flag.String("inject", "", "fault-injection spec (key=value,... ; see README)")
	checkpointEvery := flag.Uint64("checkpoint-every", 100_000, "checkpoint offset cadence in measured accesses")
	pprofAddr := flag.String("pprof", "", "serve /debug/pprof and /debug/vars on this address")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file")
	flag.Parse()

	if *list {
		fmt.Println("suite:")
		for _, b := range workload.All() {
			fmt.Printf("  %-20s APKI=%.0f\n", b.Name, b.APKI)
		}
		fmt.Println("phase-changing:")
		for _, b := range workload.Phased() {
			fmt.Printf("  %-20s APKI=%.0f\n", b.Name, b.APKI)
		}
		return
	}

	if *statsFmt != "text" && *statsFmt != "json" {
		fmt.Fprintf(os.Stderr, "-stats must be text or json, got %q\n", *statsFmt)
		os.Exit(2)
	}
	if *journalSample < 1 {
		fmt.Fprintln(os.Stderr, "-journal-sample must be >= 1 (1 journals every event); 0 is not a valid sample rate")
		os.Exit(2)
	}

	var b workload.Benchmark
	if *traceFile != "" {
		f, err := os.Open(*traceFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		accs, err := tracefile.ReadAll(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "reading %s: %v\n", *traceFile, err)
			os.Exit(1)
		}
		b = workload.FromAccesses(*traceFile, *apki, accs)
	} else {
		var ok bool
		b, ok = workload.ByName(*bench)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown benchmark %q; run `pdpsim -list`\n", *bench)
			os.Exit(2)
		}
	}
	policyNames := strings.Split(*policy, ",")
	specs := make([]experiments.PolicySpec, len(policyNames))
	for i, nm := range policyNames {
		var err error
		specs[i], err = experiments.SpecByName(strings.TrimSpace(nm), *n)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}
	spec := specs[0]
	faults, err := faultinject.Parse(*inject)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *resume && *checkpoint == "" {
		fmt.Fprintln(os.Stderr, "-resume needs -checkpoint FILE")
		os.Exit(2)
	}

	// Profiling hooks.
	if *pprofAddr != "" {
		if err := telemetry.ServeDebug(*pprofAddr); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if *cpuProfile != "" {
		stop, err := telemetry.StartCPUProfile(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer stop()
	}

	// Telemetry pipeline.
	telemetryOn := *telemetryOut != "" || *snapshotEvery > 0 || *pprofAddr != "" || *statsFmt == "json"
	var reg *telemetry.Registry
	var journal *telemetry.Journal
	if telemetryOn {
		reg = telemetry.NewRegistry()
		reg.PublishExpvar("pdpsim")
		journal = telemetry.NewJournal(0)
		if *telemetryOut != "" {
			f, err := os.Create(*telemetryOut)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			defer f.Close()
			journal.SetSink(f)
		}
	}

	// Resilient run: graceful shutdown on SIGINT/SIGTERM, optional watchdog,
	// seeded fault injection, and periodic offset checkpointing so -resume
	// can restart a long window where it stopped (generators are
	// deterministic, so the skipped prefix is replayed, not re-measured).
	ctx, cancel := resilience.WithShutdown(context.Background())
	defer cancel()

	if len(specs) > 1 {
		runBatch(ctx, b, specs, batchOptions{
			n: *n, seed: *seed, jobs: *jobs, statsFmt: *statsFmt,
			checkpoint: *checkpoint, resume: *resume, checkpointEvery: *checkpointEvery,
			timeout: *timeout, memProfile: *memProfile,
			faults: faults, reg: reg, journal: journal,
			snapshotEvery: *snapshotEvery, journalSample: *journalSample,
		})
		return
	}

	key := resilience.RunKey(b.Name+"/"+spec.Name, *n, *seed)
	var ck *resilience.Checkpoint
	var start uint64
	if *checkpoint != "" {
		if *resume {
			ck, err = resilience.LoadCheckpoint(*checkpoint)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			if start = ck.Offset(key); start > 0 {
				fmt.Fprintf(os.Stderr, "[resuming %s at measured access %d]\n", key, start)
			}
		} else {
			ck = resilience.NewCheckpoint()
		}
	}
	saveCk := func() {
		err := resilience.Retry(ctx, resilience.RetryConfig{
			Name: "checkpoint.save", Journal: journal,
			Transient: func(error) bool { return true },
		}, func() error { return ck.Save(*checkpoint, journal) })
		if err != nil {
			fmt.Fprintf(os.Stderr, "checkpoint: %v\n", err)
		}
	}

	rep := faultinject.NewReporter(journal)
	sup := &resilience.Supervisor{Timeout: *timeout, Journal: journal}
	var r experiments.RunResult
	out := sup.Run(ctx, b.Name, func(runCtx context.Context, hb *resilience.Heartbeat) error {
		rcfg := experiments.Config{Ctx: runCtx, Heartbeat: hb}
		if faults.TraceEnabled() {
			rcfg.WrapBench = func(wb workload.Benchmark) workload.Benchmark {
				return faultinject.WrapBenchmark(wb, faults, rep)
			}
		}
		opt := experiments.RunOptions{
			Telemetry: experiments.TelemetryOptions{
				Registry:      reg,
				Journal:       journal,
				SnapshotEvery: *snapshotEvery,
				EventSample:   *journalSample,
				Attach: func(_ *cache.Cache, pol cache.Policy) cache.Monitor {
					p, _ := pol.(*core.PDP)
					return faultinject.NewPDPInjector(p, faults, rep)
				},
			},
			StartAccess: start,
		}
		if ck != nil && *checkpointEvery > 0 {
			opt.ProgressEvery = *checkpointEvery
			opt.OnProgress = func(done uint64) {
				ck.SetOffset(key, done)
				saveCk()
			}
		}
		r = experiments.RunSingleResilient(rcfg.Bench(b), spec, *n, *seed, opt)
		return nil
	})
	if out.Err != nil {
		if ck != nil {
			// A watchdog expiry carries the guarded generator's last beat
			// (total generator accesses); anything past warm-up is measured
			// progress the next run can skip. Periodic OnProgress saves
			// cover the SIGINT path.
			var wd *resilience.WatchdogError
			warm := int64(experiments.Warmup(*n))
			if errors.As(out.Err, &wd) && wd.LastBeat > warm {
				off := uint64(wd.LastBeat - warm)
				if off > uint64(*n) {
					off = uint64(*n)
				}
				ck.SetOffset(key, off)
			}
			if off := ck.Offset(key); off > 0 {
				saveCk()
				fmt.Fprintf(os.Stderr, "[offset %d saved; rerun with -checkpoint %s -resume]\n", off, *checkpoint)
			}
		}
		journal.Flush()
		fmt.Fprintln(os.Stderr, out.Err)
		os.Exit(1)
	}
	if ck != nil {
		ck.ClearOffset(key)
		ck.MarkDone(key, out.Duration)
		saveCk()
	}
	if rep.Total() > 0 {
		fmt.Fprintf(os.Stderr, "[injected %d faults: %v]\n", rep.Total(), rep.Counts())
	}

	if err := journal.Flush(); err != nil {
		fmt.Fprintf(os.Stderr, "telemetry journal: %v\n", err)
		os.Exit(1)
	}
	if *memProfile != "" {
		if err := telemetry.WriteHeapProfile(*memProfile); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	if *statsFmt == "json" {
		out := struct {
			experiments.RunResult
			Warmup     int            `json:"warmup_accesses"`
			HitRate    float64        `json:"hit_rate"`
			BypassFrac float64        `json:"bypass_frac"`
			Metrics    map[string]any `json:"metrics,omitempty"`
		}{
			RunResult:  r,
			Warmup:     experiments.Warmup(*n),
			HitRate:    r.Stats.HitRate(),
			BypassFrac: r.BypassFrac(),
			Metrics:    reg.Snapshot(),
		}
		enc := json.NewEncoder(os.Stdout)
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	fmt.Printf("benchmark   %s\n", r.Bench)
	fmt.Printf("policy      %s\n", r.Policy)
	fmt.Printf("accesses    %d (after %d warm-up)\n", r.Stats.Accesses, experiments.Warmup(*n))
	fmt.Printf("hits        %d (%.2f%%)\n", r.Stats.Hits, 100*r.Stats.HitRate())
	fmt.Printf("misses      %d\n", r.Stats.Misses)
	fmt.Printf("bypasses    %d (%.2f%% of accesses)\n", r.Stats.Bypasses, 100*r.BypassFrac())
	fmt.Printf("evictions   %d (writebacks %d)\n", r.Stats.Evictions, r.Stats.Writebacks)
	fmt.Printf("instructions %d\n", r.Instr)
	fmt.Printf("IPC         %.4f\n", r.IPC)
	fmt.Printf("MPKI        %.3f\n", r.MPKI)
	if journal != nil && *telemetryOut != "" {
		fmt.Printf("telemetry   %d records -> %s (%d pd_recompute, %d snapshot)\n",
			journal.Total(), *telemetryOut,
			journal.CountKind(telemetry.KindPDRecompute), journal.CountKind(telemetry.KindSnapshot))
	}
}

// batchOptions carries the flag values the batch path consumes.
type batchOptions struct {
	n               int
	seed            uint64
	jobs            int
	statsFmt        string
	checkpoint      string
	resume          bool
	checkpointEvery uint64
	timeout         time.Duration
	memProfile      string
	faults          faultinject.Spec
	reg             *telemetry.Registry
	journal         *telemetry.Journal
	snapshotEvery   uint64
	journalSample   uint64
}

// runBatch drives every policy over the same benchmark window across
// opt.jobs workers and prints one summary per policy, in list order.
// Each run is an independent simulation seeded identically, so the batch
// output does not depend on the jobs count. Checkpoint offset saves from
// concurrent runs are serialized through a resilience.Saver.
func runBatch(ctx context.Context, b workload.Benchmark, specs []experiments.PolicySpec, opt batchOptions) {
	var ck *resilience.Checkpoint
	if opt.checkpoint != "" {
		if opt.resume {
			var err error
			ck, err = resilience.LoadCheckpoint(opt.checkpoint)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		} else {
			ck = resilience.NewCheckpoint()
		}
	}
	var saver *resilience.Saver
	if ck != nil {
		saver = resilience.NewSaver(func() error {
			return resilience.Retry(ctx, resilience.RetryConfig{
				Name: "checkpoint.save", Journal: opt.journal,
				Transient: func(error) bool { return true },
			}, func() error { return ck.Save(opt.checkpoint, opt.journal) })
		}, func(err error) {
			fmt.Fprintf(os.Stderr, "checkpoint: %v\n", err)
		})
		defer saver.Close()
	}

	rep := faultinject.NewReporter(opt.journal)
	sup := &resilience.Supervisor{Timeout: opt.timeout, Journal: opt.journal}
	results := make([]experiments.RunResult, len(specs))
	out := sup.Run(ctx, b.Name, func(runCtx context.Context, hb *resilience.Heartbeat) error {
		return parallel.ForEach(opt.jobs, len(specs), func(i int) error {
			s := specs[i]
			key := resilience.RunKey(b.Name+"/"+s.Name, opt.n, opt.seed)
			var start uint64
			if ck != nil {
				if start = ck.Offset(key); start > 0 {
					fmt.Fprintf(os.Stderr, "[resuming %s at measured access %d]\n", key, start)
				}
			}
			rcfg := experiments.Config{Ctx: runCtx, Heartbeat: hb}
			if opt.faults.TraceEnabled() {
				rcfg.WrapBench = func(wb workload.Benchmark) workload.Benchmark {
					return faultinject.WrapBenchmark(wb, opt.faults, rep)
				}
			}
			ropt := experiments.RunOptions{
				Telemetry: experiments.TelemetryOptions{
					Registry:      opt.reg,
					Journal:       opt.journal,
					SnapshotEvery: opt.snapshotEvery,
					EventSample:   opt.journalSample,
					Attach: func(_ *cache.Cache, pol cache.Policy) cache.Monitor {
						p, _ := pol.(*core.PDP)
						return faultinject.NewPDPInjector(p, opt.faults, rep)
					},
				},
				StartAccess: start,
			}
			if ck != nil && opt.checkpointEvery > 0 {
				ropt.ProgressEvery = opt.checkpointEvery
				ropt.OnProgress = func(done uint64) {
					ck.SetOffset(key, done)
					saver.Request()
				}
			}
			results[i] = experiments.RunSingleResilient(rcfg.Bench(b), s, opt.n, opt.seed, ropt)
			if ck != nil {
				ck.ClearOffset(key)
				saver.Request()
			}
			return nil
		})
	})
	if out.Err != nil {
		opt.journal.Flush()
		fmt.Fprintln(os.Stderr, out.Err)
		os.Exit(1)
	}
	if rep.Total() > 0 {
		fmt.Fprintf(os.Stderr, "[injected %d faults: %v]\n", rep.Total(), rep.Counts())
	}
	if err := opt.journal.Flush(); err != nil {
		fmt.Fprintf(os.Stderr, "telemetry journal: %v\n", err)
		os.Exit(1)
	}
	if opt.memProfile != "" {
		if err := telemetry.WriteHeapProfile(opt.memProfile); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	if opt.statsFmt == "json" {
		type row struct {
			experiments.RunResult
			HitRate    float64 `json:"hit_rate"`
			BypassFrac float64 `json:"bypass_frac"`
		}
		rows := make([]row, len(results))
		for i, r := range results {
			rows[i] = row{RunResult: r, HitRate: r.Stats.HitRate(), BypassFrac: r.BypassFrac()}
		}
		if err := json.NewEncoder(os.Stdout).Encode(rows); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	fmt.Printf("benchmark %s, %d measured accesses (after %d warm-up)\n",
		b.Name, opt.n, experiments.Warmup(opt.n))
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "policy\thit%\tMPKI\tIPC\tbypass%")
	for _, r := range results {
		fmt.Fprintf(tw, "%s\t%.2f\t%.3f\t%.4f\t%.2f\n",
			r.Policy, 100*r.Stats.HitRate(), r.MPKI, r.IPC, 100*r.BypassFrac())
	}
	tw.Flush()
}
