// Command pdpsim runs one benchmark model through one LLC policy and
// prints the resulting statistics.
//
// Usage:
//
//	pdpsim -bench 436.cactusADM -policy pdp-8 -n 1000000
//	pdpsim -bench 436.cactusADM -policy pdp-8 -stats json \
//	       -telemetry run.jsonl -snapshot-every 100000
//	pdpsim -trace cactus.pdpt -policy drrip
//	pdpsim -list
//
// Policies: lru, dip, drrip, drrip:1/64, eelru, sdp, pdp-2, pdp-3, pdp-8,
// spdp-b:<pd>, spdp-nb:<pd>.
//
// Observability (see README "Observability" for the JSONL schema):
//
//	-stats json          machine-readable run summary on stdout
//	-telemetry FILE      JSONL event journal + time-series snapshots
//	-snapshot-every N    snapshot cadence in measured accesses
//	-journal-sample N    sample rate for high-frequency events
//	-pprof ADDR          live pprof/expvar HTTP server for long runs
//	-cpuprofile FILE     CPU profile of the run
//	-memprofile FILE     heap profile at exit
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"pdp/internal/experiments"
	"pdp/internal/telemetry"
	"pdp/internal/tracefile"
	"pdp/internal/workload"
)

func main() {
	bench := flag.String("bench", "436.cactusADM", "benchmark model name")
	traceFile := flag.String("trace", "", "replay a recorded .pdpt trace instead of a model")
	apki := flag.Float64("apki", 10, "accesses per kiloinstruction for -trace runs")
	policy := flag.String("policy", "pdp-8", "LLC policy")
	n := flag.Int("n", 1_000_000, "measured LLC accesses")
	seed := flag.Uint64("seed", 42, "random seed")
	list := flag.Bool("list", false, "list benchmark models and exit")
	statsFmt := flag.String("stats", "text", "stats output format: text or json")
	telemetryOut := flag.String("telemetry", "", "write a JSONL telemetry journal to this file")
	snapshotEvery := flag.Uint64("snapshot-every", 0, "emit a telemetry snapshot every N measured accesses (0 disables)")
	journalSample := flag.Uint64("journal-sample", 1024, "journal 1 in N bypass/eviction/sampler events (1 = all)")
	pprofAddr := flag.String("pprof", "", "serve /debug/pprof and /debug/vars on this address")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file")
	flag.Parse()

	if *list {
		fmt.Println("suite:")
		for _, b := range workload.All() {
			fmt.Printf("  %-20s APKI=%.0f\n", b.Name, b.APKI)
		}
		fmt.Println("phase-changing:")
		for _, b := range workload.Phased() {
			fmt.Printf("  %-20s APKI=%.0f\n", b.Name, b.APKI)
		}
		return
	}

	if *statsFmt != "text" && *statsFmt != "json" {
		fmt.Fprintf(os.Stderr, "-stats must be text or json, got %q\n", *statsFmt)
		os.Exit(2)
	}

	var b workload.Benchmark
	if *traceFile != "" {
		f, err := os.Open(*traceFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		accs, err := tracefile.ReadAll(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "reading %s: %v\n", *traceFile, err)
			os.Exit(1)
		}
		b = workload.FromAccesses(*traceFile, *apki, accs)
	} else {
		var ok bool
		b, ok = workload.ByName(*bench)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown benchmark %q; run `pdpsim -list`\n", *bench)
			os.Exit(2)
		}
	}
	spec, err := experiments.SpecByName(*policy, *n)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	// Profiling hooks.
	if *pprofAddr != "" {
		if err := telemetry.ServeDebug(*pprofAddr); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if *cpuProfile != "" {
		stop, err := telemetry.StartCPUProfile(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer stop()
	}

	// Telemetry pipeline.
	telemetryOn := *telemetryOut != "" || *snapshotEvery > 0 || *pprofAddr != "" || *statsFmt == "json"
	var reg *telemetry.Registry
	var journal *telemetry.Journal
	if telemetryOn {
		reg = telemetry.NewRegistry()
		reg.PublishExpvar("pdpsim")
		journal = telemetry.NewJournal(0)
		if *telemetryOut != "" {
			f, err := os.Create(*telemetryOut)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			defer f.Close()
			journal.SetSink(f)
		}
	}

	r := experiments.RunSingleTelemetry(b, spec, *n, *seed, experiments.TelemetryOptions{
		Registry:      reg,
		Journal:       journal,
		SnapshotEvery: *snapshotEvery,
		EventSample:   *journalSample,
	})

	if err := journal.Flush(); err != nil {
		fmt.Fprintf(os.Stderr, "telemetry journal: %v\n", err)
		os.Exit(1)
	}
	if *memProfile != "" {
		if err := telemetry.WriteHeapProfile(*memProfile); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	if *statsFmt == "json" {
		out := struct {
			experiments.RunResult
			Warmup     int            `json:"warmup_accesses"`
			HitRate    float64        `json:"hit_rate"`
			BypassFrac float64        `json:"bypass_frac"`
			Metrics    map[string]any `json:"metrics,omitempty"`
		}{
			RunResult:  r,
			Warmup:     experiments.Warmup(*n),
			HitRate:    r.Stats.HitRate(),
			BypassFrac: r.BypassFrac(),
			Metrics:    reg.Snapshot(),
		}
		enc := json.NewEncoder(os.Stdout)
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	fmt.Printf("benchmark   %s\n", r.Bench)
	fmt.Printf("policy      %s\n", r.Policy)
	fmt.Printf("accesses    %d (after %d warm-up)\n", r.Stats.Accesses, experiments.Warmup(*n))
	fmt.Printf("hits        %d (%.2f%%)\n", r.Stats.Hits, 100*r.Stats.HitRate())
	fmt.Printf("misses      %d\n", r.Stats.Misses)
	fmt.Printf("bypasses    %d (%.2f%% of accesses)\n", r.Stats.Bypasses, 100*r.BypassFrac())
	fmt.Printf("evictions   %d (writebacks %d)\n", r.Stats.Evictions, r.Stats.Writebacks)
	fmt.Printf("instructions %d\n", r.Instr)
	fmt.Printf("IPC         %.4f\n", r.IPC)
	fmt.Printf("MPKI        %.3f\n", r.MPKI)
	if journal != nil && *telemetryOut != "" {
		fmt.Printf("telemetry   %d records -> %s (%d pd_recompute, %d snapshot)\n",
			journal.Total(), *telemetryOut,
			journal.CountKind(telemetry.KindPDRecompute), journal.CountKind(telemetry.KindSnapshot))
	}
}
