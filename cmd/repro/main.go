// Command repro regenerates the PDP paper's tables and figures.
//
// Usage:
//
//	repro -list
//	repro [flags] all
//	repro [flags] fig10 fig12 tab2 ...
//	repro -inject trace.corrupt=1e-4,counter.flip=1e-4 faultcamp
//
// Each experiment prints a plain-text table; see DESIGN.md for the
// experiment index and EXPERIMENTS.md for recorded paper-vs-measured
// comparisons.
//
// Robustness (see README "Robustness"):
//
//	-timeout D      per-experiment watchdog; an expired experiment fails,
//	                the rest still run
//	-keep-going     report per-experiment errors and continue (forced on
//	                for `all`); exit status is still non-zero at the end
//	-checkpoint F   record completed experiments in F (JSON, atomic)
//	-resume         skip experiments already completed in the checkpoint
//	-inject SPEC    seeded fault injection into the workload streams
//	-slow ID=D      artificially delay experiment ID by D (watchdog tests)
//	-telemetry F    JSONL journal of run/watchdog/fault/recovery events
//
// Performance:
//
//	-jobs N         fan each experiment's independent simulation tasks
//	                across N workers (0 = all cores); every N produces
//	                byte-identical tables
//
// The pseudo-experiment id `faultcamp` runs a seeded fault campaign (clean
// vs injected run plus graceful-degradation checks) using -inject, or a
// default spec when -inject is empty.
package main

import (
	"bytes"
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"pdp/internal/experiments"
	"pdp/internal/faultinject"
	"pdp/internal/resilience"
	"pdp/internal/telemetry"
	"pdp/internal/workload"
)

const defaultCheckpoint = "repro.ckpt.json"

func main() {
	list := flag.Bool("list", false, "list experiment ids and exit")
	scale := flag.Float64("scale", 1.0, "trace-length multiplier (1.0 = default windows)")
	mixes4 := flag.Int("mixes4", 0, "override the number of 4-core mixes (fig12)")
	mixes16 := flag.Int("mixes16", 0, "override the number of 16-core mixes (fig12)")
	seed := flag.Uint64("seed", 42, "random seed")
	jobs := flag.Int("jobs", 1, "concurrent simulation tasks per experiment (0 = all cores; tables are identical at any value)")
	timeout := flag.Duration("timeout", 0, "per-experiment watchdog timeout (0 disables)")
	keepGoing := flag.Bool("keep-going", false, "continue past failing experiments (forced on for `all`)")
	checkpoint := flag.String("checkpoint", "", "record completed experiments in this JSON file")
	resume := flag.Bool("resume", false, "skip experiments already completed in the checkpoint (default "+defaultCheckpoint+")")
	inject := flag.String("inject", "", "fault-injection spec for workload streams (key=value,... ; see README)")
	slow := flag.String("slow", "", "artificially delay one experiment: <id>=<duration> (watchdog testing)")
	telemetryOut := flag.String("telemetry", "", "write a JSONL telemetry journal to this file")
	pprofAddr := flag.String("pprof", "", "serve /debug/pprof and /debug/vars on this address (long runs)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file")
	flag.Parse()

	if *pprofAddr != "" {
		if err := telemetry.ServeDebug(*pprofAddr); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if *cpuProfile != "" {
		stop, err := telemetry.StartCPUProfile(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer stop()
	}
	if *memProfile != "" {
		defer func() {
			if err := telemetry.WriteHeapProfile(*memProfile); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
		}()
	}

	if *list {
		for _, e := range experiments.Registry() {
			fmt.Printf("%-10s %s\n", e.ID, e.Title)
		}
		fmt.Printf("%-10s %s\n", "faultcamp", "Fault campaign: clean vs injected run + graceful-degradation checks")
		return
	}

	spec, err := faultinject.Parse(*inject)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	slowID, slowDur, err := parseSlow(*slow)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	cfg := experiments.DefaultConfig(os.Stdout)
	cfg.Seed = *seed
	cfg.Accesses = int(float64(cfg.Accesses) * *scale)
	cfg.MCAccessesPerThread = int(float64(cfg.MCAccessesPerThread) * *scale)
	if *mixes4 > 0 {
		cfg.Mixes4 = *mixes4
	}
	if *mixes16 > 0 {
		cfg.Mixes16 = *mixes16
	}
	cfg.Jobs = *jobs
	if *jobs <= 0 {
		cfg.Jobs = -1 // GOMAXPROCS
	}

	args := flag.Args()
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "usage: repro [-list] [-scale f] [-timeout d] [-resume] all | <id>...")
		fmt.Fprintln(os.Stderr, "run `repro -list` for experiment ids")
		os.Exit(2)
	}
	isAll := len(args) == 1 && args[0] == "all"
	kg := *keepGoing || isAll

	// Graceful shutdown: SIGINT/SIGTERM cancels in-flight runs; partial
	// results (checkpoint, telemetry journal) are flushed on the way out.
	ctx, cancel := resilience.WithShutdown(context.Background())
	defer cancel()

	var journal *telemetry.Journal
	if *telemetryOut != "" {
		journal = telemetry.NewJournal(0)
		f, err := os.Create(*telemetryOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		journal.SetSink(f)
		defer journal.Flush()
	}

	ckPath := *checkpoint
	if ckPath == "" && *resume {
		ckPath = defaultCheckpoint
	}
	runCfg := resilience.RunConfig{
		Accesses:            cfg.Accesses,
		MCAccessesPerThread: cfg.MCAccessesPerThread,
		Mixes4:              cfg.Mixes4,
		Mixes16:             cfg.Mixes16,
		Seed:                cfg.Seed,
	}
	var ck *resilience.Checkpoint
	if ckPath != "" {
		if *resume {
			ck, err = resilience.LoadCheckpoint(ckPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			// A checkpoint written under a different run configuration must
			// not be trusted: its completion marks describe different
			// windows. Start fresh instead of silently resuming.
			if ok, why := ck.ConfigMatches(runCfg); !ok {
				fmt.Fprintf(os.Stderr, "[checkpoint %s ignored: %s; starting fresh]\n", ckPath, why)
				ck = resilience.NewCheckpoint()
			} else if n := ck.CompletedCount(); n > 0 {
				fmt.Printf("[resuming: %d experiments already completed in %s]\n", n, ckPath)
			}
		} else {
			ck = resilience.NewCheckpoint()
		}
		ck.SetConfig(runCfg)
	}
	// All saves flow through one owner goroutine: concurrent completions
	// coalesce instead of racing their atomic renames out of order.
	var saver *resilience.Saver
	if ck != nil {
		saver = resilience.NewSaver(func() error {
			return resilience.Retry(ctx, resilience.RetryConfig{
				Name: "checkpoint.save", Journal: journal,
				Transient: func(error) bool { return true },
			}, func() error { return ck.Save(ckPath, journal) })
		}, func(err error) {
			fmt.Fprintf(os.Stderr, "checkpoint: %v\n", err)
		})
	}

	rep := faultinject.NewReporter(journal)
	if spec.TraceEnabled() {
		cfg.WrapBench = func(b workload.Benchmark) workload.Benchmark {
			return faultinject.WrapBenchmark(b, spec, rep)
		}
	}

	sup := &resilience.Supervisor{Timeout: *timeout, Journal: journal}
	failed := 0

	run := func(e experiments.Experiment) bool {
		key := resilience.RunKey(e.ID, cfg.Accesses, cfg.Seed)
		if ck != nil && *resume && ck.Done(key) {
			sup.Skip(e.ID)
			fmt.Printf("[%s skipped: completed in checkpoint]\n", e.ID)
			return true
		}
		// Buffer each experiment's tables so an abandoned (timed-out)
		// goroutine can't interleave stale output with later experiments.
		var buf bytes.Buffer
		out := sup.Run(ctx, e.ID, func(runCtx context.Context, hb *resilience.Heartbeat) error {
			if e.ID == slowID {
				select { // artificial stall, honoring cancellation
				case <-time.After(slowDur):
				case <-runCtx.Done():
					return runCtx.Err()
				}
			}
			ecfg := cfg
			ecfg.Out = &buf
			ecfg.Ctx = runCtx
			ecfg.Heartbeat = hb
			return e.Run(ecfg)
		})
		if out.Err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.ID, out.Err)
			return false
		}
		os.Stdout.Write(buf.Bytes())
		fmt.Printf("[%s done in %v]\n", e.ID, out.Duration.Round(time.Millisecond))
		if ck != nil {
			ck.MarkDone(key, out.Duration)
			saver.Request()
		}
		return true
	}

	var todo []experiments.Experiment
	if isAll {
		todo = experiments.Registry()
	} else {
		for _, id := range args {
			if id == "faultcamp" {
				todo = append(todo, faultCampExperiment(spec, journal))
				continue
			}
			e, ok := experiments.ByID(id)
			if !ok {
				fmt.Fprintf(os.Stderr, "unknown experiment %q; run `repro -list`\n", id)
				os.Exit(2)
			}
			todo = append(todo, e)
		}
	}

	for _, e := range todo {
		if ctx.Err() != nil {
			fmt.Fprintln(os.Stderr, "shutdown requested; flushing partial state")
			failed++
			break
		}
		if !run(e) {
			failed++
			if !kg {
				break
			}
		}
	}
	if saver != nil {
		saver.Close()
	}
	if journal != nil {
		if err := journal.Flush(); err != nil {
			fmt.Fprintf(os.Stderr, "telemetry journal: %v\n", err)
		}
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "%d experiment(s) failed\n", failed)
		os.Exit(1)
	}
}

// parseSlow parses the -slow flag's <id>=<duration> grammar.
func parseSlow(s string) (string, time.Duration, error) {
	if s == "" {
		return "", 0, nil
	}
	id, val, ok := strings.Cut(s, "=")
	if !ok {
		return "", 0, errors.New("-slow wants <experiment-id>=<duration>")
	}
	d, err := time.ParseDuration(val)
	if err != nil {
		return "", 0, fmt.Errorf("-slow %s: %v", s, err)
	}
	return id, d, nil
}

// faultCampExperiment adapts a fault campaign to the experiment interface
// so it runs under the same supervisor/checkpoint machinery.
func faultCampExperiment(spec faultinject.Spec, journal *telemetry.Journal) experiments.Experiment {
	return experiments.Experiment{
		ID:    "faultcamp",
		Title: "Fault campaign: clean vs injected run + graceful-degradation checks",
		Run: func(cfg experiments.Config) error {
			if !spec.Enabled() {
				// A default campaign: corrupt trace records and flip RDD
				// counter bits, stopping mid-window so PD re-convergence is
				// observable.
				spec = faultinject.Spec{TraceCorrupt: 1e-3, CounterFlip: 1e-3, PDBias: 16, Seed: 7}
			}
			b, ok := workload.ByName("403.gcc")
			if !ok {
				return errors.New("benchmark 403.gcc missing")
			}
			r, err := faultinject.RunCampaign(faultinject.CampaignConfig{
				Bench:    b,
				Spec:     spec,
				Accesses: cfg.Accesses,
				Seed:     cfg.Seed,
				Journal:  journal,
				Jobs:     cfg.Jobs,
			})
			if err != nil {
				return err
			}
			r.Render(cfg.Out)
			if !r.Passed() {
				return errors.New("fault campaign failed its invariants")
			}
			return nil
		},
	}
}
