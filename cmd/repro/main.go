// Command repro regenerates the PDP paper's tables and figures.
//
// Usage:
//
//	repro -list
//	repro [flags] all
//	repro [flags] fig10 fig12 tab2 ...
//
// Each experiment prints a plain-text table; see DESIGN.md for the
// experiment index and EXPERIMENTS.md for recorded paper-vs-measured
// comparisons.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"pdp/internal/experiments"
	"pdp/internal/telemetry"
)

func main() {
	list := flag.Bool("list", false, "list experiment ids and exit")
	scale := flag.Float64("scale", 1.0, "trace-length multiplier (1.0 = default windows)")
	mixes4 := flag.Int("mixes4", 0, "override the number of 4-core mixes (fig12)")
	mixes16 := flag.Int("mixes16", 0, "override the number of 16-core mixes (fig12)")
	seed := flag.Uint64("seed", 42, "random seed")
	pprofAddr := flag.String("pprof", "", "serve /debug/pprof and /debug/vars on this address (long runs)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file")
	flag.Parse()

	if *pprofAddr != "" {
		if err := telemetry.ServeDebug(*pprofAddr); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if *cpuProfile != "" {
		stop, err := telemetry.StartCPUProfile(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer stop()
	}
	if *memProfile != "" {
		defer func() {
			if err := telemetry.WriteHeapProfile(*memProfile); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
		}()
	}

	if *list {
		for _, e := range experiments.Registry() {
			fmt.Printf("%-10s %s\n", e.ID, e.Title)
		}
		return
	}

	cfg := experiments.DefaultConfig(os.Stdout)
	cfg.Seed = *seed
	cfg.Accesses = int(float64(cfg.Accesses) * *scale)
	cfg.MCAccessesPerThread = int(float64(cfg.MCAccessesPerThread) * *scale)
	if *mixes4 > 0 {
		cfg.Mixes4 = *mixes4
	}
	if *mixes16 > 0 {
		cfg.Mixes16 = *mixes16
	}

	args := flag.Args()
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "usage: repro [-list] [-scale f] all | <id>...")
		fmt.Fprintln(os.Stderr, "run `repro -list` for experiment ids")
		os.Exit(2)
	}

	run := func(e experiments.Experiment) {
		start := time.Now()
		if err := e.Run(cfg); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stdout, "[%s done in %v]\n", e.ID, time.Since(start).Round(time.Millisecond))
	}

	if len(args) == 1 && args[0] == "all" {
		for _, e := range experiments.Registry() {
			run(e)
		}
		return
	}
	for _, id := range args {
		e, ok := experiments.ByID(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; run `repro -list`\n", id)
			os.Exit(2)
		}
		run(e)
	}
}
