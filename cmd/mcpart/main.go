// Command mcpart runs one multi-programmed mix on a shared LLC under a
// thread-aware policy and reports the paper's W/T/H metrics against the
// stand-alone LRU baseline.
//
// Usage:
//
//	mcpart -cores 4 -policy pdppart-3 -benchmarks 436.cactusADM,403.gcc,470.lbm,482.sphinx3
//	mcpart -cores 16 -policy ta-drrip -mix 7
//	mcpart -cores 4 -policy pdppart-3 -mix 0 -stats json \
//	       -telemetry mix.jsonl -snapshot-every 100000
//
// Policies: ta-drrip, ucp, pipp, pdppart-2, pdppart-3, pdppart-8.
//
// With -telemetry, snapshots carry per-core occupancy and (for the
// PD-partitioning policies) the per-thread protecting distances.
//
// -timeout sets a watchdog on the run; -inject applies seeded faults to
// the mix's trace streams (see README "Robustness"). -jobs fans the
// per-core stand-alone baseline runs across workers (the report is the
// same at any value).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"pdp/internal/experiments"
	"pdp/internal/faultinject"
	"pdp/internal/metrics"
	"pdp/internal/parallel"
	"pdp/internal/resilience"
	"pdp/internal/telemetry"
	"pdp/internal/workload"
)

func main() {
	cores := flag.Int("cores", 4, "number of cores (LLC = 2MB per core)")
	policy := flag.String("policy", "pdppart-3", "shared-LLC policy")
	benchList := flag.String("benchmarks", "", "comma-separated benchmark names (one per core)")
	mixID := flag.Int("mix", -1, "use the i-th seeded random mix instead of -benchmarks")
	perThread := flag.Int("n", 400_000, "measured accesses per thread")
	jobs := flag.Int("jobs", 1, "concurrent stand-alone baseline runs (0 = all cores)")
	seed := flag.Uint64("seed", 42, "random seed")
	statsFmt := flag.String("stats", "text", "stats output format: text or json")
	telemetryOut := flag.String("telemetry", "", "write a JSONL telemetry journal to this file")
	snapshotEvery := flag.Uint64("snapshot-every", 0, "emit a telemetry snapshot every N measured accesses (0 disables)")
	journalSample := flag.Uint64("journal-sample", 1024, "journal 1 in N bypass/eviction events (1 = all)")
	timeout := flag.Duration("timeout", 0, "watchdog timeout for the run (0 disables)")
	inject := flag.String("inject", "", "fault-injection spec for the mix's trace streams (key=value,...)")
	pprofAddr := flag.String("pprof", "", "serve /debug/pprof and /debug/vars on this address")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file")
	flag.Parse()

	if *statsFmt != "text" && *statsFmt != "json" {
		fmt.Fprintf(os.Stderr, "-stats must be text or json, got %q\n", *statsFmt)
		os.Exit(2)
	}
	if *journalSample < 1 {
		fmt.Fprintln(os.Stderr, "-journal-sample must be >= 1 (1 journals every event); 0 is not a valid sample rate")
		os.Exit(2)
	}

	var mix workload.Mix
	switch {
	case *benchList != "":
		names := strings.Split(*benchList, ",")
		if len(names) != *cores {
			fmt.Fprintf(os.Stderr, "need %d benchmarks, got %d\n", *cores, len(names))
			os.Exit(2)
		}
		mix = workload.Mix{Names: names}
		for _, n := range names {
			b, ok := workload.ByName(strings.TrimSpace(n))
			if !ok {
				fmt.Fprintf(os.Stderr, "unknown benchmark %q\n", n)
				os.Exit(2)
			}
			mix.Benchs = append(mix.Benchs, b)
		}
	case *mixID >= 0:
		mixes := workload.Mixes(*cores, *mixID+1, *seed+uint64(*cores))
		mix = mixes[*mixID]
	default:
		fmt.Fprintln(os.Stderr, "provide -benchmarks or -mix")
		os.Exit(2)
	}

	spec, err := experiments.MCSpecByName(*policy, *perThread)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	// Profiling hooks.
	if *pprofAddr != "" {
		if err := telemetry.ServeDebug(*pprofAddr); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if *cpuProfile != "" {
		stop, err := telemetry.StartCPUProfile(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer stop()
	}

	// Telemetry pipeline.
	telemetryOn := *telemetryOut != "" || *snapshotEvery > 0 || *pprofAddr != "" || *statsFmt == "json"
	var reg *telemetry.Registry
	var journal *telemetry.Journal
	if telemetryOn {
		reg = telemetry.NewRegistry()
		reg.PublishExpvar("mcpart")
		journal = telemetry.NewJournal(0)
		if *telemetryOut != "" {
			f, err := os.Create(*telemetryOut)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			defer f.Close()
			journal.SetSink(f)
		}
	}

	faults, err := faultinject.Parse(*inject)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	// Supervised run: SIGINT/SIGTERM and the optional watchdog cancel the
	// mix cooperatively via guarded generators.
	ctx, cancel := resilience.WithShutdown(context.Background())
	defer cancel()
	rep := faultinject.NewReporter(journal)
	sup := &resilience.Supervisor{Timeout: *timeout, Journal: journal}
	var res experiments.MixResult
	single := make([]float64, len(mix.Benchs))
	out := sup.Run(ctx, "mix", func(runCtx context.Context, hb *resilience.Heartbeat) error {
		rcfg := experiments.Config{Ctx: runCtx, Heartbeat: hb}
		m := rcfg.Mix(faultinject.WrapMix(mix, faults, rep))
		res = experiments.RunMixTelemetry(m, spec, *perThread, *seed, experiments.TelemetryOptions{
			Registry:      reg,
			Journal:       journal,
			SnapshotEvery: *snapshotEvery,
			EventSample:   *journalSample,
		})
		// The per-core stand-alone LRU baselines are independent runs;
		// fan them across -jobs workers (results land by core index, so
		// the report is identical at any jobs count).
		return parallel.ForEach(*jobs, len(m.Benchs), func(t int) error {
			single[t] = experiments.SingleIPC(m.Benchs[t], *cores, *perThread, *seed)
			return nil
		})
	})
	if out.Err != nil {
		journal.Flush()
		fmt.Fprintln(os.Stderr, out.Err)
		os.Exit(1)
	}
	if rep.Total() > 0 {
		fmt.Fprintf(os.Stderr, "[injected %d faults: %v]\n", rep.Total(), rep.Counts())
	}

	if err := journal.Flush(); err != nil {
		fmt.Fprintf(os.Stderr, "telemetry journal: %v\n", err)
		os.Exit(1)
	}
	if *memProfile != "" {
		if err := telemetry.WriteHeapProfile(*memProfile); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	w, err := metrics.WeightedIPC(res.IPC, single)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	h, err := metrics.HarmonicMeanNorm(res.IPC, single)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	throughput := metrics.Throughput(res.IPC)

	if *statsFmt == "json" {
		out := struct {
			Policy      string         `json:"policy"`
			Cores       int            `json:"cores"`
			Benchmarks  []string       `json:"benchmarks"`
			IPC         []float64      `json:"ipc"`
			SingleIPC   []float64      `json:"single_ipc"`
			WeightedIPC float64        `json:"weighted_ipc"`
			Throughput  float64        `json:"throughput"`
			Fairness    float64        `json:"fairness"`
			Metrics     map[string]any `json:"metrics,omitempty"`
		}{
			Policy: spec.Name, Cores: *cores, Benchmarks: mix.Names,
			IPC: res.IPC, SingleIPC: single,
			WeightedIPC: w, Throughput: throughput, Fairness: h,
			Metrics: reg.Snapshot(),
		}
		if err := json.NewEncoder(os.Stdout).Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	fmt.Printf("policy %s, %d cores, LLC %d MB shared\n", spec.Name, *cores, 2**cores)
	for t, b := range mix.Benchs {
		fmt.Printf("  core %2d  %-20s IPC %.4f  (alone: %.4f)\n", t, b.Name, res.IPC[t], single[t])
	}
	fmt.Printf("weighted IPC (W) %.4f\n", w)
	fmt.Printf("throughput   (T) %.4f\n", throughput)
	fmt.Printf("fairness     (H) %.4f\n", h)
	if journal != nil && *telemetryOut != "" {
		fmt.Printf("telemetry   %d records -> %s (%d snapshot)\n",
			journal.Total(), *telemetryOut, journal.CountKind(telemetry.KindSnapshot))
	}
}
