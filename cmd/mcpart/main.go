// Command mcpart runs one multi-programmed mix on a shared LLC under a
// thread-aware policy and reports the paper's W/T/H metrics against the
// stand-alone LRU baseline.
//
// Usage:
//
//	mcpart -cores 4 -policy pdppart-3 -benchmarks 436.cactusADM,403.gcc,470.lbm,482.sphinx3
//	mcpart -cores 16 -policy ta-drrip -mix 7
//
// Policies: ta-drrip, ucp, pipp, pdppart-2, pdppart-3, pdppart-8.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"pdp/internal/experiments"
	"pdp/internal/metrics"
	"pdp/internal/workload"
)

func main() {
	cores := flag.Int("cores", 4, "number of cores (LLC = 2MB per core)")
	policy := flag.String("policy", "pdppart-3", "shared-LLC policy")
	benchList := flag.String("benchmarks", "", "comma-separated benchmark names (one per core)")
	mixID := flag.Int("mix", -1, "use the i-th seeded random mix instead of -benchmarks")
	perThread := flag.Int("n", 400_000, "measured accesses per thread")
	seed := flag.Uint64("seed", 42, "random seed")
	flag.Parse()

	var mix workload.Mix
	switch {
	case *benchList != "":
		names := strings.Split(*benchList, ",")
		if len(names) != *cores {
			fmt.Fprintf(os.Stderr, "need %d benchmarks, got %d\n", *cores, len(names))
			os.Exit(2)
		}
		mix = workload.Mix{Names: names}
		for _, n := range names {
			b, ok := workload.ByName(strings.TrimSpace(n))
			if !ok {
				fmt.Fprintf(os.Stderr, "unknown benchmark %q\n", n)
				os.Exit(2)
			}
			mix.Benchs = append(mix.Benchs, b)
		}
	case *mixID >= 0:
		mixes := workload.Mixes(*cores, *mixID+1, *seed+uint64(*cores))
		mix = mixes[*mixID]
	default:
		fmt.Fprintln(os.Stderr, "provide -benchmarks or -mix")
		os.Exit(2)
	}

	spec, err := experiments.MCSpecByName(*policy, *perThread)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	res := experiments.RunMix(mix, spec, *perThread, *seed)
	single := make([]float64, len(mix.Benchs))
	for t, b := range mix.Benchs {
		single[t] = experiments.SingleIPC(b, *cores, *perThread, *seed)
	}

	fmt.Printf("policy %s, %d cores, LLC %d MB shared\n", spec.Name, *cores, 2**cores)
	for t, b := range mix.Benchs {
		fmt.Printf("  core %2d  %-20s IPC %.4f  (alone: %.4f)\n", t, b.Name, res.IPC[t], single[t])
	}
	w, err := metrics.WeightedIPC(res.IPC, single)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	h, err := metrics.HarmonicMeanNorm(res.IPC, single)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("weighted IPC (W) %.4f\n", w)
	fmt.Printf("throughput   (T) %.4f\n", metrics.Throughput(res.IPC))
	fmt.Printf("fairness     (H) %.4f\n", h)
}
