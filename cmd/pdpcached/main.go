// pdpcached serves a sharded in-memory key-value cache over HTTP whose
// eviction policy is the paper's protecting-distance policy running
// online: an RD sampler measures the live request stream's reuse-distance
// distribution per shard, and the protecting distance is recomputed
// periodically from the merged RDD with the E(d_p) hit-rate model — the
// serving-layer counterpart of the pdpsim simulator.
//
//	Usage: pdpcached -addr :7070 -policy pdp -shards 16 -sets 64 -ways 8 \
//		       -adapt-every 500ms -telemetry serve.jsonl
//
// Endpoints:
//
//	GET    /kv/{key}         value bytes; X-Cache: hit|miss, 404 on miss
//	PUT    /kv/{key}         store body; X-Cache: deny when admission-controlled
//	DELETE /kv/{key}         drop the key
//	POST   /batch            JSON array of get/put/delete ops; per-op
//	                         results in input order, executed per-shard
//	                         grouped locally and owner-split across the
//	                         cluster (see -max-batch-ops)
//	GET    /stats            JSON counters plus per-route latency quantiles,
//	                         per-shard stats with skew, decision counts and
//	                         the live RDD
//	GET    /metrics          Prometheus text exposition (latency histograms,
//	                         per-shard decision counters, the current PD)
//	GET    /debug/decisions  recent policy decisions (evict/deny/save ring)
//	GET    /healthz          liveness (200 even while degraded)
//	GET    /readyz           readiness (503 while any shard serves degraded)
//
// Every response carries an X-Request-Id (echoed from the request when the
// caller set one) that journal records reference on error paths.
//
// Robustness: -max-inflight bounds concurrent /kv/ requests (excess load
// is shed with 503 + Retry-After or waits under the request's X-Deadline),
// a per-shard breaker degrades PDP to shadow-LRU on recompute panics,
// stalls or corrupted evidence (re-arming after -rearm-after clean
// recomputes), -snapshot persists the warm cache state periodically and
// at shutdown, -resume warm-starts from it, and -inject drives seeded
// serving-path chaos (see internal/faultinject's grammar).
//
// Clustering: -cluster with -peers (every member's base URL) and
// -node-id (this node's URL as listed) turns N processes into one
// consistent-hash tier. Keys are owned by exactly one node; GETs for
// non-owned keys are proxied to the owner through a singleflight fill
// table (N concurrent misses cost one fetch), mutations are forwarded
// directly, and a health-probe loop ejects dead peers from the ring
// (-eject-after failed rounds) and rejoins them on recovery
// (-rejoin-after successes). GET /cluster/ring shows membership,
// aliveness and — with ?key=K — the owner K resolves to.
//
// SIGINT/SIGTERM shuts down gracefully: in-flight requests drain, the
// journal flushes, and the final stats line prints to stderr.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io/fs"
	"os"
	"runtime"
	"strings"
	"time"

	"pdp/internal/cluster"
	"pdp/internal/faultinject"
	"pdp/internal/kvcache"
	"pdp/internal/kvserver"
	"pdp/internal/resilience"
	"pdp/internal/servefault"
	"pdp/internal/telemetry"
)

func fail(code int, format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(code)
}

func main() {
	addr := flag.String("addr", ":7070", "listen address (use :0 for a random port)")
	policy := flag.String("policy", "pdp", "eviction policy: pdp or lru")
	shards := flag.Int("shards", 16, "independently locked cache shards (0 = auto-scale to GOMAXPROCS)")
	lockHoldSample := flag.Int("lock-hold-sample", 64, "sample 1 in N operations for the lock-hold watchdog (1 = every operation)")
	sets := flag.Int("sets", 64, "sets per shard (need not be a power of two)")
	ways := flag.Int("ways", 8, "ways per set")
	maxBytes := flag.Int64("max-bytes", 0, "value-byte budget per shard (0 = unbounded)")
	dmax := flag.Int("dmax", 256, "maximum protecting distance d_max")
	nc := flag.Int("nc", 8, "RPD counter bits n_c")
	sc := flag.Int("sc", 4, "RDD counter step S_c")
	de := flag.Int("de", 0, "E(d_p) extra-distance term d_e (0 = ways)")
	defaultPD := flag.Int("pd", 0, "initial protecting distance before the first recompute (0 = ways)")
	recomputeEvery := flag.Uint64("recompute-every", 64*1024, "recompute the PD inline every N cache accesses")
	decayShift := flag.Uint("decay-shift", 1, "epoch decay: right-shift RDD counters by this many bits at each recompute")
	minSamples := flag.Uint64("min-samples", 64, "measured reuses required before a recompute moves the PD")
	admitAll := flag.Bool("admit-all", false, "disable admission deny (evict an inclusive victim instead)")
	adaptEvery := flag.Duration("adapt-every", 500*time.Millisecond, "wall-clock PD recompute period")
	snapshotEvery := flag.Duration("snapshot-every", 2*time.Second, "telemetry snapshot period (needs -telemetry)")
	maxValue := flag.Int64("max-value-bytes", 1<<20, "largest accepted PUT body")
	maxBatchOps := flag.Int("max-batch-ops", 1024, "largest accepted POST /batch operation count")
	telemetryOut := flag.String("telemetry", "", "write a JSONL telemetry journal to this file")
	pprofAddr := flag.String("pprof", "", "serve /debug/pprof and /debug/vars on this address")
	maxInflight := flag.Int("max-inflight", 0, "bound concurrent /kv/ requests; excess is shed with 503 (0 = ungated)")
	retryAfter := flag.Duration("retry-after", time.Second, "Retry-After hint on shed responses")
	defaultDeadline := flag.Duration("default-deadline", 0, "deadline applied to /kv/ requests without an X-Deadline header (0 = none)")
	rearmAfter := flag.Int("rearm-after", 3, "clean recomputes before a degraded shard re-arms to PDP")
	recomputeTimeout := flag.Duration("recompute-timeout", 2*time.Second, "PD-recompute stall watchdog; a slower recompute trips every shard to LRU (0 = off)")
	lockHoldWarn := flag.Duration("lock-hold-warn", 250*time.Millisecond, "journal shard locks held longer than this (0 = off)")
	snapshotPath := flag.String("snapshot", "", "persist the warm cache state to this file periodically and at shutdown")
	snapshotStateEvery := flag.Duration("snapshot-state-every", 30*time.Second, "cache-state snapshot period (needs -snapshot)")
	resume := flag.Bool("resume", false, "warm-start from the -snapshot file when present (geometry mismatch cold-starts with a warning)")
	inject := flag.String("inject", "", "seeded serving-path fault injection, e.g. recompute.panic=0.2,latency.spike=1e-3,seed=7")
	clusterOn := flag.Bool("cluster", false, "enable consistent-hash peer routing (needs -peers and -node-id)")
	peers := flag.String("peers", "", "comma-separated base URLs of every cluster member, including this node")
	nodeID := flag.String("node-id", "", "this node's base URL exactly as listed in -peers")
	vnodes := flag.Int("vnodes", 64, "virtual points per member on the hash ring")
	clusterSeed := flag.Uint64("cluster-seed", 1, "ring placement seed; must match on every member")
	probeEvery := flag.Duration("probe-every", time.Second, "peer health-probe period")
	probeTimeout := flag.Duration("probe-timeout", 500*time.Millisecond, "per-probe budget")
	ejectAfter := flag.Int("eject-after", 3, "consecutive failed probe rounds before a peer is ejected from the ring")
	rejoinAfter := flag.Int("rejoin-after", 2, "consecutive successful probes before an ejected peer rejoins")
	peerTimeout := flag.Duration("peer-timeout", 2*time.Second, "per-exchange budget for proxied peer requests")
	flag.Parse()

	// Interval flags: zero or negative periods are configuration errors,
	// not silent no-ops — a timer with period <= 0 either never fires or
	// spins, and neither is what anyone asked for.
	if *adaptEvery <= 0 {
		fail(2, "-adapt-every must be a positive duration, got %v", *adaptEvery)
	}
	if *snapshotEvery <= 0 {
		fail(2, "-snapshot-every must be a positive duration, got %v", *snapshotEvery)
	}
	if *recomputeEvery < 1 {
		fail(2, "-recompute-every must be >= 1 access")
	}
	if *snapshotStateEvery <= 0 {
		fail(2, "-snapshot-state-every must be a positive duration, got %v", *snapshotStateEvery)
	}
	if *resume && *snapshotPath == "" {
		fail(2, "-resume needs -snapshot")
	}
	spec, err := faultinject.Parse(*inject)
	if err != nil {
		fail(2, "%v", err)
	}
	if *shards == 0 {
		// Auto-scale the lock-striping to the machine: more cores, more
		// shards, fewer collisions of concurrently running requests on one
		// shard lock. Hit rate is unaffected (the set geometry per shard is
		// unchanged; only the key->shard spread widens).
		*shards = kvcache.AutoShards()
		fmt.Fprintf(os.Stderr, "pdpcached: -shards 0 resolved to %d for GOMAXPROCS=%d\n",
			*shards, runtime.GOMAXPROCS(0))
	}

	reg := telemetry.NewRegistry()
	reg.PublishExpvar("pdpcached")
	journal := telemetry.NewJournal(0)
	if *telemetryOut != "" {
		f, err := os.Create(*telemetryOut)
		if err != nil {
			fail(1, "%v", err)
		}
		defer f.Close()
		journal.SetSink(f)
	}
	if *pprofAddr != "" {
		if err := telemetry.ServeDebug(*pprofAddr); err != nil {
			fail(1, "%v", err)
		}
	}

	ccfg := kvcache.Config{
		Policy:           kvcache.Policy(*policy),
		Shards:           *shards,
		Sets:             *sets,
		Ways:             *ways,
		MaxBytes:         *maxBytes,
		DMax:             *dmax,
		NC:               *nc,
		SC:               *sc,
		DE:               *de,
		DefaultPD:        *defaultPD,
		RecomputeEvery:   *recomputeEvery,
		EpochDecayShift:  *decayShift,
		MinSamples:       *minSamples,
		AdmitAll:         *admitAll,
		RearmAfter:       *rearmAfter,
		RecomputeTimeout: *recomputeTimeout,
		LockHoldWarn:     *lockHoldWarn,
		HoldSampleEvery:  *lockHoldSample,
		Registry:         reg,
		Journal:          journal,
	}
	if inj := servefault.NewInjector(spec, *shards, faultinject.NewReporter(journal)); inj != nil {
		ccfg.Chaos = inj
		fmt.Fprintf(os.Stderr, "pdpcached: chaos injection active: %s\n", spec)
	}
	cache, err := kvcache.New(ccfg)
	if err != nil {
		fail(2, "%v", err)
	}
	if *resume {
		switch n, rerr := servefault.RestoreFromFile(cache, *snapshotPath); {
		case rerr == nil:
			fmt.Fprintf(os.Stderr, "pdpcached: resumed %d entries from %s (pd=%d)\n",
				n, *snapshotPath, cache.PD())
		case errors.Is(rerr, fs.ErrNotExist):
			fmt.Fprintf(os.Stderr, "pdpcached: no snapshot at %s, cold start\n", *snapshotPath)
		default:
			// A corrupt or mismatched snapshot is a warning, never fatal:
			// serving cold beats not serving.
			fmt.Fprintf(os.Stderr, "pdpcached: resume failed (%v), cold start\n", rerr)
		}
	}

	var clust *cluster.Cluster
	if *clusterOn {
		if *peers == "" || *nodeID == "" {
			fail(2, "-cluster needs -peers and -node-id")
		}
		var members []string
		for _, p := range strings.Split(*peers, ",") {
			if p = strings.TrimSpace(strings.TrimSuffix(p, "/")); p != "" {
				members = append(members, p)
			}
		}
		clust, err = cluster.New(cluster.Config{
			Self:          strings.TrimSuffix(*nodeID, "/"),
			Peers:         members,
			VNodes:        *vnodes,
			Seed:          *clusterSeed,
			ProbeEvery:    *probeEvery,
			ProbeTimeout:  *probeTimeout,
			EjectAfter:    *ejectAfter,
			RejoinAfter:   *rejoinAfter,
			FetchTimeout:  *peerTimeout,
			MaxValueBytes: *maxValue + 4096,
			Registry:      reg,
			Journal:       journal,
		})
		if err != nil {
			fail(2, "%v", err)
		}
		fmt.Fprintf(os.Stderr, "pdpcached: cluster node %s in a %d-member ring (vnodes=%d seed=%d)\n",
			clust.Self(), len(members), *vnodes, *clusterSeed)
	} else if *peers != "" || *nodeID != "" {
		fail(2, "-peers/-node-id need -cluster")
	}

	srv, err := kvserver.New(cache, kvserver.Config{
		Addr:            *addr,
		Cluster:         clust,
		MaxValueBytes:   *maxValue,
		MaxBatchOps:     *maxBatchOps,
		AdaptEvery:      *adaptEvery,
		SnapshotEvery:   *snapshotEvery,
		MaxInflight:     *maxInflight,
		RetryAfter:      *retryAfter,
		DefaultDeadline: *defaultDeadline,
		StatePath:       *snapshotPath,
		StateEvery:      *snapshotStateEvery,
		Registry:        reg,
		Journal:         journal,
	})
	if err != nil {
		fail(2, "%v", err)
	}

	ctx, stop := resilience.WithShutdown(context.Background())
	defer stop()
	if err := srv.Start(ctx); err != nil {
		fail(1, "%v", err)
	}
	fmt.Fprintf(os.Stderr, "pdpcached: policy=%s serving on %s (%d shards x %d sets x %d ways)\n",
		cache.Config().Policy, srv.Addr(), cache.Config().Shards, cache.Config().Sets, cache.Config().Ways)

	select {
	case <-ctx.Done():
		fmt.Fprintln(os.Stderr, "pdpcached: shutting down")
	case err := <-srv.Err():
		fmt.Fprintf(os.Stderr, "pdpcached: serve error: %v\n", err)
	}
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		fmt.Fprintf(os.Stderr, "pdpcached: shutdown: %v\n", err)
	}
	final, _ := json.Marshal(cache.Stats())
	fmt.Fprintf(os.Stderr, "pdpcached: final %s\n", final)
}
