// pdpload replays a deterministic key-value request mix against a
// pdpcached server and reports client-observed hit rate, throughput and
// latency. The stream is seeded, so replaying the same seed against a
// -policy pdp and a -policy lru server compares the two eviction policies
// on identical traffic.
//
//	Usage: pdpload -url http://127.0.0.1:7070 -mix zipf-loop \
//		       -workers 4 -ops 50000 -seed 42
//
// Mixes (see internal/workload.ServiceMixes): zipf, zipf-scan, zipf-loop,
// churn, mixed. Individual parameters can be overridden with flags.
//
// -batch N ships each worker's ops as POST /batch requests of N ops
// instead of one request per op; accounting stays per-op (latency is the
// batch's wall time amortized over its ops, throughput is logical ops/s).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"

	"pdp/internal/loadgen"
	"pdp/internal/resilience"
	"pdp/internal/telemetry"
	"pdp/internal/workload"
)

func fail(code int, format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(code)
}

func main() {
	url := flag.String("url", "http://127.0.0.1:7070", "server base URL")
	urls := flag.String("urls", "", "comma-separated base URLs to drive round-robin (a cluster); overrides -url and enables per-target attribution")
	mixName := flag.String("mix", "zipf-loop", "request mix preset")
	workers := flag.Int("workers", 1, "concurrent client workers (0 = GOMAXPROCS)")
	ops := flag.Int("ops", 20000, "operations per worker")
	batch := flag.Int("batch", 0, "ops per POST /batch request (0 or 1 = unbatched per-op protocol)")
	seed := flag.Uint64("seed", 42, "base stream seed (worker w uses seed+w)")
	keys := flag.Int("keys", 0, "override: hot key-space size")
	zipfS := flag.Float64("zipf", -1, "override: Zipf skew exponent")
	valueBytes := flag.Int("value-bytes", 0, "override: base value size")
	scanEvery := flag.Int("scan-every", -1, "override: ops between scan bursts")
	scanLen := flag.Int("scan-len", -1, "override: keys per scan burst")
	scanLoop := flag.Int("scan-loop", -1, "override: cyclic scan pool size (0 = never-reused scans)")
	retries := flag.Int("retries", 2, "retry shed (503) and transport-failed requests this many times (capped backoff + jitter)")
	rampRetries := flag.Int("ramp-retries", 8, "separate retry budget for connection-refused attempts (a booting or just-killed node)")
	deadline := flag.Duration("deadline", 0, "per-request budget, sent as X-Deadline and enforced client-side (0 = none)")
	jsonOut := flag.Bool("json", false, "print the result as JSON")
	flag.Parse()

	mixes := workload.ServiceMixes()
	mix, ok := mixes[*mixName]
	if !ok {
		names := make([]string, 0, len(mixes))
		for n := range mixes {
			names = append(names, n)
		}
		sort.Strings(names)
		fail(2, "unknown mix %q; available: %s", *mixName, strings.Join(names, ", "))
	}
	if *keys > 0 {
		mix.Keys = *keys
	}
	if *zipfS >= 0 {
		mix.ZipfS = *zipfS
	}
	if *valueBytes > 0 {
		mix.ValueBytes = *valueBytes
	}
	if *scanEvery >= 0 {
		mix.ScanEvery = *scanEvery
	}
	if *scanLen >= 0 {
		mix.ScanLen = *scanLen
	}
	if *scanLoop >= 0 {
		mix.ScanLoop = *scanLoop
	}
	if err := mix.Validate(); err != nil {
		fail(2, "%v", err)
	}
	if *workers == 0 {
		*workers = runtime.GOMAXPROCS(0)
	}
	if *workers < 1 {
		fail(2, "-workers must be >= 0, got %d", *workers)
	}
	if *ops < 1 {
		fail(2, "-ops must be >= 1, got %d", *ops)
	}
	if *batch < 0 {
		fail(2, "-batch must be >= 0, got %d", *batch)
	}

	ctx, stop := resilience.WithShutdown(context.Background())
	defer stop()
	var targets []string
	for _, u := range strings.Split(*urls, ",") {
		if u = strings.TrimSpace(u); u != "" {
			targets = append(targets, u)
		}
	}
	res, err := loadgen.Run(ctx, loadgen.Config{
		BaseURL:     *url,
		Targets:     targets,
		Mix:         mix,
		Workers:     *workers,
		Ops:         *ops,
		Batch:       *batch,
		Seed:        *seed,
		Retries:     *retries,
		RampRetries: *rampRetries,
		Deadline:    *deadline,
		Registry:    telemetry.NewRegistry(),
	})
	if err != nil && res.Ops == 0 {
		fail(1, "%v", err)
	}

	if *jsonOut {
		out, _ := json.MarshalIndent(res, "", "  ")
		fmt.Println(string(out))
		return
	}
	fmt.Printf("mix=%s workers=%d ops=%d batch=%d seed=%d\n", *mixName, *workers, res.Ops, *batch, *seed)
	fmt.Printf("hit rate     %.4f (%d hits / %d gets)\n", res.HitRate(), res.Hits, res.Hits+res.Misses)
	fmt.Printf("throughput   %.0f ops/s\n", res.Throughput())
	fmt.Printf("mean latency %.1f us\n", res.MeanLatencyUS)
	fmt.Printf("latency      p50 %.1f us | p90 %.1f us | p99 %.1f us | p99.9 %.1f us\n",
		res.P50LatencyUS, res.P90LatencyUS, res.P99LatencyUS, res.P999LatencyUS)
	fmt.Printf("denies       %d\n", res.Denies)
	fmt.Printf("availability %.4f\n", res.Availability())
	fmt.Printf("sheds        %d\n", res.Sheds)
	fmt.Printf("timeouts     %d\n", res.Timeouts)
	fmt.Printf("transport    %d\n", res.Transport)
	fmt.Printf("server-5xx   %d\n", res.Server5xx)
	fmt.Printf("retries      %d\n", res.Retries)
	fmt.Printf("refused      %d\n", res.Refused)
	fmt.Printf("errors       %d\n", res.Errors)
	if len(res.PerTarget) > 0 {
		tgts := make([]string, 0, len(res.PerTarget))
		for tgt := range res.PerTarget {
			tgts = append(tgts, tgt)
		}
		sort.Strings(tgts)
		for _, tgt := range tgts {
			tr := res.PerTarget[tgt]
			fmt.Printf("target %-28s answers=%d hit_rate=%.4f sheds=%d errors=%d mean=%.1fus p99=%.1fus\n",
				tgt, tr.Answers, tr.HitRate, tr.Sheds, tr.Errors, tr.MeanLatencyUS, tr.P99LatencyUS)
		}
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "pdpload: interrupted: %v\n", err)
		os.Exit(1)
	}
}
