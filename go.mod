module pdp

go 1.22
