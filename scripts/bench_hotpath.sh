#!/bin/sh
# Benchmark the serving hot path and record the evidence into
# BENCH_hotpath.json:
#
#   1. kvcache shard microbenchmarks (GET hit/miss, GetAppend, PUT
#      update/churn) — min ns/op and allocs/op over three runs, next to
#      the committed pre-overhaul baseline so the before/after delta is
#      part of the artifact;
#   2. the shards sweep under GOMAXPROCS 1/2/4 (the -shards knob's
#      scaling evidence);
#   3. end-to-end pdpload runs at 1/4/16 workers against a live
#      pdpcached — throughput and client-observed p99.
#
# Usage: scripts/bench_hotpath.sh [ops-per-worker]
set -eu

ops="${1:-20000}"
benchtime="${BENCHTIME:-300ms}"
addr="127.0.0.1:7219"

cd "$(dirname "$0")/.."

# --- 1. shard microbenchmarks (best of 3) ------------------------------
echo "running hot-path microbenchmarks (benchtime $benchtime x3)..."
go test -run @ -bench 'HotPath' -benchtime "$benchtime" -count 3 \
    ./internal/kvcache/ > /tmp/pdp-hotpath-micro.txt
go test -run @ -bench 'ShardsSweep' -benchtime "$benchtime" -cpu 1,2,4 \
    ./internal/kvcache/ > /tmp/pdp-hotpath-sweep.txt

micro() { # micro <name> -> "ns_op allocs_op" (min ns/op across counts)
    # GOMAXPROCS=1 runs omit the -N procs suffix from benchmark names.
    awk -v want="$1" '
        $1 ~ ("^BenchmarkHotPath" want "(-[0-9]+)?$") {
            ns = ""; al = ""
            for (i = 1; i <= NF; i++) {
                if ($(i+1) == "ns/op") ns = $i
                if ($(i+1) == "allocs/op") al = $i
            }
            if (ns != "" && (best == "" || ns + 0 < best + 0)) { best = ns; alloc = al }
        }
        END {
            if (best == "") exit 1
            printf "%s %s", best, alloc
        }' /tmp/pdp-hotpath-micro.txt
}

sweep() { # sweep <shards> <cpu> -> ns_op
    suffix="-$2"
    [ "$2" = 1 ] && suffix="" # GOMAXPROCS=1 runs have no -N suffix
    awk -v want="^BenchmarkShardsSweep/shards=$1$suffix\$" '
        $1 ~ want {
            for (i = 1; i <= NF; i++) if ($(i+1) == "ns/op") { printf "%s", $i; exit }
        }' /tmp/pdp-hotpath-sweep.txt
}

# Pre-overhaul baseline, measured at commit 9d0b453 with the same
# benchmarks (best of 3 x 300ms, single core). GetHit then returned an
# alias into the shard; it now returns a caller-owned copy, so its one
# alloc/op buys a use-after-evict safety the baseline did not have.
# GetAppend did not exist before the overhaul.
baseline() { # baseline <name> -> "ns_op allocs_op" or ""
    case "$1" in
    GetHit)    echo "223.1 0" ;;
    GetMiss)   echo "215.1 0" ;;
    PutUpdate) echo "290.4 1" ;;
    PutChurn)  echo "433.2 1" ;;
    *)         echo "" ;;
    esac
}

json="{\n  \"benchtime\": \"$benchtime x3 (min)\",\n  \"baseline_commit\": \"9d0b453\","
json="$json\n  \"microbench_ns_op\": {"
first=1
for name in GetHit GetAppend GetMiss PutUpdate PutChurn; do
    set -- $(micro "$name")
    ns="$1"; al="$2"
    [ "$first" = 1 ] || json="$json,"
    first=0
    base=$(baseline "$name")
    if [ -n "$base" ]; then
        set -- $base
        json="$json\n    \"$name\": {\"before_ns_op\": $1, \"before_allocs_op\": $2, \"ns_op\": $ns, \"allocs_op\": $al}"
        echo "$name: $1 -> $ns ns/op, $2 -> $al allocs/op"
    else
        json="$json\n    \"$name\": {\"ns_op\": $ns, \"allocs_op\": $al}"
        echo "$name: $ns ns/op, $al allocs/op (no pre-overhaul counterpart)"
    fi
done
json="$json\n  },"

# --- 2. shards sweep across GOMAXPROCS ---------------------------------
json="$json\n  \"shards_sweep_ns_op\": {"
firsts=1
for shards in 1 4 16 64; do
    [ "$firsts" = 1 ] || json="$json,"
    firsts=0
    line=""
    for cpu in 1 2 4; do
        ns=$(sweep "$shards" "$cpu")
        [ -n "$ns" ] || ns=null
        [ -z "$line" ] || line="$line, "
        line="$line\"gomaxprocs_$cpu\": $ns"
    done
    json="$json\n    \"shards_$shards\": {$line}"
    echo "shards=$shards: $line"
done
json="$json\n  },"

# --- 3. end-to-end: pdpload vs a live pdpcached ------------------------
go build -o /tmp/pdp-hotpath-cached ./cmd/pdpcached
go build -o /tmp/pdp-hotpath-load ./cmd/pdpload

/tmp/pdp-hotpath-cached -addr "$addr" -policy pdp \
    -shards 16 -sets 64 -ways 8 -recompute-every 8192 \
    -adapt-every 250ms 2>/dev/null &
server_pid=$!
trap 'kill "$server_pid" 2>/dev/null || true' EXIT
for _ in $(seq 1 50); do
    if curl -fs "http://$addr/healthz" >/dev/null 2>&1; then break; fi
    sleep 0.1
done

field() { # field <json-file> <key>
    sed -n "s/^.*\"$2\": *\([0-9.]*\).*$/\1/p" "$1" | head -1
}

json="$json\n  \"serving\": {"
firstw=1
for workers in 1 4 16; do
    out="/tmp/pdp-hotpath-w$workers.json"
    /tmp/pdp-hotpath-load -url "http://$addr" -mix zipf-loop -keys 300 \
        -zipf 0.8 -seed 42 -workers "$workers" -ops "$ops" -json > "$out"
    tput=$(awk -v o="$(field "$out" ops)" -v d="$(field "$out" duration_ns)" \
        'BEGIN { printf "%.0f", (d > 0) ? o / (d / 1e9) : 0 }')
    p99=$(field "$out" p99_latency_us)
    [ "$firstw" = 1 ] || json="$json,"
    firstw=0
    json="$json\n    \"workers_$workers\": {\"ops_per_s\": $tput, \"p99_latency_us\": $p99}"
    echo "workers=$workers: $tput ops/s, p99 $p99 us"
done
kill "$server_pid" 2>/dev/null || true
wait "$server_pid" 2>/dev/null || true
trap - EXIT

json="$json\n  }\n}"
printf "$json\n" > BENCH_hotpath.json
echo "wrote BENCH_hotpath.json"
