#!/bin/sh
# Chaos smoke: the serving-path robustness gate.
#
#  1. The seeded chaos campaign and breaker tests under -race.
#  2. pdpcached under live fault injection (recompute panics, RDD counter
#     flips, shard latency spikes) with the admission gate and state
#     snapshots on, hammered by the overload-aware pdpload client; the
#     run must stay >= 99% available (sheds are orderly answers, not
#     unavailability) and /metrics must expose the robustness counters.
#  3. Warm restart: SIGTERM the injected server (writing its final
#     snapshot), bring it back with -resume, and check it actually
#     resumed and still serves.
#
# Usage: scripts/chaos_smoke.sh [ops-per-worker]
set -eu

ops="${1:-5000}"
addr="127.0.0.1:7219"
snap="/tmp/pdp-chaos-smoke.snap"
serverlog="/tmp/pdp-chaos-smoke-server.log"

cd "$(dirname "$0")/.."

echo "== chaos + breaker tests (race) =="
go test -race -count=1 -run 'TestChaosCampaign|TestReadyzTracksBreaker|TestBreaker|TestGate' \
    ./internal/servefault/ ./internal/kvcache/

go build -o /tmp/pdp-chaos-cached ./cmd/pdpcached
go build -o /tmp/pdp-chaos-load ./cmd/pdpload
go build -o /tmp/pdp-chaos-promlint ./cmd/promlint
rm -f "$snap"

start_server() { # start_server <extra flags...>
    /tmp/pdp-chaos-cached -addr "$addr" -policy pdp \
        -shards 4 -sets 16 -ways 8 -recompute-every 4096 -adapt-every 100ms \
        -max-inflight 256 -rearm-after 2 \
        -snapshot "$snap" -snapshot-state-every 2s "$@" 2> "$serverlog" &
    server_pid=$!
    for _ in $(seq 1 50); do
        if curl -fs "http://$addr/healthz" >/dev/null 2>&1; then return; fi
        sleep 0.1
    done
    echo "FAIL: pdpcached did not come up on $addr" >&2
    cat "$serverlog" >&2
    exit 1
}

stop_server() { # graceful: SIGTERM drains and writes the final snapshot
    kill -TERM "$server_pid" 2>/dev/null || true
    wait "$server_pid" 2>/dev/null || true
}

echo "== serving under injected faults =="
journal="/tmp/pdp-chaos-smoke.jsonl"
start_server -telemetry "$journal" \
    -inject 'recompute.panic=0.5,counter.flip=0.01,latency.spike=0.001,spike.ms=1,seed=7'
grep -q 'chaos injection active' "$serverlog"

out="/tmp/pdp-chaos-load.json"
/tmp/pdp-chaos-load -url "http://$addr" -mix zipf-loop -keys 300 -zipf 0.8 \
    -workers 4 -ops "$ops" -seed 42 -retries 2 -json > "$out"

field() { sed -n "s/^.*\"$1\": *\([0-9.]*\).*$/\1/p" "$out" | head -1; }
avail=$(awk -v o="$(field ops)" -v s="$(field sheds)" -v e="$(field errors)" \
    'BEGIN { t = o + s + e; printf "%.4f", (t > 0) ? (o + s) / t : 1 }')
echo "ops=$(field ops) sheds=$(field sheds) errors=$(field errors) availability=$avail"
awk -v a="$avail" 'BEGIN { exit !(a >= 0.99) }' || {
    echo "FAIL: availability $avail under chaos (want >= 0.99)" >&2
    cat "$out" >&2
    exit 1
}

page="/tmp/pdp-chaos-smoke.prom"
curl -fs "http://$addr/metrics" > "$page"
/tmp/pdp-chaos-promlint "$page"
for want in http_shed http_deadline_timeout kv_degraded_shards kv_breaker_trips \
    kv_breaker_rearms kv_state_snapshots; do
    if ! grep -q "^$want" "$page"; then
        echo "FAIL: /metrics missing $want" >&2
        exit 1
    fi
done

stop_server
# The journal proves the campaign actually exercised the machinery:
# injected faults and breaker transitions were recorded.
grep -q '"kind":"fault"' "$journal" || {
    echo "FAIL: the injector never fired (no fault records in $journal)" >&2
    exit 1
}
grep -q '"kind":"breaker"' "$journal" || {
    echo "FAIL: no breaker transitions under recompute.panic=0.5" >&2
    exit 1
}
if [ ! -s "$snap" ]; then
    echo "FAIL: no state snapshot written by graceful shutdown" >&2
    cat "$serverlog" >&2
    exit 1
fi

echo "== warm restart from the snapshot =="
start_server -resume
if ! grep -q 'resumed [1-9][0-9]* entries' "$serverlog"; then
    echo "FAIL: -resume did not warm-start from $snap" >&2
    cat "$serverlog" >&2
    exit 1
fi
sed -n 's/^pdpcached: resumed/resumed/p' "$serverlog"
# The resumed server serves a short clean run at full availability.
/tmp/pdp-chaos-load -url "http://$addr" -mix zipf-loop -keys 300 -zipf 0.8 \
    -workers 2 -ops 2000 -seed 43 -json > "$out"
if [ "$(field errors)" != "0" ]; then
    echo "FAIL: $(field errors) errors against the resumed server" >&2
    exit 1
fi
stop_server

echo "chaos smoke: OK"
