#!/bin/sh
# Batch-size sweep for the serving layer: start pdpcached (PDP policy),
# replay the same seeded zipf-loop mix with pdpload at a fixed worker
# count while sweeping -batch through 1, 8, 32 and 128, and record
# throughput, hit rate and per-op latency quantiles per batch size into
# BENCH_batch.json. Batch 1 still pays one HTTP request per op (the
# per-op wire protocol), so the sweep isolates the wire-batching win and
# shows where amortized per-op p99 crosses over as batches grow.
#
# Usage: scripts/bench_batch.sh [ops-per-worker] [workers]
set -eu

ops="${1:-20000}"
workers="${2:-16}"
addr="127.0.0.1:7219"
mix_args="-mix zipf-loop -keys 300 -zipf 0.8 -scan-every 200 -scan-len 400 -scan-loop 1600 -seed 42"

cd "$(dirname "$0")/.."
go build -o /tmp/pdp-batch-bench-cached ./cmd/pdpcached
go build -o /tmp/pdp-batch-bench-load ./cmd/pdpload

/tmp/pdp-batch-bench-cached -addr "$addr" -policy pdp \
    -shards 4 -sets 16 -ways 8 -recompute-every 8192 \
    -adapt-every 250ms 2>/dev/null &
server_pid=$!
trap 'kill "$server_pid" 2>/dev/null || true' EXIT
for _ in $(seq 1 50); do
    if curl -fs "http://$addr/healthz" >/dev/null 2>&1; then break; fi
    sleep 0.1
done
curl -fs "http://$addr/healthz" >/dev/null || {
    echo "FAIL: pdpcached did not come up on $addr" >&2
    exit 1
}

field() { # field <json-file> <key>
    sed -n "s/^.*\"$2\": *\([0-9.]*\).*$/\1/p" "$1" | head -1
}

json="{\n  \"mix\": \"zipf-loop keys=300 zipf=0.8 scan=200/400 loop=1600 seed=42\",\n  \"ops_per_worker\": $ops,\n  \"workers\": $workers,\n  \"runs\": {"
first=1
for batch in 1 8 32 128; do
    out="/tmp/pdp-batch-bench-b$batch.json"
    # shellcheck disable=SC2086
    /tmp/pdp-batch-bench-load -url "http://$addr" $mix_args \
        -workers "$workers" -ops "$ops" -batch "$batch" -json > "$out"
    ops_n=$(field "$out" ops)
    dur_ns=$(field "$out" duration_ns)
    hits=$(field "$out" hits)
    misses=$(field "$out" misses)
    p50=$(field "$out" p50_latency_us)
    p99=$(field "$out" p99_latency_us)
    errors=$(field "$out" errors)
    if [ "${errors:-0}" != "0" ]; then
        echo "FAIL: batch=$batch run recorded $errors errors" >&2
        exit 1
    fi
    set -- $(awk -v o="$ops_n" -v d="$dur_ns" -v h="$hits" -v m="$misses" \
        -v p50="$p50" -v p99="$p99" \
        'BEGIN { printf "%.0f %.4f %.1f %.1f", o / (d / 1e9), (h + m > 0) ? h / (h + m) : 0, p50, p99 }')
    p50=$3; p99=$4
    [ "$first" = 1 ] || json="$json,"
    first=0
    json="$json\n    \"batch_$batch\": {\"ops_per_s\": $1, \"hit_rate\": $2, \"p50_latency_us\": $p50, \"p99_latency_us\": $p99}"
    echo "batch=$batch: $1 ops/s, hit rate $2, p50/p99 $p50/$p99 us"
done
json="$json\n  }\n}"
printf "$json\n" > BENCH_batch.json
echo "wrote BENCH_batch.json"
