#!/bin/sh
# Benchmark the serving layer: start pdpcached (PDP policy) on a local
# port, replay the zipf-loop mix with pdpload at 1, 4 and 8 workers, and
# record throughput, client-observed hit rate and client latency
# quantiles (p50/p90/p99) per worker count into BENCH_serve.json. A
# 16-worker pair — per-op wire protocol vs -batch 32 — measures the
# batching win at the same offered load, and an LRU run at 4 workers on
# the same seeded stream is recorded alongside as the baseline. While the
# servers are up, /metrics is scraped and validated with promlint, so a
# malformed exposition fails the benchmark.
#
# Usage: scripts/bench_serve.sh [ops-per-worker]
set -eu

ops="${1:-20000}"
addr="127.0.0.1:7217"
mix_args="-mix zipf-loop -keys 300 -zipf 0.8 -scan-every 200 -scan-len 400 -scan-loop 1600 -seed 42"

cd "$(dirname "$0")/.."
go build -o /tmp/pdp-serve-bench-cached ./cmd/pdpcached
go build -o /tmp/pdp-serve-bench-load ./cmd/pdpload
go build -o /tmp/pdp-serve-bench-promlint ./cmd/promlint

run_load() { # run_load <workers> [batch]
    # shellcheck disable=SC2086
    /tmp/pdp-serve-bench-load -url "http://$addr" $mix_args \
        -workers "$1" -ops "$ops" -batch "${2:-0}" -json
}

start_server() {
    /tmp/pdp-serve-bench-cached -addr "$addr" -policy "$1" \
        -shards 4 -sets 16 -ways 8 -recompute-every 8192 \
        -adapt-every 250ms 2>/dev/null &
    server_pid=$!
    for _ in $(seq 1 50); do
        if curl -fs "http://$addr/healthz" >/dev/null 2>&1; then return; fi
        sleep 0.1
    done
    echo "FAIL: pdpcached did not come up on $addr" >&2
    exit 1
}

stop_server() {
    kill "$server_pid" 2>/dev/null || true
    wait "$server_pid" 2>/dev/null || true
}

check_metrics() { # check_metrics <tag> — scrape /metrics, lint, spot-check
    page="/tmp/pdp-serve-bench-$1.prom"
    curl -fs "http://$addr/metrics" > "$page"
    /tmp/pdp-serve-bench-promlint "$page"
    for want in http_latency_ns_bucket kv_gets; do
        if ! grep -q "$want" "$page"; then
            echo "FAIL: /metrics ($1) missing $want" >&2
            exit 1
        fi
    done
}

field() { # field <json-file> <key>
    sed -n "s/^.*\"$2\": *\([0-9.]*\).*$/\1/p" "$1" | head -1
}

summary() { # summary <json-file> -> "throughput hitrate p50 p90 p99"
    ops_n=$(field "$1" ops)
    dur_ns=$(field "$1" duration_ns)
    hits=$(field "$1" hits)
    misses=$(field "$1" misses)
    p50=$(field "$1" p50_latency_us)
    p90=$(field "$1" p90_latency_us)
    p99=$(field "$1" p99_latency_us)
    awk -v o="$ops_n" -v d="$dur_ns" -v h="$hits" -v m="$misses" \
        -v p50="$p50" -v p90="$p90" -v p99="$p99" \
        'BEGIN { printf "%.0f %.4f %.1f %.1f %.1f", \
            o / (d / 1e9), (h + m > 0) ? h / (h + m) : 0, p50, p90, p99 }'
}

record() { # record <name> <json-file> — append one run object
    set -- "$1" $(summary "$2")
    [ "$first" = 1 ] || json="$json,"
    first=0
    json="$json\n    \"$1\": {\"ops_per_s\": $2, \"hit_rate\": $3, \"p50_latency_us\": $4, \"p90_latency_us\": $5, \"p99_latency_us\": $6}"
    echo "$1: $2 ops/s, hit rate $3, p50/p90/p99 $4/$5/$6 us"
}

json="{\n  \"mix\": \"zipf-loop keys=300 zipf=0.8 scan=200/400 loop=1600 seed=42\",\n  \"ops_per_worker\": $ops,\n  \"runs\": {"
first=1

start_server pdp
for workers in 1 4 8; do
    out="/tmp/pdp-serve-bench-w$workers.json"
    run_load "$workers" > "$out"
    record "pdp_workers_$workers" "$out"
done
# The batching comparison: same mix, same seed, same 16 workers — only
# the wire protocol changes (one request per op vs 32 ops per request).
out="/tmp/pdp-serve-bench-w16.json"
run_load 16 > "$out"
record "pdp_workers_16" "$out"
out="/tmp/pdp-serve-bench-w16-b32.json"
run_load 16 32 > "$out"
record "pdp_workers_16_batch32" "$out"
check_metrics pdp
for want in kv_pd kv_shard_evictions http_batch_size; do
    if ! grep -q "$want" /tmp/pdp-serve-bench-pdp.prom; then
        echo "FAIL: pdp /metrics missing $want" >&2
        exit 1
    fi
done
stop_server

start_server lru
out="/tmp/pdp-serve-bench-lru.json"
run_load 4 > "$out"
record "lru_workers_4" "$out"
check_metrics lru
stop_server

json="$json\n  }\n}"
printf "$json\n" > BENCH_serve.json
echo "wrote BENCH_serve.json"
