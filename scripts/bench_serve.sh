#!/bin/sh
# Benchmark the serving layer: start pdpcached (PDP policy) on a local
# port, replay the zipf-loop mix with pdpload at 1, 4 and 8 workers, and
# record throughput + client-observed hit rate per worker count into
# BENCH_serve.json. An LRU run at 4 workers on the same seeded stream is
# recorded alongside as the baseline.
#
# Usage: scripts/bench_serve.sh [ops-per-worker]
set -eu

ops="${1:-20000}"
addr="127.0.0.1:7217"
mix_args="-mix zipf-loop -keys 300 -zipf 0.8 -scan-every 200 -scan-len 400 -scan-loop 1600 -seed 42"

cd "$(dirname "$0")/.."
go build -o /tmp/pdp-serve-bench-cached ./cmd/pdpcached
go build -o /tmp/pdp-serve-bench-load ./cmd/pdpload

run_load() {
    # shellcheck disable=SC2086
    /tmp/pdp-serve-bench-load -url "http://$addr" $mix_args \
        -workers "$1" -ops "$ops" -json
}

start_server() {
    /tmp/pdp-serve-bench-cached -addr "$addr" -policy "$1" \
        -shards 4 -sets 16 -ways 8 -recompute-every 8192 \
        -adapt-every 250ms 2>/dev/null &
    server_pid=$!
    for _ in $(seq 1 50); do
        if curl -fs "http://$addr/healthz" >/dev/null 2>&1; then return; fi
        sleep 0.1
    done
    echo "FAIL: pdpcached did not come up on $addr" >&2
    exit 1
}

stop_server() {
    kill "$server_pid" 2>/dev/null || true
    wait "$server_pid" 2>/dev/null || true
}

field() { # field <json-file> <key>
    sed -n "s/^.*\"$2\": *\([0-9.]*\).*$/\1/p" "$1" | head -1
}

summary() { # summary <json-file> -> "throughput hitrate"
    ops_n=$(field "$1" ops)
    dur_ns=$(field "$1" duration_ns)
    hits=$(field "$1" hits)
    misses=$(field "$1" misses)
    awk -v o="$ops_n" -v d="$dur_ns" -v h="$hits" -v m="$misses" \
        'BEGIN { printf "%.0f %.4f", o / (d / 1e9), (h + m > 0) ? h / (h + m) : 0 }'
}

json="{\n  \"mix\": \"zipf-loop keys=300 zipf=0.8 scan=200/400 loop=1600 seed=42\",\n  \"ops_per_worker\": $ops,\n  \"runs\": {"

start_server pdp
first=1
for workers in 1 4 8; do
    out="/tmp/pdp-serve-bench-w$workers.json"
    run_load "$workers" > "$out"
    set -- $(summary "$out")
    echo "pdp workers=$workers: $1 ops/s, hit rate $2"
    [ "$first" = 1 ] || json="$json,"
    first=0
    json="$json\n    \"pdp_workers_$workers\": {\"ops_per_s\": $1, \"hit_rate\": $2}"
done
stop_server

start_server lru
out="/tmp/pdp-serve-bench-lru.json"
run_load 4 > "$out"
set -- $(summary "$out")
echo "lru workers=4: $1 ops/s, hit rate $2"
json="$json,\n    \"lru_workers_4\": {\"ops_per_s\": $1, \"hit_rate\": $2}"
stop_server

json="$json\n  }\n}"
printf "$json\n" > BENCH_serve.json
echo "wrote BENCH_serve.json"
