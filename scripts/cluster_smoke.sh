#!/bin/sh
# Cluster smoke: the clustered-serving gate.
#
#  1. The cluster unit/e2e tests under -race (ring properties,
#     singleflight, breaker, probe-driven eject/rejoin, 3-node routing).
#  2. A real 3-node local cluster under multi-target load: every node
#     must agree on key ownership, proxied traffic must flow, and the
#     run must stay >= 99% available.
#  3. Kill one node with SIGKILL mid-tier: the survivors must eject it
#     from their rings, agree on the rerouted owners, and keep serving
#     >= 99% available; then restart it and watch it rejoin.
#
# Usage: scripts/cluster_smoke.sh [ops-per-worker]
set -eu

ops="${1:-4000}"
p1=7231; p2=7232; p3=7233
u1="http://127.0.0.1:$p1"; u2="http://127.0.0.1:$p2"; u3="http://127.0.0.1:$p3"
peers="$u1,$u2,$u3"
logdir="/tmp/pdp-cluster-smoke"

cd "$(dirname "$0")/.."
mkdir -p "$logdir"

echo "== cluster tests (race) =="
go test -race -count=1 ./internal/cluster/

go build -o /tmp/pdp-cluster-cached ./cmd/pdpcached
go build -o /tmp/pdp-cluster-load ./cmd/pdpload

start_node() { # start_node <port> <url> <logname>; echoes nothing, sets node_pid
    /tmp/pdp-cluster-cached -addr "127.0.0.1:$1" -policy pdp \
        -shards 2 -sets 64 -ways 4 -adapt-every 100ms \
        -cluster -peers "$peers" -node-id "$2" \
        -probe-every 200ms -probe-timeout 150ms -eject-after 2 -rejoin-after 2 \
        2> "$logdir/$3.log" &
    node_pid=$!
}

wait_up() { # wait_up <url>
    for _ in $(seq 1 50); do
        if curl -fs "$1/healthz" >/dev/null 2>&1; then return; fi
        sleep 0.1
    done
    echo "FAIL: node $1 did not come up" >&2
    cat "$logdir"/*.log >&2
    exit 1
}

ring_field() { # ring_field <url> <query> <json-field>  (fields appearing once)
    curl -fs "$1/cluster/ring$2" | sed -n "s/^.*\"$3\": *\"\{0,1\}\([^\",}]*\)\"\{0,1\}.*$/\1/p" | head -1
}

alive_count() { # alive_count <url> — the top-level count, not a member's flag
    curl -fs "$1/cluster/ring" | sed -n 's/^.*"vnodes":[0-9]*,"alive":\([0-9]*\).*$/\1/p' | head -1
}

cleanup() {
    kill "$pid1" "$pid2" "$pid3" 2>/dev/null || true
    wait 2>/dev/null || true
}
trap cleanup EXIT

echo "== boot 3-node cluster =="
start_node "$p1" "$u1" node1; pid1=$node_pid
start_node "$p2" "$u2" node2; pid2=$node_pid
start_node "$p3" "$u3" node3; pid3=$node_pid
wait_up "$u1"; wait_up "$u2"; wait_up "$u3"

# Every node sees 3 alive members and all three agree on one key's owner.
for u in "$u1" "$u2" "$u3"; do
    alive=$(alive_count "$u")
    if [ "$alive" != "3" ]; then
        echo "FAIL: $u reports alive=$alive, want 3" >&2
        exit 1
    fi
done
o1=$(ring_field "$u1" "?key=smoke-key" owner)
o2=$(ring_field "$u2" "?key=smoke-key" owner)
o3=$(ring_field "$u3" "?key=smoke-key" owner)
if [ "$o1" != "$o2" ] || [ "$o2" != "$o3" ] || [ -z "$o1" ]; then
    echo "FAIL: owner disagreement for smoke-key: [$o1] [$o2] [$o3]" >&2
    exit 1
fi
echo "ring converged: 3 alive, smoke-key -> $o1"

echo "== multi-target load across the healthy tier =="
out="$logdir/load.json"
/tmp/pdp-cluster-load -urls "$peers" -mix zipf-scan -keys 4000 \
    -workers 4 -ops "$ops" -seed 42 -json > "$out"
# Top-level fields only (2-space indent): per_target rows nest deeper and
# repeat names like hit_rate.
field() { sed -n "s/^  \"$1\": *\([0-9.]*\).*$/\1/p" "$out" | head -1; }
avail=$(field availability)
echo "ops=$(field ops) errors=$(field errors) availability=$avail hit_rate=$(field hit_rate)"
awk -v a="$avail" 'BEGIN { exit !(a >= 0.99) }' || {
    echo "FAIL: healthy-tier availability $avail (want >= 0.99)" >&2
    cat "$out" >&2
    exit 1
}
# Ownership routing engaged: some node proxied traffic to a peer.
proxied=0
for u in "$u1" "$u2" "$u3"; do
    p=$(curl -fs "$u/cluster/ring" | sed -n 's/^.*"proxied": *\([0-9]*\).*$/\1/p' | head -1)
    proxied=$((proxied + p))
done
if [ "$proxied" -eq 0 ]; then
    echo "FAIL: no proxied requests; ownership routing inert" >&2
    exit 1
fi
echo "proxied exchanges across the tier: $proxied"

echo "== batched load across the healthy tier =="
# The same multi-target drive over the batched wire protocol: each worker
# ships 16-op POST /batch requests, and the receiving node owner-splits
# them into per-peer sub-batches. The fan-out counter proves that path
# actually engaged rather than every batch executing locally.
/tmp/pdp-cluster-load -urls "$peers" -mix zipf-scan -keys 4000 \
    -workers 4 -ops "$ops" -batch 16 -seed 44 -json > "$out"
avail=$(field availability)
echo "batched ops=$(field ops) errors=$(field errors) availability=$avail hit_rate=$(field hit_rate)"
awk -v a="$avail" 'BEGIN { exit !(a >= 0.99) }' || {
    echo "FAIL: batched availability $avail (want >= 0.99)" >&2
    cat "$out" >&2
    exit 1
}
fanout=0
for u in "$u1" "$u2" "$u3"; do
    f=$(curl -fs "$u/cluster/ring" | sed -n 's/^.*"batch_fanout": *\([0-9]*\).*$/\1/p' | head -1)
    fanout=$((fanout + ${f:-0}))
done
if [ "$fanout" -eq 0 ]; then
    echo "FAIL: no per-peer sub-batches; batch owner-split inert" >&2
    exit 1
fi
echo "per-peer sub-batches across the tier: $fanout"

echo "== kill node 3 (SIGKILL) and drive the survivors =="
kill -9 "$pid3" 2>/dev/null || true
/tmp/pdp-cluster-load -urls "$u1,$u2" -mix zipf-scan -keys 4000 \
    -workers 4 -ops "$ops" -seed 43 -json > "$out"
avail=$(field availability)
echo "post-kill ops=$(field ops) errors=$(field errors) refused=$(field refused_retries) availability=$avail"
awk -v a="$avail" 'BEGIN { exit !(a >= 0.99) }' || {
    echo "FAIL: post-kill availability $avail (want >= 0.99)" >&2
    cat "$out" >&2
    exit 1
}

# The survivors eject the dead node and agree on the rerouted owners.
for u in "$u1" "$u2"; do
    for _ in $(seq 1 50); do
        [ "$(alive_count "$u")" = "2" ] && break
        sleep 0.2
    done
    if [ "$(alive_count "$u")" != "2" ]; then
        echo "FAIL: $u never ejected the killed node" >&2
        curl -fs "$u/cluster/ring" >&2 || true
        exit 1
    fi
done
for key in rebal-a rebal-b rebal-c; do
    o1=$(ring_field "$u1" "?key=$key" owner)
    o2=$(ring_field "$u2" "?key=$key" owner)
    if [ "$o1" != "$o2" ] || [ "$o1" = "$u3" ] || [ -z "$o1" ]; then
        echo "FAIL: post-kill owner for $key: [$o1] vs [$o2] (dead: $u3)" >&2
        exit 1
    fi
done
echo "survivors converged: alive=2, owners rebalanced off $u3"

echo "== restart node 3 and watch it rejoin =="
start_node "$p3" "$u3" node3-restart; pid3=$node_pid
wait_up "$u3"
for u in "$u1" "$u2"; do
    for _ in $(seq 1 50); do
        [ "$(alive_count "$u")" = "3" ] && break
        sleep 0.2
    done
    if [ "$(alive_count "$u")" != "3" ]; then
        echo "FAIL: $u never rejoined the restarted node" >&2
        exit 1
    fi
done
o1=$(ring_field "$u1" "?key=smoke-key" owner)
o2=$(ring_field "$u2" "?key=smoke-key" owner)
o3=$(ring_field "$u3" "?key=smoke-key" owner)
if [ "$o1" != "$o2" ] || [ "$o2" != "$o3" ]; then
    echo "FAIL: post-rejoin owner disagreement: [$o1] [$o2] [$o3]" >&2
    exit 1
fi
echo "rejoin converged: 3 alive, smoke-key -> $o1"

echo "cluster smoke: OK"
