#!/bin/sh
# Benchmark the parallel experiment engine: run a fixed slice of the repro
# suite at -jobs 1, 2 and 8, record wall-clock seconds per jobs count into
# BENCH_parallel.json, and fail if any jobs count changes a single output
# byte (the engine's determinism contract).
#
# Usage: scripts/bench_parallel.sh [scale] [experiments...]
set -eu

scale="${1:-0.2}"
if [ "$#" -ge 1 ]; then shift; fi
exps="${*:-fig2 fig5b fig9 sec63 fig12}"

cd "$(dirname "$0")/.."
go build -o /tmp/pdp-repro-bench ./cmd/repro

now_s() { date +%s.%N 2>/dev/null || date +%s; }

json="{\n  \"suite\": \"repro $exps\",\n  \"scale\": $scale,\n  \"nproc\": $(nproc),\n  \"runs\": {"
first=1
base=""
for jobs in 1 2 8; do
    out="/tmp/pdp-repro-bench-j$jobs.txt"
    t0=$(now_s)
    # shellcheck disable=SC2086
    /tmp/pdp-repro-bench -scale "$scale" -jobs "$jobs" $exps \
        | grep -v '^\[.* done in .*\]$' > "$out"
    t1=$(now_s)
    secs=$(awk -v a="$t0" -v b="$t1" 'BEGIN { printf "%.3f", b - a }')
    echo "jobs=$jobs: ${secs}s"
    if [ -z "$base" ]; then
        base="$out"
    elif ! cmp -s "$base" "$out"; then
        echo "FAIL: output at -jobs $jobs differs from -jobs 1" >&2
        exit 1
    fi
    # Jobs clamps to GOMAXPROCS (CPU-bound tasks gain nothing from
    # oversubscription), so record what actually ran, not just the flag.
    eff=$(nproc)
    [ "$jobs" -lt "$eff" ] && eff="$jobs"
    [ "$first" = 1 ] || json="$json,"
    first=0
    json="$json\n    \"jobs_$jobs\": {\"seconds\": $secs, \"effective_jobs\": $eff}"
done
json="$json\n  }\n}"
printf "$json\n" > BENCH_parallel.json
echo "wrote BENCH_parallel.json (outputs byte-identical across jobs)"
