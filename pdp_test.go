package pdp_test

import (
	"testing"

	"pdp"
)

// TestFacadeQuickstart exercises the documented public-API flow end to end:
// build a PDP-managed LLC, run a protectable workload, verify the PD
// converges and protection pays off.
func TestFacadeQuickstart(t *testing.T) {
	const sets, ways, loop = 256, 16, 48
	pol := pdp.NewPDP(pdp.PDPConfig{
		Sets: sets, Ways: ways, Bypass: true,
		FullSampler: true, RecomputeEvery: 50_000,
	})
	llc := pdp.NewCache(pdp.CacheConfig{
		Name: "LLC", Sets: sets, Ways: ways, LineSize: pdp.LineSize, AllowBypass: true,
	}, pol)
	g := pdp.NewLoopGen("loop", loop*sets, 1, 1)
	for i := 0; i < 1_500_000; i++ {
		llc.Access(g.Next())
	}
	if hr := llc.Stats.HitRate(); hr < 0.25 {
		t.Fatalf("hit rate %.3f; protection should convert ~1/3 of accesses", hr)
	}
	if pd := pol.PD(); pd < loop || pd > loop+8 {
		t.Fatalf("PD = %d, want ~%d", pd, loop)
	}
}

// TestFacadeModel checks the model functions through the façade.
func TestFacadeModel(t *testing.T) {
	arr := pdp.NewCounterArray(256, 4)
	for i := 0; i < 1000; i++ {
		arr.RecordHit(64)
		arr.RecordAccess()
	}
	for i := 0; i < 500; i++ {
		arr.RecordAccess()
	}
	pd, e := pdp.FindPD(arr, 16)
	if pd != 64 || e <= 0 {
		t.Fatalf("FindPD = (%d, %v), want (64, >0)", pd, e)
	}
	res, err := pdp.PDProcCompute(arr, 16)
	if err != nil || res.PD != 64 {
		t.Fatalf("hardware PD = %+v (%v), want 64", res, err)
	}
	if pdp.PDProcProgram().Len() == 0 {
		t.Fatal("empty search program")
	}
}

// TestFacadePolicies builds every exported policy against one geometry —
// a compile-and-construct sanity sweep of the public surface.
func TestFacadePolicies(t *testing.T) {
	const sets, ways = 64, 8
	pols := []pdp.Policy{
		pdp.NewLRU(sets, ways),
		pdp.NewRandom(ways, 1),
		pdp.NewBIP(sets, ways, 1.0/32, 1),
		pdp.NewDIP(sets, ways, 1.0/32, 1),
		pdp.NewSRRIP(sets, ways),
		pdp.NewBRRIP(sets, ways, 1.0/32, 1),
		pdp.NewDRRIP(sets, ways, 1.0/32, 1),
		pdp.NewTADRRIP(sets, ways, 2, 1.0/32, 1),
		pdp.NewSHiP(sets, ways),
		pdp.NewEELRU(pdp.EELRUConfig{Sets: sets, Ways: ways}),
		pdp.NewSDP(pdp.SDPConfig{Sets: sets, Ways: ways}),
		pdp.NewAIP(pdp.AIPConfig{Sets: sets, Ways: ways}),
		pdp.NewPDP(pdp.PDPConfig{Sets: sets, Ways: ways, StaticPD: 20}),
		pdp.NewClassPDP(pdp.ClassPDPConfig{Sets: sets, Ways: ways}),
		pdp.NewUCP(sets, ways, 2, 0),
		pdp.NewPIPP(sets, ways, 2, 0, 1),
		pdp.NewPDPPart(pdp.PDPPartConfig{Sets: sets, Ways: ways, Threads: 2}),
	}
	g := pdp.NewNoiseGen("n", 1, 7)
	for _, pol := range pols {
		bypass := false
		switch pol.(type) {
		case *pdp.PDPPart, *pdp.ClassPDP:
			bypass = true
		}
		c := pdp.NewCache(pdp.CacheConfig{
			Name: pol.Name(), Sets: sets, Ways: ways, LineSize: pdp.LineSize,
			AllowBypass: bypass,
		}, pol)
		for i := 0; i < 5000; i++ {
			a := g.Next()
			a.Thread = i % 2
			c.Access(a)
		}
		if c.Stats.Accesses != 5000 {
			t.Fatalf("%s: accesses %d", pol.Name(), c.Stats.Accesses)
		}
	}
}
