package workload

import "testing"

func TestServiceStreamDeterministic(t *testing.T) {
	cfg := ServiceMixes()["mixed"]
	a := NewServiceStream(cfg, 7)
	b := NewServiceStream(cfg, 7)
	for i := 0; i < 10000; i++ {
		if a.Next() != b.Next() {
			t.Fatalf("streams with the same seed diverged at op %d", i)
		}
	}
	a.Reset()
	first := a.Next()
	c := NewServiceStream(cfg, 7)
	if got := c.Next(); got != first {
		t.Fatalf("Reset did not rewind: %+v vs %+v", got, first)
	}
}

func TestServiceStreamZipfSkew(t *testing.T) {
	s := NewServiceStream(ServiceConfig{Keys: 10000, ZipfS: 0.99}, 1)
	const n = 200000
	topHits := 0
	for i := 0; i < n; i++ {
		if op := s.Next(); op.Key < 100 {
			topHits++
		}
	}
	// Zipf(0.99) puts roughly half the mass on the top 1% of ranks.
	if frac := float64(topHits) / n; frac < 0.35 {
		t.Fatalf("top-100 keys got %.2f of accesses, want strong skew", frac)
	}
}

func TestServiceStreamScanKeysNeverRepeat(t *testing.T) {
	s := NewServiceStream(ServiceConfig{Keys: 100, ScanEvery: 10, ScanLen: 5}, 3)
	seen := map[uint64]int{}
	for i := 0; i < 5000; i++ {
		op := s.Next()
		if op.Key >= 1<<62 {
			seen[op.Key]++
		}
	}
	if len(seen) == 0 {
		t.Fatal("no scan keys generated")
	}
	for k, n := range seen {
		if n > 1 {
			t.Fatalf("scan key %#x repeated %d times", k, n)
		}
	}
}

func TestServiceStreamChurnRetiresKeys(t *testing.T) {
	s := NewServiceStream(ServiceConfig{Keys: 50, ChurnEvery: 10, ChurnStep: 2}, 3)
	for i := 0; i < 10000; i++ {
		s.Next()
	}
	// After 10000 ops at one 2-key step per 10 ops the window moved ~2000
	// keys: rank 0 now maps far beyond the initial window.
	if op := s.Next(); op.Key < 1000 {
		t.Fatalf("churn window did not advance: key %d", op.Key)
	}
}

func TestServiceStreamSizesStablePerKey(t *testing.T) {
	s := NewServiceStream(ServiceConfig{Keys: 100, ValueBytes: 256}, 9)
	sizes := map[uint64]int{}
	for i := 0; i < 10000; i++ {
		op := s.Next()
		if prev, ok := sizes[op.Key]; ok && prev != op.Size {
			t.Fatalf("key %d size changed %d -> %d", op.Key, prev, op.Size)
		}
		sizes[op.Key] = op.Size
		if op.Size < 192 || op.Size >= 320 {
			t.Fatalf("size %d outside 256±64", op.Size)
		}
	}
}

func TestServiceConfigValidate(t *testing.T) {
	bad := []ServiceConfig{
		{Keys: 0},
		{Keys: 10, ZipfS: -1},
		{Keys: 10, PutFrac: 0.8, DeleteFrac: 0.3},
		{Keys: 10, ScanEvery: 100},
		{Keys: 10, ChurnEvery: -1},
	}
	for i, cfg := range bad {
		if cfg.Validate() == nil {
			t.Fatalf("config %d should fail validation: %+v", i, cfg)
		}
	}
	for name, cfg := range ServiceMixes() {
		if err := cfg.Validate(); err != nil {
			t.Fatalf("preset %q invalid: %v", name, err)
		}
	}
}
