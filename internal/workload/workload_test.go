package workload

import (
	"testing"

	"pdp/internal/sampler"
	"pdp/internal/trace"
)

func TestSuiteShape(t *testing.T) {
	s := Suite()
	if len(s) != 16 {
		t.Fatalf("suite has %d benchmarks, want 16", len(s))
	}
	seen := map[string]bool{}
	for _, b := range s {
		if seen[b.Name] {
			t.Errorf("duplicate benchmark %s", b.Name)
		}
		seen[b.Name] = true
		if b.APKI <= 0 {
			t.Errorf("%s: APKI %v must be positive", b.Name, b.APKI)
		}
		if b.Build == nil {
			t.Errorf("%s: nil Build", b.Name)
		}
	}
	if !seen["483.xalancbmk.3"] {
		t.Error("suite must include xalancbmk window 3")
	}
}

func TestAllAndByName(t *testing.T) {
	if got := len(All()); got != 18 {
		t.Fatalf("All() has %d entries, want 18 (16 + 2 extra windows)", got)
	}
	for _, name := range []string{"436.cactusADM", "483.xalancbmk.1", "429.mcf.phased"} {
		if _, ok := ByName(name); !ok {
			t.Errorf("ByName(%q) not found", name)
		}
	}
	if _, ok := ByName("not-a-benchmark"); ok {
		t.Error("ByName must reject unknown names")
	}
}

// measureRDD runs n accesses of a generator through a full sampler for an
// LLC with `sets` sets and returns the counter array.
func measureRDD(g trace.Generator, sets, n int) *sampler.CounterArray {
	s := sampler.New(sampler.FullConfig(sets, 1))
	for i := 0; i < n; i++ {
		a := g.Next()
		set := int(a.Addr / trace.LineSize % uint64(sets))
		s.Access(set, a.Addr)
	}
	return s.Array()
}

func massNear(arr *sampler.CounterArray, center, slack int) float64 {
	var in, total uint64
	for k := 0; k < arr.K(); k++ {
		c := uint64(arr.Count(k))
		total += c
		if d := arr.Dist(k); d >= center-slack && d <= center+slack {
			in += c
		}
	}
	if total == 0 {
		return 0
	}
	return float64(in) / float64(total)
}

func TestCactusADMPeakNear68(t *testing.T) {
	b, _ := ByName("436.cactusADM")
	const sets = 256
	arr := measureRDD(b.Generator(sets, 1, 42), sets, 400000)
	if m := massNear(arr, 68, 12); m < 0.5 {
		t.Fatalf("cactusADM reuse mass near 68 is %.2f, want dominant peak", m)
	}
}

func TestAstarIsLRUFriendly(t *testing.T) {
	b, _ := ByName("473.astar")
	const sets = 256
	arr := measureRDD(b.Generator(sets, 1, 42), sets, 300000)
	var within, total uint64
	for k := 0; k < arr.K(); k++ {
		c := uint64(arr.Count(k))
		total += c
		if arr.Dist(k) <= 16 {
			within += c
		}
	}
	if total == 0 || float64(within)/float64(total) < 0.95 {
		t.Fatalf("astar reuse within W=16: %d/%d, want nearly all", within, total)
	}
}

func TestStreamingBenchmarksHaveNoReuse(t *testing.T) {
	for _, name := range []string{"433.milc", "470.lbm"} {
		b, _ := ByName(name)
		const sets = 128
		arr := measureRDD(b.Generator(sets, 1, 42), sets, 100000)
		for k := 0; k < arr.K(); k++ {
			if arr.Count(k) != 0 {
				t.Errorf("%s: reuse at distance %d in a streaming model", name, arr.Dist(k))
				break
			}
		}
	}
}

func TestXalancWindowsDiffer(t *testing.T) {
	const sets = 256
	var peaks []int
	for _, b := range XalancWindows() {
		arr := measureRDD(b.Generator(sets, 1, 42), sets, 300000)
		best, bestC := 0, uint32(0)
		for k := 0; k < arr.K(); k++ {
			if arr.Count(k) > bestC {
				best, bestC = arr.Dist(k), arr.Count(k)
			}
		}
		peaks = append(peaks, best)
	}
	if peaks[0] == peaks[1] && peaks[1] == peaks[2] {
		t.Fatalf("xalancbmk windows all peak at %d; Fig. 5b needs differing RDDs", peaks[0])
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	for _, b := range All() {
		g1 := b.Generator(64, 1, 7)
		g2 := b.Generator(64, 1, 7)
		for i := 0; i < 1000; i++ {
			if g1.Next() != g2.Next() {
				t.Errorf("%s: generator not deterministic", b.Name)
				break
			}
		}
	}
}

func TestBaseSeparatesAddressSpaces(t *testing.T) {
	b, _ := ByName("436.cactusADM")
	g1 := b.Generator(64, 1, 7)
	g2 := b.Generator(64, 2, 7)
	seen := map[uint64]bool{}
	for i := 0; i < 5000; i++ {
		seen[g1.Next().Addr] = true
	}
	for i := 0; i < 5000; i++ {
		if seen[g2.Next().Addr] {
			t.Fatal("two bases produced overlapping addresses")
		}
	}
}

func TestPhasedBenchmarksChangeRDD(t *testing.T) {
	b, _ := ByName("482.sphinx3.phased")
	const sets = 128
	g := b.Generator(sets, 1, 7)
	arr1 := measureRDD(g, sets, 300000) // inside phase 1 (400K segment)
	// Skip to well inside phase 2.
	for i := 0; i < 200000; i++ {
		g.Next()
	}
	arr2 := measureRDD(g, sets, 200000)
	peak := func(arr *sampler.CounterArray) int {
		best, bestC := 0, uint32(0)
		for k := 0; k < arr.K(); k++ {
			if arr.Count(k) > bestC {
				best, bestC = arr.Dist(k), arr.Count(k)
			}
		}
		return best
	}
	p1, p2 := peak(arr1), peak(arr2)
	if abs(p1-p2) < 20 {
		t.Fatalf("phased peaks %d vs %d: phases must move the RDD", p1, p2)
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func TestMixes(t *testing.T) {
	m4 := Mixes(4, 80, 1)
	if len(m4) != 80 {
		t.Fatalf("got %d mixes, want 80", len(m4))
	}
	for _, m := range m4 {
		if len(m.Names) != 4 || len(m.Benchs) != 4 {
			t.Fatalf("mix %d has wrong arity", m.ID)
		}
		for i, n := range m.Names {
			if m.Benchs[i].Name != n {
				t.Fatalf("mix %d: name mismatch", m.ID)
			}
		}
	}
	// Deterministic for a given seed, different across seeds.
	again := Mixes(4, 80, 1)
	other := Mixes(4, 80, 2)
	same, diff := true, false
	for i := range m4 {
		for c := range m4[i].Names {
			if m4[i].Names[c] != again[i].Names[c] {
				same = false
			}
			if m4[i].Names[c] != other[i].Names[c] {
				diff = true
			}
		}
	}
	if !same {
		t.Error("same seed must reproduce mixes")
	}
	if !diff {
		t.Error("different seeds should differ")
	}
}
