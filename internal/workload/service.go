package workload

import (
	"fmt"
	"math"
	"sort"

	"pdp/internal/trace"
)

// OpKind is a key-value service operation type.
type OpKind uint8

// Service operation kinds.
const (
	// OpGet is a read; the cache-aside client fills on a miss.
	OpGet OpKind = iota
	// OpPut is an explicit overwrite (write traffic).
	OpPut
	// OpDelete removes the key.
	OpDelete
)

// Op is one key-value service operation of a ServiceStream.
type Op struct {
	Kind OpKind
	// Key is the abstract key id; clients render it (e.g. "k%016x").
	Key uint64
	// Size is the value size in bytes this key carries (deterministic per
	// key, so refills after eviction are stable).
	Size int
}

// ServiceConfig describes a deterministic key-value request mix — the
// serving-layer analogue of the simulator's synthetic benchmarks: a
// Zipf-skewed hot set (sustained reuse, the structure protecting distances
// exploit), periodic scan bursts over never-reused keys (the streaming
// traffic that thrashes recency policies), and a slowly churning key
// window (working-set drift).
type ServiceConfig struct {
	// Keys is the hot key-space size.
	Keys int
	// ZipfS is the Zipf skew exponent (0 = uniform over Keys).
	ZipfS float64
	// ValueBytes is the base value size; a key's actual size is
	// ValueBytes ± ValueBytes/4, deterministic per key (0 means 64).
	ValueBytes int
	// PutFrac is the fraction of hot-key operations issued as explicit
	// overwrites (OpPut) rather than reads.
	PutFrac float64
	// DeleteFrac is the fraction of hot-key operations issued as OpDelete.
	DeleteFrac float64
	// ScanEvery inserts a burst of ScanLen never-reused scan keys after
	// every ScanEvery hot-key operations (0 disables scans).
	ScanEvery int
	// ScanLen is the number of keys per scan burst.
	ScanLen int
	// ScanLoop, when > 0, makes scan bursts cycle over a fixed pool of
	// ScanLoop keys instead of drawing fresh ones — repeated full
	// iterations over the same table. The pool's cyclic reuse distance
	// exceeds any recency stack a set can hold, so LRU scores zero on it
	// while a protecting-distance policy retains a protected subset.
	ScanLoop int
	// ChurnEvery advances the hot window by ChurnStep keys after every
	// ChurnEvery operations (0 disables churn): old keys stop being
	// referenced and fresh ones take over their rank.
	ChurnEvery int
	// ChurnStep is the number of keys retired per churn step (default 1).
	ChurnStep int
}

// Validate reports the first configuration error.
func (c ServiceConfig) Validate() error {
	if c.Keys <= 0 {
		return fmt.Errorf("workload: service mix needs Keys > 0, got %d", c.Keys)
	}
	if c.ZipfS < 0 {
		return fmt.Errorf("workload: ZipfS must be >= 0, got %g", c.ZipfS)
	}
	if c.PutFrac < 0 || c.DeleteFrac < 0 || c.PutFrac+c.DeleteFrac > 1 {
		return fmt.Errorf("workload: PutFrac=%g DeleteFrac=%g out of range", c.PutFrac, c.DeleteFrac)
	}
	if c.ScanEvery < 0 || c.ScanLen < 0 || c.ScanLoop < 0 || c.ChurnEvery < 0 || c.ChurnStep < 0 {
		return fmt.Errorf("workload: negative scan/churn parameter")
	}
	if c.ScanEvery > 0 && c.ScanLen == 0 {
		return fmt.Errorf("workload: ScanEvery set but ScanLen is 0")
	}
	if c.ScanLoop > 0 && c.ScanEvery == 0 {
		return fmt.Errorf("workload: ScanLoop set but scans are disabled")
	}
	return nil
}

// ServiceStream generates the deterministic operation sequence of a
// ServiceConfig. It is not goroutine-safe; give each load worker its own
// stream (same config, distinct seed).
type ServiceStream struct {
	cfg  ServiceConfig
	seed uint64
	rng  *trace.RNG
	cdf  []float64 // cumulative Zipf weights over ranks 1..Keys

	ops      uint64 // hot-key operations issued (scan ops excluded)
	scanLeft int    // remaining keys of the burst in progress
	scanNext uint64 // next scan key id (never reused)
	churn    uint64 // hot-window offset in keys
}

// NewServiceStream builds a stream; it panics on an invalid config (use
// Validate for runtime checking).
func NewServiceStream(cfg ServiceConfig, seed uint64) *ServiceStream {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if cfg.ValueBytes <= 0 {
		cfg.ValueBytes = 64
	}
	if cfg.ChurnEvery > 0 && cfg.ChurnStep == 0 {
		cfg.ChurnStep = 1
	}
	s := &ServiceStream{cfg: cfg, seed: seed}
	s.cdf = zipfCDF(cfg.Keys, cfg.ZipfS)
	s.Reset()
	return s
}

// zipfCDF precomputes the cumulative distribution of rank weights 1/r^s.
func zipfCDF(n int, sExp float64) []float64 {
	cdf := make([]float64, n)
	var sum float64
	for r := 1; r <= n; r++ {
		sum += 1 / math.Pow(float64(r), sExp)
		cdf[r-1] = sum
	}
	return cdf
}

// Config returns the stream's configuration (with defaults applied).
func (s *ServiceStream) Config() ServiceConfig { return s.cfg }

// Reset rewinds the stream to its initial state.
func (s *ServiceStream) Reset() {
	s.rng = trace.NewRNG(s.seed ^ 0x5E21B1CE)
	s.ops = 0
	s.scanLeft = 0
	s.scanNext = 0
	s.churn = 0
}

// sampleRank draws a Zipf rank in [0, Keys).
func (s *ServiceStream) sampleRank() int {
	total := s.cdf[len(s.cdf)-1]
	x := s.rng.Float64() * total
	return sort.SearchFloat64s(s.cdf, x)
}

// sizeOf derives a key's deterministic value size.
func (s *ServiceStream) sizeOf(key uint64) int {
	base := s.cfg.ValueBytes
	jitter := base / 4
	if jitter == 0 {
		return base
	}
	// Hash the key so refills after eviction always carry the same size.
	h := key * 0x9E3779B97F4A7C15
	return base - jitter/2 + int(h%uint64(jitter))
}

// Next returns the next operation.
func (s *ServiceStream) Next() Op {
	// Drain a scan burst in progress: sequential keys from a dedicated id
	// space — never reused, or cycling over a fixed pool when ScanLoop is
	// set.
	if s.scanLeft > 0 {
		s.scanLeft--
		id := s.scanNext
		if s.cfg.ScanLoop > 0 {
			id %= uint64(s.cfg.ScanLoop)
		}
		key := 1<<62 | id
		s.scanNext++
		return Op{Kind: OpGet, Key: key, Size: s.sizeOf(key)}
	}

	s.ops++
	if s.cfg.ScanEvery > 0 && s.ops%uint64(s.cfg.ScanEvery) == 0 {
		s.scanLeft = s.cfg.ScanLen
	}
	if s.cfg.ChurnEvery > 0 && s.ops%uint64(s.cfg.ChurnEvery) == 0 {
		s.churn += uint64(s.cfg.ChurnStep)
	}

	rank := s.sampleRank()
	key := s.churn + uint64(rank)
	op := Op{Kind: OpGet, Key: key, Size: s.sizeOf(key)}
	switch x := s.rng.Float64(); {
	case x < s.cfg.PutFrac:
		op.Kind = OpPut
	case x < s.cfg.PutFrac+s.cfg.DeleteFrac:
		op.Kind = OpDelete
	}
	return op
}

// ServiceMixes returns named preset request mixes for the serving layer's
// load generator and tests.
func ServiceMixes() map[string]ServiceConfig {
	return map[string]ServiceConfig{
		// zipf: pure skewed point reads — recency-friendly.
		"zipf": {Keys: 20000, ZipfS: 0.99, PutFrac: 0.05},
		// zipf-scan: the PDP showcase — a reused hot set under periodic
		// scan bursts that thrash an always-admit recency policy.
		"zipf-scan": {Keys: 20000, ZipfS: 0.99, PutFrac: 0.05, ScanEvery: 200, ScanLen: 400},
		// zipf-loop: point reads plus repeated iterations over one fixed
		// table — the cyclic traffic where recency eviction scores zero.
		"zipf-loop": {Keys: 20000, ZipfS: 0.99, PutFrac: 0.05,
			ScanEvery: 300, ScanLen: 300, ScanLoop: 6000},
		// churn: the hot window drifts, so stale keys must unprotect.
		"churn": {Keys: 20000, ZipfS: 0.99, PutFrac: 0.05, ChurnEvery: 50, ChurnStep: 1},
		// mixed: scans plus churn plus writes.
		"mixed": {Keys: 20000, ZipfS: 0.99, PutFrac: 0.1, DeleteFrac: 0.01,
			ScanEvery: 400, ScanLen: 300, ChurnEvery: 100, ChurnStep: 1},
	}
}
