// Package workload defines the synthetic benchmark models standing in for
// the PDP paper's SPEC CPU2006 traces. Each model reproduces the published
// reuse-distance structure of its namesake at the LLC (peaked, multi-peak,
// streaming, thrashing, pointer-chasing, LRU-friendly, phase-changing) and
// carries an LLC-accesses-per-kiloinstruction rate for IPC/MPKI accounting.
// See DESIGN.md for the substitution rationale.
package workload

import (
	"fmt"

	"pdp/internal/trace"
)

// Benchmark is one synthetic workload model.
type Benchmark struct {
	// Name matches the paper's benchmark naming.
	Name string
	// APKI is the rate of LLC-visible accesses per 1000 instructions.
	APKI float64
	// Build constructs the access generator for an LLC with `sets` sets.
	// base disambiguates the address space (use the thread index in
	// multi-programmed mixes); seed fixes the random stream.
	Build func(sets int, base, seed uint64) trace.Generator
}

// Generator builds the benchmark's access stream.
func (b Benchmark) Generator(sets int, base, seed uint64) trace.Generator {
	return b.Build(sets, base, seed)
}

func rdd(name string, spec trace.RDDSpec, apki float64) Benchmark {
	return Benchmark{
		Name: name,
		APKI: apki,
		Build: func(sets int, base, seed uint64) trace.Generator {
			return trace.NewRDDGen(name, spec, sets, base, seed)
		},
	}
}

// loopPeak describes one working-set component of a loopStream benchmark: a
// cyclic working set whose set-level reuse distance is RD when it receives
// a Weight fraction of the accesses. Drift is the fraction of the working
// set replaced with fresh lines per cycle (0 = static loop).
type loopPeak struct {
	RD     int
	Weight float64
	Drift  float64
}

// loopStream models the paper's peaked benchmarks: one or more cyclic
// working sets (sustained, chained reuse at a stable set-level distance —
// the structure protecting distances exploit) mixed with never-reused
// streaming traffic. A loop given weight w with L lines per set has
// set-level reuse distance L/w, so L = RD*w. Half the streaming component
// touches random sets (NoiseGen), which gives the per-set interleave — and
// hence the reuse-distance distribution — a realistic spread instead of a
// delta function.
func loopStream(name string, apki, streamW float64, peaks ...loopPeak) Benchmark {
	return Benchmark{
		Name: name,
		APKI: apki,
		Build: func(sets int, base, seed uint64) trace.Generator {
			var gens []trace.Generator
			var weights []float64
			for i, p := range peaks {
				lines := int(float64(p.RD)*p.Weight + 0.5)
				if lines < 1 {
					lines = 1
				}
				gname := fmt.Sprintf("%s.ws%d", name, i)
				if p.Drift > 0 {
					gens = append(gens, trace.NewDriftLoopGen(
						gname, lines*sets, p.Drift, base*8+uint64(i), seed+uint64(i)))
				} else {
					gens = append(gens, trace.NewLoopGen(
						gname, lines*sets, base*8+uint64(i), seed+uint64(i)))
				}
				weights = append(weights, p.Weight)
			}
			if streamW > 0 {
				gens = append(gens, trace.NewStreamGen(name+".stream", base*8+6))
				gens = append(gens, trace.NewNoiseGen(name+".noise", base*8+7, seed^0xA5A5))
				weights = append(weights, streamW/2, streamW/2)
			}
			return trace.NewMixGen(name, seed^0x5EED, gens, weights)
		},
	}
}

// Suite returns the sixteen benchmark models used in the paper's averages
// (483.xalancbmk is its window 3, the medium-improvement window the paper
// includes in averages).
func Suite() []Benchmark {
	return []Benchmark{
		// Mass at short distances plus many single-use lines; protection
		// beyond the small peaks only pollutes.
		rdd("403.gcc", trace.RDDSpec{
			Peaks: []trace.Peak{{Dist: 6, Weight: 0.25}, {Dist: 20, Weight: 0.12}},
			Fresh: 0.55, Far: 0.08, Spread: 2, WriteFrac: 0.25,
		}, 8),
		// Pointer chasing over a huge working set: almost everything is
		// reused far beyond d_max; the computed PD mismatches (Sec. 6.3).
		rdd("429.mcf", trace.RDDSpec{
			Peaks: []trace.Peak{{Dist: 4, Weight: 0.10}},
			Fresh: 0.55, Far: 0.30, FarMin: 600, Spread: 2, WriteFrac: 0.15,
		}, 35),
		// Pure streaming.
		{Name: "433.milc", APKI: 15, Build: func(sets int, base, seed uint64) trace.Generator {
			return trace.NewStreamGen("433.milc", base)
		}},
		rdd("434.zeusmp", trace.RDDSpec{
			Peaks: []trace.Peak{{Dist: 12, Weight: 0.30}},
			Fresh: 0.55, Far: 0.05, Spread: 3, WriteFrac: 0.3,
		}, 6),
		// The paper's showcase: a sustained working set reused at set-level
		// distance ~68 under streaming side traffic — only protection to
		// ~76 covers it (paper: best static PDs 76/72).
		loopStream("436.cactusADM", 10, 0.35, loopPeak{RD: 68, Weight: 0.65, Drift: 0.12}),
		// Moderate working set drowned in PC-identifiable streaming: the
		// SDP-friendly case (the stream's PCs are learnable dead-on-arrival;
		// PDP cannot distinguish them from the working set).
		loopStream("437.leslie3d", 12, 0.65, loopPeak{RD: 24, Weight: 0.35, Drift: 0.10}),
		// Two working sets at different distances (two RDD peaks).
		loopStream("450.soplex", 14, 0.50,
			loopPeak{RD: 44, Weight: 0.32, Drift: 0.10}, loopPeak{RD: 100, Weight: 0.18, Drift: 0.10}),
		// Sharp narrow peak just above W: sensitive to counter-step
		// rounding (Fig. 9).
		loopStream("456.hmmer", 4, 0.35, loopPeak{RD: 18, Weight: 0.65, Drift: 0.08}),
		// Mostly streaming with a PC-predictable sliver of reuse
		// (SDP-friendly).
		loopStream("459.GemsFDTD", 18, 0.85, loopPeak{RD: 22, Weight: 0.15}),
		// Cyclic sweep with set-level distance 250, at the edge of d_max:
		// coarse n_c evicts lines just before reuse (Sec. 6.2 discussion).
		{Name: "462.libquantum", APKI: 25, Build: func(sets int, base, seed uint64) trace.Generator {
			return trace.NewLoopGen("462.libquantum", 250*sets, base, seed)
		}},
		// Working sets just above the associativity plus heavy thrash: the
		// benchmark where bypass matters most (89% bypass in the paper).
		loopStream("464.h264ref", 5, 0.50,
			loopPeak{RD: 24, Weight: 0.34, Drift: 0.15}, loopPeak{RD: 48, Weight: 0.16, Drift: 0.15}),
		{Name: "470.lbm", APKI: 20, Build: func(sets int, base, seed uint64) trace.Generator {
			return trace.NewStreamGen("470.lbm", base)
		}},
		rdd("471.omnetpp", trace.RDDSpec{
			Peaks: []trace.Peak{{Dist: 10, Weight: 0.15}},
			Fresh: 0.50, Far: 0.30, FarMin: 480, Spread: 3, WriteFrac: 0.3,
		}, 12),
		// LRU-friendly: all reuse within the associativity.
		rdd("473.astar", trace.RDDSpec{
			Peaks: []trace.Peak{{Dist: 8, Weight: 0.60}, {Dist: 14, Weight: 0.20}},
			Fresh: 0.15, Spread: 1, WriteFrac: 0.3,
		}, 6),
		loopStream("482.sphinx3", 10, 0.55, loopPeak{RD: 90, Weight: 0.45, Drift: 0.12}),
		xalancWindow(3),
	}
}

// xalancWindow builds one of the three studied execution windows of
// 483.xalancbmk; their RDDs differ in peak position and shape (Fig. 5b),
// driving the paper's phase-adaptation argument.
func xalancWindow(n int) Benchmark {
	name := fmt.Sprintf("483.xalancbmk.%d", n)
	switch n {
	case 1:
		return loopStream(name, 9, 0.48,
			loopPeak{RD: 100, Weight: 0.38, Drift: 0.12}, loopPeak{RD: 30, Weight: 0.14, Drift: 0.12})
	case 2:
		return loopStream(name, 9, 0.45, loopPeak{RD: 88, Weight: 0.55, Drift: 0.12})
	case 3:
		return loopStream(name, 9, 0.52,
			loopPeak{RD: 124, Weight: 0.30, Drift: 0.12}, loopPeak{RD: 60, Weight: 0.18, Drift: 0.12})
	default:
		panic(fmt.Sprintf("workload: xalancbmk window %d out of range", n))
	}
}

// XalancWindows returns the three studied windows.
func XalancWindows() []Benchmark {
	return []Benchmark{xalancWindow(1), xalancWindow(2), xalancWindow(3)}
}

// All returns the suite plus the extra xalancbmk windows.
func All() []Benchmark {
	out := Suite()
	out = append(out, xalancWindow(1), xalancWindow(2))
	return out
}

// ByName finds a benchmark model by name.
func ByName(name string) (Benchmark, bool) {
	for _, b := range All() {
		if b.Name == name {
			return b, true
		}
	}
	for _, b := range Phased() {
		if b.Name == name {
			return b, true
		}
	}
	return Benchmark{}, false
}

// Names lists the suite's benchmark names.
func Names(bs []Benchmark) []string {
	out := make([]string, len(bs))
	for i, b := range bs {
		out[i] = b.Name
	}
	return out
}

// phased builds a looping phase schedule over sub-models.
func phased(name string, apki float64, segLen uint64, phases ...Benchmark) Benchmark {
	return Benchmark{
		Name: name,
		APKI: apki,
		Build: func(sets int, base, seed uint64) trace.Generator {
			segs := make([]trace.Segment, len(phases))
			for i, ph := range phases {
				segs[i] = trace.Segment{
					Gen:   ph.Build(sets, base*16+uint64(i)*2, seed+uint64(i)),
					Count: segLen,
				}
			}
			return trace.NewPhasedGen(name, segs)
		},
	}
}

// Phased returns the five phase-changing benchmark variants studied in the
// paper's Sec. 6.4 (Fig. 11). Each phase moves the RDD peak, so the best
// PD changes over time.
func Phased() []Benchmark {
	const seg = 400_000
	return []Benchmark{
		phased("403.gcc.phased", 8, seg,
			loopStream("p0", 8, 0.60, loopPeak{RD: 8, Weight: 0.40}),
			loopStream("p1", 8, 0.55, loopPeak{RD: 40, Weight: 0.45}),
		),
		phased("450.soplex.phased", 14, seg,
			loopStream("p0", 14, 0.55, loopPeak{RD: 44, Weight: 0.45}),
			loopStream("p1", 14, 0.55, loopPeak{RD: 100, Weight: 0.45}),
			loopStream("p2", 14, 0.55, loopPeak{RD: 20, Weight: 0.45}),
		),
		phased("483.xalancbmk.phased", 9, seg,
			xalancWindow(1), xalancWindow(2), xalancWindow(3),
		),
		phased("429.mcf.phased", 35, seg,
			rdd("p0", trace.RDDSpec{
				Peaks: []trace.Peak{{Dist: 4, Weight: 0.1}},
				Fresh: 0.6, Far: 0.25, FarMin: 600,
			}, 35),
			loopStream("p1", 35, 0.55, loopPeak{RD: 60, Weight: 0.45}),
		),
		phased("482.sphinx3.phased", 10, seg,
			loopStream("p0", 10, 0.55, loopPeak{RD: 90, Weight: 0.45}),
			loopStream("p1", 10, 0.45, loopPeak{RD: 30, Weight: 0.55}),
		),
	}
}

// Mix is a multi-programmed workload: one benchmark per core.
type Mix struct {
	ID     int
	Names  []string
	Benchs []Benchmark
}

// Mixes generates `count` random multi-programmed mixes of `cores` threads
// each, sampling the sixteen-benchmark suite with duplication allowed
// (paper Sec. 5: 80 random workloads per core count).
func Mixes(cores, count int, seed uint64) []Mix {
	suite := Suite()
	rng := trace.NewRNG(seed)
	out := make([]Mix, count)
	for i := range out {
		m := Mix{ID: i, Names: make([]string, cores), Benchs: make([]Benchmark, cores)}
		for c := 0; c < cores; c++ {
			b := suite[rng.Intn(len(suite))]
			m.Names[c] = b.Name
			m.Benchs[c] = b
		}
		out[i] = m
	}
	return out
}

// FromAccesses wraps a recorded access sequence as a Benchmark (looping at
// the end, matching the paper's thread-rewind semantics). Used to replay
// externally captured traces.
func FromAccesses(name string, apki float64, accs []trace.Access) Benchmark {
	if apki <= 0 {
		apki = 10
	}
	return Benchmark{
		Name: name,
		APKI: apki,
		Build: func(sets int, base, seed uint64) trace.Generator {
			return &replayGen{name: name, accs: accs}
		},
	}
}

// replayGen loops over a recorded access slice.
type replayGen struct {
	name string
	accs []trace.Access
	pos  int
}

// Name implements trace.Generator.
func (g *replayGen) Name() string { return g.name }

// Reset implements trace.Generator.
func (g *replayGen) Reset() { g.pos = 0 }

// Next implements trace.Generator.
func (g *replayGen) Next() trace.Access {
	a := g.accs[g.pos]
	g.pos++
	if g.pos == len(g.accs) {
		g.pos = 0
	}
	return a
}
