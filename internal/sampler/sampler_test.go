package sampler

import (
	"testing"
	"testing/quick"

	"pdp/internal/trace"
)

func TestCounterArrayBuckets(t *testing.T) {
	c := NewCounterArray(16, 4)
	if c.K() != 4 {
		t.Fatalf("K = %d, want 4", c.K())
	}
	// Distances 1..4 land in counter 0, 5..8 in counter 1, etc.
	for rd := 1; rd <= 16; rd++ {
		c.RecordHit(rd)
	}
	for k := 0; k < 4; k++ {
		if c.Count(k) != 4 {
			t.Errorf("counter %d = %d, want 4", k, c.Count(k))
		}
		if c.Dist(k) != (k+1)*4 {
			t.Errorf("Dist(%d) = %d, want %d", k, c.Dist(k), (k+1)*4)
		}
	}
	// Out-of-range distances are ignored.
	c.RecordHit(0)
	c.RecordHit(17)
	c.RecordHit(-3)
	total := uint32(0)
	for k := 0; k < c.K(); k++ {
		total += c.Count(k)
	}
	if total != 16 {
		t.Fatalf("total hits = %d, want 16", total)
	}
}

func TestCounterArraySaturationFreezes(t *testing.T) {
	c := NewCounterArray(8, 1)
	c.NiMax = 10
	for i := 0; i < 20; i++ {
		c.RecordHit(3)
		c.RecordAccess()
	}
	if !c.Frozen() {
		t.Fatal("array must freeze at NiMax")
	}
	if c.Count(2) != 10 {
		t.Fatalf("saturated counter = %d, want 10", c.Count(2))
	}
	nt := c.Total()
	c.RecordHit(5)
	c.RecordAccess()
	if c.Count(4) != 0 || c.Total() != nt {
		t.Fatal("frozen array must not change")
	}
	c.Reset()
	if c.Frozen() || c.Total() != 0 || c.Count(2) != 0 {
		t.Fatal("Reset must clear and unfreeze")
	}
}

func TestCounterArrayNtSaturation(t *testing.T) {
	c := NewCounterArray(8, 1)
	c.NtMax = 5
	for i := 0; i < 10; i++ {
		c.RecordAccess()
	}
	if !c.Frozen() || c.Total() != 5 {
		t.Fatalf("Nt = %d frozen=%v, want 5/true", c.Total(), c.Frozen())
	}
}

func TestCounterArrayPanics(t *testing.T) {
	for _, args := range [][2]int{{0, 1}, {8, 0}, {10, 3}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("expected panic for dmax=%d sc=%d", args[0], args[1])
				}
			}()
			NewCounterArray(args[0], args[1])
		}()
	}
}

func TestCounterArrayBits(t *testing.T) {
	c := NewCounterArray(256, 4)
	if got, want := c.Bits(), 64*16+32; got != want {
		t.Fatalf("Bits = %d, want %d", got, want)
	}
}

// runSingleSet feeds a sequence of line indices (as addresses) into a
// sampler monitoring one set.
func feed(s *RDSampler, seq []int) {
	for _, line := range seq {
		s.Access(0, uint64(line)*64*1024) // distinct tags, same set
	}
}

func TestFullSamplerExactDistances(t *testing.T) {
	s := New(FullConfig(1, 1))
	// A B A: RD 2 (access-index difference). A A: RD 1.
	feed(s, []int{1, 2, 1, 1})
	arr := s.Array()
	if arr.Count(1) != 1 { // distance 2
		t.Errorf("count at RD 2 = %d, want 1", arr.Count(1))
	}
	if arr.Count(0) != 1 { // distance 1
		t.Errorf("count at RD 1 = %d, want 1", arr.Count(0))
	}
	if arr.Total() != 4 {
		t.Errorf("Nt = %d, want 4", arr.Total())
	}
}

func TestFullSamplerMatchesReference(t *testing.T) {
	// Property: on random single-set streams over a small line pool, the
	// full sampler reproduces the exact reuse-distance histogram.
	f := func(seed uint64) bool {
		rng := trace.NewRNG(seed)
		const n = 2000
		seq := make([]int, n)
		for i := range seq {
			seq[i] = rng.Intn(50)
		}
		s := New(FullConfig(1, 1))
		feed(s, seq)

		// Reference histogram.
		ref := make([]uint32, 257)
		last := map[int]int{}
		for i, line := range seq {
			if p, ok := last[line]; ok {
				d := i - p
				if d <= 256 {
					ref[d]++
				}
			}
			last[line] = i
		}
		for d := 1; d <= 256; d++ {
			if s.Array().Count(d-1) != ref[d] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestRealSamplerApproximatesDistance(t *testing.T) {
	// With insertion rate M=8, a loop of period p over one set must produce
	// mass at RD ~p (within one insertion-rate quantum).
	cfg := Config{CacheSets: 64, SampledSets: 32, FIFODepth: 32, InsertRate: 8, DMax: 256, Sc: 1}
	s := New(cfg)
	const period = 40
	for i := 0; i < 20000; i++ {
		line := i % period
		s.Access(0, uint64(line)*64*1024)
	}
	arr := s.Array()
	var inWindow, total uint64
	for k := 0; k < arr.K(); k++ {
		c := uint64(arr.Count(k))
		total += c
		d := arr.Dist(k)
		if d >= period-8 && d <= period+8 {
			inWindow += c
		}
	}
	if total == 0 {
		t.Fatal("sampler recorded no hits")
	}
	if frac := float64(inWindow) / float64(total); frac < 0.9 {
		t.Fatalf("only %.2f of sampled RDs near %d", frac, period)
	}
}

func TestSampledSetSelection(t *testing.T) {
	cfg := RealConfig(2048, 4)
	s := New(cfg)
	n := 0
	for set := 0; set < 2048; set++ {
		if s.Sampled(set) {
			n++
		}
	}
	if n != 32 {
		t.Fatalf("sampled sets = %d, want 32", n)
	}
	// Accesses to unsampled sets must not touch the array.
	s.Access(1, 0x40)
	if s.Array().Total() != 0 {
		t.Fatal("unsampled set leaked into N_t")
	}
	s.Access(0, 0x40)
	if s.Array().Total() != 1 {
		t.Fatal("sampled set not counted")
	}
}

func TestSamplerReset(t *testing.T) {
	s := New(FullConfig(1, 1))
	feed(s, []int{1, 2, 1})
	s.Reset()
	if s.Array().Total() != 0 {
		t.Fatal("Reset must clear the array")
	}
	// Pre-reset history must not produce hits.
	feed(s, []int{1})
	arr := s.Array()
	for k := 0; k < arr.K(); k++ {
		if arr.Count(k) != 0 {
			t.Fatal("stale FIFO entry survived Reset")
		}
	}
}

func TestSamplerBits(t *testing.T) {
	s := New(RealConfig(2048, 4))
	// 32 sets * (32 entries * 16 bits + log2(8)) + counter array.
	want := 32*(32*16+3) + (256/4)*16 + 32
	if got := s.Bits(); got != want {
		t.Fatalf("Bits = %d, want %d", got, want)
	}
}

func TestSamplerPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(Config{CacheSets: 0, SampledSets: 1, FIFODepth: 1, InsertRate: 1, DMax: 8, Sc: 1})
}

func TestSamplerStatsAndFIFOEvictHook(t *testing.T) {
	// One sampled set, FIFO depth 2, insert every access: a stream of
	// distinct tags fills the FIFO and then overwrites a valid entry on
	// every further insert, firing OnFIFOEvict each time.
	s := New(Config{CacheSets: 1, SampledSets: 1, FIFODepth: 2, InsertRate: 1, DMax: 16, Sc: 4})
	var hookSlots []int
	s.OnFIFOEvict = func(slot int) { hookSlots = append(hookSlots, slot) }
	// Addresses start at line 1: line 0 hashes to the reserved tag-0
	// sentinel and would alias line 1's tag.
	for i := 1; i <= 6; i++ {
		s.Access(0, uint64(i)*64)
	}
	if s.Stats.Accesses != 6 || s.Stats.Inserts != 6 {
		t.Fatalf("stats = %+v, want 6 accesses / 6 inserts", s.Stats)
	}
	if s.Stats.Hits != 0 {
		t.Fatalf("distinct tags must not hit, stats = %+v", s.Stats)
	}
	// Inserts 3..6 overwrite the valid entries pushed two inserts earlier.
	if s.Stats.Evictions != 4 || len(hookSlots) != 4 {
		t.Fatalf("evictions = %d, hook calls = %d, want 4/4", s.Stats.Evictions, len(hookSlots))
	}
	for _, slot := range hookSlots {
		if slot != 0 {
			t.Fatalf("hook slot = %d, want 0", slot)
		}
	}

	// A reuse hit invalidates the entry, so its slot is overwritten
	// without an eviction.
	s2 := New(Config{CacheSets: 1, SampledSets: 1, FIFODepth: 2, InsertRate: 1, DMax: 16, Sc: 4})
	fired := false
	s2.OnFIFOEvict = func(int) { fired = true }
	s2.Access(0, 2*64)
	s2.Access(0, 3*64)
	s2.Access(0, 2*64) // hit: invalidates the tag-2 entry...
	if s2.Stats.Hits != 1 {
		t.Fatalf("hits = %d, want 1", s2.Stats.Hits)
	}
	if s2.Stats.Evictions != 0 || fired {
		t.Fatalf("hit-invalidated entry must not count as an eviction: %+v", s2.Stats)
	}

	// Stats are cumulative: Reset clears the FIFOs but not the counters.
	s.Reset()
	if s.Stats.Accesses != 6 {
		t.Fatalf("Reset cleared cumulative stats: %+v", s.Stats)
	}
}

func TestPartialTagReservesZeroSentinel(t *testing.T) {
	// Any address below one line (addr>>6 == 0) hashes to raw tag 0, which
	// the modeled hardware cannot store: a tag-only FIFO entry of 0 is an
	// empty slot. The hash must remap those addresses to the sentinel 1.
	for _, addr := range []uint64{0, 1, 8, 63} {
		if got := partialTag(addr); got != 1 {
			t.Fatalf("partialTag(%#x) = %d, want sentinel 1", addr, got)
		}
	}
	// No address may produce tag 0.
	for addr := uint64(0); addr < 1<<20; addr += 64 {
		if partialTag(addr) == 0 {
			t.Fatalf("partialTag(%#x) = 0", addr)
		}
	}
	// Regression: a reuse of address 0 must be measured as a hit, exactly
	// like any other address.
	s := New(Config{CacheSets: 1, SampledSets: 1, FIFODepth: 4, InsertRate: 1, DMax: 16, Sc: 4})
	s.Access(0, 0)
	s.Access(0, 0)
	if s.Stats.Hits != 1 {
		t.Fatalf("reuse of address 0 not measured: stats = %+v", s.Stats)
	}
}

func TestCounterArrayDecay(t *testing.T) {
	c := NewCounterArray(16, 4)
	for i := 0; i < 10; i++ {
		c.RecordAccess()
	}
	for i := 0; i < 6; i++ {
		c.RecordHit(3)
	}
	c.RecordHit(9)
	c.Decay(1)
	if got := c.Count(0); got != 3 {
		t.Fatalf("Count(0) after Decay(1) = %d, want 3", got)
	}
	if got := c.Count(2); got != 0 {
		t.Fatalf("Count(2) after Decay(1) = %d, want 0", got)
	}
	if got := c.Total(); got != 5 {
		t.Fatalf("Total after Decay(1) = %d, want 5", got)
	}
	// Decay(0) is a no-op.
	c.Decay(0)
	if got := c.Count(0); got != 3 {
		t.Fatalf("Count(0) after Decay(0) = %d, want 3", got)
	}
}

func TestCounterArrayDecayUnfreezes(t *testing.T) {
	c := NewCounterArray(16, 4)
	c.NiMax = 8
	for i := 0; i < 10; i++ {
		c.RecordAccess()
		c.RecordHit(1)
	}
	if !c.Frozen() {
		t.Fatal("array should have frozen at NiMax")
	}
	c.Decay(1)
	if c.Frozen() {
		t.Fatal("Decay must unfreeze the array")
	}
	c.RecordAccess()
	c.RecordHit(1)
	if got := c.Count(0); got != 5 {
		t.Fatalf("Count(0) after decay+hit = %d, want 5", got)
	}
}

func TestCounterArrayMerge(t *testing.T) {
	a := NewCounterArray(16, 4)
	b := NewCounterArray(16, 4)
	for i := 0; i < 4; i++ {
		a.RecordAccess()
		b.RecordAccess()
	}
	a.RecordHit(3)
	b.RecordHit(3)
	b.RecordHit(13)
	a.Merge(b)
	if got := a.Count(0); got != 2 {
		t.Fatalf("merged Count(0) = %d, want 2", got)
	}
	if got := a.Count(3); got != 1 {
		t.Fatalf("merged Count(3) = %d, want 1", got)
	}
	if got := a.Total(); got != 8 {
		t.Fatalf("merged Total = %d, want 8", got)
	}
	if a.Frozen() {
		t.Fatal("merge below saturation must not freeze")
	}
	// Merge saturates like live recording.
	a.NiMax = 3
	a.Merge(b)
	if got := a.Count(0); got != 3 {
		t.Fatalf("saturated merged Count(0) = %d, want clamp to 3", got)
	}
	if !a.Frozen() {
		t.Fatal("merge reaching NiMax must freeze")
	}
	// Geometry mismatch is a programming error.
	defer func() {
		if recover() == nil {
			t.Fatal("Merge with mismatched geometry did not panic")
		}
	}()
	a.Merge(NewCounterArray(32, 4))
}

func TestSamplerResetStats(t *testing.T) {
	s := New(Config{CacheSets: 1, SampledSets: 1, FIFODepth: 4, InsertRate: 1, DMax: 16, Sc: 4})
	s.Access(0, 64)
	s.Access(0, 64)
	if s.Stats.Accesses != 2 || s.Stats.Hits != 1 {
		t.Fatalf("unexpected stats before reset: %+v", s.Stats)
	}
	s.ResetStats()
	if s.Stats != (Stats{}) {
		t.Fatalf("ResetStats left %+v", s.Stats)
	}
	// Measurement continues seamlessly: the FIFO kept its history, so the
	// next reuse is still a hit.
	s.Access(0, 64)
	if s.Stats.Accesses != 1 || s.Stats.Hits != 1 {
		t.Fatalf("unexpected stats after reset: %+v", s.Stats)
	}
}
