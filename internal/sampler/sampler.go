// Package sampler implements the PDP paper's reuse-distance measurement
// hardware (Sec. 3): an RD sampler that monitors a subset of cache sets
// with per-set FIFOs of partial tags, and the array of saturating RD
// counters that accumulates the dynamic reuse-distance distribution (RDD).
package sampler

import (
	"fmt"

	"pdp/internal/trace"
)

// CounterArray is the RDD store: counter k accumulates hits whose reuse
// distance falls in ((k)*Sc, (k+1)*Sc], plus a total-access counter N_t.
// Counters are saturating; when any N_i saturates, the whole array freezes
// to preserve the RDD shape (paper Sec. 3).
type CounterArray struct {
	dmax   int
	sc     int
	n      []uint32
	nt     uint64
	frozen bool

	// NiMax and NtMax model the hardware widths (16-bit and 32-bit in the
	// paper's implementation).
	NiMax uint32
	NtMax uint64
}

// NewCounterArray builds an array covering distances 1..dmax with step sc.
// dmax must be a multiple of sc.
func NewCounterArray(dmax, sc int) *CounterArray {
	if dmax <= 0 || sc <= 0 || dmax%sc != 0 {
		panic(fmt.Sprintf("sampler: invalid dmax=%d sc=%d", dmax, sc))
	}
	return &CounterArray{
		dmax:  dmax,
		sc:    sc,
		n:     make([]uint32, dmax/sc),
		NiMax: 1<<16 - 1,
		NtMax: 1<<32 - 1,
	}
}

// K returns the number of N_i counters.
func (c *CounterArray) K() int { return len(c.n) }

// Sc returns the counter step.
func (c *CounterArray) Sc() int { return c.sc }

// DMax returns the maximum measurable distance.
func (c *CounterArray) DMax() int { return c.dmax }

// Dist returns the (upper-edge) distance represented by counter k.
func (c *CounterArray) Dist(k int) int { return (k + 1) * c.sc }

// Count returns N_k.
func (c *CounterArray) Count(k int) uint32 { return c.n[k] }

// Counts returns a copy of the N_i counters.
func (c *CounterArray) Counts() []uint32 {
	out := make([]uint32, len(c.n))
	copy(out, c.n)
	return out
}

// Total returns N_t.
func (c *CounterArray) Total() uint64 { return c.nt }

// Reuses returns the measured-reuse mass: the sum of all N_i counters.
// Unlike N_t it excludes accesses whose distance was never measured, so it
// is the right quantity to test for statistical evidence of reuse.
func (c *CounterArray) Reuses() uint64 {
	var sum uint64
	for _, v := range c.n {
		sum += uint64(v)
	}
	return sum
}

// Frozen reports whether a counter has saturated.
func (c *CounterArray) Frozen() bool { return c.frozen }

// RecordAccess counts one access into N_t.
func (c *CounterArray) RecordAccess() {
	if c.frozen {
		return
	}
	c.nt++
	if c.nt >= c.NtMax {
		c.frozen = true
	}
}

// RecordHit counts a reuse at distance rd (1-based). Distances beyond DMax
// are long lines: they contribute to N_t only, which the caller has already
// counted via RecordAccess.
func (c *CounterArray) RecordHit(rd int) {
	if c.frozen || rd < 1 || rd > c.dmax {
		return
	}
	k := (rd - 1) / c.sc
	c.n[k]++
	if c.n[k] >= c.NiMax {
		c.frozen = true
	}
}

// Corrupt XORs mask into counter k — a fault-injection seam modelling an
// SRAM soft error in the RDD store (internal/faultinject drives it). The
// saturation freeze is re-evaluated so a flip into the saturated range
// degrades exactly as the hardware would: the array freezes, preserving
// the (now corrupted) RDD shape until the next recompute resets it.
func (c *CounterArray) Corrupt(k int, mask uint32) {
	if k < 0 || k >= len(c.n) {
		return
	}
	c.n[k] ^= mask
	if c.n[k] >= c.NiMax {
		c.frozen = true
	}
}

// SetCounts overwrites the array's state from a saved snapshot: the N_i
// counters (shorter slices leave the tail zero; longer ones are
// truncated), N_t, and the saturation freeze re-derived from the restored
// values. The serving layer's crash-safe warm restart uses it to put a
// restored cache's RDD evidence back where the snapshot left it.
func (c *CounterArray) SetCounts(counts []uint32, total uint64) {
	c.Reset()
	for i := range c.n {
		if i >= len(counts) {
			break
		}
		v := counts[i]
		if v >= c.NiMax {
			v = c.NiMax
			c.frozen = true
		}
		c.n[i] = v
	}
	if total >= c.NtMax {
		total = c.NtMax
		c.frozen = true
	}
	c.nt = total
}

// Reset clears all counters and unfreezes the array.
func (c *CounterArray) Reset() {
	for i := range c.n {
		c.n[i] = 0
	}
	c.nt = 0
	c.frozen = false
}

// Decay right-shifts every counter (N_i and N_t) by the given number of
// bits and unfreezes the array — the epoch-decay alternative to Reset for
// long-running services: the RDD becomes an exponentially weighted window
// over recent epochs instead of one epoch's exact histogram, so a workload
// phase change re-converges within a few epochs while sparse epochs still
// see enough mass to compute a PD. Decay(0) is a no-op.
func (c *CounterArray) Decay(shift uint) {
	if shift == 0 {
		return
	}
	for i := range c.n {
		c.n[i] >>= shift
	}
	c.nt >>= shift
	c.frozen = false
}

// Merge adds src's counters into c with the same saturation semantics as
// live recording (if any N_i reaches NiMax, or N_t reaches NtMax, the
// merged array freezes). It panics on mismatched geometry. The serving
// layer uses it to aggregate per-shard RDDs into one global distribution
// before the E(d_p) search.
func (c *CounterArray) Merge(src *CounterArray) {
	if src == nil {
		return
	}
	if src.dmax != c.dmax || src.sc != c.sc {
		panic(fmt.Sprintf("sampler: Merge geometry mismatch: %d/%d vs %d/%d",
			c.dmax, c.sc, src.dmax, src.sc))
	}
	for i := range c.n {
		v := uint64(c.n[i]) + uint64(src.n[i])
		if v >= uint64(c.NiMax) {
			v = uint64(c.NiMax)
			c.frozen = true
		}
		c.n[i] = uint32(v)
	}
	c.nt += src.nt
	if c.nt >= c.NtMax {
		c.nt = c.NtMax
		c.frozen = true
	}
	if src.frozen {
		c.frozen = true
	}
}

// Bits returns the SRAM bits of the array (16-bit N_i + 32-bit N_t),
// matching the paper's overhead accounting d_max/S_c*16 + 32.
func (c *CounterArray) Bits() int { return len(c.n)*16 + 32 }

// Config describes an RD sampler.
type Config struct {
	// CacheSets is the number of sets of the monitored cache.
	CacheSets int
	// SampledSets is the number of monitored sets (32 in the paper's "Real"
	// configuration). Use Full for one FIFO per cache set.
	SampledSets int
	// Full ignores SampledSets and monitors every set at full rate (the
	// paper's "Full" configuration used to validate the Real one).
	Full bool
	// FIFODepth is the number of partial-tag entries per monitored set.
	FIFODepth int
	// InsertRate is M: a new FIFO entry is inserted every M-th access, and
	// RD = n*M + t (paper Sec. 3). Must divide the measurable range:
	// FIFODepth*InsertRate >= DMax for full coverage.
	InsertRate int
	// DMax is the maximum reuse distance of interest.
	DMax int
	// Sc is the counter-array step.
	Sc int
}

// RealConfig returns the paper's "Real" sampler for a cache: 32 sets, a
// 32-entry FIFO, insertion rate 8, d_max 256.
func RealConfig(cacheSets, sc int) Config {
	return Config{
		CacheSets:   cacheSets,
		SampledSets: 32,
		FIFODepth:   32,
		InsertRate:  8,
		DMax:        256,
		Sc:          sc,
	}
}

// FullConfig returns the exact-measurement configuration: every set, FIFO
// depth d_max, insertion rate 1.
func FullConfig(cacheSets, sc int) Config {
	return Config{
		CacheSets:   cacheSets,
		SampledSets: cacheSets,
		Full:        true,
		FIFODepth:   256,
		InsertRate:  1,
		DMax:        256,
		Sc:          sc,
	}
}

// FIFO entries are bare 16-bit partial tags, exactly the modeled SRAM:
// tag 0 is reserved (partialTag never produces it), so 0 doubles as the
// empty/invalidated slot marker and the scan loop needs no separate
// valid bit. 2-byte entries also keep a 32-deep FIFO in one cache line.
type fifoEntry = uint16

// Stats counts sampler activity; read it directly, like cache.Stats. The
// counters are cumulative over the sampler's lifetime (Reset does not
// clear them).
type Stats struct {
	// Accesses counts accesses to monitored sets.
	Accesses uint64 `json:"accesses"`
	// Hits counts reuse distances measured (FIFO matches).
	Hits uint64 `json:"hits"`
	// Inserts counts FIFO entries pushed.
	Inserts uint64 `json:"inserts"`
	// Evictions counts valid FIFO entries overwritten before ever matching
	// — reuse distances the sampler failed to measure (either longer than
	// the FIFO covers, or never reused at all).
	Evictions uint64 `json:"evictions"`
}

// RDSampler measures set-level reuse distances of an access stream and
// accumulates them into a CounterArray.
type RDSampler struct {
	cfg    Config
	arr    *CounterArray
	stride int
	fifos  [][]fifoEntry // ring per sampled set; head = most recent
	heads  []int
	counts []int // per-set sampling counter t
	thresh []int // per-set dithered insertion threshold (~M)
	rng    *trace.RNG

	// Stats accumulates activity counters; callers may read it directly.
	Stats Stats
	// OnFIFOEvict, when non-nil, is called with the sampler slot whenever a
	// valid FIFO entry is overwritten unmatched (observability seam).
	OnFIFOEvict func(slot int)
}

// New builds a sampler; the caller owns the returned CounterArray lifetime
// via Array().
func New(cfg Config) *RDSampler {
	if cfg.Full {
		cfg.SampledSets = cfg.CacheSets
		cfg.InsertRate = 1
		if cfg.FIFODepth < cfg.DMax {
			cfg.FIFODepth = cfg.DMax
		}
	}
	if cfg.CacheSets <= 0 || cfg.SampledSets <= 0 || cfg.FIFODepth <= 0 ||
		cfg.InsertRate <= 0 || cfg.DMax <= 0 || cfg.Sc <= 0 {
		panic(fmt.Sprintf("sampler: invalid config %+v", cfg))
	}
	if cfg.SampledSets > cfg.CacheSets {
		cfg.SampledSets = cfg.CacheSets
	}
	s := &RDSampler{
		cfg:    cfg,
		arr:    NewCounterArray(cfg.DMax, cfg.Sc),
		stride: cfg.CacheSets / cfg.SampledSets,
		fifos:  make([][]fifoEntry, cfg.SampledSets),
		heads:  make([]int, cfg.SampledSets),
		counts: make([]int, cfg.SampledSets),
		thresh: make([]int, cfg.SampledSets),
		rng:    trace.NewRNG(uint64(cfg.CacheSets)*2654435761 + 12345),
	}
	for i := range s.fifos {
		s.fifos[i] = make([]fifoEntry, cfg.FIFODepth)
		s.thresh[i] = cfg.InsertRate
	}
	return s
}

// Array returns the counter array accumulating the RDD.
func (s *RDSampler) Array() *CounterArray { return s.arr }

// Config returns the sampler configuration.
func (s *RDSampler) Config() Config { return s.cfg }

// partialTag hashes a line address to the 16-bit stored tag. Tag 0 is
// reserved: the modeled hardware FIFO stores nothing but the 16-bit tag,
// so an all-zero entry is indistinguishable from an empty slot. Addresses
// hashing to 0 map to 1 instead — one more alias on tag 1 (harmless; the
// sampler tolerates aliasing by design) rather than a tag that can shadow
// or be shadowed by empty slots.
func partialTag(addr uint64) uint16 {
	x := addr >> 6
	x ^= x >> 16
	x ^= x >> 32
	if t := uint16(x); t != 0 {
		return t
	}
	return 1
}

// sampledSlot returns the sampler slot of a cache set, or -1 if the set is
// not monitored.
func (s *RDSampler) sampledSlot(set int) int {
	if set%s.stride != 0 {
		return -1
	}
	slot := set / s.stride
	if slot >= s.cfg.SampledSets {
		return -1
	}
	return slot
}

// Sampled reports whether the given cache set is monitored.
func (s *RDSampler) Sampled(set int) bool { return s.sampledSlot(set) >= 0 }

// Access feeds one cache access (set index + full address) into the
// sampler. Non-monitored sets are ignored.
func (s *RDSampler) Access(set int, addr uint64) {
	s.AccessInto(set, addr, s.arr)
}

// AccessInto runs the sampler's FIFO machinery for one access but records
// the result into the given counter array. This supports the multi-core
// organization (paper Sec. 4): one FIFO per sampled set shared by all
// threads — so reuse distances are measured in global set-access time —
// with a counter array per thread.
func (s *RDSampler) AccessInto(set int, addr uint64, arr *CounterArray) {
	slot := s.sampledSlot(set)
	if slot < 0 {
		return
	}
	s.Stats.Accesses++
	arr.RecordAccess()

	fifo := s.fifos[slot]
	depth := len(fifo)
	head := s.heads[slot]
	t := s.counts[slot]
	tag := partialTag(addr)

	// Search from most recent insertion to oldest; position of the most
	// recent match gives the RD. The index walks backward with an explicit
	// wrap instead of a per-probe modulo — this loop runs under the shard
	// lock on every sampled serving access.
	idx := head - 1
	if idx < 0 {
		idx += depth
	}
	for n := 0; n < depth; n++ {
		if fifo[idx] == tag {
			// Paper formula RD = n*M + t counts intervening accesses; the
			// repository convention counts the access-index difference
			// (back-to-back reuse has RD 1), hence the +1.
			rd := n*s.cfg.InsertRate + t + 1
			s.Stats.Hits++
			arr.RecordHit(rd)
			// Invalidate to reduce RD measurement error (paper Sec. 3).
			fifo[idx] = 0
			break
		}
		if idx == 0 {
			idx = depth
		}
		idx--
	}

	// Insert a new entry roughly every M-th access. The threshold is
	// dithered by +/-1 around M (a one-LFSR hardware tweak): a strictly
	// periodic 1-in-M insertion phase-locks against near-periodic per-set
	// traffic (e.g. one access per thread per round in a multi-programmed
	// mix) and can starve whole threads of FIFO entries for long stretches.
	// The accumulated distance error is O(sqrt(n)) per measured RD.
	t++
	if t >= s.thresh[slot] {
		t = 0
		if fifo[head] != 0 {
			s.Stats.Evictions++
			if s.OnFIFOEvict != nil {
				s.OnFIFOEvict(slot)
			}
		}
		s.Stats.Inserts++
		fifo[head] = tag
		if head++; head == depth {
			head = 0
		}
		s.heads[slot] = head
		if m := s.cfg.InsertRate; m >= 2 {
			s.thresh[slot] = m - 1 + int(s.rng.Uint64()%3)
		}
	}
	s.counts[slot] = t
}

// ResetStats zeroes the cumulative activity counters, starting a fresh
// observation window. Long-running services call it at epoch boundaries so
// Stats describes the recent window rather than the process lifetime; the
// FIFOs and counter array are untouched (use Reset or the array's
// Reset/Decay for those).
func (s *RDSampler) ResetStats() { s.Stats = Stats{} }

// Reset clears FIFOs, sampling counters and the counter array.
func (s *RDSampler) Reset() {
	for i := range s.fifos {
		for j := range s.fifos[i] {
			s.fifos[i][j] = 0
		}
		s.heads[i] = 0
		s.counts[i] = 0
	}
	s.arr.Reset()
}

// Bits returns the sampler's SRAM overhead in bits: per sampled set,
// FIFODepth 16-bit tags plus the log2(M) sampling counter (paper Sec. 3),
// plus the counter array.
func (s *RDSampler) Bits() int {
	logM := 0
	for m := s.cfg.InsertRate; m > 1; m >>= 1 {
		logM++
	}
	perSet := s.cfg.FIFODepth*16 + logM
	return s.cfg.SampledSets*perSet + s.arr.Bits()
}

// MultiRDSampler is the multi-core sampler organization of the PDP paper's
// partitioning policy (Sec. 4): the per-set FIFOs are shared by all
// threads, so measured reuse distances are in global set-access time, while
// each thread accumulates its own RDD in a private counter array.
type MultiRDSampler struct {
	smp    *RDSampler
	arrays []*CounterArray
}

// NewMulti builds a shared-FIFO sampler with one counter array per thread.
func NewMulti(cfg Config, threads int) *MultiRDSampler {
	if threads < 1 {
		panic("sampler: NewMulti needs at least one thread")
	}
	m := &MultiRDSampler{smp: New(cfg), arrays: make([]*CounterArray, threads)}
	c := m.smp.Config()
	for t := range m.arrays {
		m.arrays[t] = NewCounterArray(c.DMax, c.Sc)
	}
	return m
}

// Access feeds one access by `thread` into the sampler.
func (m *MultiRDSampler) Access(set, thread int, addr uint64) {
	if thread < 0 || thread >= len(m.arrays) {
		thread = 0
	}
	m.smp.AccessInto(set, addr, m.arrays[thread])
}

// Array returns thread t's counter array.
func (m *MultiRDSampler) Array(t int) *CounterArray { return m.arrays[t] }

// Threads returns the number of per-thread arrays.
func (m *MultiRDSampler) Threads() int { return len(m.arrays) }

// ResetArrays clears every thread's counter array (the FIFOs keep their
// history so measurement continues seamlessly).
func (m *MultiRDSampler) ResetArrays() {
	for _, a := range m.arrays {
		a.Reset()
	}
}

// Bits returns the SRAM overhead: the shared FIFOs plus one counter array
// per thread.
func (m *MultiRDSampler) Bits() int {
	return m.smp.Bits() + (len(m.arrays)-1)*m.arrays[0].Bits()
}
