package cpusim

import (
	"math"
	"testing"
	"testing/quick"
)

func mustNew(t *testing.T, cfg Config) *Core {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestValidation(t *testing.T) {
	if _, err := New(Config{Width: 0, ROB: 1, MSHRs: 1}); err == nil {
		t.Fatal("zero width must error")
	}
}

func TestComputeOnly(t *testing.T) {
	c := mustNew(t, Default())
	c.Advance(4000)
	if got := c.Cycles(); got != 1000 {
		t.Fatalf("cycles = %v, want width-limited 1000", got)
	}
	if ipc := c.IPC(); ipc != 4 {
		t.Fatalf("IPC = %v, want 4", ipc)
	}
}

func TestSingleMissStalls(t *testing.T) {
	cfg := Default()
	c := mustNew(t, cfg)
	c.Memory(cfg.MemCycles) // at position 0: dispatch 0, complete 200
	c.Advance(3999)
	// Retire slot of the op was 0, so the full 200 cycles stall.
	want := 1000.0 + 200
	if got := c.Cycles(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("cycles = %v, want %v", got, want)
	}
}

func TestBackToBackMissesOverlap(t *testing.T) {
	// Two independent misses inside the same ROB window overlap almost
	// fully: total stall ~ one memory latency, not two (MLP).
	cfg := Default()
	c := mustNew(t, cfg)
	c.Memory(cfg.MemCycles)
	c.Memory(cfg.MemCycles)
	c.Advance(3998)
	got := c.Cycles()
	oneMiss := 1000.0 + float64(cfg.MemCycles)
	if got > oneMiss+2 {
		t.Fatalf("cycles = %v: overlapping misses must cost ~one latency (%v)", got, oneMiss)
	}
}

func TestMSHRSerializes(t *testing.T) {
	// With a single MSHR, two misses serialize: ~two full latencies.
	cfg := Default()
	cfg.MSHRs = 1
	c := mustNew(t, cfg)
	c.Memory(cfg.MemCycles)
	c.Memory(cfg.MemCycles)
	c.Advance(3998)
	want := 1000.0 + 2*float64(cfg.MemCycles) - 0.25 // second op's slot is 1/width later
	if math.Abs(c.Cycles()-want) > 1 {
		t.Fatalf("cycles = %v, want ~%v (serialized)", c.Cycles(), want)
	}
}

func TestROBWindowLimitsOverlap(t *testing.T) {
	// Two misses further apart than the ROB cannot overlap: the second
	// dispatches only after the window has moved past the first.
	cfg := Default()
	c := mustNew(t, cfg)
	c.Memory(cfg.MemCycles)
	c.Advance(uint64(cfg.ROB) + 10) // push the second miss out of the window
	c.Memory(cfg.MemCycles)
	c.Advance(4000)
	got := c.Cycles()
	base := float64(c.Instructions()) / float64(cfg.Width)
	stall := got - base
	if stall < 2*float64(cfg.MemCycles)-float64(cfg.ROB)/float64(cfg.Width)-5 {
		t.Fatalf("stall = %v: ROB-separated misses must not fully overlap", stall)
	}
}

func TestHitsCheaperThanMisses(t *testing.T) {
	cfg := Default()
	hit := mustNew(t, cfg)
	miss := mustNew(t, cfg)
	for i := 0; i < 100; i++ {
		hit.Memory(cfg.LLCHitCycles)
		hit.Advance(300)
		miss.Memory(cfg.MemCycles)
		miss.Advance(300)
	}
	if hit.Cycles() >= miss.Cycles() {
		t.Fatalf("hits (%v cycles) must be cheaper than misses (%v)", hit.Cycles(), miss.Cycles())
	}
}

func TestMonotoneInMissCount(t *testing.T) {
	// Property: replacing a hit with a miss never reduces cycles.
	cfg := Default()
	f := func(pattern []bool) bool {
		if len(pattern) == 0 || len(pattern) > 200 {
			return true
		}
		run := func(misses int) float64 {
			c, _ := New(cfg)
			for i, isMem := range pattern {
				if isMem {
					lat := cfg.LLCHitCycles
					if i < misses {
						lat = cfg.MemCycles
					}
					c.Memory(lat)
				} else {
					c.Advance(10)
				}
			}
			return c.Cycles()
		}
		return run(len(pattern)) >= run(0)-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestMLPBetweenBlockingAndFree(t *testing.T) {
	// A burst of B misses costs between one latency (perfect overlap) and
	// B latencies (blocking).
	cfg := Default()
	const burst = 8
	c := mustNew(t, cfg)
	for i := 0; i < burst; i++ {
		c.Memory(cfg.MemCycles)
	}
	c.Advance(4000 - burst)
	base := 4000.0 / float64(cfg.Width)
	stall := c.Cycles() - base
	if stall < float64(cfg.MemCycles)-1 || stall > float64(burst*cfg.MemCycles)+1 {
		t.Fatalf("stall %v outside [1, %d] memory latencies", stall, burst)
	}
}
