// Package cpusim implements a first-order out-of-order core timing model
// (interval simulation): instructions retire at the issue width, memory
// operations dispatch when they enter the reorder-buffer window, overlap
// within the MSHR budget, and stall retirement only when their latency is
// not hidden. It refines the blocking analytic model in internal/cpu with
// memory-level parallelism, moving the substrate closer to the paper's
// CMP$im-modelled 8-deep 4-wide core (Table 1) while remaining
// deterministic and fast.
package cpusim

import "fmt"

// Config parameterizes the core.
type Config struct {
	// Width is the issue/retire width (paper: 4).
	Width int
	// ROB is the reorder-buffer size in instructions (paper: 128-entry
	// instruction window).
	ROB int
	// MSHRs bounds outstanding memory requests.
	MSHRs int
	// LLCHitCycles and MemCycles are the latencies seen past the L2.
	LLCHitCycles, MemCycles int
}

// Default returns the paper-flavored configuration.
func Default() Config {
	return Config{Width: 4, ROB: 128, MSHRs: 16, LLCHitCycles: 30, MemCycles: 200}
}

func (c *Config) validate() error {
	if c.Width <= 0 || c.ROB <= 0 || c.MSHRs <= 0 {
		return fmt.Errorf("cpusim: invalid config %+v", *c)
	}
	return nil
}

// Core simulates one hardware thread. Feed it alternating compute gaps and
// memory operations via Advance/Memory, then read Cycles.
type Core struct {
	cfg Config

	// instr counts instructions dispatched so far (program order).
	instr uint64
	// stall accumulates retirement stall cycles beyond the width-limited
	// baseline; total cycles = instr/width + stall.
	stall float64

	// dispatchPos[i] / complete[i]: ring of the last ROB-window memory ops'
	// positions and completion times, for the ROB dispatch constraint.
	robRing  []opRecord
	robHead  int
	robCount int

	// mshrFree is a ring of MSHR availability times.
	mshrFree []float64
	mshrPos  int
}

type opRecord struct {
	pos      uint64
	complete float64
}

// New builds a core.
func New(cfg Config) (*Core, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &Core{
		cfg:      cfg,
		robRing:  make([]opRecord, 64),
		mshrFree: make([]float64, cfg.MSHRs),
	}, nil
}

// retireTime returns the earliest cycle instruction `pos` can retire,
// ignoring memory stalls after this point.
func (c *Core) retireTime(pos uint64) float64 {
	return float64(pos)/float64(c.cfg.Width) + c.stall
}

// Advance accounts for n non-memory instructions.
func (c *Core) Advance(n uint64) {
	c.instr += n
}

// Memory accounts for one memory instruction that is satisfied past the L2
// with the given latency (use 0 for upper-level hits whose latency is
// hidden, LLCHitCycles for LLC hits, MemCycles for misses).
func (c *Core) Memory(latency int) {
	pos := c.instr
	c.instr++

	// Dispatch: the op enters the window once instruction pos-ROB retires,
	// and cannot complete before older in-flight ops' ROB pressure allows.
	dispatch := 0.0
	if pos >= uint64(c.cfg.ROB) {
		dispatch = c.retireTime(pos - uint64(c.cfg.ROB))
	}
	// Ops more than ROB instructions older no longer constrain us; pop them.
	for c.robCount > 0 {
		rec := c.robRing[c.robHead]
		if rec.pos+uint64(c.cfg.ROB) > pos {
			break
		}
		// The window could not contain both: we dispatch after it completes.
		if rec.complete > dispatch {
			dispatch = rec.complete
		}
		c.robHead = (c.robHead + 1) % len(c.robRing)
		c.robCount--
	}

	if latency <= 0 {
		return
	}

	// MSHR: wait for a free miss register.
	issue := dispatch
	if free := c.mshrFree[c.mshrPos]; free > issue {
		issue = free
	}
	complete := issue + float64(latency)
	c.mshrFree[c.mshrPos] = complete
	c.mshrPos = (c.mshrPos + 1) % c.cfg.MSHRs

	// Retirement: if the op completes after its program-order retire slot,
	// the pipeline stalls for the difference (latency not hidden).
	slot := c.retireTime(pos)
	if complete > slot {
		c.stall += complete - slot
	}

	// Record for the ROB constraint on much-younger ops.
	if c.robCount == len(c.robRing) {
		// Grow (rare; bounded by MSHRs in practice).
		bigger := make([]opRecord, 2*len(c.robRing))
		for i := 0; i < c.robCount; i++ {
			bigger[i] = c.robRing[(c.robHead+i)%len(c.robRing)]
		}
		c.robRing, c.robHead = bigger, 0
	}
	c.robRing[(c.robHead+c.robCount)%len(c.robRing)] = opRecord{pos: pos, complete: complete}
	c.robCount++
}

// Instructions returns the instructions accounted so far.
func (c *Core) Instructions() uint64 { return c.instr }

// Cycles returns the simulated execution time.
func (c *Core) Cycles() float64 {
	return float64(c.instr)/float64(c.cfg.Width) + c.stall
}

// IPC returns instructions per cycle.
func (c *Core) IPC() float64 {
	cy := c.Cycles()
	if cy == 0 {
		return 0
	}
	return float64(c.instr) / cy
}
