package rrip

import (
	"testing"

	"pdp/internal/cache"
	"pdp/internal/trace"
)

func addr(sets, set, tag int) uint64 { return uint64(tag*sets+set) * 64 }

func TestSRRIPInsertAndPromotion(t *testing.T) {
	p := NewSRRIP(1, 4)
	c := cache.New(cache.Config{Name: "t", Sets: 1, Ways: 4, LineSize: 64}, p)
	c.Access(trace.Access{Addr: addr(1, 0, 0)})
	if got := p.RRPV(0, 0); got != MaxRRPV-1 {
		t.Fatalf("insert RRPV = %d, want %d (long)", got, MaxRRPV-1)
	}
	c.Access(trace.Access{Addr: addr(1, 0, 0)})
	if got := p.RRPV(0, 0); got != 0 {
		t.Fatalf("hit RRPV = %d, want 0 (near)", got)
	}
}

func TestSRRIPVictimAging(t *testing.T) {
	p := NewSRRIP(1, 4)
	c := cache.New(cache.Config{Name: "t", Sets: 1, Ways: 4, LineSize: 64}, p)
	for tag := 0; tag < 4; tag++ {
		c.Access(trace.Access{Addr: addr(1, 0, tag)})
	}
	// All lines at RRPV 2: victim selection must age everyone to 3 and
	// pick way 0.
	r := c.Access(trace.Access{Addr: addr(1, 0, 9)})
	if !r.Evicted || r.VictimAddr != addr(1, 0, 0) {
		t.Fatalf("victim = %#x, want leftmost aged line (tag 0)", r.VictimAddr)
	}
	// Remaining old lines must now be at RRPV 3.
	for w := 1; w < 4; w++ {
		if got := p.RRPV(0, w); got != MaxRRPV {
			t.Fatalf("way %d RRPV = %d after aging, want %d", w, got, MaxRRPV)
		}
	}
}

func TestSRRIPScanResistance(t *testing.T) {
	// A small per-set working set with an interleaved one-shot scan: SRRIP
	// must retain the working set where LRU loses it.
	const sets, ways = 16, 4
	p := NewSRRIP(sets, ways)
	cS := cache.New(cache.Config{Name: "t", Sets: sets, Ways: ways, LineSize: 64}, p)
	cL := cache.New(cache.Config{Name: "t", Sets: sets, Ways: ways, LineSize: 64}, cache.NewLRU(sets, ways))

	ws := trace.NewLoopGen("ws", 2*sets, 1, 1) // 2 hot lines per set
	scan := trace.NewStreamGen("scan", 2)      // cold scan
	mix := trace.NewMixGen("mix", 3, []trace.Generator{ws, scan}, []float64{0.35, 0.65})
	for i := 0; i < 100000; i++ {
		a := mix.Next()
		cS.Access(a)
		cL.Access(a)
	}
	if cS.Stats.HitRate() < cL.Stats.HitRate()+0.1 {
		t.Fatalf("SRRIP %.3f vs LRU %.3f under scan: want clear win",
			cS.Stats.HitRate(), cL.Stats.HitRate())
	}
}

func TestBRRIPEpsilonExtremes(t *testing.T) {
	p0 := NewBRRIP(1, 2, 0, 1)
	c0 := cache.New(cache.Config{Name: "t", Sets: 1, Ways: 2, LineSize: 64}, p0)
	c0.Access(trace.Access{Addr: addr(1, 0, 0)})
	if got := p0.RRPV(0, 0); got != MaxRRPV {
		t.Fatalf("eps=0 insert RRPV = %d, want distant (%d)", got, MaxRRPV)
	}
	p1 := NewBRRIP(1, 2, 1.0, 1)
	c1 := cache.New(cache.Config{Name: "t", Sets: 1, Ways: 2, LineSize: 64}, p1)
	c1.Access(trace.Access{Addr: addr(1, 0, 0)})
	if got := p1.RRPV(0, 0); got != MaxRRPV-1 {
		t.Fatalf("eps=1 insert RRPV = %d, want long (%d)", got, MaxRRPV-1)
	}
}

func TestDRRIPWinsDuelUnderThrash(t *testing.T) {
	const sets, ways, per = 256, 4, 8
	p := NewDRRIP(sets, ways, DefaultEpsilon, 1)
	c := cache.New(cache.Config{Name: "t", Sets: sets, Ways: ways, LineSize: 64}, p)
	cLRU := cache.New(cache.Config{Name: "t", Sets: sets, Ways: ways, LineSize: 64}, cache.NewLRU(sets, ways))
	g := trace.NewLoopGen("loop", per*sets, 1, 1)
	for i := 0; i < per*sets*200; i++ {
		a := g.Next()
		c.Access(a)
		cLRU.Access(a)
	}
	if p.Dueler().Winner() != 1 {
		t.Fatal("BRRIP must win under thrashing")
	}
	if c.Stats.HitRate() < cLRU.Stats.HitRate()+0.2 {
		t.Fatalf("DRRIP %.3f vs LRU %.3f: want clear win", c.Stats.HitRate(), cLRU.Stats.HitRate())
	}
}

func TestDRRIPStaysSRRIPWhenFriendly(t *testing.T) {
	const sets, ways = 64, 4
	p := NewDRRIP(sets, ways, DefaultEpsilon, 1)
	c := cache.New(cache.Config{Name: "t", Sets: sets, Ways: ways, LineSize: 64}, p)
	g := trace.NewLoopGen("loop", (ways-1)*sets, 1, 1)
	for i := 0; i < 50000; i++ {
		c.Access(g.Next())
	}
	if p.Dueler().Winner() != 0 {
		t.Fatal("SRRIP must win on an LRU-friendly loop")
	}
}

func TestTADRRIPLeaderAssignment(t *testing.T) {
	const sets, ways, threads = 2048, 16, 4
	p := NewTADRRIP(sets, ways, threads, DefaultEpsilon, 1)
	counts := make(map[[2]int]int) // (thread, role) -> count
	for s := 0; s < sets; s++ {
		owner, role := p.LeaderRole(s)
		if owner >= 0 {
			counts[[2]int{owner, role}]++
		}
	}
	for tt := 0; tt < threads; tt++ {
		for role := 0; role < 2; role++ {
			if got := counts[[2]int{tt, role}]; got != 32 {
				t.Fatalf("thread %d role %d has %d leader sets, want 32", tt, role, got)
			}
		}
	}
}

func TestTADRRIPPerThreadWinners(t *testing.T) {
	const sets, ways, threads = 256, 4, 2
	p := NewTADRRIP(sets, ways, threads, DefaultEpsilon, 1)
	c := cache.New(cache.Config{Name: "t", Sets: sets, Ways: ways, LineSize: 64}, p)

	// Thread 0: LRU-friendly small loop; thread 1: thrashing loop.
	g0 := trace.NewLoopGen("t0", 2*sets, 1, 1)
	g1 := trace.NewLoopGen("t1", 12*sets, 2, 2)
	for i := 0; i < 600000; i++ {
		a0 := g0.Next()
		a0.Thread = 0
		c.Access(a0)
		a1 := g1.Next()
		a1.Thread = 1
		c.Access(a1)
	}
	if p.winner(0) != 0 {
		t.Errorf("thread 0 winner = BRRIP, want SRRIP (friendly workload)")
	}
	if p.winner(1) != 1 {
		t.Errorf("thread 1 winner = SRRIP, want BRRIP (thrashing workload)")
	}
}

func TestTADRRIPSingleThreadFallback(t *testing.T) {
	p := NewTADRRIP(64, 4, 0, DefaultEpsilon, 1) // threads < 1 clamped to 1
	c := cache.New(cache.Config{Name: "t", Sets: 64, Ways: 4, LineSize: 64}, p)
	// Out-of-range thread ids must not crash.
	c.Access(trace.Access{Addr: 0x40, Thread: 7})
	c.Access(trace.Access{Addr: 0x80, Thread: -3})
}

func TestSHiPLearnsDeadSignature(t *testing.T) {
	const sets, ways = 64, 4
	p := NewSHiP(sets, ways)
	c := cache.New(cache.Config{Name: "t", Sets: sets, Ways: ways, LineSize: 64}, p)
	// A pure stream from one PC: its fills are never re-referenced, so the
	// signature must train down to "distant".
	g := trace.NewStreamGen("s", 1)
	for i := 0; i < 50000; i++ {
		a := g.Next()
		a.PC = 0xBEE
		c.Access(a)
	}
	if p.Predicted(0xBEE) {
		t.Fatal("streaming signature must be predicted dead")
	}
	// A reusing PC stays predicted.
	l := trace.NewLoopGen("l", 2*sets, 2, 1)
	for i := 0; i < 50000; i++ {
		a := l.Next()
		a.PC = 0x11EE
		c.Access(a)
	}
	if !p.Predicted(0x11EE) {
		t.Fatal("reusing signature must stay predicted re-referenced")
	}
}

func TestSHiPProtectsAgainstStream(t *testing.T) {
	// Hot working set + PC-identifiable stream: SHiP must beat SRRIP by
	// inserting the stream distant.
	const sets, ways = 64, 4
	pS := NewSHiP(sets, ways)
	cS := cache.New(cache.Config{Name: "t", Sets: sets, Ways: ways, LineSize: 64}, pS)
	pR := NewSRRIP(sets, ways)
	cR := cache.New(cache.Config{Name: "t", Sets: sets, Ways: ways, LineSize: 64}, pR)

	hot := trace.NewLoopGen("hot", 3*sets, 1, 1)
	stream := trace.NewStreamGen("stream", 2)
	mix := trace.NewMixGen("mix", 7, []trace.Generator{hot, stream}, []float64{0.4, 0.6})
	for i := 0; i < 300000; i++ {
		a := mix.Next()
		cS.Access(a)
		cR.Access(a)
	}
	if cS.Stats.HitRate() < cR.Stats.HitRate() {
		t.Fatalf("SHiP %.3f vs SRRIP %.3f under streaming", cS.Stats.HitRate(), cR.Stats.HitRate())
	}
}
