// Package rrip implements the Re-Reference Interval Prediction replacement
// family of Jaleel et al. (ISCA 2010): SRRIP, BRRIP, set-dueling DRRIP and
// thread-aware TA-DRRIP — the main single-core and multi-core comparison
// points of the PDP paper.
package rrip

import (
	"pdp/internal/cache"
	"pdp/internal/dip"
	"pdp/internal/trace"
)

// DefaultEpsilon is the BRRIP long-insertion probability (paper: 1/32).
const DefaultEpsilon = 1.0 / 32

// MaxRRPV for the 2-bit implementation evaluated in the paper.
const MaxRRPV = 3

// base holds the shared RRPV machinery.
type base struct {
	ways int
	rrpv []uint8
}

func newBase(sets, ways int) base {
	r := base{ways: ways, rrpv: make([]uint8, sets*ways)}
	for i := range r.rrpv {
		r.rrpv[i] = MaxRRPV
	}
	return r
}

// RRPV returns the re-reference prediction value of (set, way) (testing).
func (b *base) RRPV(set, way int) uint8 { return b.rrpv[set*b.ways+way] }

// hit applies hit-priority promotion: RRPV = 0.
func (b *base) hit(set, way int) { b.rrpv[set*b.ways+way] = 0 }

// victim finds the leftmost line with RRPV == MaxRRPV, aging the set until
// one exists.
func (b *base) victim(set int) int {
	baseIdx := set * b.ways
	for {
		for w := 0; w < b.ways; w++ {
			if b.rrpv[baseIdx+w] == MaxRRPV {
				return w
			}
		}
		for w := 0; w < b.ways; w++ {
			b.rrpv[baseIdx+w]++
		}
	}
}

// insertLong predicts a long re-reference interval (SRRIP insertion).
func (b *base) insertLong(set, way int) { b.rrpv[set*b.ways+way] = MaxRRPV - 1 }

// insertDistant predicts a distant re-reference interval.
func (b *base) insertDistant(set, way int) { b.rrpv[set*b.ways+way] = MaxRRPV }

// SRRIP is static RRIP: every line is inserted with a long re-reference
// prediction.
type SRRIP struct {
	cache.NopPolicy
	base
}

var _ cache.Policy = (*SRRIP)(nil)

// NewSRRIP builds an SRRIP policy.
func NewSRRIP(sets, ways int) *SRRIP { return &SRRIP{base: newBase(sets, ways)} }

// Name implements cache.Policy.
func (p *SRRIP) Name() string { return "SRRIP" }

// Hit implements cache.Policy.
func (p *SRRIP) Hit(set, way int, _ trace.Access) { p.hit(set, way) }

// Victim implements cache.Policy.
func (p *SRRIP) Victim(set int, _ trace.Access) (int, bool) { return p.victim(set), false }

// Insert implements cache.Policy.
func (p *SRRIP) Insert(set, way int, _ trace.Access) { p.insertLong(set, way) }

// BRRIP is bimodal RRIP: distant insertion, long with probability Epsilon.
type BRRIP struct {
	cache.NopPolicy
	base
	eps float64
	rng *trace.RNG
}

var _ cache.Policy = (*BRRIP)(nil)

// NewBRRIP builds a BRRIP policy with the given epsilon.
func NewBRRIP(sets, ways int, eps float64, seed uint64) *BRRIP {
	return &BRRIP{base: newBase(sets, ways), eps: eps, rng: trace.NewRNG(seed)}
}

// Name implements cache.Policy.
func (p *BRRIP) Name() string { return "BRRIP" }

// Hit implements cache.Policy.
func (p *BRRIP) Hit(set, way int, _ trace.Access) { p.hit(set, way) }

// Victim implements cache.Policy.
func (p *BRRIP) Victim(set int, _ trace.Access) (int, bool) { return p.victim(set), false }

// Insert implements cache.Policy.
func (p *BRRIP) Insert(set, way int, _ trace.Access) {
	if p.rng.Bernoulli(p.eps) {
		p.insertLong(set, way)
	} else {
		p.insertDistant(set, way)
	}
}

// DRRIP duels SRRIP (policy 0) against BRRIP (policy 1) with a PSEL
// counter, using the same monitor as DIP.
type DRRIP struct {
	cache.NopPolicy
	base
	duel *dip.Dueler
	eps  float64
	rng  *trace.RNG
}

var _ cache.Policy = (*DRRIP)(nil)

// NewDRRIP builds a dynamic RRIP policy.
func NewDRRIP(sets, ways int, eps float64, seed uint64) *DRRIP {
	return &DRRIP{
		base: newBase(sets, ways),
		duel: dip.NewDueler(dip.DuelingConfig{Sets: sets}),
		eps:  eps,
		rng:  trace.NewRNG(seed),
	}
}

// Name implements cache.Policy.
func (p *DRRIP) Name() string { return "DRRIP" }

// Dueler exposes the monitor (testing).
func (p *DRRIP) Dueler() *dip.Dueler { return p.duel }

// Hit implements cache.Policy.
func (p *DRRIP) Hit(set, way int, _ trace.Access) { p.hit(set, way) }

// Victim implements cache.Policy.
func (p *DRRIP) Victim(set int, _ trace.Access) (int, bool) { return p.victim(set), false }

// Insert implements cache.Policy.
func (p *DRRIP) Insert(set, way int, acc trace.Access) {
	if !acc.WB {
		p.duel.Miss(set)
	}
	if p.duel.PolicyFor(set) == 0 {
		p.insertLong(set, way)
		return
	}
	if p.rng.Bernoulli(p.eps) {
		p.insertLong(set, way)
	} else {
		p.insertDistant(set, way)
	}
}
