package rrip

import (
	"pdp/internal/cache"
	"pdp/internal/trace"
)

// SHiP is Signature-based Hit Prediction (Wu et al., MICRO 2011) with PC
// signatures — the insertion-classification approach the PDP paper
// discusses in Sec. 6.3/7 as related to its proposed per-class PDs. Each
// line carries the signature of the access that filled it and an outcome
// bit; a table of saturating counters (SHCT) learns whether a signature's
// fills are re-referenced. Fills whose signature never hits are inserted
// with a distant re-reference prediction (RRPV = 3), others long (RRPV = 2).
type SHiP struct {
	cache.NopPolicy
	base
	ways    int
	shct    []uint8 // 3-bit saturating counters
	sig     []uint16
	outcome []bool
}

var _ cache.Policy = (*SHiP)(nil)

// SHCTSize is the signature history counter table size (16K entries).
const SHCTSize = 1 << 14

// NewSHiP builds a SHiP-PC policy.
func NewSHiP(sets, ways int) *SHiP {
	p := &SHiP{
		base:    newBase(sets, ways),
		ways:    ways,
		shct:    make([]uint8, SHCTSize),
		sig:     make([]uint16, sets*ways),
		outcome: make([]bool, sets*ways),
	}
	// Optimistic start: signatures begin weakly re-referenced so new code
	// paths are not penalized before any evidence.
	for i := range p.shct {
		p.shct[i] = 1
	}
	return p
}

// Name implements cache.Policy.
func (p *SHiP) Name() string { return "SHiP" }

// signature folds a PC into the 14-bit SHCT index.
func signature(pc uint64) uint16 {
	x := pc ^ pc>>14 ^ pc>>28 ^ pc>>42
	return uint16(x) & (SHCTSize - 1)
}

// Hit implements cache.Policy: promote, mark the outcome, and train the
// filling signature as re-referenced.
func (p *SHiP) Hit(set, way int, _ trace.Access) {
	p.hit(set, way)
	i := set*p.ways + way
	if !p.outcome[i] {
		p.outcome[i] = true
		if s := p.sig[i]; p.shct[s] < 7 {
			p.shct[s]++
		}
	}
}

// Victim implements cache.Policy.
func (p *SHiP) Victim(set int, _ trace.Access) (int, bool) {
	return p.victim(set), false
}

// Insert implements cache.Policy.
func (p *SHiP) Insert(set, way int, acc trace.Access) {
	i := set*p.ways + way
	s := signature(acc.PC)
	p.sig[i] = s
	p.outcome[i] = false
	if p.shct[s] == 0 {
		p.insertDistant(set, way)
	} else {
		p.insertLong(set, way)
	}
}

// Evict implements cache.Policy: a line that dies unreferenced trains its
// filling signature down.
func (p *SHiP) Evict(set, way int) {
	i := set*p.ways + way
	if !p.outcome[i] {
		if s := p.sig[i]; p.shct[s] > 0 {
			p.shct[s]--
		}
	}
}

// Predicted reports whether a PC's fills are currently predicted to be
// re-referenced (testing).
func (p *SHiP) Predicted(pc uint64) bool { return p.shct[signature(pc)] > 0 }
