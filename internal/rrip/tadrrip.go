package rrip

import (
	"pdp/internal/cache"
	"pdp/internal/trace"
)

// TADRRIP is thread-aware DRRIP (Jaleel et al.): every thread duels SRRIP
// against BRRIP with its own PSEL counter and its own leader sets. In
// thread t's leader sets, only lines inserted by t follow the dedicated
// policy; all other insertions follow the inserting thread's current
// winner. It is the baseline of the PDP paper's multi-core evaluation.
type TADRRIP struct {
	cache.NopPolicy
	base
	threads int
	eps     float64
	rng     *trace.RNG

	psel    []int
	pselMax int
	owner   []int16 // per set: thread owning the leader role, -1 follower
	roleOf  []int8  // 0 = SRRIP leader, 1 = BRRIP leader
}

var _ cache.Policy = (*TADRRIP)(nil)

// NewTADRRIP builds a thread-aware DRRIP policy for `threads` threads.
func NewTADRRIP(sets, ways, threads int, eps float64, seed uint64) *TADRRIP {
	if threads < 1 {
		threads = 1
	}
	p := &TADRRIP{
		base:    newBase(sets, ways),
		threads: threads,
		eps:     eps,
		rng:     trace.NewRNG(seed),
		psel:    make([]int, threads),
		pselMax: 1<<10 - 1,
		owner:   make([]int16, sets),
		roleOf:  make([]int8, sets),
	}
	for s := range p.owner {
		p.owner[s] = -1
	}
	for t := range p.psel {
		p.psel[t] = p.pselMax / 2 // midpoint with winner() == 0 initially
	}
	// Leader assignment: up to 32 leader sets per thread per policy,
	// interleaved across the index space so threads' constituencies are
	// disjoint and spread out.
	leaders := 32
	for 2*leaders*threads > sets && leaders > 1 {
		leaders /= 2
	}
	slots := 2 * leaders * threads
	if slots > sets {
		slots = sets
	}
	stride := sets / slots
	for i := 0; i < slots; i++ {
		set := i * stride
		p.owner[set] = int16(i % threads)
		p.roleOf[set] = int8((i / threads) % 2)
	}
	return p
}

// Name implements cache.Policy.
func (p *TADRRIP) Name() string { return "TA-DRRIP" }

// LeaderRole returns (owner thread, role) for a set; owner -1 means
// follower (testing).
func (p *TADRRIP) LeaderRole(set int) (int, int) {
	return int(p.owner[set]), int(p.roleOf[set])
}

// winner returns thread t's current policy: 0 SRRIP, 1 BRRIP.
func (p *TADRRIP) winner(t int) int {
	if p.psel[t] > p.pselMax/2 {
		return 1
	}
	return 0
}

// Hit implements cache.Policy.
func (p *TADRRIP) Hit(set, way int, _ trace.Access) { p.hit(set, way) }

// Victim implements cache.Policy.
func (p *TADRRIP) Victim(set int, _ trace.Access) (int, bool) { return p.victim(set), false }

// Insert implements cache.Policy.
func (p *TADRRIP) Insert(set, way int, acc trace.Access) {
	t := acc.Thread
	if t < 0 || t >= p.threads {
		t = 0
	}
	pol := p.winner(t)
	if int(p.owner[set]) == t {
		pol = int(p.roleOf[set])
		if !acc.WB {
			// A miss in the thread's own leader set trains its PSEL.
			if pol == 0 {
				if p.psel[t] < p.pselMax {
					p.psel[t]++
				}
			} else if p.psel[t] > 0 {
				p.psel[t]--
			}
		}
	}
	if pol == 0 {
		p.insertLong(set, way)
		return
	}
	if p.rng.Bernoulli(p.eps) {
		p.insertLong(set, way)
	} else {
		p.insertDistant(set, way)
	}
}
