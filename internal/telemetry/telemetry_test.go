package telemetry

import (
	"bufio"
	"bytes"
	"encoding/json"
	"testing"

	"pdp/internal/cache"
	"pdp/internal/core"
	"pdp/internal/trace"
)

func TestCounterGaugeHistogram(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	if r.Counter("c") != c {
		t.Fatal("same name must return the same counter")
	}

	g := r.Gauge("g")
	g.Set(0.75)
	if g.Value() != 0.75 {
		t.Fatalf("gauge = %v, want 0.75", g.Value())
	}

	h := r.Histogram("h")
	h.Observe(0) // bucket 0
	h.Observe(1) // bucket 1
	h.Observe(7) // bucket 3: [4,8)
	h.Observe(8) // bucket 4: [8,16)
	if h.Count() != 4 || h.Sum() != 16 {
		t.Fatalf("count=%d sum=%d, want 4/16", h.Count(), h.Sum())
	}
	want := []uint64{1, 1, 0, 1, 1}
	got := h.Buckets()
	if len(got) != len(want) {
		t.Fatalf("buckets = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("buckets = %v, want %v", got, want)
		}
	}
	if h.Mean() != 4 {
		t.Fatalf("mean = %v, want 4", h.Mean())
	}
}

func TestNilRegistryIsDisabled(t *testing.T) {
	var r *Registry
	// None of these may panic, and all must report zero.
	c := r.Counter("x")
	c.Inc()
	c.Add(10)
	if c.Value() != 0 {
		t.Fatal("nil counter must stay at 0")
	}
	g := r.Gauge("x")
	g.Set(3)
	if g.Value() != 0 {
		t.Fatal("nil gauge must stay at 0")
	}
	h := r.Histogram("x")
	h.Observe(9)
	if h.Count() != 0 || h.Buckets() != nil {
		t.Fatal("nil histogram must stay empty")
	}
	if r.Snapshot() != nil || r.Names() != nil {
		t.Fatal("nil registry snapshot must be nil")
	}
	if err := r.WriteJSON(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
}

func TestRegistrySnapshotJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("hits").Add(3)
	r.Gauge("rate").Set(0.5)
	r.Histogram("life").Observe(4)
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var got map[string]any
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("invalid JSON %q: %v", buf.String(), err)
	}
	if got["hits"] != float64(3) || got["rate"] != 0.5 {
		t.Fatalf("snapshot = %v", got)
	}
	if _, ok := got["life"].(map[string]any); !ok {
		t.Fatalf("histogram snapshot = %T", got["life"])
	}
}

func TestJournalRingAndSink(t *testing.T) {
	var buf bytes.Buffer
	j := NewJournal(4)
	j.SetSink(&buf)
	for i := 0; i < 10; i++ {
		j.Append(EventRecord{Kind: KindBypass, Access: uint64(i), Set: i, Way: -1})
	}
	j.Append(SnapshotRecord{Kind: KindSnapshot, Access: 10})
	if err := j.Flush(); err != nil {
		t.Fatal(err)
	}
	if j.Len() != 4 {
		t.Fatalf("ring len = %d, want 4", j.Len())
	}
	if j.Total() != 11 {
		t.Fatalf("total = %d, want 11", j.Total())
	}
	if j.CountKind(KindBypass) != 10 || j.CountKind(KindSnapshot) != 1 {
		t.Fatalf("counts: bypass=%d snapshot=%d", j.CountKind(KindBypass), j.CountKind(KindSnapshot))
	}

	// Tail returns the most recent records, oldest first.
	tail := j.Tail(2)
	if len(tail) != 2 {
		t.Fatalf("tail len = %d", len(tail))
	}
	if ev, ok := tail[0].(EventRecord); !ok || ev.Access != 9 {
		t.Fatalf("tail[0] = %+v", tail[0])
	}
	if _, ok := tail[1].(SnapshotRecord); !ok {
		t.Fatalf("tail[1] = %+v", tail[1])
	}

	// Every sink line must be valid JSON with a kind field.
	sc := bufio.NewScanner(&buf)
	lines := 0
	for sc.Scan() {
		var rec map[string]any
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("line %d invalid JSON: %v", lines, err)
		}
		if rec["kind"] == "" || rec["kind"] == nil {
			t.Fatalf("line %d missing kind: %v", lines, rec)
		}
		lines++
	}
	if lines != 11 {
		t.Fatalf("sink lines = %d, want 11", lines)
	}
}

func TestNilJournalIsDisabled(t *testing.T) {
	var j *Journal
	j.Append(SnapshotRecord{Kind: KindSnapshot})
	j.SetSink(&bytes.Buffer{})
	if j.Len() != 0 || j.Total() != 0 || j.Tail(3) != nil || j.CountKind(KindSnapshot) != 0 {
		t.Fatal("nil journal must be empty")
	}
	if err := j.Flush(); err != nil {
		t.Fatal(err)
	}
}

func TestRecordKindsMatchFields(t *testing.T) {
	recs := []Record{
		RecomputeRecord{Kind: KindPDRecompute},
		SnapshotRecord{Kind: KindSnapshot},
		EventRecord{Kind: KindBypass},
		EventRecord{Kind: KindProtectedEvict},
		EventRecord{Kind: KindSamplerEvict},
	}
	for _, r := range recs {
		b, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		var m map[string]any
		if err := json.Unmarshal(b, &m); err != nil {
			t.Fatal(err)
		}
		if m["kind"] != r.RecordKind() {
			t.Fatalf("kind field %q != RecordKind %q", m["kind"], r.RecordKind())
		}
	}
}

// countMonitor counts events per kind.
type countMonitor struct{ n [4]int }

func (m *countMonitor) Event(ev cache.Event) { m.n[ev.Kind]++ }

func TestMultiFansOut(t *testing.T) {
	a, b := &countMonitor{}, &countMonitor{}
	if Multi() != nil || Multi(nil, nil) != nil {
		t.Fatal("Multi of no monitors must be nil")
	}
	if got := Multi(a, nil); got != a {
		t.Fatal("Multi of one monitor must unwrap it")
	}
	m := Multi(a, b)
	c := cache.New(cache.Config{Name: "t", Sets: 1, Ways: 1, LineSize: 64}, cache.NewLRU(1, 1))
	c.SetMonitor(m)
	c.Access(trace.Access{Addr: 0})
	c.Access(trace.Access{Addr: 0})
	c.Access(trace.Access{Addr: 64})
	for _, mon := range []*countMonitor{a, b} {
		if mon.n[cache.EvHit] != 1 || mon.n[cache.EvInsert] != 2 || mon.n[cache.EvEvict] != 1 {
			t.Fatalf("monitor events = %v", mon.n)
		}
	}
}

// tapFixture runs a small PDP-managed cache with a full telemetry pipeline.
func tapFixture(t *testing.T, accesses int, snapshotEvery uint64) (*Tap, *Registry, *Journal, *cache.Cache) {
	t.Helper()
	const sets, ways = 16, 2
	pol := core.New(core.Config{
		Sets: sets, Ways: ways, Bypass: true, RecomputeEvery: 512, DMax: 64, SC: 4,
	})
	c := cache.New(cache.Config{Name: "LLC", Sets: sets, Ways: ways, LineSize: 64, AllowBypass: true}, pol)
	reg := NewRegistry()
	// A ring large enough to retain every record of the run, so tests can
	// inspect payloads via Tail (wraparound is covered separately).
	j := NewJournal(1 << 15)
	tap := NewTap(c, TapConfig{Registry: reg, Journal: j, SnapshotEvery: snapshotEvery, EventSample: 1})
	tap.ObservePolicy(pol)
	ObservePDP(pol, j, 1)
	c.SetMonitor(tap)
	rng := trace.NewRNG(7)
	for i := 0; i < accesses; i++ {
		// A working set larger than the cache: hits, misses and bypasses.
		c.Access(trace.Access{Addr: uint64(rng.Intn(sets*ways*4)) * 64})
	}
	return tap, reg, j, c
}

func TestTapPipeline(t *testing.T) {
	tap, reg, j, c := tapFixture(t, 4000, 1000)

	if got := tap.Accesses(); got != c.Stats.Accesses {
		t.Fatalf("tap accesses = %d, cache = %d", got, c.Stats.Accesses)
	}
	if reg.Counter("LLC.hits").Value() != c.Stats.Hits {
		t.Fatalf("hits counter = %d, stats = %d", reg.Counter("LLC.hits").Value(), c.Stats.Hits)
	}
	if reg.Counter("LLC.bypasses").Value() != c.Stats.Bypasses {
		t.Fatalf("bypass counter = %d, stats = %d", reg.Counter("LLC.bypasses").Value(), c.Stats.Bypasses)
	}
	if reg.Counter("LLC.evictions").Value() != c.Stats.Evictions {
		t.Fatalf("evictions counter = %d, stats = %d", reg.Counter("LLC.evictions").Value(), c.Stats.Evictions)
	}
	if c.Stats.Evictions > 0 && reg.Histogram("LLC.line_lifetime").Count() != c.Stats.Evictions {
		t.Fatalf("lifetime observations = %d, evictions = %d",
			reg.Histogram("LLC.line_lifetime").Count(), c.Stats.Evictions)
	}

	if tap.Snapshots() != 4 {
		t.Fatalf("snapshots = %d, want 4", tap.Snapshots())
	}
	if j.CountKind(KindSnapshot) != 4 {
		t.Fatalf("snapshot records = %d, want 4", j.CountKind(KindSnapshot))
	}
	if c.Stats.Bypasses > 0 && j.CountKind(KindBypass) != c.Stats.Bypasses {
		t.Fatalf("bypass records = %d, bypasses = %d", j.CountKind(KindBypass), c.Stats.Bypasses)
	}
	if j.CountKind(KindPDRecompute) == 0 {
		t.Fatal("expected pd_recompute records (RecomputeEvery=512 over 4000 accesses)")
	}

	// The most recent snapshot must be self-consistent.
	var snap *SnapshotRecord
	for _, r := range j.Tail(j.Len()) {
		if s, ok := r.(SnapshotRecord); ok {
			snap = &s
		}
	}
	if snap == nil {
		t.Fatal("no snapshot in ring")
	}
	if snap.Access != 4000 {
		t.Fatalf("snapshot access = %d, want 4000", snap.Access)
	}
	if snap.HitRate < 0 || snap.HitRate > 1 || snap.ValidFrac <= 0 || snap.ValidFrac > 1 {
		t.Fatalf("snapshot out of range: %+v", snap)
	}
	if snap.PD <= 0 {
		t.Fatalf("snapshot PD = %d, want > 0 (PDProvider wired)", snap.PD)
	}
	if snap.SetSkew < 1 {
		t.Fatalf("set skew = %v, want >= 1", snap.SetSkew)
	}
	if len(snap.Occupancy) != 1 || snap.Occupancy[0] <= 0 || snap.Occupancy[0] > 1 {
		t.Fatalf("occupancy = %v", snap.Occupancy)
	}
}

func TestTapProtectedEvictions(t *testing.T) {
	// Non-bypass PDP: a full set of protected lines forces a protected
	// eviction (paper Fig. 3e), which the tap must journal with the
	// victim's pre-eviction RPD.
	const sets, ways = 1, 2
	pol := core.New(core.Config{Sets: sets, Ways: ways, StaticPD: 64, DMax: 64, SC: 4})
	c := cache.New(cache.Config{Name: "L", Sets: sets, Ways: ways, LineSize: 64}, pol)
	j := NewJournal(16)
	tap := NewTap(c, TapConfig{Journal: j, EventSample: 1})
	tap.ObservePolicy(pol)
	c.SetMonitor(tap)
	for tag := 0; tag < 4; tag++ {
		c.Access(trace.Access{Addr: uint64(tag * sets * 64)})
	}
	if j.CountKind(KindProtectedEvict) == 0 {
		t.Fatal("expected protected_evict records")
	}
	for _, r := range j.Tail(j.Len()) {
		if ev, ok := r.(EventRecord); ok && ev.Kind == KindProtectedEvict && ev.RPD <= 0 {
			t.Fatalf("protected_evict without RPD: %+v", ev)
		}
	}
}

func TestObservePDPSamplerEvents(t *testing.T) {
	// A streaming (no-reuse) address pattern never matches sampler FIFO
	// entries, so every insertion after the FIFO fills evicts a valid
	// entry and must be journaled.
	const sets, ways = 16, 2
	pol := core.New(core.Config{Sets: sets, Ways: ways, Bypass: true, RecomputeEvery: 512, DMax: 64, SC: 4})
	c := cache.New(cache.Config{Name: "L", Sets: sets, Ways: ways, LineSize: 64, AllowBypass: true}, pol)
	j := NewJournal(16)
	ObservePDP(pol, j, 1)
	for i := 0; i < 20000; i++ {
		c.Access(trace.Access{Addr: uint64(i) * 64})
	}
	if j.CountKind(KindSamplerEvict) == 0 {
		t.Fatal("expected sampler_fifo_evict records on a streaming access pattern")
	}
	if pol.Sampler().Stats.Evictions == 0 {
		t.Fatal("sampler Stats.Evictions not counted")
	}
}

func TestObservePDPRecomputePayload(t *testing.T) {
	_, _, j, _ := tapFixture(t, 2000, 0)
	found := false
	for _, r := range j.Tail(j.Len()) {
		rec, ok := r.(RecomputeRecord)
		if !ok {
			continue
		}
		found = true
		if rec.Seq == 0 || rec.NewPD <= 0 || rec.Access == 0 {
			t.Fatalf("bad recompute record: %+v", rec)
		}
		if len(rec.RDD) == 0 || len(rec.E) != len(rec.RDD) {
			t.Fatalf("recompute RDD/E missing: rdd=%d e=%d", len(rec.RDD), len(rec.E))
		}
	}
	if !found {
		t.Fatal("no recompute record in ring")
	}
}

func TestTapEventSampling(t *testing.T) {
	const sets, ways = 4, 2
	pol := core.New(core.Config{Sets: sets, Ways: ways, Bypass: true, StaticPD: 64, DMax: 64, SC: 4})
	c := cache.New(cache.Config{Name: "L", Sets: sets, Ways: ways, LineSize: 64, AllowBypass: true}, pol)
	j := NewJournal(1 << 12)
	tap := NewTap(c, TapConfig{Journal: j, EventSample: 8})
	c.SetMonitor(tap)
	rng := trace.NewRNG(3)
	for i := 0; i < 5000; i++ {
		c.Access(trace.Access{Addr: uint64(rng.Intn(sets*ways*8)) * 64})
	}
	if c.Stats.Bypasses == 0 {
		t.Fatal("fixture produced no bypasses")
	}
	want := (c.Stats.Bypasses + 7) / 8
	got := j.CountKind(KindBypass)
	if got != want {
		t.Fatalf("sampled bypass records = %d, want %d of %d", got, want, c.Stats.Bypasses)
	}
}
