package telemetry

import (
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the default mux
	"os"
	"runtime"
	"runtime/pprof"
)

// StartCPUProfile begins writing a CPU profile to path and returns the
// function that stops profiling and closes the file. Pair it with defer:
//
//	stop, err := telemetry.StartCPUProfile("cpu.prof")
//	...
//	defer stop()
func StartCPUProfile(path string) (stop func() error, err error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("cpu profile: %w", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("cpu profile: %w", err)
	}
	return func() error {
		pprof.StopCPUProfile()
		return f.Close()
	}, nil
}

// WriteHeapProfile writes an up-to-date allocation profile to path.
func WriteHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("heap profile: %w", err)
	}
	defer f.Close()
	runtime.GC() // get up-to-date statistics
	if err := pprof.WriteHeapProfile(f); err != nil {
		return fmt.Errorf("heap profile: %w", err)
	}
	return nil
}

// ServeDebug starts an HTTP server on addr exposing /debug/pprof (live
// profiling of long runs) and /debug/vars (expvar, including registries
// published with PublishExpvar). It returns once the listener is bound, so
// a caller can fail fast on a bad address; serving continues in the
// background for the life of the process.
func ServeDebug(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("debug server: %w", err)
	}
	go func() {
		// DefaultServeMux carries the pprof and expvar handlers.
		_ = http.Serve(ln, nil)
	}()
	return nil
}
