package telemetry

import (
	"pdp/internal/core"
)

// ObservePDP wires a dynamic PDP policy into the journal: every PD
// recomputation is appended as a RecomputeRecord (old PD, new PD, RDD
// snapshot, E(d_p) curve), and the RD sampler's FIFO evictions as
// KindSamplerEvict events, one in eventSample (<= 1 journals all).
// Static-PD policies have no sampler and no recomputations; wiring them is
// a no-op. A nil journal detaches both hooks.
func ObservePDP(p *core.PDP, j *Journal, eventSample uint64) {
	if p == nil {
		return
	}
	if j == nil {
		p.SetObserver(nil)
		if s := p.Sampler(); s != nil {
			s.OnFIFOEvict = nil
		}
		return
	}
	name := p.Name()
	p.SetObserver(func(ev core.RecomputeEvent) {
		j.Append(RecomputeRecord{
			Kind:     KindPDRecompute,
			Access:   ev.Access,
			Policy:   name,
			Seq:      ev.Seq,
			OldPD:    ev.OldPD,
			NewPD:    ev.NewPD,
			RDD:      ev.Counts,
			RDDTotal: ev.Total,
			Frozen:   ev.Frozen,
			E:        ev.E,
		})
	})
	if s := p.Sampler(); s != nil {
		var n uint64
		s.OnFIFOEvict = func(slot int) {
			n++
			if eventSample <= 1 || n%eventSample == 1 {
				j.Append(EventRecord{
					Kind: KindSamplerEvict, Access: p.Accesses(), Set: slot, Way: -1,
				})
			}
		}
	}
}
