package telemetry

import (
	"math"

	"pdp/internal/cache"
)

// PDProvider exposes a current protecting distance; *core.PDP implements
// it. The Tap uses it to stamp snapshots with the PD trajectory.
type PDProvider interface {
	PD() int
}

// MultiPDProvider exposes per-thread protecting distances;
// *partition.PDPPart implements it.
type MultiPDProvider interface {
	PDs() []int
}

// ProtectionChecker reports protecting-distance state of resident lines;
// *core.PDP implements it. The cache emits eviction events before
// notifying the policy, so the Tap reads the victim's pre-eviction state.
type ProtectionChecker interface {
	Protected(set, way int) bool
	RPD(set, way int) int
}

// TapConfig configures a Tap. Zero values disable the corresponding
// feature: a nil Registry records no metrics, a nil Journal no events, a
// zero SnapshotEvery no snapshots.
type TapConfig struct {
	Registry *Registry
	Journal  *Journal
	// SnapshotEvery emits one SnapshotRecord every that many monitored
	// accesses (0 disables snapshots).
	SnapshotEvery uint64
	// EventSample journals one in EventSample bypass / protected-eviction
	// events (<= 1 journals all). Snapshots and PD recomputations are never
	// sampled.
	EventSample uint64
	// Cores sizes the per-core occupancy tracking (0 means 1).
	Cores int
}

// Tap is a cache.Monitor that feeds the telemetry pipeline: it maintains
// registry counters and the line-lifetime histogram, journals bypass and
// protected-line-eviction events, and emits periodic interval snapshots.
// Attach it with cache.SetMonitor (or telemetry.Multi to share the seam
// with other monitors). A Tap is single-goroutine, like the cache it
// observes.
type Tap struct {
	c   *cache.Cache
	cfg TapConfig

	hits, inserts, evictions *Counter
	bypasses                 *Counter
	protEvicts               *Counter
	lifetime                 *Histogram
	hitRate, pdGauge, occupG *Gauge

	pd   PDProvider
	pds  MultiPDProvider
	prot ProtectionChecker

	ways     int
	accs     uint64
	insertAt []uint64 // SetAccesses at insert, per line (lifetime histogram)
	owner    []int32  // owning core per line, -1 when unattributed
	occ      []uint64 // resident line count per core
	baseSet  []uint64 // per-set access counts at attach (skew baseline)

	last      cache.Stats // stats at previous snapshot
	byN, pvN  uint64      // sampling counters for bypass / protected-evict
	snapshots uint64
}

// NewTap builds a Tap for c. When cfg.Cores <= 1 every line valid at
// construction is attributed to core 0; in multi-core taps pre-existing
// lines stay unattributed until they churn out.
func NewTap(c *cache.Cache, cfg TapConfig) *Tap {
	if cfg.Cores <= 0 {
		cfg.Cores = 1
	}
	ccfg := c.Config()
	lines := ccfg.Sets * ccfg.Ways
	prefix := ccfg.Name
	if prefix == "" {
		prefix = "cache"
	}
	prefix += "."
	reg := cfg.Registry
	t := &Tap{
		c:          c,
		cfg:        cfg,
		hits:       reg.Counter(prefix + "hits"),
		inserts:    reg.Counter(prefix + "inserts"),
		evictions:  reg.Counter(prefix + "evictions"),
		bypasses:   reg.Counter(prefix + "bypasses"),
		protEvicts: reg.Counter(prefix + "protected_evictions"),
		lifetime:   reg.Histogram(prefix + "line_lifetime"),
		hitRate:    reg.Gauge(prefix + "hit_rate"),
		pdGauge:    reg.Gauge(prefix + "pd"),
		occupG:     reg.Gauge(prefix + "valid_frac"),
		ways:       ccfg.Ways,
		insertAt:   make([]uint64, lines),
		owner:      make([]int32, lines),
		occ:        make([]uint64, cfg.Cores),
		baseSet:    make([]uint64, ccfg.Sets),
		last:       c.Stats,
	}
	for set := 0; set < ccfg.Sets; set++ {
		t.baseSet[set] = c.SetAccesses(set)
		for w := 0; w < ccfg.Ways; w++ {
			i := set*ccfg.Ways + w
			t.owner[i] = -1
			if c.Valid(set, w) {
				t.insertAt[i] = t.baseSet[set]
				if cfg.Cores == 1 {
					t.owner[i] = 0
					t.occ[0]++
				}
			}
		}
	}
	return t
}

// ObservePolicy inspects pol for the optional telemetry interfaces
// (PDProvider, MultiPDProvider, ProtectionChecker) and records whichever
// it implements, enriching snapshots and eviction events.
func (t *Tap) ObservePolicy(pol cache.Policy) {
	if p, ok := pol.(PDProvider); ok {
		t.pd = p
	}
	if p, ok := pol.(MultiPDProvider); ok {
		t.pds = p
	}
	if p, ok := pol.(ProtectionChecker); ok {
		t.prot = p
	}
}

// Accesses returns the number of monitored accesses so far.
func (t *Tap) Accesses() uint64 { return t.accs }

// Snapshots returns the number of snapshots emitted so far.
func (t *Tap) Snapshots() uint64 { return t.snapshots }

// sampled reports whether the n-th event of a sampled kind is journaled.
func (t *Tap) sampled(n uint64) bool {
	return t.cfg.EventSample <= 1 || n%t.cfg.EventSample == 1
}

// Event implements cache.Monitor.
func (t *Tap) Event(ev cache.Event) {
	i := ev.Set*t.ways + ev.Way
	switch ev.Kind {
	case cache.EvHit:
		t.hits.Inc()
		t.access()
	case cache.EvInsert:
		t.inserts.Inc()
		t.insertAt[i] = ev.SetAccesses
		if old := t.owner[i]; old >= 0 {
			t.occ[old]--
		}
		core := int32(0)
		if ev.Acc.Thread > 0 && ev.Acc.Thread < len(t.occ) {
			core = int32(ev.Acc.Thread)
		}
		t.owner[i] = core
		t.occ[core]++
		t.access()
	case cache.EvEvict:
		t.evictions.Inc()
		t.lifetime.Observe(ev.SetAccesses - t.insertAt[i])
		if old := t.owner[i]; old >= 0 {
			t.occ[old]--
			t.owner[i] = -1
		}
		if t.prot != nil && t.prot.Protected(ev.Set, ev.Way) {
			t.protEvicts.Inc()
			t.pvN++
			// The nil-journal check precedes record construction: boxing
			// the record into the Record interface allocates.
			if t.cfg.Journal != nil && t.sampled(t.pvN) {
				t.cfg.Journal.Append(EventRecord{
					Kind: KindProtectedEvict, Access: t.accs + 1, Set: ev.Set, Way: ev.Way,
					Addr: ev.Addr, Thread: ev.Acc.Thread, RPD: t.prot.RPD(ev.Set, ev.Way),
				})
			}
		}
	case cache.EvBypass:
		t.bypasses.Inc()
		t.byN++
		if t.cfg.Journal != nil && t.sampled(t.byN) {
			t.cfg.Journal.Append(EventRecord{
				Kind: KindBypass, Access: t.accs + 1, Set: ev.Set, Way: -1,
				Addr: ev.Addr, Thread: ev.Acc.Thread,
			})
		}
		t.access()
	}
}

// access advances monitored-access time; exactly one of hit, insert or
// bypass terminates each cache access.
func (t *Tap) access() {
	t.accs++
	if t.cfg.SnapshotEvery > 0 && t.accs%t.cfg.SnapshotEvery == 0 {
		t.snapshot()
	}
}

// snapshot emits one SnapshotRecord and refreshes the gauges.
func (t *Tap) snapshot() {
	st := t.c.Stats
	rec := SnapshotRecord{
		Kind:       KindSnapshot,
		Access:     t.accs,
		HitRate:    st.HitRate(),
		Accesses:   st.Accesses,
		Hits:       st.Hits,
		Misses:     st.Misses,
		Bypasses:   st.Bypasses,
		Evictions:  st.Evictions,
		Writebacks: st.Writebacks,
	}
	if da := st.Accesses - t.last.Accesses; da > 0 {
		rec.IntervalHitRate = float64(st.Hits-t.last.Hits) / float64(da)
	}
	t.last = st

	if t.pd != nil {
		rec.PD = t.pd.PD()
		t.pdGauge.Set(float64(rec.PD))
	}
	if t.pds != nil {
		rec.PDs = t.pds.PDs()
	}

	ccfg := t.c.Config()
	lines := ccfg.Sets * ccfg.Ways
	valid := 0
	for set := 0; set < ccfg.Sets; set++ {
		for w := 0; w < ccfg.Ways; w++ {
			if t.c.Valid(set, w) {
				valid++
			}
		}
	}
	rec.ValidFrac = float64(valid) / float64(lines)
	rec.Occupancy = make([]float64, len(t.occ))
	for i, n := range t.occ {
		rec.Occupancy[i] = float64(n) / float64(lines)
	}
	rec.SetSkew, rec.SetCV = t.setSkew()

	t.hitRate.Set(rec.HitRate)
	t.occupG.Set(rec.ValidFrac)
	t.snapshots++
	t.cfg.Journal.Append(rec)
}

// setSkew summarizes the per-set access distribution since the Tap
// attached: max/mean (1 = uniform) and the coefficient of variation.
func (t *Tap) setSkew() (skew, cv float64) {
	sets := len(t.baseSet)
	var sum, sumSq, max float64
	for set := 0; set < sets; set++ {
		v := float64(t.c.SetAccesses(set) - t.baseSet[set])
		sum += v
		sumSq += v * v
		if v > max {
			max = v
		}
	}
	if sum == 0 {
		return 0, 0
	}
	mean := sum / float64(sets)
	variance := sumSq/float64(sets) - mean*mean
	if variance < 0 {
		variance = 0
	}
	return max / mean, math.Sqrt(variance) / mean
}
