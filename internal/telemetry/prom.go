// Prometheus text exposition (version 0.0.4) for the Registry, plus a
// strict linter for the produced format used by the CI smoke jobs.
//
// Metric names in the registry are free-form ("kv.gets"); the encoder
// sanitizes them to the Prometheus grammar ('.' and every other invalid
// rune become '_'). A name may carry a label suffix in curly braces —
// `http.requests{route="/kv/",method="GET"}` — which the encoder splits
// off and re-attaches verbatim, so one registry holds a whole labeled
// family as sibling entries and /metrics renders them under a single
// `# TYPE` line.
package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// promName splits a registry name into its sanitized Prometheus base name
// and the verbatim label block ("" when unlabeled).
func promName(name string) (base, labels string) {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		base, labels = name[:i], name[i:]
		if !strings.HasSuffix(labels, "}") {
			// Malformed label suffix: treat the whole thing as a name.
			return sanitizeProm(name), ""
		}
		labels = labels[1 : len(labels)-1]
		return sanitizeProm(base), labels
	}
	return sanitizeProm(name), ""
}

// sanitizeProm maps an arbitrary string onto the Prometheus metric-name
// grammar [a-zA-Z_:][a-zA-Z0-9_:]*.
func sanitizeProm(s string) string {
	if s == "" {
		return "_"
	}
	var b strings.Builder
	b.Grow(len(s) + 1)
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if i == 0 && c >= '0' && c <= '9' {
			b.WriteByte('_')
			b.WriteByte(c)
			continue
		}
		if ok {
			b.WriteByte(c)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}

// sanitizeLabelName maps an arbitrary string onto the Prometheus label-name
// grammar [a-zA-Z_][a-zA-Z0-9_]*.
func sanitizeLabelName(s string) string {
	if s == "" {
		return "_"
	}
	var b strings.Builder
	b.Grow(len(s) + 1)
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if i == 0 && c >= '0' && c <= '9' {
			b.WriteByte('_')
			b.WriteByte(c)
			continue
		}
		if ok {
			b.WriteByte(c)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}

// escapeLabelValue escapes a raw label value per the exposition grammar:
// backslash, double quote and newline become \\, \" and \n.
func escapeLabelValue(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	var b strings.Builder
	b.Grow(len(s) + 8)
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(c)
		}
	}
	return b.String()
}

// unescapeLabelValue reverses escapeLabelValue; an unknown escape keeps
// the escaped character verbatim (dropping the backslash), so that
// re-escaping an already-escaped value is idempotent instead of doubling.
func unescapeLabelValue(s string) string {
	if !strings.ContainsRune(s, '\\') {
		return s
	}
	var b strings.Builder
	b.Grow(len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c == '\\' && i+1 < len(s) {
			i++
			switch s[i] {
			case 'n':
				b.WriteByte('\n')
			default: // covers \\ and \" and anything invalid
				b.WriteByte(s[i])
			}
			continue
		}
		b.WriteByte(c)
	}
	return b.String()
}

// Label renders one label pair `name="value"` with the name sanitized and
// the value escaped for the exposition format. Use it when minting labeled
// registry names from runtime strings — peer addresses like
// `127.0.0.1:8081`, file paths, error text — so no value can break the
// /metrics page out of the grammar.
func Label(name, value string) string {
	return sanitizeLabelName(name) + `="` + escapeLabelValue(value) + `"`
}

// normalizeLabels re-renders a raw label block so the emitted exposition
// is always well-formed: every label name is forced onto the label-name
// grammar and every value is (re-)escaped. Already-valid blocks come back
// byte-identical; a value minted without Label — say a peer address
// carrying a quote or a newline — is repaired rather than emitted broken.
func normalizeLabels(block string) string {
	if block == "" {
		return ""
	}
	parts := splitPromLabels(block)
	var b strings.Builder
	b.Grow(len(block) + 8)
	for i, lab := range parts {
		if i > 0 {
			b.WriteByte(',')
		}
		eq := strings.IndexByte(lab, '=')
		if eq < 0 {
			// No '=': treat the whole fragment as a name with an empty value.
			b.WriteString(sanitizeLabelName(lab))
			b.WriteString(`=""`)
			continue
		}
		name, val := lab[:eq], lab[eq+1:]
		if len(val) >= 2 && val[0] == '"' && val[len(val)-1] == '"' {
			val = val[1 : len(val)-1]
		}
		b.WriteString(Label(name, unescapeLabelValue(val)))
	}
	return b.String()
}

// promFloat renders a float the way Prometheus expects.
func promFloat(v float64) string {
	switch {
	case math.IsNaN(v):
		return "NaN"
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// withLabel appends one more label to a (possibly empty) label block.
func withLabel(labels, extra string) string {
	if labels == "" {
		return "{" + extra + "}"
	}
	return "{" + labels + "," + extra + "}"
}

// bucketLE is the inclusive upper bound of log2 bucket k as Prometheus
// `le` text: bucket k holds values v with bits.Len64(v) == k, i.e.
// v <= 2^k - 1, so the cumulative count through bucket k is exactly the
// count of observations <= 2^k - 1.
func bucketLE(k int) string {
	if k >= 64 {
		return strconv.FormatUint(math.MaxUint64, 10)
	}
	return strconv.FormatUint(uint64(1)<<uint(k)-1, 10)
}

// promSeries is one flattened sample series during encoding.
type promSeries struct {
	labels string
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// WriteProm renders every metric in Prometheus text format: one
// `# TYPE` line per family (counter, gauge or histogram), then the
// family's series sorted by label block. Histograms expand into
// cumulative `_bucket{le="..."}` lines at the log2 boundaries (2^k - 1),
// a `le="+Inf"` bucket, `_sum` and `_count`. A nil registry writes
// nothing.
func (r *Registry) WriteProm(w io.Writer) error {
	if r == nil {
		return nil
	}
	// Collect handles under the lock, render outside it: the handles are
	// atomic, so a scrape never blocks writers for longer than a map copy.
	type family struct {
		kind   string // "counter" | "gauge" | "histogram"
		series []promSeries
	}
	fams := map[string]*family{}
	add := func(name, kind string, s promSeries) {
		base, labels := promName(name)
		s.labels = normalizeLabels(labels)
		f, ok := fams[base]
		if !ok {
			f = &family{kind: kind}
			fams[base] = f
		}
		// A name collision across metric kinds after sanitization would
		// produce an invalid exposition; keep the first kind and skip the
		// clashing series rather than emit a malformed page.
		if f.kind != kind {
			return
		}
		f.series = append(f.series, s)
	}
	r.mu.Lock()
	for name, c := range r.counters {
		add(name, "counter", promSeries{c: c})
	}
	for name, g := range r.gauges {
		add(name, "gauge", promSeries{g: g})
	}
	for name, h := range r.hists {
		add(name, "histogram", promSeries{h: h})
	}
	r.mu.Unlock()

	names := make([]string, 0, len(fams))
	for n := range fams {
		names = append(names, n)
	}
	sort.Strings(names)

	bw := bufio.NewWriter(w)
	for _, base := range names {
		f := fams[base]
		sort.Slice(f.series, func(i, j int) bool { return f.series[i].labels < f.series[j].labels })
		fmt.Fprintf(bw, "# TYPE %s %s\n", base, f.kind)
		for _, s := range f.series {
			lb := ""
			if s.labels != "" {
				lb = "{" + s.labels + "}"
			}
			switch f.kind {
			case "counter":
				fmt.Fprintf(bw, "%s%s %d\n", base, lb, s.c.Value())
			case "gauge":
				fmt.Fprintf(bw, "%s%s %s\n", base, lb, promFloat(s.g.Value()))
			case "histogram":
				buckets := s.h.Buckets()
				var cum uint64
				for k, c := range buckets {
					cum += c
					fmt.Fprintf(bw, "%s_bucket%s %d\n",
						base, withLabel(s.labels, `le="`+bucketLE(k)+`"`), cum)
				}
				fmt.Fprintf(bw, "%s_bucket%s %d\n", base, withLabel(s.labels, `le="+Inf"`), cum)
				fmt.Fprintf(bw, "%s_sum%s %d\n", base, lb, s.h.Sum())
				fmt.Fprintf(bw, "%s_count%s %d\n", base, lb, cum)
			}
		}
	}
	return bw.Flush()
}

// --- exposition linter -------------------------------------------------

var (
	promSampleRe = regexp.MustCompile(
		`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{([^}]*)\})? (NaN|[+-]Inf|[-+]?[0-9].*?)( [0-9]+)?$`)
	promTypeRe  = regexp.MustCompile(`^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|histogram|summary|untyped)$`)
	promHelpRe  = regexp.MustCompile(`^# HELP [a-zA-Z_:][a-zA-Z0-9_:]* .*$`)
	promLabelRe = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"$`)
)

// LintProm validates a Prometheus text-format page the strict way the CI
// smoke job needs: every line must be a # TYPE/# HELP comment or a
// well-formed sample, each family's # TYPE must precede its samples and
// appear only once, and every histogram's buckets must be cumulative
// (nondecreasing in le order), end in le="+Inf", and agree with its
// _count series. It returns the first violation found.
func LintProm(r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	types := map[string]string{}
	type histKey struct{ fam, labels string }
	type bucketPoint struct {
		le  float64
		v   float64
		inf bool
	}
	buckets := map[histKey][]bucketPoint{}
	counts := map[histKey]float64{}
	ln := 0
	for sc.Scan() {
		ln++
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if m := promTypeRe.FindStringSubmatch(line); m != nil {
				if _, dup := types[m[1]]; dup {
					return fmt.Errorf("line %d: duplicate # TYPE for %s", ln, m[1])
				}
				types[m[1]] = m[2]
				continue
			}
			if promHelpRe.MatchString(line) {
				continue
			}
			return fmt.Errorf("line %d: malformed comment %q", ln, line)
		}
		m := promSampleRe.FindStringSubmatch(line)
		if m == nil {
			return fmt.Errorf("line %d: malformed sample %q", ln, line)
		}
		name, labelBlock, valText := m[1], m[3], m[4]
		val, err := parsePromValue(valText)
		if err != nil {
			return fmt.Errorf("line %d: %v", ln, err)
		}
		var le string
		var labelRest []string
		if labelBlock != "" {
			for _, lab := range splitPromLabels(labelBlock) {
				if !promLabelRe.MatchString(lab) {
					return fmt.Errorf("line %d: malformed label %q", ln, lab)
				}
				if strings.HasPrefix(lab, `le="`) {
					le = strings.TrimSuffix(strings.TrimPrefix(lab, `le="`), `"`)
				} else {
					labelRest = append(labelRest, lab)
				}
			}
		}
		fam, suffix := name, ""
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			trimmed := strings.TrimSuffix(name, suf)
			if trimmed != name && types[trimmed] == "histogram" {
				fam, suffix = trimmed, suf
				break
			}
		}
		kind, declared := types[fam]
		if !declared {
			return fmt.Errorf("line %d: sample %s before its # TYPE", ln, name)
		}
		if kind == "histogram" {
			key := histKey{fam, strings.Join(labelRest, ",")}
			switch suffix {
			case "_bucket":
				if le == "" {
					return fmt.Errorf("line %d: histogram bucket without le label", ln)
				}
				pt := bucketPoint{v: val, inf: le == "+Inf"}
				if !pt.inf {
					if pt.le, err = strconv.ParseFloat(le, 64); err != nil {
						return fmt.Errorf("line %d: bad le %q", ln, le)
					}
				}
				buckets[key] = append(buckets[key], pt)
			case "_count":
				counts[key] = val
			case "_sum":
			default:
				return fmt.Errorf("line %d: bare sample %s for histogram family %s", ln, name, fam)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	for key, pts := range buckets {
		lastLE := math.Inf(-1)
		lastV := -1.0
		sawInf := false
		for _, pt := range pts {
			if pt.inf {
				sawInf = true
			} else if pt.le <= lastLE {
				return fmt.Errorf("histogram %s{%s}: le out of order", key.fam, key.labels)
			} else {
				lastLE = pt.le
			}
			if pt.v < lastV {
				return fmt.Errorf("histogram %s{%s}: bucket counts not cumulative", key.fam, key.labels)
			}
			lastV = pt.v
		}
		if !sawInf {
			return fmt.Errorf("histogram %s{%s}: missing le=\"+Inf\" bucket", key.fam, key.labels)
		}
		if c, ok := counts[key]; !ok || c != lastV {
			return fmt.Errorf("histogram %s{%s}: +Inf bucket %v disagrees with _count %v",
				key.fam, key.labels, lastV, counts[key])
		}
	}
	return nil
}

func parsePromValue(s string) (float64, error) {
	switch s {
	case "NaN":
		return math.NaN(), nil
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("bad sample value %q", s)
	}
	return v, nil
}

// splitPromLabels splits a label block on commas outside quoted values.
func splitPromLabels(block string) []string {
	var out []string
	depth := false // inside quotes
	start := 0
	for i := 0; i < len(block); i++ {
		switch block[i] {
		case '"':
			if i == 0 || block[i-1] != '\\' {
				depth = !depth
			}
		case ',':
			if !depth {
				out = append(out, block[start:i])
				start = i + 1
			}
		}
	}
	if start < len(block) {
		out = append(out, block[start:])
	}
	return out
}
