package telemetry

// Resilience-layer record kinds. The supervised run harness
// (internal/resilience) and the fault injectors (internal/faultinject)
// journal through these, so robustness campaigns are auditable alongside
// the simulator's own events.
const (
	// KindFault records one injected fault (trace record corruption, RDD
	// counter bit flip, PD perturbation, ...).
	KindFault = "fault"
	// KindWatchdog records a supervised run exceeding its watchdog timeout.
	KindWatchdog = "watchdog"
	// KindRecovery records the harness absorbing a failure it can survive:
	// a recovered panic, a successful retry, or a PD re-convergence after a
	// fault burst.
	KindRecovery = "recovery"
	// KindRunStatus records supervised-run lifecycle transitions
	// (start/done/failed/skipped).
	KindRunStatus = "run_status"
	// KindCheckpoint records a checkpoint save (completed-run set and/or
	// trace offset).
	KindCheckpoint = "checkpoint"
)

// FaultRecord is the KindFault schema.
type FaultRecord struct {
	Kind string `json:"kind"`
	// Site names the injection point: "trace.corrupt", "trace.dup",
	// "trace.drop", "trace.err", "counter.flip", "rdd.zero", "pd.perturb".
	Site string `json:"site"`
	// Seq is the 1-based fault ordinal within the injector's lifetime.
	Seq uint64 `json:"seq"`
	// Access is the access index at which the fault fired (0 when the
	// injector has no access clock, e.g. byte-level corruption).
	Access uint64 `json:"access,omitempty"`
	// Detail describes the concrete corruption (flipped bit, old/new value).
	Detail string `json:"detail,omitempty"`
}

// RecordKind implements Record.
func (FaultRecord) RecordKind() string { return KindFault }

// WatchdogRecord is the KindWatchdog schema.
type WatchdogRecord struct {
	Kind string `json:"kind"`
	// Name identifies the supervised run (experiment id, benchmark/policy).
	Name string `json:"name"`
	// TimeoutSec is the configured watchdog timeout in seconds.
	TimeoutSec float64 `json:"timeout_sec"`
	// LastBeat reports the run's last progress heartbeat (its unit is the
	// run's own: measured accesses for simulator runs), -1 when none.
	LastBeat int64 `json:"last_beat"`
}

// RecordKind implements Record.
func (WatchdogRecord) RecordKind() string { return KindWatchdog }

// RecoveryRecord is the KindRecovery schema.
type RecoveryRecord struct {
	Kind string `json:"kind"`
	// Name identifies the supervised run or subsystem that recovered.
	Name string `json:"name"`
	// Cause names what was survived: "panic", "retry", "pd_reconverge".
	Cause string `json:"cause"`
	// Detail carries the recovered error text, attempt count, or the
	// re-converged PD.
	Detail string `json:"detail,omitempty"`
}

// RecordKind implements Record.
func (RecoveryRecord) RecordKind() string { return KindRecovery }

// RunStatusRecord is the KindRunStatus schema.
type RunStatusRecord struct {
	Kind string `json:"kind"`
	// Name identifies the supervised run.
	Name string `json:"name"`
	// Status is "start", "done", "failed", or "skipped".
	Status string `json:"status"`
	// Err is the failure text for "failed".
	Err string `json:"err,omitempty"`
	// Seconds is the wall-clock duration for terminal statuses.
	Seconds float64 `json:"seconds,omitempty"`
}

// RecordKind implements Record.
func (RunStatusRecord) RecordKind() string { return KindRunStatus }

// CheckpointRecord is the KindCheckpoint schema.
type CheckpointRecord struct {
	Kind string `json:"kind"`
	// Path is the checkpoint file written.
	Path string `json:"path,omitempty"`
	// Completed is the number of completed run ids recorded.
	Completed int `json:"completed"`
	// Offset is the saved trace access offset (0 when none).
	Offset uint64 `json:"offset,omitempty"`
}

// RecordKind implements Record.
func (CheckpointRecord) RecordKind() string { return KindCheckpoint }
