package telemetry

import (
	"bytes"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestHistogramBucketBoundaries pins the log2 bucket geometry the
// quantile math and the Prometheus le bounds both build on: bucket 0 is
// exactly v == 0, bucket k is [2^(k-1), 2^k), and the top bucket (64)
// absorbs the maximal uint64 without overflow.
func TestHistogramBucketBoundaries(t *testing.T) {
	cases := []struct {
		v      uint64
		bucket int
	}{
		{0, 0},
		{1, 1},
		{2, 2}, {3, 2},
		{4, 3}, {7, 3},
		{8, 4}, {15, 4},
		{1 << 62, 63}, {1<<63 - 1, 63},
		{1 << 63, 64}, {math.MaxUint64, 64},
	}
	for _, c := range cases {
		var h Histogram
		h.Observe(c.v)
		got := h.Buckets()
		if len(got) != c.bucket+1 || got[c.bucket] != 1 {
			t.Fatalf("Observe(%d): buckets %v, want single count in bucket %d", c.v, got, c.bucket)
		}
	}

	// Observe(0) must not shift the sum or the count.
	var h Histogram
	h.Observe(0)
	h.Observe(0)
	if h.Count() != 2 || h.Sum() != 0 {
		t.Fatalf("two zeros: count=%d sum=%d", h.Count(), h.Sum())
	}
	if q := h.Quantile(0.99); q != 0 {
		t.Fatalf("all-zero histogram p99 = %v, want 0", q)
	}
}

func TestHistogramQuantile(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram must report 0")
	}

	// 100 observations of 1000 (bucket 10: [512, 1024)): every quantile
	// interpolates inside that one bucket, so the estimate is within the
	// bucket bounds and monotone in q.
	for i := 0; i < 100; i++ {
		h.Observe(1000)
	}
	p50, p99 := h.Quantile(0.5), h.Quantile(0.99)
	if p50 < 512 || p50 >= 1024 || p99 < 512 || p99 >= 1024 {
		t.Fatalf("p50=%v p99=%v escaped bucket [512,1024)", p50, p99)
	}
	if p99 < p50 {
		t.Fatalf("quantiles not monotone: p50=%v p99=%v", p50, p99)
	}

	// Bimodal: 90 fast (bucket [2,4)), 10 slow (bucket [1024,2048)).
	// p50 must land in the fast mode, p99 in the slow one.
	var b Histogram
	for i := 0; i < 90; i++ {
		b.Observe(3)
	}
	for i := 0; i < 10; i++ {
		b.Observe(1500)
	}
	if q := b.Quantile(0.5); q < 2 || q >= 4 {
		t.Fatalf("bimodal p50 = %v, want in [2,4)", q)
	}
	if q := b.Quantile(0.99); q < 1024 || q >= 2048 {
		t.Fatalf("bimodal p99 = %v, want in [1024,2048)", q)
	}

	// Out-of-range q clamps instead of panicking; a nil histogram is 0.
	if b.Quantile(-1) > b.Quantile(2) {
		t.Fatal("clamped quantiles inverted")
	}
	var nilH *Histogram
	if nilH.Quantile(0.5) != 0 {
		t.Fatal("nil histogram quantile must be 0")
	}

	s := b.Summary()
	if s.P50 > s.P90 || s.P90 > s.P99 || s.P99 > s.P999 {
		t.Fatalf("summary not monotone: %+v", s)
	}
}

func TestTimerObserves(t *testing.T) {
	var h Histogram
	tm := StartTimer()
	time.Sleep(time.Millisecond)
	d := tm.ObserveInto(&h)
	if d < time.Millisecond {
		t.Fatalf("timer measured %v, want >= 1ms", d)
	}
	if h.Count() != 1 || h.Sum() < uint64(time.Millisecond) {
		t.Fatalf("histogram got count=%d sum=%d", h.Count(), h.Sum())
	}
	// Nil histogram: the timer still returns the duration.
	if StartTimer().ObserveInto(nil) < 0 {
		t.Fatal("nil observe returned negative duration")
	}
}

func TestWriteProm(t *testing.T) {
	r := NewRegistry()
	r.Counter("kv.gets").Add(7)
	r.Counter(`http.requests{route="/kv/",method="GET",status="200"}`).Add(3)
	r.Counter(`http.requests{route="/kv/",method="PUT",status="204"}`).Add(2)
	r.Gauge("kv.pd").Set(44)
	h := r.Histogram(`http.latency_ns{route="/kv/"}`)
	h.Observe(0)
	h.Observe(1)
	h.Observe(3)
	h.Observe(1000)

	var buf bytes.Buffer
	if err := r.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()

	for _, want := range []string{
		"# TYPE kv_gets counter\nkv_gets 7\n",
		"# TYPE http_requests counter\n",
		`http_requests{route="/kv/",method="GET",status="200"} 3`,
		`http_requests{route="/kv/",method="PUT",status="204"} 2`,
		"# TYPE kv_pd gauge\nkv_pd 44\n",
		"# TYPE http_latency_ns histogram\n",
		`http_latency_ns_bucket{route="/kv/",le="0"} 1`,
		`http_latency_ns_bucket{route="/kv/",le="1"} 2`,
		`http_latency_ns_bucket{route="/kv/",le="3"} 3`,
		`http_latency_ns_bucket{route="/kv/",le="1023"} 4`,
		`http_latency_ns_bucket{route="/kv/",le="+Inf"} 4`,
		`http_latency_ns_sum{route="/kv/"} 1004`,
		`http_latency_ns_count{route="/kv/"} 4`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	// Exactly one TYPE line per family, even with multiple labeled series.
	if n := strings.Count(out, "# TYPE http_requests "); n != 1 {
		t.Fatalf("%d TYPE lines for http_requests, want 1", n)
	}
	// The whole page must satisfy our own linter.
	if err := LintProm(strings.NewReader(out)); err != nil {
		t.Fatalf("own exposition fails lint: %v\n%s", err, out)
	}

	// Nil registry writes nothing.
	var nilReg *Registry
	var empty bytes.Buffer
	if err := nilReg.WriteProm(&empty); err != nil || empty.Len() != 0 {
		t.Fatalf("nil registry wrote %q, err %v", empty.String(), err)
	}
}

func TestSanitizeProm(t *testing.T) {
	cases := map[string]string{
		"kv.gets":        "kv_gets",
		"http-latency":   "http_latency",
		"9lives":         "_9lives",
		"ok_name:sub":    "ok_name:sub",
		// Sanitization is byte-wise: each byte of a multi-byte rune maps
		// to its own underscore (2+2+3 bytes for "éé—").
		"spaces and/éé—": "spaces_and________",
		"":               "_",
	}
	for in, want := range cases {
		if got := sanitizeProm(in); got != want {
			t.Fatalf("sanitizeProm(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestLintPromRejectsMalformed(t *testing.T) {
	bad := []string{
		"kv_gets 7\n",                          // sample before TYPE
		"# TYPE kv_gets counter\nkv_gets x\n",  // bad value
		"# TYPE kv_gets counter\nkv gets 1\n",  // bad name
		"# TYPE a counter\n# TYPE a counter\n", // duplicate TYPE
		"# TYPE h histogram\nh_bucket{le=\"1\"} 2\nh_bucket{le=\"3\"} 1\nh_bucket{le=\"+Inf\"} 2\nh_count 2\n", // not cumulative
		"# TYPE h histogram\nh_bucket{le=\"1\"} 2\nh_count 2\n",                                                // missing +Inf
		"# TYPE h histogram\nh_bucket{le=\"+Inf\"} 2\nh_count 3\n",                                             // count disagrees
	}
	for i, page := range bad {
		if err := LintProm(strings.NewReader(page)); err == nil {
			t.Fatalf("malformed page %d accepted:\n%s", i, page)
		}
	}
	good := "# TYPE up gauge\nup 1\n# HELP up liveness\n"
	if err := LintProm(strings.NewReader(good)); err != nil {
		t.Fatalf("valid page rejected: %v", err)
	}
}

// TestConcurrentSnapshotAndWriteProm hammers one registry from writer
// goroutines while readers snapshot and scrape — run under -race, this is
// the data-race guard for the /metrics path.
func TestConcurrentSnapshotAndWriteProm(t *testing.T) {
	r := NewRegistry()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := r.Counter("hot.counter")
			g := r.Gauge("hot.gauge")
			h := r.Histogram(`hot.hist{w="x"}`)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				c.Inc()
				g.Set(float64(i))
				h.Observe(uint64(i % 4096))
				if i%512 == 0 {
					// Writers also create fresh names to race the map.
					r.Counter("hot.counter").Inc()
				}
			}
		}(w)
	}
	deadline := time.Now().Add(200 * time.Millisecond)
	var lastCount uint64
	for time.Now().Before(deadline) {
		var buf bytes.Buffer
		if err := r.WriteProm(&buf); err != nil {
			t.Fatal(err)
		}
		if err := LintProm(bytes.NewReader(buf.Bytes())); err != nil {
			t.Fatalf("scrape under load fails lint: %v\n%s", err, buf.String())
		}
		snap := r.Snapshot()
		cur, _ := snap["hot.counter"].(uint64)
		if cur < lastCount {
			t.Fatalf("counter went backwards: %d -> %d", lastCount, cur)
		}
		lastCount = cur
		// Quantiles must stay readable mid-write (the /stats path).
		_ = r.Histogram(`hot.hist{w="x"}`).Quantile(0.99)
	}
	close(stop)
	wg.Wait()
}

// TestPromLabelEscaping pins the label-value escaping contract: peer
// addresses and other runtime strings — including quotes, backslashes and
// newlines — must render as valid exposition text, whether they were
// minted through Label or pasted raw into a registry name.
func TestPromLabelEscaping(t *testing.T) {
	r := NewRegistry()
	// The well-behaved path: a peer address via the Label helper.
	r.Counter(`cluster.peer_requests{` + Label("peer", "127.0.0.1:8081") + `}`).Add(3)
	// Hostile values via Label: quote, backslash, newline.
	r.Counter(`cluster.peer_requests{` + Label("peer", `evil"peer`) + `}`).Add(1)
	r.Counter(`cluster.peer_requests{` + Label("peer", `back\slash`) + `}`).Add(1)
	r.Counter(`cluster.peer_requests{` + Label("peer", "line\nbreak") + `}`).Add(1)
	// The raw path: labels pasted into the name without escaping must be
	// repaired by the encoder, not emitted broken.
	r.Counter("raw.counter{v=\"a\"b\"}").Inc()
	r.Counter("raw.counter{v=\"new\nline\"}").Inc()
	r.Gauge(`cluster.peer_up{` + Label("peer", "127.0.0.1:8081") + `}`).Set(1)
	r.Histogram(`cluster.peer_latency_ns{` + Label("peer", "127.0.0.1:8081") + `}`).Observe(100)

	var buf bytes.Buffer
	if err := r.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	page := buf.String()
	if err := LintProm(strings.NewReader(page)); err != nil {
		t.Fatalf("escaped labels fail lint: %v\n%s", err, page)
	}
	for _, want := range []string{
		`cluster_peer_requests{peer="127.0.0.1:8081"} 3`,
		`cluster_peer_requests{peer="evil\"peer"} 1`,
		`cluster_peer_requests{peer="back\\slash"} 1`,
		`cluster_peer_requests{peer="line\nbreak"} 1`,
		`raw_counter{v="a\"b"} 1`,
		`raw_counter{v="new\nline"} 1`,
		`cluster_peer_up{peer="127.0.0.1:8081"} 1`,
	} {
		if !strings.Contains(page, want) {
			t.Fatalf("missing %q in:\n%s", want, page)
		}
	}
	// No literal (unescaped) newline may survive inside a sample line.
	for _, line := range strings.Split(page, "\n") {
		if strings.Contains(line, "break\"") && !strings.Contains(line, `\nbreak`) {
			t.Fatalf("unescaped newline leaked: %q", line)
		}
	}
}

// TestLabelIdempotent: escaping an already-escaped block through the
// encoder must not double the backslashes.
func TestPromLabelEscapingIdempotent(t *testing.T) {
	r := NewRegistry()
	// Label escapes once; normalizeLabels must unescape-then-reescape,
	// leaving the block byte-identical.
	name := `x.y{` + Label("v", `a"b\c`) + `}`
	r.Counter(name).Inc()
	var buf bytes.Buffer
	if err := r.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	want := `x_y{v="a\"b\\c"} 1`
	if !strings.Contains(buf.String(), want) {
		t.Fatalf("want %q in:\n%s", want, buf.String())
	}
}
