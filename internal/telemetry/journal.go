package telemetry

import (
	"bufio"
	"encoding/json"
	"io"
	"sync"
)

// Journal record kinds. Each kind has a fixed schema (a Record
// implementation below); the "kind" field of every JSONL line
// discriminates them.
const (
	// KindPDRecompute records one dynamic PD recomputation: old and new PD,
	// the RDD counter snapshot that produced it, and the E(d_p) curve.
	KindPDRecompute = "pd_recompute"
	// KindSnapshot is the periodic interval snapshot (every K accesses).
	KindSnapshot = "snapshot"
	// KindBypass records one bypass decision.
	KindBypass = "bypass"
	// KindProtectedEvict records the eviction of a still-protected line
	// (RPD > 0) — the forced evictions of the paper's inclusive variant.
	KindProtectedEvict = "protected_evict"
	// KindSamplerEvict records an RD-sampler FIFO entry overwritten before
	// it was ever matched (a reuse distance the sampler failed to measure).
	KindSamplerEvict = "sampler_fifo_evict"
	// KindPDMove records one serving-layer PD recomputation with decision
	// attribution: it fires on *every* recompute (unlike KindPDRecompute,
	// which carries the full RDD and only fires when the evidence gate
	// passes) and summarizes what moved and why.
	KindPDMove = "pd_move"
	// KindServeError records a serving-layer fault: a response-encode
	// failure on a stats endpoint, or a fatal HTTP Serve error that would
	// otherwise only surface on the server's error channel.
	KindServeError = "serve_error"
)

// Record is one journal entry. Implementations are plain JSON-marshalable
// structs whose Kind field holds the RecordKind value.
type Record interface {
	RecordKind() string
}

// RecomputeRecord is the KindPDRecompute schema.
type RecomputeRecord struct {
	Kind string `json:"kind"`
	// Access is the policy-lifetime access count at recomputation.
	Access uint64 `json:"access"`
	Policy string `json:"policy,omitempty"`
	// Seq is the 1-based recompute ordinal.
	Seq   uint64 `json:"seq"`
	OldPD int    `json:"old_pd"`
	NewPD int    `json:"new_pd"`
	// RDD is the counter-array snapshot (N_i) the new PD was computed from;
	// RDDTotal is N_t.
	RDD      []uint32 `json:"rdd,omitempty"`
	RDDTotal uint64   `json:"rdd_total"`
	Frozen   bool     `json:"frozen,omitempty"`
	// E is the hit-rate model curve E(d_p) at each counter boundary.
	E []float64 `json:"e_curve,omitempty"`
}

// RecordKind implements Record.
func (RecomputeRecord) RecordKind() string { return KindPDRecompute }

// SnapshotRecord is the KindSnapshot schema: one point of the run's time
// series, emitted every K accesses by a Tap.
type SnapshotRecord struct {
	Kind string `json:"kind"`
	// Access is the number of monitored accesses so far (measurement window
	// time, warm-up excluded).
	Access uint64 `json:"access"`
	// HitRate is cumulative over the window; IntervalHitRate covers only
	// the accesses since the previous snapshot.
	HitRate         float64 `json:"hit_rate"`
	IntervalHitRate float64 `json:"interval_hit_rate"`
	// PD is the current protecting distance (0 when the policy has none).
	PD int `json:"pd,omitempty"`
	// PDs are the per-thread protecting distances of a partitioning policy.
	PDs       []int  `json:"pds,omitempty"`
	Accesses  uint64 `json:"accesses"`
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Bypasses  uint64 `json:"bypasses"`
	Evictions uint64 `json:"evictions"`
	// Writebacks counts dirty evictions.
	Writebacks uint64 `json:"writebacks"`
	// ValidFrac is the fraction of cache lines currently valid.
	ValidFrac float64 `json:"valid_frac"`
	// Occupancy is the fraction of cache lines owned per core (paper
	// Fig. 5a's occupancy view); lines resident since before monitoring
	// started are unattributed and excluded.
	Occupancy []float64 `json:"occupancy,omitempty"`
	// SetSkew is max/mean of per-set access counts (1 = perfectly uniform);
	// SetCV is their coefficient of variation.
	SetSkew float64 `json:"set_skew"`
	SetCV   float64 `json:"set_cv"`
}

// RecordKind implements Record.
func (SnapshotRecord) RecordKind() string { return KindSnapshot }

// EventRecord is the schema shared by KindBypass, KindProtectedEvict and
// KindSamplerEvict.
type EventRecord struct {
	Kind string `json:"kind"`
	// Access is the monitored access count (Tap events) or the
	// policy-lifetime access count (sampler events).
	Access uint64 `json:"access"`
	// Set is the cache set (or the sampler slot for KindSamplerEvict).
	Set int `json:"set"`
	// Way is the victim way (-1 when not applicable, e.g. bypasses).
	Way  int    `json:"way"`
	Addr uint64 `json:"addr,omitempty"`
	// Thread is the originating core.
	Thread int `json:"thread,omitempty"`
	// RPD is the victim's remaining protecting distance (KindProtectedEvict).
	RPD int `json:"rpd,omitempty"`
}

// RecordKind implements Record.
func (e EventRecord) RecordKind() string { return e.Kind }

// PDMoveRecord is the KindPDMove schema: the attribution view of one
// protecting-distance recomputation in the serving layer.
type PDMoveRecord struct {
	Kind string `json:"kind"`
	// Access is the cache-lifetime operation count at the recompute.
	Access uint64 `json:"access"`
	// Seq is the 1-based recompute ordinal.
	Seq   uint64 `json:"seq"`
	OldPD int    `json:"old_pd"`
	NewPD int    `json:"new_pd"`
	// Moved reports whether the evidence gate passed and the E(d_p)
	// search installed a fresh PD (false = the previous PD was kept).
	Moved bool `json:"moved"`
	// Samples is the measured-reuse mass of the merged RDD that triggered
	// the decision; ShardSamples attributes it per shard (pre-merge, so
	// an operator can see which shards drove the move). Total is N_t.
	Samples      uint64   `json:"samples"`
	Total        uint64   `json:"total"`
	ShardSamples []uint64 `json:"shard_samples,omitempty"`
	// BestE/BestD summarize the E(d_p) curve: its maximum and the
	// distance attaining it, over CurvePoints evaluation boundaries.
	BestE       float64 `json:"best_e"`
	BestD       int     `json:"best_d"`
	CurvePoints int     `json:"curve_points"`
}

// RecordKind implements Record.
func (PDMoveRecord) RecordKind() string { return KindPDMove }

// ServeErrorRecord is the KindServeError schema.
type ServeErrorRecord struct {
	Kind string `json:"kind"`
	// Route is the HTTP route on which the error occurred ("" for
	// transport-level serve errors).
	Route string `json:"route,omitempty"`
	// RequestID is the X-Request-Id of the failing request, when one was
	// in flight.
	RequestID string `json:"request_id,omitempty"`
	Err       string `json:"err"`
}

// RecordKind implements Record.
func (ServeErrorRecord) RecordKind() string { return KindServeError }

// Journal is a bounded ring buffer of records with an optional JSONL sink.
// The ring keeps the most recent records for in-process inspection
// (crash-dump style); the sink, when set, receives every record as one
// JSON line. All methods are safe on a nil *Journal and under concurrent
// use.
type Journal struct {
	mu     sync.Mutex
	ring   []Record
	next   int
	filled bool
	total  uint64
	counts map[string]uint64
	bw     *bufio.Writer
	enc    *json.Encoder
	err    error
}

// DefaultRingSize bounds the journal's in-memory history.
const DefaultRingSize = 1024

// NewJournal builds a journal retaining the last ringSize records
// (DefaultRingSize when <= 0).
func NewJournal(ringSize int) *Journal {
	if ringSize <= 0 {
		ringSize = DefaultRingSize
	}
	return &Journal{ring: make([]Record, ringSize), counts: map[string]uint64{}}
}

// SetSink directs every subsequent record to w as JSON lines. The journal
// buffers writes; call Flush before reading the sink.
func (j *Journal) SetSink(w io.Writer) {
	if j == nil {
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	j.bw = bufio.NewWriter(w)
	j.enc = json.NewEncoder(j.bw)
}

// Append records r.
func (j *Journal) Append(r Record) {
	if j == nil || r == nil {
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	j.ring[j.next] = r
	j.next++
	if j.next == len(j.ring) {
		j.next = 0
		j.filled = true
	}
	j.total++
	j.counts[r.RecordKind()]++
	if j.enc != nil && j.err == nil {
		j.err = j.enc.Encode(r)
	}
}

// Len returns the number of records currently held in the ring.
func (j *Journal) Len() int {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.filled {
		return len(j.ring)
	}
	return j.next
}

// Total returns the number of records ever appended.
func (j *Journal) Total() uint64 {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.total
}

// CountKind returns how many records of the given kind were appended.
func (j *Journal) CountKind(kind string) uint64 {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.counts[kind]
}

// Tail returns the most recent n records, oldest first.
func (j *Journal) Tail(n int) []Record {
	if j == nil || n <= 0 {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	held := j.next
	if j.filled {
		held = len(j.ring)
	}
	if n > held {
		n = held
	}
	out := make([]Record, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, j.ring[(j.next-n+i+len(j.ring))%len(j.ring)])
	}
	return out
}

// Flush drains buffered sink writes and returns the first write or encode
// error encountered so far.
func (j *Journal) Flush() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.bw != nil {
		if err := j.bw.Flush(); err != nil && j.err == nil {
			j.err = err
		}
	}
	return j.err
}
