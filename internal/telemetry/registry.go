// Package telemetry is the simulator's observability layer: a registry of
// named counters, gauges and log2-bucketed histograms with cheap atomic
// updates; a structured event journal (bounded ring buffer plus optional
// JSONL sink) for PD recomputations, protected-line evictions, bypass
// decisions and sampler FIFO evictions; periodic interval snapshots of hit
// rate, current PD, per-core occupancy and set-access skew; and profiling
// hooks (pprof, expvar) for long runs.
//
// The whole package is nil-tolerant: every method is safe on a nil
// receiver and does nothing, so instrumented code needs no "is telemetry
// on?" branches — a disabled pipeline is a handful of predictable
// nil-checks per event, and the cache substrate itself pays nothing at all
// when no monitor is attached (cache.Cache only calls an attached
// Monitor). It depends on the standard library only.
package telemetry

import (
	"encoding/json"
	"expvar"
	"io"
	"math"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (0 on a nil counter).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a point-in-time float64 metric (hit rate, occupancy, current PD).
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Value returns the last stored value (0 on a nil gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// histBuckets is bits.Len64(max uint64) + 1: bucket k counts observed
// values whose bit length is k, i.e. v in [2^(k-1), 2^k).
const histBuckets = 65

// Histogram accumulates a distribution in log2 buckets: bucket k counts
// values v with bits.Len64(v) == k (bucket 0 is exactly v == 0). The
// geometry matches the reuse-distance scale of the paper's analyses, where
// only the order of magnitude of a lifetime or distance matters.
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Uint64
	buckets [histBuckets]atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	if h == nil {
		return
	}
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[bits.Len64(v)].Add(1)
}

// ObserveN records v n times in three atomic adds — the amortized form
// batch paths use to book one per-op value for every operation of a
// batch without paying n separate observations.
func (h *Histogram) ObserveN(v uint64, n uint64) {
	if h == nil || n == 0 {
		return
	}
	h.count.Add(n)
	h.sum.Add(v * n)
	h.buckets[bits.Len64(v)].Add(n)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values.
func (h *Histogram) Sum() uint64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Mean returns the average observed value (0 when empty).
func (h *Histogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return float64(h.Sum()) / float64(n)
}

// Buckets returns the log2 bucket counts, trimmed of trailing zeros.
// Buckets()[k] counts values in [2^(k-1), 2^k); index 0 counts zeros.
func (h *Histogram) Buckets() []uint64 {
	if h == nil {
		return nil
	}
	last := -1
	var out [histBuckets]uint64
	for i := range h.buckets {
		out[i] = h.buckets[i].Load()
		if out[i] != 0 {
			last = i
		}
	}
	return append([]uint64(nil), out[:last+1]...)
}

// Registry is a namespace of metrics. Lookups take a mutex; the returned
// metric handles update lock-free, so instrumented code resolves its
// handles once and hits only atomics afterwards. A nil *Registry returns
// nil handles, whose operations are no-ops — the disabled-mode fast path.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// Counter returns (creating if needed) the named counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (creating if needed) the named gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns (creating if needed) the named histogram.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// histSnapshot is the JSON form of one histogram.
type histSnapshot struct {
	Count uint64   `json:"count"`
	Sum   uint64   `json:"sum"`
	Mean  float64  `json:"mean"`
	Log2  []uint64 `json:"log2_buckets"`
}

// Snapshot returns a point-in-time copy of every metric, keyed by name:
// counters and gauges map to their value, histograms to
// {count, sum, mean, log2_buckets}.
func (r *Registry) Snapshot() map[string]any {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]any, len(r.counters)+len(r.gauges)+len(r.hists))
	for name, c := range r.counters {
		out[name] = c.Value()
	}
	for name, g := range r.gauges {
		out[name] = g.Value()
	}
	for name, h := range r.hists {
		out[name] = histSnapshot{Count: h.Count(), Sum: h.Sum(), Mean: h.Mean(), Log2: h.Buckets()}
	}
	return out
}

// WriteJSON writes the snapshot as one JSON object with sorted keys.
func (r *Registry) WriteJSON(w io.Writer) error {
	snap := r.Snapshot()
	if snap == nil {
		snap = map[string]any{}
	}
	// json.Marshal sorts map keys already; encode directly.
	enc := json.NewEncoder(w)
	return enc.Encode(snap)
}

// Names returns every registered metric name, sorted.
func (r *Registry) Names() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.counters)+len(r.gauges)+len(r.hists))
	for n := range r.counters {
		names = append(names, n)
	}
	for n := range r.gauges {
		names = append(names, n)
	}
	for n := range r.hists {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// PublishExpvar exposes the registry under the given expvar name (shown at
// /debug/vars when an HTTP server runs, e.g. via ServeDebug). Publishing
// the same name twice is a no-op rather than the expvar panic.
func (r *Registry) PublishExpvar(name string) {
	if r == nil || name == "" {
		return
	}
	if expvar.Get(name) != nil {
		return
	}
	expvar.Publish(name, expvar.Func(func() any { return r.Snapshot() }))
}
