package telemetry

// Serving-robustness record kinds. The admission gate, the degraded-mode
// breaker, the shard-lock watchdog and the snapshot loop
// (internal/servefault, internal/kvcache, internal/kvserver) journal
// through these, so an overloaded or degraded serving run is auditable
// the same way a fault campaign is.
const (
	// KindShed records one request refused by overload protection (503 +
	// Retry-After) or cut down by its deadline while queued.
	KindShed = "shed"
	// KindBreaker records a degraded-mode breaker transition: a shard (or
	// every shard) tripping into shadow-LRU fallback, or re-arming after a
	// streak of clean recomputes.
	KindBreaker = "breaker"
	// KindLockHold records a shard lock held past the configured watchdog
	// threshold — the serving-path symptom of a stalled or injected-slow
	// critical section.
	KindLockHold = "lock_hold"
	// KindCacheSnapshot records one crash-safe cache snapshot save (or a
	// failed attempt).
	KindCacheSnapshot = "cache_snapshot"
)

// ShedRecord is the KindShed schema.
type ShedRecord struct {
	Kind string `json:"kind"`
	// Route is the instrumented route that shed ("/kv/").
	Route string `json:"route,omitempty"`
	// Reason is "overload" (gate full, no deadline to wait under) or
	// "deadline" (the request's deadline expired while queued).
	Reason string `json:"reason"`
	// RequestID is the X-Request-Id of the shed request.
	RequestID string `json:"request_id,omitempty"`
}

// RecordKind implements Record.
func (ShedRecord) RecordKind() string { return KindShed }

// BreakerRecord is the KindBreaker schema.
type BreakerRecord struct {
	Kind string `json:"kind"`
	// Shard is the affected shard, -1 for a whole-cache transition.
	Shard int `json:"shard"`
	// State is "tripped" or "rearmed".
	State string `json:"state"`
	// Reason names the trigger: "recompute_panic", "recompute_stall",
	// "pd_out_of_range", "rdd_inconsistent", "sampler_corrupt", "manual",
	// or, for re-arms, "clean_recomputes".
	Reason string `json:"reason"`
	// Streak is the clean-recompute streak at the transition (re-arms).
	Streak int `json:"streak,omitempty"`
}

// RecordKind implements Record.
func (BreakerRecord) RecordKind() string { return KindBreaker }

// LockHoldRecord is the KindLockHold schema.
type LockHoldRecord struct {
	Kind string `json:"kind"`
	// Shard is the shard whose lock was held too long.
	Shard int `json:"shard"`
	// HeldMS is the observed hold time in milliseconds.
	HeldMS float64 `json:"held_ms"`
	// WarnMS is the configured watchdog threshold in milliseconds.
	WarnMS float64 `json:"warn_ms"`
}

// RecordKind implements Record.
func (LockHoldRecord) RecordKind() string { return KindLockHold }

// CacheSnapshotRecord is the KindCacheSnapshot schema.
type CacheSnapshotRecord struct {
	Kind string `json:"kind"`
	// Path is the snapshot file written (or attempted).
	Path string `json:"path"`
	// Entries and Bytes describe the captured occupancy.
	Entries int   `json:"entries"`
	Bytes   int64 `json:"bytes"`
	// PD is the protecting distance captured with the state.
	PD int `json:"pd,omitempty"`
	// Err is the failure text when the save did not land.
	Err string `json:"err,omitempty"`
}

// RecordKind implements Record.
func (CacheSnapshotRecord) RecordKind() string { return KindCacheSnapshot }

// Clustered-serving record kinds (internal/cluster).
const (
	// KindMembership records a ring membership transition: a peer ejected
	// after consecutive failed health probes, or rejoined after recovering.
	KindMembership = "membership"
)

// MembershipRecord is the KindMembership schema.
type MembershipRecord struct {
	Kind string `json:"kind"`
	// Event is "eject" or "rejoin".
	Event string `json:"event"`
	// Peer is the affected member's node id.
	Peer string `json:"peer"`
	// Alive and Members give the ring's live/total membership after the
	// transition.
	Alive   int `json:"alive"`
	Members int `json:"members"`
	// Streak is the consecutive probe failures (ejects) or successes
	// (rejoins) that drove the transition.
	Streak int `json:"streak,omitempty"`
}

// RecordKind implements Record.
func (MembershipRecord) RecordKind() string { return KindMembership }
