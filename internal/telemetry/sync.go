package telemetry

import (
	"sync"

	"pdp/internal/cache"
)

// syncMonitor serializes Event calls into the wrapped monitor.
type syncMonitor struct {
	mu  sync.Mutex
	mon cache.Monitor
}

// Event implements cache.Monitor.
func (s *syncMonitor) Event(ev cache.Event) {
	s.mu.Lock()
	s.mon.Event(ev)
	s.mu.Unlock()
}

// Synchronized wraps a monitor so concurrent caches can share it safely.
//
// Every monitor built inside a run — a Tap, an occupancy monitor, a fault
// checker — is driven by exactly one cache on one goroutine and needs no
// locking. The exception is a monitor attached to several runs at once
// (TelemetryOptions.Extra or an Attach result reused across RunSingle
// calls fanned over the worker pool): its Event method then races. Wrap
// such a monitor in Synchronized once and share the wrapper; the embedded
// mutex serializes delivery while per-run monitors stay lock-free.
//
// A nil monitor returns nil, mirroring Multi's nil-dropping.
func Synchronized(mon cache.Monitor) cache.Monitor {
	if mon == nil {
		return nil
	}
	return &syncMonitor{mon: mon}
}
