package telemetry

import "pdp/internal/cache"

// multiMonitor fans cache events out to several monitors in order.
type multiMonitor []cache.Monitor

// Event implements cache.Monitor.
func (m multiMonitor) Event(ev cache.Event) {
	for _, mon := range m {
		mon.Event(ev)
	}
}

// Multi combines monitors into one, so several observers (an experiment's
// occupancy monitor, a telemetry Tap, ...) can watch the same cache
// through cache.SetMonitor's single seam. Nil monitors are dropped; Multi
// returns nil when none remain and the sole monitor unwrapped when only
// one does, so the cache's no-monitor and one-monitor fast paths are
// preserved.
func Multi(mons ...cache.Monitor) cache.Monitor {
	out := make(multiMonitor, 0, len(mons))
	for _, m := range mons {
		if m != nil {
			out = append(out, m)
		}
	}
	switch len(out) {
	case 0:
		return nil
	case 1:
		return out[0]
	}
	return out
}
