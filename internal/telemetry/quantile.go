package telemetry

import (
	"math"
	"time"
)

// bucketBounds returns the value range covered by log2 bucket k as floats:
// bucket 0 holds exactly zero, bucket k >= 1 holds [2^(k-1), 2^k). The
// bounds are the interpolation anchors of Quantile.
func bucketBounds(k int) (lo, hi float64) {
	if k == 0 {
		return 0, 0
	}
	lo = math.Ldexp(1, k-1)
	return lo, 2 * lo
}

// Quantile estimates the q-quantile of the observed distribution (q
// clamped to [0, 1]) by locating the log2 bucket holding the target rank
// and interpolating linearly inside it. The estimate is exact at bucket
// boundaries and off by at most the bucket width (a factor of two)
// inside one — the usual precision contract of log-bucketed latency
// histograms. An empty histogram reports 0.
//
// The bucket counters are read without a global lock, so a quantile taken
// while writers are hot is a consistent-enough snapshot: each bucket is
// atomically read once and the total is summed from that same snapshot.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	var b [histBuckets]uint64
	var total uint64
	for i := range h.buckets {
		b[i] = h.buckets[i].Load()
		total += b[i]
	}
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// target is the 1-based rank of the quantile observation.
	target := q * float64(total)
	if target < 1 {
		target = 1
	}
	var cum uint64
	for k := 0; k < histBuckets; k++ {
		c := b[k]
		if c == 0 {
			continue
		}
		if float64(cum)+float64(c) >= target {
			lo, hi := bucketBounds(k)
			frac := (target - float64(cum)) / float64(c)
			return lo + frac*(hi-lo)
		}
		cum += c
	}
	_, hi := bucketBounds(histBuckets - 1)
	return hi // unreachable: target <= total by construction
}

// QuantileSummary is the standard latency digest: the quartet of
// percentiles an operator reads first.
type QuantileSummary struct {
	P50  float64 `json:"p50"`
	P90  float64 `json:"p90"`
	P99  float64 `json:"p99"`
	P999 float64 `json:"p999"`
}

// Summary returns p50/p90/p99/p999 in one call (four independent bucket
// snapshots; cheap, the array is 65 atomics).
func (h *Histogram) Summary() QuantileSummary {
	return QuantileSummary{
		P50:  h.Quantile(0.50),
		P90:  h.Quantile(0.90),
		P99:  h.Quantile(0.99),
		P999: h.Quantile(0.999),
	}
}

// Timer measures one interval at nanosecond scale for recording into a
// Histogram: start with StartTimer, stop with ObserveInto. The zero Timer
// is invalid; always construct through StartTimer.
type Timer struct{ t0 time.Time }

// StartTimer begins timing now.
func StartTimer() Timer { return Timer{t0: time.Now()} }

// ObserveInto records the nanoseconds elapsed since StartTimer into h
// (nil-safe, like all histogram operations) and returns the duration so
// callers can reuse the measurement.
func (t Timer) ObserveInto(h *Histogram) time.Duration {
	d := time.Since(t.t0)
	if d < 0 {
		d = 0
	}
	h.Observe(uint64(d))
	return d
}
