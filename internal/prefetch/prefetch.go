// Package prefetch implements a simple reference stream prefetcher used by
// the PDP paper's prefetch-aware study (Sec. 6.5): per-page stream entries
// train on unit line strides and, once confident, issue a configurable
// degree of prefetches ahead of the demand stream.
package prefetch

import "pdp/internal/trace"

// Config parameterizes the prefetcher.
type Config struct {
	// Streams is the number of concurrently tracked streams.
	Streams int
	// Degree is the number of lines prefetched ahead once a stream trains.
	Degree int
	// PageBits sets the stream-matching granularity (default 12 = 4KB).
	PageBits uint
	// TrainThreshold is the number of consecutive same-direction strides
	// needed before prefetches issue.
	TrainThreshold int
}

func (c *Config) setDefaults() {
	if c.Streams == 0 {
		c.Streams = 16
	}
	if c.Degree == 0 {
		c.Degree = 2
	}
	if c.PageBits == 0 {
		c.PageBits = 12
	}
	if c.TrainThreshold == 0 {
		c.TrainThreshold = 2
	}
}

type stream struct {
	page  uint64
	last  int64 // line number
	dir   int64
	conf  int
	lru   uint64
	valid bool
}

// Prefetcher is a stream prefetcher.
type Prefetcher struct {
	cfg     Config
	streams []stream
	clock   uint64

	// Issued counts prefetch addresses produced.
	Issued uint64
}

// New builds a stream prefetcher.
func New(cfg Config) *Prefetcher {
	cfg.setDefaults()
	return &Prefetcher{cfg: cfg, streams: make([]stream, cfg.Streams)}
}

// Observe feeds one demand access and returns the line-aligned addresses to
// prefetch (possibly none).
func (p *Prefetcher) Observe(acc trace.Access) []uint64 {
	line := int64(acc.Addr / trace.LineSize)
	page := acc.Addr >> p.cfg.PageBits
	p.clock++

	// Find a matching stream by page (also matching the neighbor page so
	// streams can cross page boundaries).
	idx := -1
	for i := range p.streams {
		s := &p.streams[i]
		if s.valid && (s.page == page || s.page+1 == page || s.page == page+1) {
			idx = i
			break
		}
	}
	if idx < 0 {
		// Allocate the LRU entry.
		idx = 0
		oldest := ^uint64(0)
		for i := range p.streams {
			if !p.streams[i].valid {
				idx = i
				break
			}
			if p.streams[i].lru < oldest {
				idx, oldest = i, p.streams[i].lru
			}
		}
		p.streams[idx] = stream{page: page, last: line, valid: true, lru: p.clock}
		return nil
	}

	s := &p.streams[idx]
	s.lru = p.clock
	delta := line - s.last
	if delta == 0 {
		return nil
	}
	dir := int64(1)
	if delta < 0 {
		dir = -1
	}
	if s.dir == dir {
		if s.conf < p.cfg.TrainThreshold {
			s.conf++
		}
	} else {
		s.dir = dir
		s.conf = 1
	}
	s.last = line
	s.page = page
	if s.conf < p.cfg.TrainThreshold {
		return nil
	}
	out := make([]uint64, 0, p.cfg.Degree)
	for d := 1; d <= p.cfg.Degree; d++ {
		target := line + dir*int64(d)
		if target < 0 {
			break
		}
		out = append(out, uint64(target)*trace.LineSize)
	}
	p.Issued += uint64(len(out))
	return out
}
