package prefetch

import (
	"testing"

	"pdp/internal/trace"
)

func TestSequentialStreamTrains(t *testing.T) {
	p := New(Config{Degree: 2})
	var issued []uint64
	for i := 0; i < 10; i++ {
		issued = p.Observe(trace.Access{Addr: uint64(i) * trace.LineSize})
	}
	if len(issued) != 2 {
		t.Fatalf("trained stream issued %d prefetches, want 2", len(issued))
	}
	// Prefetches are the next lines ahead.
	if issued[0] != 10*trace.LineSize || issued[1] != 11*trace.LineSize {
		t.Fatalf("prefetch targets %v, want next lines", issued)
	}
	if p.Issued == 0 {
		t.Fatal("Issued counter not updated")
	}
}

func TestDescendingStreamTrains(t *testing.T) {
	p := New(Config{Degree: 1})
	var issued []uint64
	for i := 100; i > 90; i-- {
		issued = p.Observe(trace.Access{Addr: uint64(i) * trace.LineSize})
	}
	if len(issued) != 1 || issued[0] != 90*trace.LineSize {
		t.Fatalf("descending prefetch %v, want line 90", issued)
	}
}

func TestRandomAccessesDoNotTrain(t *testing.T) {
	p := New(Config{})
	rng := trace.NewRNG(5)
	total := 0
	for i := 0; i < 1000; i++ {
		// Far-apart random pages: no stream forms.
		a := uint64(rng.Intn(1<<20)) << 16
		total += len(p.Observe(trace.Access{Addr: a}))
	}
	if total > 20 {
		t.Fatalf("random traffic issued %d prefetches, want ~none", total)
	}
}

func TestStreamTableEviction(t *testing.T) {
	p := New(Config{Streams: 2, Degree: 1})
	// Train stream A.
	for i := 0; i < 5; i++ {
		p.Observe(trace.Access{Addr: uint64(i) * trace.LineSize})
	}
	// Two newer streams on distant pages evict A.
	for i := 0; i < 3; i++ {
		p.Observe(trace.Access{Addr: 1<<30 + uint64(i)*trace.LineSize})
		p.Observe(trace.Access{Addr: 1<<40 + uint64(i)*trace.LineSize})
	}
	// A's next access re-allocates (no immediate prefetch).
	if got := p.Observe(trace.Access{Addr: 5 * trace.LineSize}); len(got) != 0 {
		t.Fatalf("evicted stream should retrain, got %v", got)
	}
}

func TestRepeatedSameLineNoPrefetch(t *testing.T) {
	p := New(Config{})
	for i := 0; i < 10; i++ {
		if got := p.Observe(trace.Access{Addr: 0x1000}); len(got) != 0 {
			t.Fatalf("same-line accesses must not prefetch, got %v", got)
		}
	}
}
