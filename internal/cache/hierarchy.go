package cache

import "pdp/internal/trace"

// Hierarchy chains cache levels (L1 → L2 → ... → LLC) in front of memory,
// with demand fills allocated at every level above the hit level and dirty
// evictions written back to the next level (forwarded, not allocated, on a
// writeback miss — a common non-inclusive organization, matching the
// paper's non-inclusive LLC focus). SetInclusive enables strict inclusion
// instead: an eviction from the last level back-invalidates the line from
// every upper level.
type Hierarchy struct {
	levels    []*Cache
	inclusive bool

	// DemandHits[i] counts demand accesses satisfied at level i;
	// MemAccesses counts demand accesses that went to memory.
	DemandHits  []uint64
	MemAccesses uint64
	// BackInvalidations counts lines invalidated from upper levels to
	// preserve inclusion.
	BackInvalidations uint64
}

// NewHierarchy builds a hierarchy from outermost-first levels (L1 first).
func NewHierarchy(levels ...*Cache) *Hierarchy {
	if len(levels) == 0 {
		panic("cache: hierarchy needs at least one level")
	}
	return &Hierarchy{levels: levels, DemandHits: make([]uint64, len(levels))}
}

// SetInclusive selects the strictly inclusive organization (LLC evictions
// back-invalidate the upper levels). The LLC policy must not bypass.
func (h *Hierarchy) SetInclusive(v bool) { h.inclusive = v }

// Level returns the i-th cache (0 = L1).
func (h *Hierarchy) Level(i int) *Cache { return h.levels[i] }

// Depth returns the number of cache levels.
func (h *Hierarchy) Depth() int { return len(h.levels) }

// Access runs a demand access through the hierarchy and returns the level
// index that satisfied it (len(levels) means memory).
func (h *Hierarchy) Access(acc trace.Access) int {
	hit := h.access(acc, 0)
	if hit < len(h.levels) {
		h.DemandHits[hit]++
	} else {
		h.MemAccesses++
	}
	return hit
}

func (h *Hierarchy) access(acc trace.Access, lvl int) int {
	if lvl >= len(h.levels) {
		return lvl // memory
	}
	res := h.levels[lvl].Access(acc)
	if res.Hit {
		return lvl
	}
	// Miss: fetch from below. The lower levels see the access regardless of
	// whether this level allocated (bypass) or filled.
	hitLvl := h.access(acc, lvl+1)
	if res.Writeback {
		h.writeback(res.VictimAddr, lvl+1)
	}
	if h.inclusive && res.Evicted && lvl == len(h.levels)-1 {
		h.backInvalidate(res.VictimAddr, lvl-1)
	}
	return hitLvl
}

// backInvalidate removes addr's line from level lvl and everything above
// it (inclusion enforcement). Dirty copies above the LLC are dropped with
// their data considered merged (the LLC victim was already written back).
func (h *Hierarchy) backInvalidate(addr uint64, lvl int) {
	for l := lvl; l >= 0; l-- {
		c := h.levels[l]
		set, tag := c.SetOf(addr), c.TagOf(addr)
		base := set * c.Ways()
		for w := 0; w < c.Ways(); w++ {
			if c.valid[base+w] && c.tags[base+w] == tag {
				c.pol.Evict(set, w)
				c.valid[base+w] = false
				c.dirty[base+w] = false
				h.BackInvalidations++
				break
			}
		}
	}
}

// writeback delivers a dirty eviction to level lvl: update-in-place on hit,
// forward on miss (no allocation for writeback traffic).
func (h *Hierarchy) writeback(addr uint64, lvl int) {
	if lvl >= len(h.levels) {
		return // absorbed by memory
	}
	c := h.levels[lvl]
	wb := trace.Access{Addr: addr, Write: true, WB: true}
	set, tag := c.SetOf(addr), c.TagOf(addr)
	found := false
	for w := 0; w < c.Ways(); w++ {
		if c.Valid(set, w) && c.tags[set*c.Ways()+w] == tag {
			found = true
			break
		}
	}
	if found {
		c.Access(wb) // hit: marks line dirty, updates policy state
		return
	}
	// Forward without allocating; the next level sees it as an access so
	// that writeback traffic is visible to LLC policies (the paper excludes
	// it from PSEL updates, which policies do by checking Access.WB).
	h.writeback(addr, lvl+1)
}
