// Package cache implements a trace-driven set-associative cache with a
// pluggable replacement/bypass policy, plus a multi-level hierarchy. It is
// the simulation substrate on which all policies of the PDP paper run
// (stand-in for the authors' CMP$im-modelled memory hierarchy).
package cache

import (
	"fmt"
	"math/bits"

	"pdp/internal/trace"
)

// Policy decides replacement (and optionally bypass) for one cache.
//
// For every access to a set the cache invokes exactly one of:
//   - Hit (the access hit way);
//   - Victim followed by Insert (miss filled after evicting the victim);
//   - Insert alone (miss filled into an invalid way);
//   - Victim returning bypass=true (miss not allocated; only legal when the
//     cache was built with AllowBypass).
//
// PostAccess then always runs once, after the above — policies that must
// update per-set state on *every* access (e.g. PDP's RPD decrement, which
// the paper applies after setting the inserted/promoted line's RPD) do it
// there.
type Policy interface {
	// Name identifies the policy in reports.
	Name() string
	// Hit notifies a hit on (set, way).
	Hit(set, way int, acc trace.Access)
	// Victim selects a way to evict for acc, or bypass=true to skip
	// allocation. It is only called when every way in the set is valid.
	Victim(set int, acc trace.Access) (way int, bypass bool)
	// Insert notifies that acc's line has been placed in (set, way).
	Insert(set, way int, acc trace.Access)
	// Evict notifies that the line in (set, way) is being removed.
	Evict(set, way int)
	// PostAccess runs once per access to set, after hit/insert/bypass
	// handling.
	PostAccess(set int, acc trace.Access)
}

// NopPolicy provides no-op implementations of the optional Policy hooks;
// embed it to implement only what a policy needs.
type NopPolicy struct{}

// Hit implements Policy.
func (NopPolicy) Hit(int, int, trace.Access) {}

// Insert implements Policy.
func (NopPolicy) Insert(int, int, trace.Access) {}

// Evict implements Policy.
func (NopPolicy) Evict(int, int) {}

// PostAccess implements Policy.
func (NopPolicy) PostAccess(int, trace.Access) {}

// Config describes one cache level.
type Config struct {
	// Name labels the cache in reports ("L1", "LLC", ...).
	Name string
	// Sets and Ways give the organization; Sets must be a power of two.
	Sets, Ways int
	// LineSize in bytes; must be a power of two (64 throughout the paper).
	LineSize int
	// AllowBypass permits the policy to skip allocation on a miss
	// (non-inclusive cache, paper Sec. 2.2).
	AllowBypass bool
}

// EventKind distinguishes Monitor callbacks.
type EventKind uint8

// Monitor event kinds.
const (
	EvHit EventKind = iota
	EvInsert
	EvEvict
	EvBypass
)

// Event is delivered to an attached Monitor for every state change; the
// occupancy analysis of paper Fig. 5a is built on these.
type Event struct {
	Kind EventKind
	Set  int
	Way  int
	// Addr is the line-aligned address concerned (victim address for EvEvict).
	Addr uint64
	// SetAccesses is the number of accesses to Set so far, including this
	// one — the time unit of the paper's reuse distances and occupancies.
	SetAccesses uint64
	Acc         trace.Access
}

// Monitor observes cache events.
type Monitor interface {
	Event(Event)
}

// Stats aggregates cache activity counters. The JSON field names are the
// stable schema of the telemetry layer's `-stats json` output.
type Stats struct {
	Accesses   uint64 `json:"accesses"`
	Hits       uint64 `json:"hits"`
	Misses     uint64 `json:"misses"` // includes bypasses
	Bypasses   uint64 `json:"bypasses"`
	Inserts    uint64 `json:"inserts"`
	Evictions  uint64 `json:"evictions"`
	Writebacks uint64 `json:"writebacks"` // dirty evictions
	WriteAccs  uint64 `json:"write_accesses"`
}

// HitRate returns hits/accesses (0 when idle).
func (s Stats) HitRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Accesses)
}

// Result reports what one access did.
type Result struct {
	Hit        bool
	Bypass     bool
	Evicted    bool
	Writeback  bool
	Set, Way   int
	VictimAddr uint64
}

// Cache is a set-associative cache with an attached policy.
type Cache struct {
	cfg       Config
	lineShift uint
	setMask   uint64
	tags      []uint64
	valid     []bool
	dirty     []bool
	setAccs   []uint64
	pol       Policy
	mon       Monitor

	// Stats accumulates counters; callers may read it directly.
	Stats Stats
}

// New builds a cache. It panics on invalid configuration, which is a
// programming error, not a runtime condition.
func New(cfg Config, pol Policy) *Cache {
	if cfg.Sets <= 0 || cfg.Sets&(cfg.Sets-1) != 0 {
		panic(fmt.Sprintf("cache %s: Sets=%d must be a positive power of two", cfg.Name, cfg.Sets))
	}
	if cfg.Ways <= 0 {
		panic(fmt.Sprintf("cache %s: Ways=%d must be positive", cfg.Name, cfg.Ways))
	}
	if cfg.LineSize <= 0 || cfg.LineSize&(cfg.LineSize-1) != 0 {
		panic(fmt.Sprintf("cache %s: LineSize=%d must be a positive power of two", cfg.Name, cfg.LineSize))
	}
	if pol == nil {
		panic(fmt.Sprintf("cache %s: nil policy", cfg.Name))
	}
	n := cfg.Sets * cfg.Ways
	return &Cache{
		cfg:       cfg,
		lineShift: uint(bits.TrailingZeros(uint(cfg.LineSize))),
		setMask:   uint64(cfg.Sets - 1),
		tags:      make([]uint64, n),
		valid:     make([]bool, n),
		dirty:     make([]bool, n),
		setAccs:   make([]uint64, cfg.Sets),
		pol:       pol,
	}
}

// Config returns the cache configuration.
func (c *Cache) Config() Config { return c.cfg }

// Sets returns the number of sets.
func (c *Cache) Sets() int { return c.cfg.Sets }

// Ways returns the associativity.
func (c *Cache) Ways() int { return c.cfg.Ways }

// Policy returns the attached policy.
func (c *Cache) Policy() Policy { return c.pol }

// SetMonitor attaches m (nil detaches).
func (c *Cache) SetMonitor(m Monitor) { c.mon = m }

// SetOf returns the set index of addr.
func (c *Cache) SetOf(addr uint64) int {
	return int((addr >> c.lineShift) & c.setMask)
}

// TagOf returns the tag of addr.
func (c *Cache) TagOf(addr uint64) uint64 {
	return (addr >> c.lineShift) / uint64(c.cfg.Sets)
}

// SetAccesses returns the number of accesses seen by set so far.
func (c *Cache) SetAccesses(set int) uint64 { return c.setAccs[set] }

// Valid reports whether (set, way) holds a line.
func (c *Cache) Valid(set, way int) bool { return c.valid[set*c.cfg.Ways+way] }

// LineAddr reconstructs the line-aligned address stored in (set, way).
func (c *Cache) LineAddr(set, way int) uint64 {
	tag := c.tags[set*c.cfg.Ways+way]
	return (tag*uint64(c.cfg.Sets) + uint64(set)) << c.lineShift
}

// Contains reports whether addr's line is resident (no state change).
func (c *Cache) Contains(addr uint64) bool {
	set, tag := c.SetOf(addr), c.TagOf(addr)
	base := set * c.cfg.Ways
	for w := 0; w < c.cfg.Ways; w++ {
		if c.valid[base+w] && c.tags[base+w] == tag {
			return true
		}
	}
	return false
}

// Access runs one reference through the cache.
func (c *Cache) Access(acc trace.Access) Result {
	set, tag := c.SetOf(acc.Addr), c.TagOf(acc.Addr)
	base := set * c.cfg.Ways
	c.Stats.Accesses++
	if acc.Write {
		c.Stats.WriteAccs++
	}
	c.setAccs[set]++

	// Hit path.
	for w := 0; w < c.cfg.Ways; w++ {
		if c.valid[base+w] && c.tags[base+w] == tag {
			c.Stats.Hits++
			if acc.Write {
				c.dirty[base+w] = true
			}
			c.pol.Hit(set, w, acc)
			c.emit(Event{Kind: EvHit, Set: set, Way: w, Addr: c.LineAddr(set, w), SetAccesses: c.setAccs[set], Acc: acc})
			c.pol.PostAccess(set, acc)
			return Result{Hit: true, Set: set, Way: w}
		}
	}

	// Miss path.
	c.Stats.Misses++
	res := Result{Set: set}

	way := -1
	for w := 0; w < c.cfg.Ways; w++ {
		if !c.valid[base+w] {
			way = w
			break
		}
	}
	if way < 0 {
		v, bypass := c.pol.Victim(set, acc)
		if bypass {
			if !c.cfg.AllowBypass {
				panic(fmt.Sprintf("cache %s: policy %s bypassed but AllowBypass is false", c.cfg.Name, c.pol.Name()))
			}
			c.Stats.Bypasses++
			res.Bypass = true
			c.emit(Event{Kind: EvBypass, Set: set, Addr: acc.Addr &^ uint64(c.cfg.LineSize-1), SetAccesses: c.setAccs[set], Acc: acc})
			c.pol.PostAccess(set, acc)
			return res
		}
		if v < 0 || v >= c.cfg.Ways {
			panic(fmt.Sprintf("cache %s: policy %s chose invalid victim way %d", c.cfg.Name, c.pol.Name(), v))
		}
		way = v
		res.Evicted = true
		res.VictimAddr = c.LineAddr(set, way)
		res.Writeback = c.dirty[base+way]
		if res.Writeback {
			c.Stats.Writebacks++
		}
		c.Stats.Evictions++
		// Emit before notifying the policy so monitors can observe the
		// victim's pre-eviction policy state (e.g. PDP's RPD).
		c.emit(Event{Kind: EvEvict, Set: set, Way: way, Addr: res.VictimAddr, SetAccesses: c.setAccs[set], Acc: acc})
		c.pol.Evict(set, way)
	}

	c.tags[base+way] = tag
	c.valid[base+way] = true
	c.dirty[base+way] = acc.Write
	c.Stats.Inserts++
	res.Way = way
	c.pol.Insert(set, way, acc)
	c.emit(Event{Kind: EvInsert, Set: set, Way: way, Addr: acc.Addr &^ uint64(c.cfg.LineSize-1), SetAccesses: c.setAccs[set], Acc: acc})
	c.pol.PostAccess(set, acc)
	return res
}

func (c *Cache) emit(ev Event) {
	if c.mon != nil {
		c.mon.Event(ev)
	}
}
