package cache

import "pdp/internal/trace"

// LRU is the least-recently-used replacement policy. It also provides the
// primitives (Touch, Demote) on which insertion-policy variants such as BIP
// and LIP are built.
type LRU struct {
	NopPolicy
	ways int
	ts   []int64 // timestamp per (set*ways+way); larger = more recent
	hi   int64   // clock for MRU insertions/promotions
	lo   int64   // decreasing clock for LRU-position insertions
}

// NewLRU builds an LRU policy for a sets x ways cache.
func NewLRU(sets, ways int) *LRU {
	return &LRU{ways: ways, ts: make([]int64, sets*ways), lo: -1}
}

// Name implements Policy.
func (p *LRU) Name() string { return "LRU" }

// Touch moves (set, way) to the MRU position.
func (p *LRU) Touch(set, way int) {
	p.hi++
	p.ts[set*p.ways+way] = p.hi
}

// Demote moves (set, way) to the LRU position (next victim).
func (p *LRU) Demote(set, way int) {
	p.ts[set*p.ways+way] = p.lo
	p.lo--
}

// StackOrder returns the ways of set ordered from MRU to LRU (testing and
// monitor support; stack positions are the time unit of stack-distance
// based policies).
func (p *LRU) StackOrder(set int) []int {
	order := make([]int, p.ways)
	for i := range order {
		order[i] = i
	}
	base := set * p.ways
	// Insertion sort by descending timestamp; associativity is small.
	for i := 1; i < p.ways; i++ {
		j := i
		for j > 0 && p.ts[base+order[j-1]] < p.ts[base+order[j]] {
			order[j-1], order[j] = order[j], order[j-1]
			j--
		}
	}
	return order
}

// Hit implements Policy.
func (p *LRU) Hit(set, way int, _ trace.Access) { p.Touch(set, way) }

// Victim implements Policy.
func (p *LRU) Victim(set int, _ trace.Access) (int, bool) {
	base := set * p.ways
	best, bestTS := 0, p.ts[base]
	for w := 1; w < p.ways; w++ {
		if p.ts[base+w] < bestTS {
			best, bestTS = w, p.ts[base+w]
		}
	}
	return best, false
}

// Insert implements Policy.
func (p *LRU) Insert(set, way int, _ trace.Access) { p.Touch(set, way) }

// Random picks victims uniformly at random; a sanity baseline.
type Random struct {
	NopPolicy
	ways int
	rng  *trace.RNG
}

// NewRandom builds a random-replacement policy.
func NewRandom(ways int, seed uint64) *Random {
	return &Random{ways: ways, rng: trace.NewRNG(seed)}
}

// Name implements Policy.
func (p *Random) Name() string { return "Random" }

// Victim implements Policy.
func (p *Random) Victim(int, trace.Access) (int, bool) {
	return p.rng.Intn(p.ways), false
}
