package cache

import (
	"testing"
	"testing/quick"

	"pdp/internal/trace"
)

func mkCache(sets, ways int, bypass bool) *Cache {
	return New(Config{Name: "t", Sets: sets, Ways: ways, LineSize: 64, AllowBypass: bypass},
		NewLRU(sets, ways))
}

// addr builds an address mapping to the given set with the given tag.
func addr(sets int, set, tag int) uint64 {
	return uint64(tag*sets+set) * 64
}

func TestNewPanics(t *testing.T) {
	cases := []Config{
		{Sets: 0, Ways: 4, LineSize: 64},
		{Sets: 3, Ways: 4, LineSize: 64},
		{Sets: 4, Ways: 0, LineSize: 64},
		{Sets: 4, Ways: 4, LineSize: 48},
	}
	for i, cfg := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic for %+v", i, cfg)
				}
			}()
			New(cfg, NewLRU(4, 4))
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic for nil policy")
			}
		}()
		New(Config{Sets: 4, Ways: 4, LineSize: 64}, nil)
	}()
}

func TestHitMiss(t *testing.T) {
	c := mkCache(16, 4, false)
	a := trace.Access{Addr: addr(16, 3, 7)}
	if r := c.Access(a); r.Hit {
		t.Fatal("first access must miss")
	}
	if r := c.Access(a); !r.Hit {
		t.Fatal("second access must hit")
	}
	if !c.Contains(a.Addr) {
		t.Fatal("Contains must report resident line")
	}
	if c.Stats.Accesses != 2 || c.Stats.Hits != 1 || c.Stats.Misses != 1 {
		t.Fatalf("stats = %+v", c.Stats)
	}
}

func TestLRUEvictionOrder(t *testing.T) {
	c := mkCache(1, 4, false)
	for tag := 0; tag < 4; tag++ {
		c.Access(trace.Access{Addr: addr(1, 0, tag)})
	}
	// Promote tag 0; LRU is now tag 1.
	c.Access(trace.Access{Addr: addr(1, 0, 0)})
	r := c.Access(trace.Access{Addr: addr(1, 0, 9)})
	if !r.Evicted || r.VictimAddr != addr(1, 0, 1) {
		t.Fatalf("victim = %#x, want tag 1 (%#x)", r.VictimAddr, addr(1, 0, 1))
	}
	// tag 1 must be gone, tag 0 resident.
	if c.Contains(addr(1, 0, 1)) || !c.Contains(addr(1, 0, 0)) {
		t.Fatal("wrong line evicted")
	}
}

func TestLRUDemote(t *testing.T) {
	lru := NewLRU(1, 4)
	c := New(Config{Name: "t", Sets: 1, Ways: 4, LineSize: 64}, lru)
	for tag := 0; tag < 4; tag++ {
		c.Access(trace.Access{Addr: addr(1, 0, tag)})
	}
	// Demote tag 3 (the MRU) to LRU; next victim must be tag 3.
	lru.Demote(0, 3)
	r := c.Access(trace.Access{Addr: addr(1, 0, 9)})
	if r.VictimAddr != addr(1, 0, 3) {
		t.Fatalf("victim = %#x, want demoted tag 3", r.VictimAddr)
	}
}

func TestLRUStackOrder(t *testing.T) {
	lru := NewLRU(1, 4)
	c := New(Config{Name: "t", Sets: 1, Ways: 4, LineSize: 64}, lru)
	for tag := 0; tag < 4; tag++ {
		c.Access(trace.Access{Addr: addr(1, 0, tag)})
	}
	order := lru.StackOrder(0)
	// Ways filled in order 0..3, so MRU->LRU is 3,2,1,0.
	want := []int{3, 2, 1, 0}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("StackOrder = %v, want %v", order, want)
		}
	}
}

func TestWritebackOnDirtyEviction(t *testing.T) {
	c := mkCache(1, 2, false)
	c.Access(trace.Access{Addr: addr(1, 0, 0), Write: true})
	c.Access(trace.Access{Addr: addr(1, 0, 1)})
	r := c.Access(trace.Access{Addr: addr(1, 0, 2)}) // evicts dirty tag 0
	if !r.Evicted || !r.Writeback {
		t.Fatalf("expected dirty eviction, got %+v", r)
	}
	if c.Stats.Writebacks != 1 {
		t.Fatalf("Writebacks = %d, want 1", c.Stats.Writebacks)
	}
	// Clean eviction must not count.
	r = c.Access(trace.Access{Addr: addr(1, 0, 3)}) // evicts clean tag 1
	if r.Writeback || c.Stats.Writebacks != 1 {
		t.Fatalf("clean eviction miscounted: %+v, wb=%d", r, c.Stats.Writebacks)
	}
}

func TestWriteHitSetsDirty(t *testing.T) {
	c := mkCache(1, 2, false)
	c.Access(trace.Access{Addr: addr(1, 0, 0)})              // clean insert
	c.Access(trace.Access{Addr: addr(1, 0, 0), Write: true}) // write hit
	c.Access(trace.Access{Addr: addr(1, 0, 1)})
	r := c.Access(trace.Access{Addr: addr(1, 0, 2)})
	if !r.Writeback {
		t.Fatal("write hit did not mark line dirty")
	}
}

// bypassAll is a policy that always bypasses once the set is full.
type bypassAll struct{ NopPolicy }

func (bypassAll) Name() string                         { return "bypassAll" }
func (bypassAll) Victim(int, trace.Access) (int, bool) { return 0, true }
func (bypassAll) Hit(int, int, trace.Access)           {}

func TestBypass(t *testing.T) {
	c := New(Config{Name: "t", Sets: 1, Ways: 2, LineSize: 64, AllowBypass: true}, bypassAll{})
	c.Access(trace.Access{Addr: addr(1, 0, 0)})
	c.Access(trace.Access{Addr: addr(1, 0, 1)})
	r := c.Access(trace.Access{Addr: addr(1, 0, 2)})
	if !r.Bypass || r.Evicted {
		t.Fatalf("expected bypass, got %+v", r)
	}
	if c.Stats.Bypasses != 1 || c.Stats.Inserts != 2 {
		t.Fatalf("stats = %+v", c.Stats)
	}
	if c.Contains(addr(1, 0, 2)) {
		t.Fatal("bypassed line must not be resident")
	}
}

func TestBypassDisallowedPanics(t *testing.T) {
	c := New(Config{Name: "t", Sets: 1, Ways: 1, LineSize: 64}, bypassAll{})
	c.Access(trace.Access{Addr: addr(1, 0, 0)})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on bypass without AllowBypass")
		}
	}()
	c.Access(trace.Access{Addr: addr(1, 0, 1)})
}

// badVictim returns an out-of-range way.
type badVictim struct{ NopPolicy }

func (badVictim) Name() string                         { return "bad" }
func (badVictim) Victim(int, trace.Access) (int, bool) { return 99, false }

func TestInvalidVictimPanics(t *testing.T) {
	c := New(Config{Name: "t", Sets: 1, Ways: 1, LineSize: 64}, badVictim{})
	c.Access(trace.Access{Addr: addr(1, 0, 0)})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on invalid victim way")
		}
	}()
	c.Access(trace.Access{Addr: addr(1, 0, 1)})
}

func TestAddressMappingRoundTrip(t *testing.T) {
	c := mkCache(64, 8, false)
	f := func(raw uint64) bool {
		a := raw &^ 63 // line aligned
		set := c.SetOf(a)
		if set < 0 || set >= 64 {
			return false
		}
		r := c.Access(trace.Access{Addr: a})
		return c.LineAddr(set, wayOf(c, a)) == a && r.Set == set
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func wayOf(c *Cache, a uint64) int {
	set, tag := c.SetOf(a), c.TagOf(a)
	for w := 0; w < c.Ways(); w++ {
		if c.Valid(set, w) && c.tags[set*c.Ways()+w] == tag {
			return w
		}
	}
	return -1
}

// recorder captures monitor events.
type recorder struct{ evs []Event }

func (r *recorder) Event(ev Event) { r.evs = append(r.evs, ev) }

func TestMonitorEvents(t *testing.T) {
	c := mkCache(1, 1, false)
	rec := &recorder{}
	c.SetMonitor(rec)
	c.Access(trace.Access{Addr: addr(1, 0, 0)}) // insert
	c.Access(trace.Access{Addr: addr(1, 0, 0)}) // hit
	c.Access(trace.Access{Addr: addr(1, 0, 1)}) // evict + insert
	kinds := []EventKind{EvInsert, EvHit, EvEvict, EvInsert}
	if len(rec.evs) != len(kinds) {
		t.Fatalf("got %d events, want %d", len(rec.evs), len(kinds))
	}
	for i, k := range kinds {
		if rec.evs[i].Kind != k {
			t.Errorf("event %d kind = %d, want %d", i, rec.evs[i].Kind, k)
		}
	}
	if rec.evs[2].Addr != addr(1, 0, 0) {
		t.Errorf("evict event addr = %#x, want victim %#x", rec.evs[2].Addr, addr(1, 0, 0))
	}
	// SetAccesses is 1,2,3,3 for the four events.
	wantAccs := []uint64{1, 2, 3, 3}
	for i, w := range wantAccs {
		if rec.evs[i].SetAccesses != w {
			t.Errorf("event %d SetAccesses = %d, want %d", i, rec.evs[i].SetAccesses, w)
		}
	}
}

func TestRandomPolicyFills(t *testing.T) {
	c := New(Config{Name: "t", Sets: 4, Ways: 2, LineSize: 64}, NewRandom(2, 1))
	for tag := 0; tag < 32; tag++ {
		for set := 0; set < 4; set++ {
			c.Access(trace.Access{Addr: addr(4, set, tag)})
		}
	}
	if c.Stats.Evictions == 0 {
		t.Fatal("random policy never evicted")
	}
}

func TestHierarchyBasics(t *testing.T) {
	l1 := New(Config{Name: "L1", Sets: 4, Ways: 2, LineSize: 64}, NewLRU(4, 2))
	l2 := New(Config{Name: "L2", Sets: 16, Ways: 4, LineSize: 64}, NewLRU(16, 4))
	h := NewHierarchy(l1, l2)

	a := trace.Access{Addr: 0x1000}
	if lvl := h.Access(a); lvl != 2 {
		t.Fatalf("cold access satisfied at level %d, want memory (2)", lvl)
	}
	if lvl := h.Access(a); lvl != 0 {
		t.Fatalf("second access satisfied at level %d, want L1 (0)", lvl)
	}
	if !l1.Contains(a.Addr) || !l2.Contains(a.Addr) {
		t.Fatal("fill must allocate at every level")
	}
	if h.DemandHits[0] != 1 || h.MemAccesses != 1 {
		t.Fatalf("hit counters: %v mem=%d", h.DemandHits, h.MemAccesses)
	}
}

func TestHierarchyL2HitAfterL1Eviction(t *testing.T) {
	l1 := New(Config{Name: "L1", Sets: 1, Ways: 1, LineSize: 64}, NewLRU(1, 1))
	l2 := New(Config{Name: "L2", Sets: 1, Ways: 8, LineSize: 64}, NewLRU(1, 8))
	h := NewHierarchy(l1, l2)

	h.Access(trace.Access{Addr: 0})  // mem
	h.Access(trace.Access{Addr: 64}) // mem, evicts 0 from L1
	if lvl := h.Access(trace.Access{Addr: 0}); lvl != 1 {
		t.Fatalf("re-access satisfied at level %d, want L2 (1)", lvl)
	}
}

func TestHierarchyWritebackPropagates(t *testing.T) {
	l1 := New(Config{Name: "L1", Sets: 1, Ways: 1, LineSize: 64}, NewLRU(1, 1))
	l2 := New(Config{Name: "L2", Sets: 1, Ways: 8, LineSize: 64}, NewLRU(1, 8))
	h := NewHierarchy(l1, l2)

	h.Access(trace.Access{Addr: 0, Write: true})
	before := l2.Stats.Accesses
	h.Access(trace.Access{Addr: 64}) // evicts dirty line 0 from L1 -> wb to L2
	if l1.Stats.Writebacks != 1 {
		t.Fatalf("L1 writebacks = %d, want 1", l1.Stats.Writebacks)
	}
	// L2 saw the demand miss plus the writeback hit.
	if l2.Stats.Accesses != before+2 {
		t.Fatalf("L2 accesses = %d, want %d", l2.Stats.Accesses, before+2)
	}
	// The written-back line in L2 must now be dirty: evict everything and
	// count writebacks out of L2.
	for tag := 2; tag < 10; tag++ {
		h.Access(trace.Access{Addr: uint64(tag * 64)})
	}
	if l2.Stats.Writebacks == 0 {
		t.Fatal("dirty line lost during writeback to L2")
	}
}

func TestStatsHitRate(t *testing.T) {
	var s Stats
	if s.HitRate() != 0 {
		t.Fatal("idle hit rate must be 0")
	}
	s.Accesses, s.Hits = 4, 1
	if s.HitRate() != 0.25 {
		t.Fatalf("hit rate = %v, want 0.25", s.HitRate())
	}
}

func TestHierarchyInclusion(t *testing.T) {
	// Tiny LLC under a bigger L1 would break inclusion without
	// back-invalidation; with SetInclusive, every L1-resident line must
	// also be LLC-resident after any access.
	l1 := New(Config{Name: "L1", Sets: 1, Ways: 4, LineSize: 64}, NewLRU(1, 4))
	llc := New(Config{Name: "LLC", Sets: 1, Ways: 2, LineSize: 64}, NewLRU(1, 2))
	h := NewHierarchy(l1, llc)
	h.SetInclusive(true)

	for tag := 0; tag < 16; tag++ {
		h.Access(trace.Access{Addr: addr(1, 0, tag%5)})
		for w := 0; w < l1.Ways(); w++ {
			if !l1.Valid(0, w) {
				continue
			}
			if !llc.Contains(l1.LineAddr(0, w)) {
				t.Fatalf("inclusion violated: L1 holds %#x, LLC does not", l1.LineAddr(0, w))
			}
		}
	}
	if h.BackInvalidations == 0 {
		t.Fatal("expected back-invalidations with an undersized LLC")
	}
}

func TestHierarchyNonInclusiveKeepsUpperLines(t *testing.T) {
	l1 := New(Config{Name: "L1", Sets: 1, Ways: 4, LineSize: 64}, NewLRU(1, 4))
	llc := New(Config{Name: "LLC", Sets: 1, Ways: 2, LineSize: 64}, NewLRU(1, 2))
	h := NewHierarchy(l1, llc)

	h.Access(trace.Access{Addr: addr(1, 0, 0)})
	h.Access(trace.Access{Addr: addr(1, 0, 1)})
	h.Access(trace.Access{Addr: addr(1, 0, 2)}) // evicts tag 0 from the LLC
	// Non-inclusive: tag 0 may remain in L1.
	if !l1.Contains(addr(1, 0, 0)) {
		t.Fatal("non-inclusive hierarchy must not back-invalidate")
	}
	if h.BackInvalidations != 0 {
		t.Fatal("no back-invalidations expected")
	}
}

func TestMonitorBypassEvent(t *testing.T) {
	c := New(Config{Name: "t", Sets: 1, Ways: 2, LineSize: 64, AllowBypass: true}, bypassAll{})
	rec := &recorder{}
	c.SetMonitor(rec)
	c.Access(trace.Access{Addr: addr(1, 0, 0)})
	c.Access(trace.Access{Addr: addr(1, 0, 1)})
	c.Access(trace.Access{Addr: addr(1, 0, 2) + 7}) // unaligned: event addr must be line-aligned
	kinds := []EventKind{EvInsert, EvInsert, EvBypass}
	if len(rec.evs) != len(kinds) {
		t.Fatalf("got %d events, want %d", len(rec.evs), len(kinds))
	}
	for i, k := range kinds {
		if rec.evs[i].Kind != k {
			t.Fatalf("event %d kind = %d, want %d", i, rec.evs[i].Kind, k)
		}
	}
	bp := rec.evs[2]
	if bp.Set != 0 || bp.Addr != addr(1, 0, 2) || bp.SetAccesses != 3 {
		t.Fatalf("bypass event = %+v", bp)
	}
	if c.Stats.Bypasses != 1 {
		t.Fatalf("Bypasses = %d, want 1", c.Stats.Bypasses)
	}
}

func TestMonitorEvictEventOnDirtyVictim(t *testing.T) {
	c := mkCache(1, 1, false)
	rec := &recorder{}
	c.SetMonitor(rec)
	c.Access(trace.Access{Addr: addr(1, 0, 0), Write: true}) // dirty insert
	r := c.Access(trace.Access{Addr: addr(1, 0, 1)})         // evicts dirty tag 0
	if !r.Evicted || !r.Writeback {
		t.Fatalf("expected dirty eviction, got %+v", r)
	}
	if c.Stats.Writebacks != 1 {
		t.Fatalf("Writebacks = %d, want 1", c.Stats.Writebacks)
	}
	kinds := []EventKind{EvInsert, EvEvict, EvInsert}
	if len(rec.evs) != len(kinds) {
		t.Fatalf("got %d events, want %d", len(rec.evs), len(kinds))
	}
	for i, k := range kinds {
		if rec.evs[i].Kind != k {
			t.Fatalf("event %d kind = %d, want %d", i, rec.evs[i].Kind, k)
		}
	}
	if rec.evs[1].Addr != addr(1, 0, 0) {
		t.Fatalf("evict event addr = %#x, want dirty victim %#x", rec.evs[1].Addr, addr(1, 0, 0))
	}
	// A write bypass leaves the cache unchanged: no writeback, no events
	// beyond EvBypass (dirty data never entered the cache).
	cb := New(Config{Name: "t", Sets: 1, Ways: 1, LineSize: 64, AllowBypass: true}, bypassAll{})
	recb := &recorder{}
	cb.SetMonitor(recb)
	cb.Access(trace.Access{Addr: addr(1, 0, 0)})
	cb.Access(trace.Access{Addr: addr(1, 0, 1), Write: true})
	if cb.Stats.Writebacks != 0 {
		t.Fatalf("bypassed write counted a writeback: %+v", cb.Stats)
	}
	if last := recb.evs[len(recb.evs)-1]; last.Kind != EvBypass || !last.Acc.Write {
		t.Fatalf("last event = %+v, want write EvBypass", last)
	}
}
