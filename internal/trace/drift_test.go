package trace

import (
	"testing"
	"testing/quick"
)

func TestDriftLoopGenSetMappingStable(t *testing.T) {
	// The set a slot maps to must not change as the working set drifts,
	// otherwise drift would alter the reuse-distance structure.
	const sets, lines = 16, 64
	g := NewDriftLoopGen("d", lines, 0.5, 1, 1)
	setOf := func(a Access) int { return int(a.Addr / LineSize % sets) }
	want := make([]int, lines)
	for i := 0; i < lines; i++ {
		want[i] = setOf(g.Next())
	}
	// Several drifting cycles later the slot->set mapping is identical.
	for i := 0; i < 10*lines; i++ {
		g.Next()
	}
	for i := 0; i < lines; i++ {
		if got := setOf(g.Next()); got != want[i] {
			t.Fatalf("slot %d moved from set %d to %d after drift", i, want[i], got)
		}
	}
}

func TestDriftLoopGenReplacesLines(t *testing.T) {
	const lines = 100
	g := NewDriftLoopGen("d", lines, 0.2, 1, 1)
	first := map[uint64]bool{}
	for i := 0; i < lines; i++ {
		first[g.Next().Addr] = true
	}
	// After many cycles, most of the original lines must be retired.
	for i := 0; i < 50*lines; i++ {
		g.Next()
	}
	stale := 0
	for i := 0; i < lines; i++ {
		if first[g.Next().Addr] {
			stale++
		}
	}
	if stale > lines/4 {
		t.Fatalf("%d/%d original lines still live after 50 drifting cycles", stale, lines)
	}
}

func TestDriftLoopGenZeroDriftIsLoop(t *testing.T) {
	g := NewDriftLoopGen("d", 32, 0, 1, 1)
	l := NewLoopGen("l", 32, 1, 1)
	for i := 0; i < 200; i++ {
		if g.Next().Addr != l.Next().Addr {
			t.Fatal("drift=0 must reduce to a plain loop")
		}
	}
}

func TestDriftLoopGenPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewDriftLoopGen("x", 0, 0.1, 0, 0) },
		func() { NewDriftLoopGen("x", 10, -0.1, 0, 0) },
		func() { NewDriftLoopGen("x", 10, 1.5, 0, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestNoiseGenSpreadsAcrossSets(t *testing.T) {
	const sets = 64
	g := NewNoiseGen("n", 1, 7)
	counts := make([]int, sets)
	const n = 64000
	for i := 0; i < n; i++ {
		counts[g.Next().Addr/LineSize%sets]++
	}
	for s, c := range counts {
		if c < n/sets/2 || c > n/sets*2 {
			t.Fatalf("set %d received %d accesses, want ~%d", s, c, n/sets)
		}
	}
}

func TestNoiseGenRarelyReuses(t *testing.T) {
	g := NewNoiseGen("n", 1, 9)
	seen := map[uint64]bool{}
	dups := 0
	for i := 0; i < 200000; i++ {
		a := g.Next().Addr
		if seen[a] {
			dups++
		}
		seen[a] = true
	}
	if dups > 20 {
		t.Fatalf("%d accidental reuses; noise traffic must be effectively fresh", dups)
	}
}

func TestDriftAndNoiseResetReproducible(t *testing.T) {
	f := func(seed uint64) bool {
		d := NewDriftLoopGen("d", 50, 0.3, 1, seed)
		a := Collect(d, 500)
		d.Reset()
		b := Collect(d, 500)
		n := NewNoiseGen("n", 2, seed)
		x := Collect(n, 500)
		n.Reset()
		y := Collect(n, 500)
		for i := range a {
			if a[i] != b[i] || x[i] != y[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
