// Package trace provides memory-access records and deterministic synthetic
// trace generators whose set-level reuse-distance distributions (RDDs) are
// controllable. The PDP paper's mechanisms are functions of the RDD of the
// LLC access stream, so these generators are the workload substrate that
// replaces the SPEC CPU2006 traces used by the authors.
package trace

// Access is a single memory reference as seen by a cache.
type Access struct {
	// Addr is the byte address of the reference.
	Addr uint64
	// PC is the address of the instruction making the reference. Dead-block
	// predictors (SDP) key on it.
	PC uint64
	// Write marks store traffic.
	Write bool
	// WB marks a writeback arriving from an upper cache level. Policies such
	// as DIP and DRRIP exclude writebacks from their set-dueling counters.
	WB bool
	// Prefetch marks fills issued by a hardware prefetcher rather than by
	// demand; prefetch-aware policies (paper Sec. 6.5) treat them specially.
	Prefetch bool
	// Thread is the originating hardware thread (core) for shared caches.
	Thread int
}

// Generator produces a deterministic stream of accesses. Implementations
// must be reproducible: after Reset the same stream is generated again.
type Generator interface {
	// Next returns the next access. Generators are unbounded; the caller
	// decides the window length.
	Next() Access
	// Reset rewinds the generator to its initial state.
	Reset()
	// Name identifies the generator (used in reports).
	Name() string
}

// RNG is a small, fast, deterministic xorshift64* PRNG. It avoids any
// dependence on math/rand's global state so that traces are stable across
// Go releases.
type RNG struct {
	state uint64
}

// NewRNG returns a deterministic PRNG seeded with seed (0 is remapped).
func NewRNG(seed uint64) *RNG {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &RNG{state: seed}
}

// Uint64 returns the next 64-bit pseudo-random value.
func (r *RNG) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545F4914F6CDD1D
}

// Intn returns a pseudo-random int in [0, n). n must be > 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("trace: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a pseudo-random float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bernoulli returns true with probability p.
func (r *RNG) Bernoulli(p float64) bool {
	return r.Float64() < p
}
