package trace

import (
	"testing"
	"testing/quick"
)

// measureRD returns the exact set-level reuse-distance histogram of a
// stream: hist[d] counts reuses at distance d, fresh counts first touches.
func measureRD(accs []Access, sets int, maxD int) (hist []int, fresh, far int) {
	hist = make([]int, maxD+1)
	last := make([]map[uint64]int64, sets)
	count := make([]int64, sets)
	for i := range last {
		last[i] = make(map[uint64]int64)
	}
	for _, a := range accs {
		s := int(a.Addr / LineSize % uint64(sets))
		if p, ok := last[s][a.Addr]; ok {
			d := count[s] - p
			if d <= int64(maxD) {
				hist[d]++
			} else {
				far++
			}
		} else {
			fresh++
		}
		last[s][a.Addr] = count[s]
		count[s]++
	}
	return hist, fresh, far
}

func TestRNGDeterminism(t *testing.T) {
	f := func(seed uint64) bool {
		a, b := NewRNG(seed), NewRNG(seed)
		for i := 0; i < 100; i++ {
			if a.Uint64() != b.Uint64() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(7)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
		sum += v
	}
	mean := sum / n
	if mean < 0.48 || mean > 0.52 {
		t.Fatalf("Float64 mean %v far from 0.5", mean)
	}
}

func TestRNGIntnPanicsOnBadN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for Intn(0)")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestRDDSpecValidate(t *testing.T) {
	cases := []struct {
		spec RDDSpec
		ok   bool
	}{
		{RDDSpec{Peaks: []Peak{{Dist: 10, Weight: 0.5}}, Fresh: 0.5}, true},
		{RDDSpec{Peaks: []Peak{{Dist: 0, Weight: 0.5}}}, false},
		{RDDSpec{Peaks: []Peak{{Dist: 5, Weight: -0.1}}}, false},
		{RDDSpec{Peaks: []Peak{{Dist: 5, Weight: 0.9}}, Fresh: 0.5}, false},
		{RDDSpec{WriteFrac: 1.5}, false},
		{RDDSpec{}, true},
	}
	for i, c := range cases {
		err := c.spec.Validate()
		if (err == nil) != c.ok {
			t.Errorf("case %d: Validate() = %v, want ok=%v", i, err, c.ok)
		}
	}
}

func TestRDDGenHitsTargetDistances(t *testing.T) {
	const sets = 64
	spec := RDDSpec{
		Peaks: []Peak{{Dist: 20, Weight: 0.4}, {Dist: 60, Weight: 0.2}},
		Fresh: 0.4,
	}
	g := NewRDDGen("t", spec, sets, 1, 42)
	accs := Collect(g, 200000)
	hist, fresh, _ := measureRD(accs, sets, 256)

	total := len(accs)
	// Mass within +/-4 of each peak should be close to the peak weight.
	window := func(d int) float64 {
		s := 0
		for i := d - 4; i <= d+4; i++ {
			if i >= 0 && i < len(hist) {
				s += hist[i]
			}
		}
		return float64(s) / float64(total)
	}
	if w := window(20); w < 0.32 || w > 0.48 {
		t.Errorf("mass near d=20 is %.3f, want ~0.40", w)
	}
	if w := window(60); w < 0.14 || w > 0.26 {
		t.Errorf("mass near d=60 is %.3f, want ~0.20", w)
	}
	fr := float64(fresh) / float64(total)
	if fr < 0.30 || fr > 0.50 {
		t.Errorf("fresh fraction %.3f, want ~0.40", fr)
	}
}

func TestRDDGenFarReuse(t *testing.T) {
	const sets = 32
	spec := RDDSpec{
		Peaks: []Peak{{Dist: 8, Weight: 0.3}},
		Fresh: 0.5,
		Far:   0.2,
	}
	g := NewRDDGen("t", spec, sets, 1, 99)
	accs := Collect(g, 150000)
	_, _, far := measureRD(accs, sets, 200)
	if frac := float64(far) / float64(len(accs)); frac < 0.05 {
		t.Errorf("far fraction %.3f too small, want a visible long-line tail", frac)
	}
}

func TestRDDGenSpread(t *testing.T) {
	const sets = 32
	spec := RDDSpec{Peaks: []Peak{{Dist: 40, Weight: 0.6}}, Spread: 6}
	g := NewRDDGen("t", spec, sets, 1, 5)
	accs := Collect(g, 100000)
	hist, _, _ := measureRD(accs, sets, 128)
	in, out := 0, 0
	for d, c := range hist {
		if d >= 40-8 && d <= 40+8 {
			in += c
		} else {
			out += c
		}
	}
	if in == 0 || float64(out)/float64(in+out) > 0.2 {
		t.Errorf("spread peak leaked: in=%d out=%d", in, out)
	}
}

func TestRDDGenWriteFraction(t *testing.T) {
	spec := RDDSpec{Peaks: []Peak{{Dist: 10, Weight: 0.5}}, WriteFrac: 0.3}
	g := NewRDDGen("t", spec, 16, 1, 3)
	w := 0
	const n = 50000
	for i := 0; i < n; i++ {
		if g.Next().Write {
			w++
		}
	}
	if f := float64(w) / n; f < 0.27 || f > 0.33 {
		t.Errorf("write fraction %.3f, want ~0.30", f)
	}
}

func TestLoopGenExactDistance(t *testing.T) {
	const sets = 16
	const k = 8 // lines per set
	g := NewLoopGen("loop", k*sets, 2, 1)
	accs := Collect(g, 40000)
	hist, fresh, _ := measureRD(accs, sets, 64)
	if fresh != k*sets {
		t.Errorf("fresh = %d, want %d (one per distinct line)", fresh, k*sets)
	}
	for d, c := range hist {
		if c > 0 && d != k {
			t.Errorf("unexpected reuse distance %d (count %d); want all at %d", d, c, k)
		}
	}
	if hist[k] == 0 {
		t.Errorf("no reuses at distance %d", k)
	}
}

func TestStreamGenNeverReuses(t *testing.T) {
	g := NewStreamGen("s", 3)
	seen := make(map[uint64]bool)
	for i := 0; i < 100000; i++ {
		a := g.Next()
		if seen[a.Addr] {
			t.Fatalf("stream reused address %#x", a.Addr)
		}
		seen[a.Addr] = true
	}
}

func TestPointerChaseCoversAllLines(t *testing.T) {
	const lines = 512
	g := NewPointerChaseGen("pc", lines, 4, 11)
	seen := make(map[uint64]bool)
	for i := 0; i < lines; i++ {
		seen[g.Next().Addr] = true
	}
	// Sattolo's algorithm gives a single cycle: the first `lines` accesses
	// visit every line exactly once.
	if len(seen) != lines {
		t.Errorf("walk visited %d distinct lines, want %d", len(seen), lines)
	}
}

func TestMixGenWeights(t *testing.T) {
	a := NewStreamGen("a", 10)
	b := NewStreamGen("b", 11)
	g := NewMixGen("mix", 7, []Generator{a, b}, []float64{3, 1})
	na, nb := 0, 0
	const n = 40000
	for i := 0; i < n; i++ {
		acc := g.Next()
		if acc.Addr>>40 == 10 {
			na++
		} else {
			nb++
		}
	}
	if f := float64(na) / n; f < 0.72 || f > 0.78 {
		t.Errorf("mix fraction %.3f, want ~0.75", f)
	}
	_ = nb
}

func TestPhasedGenSchedule(t *testing.T) {
	a := NewStreamGen("a", 20)
	b := NewStreamGen("b", 21)
	g := NewPhasedGen("ph", []Segment{{a, 100}, {b, 50}})
	for i := 0; i < 100; i++ {
		if got := g.Next().Addr >> 40; got != 20 {
			t.Fatalf("access %d from region %d, want 20", i, got)
		}
	}
	for i := 0; i < 50; i++ {
		if got := g.Next().Addr >> 40; got != 21 {
			t.Fatalf("access %d from region %d, want 21", 100+i, got)
		}
	}
	// Loops back to phase A.
	if got := g.Next().Addr >> 40; got != 20 {
		t.Fatalf("after loop, region %d, want 20", got)
	}
}

func TestGeneratorsResetReproducible(t *testing.T) {
	gens := []Generator{
		NewRDDGen("r", RDDSpec{Peaks: []Peak{{Dist: 12, Weight: 0.5}}, Fresh: 0.3, Far: 0.2}, 32, 1, 77),
		NewLoopGen("l", 100, 2, 1),
		NewStreamGen("s", 3),
		NewPointerChaseGen("p", 64, 4, 9),
		NewMixGen("m", 5, []Generator{NewStreamGen("x", 6), NewLoopGen("y", 31, 7, 2)}, []float64{1, 1}),
	}
	for _, g := range gens {
		first := Collect(g, 5000)
		g.Reset()
		second := Collect(g, 5000)
		for i := range first {
			if first[i] != second[i] {
				t.Errorf("%s: access %d differs after Reset: %+v vs %+v",
					g.Name(), i, first[i], second[i])
				break
			}
		}
	}
}

func TestConstructorPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("LoopGen", func() { NewLoopGen("x", 0, 0, 0) })
	mustPanic("PointerChaseGen", func() { NewPointerChaseGen("x", 1, 0, 0) })
	mustPanic("MixGen empty", func() { NewMixGen("x", 0, nil, nil) })
	mustPanic("MixGen zero weights", func() {
		NewMixGen("x", 0, []Generator{NewStreamGen("s", 0)}, []float64{0})
	})
	mustPanic("PhasedGen empty", func() { NewPhasedGen("x", nil) })
	mustPanic("PhasedGen zero count", func() {
		NewPhasedGen("x", []Segment{{NewStreamGen("s", 0), 0}})
	})
	mustPanic("RDDGen bad spec", func() {
		NewRDDGen("x", RDDSpec{Peaks: []Peak{{Dist: -1, Weight: 1}}}, 8, 0, 0)
	})
	mustPanic("RDDGen bad sets", func() { NewRDDGen("x", RDDSpec{}, 0, 0, 0) })
}
