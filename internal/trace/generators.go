package trace

import "fmt"

// LineSize is the cache line size in bytes used throughout the repository
// (paper Table 1: 64B lines).
const LineSize = 64

// Peak is one component of a target reuse-distance distribution: a fraction
// Weight of accesses should land at set-level reuse distance Dist.
type Peak struct {
	Dist   int
	Weight float64
}

// RDDSpec describes the target set-level reuse-distance distribution of an
// RDDGen stream. Weights of Peaks plus Fresh plus Far should sum to at most
// 1; any remainder is assigned to Fresh.
type RDDSpec struct {
	// Peaks lists finite reuse distances with their probabilities.
	Peaks []Peak
	// Fresh is the probability of touching a never-seen line (infinite RD).
	Fresh float64
	// Far is the probability of reusing a line whose last use was long ago
	// (beyond the maximum peak distance; appears as a "long line").
	Far float64
	// FarMin is the minimum set-level distance of a Far reuse. Zero selects
	// a default beyond the paper's d_max of 256, so Far mass registers as
	// "long lines" in any d_max=256 RDD.
	FarMin int
	// Spread is a uniform +/- jitter (in set accesses) applied around each
	// peak distance; 0 gives exact distances.
	Spread int
	// WriteFrac is the fraction of accesses that are stores.
	WriteFrac float64
}

func (s RDDSpec) farMin() int {
	if s.FarMin > 0 {
		return s.FarMin
	}
	if m := 4 * s.maxDist(); m > 320 {
		return m
	}
	return 320
}

func (s RDDSpec) maxDist() int {
	m := 0
	for _, p := range s.Peaks {
		if p.Dist > m {
			m = p.Dist
		}
	}
	return m + s.Spread
}

// Validate reports whether the spec is self-consistent.
func (s RDDSpec) Validate() error {
	total := s.Fresh + s.Far
	for _, p := range s.Peaks {
		if p.Dist <= 0 {
			return fmt.Errorf("trace: peak distance %d must be positive", p.Dist)
		}
		if p.Weight < 0 {
			return fmt.Errorf("trace: peak weight %v must be non-negative", p.Weight)
		}
		total += p.Weight
	}
	if total > 1.0001 {
		return fmt.Errorf("trace: spec weights sum to %v > 1", total)
	}
	if s.WriteFrac < 0 || s.WriteFrac > 1 {
		return fmt.Errorf("trace: WriteFrac %v out of range", s.WriteFrac)
	}
	return nil
}

// rddSet holds per-set generation state for RDDGen.
type rddSet struct {
	hist    []uint64         // ring buffer of the last len(hist) line addresses
	lastPos map[uint64]int64 // most recent access index per live address
	count   int64            // accesses to this set so far
	retired []uint64         // ring of old addresses usable for "far" reuse
	retPos  int
}

// RDDGen generates accesses whose set-level reuse distances follow an
// RDDSpec. It models the set-index mapping of the target cache directly, so
// the distances it produces are exactly the quantity the PDP paper's RD
// sampler measures.
type RDDGen struct {
	name    string
	spec    RDDSpec
	sets    int
	base    uint64
	seed    uint64
	rng     *RNG
	state   []rddSet
	nextTag uint64
	histLen int
	retCap  int
	farMinD int
	// cumulative weights for sampling: peaks..., far, fresh(remainder)
	cumW   []float64
	pcPeak []uint64 // one PC group per peak
	pcNew  uint64   // PC used by fresh (streaming) accesses
	pcFar  uint64
}

// NewRDDGen builds a generator for the given number of target cache sets.
// base disambiguates the address space when several generators are mixed;
// seed fixes the pseudo-random stream.
func NewRDDGen(name string, spec RDDSpec, sets int, base, seed uint64) *RDDGen {
	if err := spec.Validate(); err != nil {
		panic(err)
	}
	if sets <= 0 {
		panic("trace: sets must be positive")
	}
	g := &RDDGen{
		name:    name,
		spec:    spec,
		sets:    sets,
		base:    base << 40,
		seed:    seed,
		histLen: spec.maxDist() + 16,
		retCap:  512,
		farMinD: spec.farMin(),
	}
	cum := 0.0
	for i, p := range spec.Peaks {
		cum += p.Weight
		g.cumW = append(g.cumW, cum)
		g.pcPeak = append(g.pcPeak, 0x1000+uint64(i)*0x40)
	}
	cum += spec.Far
	g.cumW = append(g.cumW, cum) // far bucket
	g.pcNew = 0x9000
	g.pcFar = 0xA000
	g.Reset()
	return g
}

// Name implements Generator.
func (g *RDDGen) Name() string { return g.name }

// Reset implements Generator.
func (g *RDDGen) Reset() {
	g.rng = NewRNG(g.seed)
	g.state = make([]rddSet, g.sets)
	for i := range g.state {
		g.state[i] = rddSet{
			hist:    make([]uint64, g.histLen),
			lastPos: make(map[uint64]int64, g.histLen+g.retCap),
			retired: make([]uint64, 0, g.retCap),
		}
	}
	g.nextTag = 1
}

// freshAddr returns a line address never used before that maps to set s.
func (g *RDDGen) freshAddr(s int) uint64 {
	a := g.base | (g.nextTag*uint64(g.sets)+uint64(s))*LineSize
	g.nextTag++
	return a
}

// Next implements Generator.
func (g *RDDGen) Next() Access {
	s := g.rng.Intn(g.sets)
	st := &g.state[s]

	u := g.rng.Float64()
	var addr uint64
	pc := g.pcNew
	nPeaks := len(g.spec.Peaks)
	chosen := -1 // -1 fresh, [0..nPeaks) peak i, nPeaks far
	for i, c := range g.cumW {
		if u < c {
			chosen = i
			break
		}
	}
	switch {
	case chosen >= 0 && chosen < nPeaks:
		d := g.spec.Peaks[chosen].Dist
		if g.spec.Spread > 0 {
			d += g.rng.Intn(2*g.spec.Spread+1) - g.spec.Spread
			if d < 1 {
				d = 1
			}
		}
		addr = g.reuseAt(st, int64(d))
		pc = g.pcPeak[chosen]
	case chosen == nPeaks: // far reuse
		for try := 0; try < 4 && len(st.retired) > 0; try++ {
			cand := st.retired[g.rng.Intn(len(st.retired))]
			if p, ok := st.lastPos[cand]; ok && st.count-p >= int64(g.farMinD) {
				addr = cand
				pc = g.pcFar
				break
			}
		}
	}
	if addr == 0 {
		addr = g.freshAddr(s)
		pc = g.pcNew
	}
	g.record(st, addr)
	return Access{
		Addr:  addr,
		PC:    pc,
		Write: g.rng.Bernoulli(g.spec.WriteFrac),
	}
}

// reuseAt returns the address whose most recent use in st was exactly d
// accesses ago, or 0 if no such address exists (then the caller falls back
// to a fresh line, which only adds mass to the "fresh" bucket).
func (g *RDDGen) reuseAt(st *rddSet, d int64) uint64 {
	// Try the exact distance, then wiggle outwards a little: an address seen
	// at distance d may have been re-touched since (its RD would be wrong),
	// in which case a neighbor usually works.
	for _, delta := range []int64{0, 1, -1, 2, -2, 3, -3} {
		dd := d + delta
		idx := st.count - dd
		if dd < 1 || idx < 0 || dd >= int64(g.histLen) {
			continue
		}
		cand := st.hist[idx%int64(g.histLen)]
		if cand == 0 {
			continue
		}
		if p, ok := st.lastPos[cand]; ok && p == idx {
			return cand
		}
	}
	return 0
}

// record appends addr to the set's history, retiring whatever falls out of
// the window so that "far" reuse candidates exist and the map stays bounded.
func (g *RDDGen) record(st *rddSet, addr uint64) {
	slot := st.count % int64(g.histLen)
	out := st.hist[slot]
	if out != 0 {
		if p, ok := st.lastPos[out]; ok && p == st.count-int64(g.histLen) {
			// Most recent use of `out` is leaving the window.
			if len(st.retired) < g.retCap {
				st.retired = append(st.retired, out)
			} else {
				old := st.retired[st.retPos]
				if q, ok2 := st.lastPos[old]; ok2 && q <= st.count-int64(g.histLen) {
					delete(st.lastPos, old)
				}
				st.retired[st.retPos] = out
				st.retPos = (st.retPos + 1) % g.retCap
			}
		}
	}
	st.hist[slot] = addr
	st.lastPos[addr] = st.count
	st.count++
}

// LoopGen cyclically sweeps a working set of Lines cache lines with unit
// line stride. With Lines = k*sets the set-level reuse distance is k for
// every line: the classic thrashing (k > associativity) or LRU-friendly
// (k <= associativity) pattern.
type LoopGen struct {
	name  string
	lines uint64
	base  uint64
	pos   uint64
	pc    uint64
	wfrac float64
	seed  uint64
	rng   *RNG
}

// NewLoopGen builds a cyclic sweep over `lines` cache lines.
func NewLoopGen(name string, lines int, base, seed uint64) *LoopGen {
	if lines <= 0 {
		panic("trace: LoopGen needs a positive working set")
	}
	g := &LoopGen{name: name, lines: uint64(lines), base: base << 40, pc: 0x2000, seed: seed}
	g.Reset()
	return g
}

// Name implements Generator.
func (g *LoopGen) Name() string { return g.name }

// Reset implements Generator.
func (g *LoopGen) Reset() { g.pos = 0; g.rng = NewRNG(g.seed) }

// Next implements Generator.
func (g *LoopGen) Next() Access {
	a := Access{
		Addr:  g.base | (g.pos * LineSize),
		PC:    g.pc,
		Write: g.rng.Bernoulli(g.wfrac),
	}
	g.pos = (g.pos + 1) % g.lines
	return a
}

// StreamGen emits a pure streaming reference pattern: monotonically
// increasing line addresses that are never reused.
type StreamGen struct {
	name string
	base uint64
	pos  uint64
	pc   uint64
}

// NewStreamGen builds a never-reusing sequential stream.
func NewStreamGen(name string, base uint64) *StreamGen {
	return &StreamGen{name: name, base: base << 40, pc: 0x3000}
}

// Name implements Generator.
func (g *StreamGen) Name() string { return g.name }

// Reset implements Generator.
func (g *StreamGen) Reset() { g.pos = 0 }

// Next implements Generator.
func (g *StreamGen) Next() Access {
	a := Access{Addr: g.base | (g.pos * LineSize), PC: g.pc}
	g.pos++
	return a
}

// PointerChaseGen performs a pseudo-random walk over a working set of Lines
// lines, approximating dependent pointer chasing (429.mcf-like): reuse
// distances are spread widely, mostly far beyond any protecting distance.
type PointerChaseGen struct {
	name  string
	lines int
	base  uint64
	seed  uint64
	rng   *RNG
	perm  []uint32
	pos   uint32
	pc    uint64
}

// NewPointerChaseGen builds a random-permutation walk over `lines` lines.
func NewPointerChaseGen(name string, lines int, base, seed uint64) *PointerChaseGen {
	if lines <= 1 {
		panic("trace: PointerChaseGen needs at least 2 lines")
	}
	g := &PointerChaseGen{name: name, lines: lines, base: base << 40, seed: seed, pc: 0x4000}
	g.Reset()
	return g
}

// Name implements Generator.
func (g *PointerChaseGen) Name() string { return g.name }

// Reset implements Generator.
func (g *PointerChaseGen) Reset() {
	g.rng = NewRNG(g.seed)
	g.perm = make([]uint32, g.lines)
	for i := range g.perm {
		g.perm[i] = uint32(i)
	}
	// Sattolo's algorithm: a single cycle through all lines.
	for i := g.lines - 1; i > 0; i-- {
		j := g.rng.Intn(i)
		g.perm[i], g.perm[j] = g.perm[j], g.perm[i]
	}
	g.pos = 0
}

// Next implements Generator.
func (g *PointerChaseGen) Next() Access {
	a := Access{Addr: g.base | uint64(g.pos)*LineSize, PC: g.pc}
	g.pos = g.perm[g.pos]
	return a
}

// MixGen probabilistically interleaves child generators with fixed weights.
// Children must use distinct address bases.
type MixGen struct {
	name    string
	gens    []Generator
	weights []float64
	cum     []float64
	seed    uint64
	rng     *RNG
}

// NewMixGen interleaves gens with the given weights (need not be normalized).
func NewMixGen(name string, seed uint64, gens []Generator, weights []float64) *MixGen {
	if len(gens) == 0 || len(gens) != len(weights) {
		panic("trace: MixGen needs matching gens and weights")
	}
	total := 0.0
	for _, w := range weights {
		if w < 0 {
			panic("trace: MixGen weight must be non-negative")
		}
		total += w
	}
	if total <= 0 {
		panic("trace: MixGen weights sum to zero")
	}
	g := &MixGen{name: name, gens: gens, weights: weights, seed: seed}
	cum := 0.0
	for _, w := range weights {
		cum += w / total
		g.cum = append(g.cum, cum)
	}
	g.Reset()
	return g
}

// Name implements Generator.
func (g *MixGen) Name() string { return g.name }

// Reset implements Generator.
func (g *MixGen) Reset() {
	g.rng = NewRNG(g.seed)
	for _, c := range g.gens {
		c.Reset()
	}
}

// Next implements Generator.
func (g *MixGen) Next() Access {
	u := g.rng.Float64()
	for i, c := range g.cum {
		if u < c {
			return g.gens[i].Next()
		}
	}
	return g.gens[len(g.gens)-1].Next()
}

// Segment is one phase of a PhasedGen: Count accesses drawn from Gen.
type Segment struct {
	Gen   Generator
	Count uint64
}

// PhasedGen runs a deterministic schedule of segments, looping back to the
// first segment when the schedule is exhausted. It models program phase
// changes (paper Sec. 6.4).
type PhasedGen struct {
	name string
	segs []Segment
	idx  int
	used uint64
}

// NewPhasedGen builds a looping phase schedule.
func NewPhasedGen(name string, segs []Segment) *PhasedGen {
	if len(segs) == 0 {
		panic("trace: PhasedGen needs segments")
	}
	for _, s := range segs {
		if s.Count == 0 {
			panic("trace: PhasedGen segment with zero count")
		}
	}
	return &PhasedGen{name: name, segs: segs}
}

// Name implements Generator.
func (g *PhasedGen) Name() string { return g.name }

// Reset implements Generator.
func (g *PhasedGen) Reset() {
	g.idx = 0
	g.used = 0
	for _, s := range g.segs {
		s.Gen.Reset()
	}
}

// Next implements Generator.
func (g *PhasedGen) Next() Access {
	if g.used >= g.segs[g.idx].Count {
		g.used = 0
		g.idx = (g.idx + 1) % len(g.segs)
		if g.idx == 0 {
			// Restart the loop with fresh child state for reproducibility.
			for _, s := range g.segs {
				s.Gen.Reset()
			}
		}
	}
	g.used++
	return g.segs[g.idx].Gen.Next()
}

// Collect draws n accesses from g into a slice (testing helper).
func Collect(g Generator, n int) []Access {
	out := make([]Access, n)
	for i := range out {
		out[i] = g.Next()
	}
	return out
}

// NoiseGen emits never-reused lines at uniformly random sets: streaming
// traffic without the sequential determinism of StreamGen. Mixing it into a
// workload gives per-set arrival counts (and hence reuse distances of the
// other components) a realistic spread.
type NoiseGen struct {
	name string
	base uint64
	seed uint64
	rng  *RNG
	pc   uint64
}

// NewNoiseGen builds a random-set streaming generator.
func NewNoiseGen(name string, base, seed uint64) *NoiseGen {
	g := &NoiseGen{name: name, base: base << 40, seed: seed, pc: 0x5000}
	g.Reset()
	return g
}

// Name implements Generator.
func (g *NoiseGen) Name() string { return g.name }

// Reset implements Generator.
func (g *NoiseGen) Reset() { g.rng = NewRNG(g.seed) }

// Next implements Generator. Addresses are drawn from a 2^32-line region,
// so accidental reuse is negligible.
func (g *NoiseGen) Next() Access {
	line := g.rng.Uint64() & (1<<32 - 1)
	return Access{Addr: g.base | line*LineSize, PC: g.pc}
}

// DriftLoopGen cyclically sweeps a working set of Lines cache lines, but
// after every full cycle a fraction of the slots is replaced with fresh
// lines (the old line is never referenced again). This models slowly
// drifting working sets: policies that retain a stale subset (e.g. BIP's
// sticky MRU insertions) accumulate dead lines, while protection with a
// bounded distance expires them. The set mapping of each slot is stable
// across generations, so the reuse-distance structure is unchanged.
type DriftLoopGen struct {
	name  string
	lines uint64
	drift float64 // fraction of slots replaced per cycle
	base  uint64
	seed  uint64
	rng   *RNG
	gen   []uint32 // generation per slot
	pos   uint64
	pc    uint64
}

// NewDriftLoopGen builds a drifting cyclic sweep.
func NewDriftLoopGen(name string, lines int, drift float64, base, seed uint64) *DriftLoopGen {
	if lines <= 0 {
		panic("trace: DriftLoopGen needs a positive working set")
	}
	if drift < 0 || drift > 1 {
		panic("trace: DriftLoopGen drift must be in [0,1]")
	}
	g := &DriftLoopGen{
		name: name, lines: uint64(lines), drift: drift,
		base: base << 40, seed: seed, pc: 0x6000,
	}
	g.Reset()
	return g
}

// Name implements Generator.
func (g *DriftLoopGen) Name() string { return g.name }

// Reset implements Generator.
func (g *DriftLoopGen) Reset() {
	g.rng = NewRNG(g.seed)
	g.gen = make([]uint32, g.lines)
	g.pos = 0
}

// Next implements Generator.
func (g *DriftLoopGen) Next() Access {
	slot := g.pos
	addr := g.base | (uint64(g.gen[slot])*g.lines+slot)*LineSize
	g.pos++
	if g.pos == g.lines {
		g.pos = 0
		n := int(g.drift * float64(g.lines))
		for i := 0; i < n; i++ {
			g.gen[g.rng.Intn(int(g.lines))]++
		}
	}
	return Access{Addr: addr, PC: g.pc}
}
