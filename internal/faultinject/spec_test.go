package faultinject

import "testing"

func TestParseRoundTrip(t *testing.T) {
	in := "trace.corrupt=0.001,trace.dup=0.01,counter.flip=0.0001,pd.bias=16,until=50000,seed=7"
	s, err := Parse(in)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if s.TraceCorrupt != 0.001 || s.TraceDup != 0.01 || s.CounterFlip != 0.0001 ||
		s.PDBias != 16 || s.Until != 50000 || s.Seed != 7 {
		t.Fatalf("parsed %+v", s)
	}
	if !s.Enabled() || !s.TraceEnabled() || !s.PolicyEnabled() {
		t.Fatalf("enabled flags wrong: %+v", s)
	}
	s2, err := Parse(s.String())
	if err != nil {
		t.Fatalf("re-Parse(%q): %v", s.String(), err)
	}
	if s2 != s {
		t.Fatalf("round trip: %+v != %+v", s2, s)
	}
}

func TestParseEmpty(t *testing.T) {
	s, err := Parse("  ")
	if err != nil {
		t.Fatalf("Parse empty: %v", err)
	}
	if s.Enabled() {
		t.Fatalf("empty spec enabled: %+v", s)
	}
}

func TestParseErrors(t *testing.T) {
	for _, in := range []string{
		"trace.corrupt=2",    // probability out of range
		"trace.corrupt=-0.1", // negative probability
		"bogus=1",            // unknown key
		"trace.corrupt",      // not key=value
		"pd.bias=-3",         // negative bias
		"seed=abc",           // not a uint
	} {
		if _, err := Parse(in); err == nil {
			t.Errorf("Parse(%q): want error, got nil", in)
		}
	}
}

func TestUntilGating(t *testing.T) {
	s := Spec{TraceCorrupt: 1, Until: 10}
	if !s.active(10) {
		t.Fatal("tick 10 should be active")
	}
	if s.active(11) {
		t.Fatal("tick 11 should be inactive")
	}
	if !(Spec{TraceCorrupt: 1}).active(1 << 40) {
		t.Fatal("Until=0 should never deactivate")
	}
}

func TestParseServeKeys(t *testing.T) {
	in := "recompute.panic=0.25,recompute.stall=0.5,stall.ms=50,latency.spike=0.001,spike.ms=2,until=4000,seed=9"
	s, err := Parse(in)
	if err != nil {
		t.Fatal(err)
	}
	want := Spec{
		RecomputePanic: 0.25, RecomputeStall: 0.5, StallMS: 50,
		LatencySpike: 0.001, SpikeMS: 2, Until: 4000, Seed: 9,
	}
	if s != want {
		t.Fatalf("Parse(%q) = %+v, want %+v", in, s, want)
	}
	if !s.ServeEnabled() {
		t.Fatal("serve faults configured but ServeEnabled is false")
	}
	if s.TraceEnabled() || s.PolicyEnabled() {
		t.Fatal("serve-only spec claims trace/policy faults")
	}
	// String renders back into the grammar; Parse(String) round-trips.
	back, err := Parse(s.String())
	if err != nil {
		t.Fatalf("Parse(String()) = %v", err)
	}
	if back != s {
		t.Fatalf("round trip %+v != %+v", back, s)
	}
	// counter.flip is a sampler fault that also fires on the serving path.
	if s, _ := Parse("counter.flip=0.1"); !s.ServeEnabled() {
		t.Fatal("counter.flip alone should enable serving-path injection")
	}
}

func TestParseServeErrors(t *testing.T) {
	for _, in := range []string{
		"recompute.panic=2",  // probability out of range
		"recompute.stall=-1", // negative probability
		"stall.ms=-5",        // negative duration
		"spike.ms=abc",       // not an int
		"latency.spike=1.5",  // probability out of range
	} {
		if _, err := Parse(in); err == nil {
			t.Errorf("Parse(%q): want error, got nil", in)
		}
	}
}
