package faultinject

import (
	"strings"
	"testing"

	"pdp/internal/telemetry"
	"pdp/internal/workload"
)

// TestCampaignInvariants is the in-tree fault campaign: corrupt trace
// records plus RDD counter bit-flips and PD perturbation against a dynamic
// PDP, asserting the graceful-degradation guarantees — zero panics, PD
// always in [1, d_max], hit rate within the envelope, and PD
// re-convergence after the fault window closes.
func TestCampaignInvariants(t *testing.T) {
	b, ok := workload.ByName("403.gcc")
	if !ok {
		t.Fatal("benchmark 403.gcc missing")
	}
	j := telemetry.NewJournal(4096)
	spec, err := Parse("trace.corrupt=1e-3,counter.flip=1e-3,pd.bias=16,seed=7")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	rep, err := RunCampaign(CampaignConfig{
		Bench:    b,
		Spec:     spec,
		Accesses: 120_000,
		Seed:     42,
		Journal:  j,
	})
	if err != nil {
		t.Fatalf("RunCampaign: %v", err)
	}
	if rep.TotalFaults == 0 {
		t.Fatal("campaign injected zero faults")
	}
	if len(rep.Violations) > 0 {
		t.Fatalf("PD bounds violations: %v", rep.Violations)
	}
	if !rep.EnvelopeOK {
		t.Fatalf("hit-rate delta %.4f exceeds envelope %.4f", rep.HitRateDelta, rep.Envelope)
	}
	if !rep.ReconvergeOK {
		t.Fatalf("PD did not re-converge: fault end seq %d, reconverged at %d (clean %v, faulty %v)",
			rep.FaultEndSeq, rep.ReconvergedAt, rep.CleanPDs, rep.FaultyPDs)
	}
	if !rep.Passed() {
		t.Fatal("campaign did not pass")
	}
	// Fault events must have reached the journal.
	if j.CountKind(telemetry.KindFault) == 0 {
		t.Fatal("no fault records in the journal")
	}
	if j.CountKind(telemetry.KindRecovery) == 0 {
		t.Fatal("no pd_reconverge recovery record in the journal")
	}
	var sb strings.Builder
	rep.Render(&sb)
	if !strings.Contains(sb.String(), "passed=true") {
		t.Fatalf("render: %s", sb.String())
	}
}

// TestCampaignRejectsEmptySpec ensures a no-op spec is an error, not a
// silently-green campaign.
func TestCampaignRejectsEmptySpec(t *testing.T) {
	b, _ := workload.ByName("403.gcc")
	if _, err := RunCampaign(CampaignConfig{Bench: b, Spec: Spec{}, Accesses: 1000}); err == nil {
		t.Fatal("empty spec accepted")
	}
}
