package faultinject

import (
	"bytes"
	"errors"
	"io"
	"regexp"
	"strings"
	"testing"

	"pdp/internal/tracefile"
)

// encodeTrace serializes n sequential accesses in the tracefile format.
func encodeTrace(t *testing.T, n int) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := tracefile.NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	g := &seqGen{}
	for i := 0; i < n; i++ {
		if err := w.Write(g.Next()); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// readBack decodes until error, returning the count and the final error.
func readBack(data []byte) (int, error) {
	r, err := tracefile.NewReader(bytes.NewReader(data))
	if err != nil {
		return 0, err
	}
	n := 0
	for {
		if _, err := r.Read(); err != nil {
			return n, err
		}
		n++
	}
}

// TestTruncatedTraceErrorsWithPosition feeds a truncated encoding to the
// tracefile Reader and checks the failure names the record index and byte
// offset (the satellite diagnostics of this PR), not a bare EOF.
func TestTruncatedTraceErrorsWithPosition(t *testing.T) {
	data := encodeTrace(t, 1000)
	rep := NewReporter(nil)
	cut := Truncate(data, 0.5, rep)
	if rep.Count("tracefile.truncate") != 1 {
		t.Fatal("truncation not reported")
	}
	n, err := readBack(cut)
	if err == nil || errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("truncated trace read cleanly (%d records, err %v)", n, err)
	}
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("want ErrUnexpectedEOF in chain, got %v", err)
	}
	msg := err.Error()
	if !regexp.MustCompile(`record \d+ \(starting at byte \d+`).MatchString(msg) {
		t.Fatalf("error lacks record/byte position: %q", msg)
	}
	if n == 0 {
		t.Fatal("no records decoded before the truncation point")
	}
}

// TestBitFlippedTraceNeverPanics decodes many independently bit-flipped
// encodings: every outcome must be a clean stop or a positioned error,
// never a panic or an infinite stream.
func TestBitFlippedTraceNeverPanics(t *testing.T) {
	data := encodeTrace(t, 500)
	for seed := uint64(1); seed <= 50; seed++ {
		rep := NewReporter(nil)
		bad := FlipBits(data, 8, seed, HeaderLen, rep)
		if rep.Count("tracefile.flip") == 0 {
			t.Fatalf("seed %d: no flips applied", seed)
		}
		n, err := readBack(bad)
		if err == nil {
			t.Fatalf("seed %d: reader never terminated", seed)
		}
		if !errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) &&
			!strings.Contains(err.Error(), "record") {
			t.Fatalf("seed %d: unpositioned error after %d records: %v", seed, n, err)
		}
	}
}

// TestFlipBitsSkipsHeader ensures corruption spares the magic/version
// header so decoding fails in record data, not at open.
func TestFlipBitsSkipsHeader(t *testing.T) {
	data := encodeTrace(t, 100)
	for seed := uint64(1); seed <= 20; seed++ {
		bad := FlipBits(data, 4, seed, HeaderLen, nil)
		if !bytes.Equal(bad[:HeaderLen], data[:HeaderLen]) {
			t.Fatalf("seed %d: header corrupted", seed)
		}
	}
}

// TestFlipBitsDeterministic: same seed, same flips.
func TestFlipBitsDeterministic(t *testing.T) {
	data := encodeTrace(t, 200)
	a := FlipBits(data, 8, 9, HeaderLen, nil)
	b := FlipBits(data, 8, 9, HeaderLen, nil)
	if !bytes.Equal(a, b) {
		t.Fatal("FlipBits is not deterministic in its seed")
	}
}
