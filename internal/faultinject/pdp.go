package faultinject

import (
	"fmt"

	"pdp/internal/cache"
	"pdp/internal/core"
	"pdp/internal/trace"
)

// PDPInjector drives the spec's sampler/core faults against a dynamic PDP
// policy: per monitored access it may flip a random bit of a random N_i
// RDD counter (modelling SRAM soft errors in the counter array) or zero
// the whole RDD mid-window, and it perturbs every recomputed PD by a
// seeded uniform bias (clamped by core to [1, d_max]). It implements
// cache.Monitor; attach it via telemetry.Multi or the experiments runner's
// Extra monitor so it ticks once per cache event.
type PDPInjector struct {
	pdp  *core.PDP
	spec Spec
	rng  *trace.RNG
	rep  *Reporter
	accs uint64
}

// NewPDPInjector wires the spec's policy faults to p. The PD perturbation
// hook is installed immediately; counter faults fire from Event. Returns
// nil (a valid no-op monitor) when p is nil, static, or the spec has no
// policy faults — callers can attach the result unconditionally.
func NewPDPInjector(p *core.PDP, spec Spec, rep *Reporter) *PDPInjector {
	if p == nil || p.Sampler() == nil || !spec.PolicyEnabled() {
		return nil
	}
	inj := &PDPInjector{
		pdp:  p,
		spec: spec,
		rng:  trace.NewRNG(spec.Seed ^ 0x9D9D9D9D),
		rep:  rep,
	}
	if spec.PDBias > 0 {
		p.SetPDPerturb(func(pd int) int {
			if !spec.active(inj.accs) {
				return pd
			}
			d := inj.rng.Intn(2*spec.PDBias+1) - spec.PDBias
			if d != 0 {
				inj.rep.Record("pd.perturb", inj.accs, fmt.Sprintf("pd %d%+d", pd, d))
			}
			return pd + d
		})
	}
	return inj
}

// Event implements cache.Monitor: one tick of the injector's access clock.
func (i *PDPInjector) Event(cache.Event) {
	if i == nil {
		return
	}
	i.accs++
	if !i.spec.active(i.accs) {
		return
	}
	arr := i.pdp.Sampler().Array()
	if i.spec.CounterFlip > 0 && i.rng.Bernoulli(i.spec.CounterFlip) {
		k := i.rng.Intn(arr.K())
		bit := uint(i.rng.Intn(16))
		arr.Corrupt(k, 1<<bit)
		i.rep.Record("counter.flip", i.accs, fmt.Sprintf("N_%d ^= 1<<%d", k, bit))
	}
	if i.spec.RDDZero > 0 && i.rng.Bernoulli(i.spec.RDDZero) {
		arr.Reset()
		i.rep.Record("rdd.zero", i.accs, "RDD zeroed mid-window")
	}
}
