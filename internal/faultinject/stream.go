package faultinject

import (
	"pdp/internal/trace"
)

// HeaderLen is the byte length of a tracefile header (magic + version)
// that FlipBits skips by default, so corruption lands in record data
// rather than failing the header check outright.
const HeaderLen = 5

// FlipBits returns a copy of data with n deterministic single-bit flips at
// seeded positions from offset skip onward — the tracefile-layer fault
// model (bit rot in an archived trace). Fewer than n flips are applied
// when the region is shorter than n bytes. Each flip is reported to rep.
func FlipBits(data []byte, n int, seed uint64, skip int, rep *Reporter) []byte {
	out := make([]byte, len(data))
	copy(out, data)
	if skip < 0 {
		skip = 0
	}
	if skip >= len(out) || n <= 0 {
		return out
	}
	rng := trace.NewRNG(seed ^ 0xB17F11B5)
	region := len(out) - skip
	if n > region {
		n = region
	}
	for i := 0; i < n; i++ {
		pos := skip + rng.Intn(region)
		bit := uint(rng.Intn(8))
		out[pos] ^= 1 << bit
		rep.Record("tracefile.flip", uint64(pos), "")
	}
	return out
}

// Truncate returns the first frac of data (rounded down) — the truncated-
// transfer fault model. frac outside (0, 1) returns a copy unchanged.
func Truncate(data []byte, frac float64, rep *Reporter) []byte {
	n := len(data)
	if frac > 0 && frac < 1 {
		n = int(float64(len(data)) * frac)
		rep.Record("tracefile.truncate", uint64(n), "")
	}
	out := make([]byte, n)
	copy(out, data[:n])
	return out
}
