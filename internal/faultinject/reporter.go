package faultinject

import (
	"fmt"
	"sync"

	"pdp/internal/telemetry"
)

// InjectedError is the panic value of a trace.fail fault: a deliberate
// mid-stream generator failure the supervised harness must absorb and
// report (it unwinds as a *resilience.PanicError wrapping this value).
type InjectedError struct {
	// Site names the injection point ("trace.fail").
	Site string
	// Record is the record index at which the stream failed.
	Record uint64
}

// Error implements error.
func (e *InjectedError) Error() string {
	return fmt.Sprintf("faultinject: injected %s at record %d", e.Site, e.Record)
}

// Reporter counts injected faults per site and journals each one as a
// telemetry fault record. All methods are safe for concurrent use and on a
// nil receiver (a nil Reporter counts nothing).
type Reporter struct {
	mu      sync.Mutex
	journal *telemetry.Journal
	counts  map[string]uint64
	seq     uint64
}

// NewReporter builds a reporter journaling to j (nil journal just counts).
func NewReporter(j *telemetry.Journal) *Reporter {
	return &Reporter{journal: j, counts: map[string]uint64{}}
}

// Record counts one fault at site and journals it. access is the
// injector's access/record clock (0 when it has none).
func (r *Reporter) Record(site string, access uint64, detail string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.seq++
	seq := r.seq
	r.counts[site]++
	j := r.journal
	r.mu.Unlock()
	j.Append(telemetry.FaultRecord{
		Kind: telemetry.KindFault, Site: site, Seq: seq, Access: access, Detail: detail,
	})
}

// Count returns the number of faults injected at site.
func (r *Reporter) Count(site string) uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.counts[site]
}

// Total returns the number of faults injected across all sites.
func (r *Reporter) Total() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.seq
}

// Counts returns a copy of the per-site fault counts.
func (r *Reporter) Counts() map[string]uint64 {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]uint64, len(r.counts))
	for k, v := range r.counts {
		out[k] = v
	}
	return out
}
