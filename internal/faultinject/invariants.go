package faultinject

import (
	"fmt"
	"sync"

	"pdp/internal/core"
)

// Checker validates the per-recompute graceful-degradation invariant —
// the installed PD always lies in [1, d_max] — and records the PD
// trajectory for re-convergence analysis. Attach it to a dynamic PDP with
// NewChecker; it chains after any existing observer.
type Checker struct {
	dmax int
	name string

	mu         sync.Mutex
	pds        []int
	violations []string
}

// NewChecker attaches a checker to p (nil for static policies, which have
// no recomputations to check).
func NewChecker(p *core.PDP) *Checker {
	if p == nil || p.Sampler() == nil {
		return nil
	}
	c := &Checker{dmax: p.DMax(), name: p.Name()}
	p.AddObserver(c.observe)
	return c
}

func (c *Checker) observe(ev core.RecomputeEvent) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.pds = append(c.pds, ev.NewPD)
	if ev.NewPD < 1 || ev.NewPD > c.dmax {
		c.violations = append(c.violations,
			fmt.Sprintf("%s recompute %d: PD %d outside [1, %d]", c.name, ev.Seq, ev.NewPD, c.dmax))
	}
}

// PDs returns the recorded PD trajectory (one entry per recompute).
func (c *Checker) PDs() []int {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]int, len(c.pds))
	copy(out, c.pds)
	return out
}

// Violations returns the recorded invariant violations.
func (c *Checker) Violations() []string {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, len(c.violations))
	copy(out, c.violations)
	return out
}

// Reconvergence locates the first recompute ordinal at or after
// faultEndSeq (1-based) where the faulty PD trajectory returns to within
// tol of the clean one and stays there through the end. It returns that
// 1-based ordinal, or -1 when the trajectories never re-converge (or have
// no overlap after faultEndSeq).
func Reconvergence(clean, faulty []int, faultEndSeq, tol int) int {
	n := len(clean)
	if len(faulty) < n {
		n = len(faulty)
	}
	if faultEndSeq < 1 {
		faultEndSeq = 1
	}
	for at := faultEndSeq; at <= n; at++ {
		ok := true
		for i := at; i <= n; i++ {
			d := clean[i-1] - faulty[i-1]
			if d < 0 {
				d = -d
			}
			if d > tol {
				ok = false
				break
			}
		}
		if ok {
			return at
		}
	}
	return -1
}
