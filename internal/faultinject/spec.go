// Package faultinject provides deterministic, seeded fault injectors for
// the PDP pipeline's seams — the trace stream, the tracefile encoding, the
// RDD counter array, and the recomputed PD — plus the invariant checkers
// that turn a fault campaign into a graceful-degradation proof: the PD
// stays in [1, d_max], victim selection never panics, the hit rate under
// faults stays within a stated envelope of the clean run, and the PD
// re-converges after faults stop.
//
// The paper's hardware tolerates exactly these conditions by construction
// (a sampled RDD, saturating compressed counters, n_c-bit RPDs); this
// package injects them on purpose so the reproduction can prove the same
// robustness, with every fault journaled through internal/telemetry.
package faultinject

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Spec is a parsed fault-injection specification. The zero Spec injects
// nothing. The textual grammar (the CLIs' -inject flag) is a
// comma-separated list of key=value items:
//
//	seed=<uint>          injector RNG seed (default 1)
//	trace.corrupt=<p>    per record: flip one random address bit
//	trace.dup=<p>        per record: replay the previous record
//	trace.drop=<p>       per record: drop the record
//	trace.fail=<n>       panic with an injected error at record n (0 = never)
//	counter.flip=<p>     per access: flip one random bit of a random N_i
//	rdd.zero=<p>         per access: zero the RDD counter array mid-window
//	pd.bias=<k>          perturb each recomputed PD by a uniform +/-k
//	recompute.panic=<p>  per PD recomputation: panic inside the recompute
//	                     critical section (serving path; the breaker must
//	                     absorb it and degrade to LRU)
//	recompute.stall=<p>  per PD recomputation: stall the critical section
//	                     for stall.ms, tripping the recompute watchdog
//	stall.ms=<n>         recompute stall duration in milliseconds (default
//	                     100)
//	latency.spike=<p>    per cache access: sleep spike.ms while holding the
//	                     shard lock (the lock-hold watchdog's prey)
//	spike.ms=<n>         shard-latency spike duration in milliseconds
//	                     (default 5)
//	until=<n>            stop injecting after n injector-clock ticks
//	                     (records for trace faults, accesses for policy
//	                     faults; 0 = whole run) — makes PD re-convergence
//	                     after a fault burst observable
//
// Probabilities are in [0, 1]. Example:
//
//	-inject trace.corrupt=1e-4,counter.flip=1e-4,pd.bias=16,seed=7
type Spec struct {
	// Seed fixes the injector's random stream (0 is remapped by trace.RNG).
	Seed uint64
	// TraceCorrupt, TraceDup, TraceDrop are per-record probabilities of
	// address-bit corruption, duplication, and loss.
	TraceCorrupt, TraceDup, TraceDrop float64
	// TraceFail, when positive, injects a panic at the TraceFail-th record
	// (a mid-stream generator error the supervisor must absorb).
	TraceFail uint64
	// CounterFlip is the per-access probability of flipping a random bit of
	// a random N_i RDD counter; RDDZero the per-access probability of
	// zeroing the whole array mid-window.
	CounterFlip, RDDZero float64
	// PDBias, when positive, perturbs every recomputed PD by a uniform
	// value in [-PDBias, +PDBias] (clamped by core to [1, d_max]).
	PDBias int
	// RecomputePanic and RecomputeStall are per-recomputation probabilities
	// of panicking inside, or stalling, the PD recompute critical section
	// (serving path); StallMS is the stall duration in milliseconds
	// (default 100 when a stall is configured).
	RecomputePanic, RecomputeStall float64
	StallMS                        int
	// LatencySpike is the per-access probability of sleeping SpikeMS
	// milliseconds while holding a cache shard lock (default 5ms).
	LatencySpike float64
	SpikeMS      int
	// Until, when positive, deactivates every injector after Until ticks
	// of its own clock (records for the trace wrapper, monitored accesses
	// for the PDP injector); faults then stop and the system can be
	// observed re-converging.
	Until uint64
}

// active reports whether the injectors still fire at clock tick t.
func (s Spec) active(t uint64) bool {
	return s.Until == 0 || t <= s.Until
}

// Enabled reports whether the spec injects anything.
func (s Spec) Enabled() bool {
	return s.TraceEnabled() || s.PolicyEnabled()
}

// TraceEnabled reports whether any trace-stream fault is configured.
func (s Spec) TraceEnabled() bool {
	return s.TraceCorrupt > 0 || s.TraceDup > 0 || s.TraceDrop > 0 || s.TraceFail > 0
}

// PolicyEnabled reports whether any sampler/PD fault is configured.
func (s Spec) PolicyEnabled() bool {
	return s.CounterFlip > 0 || s.RDDZero > 0 || s.PDBias > 0
}

// ServeEnabled reports whether any serving-path fault is configured: the
// kvcache chaos injector fires on these plus the sampler faults (which
// apply to the online RDD exactly as to the simulated one).
func (s Spec) ServeEnabled() bool {
	return s.RecomputePanic > 0 || s.RecomputeStall > 0 || s.LatencySpike > 0 ||
		s.CounterFlip > 0 || s.RDDZero > 0
}

// String renders the spec in the -inject grammar (stable item order).
func (s Spec) String() string {
	var items []string
	add := func(k string, v float64) {
		if v > 0 {
			items = append(items, fmt.Sprintf("%s=%g", k, v))
		}
	}
	add("trace.corrupt", s.TraceCorrupt)
	add("trace.dup", s.TraceDup)
	add("trace.drop", s.TraceDrop)
	if s.TraceFail > 0 {
		items = append(items, fmt.Sprintf("trace.fail=%d", s.TraceFail))
	}
	add("counter.flip", s.CounterFlip)
	add("rdd.zero", s.RDDZero)
	if s.PDBias > 0 {
		items = append(items, fmt.Sprintf("pd.bias=%d", s.PDBias))
	}
	add("recompute.panic", s.RecomputePanic)
	add("recompute.stall", s.RecomputeStall)
	if s.StallMS > 0 {
		items = append(items, fmt.Sprintf("stall.ms=%d", s.StallMS))
	}
	add("latency.spike", s.LatencySpike)
	if s.SpikeMS > 0 {
		items = append(items, fmt.Sprintf("spike.ms=%d", s.SpikeMS))
	}
	if s.Until > 0 {
		items = append(items, fmt.Sprintf("until=%d", s.Until))
	}
	if s.Seed != 0 {
		items = append(items, fmt.Sprintf("seed=%d", s.Seed))
	}
	sort.Strings(items)
	return strings.Join(items, ",")
}

// Parse parses the -inject grammar. An empty string yields the zero Spec.
func Parse(text string) (Spec, error) {
	var s Spec
	text = strings.TrimSpace(text)
	if text == "" {
		return s, nil
	}
	for _, item := range strings.Split(text, ",") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		key, val, ok := strings.Cut(item, "=")
		if !ok {
			return Spec{}, fmt.Errorf("faultinject: %q is not key=value", item)
		}
		key, val = strings.TrimSpace(key), strings.TrimSpace(val)
		prob := func(dst *float64) error {
			p, err := strconv.ParseFloat(val, 64)
			if err != nil || p < 0 || p > 1 {
				return fmt.Errorf("faultinject: %s=%q is not a probability in [0,1]", key, val)
			}
			*dst = p
			return nil
		}
		var err error
		switch key {
		case "seed":
			s.Seed, err = strconv.ParseUint(val, 10, 64)
			if err != nil {
				err = fmt.Errorf("faultinject: seed=%q is not a uint", val)
			}
		case "trace.corrupt":
			err = prob(&s.TraceCorrupt)
		case "trace.dup":
			err = prob(&s.TraceDup)
		case "trace.drop":
			err = prob(&s.TraceDrop)
		case "trace.fail":
			s.TraceFail, err = strconv.ParseUint(val, 10, 64)
			if err != nil {
				err = fmt.Errorf("faultinject: trace.fail=%q is not a uint", val)
			}
		case "counter.flip":
			err = prob(&s.CounterFlip)
		case "rdd.zero":
			err = prob(&s.RDDZero)
		case "pd.bias":
			var k int
			k, err = strconv.Atoi(val)
			if err != nil || k < 0 {
				err = fmt.Errorf("faultinject: pd.bias=%q is not a non-negative int", val)
			} else {
				s.PDBias = k
			}
		case "recompute.panic":
			err = prob(&s.RecomputePanic)
		case "recompute.stall":
			err = prob(&s.RecomputeStall)
		case "stall.ms":
			var n int
			n, err = strconv.Atoi(val)
			if err != nil || n < 0 {
				err = fmt.Errorf("faultinject: stall.ms=%q is not a non-negative int", val)
			} else {
				s.StallMS = n
			}
		case "latency.spike":
			err = prob(&s.LatencySpike)
		case "spike.ms":
			var n int
			n, err = strconv.Atoi(val)
			if err != nil || n < 0 {
				err = fmt.Errorf("faultinject: spike.ms=%q is not a non-negative int", val)
			} else {
				s.SpikeMS = n
			}
		case "until":
			s.Until, err = strconv.ParseUint(val, 10, 64)
			if err != nil {
				err = fmt.Errorf("faultinject: until=%q is not a uint", val)
			}
		default:
			return Spec{}, fmt.Errorf("faultinject: unknown key %q (keys: seed, trace.corrupt, trace.dup, trace.drop, trace.fail, counter.flip, rdd.zero, pd.bias, recompute.panic, recompute.stall, stall.ms, latency.spike, spike.ms, until)", key)
		}
		if err != nil {
			return Spec{}, err
		}
	}
	return s, nil
}
