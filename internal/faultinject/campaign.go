package faultinject

import (
	"fmt"
	"io"

	"pdp/internal/cache"
	"pdp/internal/core"
	"pdp/internal/experiments"
	"pdp/internal/parallel"
	"pdp/internal/telemetry"
	"pdp/internal/workload"
)

// CampaignConfig configures one fault campaign: a clean run and a faulty
// run of the same benchmark under a dynamic PDP policy, followed by the
// graceful-degradation checks (PD bounds, hit-rate envelope, PD
// re-convergence after the fault window closes).
type CampaignConfig struct {
	// Bench is the workload under test.
	Bench workload.Benchmark
	// Spec is the fault specification. Its Until field is overridden from
	// FaultAccesses so both runs agree on when faults stop.
	Spec Spec
	// Accesses is the measured window length.
	Accesses int
	// Seed fixes the workload streams (the injector seeds come from Spec).
	Seed uint64
	// NC is the PDP RPD width in bits (default 8).
	NC int
	// RecomputeEvery is the PD recompute period in accesses (default
	// Accesses/8, floor 4096).
	RecomputeEvery uint64
	// FaultAccesses bounds the fault window: faults stop after this many
	// measured accesses so re-convergence is observable (default
	// Accesses/2; the whole window when >= Accesses).
	FaultAccesses uint64
	// HitRateEnvelope is the maximum allowed |clean - faulty| hit-rate
	// difference (absolute, default 0.15).
	HitRateEnvelope float64
	// ReconvergeWindows is how many recompute windows after the fault
	// window the faulty PD trajectory may take to rejoin the clean one
	// (default 3).
	ReconvergeWindows int
	// PDTolerance is the |clean - faulty| PD slack that still counts as
	// converged (default 4).
	PDTolerance int
	// Journal receives fault, recovery and telemetry events (nil disables).
	// It is safe to share across the campaign's concurrent runs (the journal
	// serializes appends internally).
	Journal *telemetry.Journal
	// Jobs bounds the campaign's run concurrency: with Jobs >= 2 the clean
	// and faulty runs execute on separate workers (they share no mutable
	// state beyond the journal). 0 or 1 keeps them serial; < 0 selects
	// GOMAXPROCS. The report is identical either way.
	Jobs int
}

// CampaignReport is the outcome of a fault campaign.
type CampaignReport struct {
	Clean, Faulty experiments.RunResult
	// CleanPDs and FaultyPDs are the PD trajectories (one entry per
	// recompute in the measured window).
	CleanPDs, FaultyPDs []int
	// FaultCounts counts injected faults by site; TotalFaults is their sum.
	FaultCounts map[string]uint64
	TotalFaults uint64
	// Violations are PD-bounds invariant violations observed in either run.
	Violations []string
	// HitRateDelta is |clean - faulty| hit rate; Envelope the allowed max.
	HitRateDelta, Envelope float64
	EnvelopeOK             bool
	// FaultEndSeq is the 1-based recompute ordinal at which the fault
	// window had closed; ReconvergedAt the ordinal where the faulty PD
	// trajectory rejoined the clean one (-1: never).
	FaultEndSeq, ReconvergedAt int
	// ReconvergeOK reports re-convergence within ReconvergeWindows (always
	// true when the fault window spans the whole run, where the check is
	// vacuous).
	ReconvergeOK bool
}

// Passed reports whether every campaign invariant held.
func (r CampaignReport) Passed() bool {
	return len(r.Violations) == 0 && r.EnvelopeOK && r.ReconvergeOK
}

// Render writes a human-readable campaign summary.
func (r CampaignReport) Render(w io.Writer) {
	fmt.Fprintf(w, "fault campaign: %s under %s\n", r.Clean.Bench, r.Clean.Policy)
	hr := func(res experiments.RunResult) float64 {
		if res.Stats.Accesses == 0 {
			return 0
		}
		return float64(res.Stats.Hits) / float64(res.Stats.Accesses)
	}
	fmt.Fprintf(w, "  clean : hit rate %.4f  MPKI %.3f  PDs %v\n", hr(r.Clean), r.Clean.MPKI, r.CleanPDs)
	fmt.Fprintf(w, "  faulty: hit rate %.4f  MPKI %.3f  PDs %v\n", hr(r.Faulty), r.Faulty.MPKI, r.FaultyPDs)
	fmt.Fprintf(w, "  faults injected: %d %v\n", r.TotalFaults, r.FaultCounts)
	fmt.Fprintf(w, "  hit-rate delta %.4f (envelope %.4f): ok=%v\n", r.HitRateDelta, r.Envelope, r.EnvelopeOK)
	if r.FaultEndSeq > 0 {
		fmt.Fprintf(w, "  PD re-convergence: fault window closed at recompute %d, reconverged at %d: ok=%v\n",
			r.FaultEndSeq, r.ReconvergedAt, r.ReconvergeOK)
	}
	for _, v := range r.Violations {
		fmt.Fprintf(w, "  VIOLATION: %s\n", v)
	}
	fmt.Fprintf(w, "  verdict: passed=%v\n", r.Passed())
}

// RunCampaign executes the campaign. Both runs share the workload seed, so
// any divergence is attributable to the injected faults alone.
func RunCampaign(cfg CampaignConfig) (CampaignReport, error) {
	if cfg.Bench.Build == nil {
		return CampaignReport{}, fmt.Errorf("faultinject: campaign needs a benchmark")
	}
	if cfg.Accesses <= 0 {
		return CampaignReport{}, fmt.Errorf("faultinject: campaign needs a positive access window")
	}
	if !cfg.Spec.Enabled() {
		return CampaignReport{}, fmt.Errorf("faultinject: campaign spec injects nothing")
	}
	if cfg.NC == 0 {
		cfg.NC = 8
	}
	if cfg.RecomputeEvery == 0 {
		cfg.RecomputeEvery = uint64(cfg.Accesses / 8)
		if cfg.RecomputeEvery < 4096 {
			cfg.RecomputeEvery = 4096
		}
	}
	if cfg.FaultAccesses == 0 {
		cfg.FaultAccesses = uint64(cfg.Accesses) / 2
	}
	wholeRun := cfg.FaultAccesses >= uint64(cfg.Accesses)
	if cfg.HitRateEnvelope == 0 {
		cfg.HitRateEnvelope = 0.15
	}
	if cfg.ReconvergeWindows == 0 {
		cfg.ReconvergeWindows = 3
	}
	if cfg.PDTolerance == 0 {
		cfg.PDTolerance = 4
	}

	spec := experiments.PolicySpec{
		Name: fmt.Sprintf("PDP-%d", cfg.NC), Bypass: true,
		New: func(s, w int, _ uint64) cache.Policy {
			return core.New(core.Config{Sets: s, Ways: w, NC: cfg.NC, Bypass: true, RecomputeEvery: cfg.RecomputeEvery})
		},
	}

	// The fault window: the trace wrapper's clock counts every record it
	// emits, warm-up included, while the PDP injector attaches after
	// warm-up — so the two fault windows close at the same architectural
	// point only when the trace Until is offset by the warm-up length.
	warm := uint64(experiments.Warmup(cfg.Accesses))
	traceSpec, polSpec := cfg.Spec, cfg.Spec
	if wholeRun {
		traceSpec.Until, polSpec.Until = 0, 0
	} else {
		traceSpec.Until = warm + cfg.FaultAccesses
		polSpec.Until = cfg.FaultAccesses
	}
	rep := NewReporter(cfg.Journal)

	// The clean reference and the faulty run share only the (internally
	// synchronized) journal, so with Jobs >= 2 they execute concurrently.
	var clean, faulty experiments.RunResult
	var cleanChk, faultyChk *Checker
	runs := []func(){
		func() {
			clean = experiments.RunSingleTelemetry(cfg.Bench, spec, cfg.Accesses, cfg.Seed, experiments.TelemetryOptions{
				Attach: func(_ *cache.Cache, pol cache.Policy) cache.Monitor {
					cleanChk = NewChecker(pdpOf(pol))
					return nil
				},
			})
		},
		func() {
			faulty = experiments.RunSingleTelemetry(WrapBenchmark(cfg.Bench, traceSpec, rep), spec, cfg.Accesses, cfg.Seed,
				experiments.TelemetryOptions{
					Journal: cfg.Journal,
					Attach: func(_ *cache.Cache, pol cache.Policy) cache.Monitor {
						p := pdpOf(pol)
						faultyChk = NewChecker(p)
						return NewPDPInjector(p, polSpec, rep)
					},
				})
		},
	}
	jobs := cfg.Jobs
	if jobs == 0 {
		jobs = 1
	}
	if err := parallel.ForEach(jobs, len(runs), func(i int) error {
		runs[i]()
		return nil
	}); err != nil {
		return CampaignReport{}, err
	}

	r := CampaignReport{
		Clean: clean, Faulty: faulty,
		CleanPDs: cleanChk.PDs(), FaultyPDs: faultyChk.PDs(),
		FaultCounts: rep.Counts(), TotalFaults: rep.Total(),
		Violations: append(cleanChk.Violations(), faultyChk.Violations()...),
		Envelope:   cfg.HitRateEnvelope,
	}
	hr := func(res experiments.RunResult) float64 {
		if res.Stats.Accesses == 0 {
			return 0
		}
		return float64(res.Stats.Hits) / float64(res.Stats.Accesses)
	}
	r.HitRateDelta = hr(clean) - hr(faulty)
	if r.HitRateDelta < 0 {
		r.HitRateDelta = -r.HitRateDelta
	}
	r.EnvelopeOK = r.HitRateDelta <= cfg.HitRateEnvelope

	if wholeRun {
		// Faults never stop: the re-convergence check is vacuous.
		r.FaultEndSeq, r.ReconvergedAt, r.ReconvergeOK = 0, -1, true
	} else {
		// Recompute seq s fires at policy access s*RecomputeEvery; the
		// checker only sees the measured window, whose first recompute is
		// policy-global ordinal floor(warm/RE)+1. Faults stop at policy
		// access warm+FaultAccesses.
		globalEnd := int((warm+cfg.FaultAccesses)/cfg.RecomputeEvery) + 1
		r.FaultEndSeq = globalEnd - int(warm/cfg.RecomputeEvery)
		r.ReconvergedAt = Reconvergence(r.CleanPDs, r.FaultyPDs, r.FaultEndSeq, cfg.PDTolerance)
		r.ReconvergeOK = r.ReconvergedAt >= 0 && r.ReconvergedAt <= r.FaultEndSeq+cfg.ReconvergeWindows
		if r.ReconvergeOK && cfg.Journal != nil {
			cfg.Journal.Append(telemetry.RecoveryRecord{
				Kind: telemetry.KindRecovery, Name: cfg.Bench.Name, Cause: "pd_reconverge",
				Detail: fmt.Sprintf("PD rejoined clean trajectory at recompute %d (fault window closed at %d)",
					r.ReconvergedAt, r.FaultEndSeq),
			})
		}
	}
	return r, nil
}

// pdpOf unwraps a dynamic PDP from a policy (nil otherwise).
func pdpOf(pol cache.Policy) *core.PDP {
	p, _ := pol.(*core.PDP)
	return p
}
