package faultinject

import (
	"fmt"

	"pdp/internal/trace"
	"pdp/internal/workload"
)

// addrBits is the address-bit range corruption draws from: bits 0..33
// cover the byte offset, set index and low tag bits of the repository's
// geometries, so flips hit every structural field of the address.
const addrBits = 34

// faultGen wraps a trace.Generator with record-level fault injection.
type faultGen struct {
	g    trace.Generator
	spec Spec
	seed uint64
	rng  *trace.RNG
	rep  *Reporter
	prev trace.Access
	have bool
	n    uint64 // records emitted
}

// WrapGenerator wraps g with the spec's trace faults, deterministic in
// seed (derived from spec.Seed so distinct generators in one run draw
// distinct streams). With no trace faults configured it returns g
// unchanged. Faults are reported to rep (nil just injects silently).
func WrapGenerator(g trace.Generator, spec Spec, seed uint64, rep *Reporter) trace.Generator {
	if !spec.TraceEnabled() {
		return g
	}
	s := spec.Seed ^ seed ^ 0xFA17FA17
	return &faultGen{g: g, spec: spec, seed: s, rng: trace.NewRNG(s), rep: rep}
}

// Name implements trace.Generator.
func (f *faultGen) Name() string { return f.g.Name() + "+faults" }

// Reset implements trace.Generator, restoring the injector's random
// stream so the faulty trace replays bit-identically.
func (f *faultGen) Reset() {
	f.g.Reset()
	f.rng = trace.NewRNG(f.seed)
	f.prev, f.have, f.n = trace.Access{}, false, 0
}

// Next implements trace.Generator.
func (f *faultGen) Next() trace.Access {
	f.n++
	if !f.spec.active(f.n) {
		return f.g.Next()
	}
	if f.spec.TraceFail > 0 && f.n == f.spec.TraceFail {
		f.rep.Record("trace.fail", f.n, "injected mid-stream generator failure")
		panic(&InjectedError{Site: "trace.fail", Record: f.n})
	}
	if f.have && f.spec.TraceDup > 0 && f.rng.Bernoulli(f.spec.TraceDup) {
		f.rep.Record("trace.dup", f.n, "")
		return f.prev
	}
	a := f.g.Next()
	for f.spec.TraceDrop > 0 && f.rng.Bernoulli(f.spec.TraceDrop) {
		f.rep.Record("trace.drop", f.n, "")
		a = f.g.Next()
	}
	if f.spec.TraceCorrupt > 0 && f.rng.Bernoulli(f.spec.TraceCorrupt) {
		bit := uint(f.rng.Intn(addrBits))
		a.Addr ^= 1 << bit
		f.rep.Record("trace.corrupt", f.n, fmt.Sprintf("flipped addr bit %d", bit))
	}
	f.prev, f.have = a, true
	return a
}

// WrapBenchmark returns b with its generator wrapped by the spec's trace
// faults (see WrapGenerator); the clean benchmark is untouched.
func WrapBenchmark(b workload.Benchmark, spec Spec, rep *Reporter) workload.Benchmark {
	if !spec.TraceEnabled() {
		return b
	}
	build := b.Build
	b.Build = func(sets int, base, seed uint64) trace.Generator {
		return WrapGenerator(build(sets, base, seed), spec, seed^base*0x9E37, rep)
	}
	return b
}

// WrapMix wraps every benchmark of a multi-programmed mix.
func WrapMix(m workload.Mix, spec Spec, rep *Reporter) workload.Mix {
	if !spec.TraceEnabled() {
		return m
	}
	benchs := make([]workload.Benchmark, len(m.Benchs))
	for i, b := range m.Benchs {
		benchs[i] = WrapBenchmark(b, spec, rep)
	}
	m.Benchs = benchs
	return m
}
