package faultinject

import (
	"testing"

	"pdp/internal/trace"
)

// seqGen emits Addr = n*LineSize, a deterministic base stream for tests.
type seqGen struct{ n uint64 }

func (s *seqGen) Next() trace.Access {
	s.n++
	return trace.Access{Addr: s.n * trace.LineSize, PC: s.n}
}
func (s *seqGen) Reset()       { s.n = 0 }
func (s *seqGen) Name() string { return "seq" }

func collect(g trace.Generator, n int) []trace.Access {
	out := make([]trace.Access, n)
	for i := range out {
		out[i] = g.Next()
	}
	return out
}

func TestWrapGeneratorPassthrough(t *testing.T) {
	g := WrapGenerator(&seqGen{}, Spec{}, 1, nil)
	if _, ok := g.(*seqGen); !ok {
		t.Fatalf("no-fault spec should return the generator unchanged, got %T", g)
	}
}

func TestFaultGenDeterministicReplay(t *testing.T) {
	spec := Spec{TraceCorrupt: 0.05, TraceDup: 0.05, TraceDrop: 0.05, Seed: 9}
	g := WrapGenerator(&seqGen{}, spec, 3, nil)
	first := collect(g, 2000)
	g.Reset()
	second := collect(g, 2000)
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("record %d differs after Reset: %+v vs %+v", i, first[i], second[i])
		}
	}
}

func TestFaultGenCorruptsSomeAddresses(t *testing.T) {
	rep := NewReporter(nil)
	spec := Spec{TraceCorrupt: 0.1, Seed: 5}
	g := WrapGenerator(&seqGen{}, spec, 1, rep)
	clean := collect(&seqGen{}, 5000)
	faulty := collect(g, 5000)
	diff := 0
	for i := range clean {
		if clean[i].Addr != faulty[i].Addr {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("p=0.1 corruption produced zero corrupted records in 5000")
	}
	if got := rep.Count("trace.corrupt"); uint64(diff) != got {
		t.Fatalf("corrupted %d records but reporter counted %d", diff, got)
	}
}

func TestFaultGenDupReplaysPrevious(t *testing.T) {
	spec := Spec{TraceDup: 0.2, Seed: 11}
	g := WrapGenerator(&seqGen{}, spec, 1, nil)
	recs := collect(g, 5000)
	dups := 0
	for i := 1; i < len(recs); i++ {
		if recs[i] == recs[i-1] {
			dups++
		}
	}
	if dups == 0 {
		t.Fatal("p=0.2 duplication produced zero duplicates in 5000")
	}
}

func TestFaultGenDropSkipsRecords(t *testing.T) {
	rep := NewReporter(nil)
	spec := Spec{TraceDrop: 0.2, Seed: 13}
	base := &seqGen{}
	g := WrapGenerator(base, spec, 1, rep)
	collect(g, 1000)
	// Dropped records are pulled from the base stream and discarded, so the
	// base generator must have advanced past 1000.
	if base.n <= 1000 {
		t.Fatalf("base advanced only %d records; drops should consume extras", base.n)
	}
	if base.n != 1000+rep.Count("trace.drop") {
		t.Fatalf("base at %d, want 1000 + %d drops", base.n, rep.Count("trace.drop"))
	}
}

func TestFaultGenMidStreamFailure(t *testing.T) {
	spec := Spec{TraceFail: 100, Seed: 1}
	g := WrapGenerator(&seqGen{}, spec, 1, nil)
	defer func() {
		v := recover()
		ie, ok := v.(*InjectedError)
		if !ok {
			t.Fatalf("recovered %T (%v), want *InjectedError", v, v)
		}
		if ie.Record != 100 {
			t.Fatalf("failed at record %d, want 100", ie.Record)
		}
	}()
	collect(g, 200)
	t.Fatal("mid-stream failure did not fire")
}

func TestFaultGenUntilStopsFaults(t *testing.T) {
	rep := NewReporter(nil)
	spec := Spec{TraceCorrupt: 0.5, Until: 500, Seed: 3}
	g := WrapGenerator(&seqGen{}, spec, 1, rep)
	clean := collect(&seqGen{}, 3000)
	faulty := collect(g, 3000)
	for i := 500; i < 3000; i++ {
		if clean[i] != faulty[i] {
			t.Fatalf("record %d corrupted after until=500", i+1)
		}
	}
	if rep.Total() == 0 {
		t.Fatal("no faults before the window closed")
	}
}

func TestReconvergence(t *testing.T) {
	clean := []int{32, 32, 48, 48, 48, 48}
	faulty := []int{32, 90, 90, 50, 48, 48}
	if at := Reconvergence(clean, faulty, 2, 4); at != 4 {
		t.Fatalf("Reconvergence = %d, want 4", at)
	}
	// Never rejoins.
	if at := Reconvergence(clean, []int{1, 1, 1, 1, 1, 1}, 2, 4); at != -1 {
		t.Fatalf("diverged trajectories reconverged at %d", at)
	}
	// Converged from the start of the window.
	if at := Reconvergence(clean, clean, 3, 0); at != 3 {
		t.Fatalf("identical trajectories = %d, want 3", at)
	}
}
