package kvserver

import (
	"encoding/json"
	"net/http"
	"strings"

	"pdp/internal/cluster"
)

// routeKV is the ownership-aware front of the /kv/ data path. Without a
// cluster it is handleKV. With one, a key's owner is resolved on the
// ring: owned keys are served locally; non-owned keys are proxied to
// their owner (GETs through the singleflight fill table, mutations
// directly). A request already forwarded once (it carries the
// cluster.HopHeader) is served locally no matter what the local ring
// says, so two nodes with momentarily divergent views bounce a request
// at most once instead of cycling it.
func (s *Server) routeKV(w http.ResponseWriter, r *http.Request) {
	cl := s.cfg.Cluster
	if cl == nil {
		s.handleKV(w, r)
		return
	}
	key := strings.TrimPrefix(r.URL.Path, "/kv/")
	if key == "" {
		http.Error(w, "missing key", http.StatusBadRequest)
		return
	}
	w.Header().Set("X-Cluster-Node", cl.Self())
	if r.Header.Get(cluster.HopHeader) != "" {
		if _, local, _ := cl.Owner(key); !local {
			// The sender thought we own this key; we disagree. Terminate
			// here anyway — the disagreement is a transient view split and
			// local service keeps the request loop-free.
			cl.HopTerminated()
		}
		s.handleKV(w, r)
		return
	}
	owner, local, ok := cl.Owner(key)
	if !ok || local {
		s.handleKV(w, r)
		return
	}
	w.Header().Set("X-Cluster-Owner", owner)
	s.proxyKV(w, r, owner, key)
}

// proxyKV relays one exchange to the key's owner. A peer failure
// (breaker open, transport error, timeout) falls back to the local
// cache: during the window between a peer dying and the probe loop
// ejecting it, requests for its keys still answer — possibly a miss,
// never an error.
func (s *Server) proxyKV(w http.ResponseWriter, r *http.Request, owner, key string) {
	cl := s.cfg.Cluster
	ctx := r.Context()
	switch r.Method {
	case http.MethodGet:
		resp, err := cl.FetchGet(ctx, owner, key)
		if err != nil {
			cl.FallbackLocal()
			s.handleKV(w, r)
			return
		}
		writePeerResponse(w, resp)
	case http.MethodPut, http.MethodPost:
		// Read the body once into a pooled buffer, so the bytes survive
		// for the local fallback if the forward fails.
		bp := kvBufs.Get().(*[]byte)
		body, err := appendLimited((*bp)[:0], r.Body, s.cfg.MaxValueBytes+1)
		*bp = body[:0]
		if err != nil {
			kvBufs.Put(bp)
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if int64(len(body)) > s.cfg.MaxValueBytes {
			kvBufs.Put(bp)
			http.Error(w, "value too large", http.StatusRequestEntityTooLarge)
			return
		}
		resp, ferr := cl.Forward(ctx, owner, http.MethodPut, key, body)
		if ferr != nil {
			cl.FallbackLocal()
			if !s.cache.Put(key, body) {
				w.Header().Set("X-Cache", "deny")
			}
			kvBufs.Put(bp)
			w.WriteHeader(http.StatusNoContent)
			return
		}
		kvBufs.Put(bp)
		writePeerResponse(w, resp)
	case http.MethodDelete:
		resp, err := cl.Forward(ctx, owner, http.MethodDelete, key, nil)
		if err != nil {
			cl.FallbackLocal()
			s.handleKV(w, r)
			return
		}
		writePeerResponse(w, resp)
	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

// writePeerResponse relays a buffered peer answer, preserving the
// owner's X-Cache attribution so clients and the load driver see where
// the hit or miss actually happened.
func writePeerResponse(w http.ResponseWriter, resp *cluster.PeerResponse) {
	if resp.XCache != "" {
		w.Header().Set("X-Cache", resp.XCache)
	}
	if resp.Status == http.StatusOK {
		w.Header().Set("Content-Type", "application/octet-stream")
	}
	w.WriteHeader(resp.Status)
	if len(resp.Body) > 0 {
		w.Write(resp.Body)
	}
}

// handleClusterRing serves the node's cluster view: membership with
// aliveness and breaker state, routing counters, and — with ?key=K —
// the owner the local ring resolves K to (what the smoke script uses to
// assert survivor agreement after a kill).
func (s *Server) handleClusterRing(w http.ResponseWriter, r *http.Request) {
	v := s.cfg.Cluster.StatsView(r.URL.Query().Get("key"))
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		s.serveError("/cluster/ring", requestID(r), err)
	}
}
