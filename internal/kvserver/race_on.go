//go:build race

package kvserver

// raceEnabled gates perf-budget assertions that are meaningless under
// the race detector's instrumentation overhead.
const raceEnabled = true
