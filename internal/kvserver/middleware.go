package kvserver

import (
	"context"
	"net/http"
	"strconv"
	"sync"

	"pdp/internal/telemetry"
)

// reqIDKey carries the request ID through the handler's context so error
// paths can attribute journal records to the request that hit them.
type reqIDKey struct{}

// requestID returns the X-Request-Id assigned to r by the middleware (""
// outside an instrumented handler).
func requestID(r *http.Request) string {
	id, _ := r.Context().Value(reqIDKey{}).(string)
	return id
}

// statusWriter captures the status code a handler writes; an untouched
// writer reports 200, matching net/http's implicit WriteHeader.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// routeMetrics is the per-route instrumentation state: one latency
// histogram (resolved once at registration) and a lazily grown cache of
// per-method/per-status request counters, so the steady-state request
// path costs two atomic updates and one sync.Map load — no registry
// mutex, no formatting.
type routeMetrics struct {
	name    string
	latency *telemetry.Histogram
	reqs    sync.Map // "METHOD status" -> *telemetry.Counter
	reg     *telemetry.Registry
}

// counter resolves (caching) the request counter for one method/status.
func (m *routeMetrics) counter(method string, status int) *telemetry.Counter {
	key := method + " " + strconv.Itoa(status)
	if c, ok := m.reqs.Load(key); ok {
		return c.(*telemetry.Counter)
	}
	c := m.reg.Counter(`http.requests{route="` + m.name + `",method="` + method +
		`",status="` + strconv.Itoa(status) + `"}`)
	actual, _ := m.reqs.LoadOrStore(key, c)
	return actual.(*telemetry.Counter)
}

// instrument wraps a handler with the serving-path observability
// middleware: a per-route nanosecond latency histogram, a
// route/method/status request counter, and an X-Request-Id response
// header (the client's, if it sent one, else a generated id) that is
// also threaded into the request context for journal attribution.
func (s *Server) instrument(route string, h http.HandlerFunc) http.Handler {
	m := &routeMetrics{
		name:    route,
		latency: s.cfg.Registry.Histogram(`http.latency_ns{route="` + route + `"}`),
		reg:     s.cfg.Registry,
	}
	s.routes = append(s.routes, m)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get("X-Request-Id")
		if id == "" {
			id = "r-" + strconv.FormatUint(s.reqSeq.Add(1), 10)
		}
		w.Header().Set("X-Request-Id", id)
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		t := telemetry.StartTimer()
		h(sw, r.WithContext(context.WithValue(r.Context(), reqIDKey{}, id)))
		t.ObserveInto(m.latency)
		m.counter(r.Method, sw.status).Inc()
	})
}

// getOnly rejects every method but GET with 405 (and an Allow header, as
// RFC 9110 requires) before the wrapped handler runs. Composed inside
// instrument, so rejected requests still count in the route's metrics.
func getOnly(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			w.Header().Set("Allow", http.MethodGet)
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		h(w, r)
	}
}
