package kvserver

import (
	"context"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"

	"pdp/internal/telemetry"
)

// reqIDKey carries the request ID through the handler's context so error
// paths can attribute journal records to the request that hit them.
type reqIDKey struct{}

// requestID returns the X-Request-Id assigned to r by the middleware (""
// outside an instrumented handler).
func requestID(r *http.Request) string {
	id, _ := r.Context().Value(reqIDKey{}).(string)
	return id
}

// statusWriter captures the status code a handler writes; an untouched
// writer reports 200, matching net/http's implicit WriteHeader. It
// passes the optional upgrade interfaces net/http's writer implements —
// http.Flusher and io.ReaderFrom — through to the wrapped writer, so
// streaming handlers and sendfile-style copies keep working under the
// instrumented path instead of silently losing the capability to the
// wrapper's narrower static type.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// Flush forwards to the underlying writer's http.Flusher, if any, so
// `w.(http.Flusher)` keeps succeeding inside instrumented handlers.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// ReadFrom forwards to the underlying writer's io.ReaderFrom (net/http's
// response writer implements it to enable sendfile), falling back to a
// plain copy when the wrapped writer doesn't.
func (w *statusWriter) ReadFrom(r io.Reader) (int64, error) {
	if rf, ok := w.ResponseWriter.(io.ReaderFrom); ok {
		return rf.ReadFrom(r)
	}
	return io.Copy(struct{ io.Writer }{w.ResponseWriter}, r)
}

// Unwrap exposes the wrapped writer, following the convention of
// http.ResponseController (which uses it to reach interfaces the wrapper
// doesn't forward itself).
func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// methodOther is the clamp label for request methods outside the known
// set. Prometheus series are minted per (route, method, status); keying
// them on the raw client method would let `curl -X anything` mint
// unbounded series, so unknown methods collapse into this one label.
const methodOther = "OTHER"

// knownMethods are the canonical labels; the index of a method here is
// its slot in the counter-cache key. The last slot is the OTHER clamp.
var knownMethods = [...]string{
	http.MethodGet, http.MethodHead, http.MethodPost, http.MethodPut,
	http.MethodDelete, http.MethodOptions, http.MethodPatch,
	http.MethodConnect, http.MethodTrace, methodOther,
}

// methodIndex maps a raw request method to its knownMethods slot,
// clamping anything unknown (including casing variants — Go servers see
// methods verbatim) to the OTHER slot.
func methodIndex(method string) int {
	for i, m := range knownMethods[:len(knownMethods)-1] {
		if m == method {
			return i
		}
	}
	return len(knownMethods) - 1
}

// routeMetrics is the per-route instrumentation state: one latency
// histogram (resolved once at registration) and a lazily grown cache of
// per-method/per-status request counters behind an atomic copy-on-write
// map keyed by the packed (method slot, status) integer — so the
// steady-state request path costs one atomic load and an integer map
// lookup: no registry mutex, no formatting, no key allocation.
type routeMetrics struct {
	name    string
	latency *telemetry.Histogram
	reg     *telemetry.Registry

	mu   sync.Mutex // guards slow-path map growth
	reqs atomic.Pointer[map[uint32]*telemetry.Counter]
}

// counterKey packs a method slot and status into the cache key.
func counterKey(mi, status int) uint32 {
	return uint32(mi)<<16 | uint32(uint16(status))
}

// counter resolves (caching) the request counter for one method/status.
// The method label is clamped to the known set, capping the series
// cardinality per route at len(knownMethods) x distinct statuses served.
func (m *routeMetrics) counter(method string, status int) *telemetry.Counter {
	mi := methodIndex(method)
	key := counterKey(mi, status)
	if mp := m.reqs.Load(); mp != nil {
		if c, ok := (*mp)[key]; ok {
			return c
		}
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	old := m.reqs.Load()
	if old != nil {
		if c, ok := (*old)[key]; ok {
			return c
		}
	}
	c := m.reg.Counter(`http.requests{route="` + m.name + `",method="` + knownMethods[mi] +
		`",status="` + strconv.Itoa(status) + `"}`)
	next := make(map[uint32]*telemetry.Counter, 8)
	if old != nil {
		for k, v := range *old {
			next[k] = v
		}
	}
	next[key] = c
	m.reqs.Store(&next)
	return c
}

// instrument wraps a handler with the serving-path observability
// middleware: a per-route nanosecond latency histogram, a
// route/method/status request counter, and an X-Request-Id response
// header (the client's, if it sent one, else a generated id) that is
// also threaded into the request context for journal attribution.
func (s *Server) instrument(route string, h http.HandlerFunc) http.Handler {
	m := &routeMetrics{
		name:    route,
		latency: s.cfg.Registry.Histogram(`http.latency_ns{route="` + route + `"}`),
		reg:     s.cfg.Registry,
	}
	s.routes = append(s.routes, m)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get("X-Request-Id")
		if id == "" {
			id = "r-" + strconv.FormatUint(s.reqSeq.Add(1), 10)
		}
		w.Header().Set("X-Request-Id", id)
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		t := telemetry.StartTimer()
		h(sw, r.WithContext(context.WithValue(r.Context(), reqIDKey{}, id)))
		t.ObserveInto(m.latency)
		m.counter(r.Method, sw.status).Inc()
	})
}

// getOnly rejects every method but GET with 405 (and an Allow header, as
// RFC 9110 requires) before the wrapped handler runs. Composed inside
// instrument, so rejected requests still count in the route's metrics.
func getOnly(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			w.Header().Set("Allow", http.MethodGet)
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		h(w, r)
	}
}
