package kvserver

// POST /batch: the wire face of the batched serving pipeline. The body is
// a JSON array of GET/PUT/DELETE ops; the answer is a JSON array of
// per-op results in input order. One batch takes one admission-gate slot
// (a shed answers 503 + Retry-After for the whole batch), locally owned
// ops run through kvcache.ExecBatch (one shard-lock acquisition per shard
// group), and — with a cluster attached — peer-owned ops are split by
// ring ownership and fanned out as concurrent per-peer sub-batches
// through the pooled breaker clients, hop-capped exactly like /kv/
// proxying. Partial failure is per op: an oversized value books
// "too_large", a shedding peer books "shed" on its ops, and a dead peer's
// ops fall back to local execution — the rest of the batch is unaffected.

import (
	"encoding/json"
	"net/http"
	"sync"
	"time"

	"pdp/internal/cluster"
	"pdp/internal/kvcache"
)

// wireOp is one operation of a /batch request: op is "get", "put" or
// "delete"; value (base64 in JSON, present for put) is the bytes to
// store.
type wireOp struct {
	Op    string `json:"op"`
	Key   string `json:"key"`
	Value []byte `json:"value,omitempty"`
}

// wireResult is one operation's row in a /batch response. Status is the
// kvcache outcome vocabulary (hit, miss, stored, denied, deleted,
// not_found) plus the serving-layer partial-failure statuses: too_large
// (value over MaxValueBytes), shed (the owning peer's gate refused the
// sub-batch — retryable), and error (malformed op, carrying Error).
// Node attributes the node that executed the op.
type wireResult struct {
	Status string `json:"status"`
	Value  []byte `json:"value,omitempty"`
	Node   string `json:"node,omitempty"`
	Error  string `json:"error,omitempty"`
}

// Wire statuses added by the serving layer on top of BatchStatus.String.
const (
	statusTooLarge = "too_large"
	statusShed     = "shed"
	statusError    = "error"
)

// handleBatch decodes, partitions, executes and reassembles one batch.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	t0 := time.Now()
	bp := kvBufs.Get().(*[]byte)
	body, err := appendLimited((*bp)[:0], r.Body, s.cfg.MaxBatchBytes+1)
	if err != nil {
		*bp = body[:0]
		kvBufs.Put(bp)
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if int64(len(body)) > s.cfg.MaxBatchBytes {
		*bp = body[:0]
		kvBufs.Put(bp)
		http.Error(w, "batch body too large", http.StatusRequestEntityTooLarge)
		return
	}
	var ops []wireOp
	derr := json.Unmarshal(body, &ops)
	*bp = body[:0]
	kvBufs.Put(bp)
	if derr != nil {
		http.Error(w, "bad batch body: "+derr.Error(), http.StatusBadRequest)
		return
	}
	n := len(ops)
	if n == 0 {
		http.Error(w, "empty batch", http.StatusBadRequest)
		return
	}
	if n > s.cfg.MaxBatchOps {
		http.Error(w, "batch exceeds max ops", http.StatusRequestEntityTooLarge)
		return
	}
	s.mBatches.Inc()
	s.mBatchOps.Add(uint64(n))
	s.hBatchSize.Observe(uint64(n))

	// Partition: per-op validation failures and oversized values resolve
	// immediately (partial failure, the rest proceeds); valid ops split
	// into the local group and per-owner groups. A batch that already
	// hopped once executes entirely locally — the same single-forward cap
	// as /kv/.
	cl := s.cfg.Cluster
	node := ""
	clustered := false
	if cl != nil {
		node = cl.Self()
		w.Header().Set("X-Cluster-Node", node)
		clustered = r.Header.Get(cluster.HopHeader) == ""
	}
	out := make([]wireResult, n)
	localIdx := make([]int, 0, n)
	var peerIdx map[string][]int
	for i := range ops {
		op := &ops[i]
		if op.Key == "" {
			out[i] = wireResult{Status: statusError, Node: node, Error: "missing key"}
			continue
		}
		switch op.Op {
		case "get", "delete":
		case "put":
			if int64(len(op.Value)) > s.cfg.MaxValueBytes {
				out[i] = wireResult{Status: statusTooLarge, Node: node}
				continue
			}
		default:
			out[i] = wireResult{Status: statusError, Node: node, Error: "unknown op " + op.Op}
			continue
		}
		if clustered {
			if owner, local, ok := cl.Owner(op.Key); ok && !local {
				if peerIdx == nil {
					peerIdx = make(map[string][]int)
				}
				peerIdx[owner] = append(peerIdx[owner], i)
				continue
			}
		}
		localIdx = append(localIdx, i)
	}

	// Scatter: one goroutine per owning peer, the local group on this
	// goroutine in parallel. Gather: each leg writes only its own ops'
	// slots, so reassembly is just the shared out slice in input order.
	if len(peerIdx) > 0 {
		var wg sync.WaitGroup
		for owner, idx := range peerIdx {
			wg.Add(1)
			go func(owner string, idx []int) {
				defer wg.Done()
				s.execBatchRemote(r, ops, idx, out, owner)
			}(owner, idx)
		}
		s.execBatchLocal(ops, localIdx, out, node)
		wg.Wait()
	} else {
		s.execBatchLocal(ops, localIdx, out, node)
	}

	// Amortized per-op latency: the batch's wall time booked once per op.
	if el := uint64(time.Since(t0).Nanoseconds()); n > 0 {
		s.hBatchOpLat.ObserveN(el/uint64(n), uint64(n))
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(out); err != nil {
		s.serveError("/batch", requestID(r), err)
	}
}

// execBatchLocal runs one index-set of ops through the cache's grouped
// batch executor and books the outcomes, attributed to node.
func (s *Server) execBatchLocal(ops []wireOp, idx []int, out []wireResult, node string) {
	if len(idx) == 0 {
		return
	}
	bops := make([]kvcache.BatchOp, len(idx))
	for j, i := range idx {
		switch ops[i].Op {
		case "get":
			bops[j] = kvcache.BatchOp{Kind: kvcache.BatchGet, Key: ops[i].Key}
		case "put":
			bops[j] = kvcache.BatchOp{Kind: kvcache.BatchPut, Key: ops[i].Key, Value: ops[i].Value}
		case "delete":
			bops[j] = kvcache.BatchOp{Kind: kvcache.BatchDelete, Key: ops[i].Key}
		}
	}
	res := make([]kvcache.BatchResult, len(idx))
	// The dst buffer is not pooled: hit values alias it and must survive
	// until the response is encoded.
	s.cache.ExecBatch(bops, res, nil)
	for j, i := range idx {
		out[i] = wireResult{Status: res[j].Status.String(), Value: res[j].Value, Node: node}
	}
}

// execBatchRemote forwards one owner's sub-batch and maps the peer's
// answers back to the original slots. A shedding peer (503) books "shed"
// per op — the client's retry budget decides what to do. Any other
// failure (breaker open, transport error, bad answer) falls back to local
// execution, the same availability bridge /kv/ proxying uses while the
// probe loop catches up with a dead peer.
func (s *Server) execBatchRemote(r *http.Request, ops []wireOp, idx []int, out []wireResult, owner string) {
	cl := s.cfg.Cluster
	sub := make([]wireOp, len(idx))
	for j, i := range idx {
		sub[j] = ops[i]
	}
	if body, err := json.Marshal(sub); err == nil {
		// Base64 inflates each value by 4/3; the rest of a result row is
		// small and bounded.
		maxResp := int64(len(idx))*(s.cfg.MaxValueBytes*4/3+512) + 64
		resp, ferr := cl.ForwardBatch(r.Context(), owner, body, maxResp)
		if ferr == nil {
			switch resp.Status {
			case http.StatusOK:
				var subRes []wireResult
				if json.Unmarshal(resp.Body, &subRes) == nil && len(subRes) == len(idx) {
					for j, i := range idx {
						out[i] = subRes[j]
					}
					return
				}
			case http.StatusServiceUnavailable:
				for _, i := range idx {
					out[i] = wireResult{Status: statusShed, Node: owner}
				}
				return
			}
		}
	}
	cl.FallbackLocal()
	s.execBatchLocal(ops, idx, out, cl.Self())
}
