package kvserver

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"testing"
	"time"

	"pdp/internal/cluster"
	"pdp/internal/kvcache"
	"pdp/internal/telemetry"
)

// TestHealthExemptFromGate is the probe-path regression test: with the
// admission gate fully saturated by a stalled data-path request, /healthz
// and /readyz must still answer immediately — they are what the cluster
// probe loop (and any load balancer) uses to tell "overloaded" from
// "dead", so shedding them would turn every overload into an ejection.
func TestHealthExemptFromGate(t *testing.T) {
	_, base := startServer(t, kvcache.Config{Shards: 2, Sets: 16, Ways: 4}, Config{
		MaxInflight: 1,
	})

	// Occupy the gate's only slot with a PUT whose body never arrives:
	// the handler is admitted, then blocks reading the request body.
	pr, pw := io.Pipe()
	defer pw.Close()
	req, _ := http.NewRequest(http.MethodPut, base+"/kv/stall", pr)
	req.ContentLength = -1
	stalled := make(chan struct{})
	go func() {
		defer close(stalled)
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()

	// Wait until the gate really is full: a deadline-free GET sheds 503.
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(base + "/kv/probe")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusServiceUnavailable {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("gate never saturated: last /kv/ status %d", resp.StatusCode)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The data path sheds; the probe routes must not.
	hc := &http.Client{Timeout: 2 * time.Second}
	for _, route := range []string{"/healthz", "/readyz"} {
		resp, err := hc.Get(base + route)
		if err != nil {
			t.Fatalf("%s under saturated gate: %v", route, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s under saturated gate: %s %q", route, resp.Status, body)
		}
	}

	// Release the stalled request so shutdown is clean.
	pw.CloseWithError(io.ErrUnexpectedEOF)
	<-stalled
}

// clusterNode is one member of an in-process cluster: its cache, server
// and pre-bound base URL.
type clusterNode struct {
	cache *kvcache.Cache
	srv   *Server
	base  string
}

// startCluster boots n kvservers wired into one consistent-hash ring.
// Listeners are bound first so every node knows the full peer list
// before any server starts.
func startCluster(t *testing.T, n int) []*clusterNode {
	t.Helper()
	lns := make([]net.Listener, n)
	urls := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		urls[i] = "http://" + ln.Addr().String()
	}
	nodes := make([]*clusterNode, n)
	for i := range nodes {
		reg := telemetry.NewRegistry()
		cache, err := kvcache.New(kvcache.Config{Shards: 2, Sets: 64, Ways: 4, Registry: reg})
		if err != nil {
			t.Fatal(err)
		}
		cl, err := cluster.New(cluster.Config{
			Self:       urls[i],
			Peers:      urls,
			ProbeEvery: 50 * time.Millisecond,
			EjectAfter: 2,
			Registry:   reg,
		})
		if err != nil {
			t.Fatal(err)
		}
		srv, err := New(cache, Config{
			Addr:     urls[i],
			Listener: lns[i],
			Cluster:  cl,
			Registry: reg,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := srv.Start(context.Background()); err != nil {
			t.Fatal(err)
		}
		nodes[i] = &clusterNode{cache: cache, srv: srv, base: urls[i]}
	}
	t.Cleanup(func() {
		for _, nd := range nodes {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			nd.srv.Shutdown(ctx)
			cancel()
		}
	})
	return nodes
}

// TestClusterRouting: a PUT through any node lands on the key's owner,
// a GET through any other node finds it there (attributed as the
// owner's hit), and DELETE removes it everywhere it matters.
func TestClusterRouting(t *testing.T) {
	nodes := startCluster(t, 3)
	ring := nodes[0].srv.cfg.Cluster.Ring()

	for i := 0; i < 20; i++ {
		key := fmt.Sprintf("routed-%d", i)
		val := []byte("v-" + key)
		owner, _ := ring.Owner(key)

		// Write through a node that does NOT own the key.
		var entry *clusterNode
		for _, nd := range nodes {
			if nd.base != owner {
				entry = nd
				break
			}
		}
		req, _ := http.NewRequest(http.MethodPut, entry.base+"/kv/"+key, bytes.NewReader(val))
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusNoContent {
			t.Fatalf("PUT %s via %s: %s", key, entry.base, resp.Status)
		}

		// Read through every node: all three answer with the value, and
		// the proxied answers name the owner.
		for _, nd := range nodes {
			resp, err := http.Get(nd.base + "/kv/" + key)
			if err != nil {
				t.Fatal(err)
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK || !bytes.Equal(body, val) {
				t.Fatalf("GET %s via %s: %s %q", key, nd.base, resp.Status, body)
			}
			if got := resp.Header.Get("X-Cluster-Node"); got != nd.base {
				t.Fatalf("GET %s via %s: X-Cluster-Node=%q", key, nd.base, got)
			}
			if nd.base != owner {
				if got := resp.Header.Get("X-Cluster-Owner"); got != owner {
					t.Fatalf("GET %s via %s: X-Cluster-Owner=%q, want %q", key, nd.base, got, owner)
				}
			}
		}

		// Delete through a non-owner; the owner must drop it.
		req, _ = http.NewRequest(http.MethodDelete, entry.base+"/kv/"+key, nil)
		resp, err = http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusNoContent {
			t.Fatalf("DELETE %s via %s: %s", key, entry.base, resp.Status)
		}
		resp, err = http.Get(owner + "/kv/" + key)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("GET %s on owner after DELETE: %s", key, resp.Status)
		}
	}
}

// TestClusterRingEndpoint: /cluster/ring reports the full membership and
// resolves ?key= to the same owner on every node.
func TestClusterRingEndpoint(t *testing.T) {
	nodes := startCluster(t, 3)
	var owners []string
	for _, nd := range nodes {
		resp, err := http.Get(nd.base + "/cluster/ring?key=some-key")
		if err != nil {
			t.Fatal(err)
		}
		var v cluster.View
		if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if v.Self != nd.base || len(v.Members) != 3 || v.Alive != 3 || v.Owner == "" {
			t.Fatalf("ring view via %s: %+v", nd.base, v)
		}
		owners = append(owners, v.Owner)
	}
	if owners[0] != owners[1] || owners[1] != owners[2] {
		t.Fatalf("nodes disagree on owner: %v", owners)
	}

	// The ring view also shows up in /stats.
	resp, err := http.Get(nodes[0].base + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st struct {
		Cluster *cluster.View `json:"cluster"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Cluster == nil || st.Cluster.Self != nodes[0].base {
		t.Fatalf("/stats cluster section: %+v", st.Cluster)
	}
}

// TestClusterHopTermination: a request already carrying the hop marker
// is served locally even by a non-owner — no second forward, no loop.
func TestClusterHopTermination(t *testing.T) {
	nodes := startCluster(t, 2)
	ring := nodes[0].srv.cfg.Cluster.Ring()
	key := ""
	for i := 0; ; i++ {
		k := fmt.Sprintf("hop-%d", i)
		if o, _ := ring.Owner(k); o == nodes[1].base {
			key = k
			break
		}
	}

	// A hop-marked PUT to the non-owner stores locally.
	req, _ := http.NewRequest(http.MethodPut, nodes[0].base+"/kv/"+key, bytes.NewReader([]byte("x")))
	req.Header.Set(cluster.HopHeader, "1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("hop PUT: %s", resp.Status)
	}
	if _, ok := nodes[0].cache.Get(key); !ok {
		t.Fatal("hop-marked PUT was not stored locally")
	}
	if _, ok := nodes[1].cache.Get(key); ok {
		t.Fatal("hop-marked PUT leaked to the owner")
	}
	v := nodes[0].srv.cfg.Cluster.StatsView("")
	if v.HopTerminated == 0 {
		t.Fatal("hop_terminated counter did not move")
	}
}

// TestClusterFallbackLocal: with a peer dead before the probe loop has
// ejected it, requests for its keys still answer from the local cache
// instead of erroring — the availability bridge across the detection
// window.
func TestClusterFallbackLocal(t *testing.T) {
	// Build a 2-node cluster by hand so node B can be a dead address:
	// bind a listener to learn a free port, then close it immediately.
	lnA, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	lnB, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	urlA := "http://" + lnA.Addr().String()
	urlB := "http://" + lnB.Addr().String()
	lnB.Close()

	reg := telemetry.NewRegistry()
	cache, err := kvcache.New(kvcache.Config{Shards: 2, Sets: 64, Ways: 4, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	cl, err := cluster.New(cluster.Config{
		Self:  urlA,
		Peers: []string{urlA, urlB},
		// Slow probes: the test runs inside the pre-ejection window.
		ProbeEvery:   time.Hour,
		FetchTimeout: 500 * time.Millisecond,
		Registry:     reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(cache, Config{Addr: urlA, Listener: lnA, Cluster: cl, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})

	key := ""
	for i := 0; ; i++ {
		k := fmt.Sprintf("fb-%d", i)
		if o, _ := cl.Ring().Owner(k); o == urlB {
			key = k
			break
		}
	}

	// PUT for a key owned by the dead peer: forwarded, fails, stored
	// locally, still 204.
	req, _ := http.NewRequest(http.MethodPut, urlA+"/kv/"+key, bytes.NewReader([]byte("fallback-value")))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("PUT with dead owner: %s", resp.Status)
	}

	// GET for the same key: proxy fails, local cache answers the value.
	resp, err = http.Get(urlA + "/kv/" + key)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || string(body) != "fallback-value" {
		t.Fatalf("GET with dead owner: %s %q", resp.Status, body)
	}
	if v := cl.StatsView(""); v.FallbackLocal < 2 {
		t.Fatalf("fallback_local = %d, want >= 2", v.FallbackLocal)
	}
}
