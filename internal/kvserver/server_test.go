package kvserver

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"testing"
	"time"

	"pdp/internal/kvcache"
	"pdp/internal/loadgen"
	"pdp/internal/telemetry"
	"pdp/internal/workload"
)

func startServer(t *testing.T, ccfg kvcache.Config, scfg Config) (*Server, string) {
	t.Helper()
	cache, err := kvcache.New(ccfg)
	if err != nil {
		t.Fatal(err)
	}
	scfg.Addr = "127.0.0.1:0"
	srv, err := New(cache, scfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	return srv, "http://" + srv.Addr()
}

func TestHTTPRoundTrip(t *testing.T) {
	_, base := startServer(t, kvcache.Config{Shards: 2, Sets: 16, Ways: 4}, Config{})

	// Missing key: 404 with a miss marker.
	resp, err := http.Get(base + "/kv/absent")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound || resp.Header.Get("X-Cache") != "miss" {
		t.Fatalf("GET absent: %s, X-Cache=%q", resp.Status, resp.Header.Get("X-Cache"))
	}

	// PUT then GET.
	req, _ := http.NewRequest(http.MethodPut, base+"/kv/alpha", bytes.NewReader([]byte("value-1")))
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("PUT: %s", resp.Status)
	}
	resp, err = http.Get(base + "/kv/alpha")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || string(body) != "value-1" || resp.Header.Get("X-Cache") != "hit" {
		t.Fatalf("GET alpha: %s body=%q X-Cache=%q", resp.Status, body, resp.Header.Get("X-Cache"))
	}

	// DELETE then GET.
	req, _ = http.NewRequest(http.MethodDelete, base+"/kv/alpha", nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("DELETE: %s", resp.Status)
	}
	resp, _ = http.Get(base + "/kv/alpha")
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET after DELETE: %s", resp.Status)
	}

	// /stats and /healthz.
	resp, err = http.Get(base + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st struct {
		Gets   uint64 `json:"gets"`
		Policy string `json:"policy"`
		PD     int    `json:"pd"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Gets < 3 || st.Policy != "pdp" || st.PD < 1 {
		t.Fatalf("stats %+v", st)
	}
	resp, err = http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %s", resp.Status)
	}
}

func TestValueTooLarge(t *testing.T) {
	_, base := startServer(t, kvcache.Config{Shards: 1, Sets: 4, Ways: 2}, Config{MaxValueBytes: 128})
	req, _ := http.NewRequest(http.MethodPut, base+"/kv/big", bytes.NewReader(make([]byte, 256)))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized PUT: %s", resp.Status)
	}
}

func TestConfigValidation(t *testing.T) {
	cache, _ := kvcache.New(kvcache.Config{Shards: 1, Sets: 4, Ways: 2})
	if _, err := New(nil, Config{}); err == nil {
		t.Fatal("nil cache accepted")
	}
	if _, err := New(cache, Config{AdaptEvery: -time.Second}); err == nil {
		t.Fatal("negative AdaptEvery accepted")
	}
	if _, err := New(cache, Config{SnapshotEvery: -time.Second}); err == nil {
		t.Fatal("negative SnapshotEvery accepted")
	}
	if _, err := New(cache, Config{MaxValueBytes: -1}); err == nil {
		t.Fatal("negative MaxValueBytes accepted")
	}
}

func TestSnapshotLoopJournals(t *testing.T) {
	j := telemetry.NewJournal(64)
	_, base := startServer(t,
		kvcache.Config{Shards: 1, Sets: 16, Ways: 4},
		Config{Journal: j, SnapshotEvery: 5 * time.Millisecond})
	for i := 0; i < 50; i++ {
		resp, err := http.Get(base + "/kv/warm")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	deadline := time.Now().Add(2 * time.Second)
	for j.CountKind(telemetry.KindSnapshot) == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if j.CountKind(telemetry.KindSnapshot) == 0 {
		t.Fatal("no snapshot records journaled")
	}
}

// TestE2EPDPBeatsLRU is the serving smoke test: two real servers on
// random ports — one PDP, one LRU — each replaying the identical seeded
// Zipf-with-cyclic-scans burst through the HTTP load generator. The PDP
// policy must match or beat the recency baseline on client-observed hit
// rate (the margin is asserted loosely here; the deterministic
// single-goroutine comparison with a hard margin lives in
// internal/kvcache).
func TestE2EPDPBeatsLRU(t *testing.T) {
	if testing.Short() {
		t.Skip("e2e smoke test")
	}
	mix := workload.ServiceConfig{
		Keys: 300, ZipfS: 0.8, ValueBytes: 64,
		ScanEvery: 200, ScanLen: 400, ScanLoop: 1600,
	}
	run := func(policy kvcache.Policy) loadgen.Result {
		_, base := startServer(t, kvcache.Config{
			Policy: policy, Shards: 4, Sets: 16, Ways: 8,
			RecomputeEvery: 4096,
		}, Config{AdaptEvery: 50 * time.Millisecond})
		res, err := loadgen.Run(context.Background(), loadgen.Config{
			BaseURL: base,
			Mix:     mix,
			Workers: 2,
			Ops:     30000,
			Seed:    42,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Errors > 0 {
			t.Fatalf("%s run had %d transport errors", policy, res.Errors)
		}
		return res
	}
	lru := run(kvcache.PolicyLRU)
	pdp := run(kvcache.PolicyPDP)
	t.Logf("e2e: PDP hit rate %.3f (%.0f ops/s, %d denies) vs LRU %.3f (%.0f ops/s)",
		pdp.HitRate(), pdp.Throughput(), pdp.Denies, lru.HitRate(), lru.Throughput())
	if pdp.HitRate() < lru.HitRate() {
		t.Fatalf("PDP %.3f under LRU %.3f on the same seeded stream", pdp.HitRate(), lru.HitRate())
	}
}
