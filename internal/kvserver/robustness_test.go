package kvserver

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"testing"
	"time"

	"pdp/internal/kvcache"
	"pdp/internal/servefault"
)

func TestBadDeadlineHeaderRejected(t *testing.T) {
	_, base := startServer(t, kvcache.Config{Shards: 2, Sets: 16, Ways: 4}, Config{})

	for _, bad := range []string{"bogus", "-5ms", "0s"} {
		req, _ := http.NewRequest(http.MethodGet, base+"/kv/x", nil)
		req.Header.Set("X-Deadline", bad)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("X-Deadline=%q: %s, want 400", bad, resp.Status)
		}
	}

	// A well-formed generous deadline is honored and the request served.
	req, _ := http.NewRequest(http.MethodGet, base+"/kv/x", nil)
	req.Header.Set("X-Deadline", "2s")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET with valid deadline: %s, want 404 miss", resp.Status)
	}
}

func TestGateReportedInStats(t *testing.T) {
	_, base := startServer(t, kvcache.Config{Shards: 2, Sets: 16, Ways: 4},
		Config{MaxInflight: 8})

	resp, err := http.Get(base + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats struct {
		Gate *struct {
			MaxInflight int `json:"max_inflight"`
			InFlight    int `json:"in_flight"`
		} `json:"gate"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Gate == nil || stats.Gate.MaxInflight != 8 {
		t.Fatalf("gate view missing or wrong: %+v", stats.Gate)
	}
}

func TestStateSnapshotOnShutdown(t *testing.T) {
	dir := t.TempDir()
	statePath := filepath.Join(dir, "cache.snap")

	cache, err := kvcache.New(kvcache.Config{
		Policy: kvcache.PolicyPDP, Shards: 2, Sets: 16, Ways: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(cache, Config{
		Addr:      "127.0.0.1:0",
		StatePath: statePath,
		// Long period: the only write should be the final one at Shutdown.
		StateEvery: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	cache.Put("alpha", []byte("v1"))
	cache.Put("beta", []byte("v2"))

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(statePath); err != nil {
		t.Fatalf("no snapshot written at shutdown: %v", err)
	}

	// The snapshot warm-starts an identical cache.
	resumed, err := kvcache.New(kvcache.Config{
		Policy: kvcache.PolicyPDP, Shards: 2, Sets: 16, Ways: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	n, err := servefault.RestoreFromFile(resumed, statePath)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("restored %d entries, want 2", n)
	}
	if v, ok := resumed.Get("alpha"); !ok || string(v) != "v1" {
		t.Fatalf("alpha lost across restart: %q %v", v, ok)
	}
	if v, ok := resumed.Get("beta"); !ok || string(v) != "v2" {
		t.Fatalf("beta lost across restart: %q %v", v, ok)
	}
}
