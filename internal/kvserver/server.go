// Package kvserver exposes a kvcache.Cache over HTTP/JSON: GET/PUT/DELETE
// on /kv/{key}, a /stats JSON endpoint, and /healthz. It is the serving
// shell of cmd/pdpcached; the cache itself stays transport-agnostic.
package kvserver

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"time"

	"pdp/internal/kvcache"
	"pdp/internal/telemetry"
)

// Config parameterizes a Server.
type Config struct {
	// Addr is the listen address (e.g. ":7070"; ":0" picks a free port).
	Addr string
	// MaxValueBytes caps one PUT body (default 1 MiB).
	MaxValueBytes int64
	// AdaptEvery runs a wall-clock PD recomputation at that period; 0
	// disables the timer (the cache's count trigger still fires). Negative
	// values are rejected.
	AdaptEvery time.Duration
	// SnapshotEvery emits a telemetry snapshot record at that period; 0
	// disables. Negative values are rejected. Requires Journal.
	SnapshotEvery time.Duration
	// Registry and Journal receive server telemetry (both optional).
	Registry *telemetry.Registry
	Journal  *telemetry.Journal
}

// Server serves one kvcache.Cache over HTTP.
type Server struct {
	cfg     Config
	cache   *kvcache.Cache
	ln      net.Listener
	httpSrv *http.Server
	adapter *kvcache.Adapter

	snapCancel context.CancelFunc
	snapDone   chan struct{}
	lastStats  kvcache.Stats

	errCh chan error
}

// New validates cfg and binds a server to the cache. The listener is not
// opened until Start.
func New(cache *kvcache.Cache, cfg Config) (*Server, error) {
	if cache == nil {
		return nil, fmt.Errorf("kvserver: nil cache")
	}
	if cfg.Addr == "" {
		cfg.Addr = ":7070"
	}
	if cfg.MaxValueBytes == 0 {
		cfg.MaxValueBytes = 1 << 20
	}
	if cfg.MaxValueBytes < 0 {
		return nil, fmt.Errorf("kvserver: MaxValueBytes must be positive, got %d", cfg.MaxValueBytes)
	}
	if cfg.AdaptEvery < 0 {
		return nil, fmt.Errorf("kvserver: AdaptEvery must be >= 0, got %v", cfg.AdaptEvery)
	}
	if cfg.SnapshotEvery < 0 {
		return nil, fmt.Errorf("kvserver: SnapshotEvery must be >= 0, got %v", cfg.SnapshotEvery)
	}
	s := &Server{cfg: cfg, cache: cache, errCh: make(chan error, 1)}
	mux := http.NewServeMux()
	mux.HandleFunc("/kv/", s.handleKV)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/healthz", s.handleHealthz)
	s.httpSrv = &http.Server{Handler: mux}
	return s, nil
}

// Start opens the listener and begins serving in the background; it
// returns once the port is bound, so Addr() is immediately valid.
func (s *Server) Start(ctx context.Context) error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return fmt.Errorf("kvserver: listen %s: %w", s.cfg.Addr, err)
	}
	s.ln = ln
	go func() {
		if err := s.httpSrv.Serve(ln); err != nil && err != http.ErrServerClosed {
			s.errCh <- err
		}
	}()
	if s.cfg.AdaptEvery > 0 {
		ad, err := kvcache.NewAdapter(s.cache, s.cfg.AdaptEvery)
		if err != nil {
			ln.Close()
			return err
		}
		s.adapter = ad
		ad.Start(ctx)
	}
	if s.cfg.SnapshotEvery > 0 {
		snapCtx, cancel := context.WithCancel(ctx)
		s.snapCancel = cancel
		s.snapDone = make(chan struct{})
		go s.snapshotLoop(snapCtx)
	}
	return nil
}

// Addr returns the bound listen address (valid after Start).
func (s *Server) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Err returns a channel receiving a fatal serve error, if one occurs.
func (s *Server) Err() <-chan error { return s.errCh }

// Shutdown stops the snapshot loop, the adapter and the HTTP server
// gracefully, then flushes the journal.
func (s *Server) Shutdown(ctx context.Context) error {
	if s.snapCancel != nil {
		s.snapCancel()
		<-s.snapDone
		s.snapCancel = nil
	}
	if s.adapter != nil {
		s.adapter.Stop()
	}
	err := s.httpSrv.Shutdown(ctx)
	if ferr := s.cfg.Journal.Flush(); err == nil {
		err = ferr
	}
	return err
}

// snapshotLoop journals one SnapshotRecord per period: the serving-layer
// time series (hit rate, PD, occupancy) that mirrors the simulator's
// interval snapshots.
func (s *Server) snapshotLoop(ctx context.Context) {
	defer close(s.snapDone)
	t := time.NewTicker(s.cfg.SnapshotEvery)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			s.emitSnapshot()
		}
	}
}

func (s *Server) emitSnapshot() {
	st := s.cache.Stats()
	prev := s.lastStats
	s.lastStats = st
	var interval float64
	if dg := st.Gets - prev.Gets; dg > 0 {
		interval = float64(st.Hits-prev.Hits) / float64(dg)
	}
	capacity := s.cache.Config().Shards * s.cache.Config().Sets * s.cache.Config().Ways
	var validFrac float64
	if capacity > 0 {
		validFrac = float64(st.Entries) / float64(capacity)
	}
	s.cfg.Journal.Append(telemetry.SnapshotRecord{
		Kind:            telemetry.KindSnapshot,
		Access:          st.Gets + st.Puts + st.Deletes,
		HitRate:         st.HitRate(),
		IntervalHitRate: interval,
		PD:              st.PD,
		Accesses:        st.Gets,
		Hits:            st.Hits,
		Misses:          st.Misses,
		Evictions:       st.Evictions,
		Bypasses:        st.Denies,
		ValidFrac:       validFrac,
	})
}

// handleKV dispatches GET/PUT/DELETE on /kv/{key}.
func (s *Server) handleKV(w http.ResponseWriter, r *http.Request) {
	key := strings.TrimPrefix(r.URL.Path, "/kv/")
	if key == "" {
		http.Error(w, "missing key", http.StatusBadRequest)
		return
	}
	switch r.Method {
	case http.MethodGet:
		val, ok := s.cache.Get(key)
		if !ok {
			w.Header().Set("X-Cache", "miss")
			http.Error(w, "not found", http.StatusNotFound)
			return
		}
		w.Header().Set("X-Cache", "hit")
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Write(val)
	case http.MethodPut, http.MethodPost:
		body, err := io.ReadAll(io.LimitReader(r.Body, s.cfg.MaxValueBytes+1))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if int64(len(body)) > s.cfg.MaxValueBytes {
			http.Error(w, "value too large", http.StatusRequestEntityTooLarge)
			return
		}
		if !s.cache.Put(key, body) {
			// Admission denied: the policy judged the key not worth caching
			// right now. 204 tells the client the write was handled but not
			// stored — cache-aside clients treat it like a successful set.
			w.Header().Set("X-Cache", "deny")
			w.WriteHeader(http.StatusNoContent)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	case http.MethodDelete:
		if s.cache.Delete(key) {
			w.WriteHeader(http.StatusNoContent)
		} else {
			http.Error(w, "not found", http.StatusNotFound)
		}
	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

// statsResponse is the /stats JSON schema.
type statsResponse struct {
	kvcache.Stats
	Policy  string  `json:"policy"`
	HitRate float64 `json:"hit_rate"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	st := s.cache.Stats()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(statsResponse{
		Stats:   st,
		Policy:  string(s.cache.Config().Policy),
		HitRate: st.HitRate(),
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.WriteHeader(http.StatusOK)
	io.WriteString(w, "ok\n")
}
