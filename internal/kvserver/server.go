// Package kvserver exposes a kvcache.Cache over HTTP/JSON: GET/PUT/DELETE
// on /kv/{key}, a /stats JSON endpoint (latency quantiles, per-shard
// attribution, the live RDD), Prometheus text exposition on /metrics, the
// policy decision ring on /debug/decisions, /healthz (liveness) and
// /readyz (readiness: 503 while any shard serves degraded). Every route
// runs under the instrumentation middleware (per-route/method/status
// counters, nanosecond latency histograms, X-Request-Id threading); the
// /kv/ data path additionally runs under overload protection — per-request
// deadlines (the client's X-Deadline or a configured default) and a
// concurrency-limited admission gate that sheds with 503 + Retry-After
// instead of queueing unboundedly. It is the serving shell of
// cmd/pdpcached; the cache itself stays transport-agnostic.
package kvserver

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"pdp/internal/cluster"
	"pdp/internal/kvcache"
	"pdp/internal/resilience"
	"pdp/internal/servefault"
	"pdp/internal/telemetry"
)

// Config parameterizes a Server.
type Config struct {
	// Addr is the listen address (e.g. ":7070"; ":0" picks a free port).
	Addr string
	// MaxValueBytes caps one PUT body (default 1 MiB).
	MaxValueBytes int64
	// AdaptEvery runs a wall-clock PD recomputation at that period; 0
	// disables the timer (the cache's count trigger still fires). Negative
	// values are rejected.
	AdaptEvery time.Duration
	// SnapshotEvery emits a telemetry snapshot record at that period; 0
	// disables. Negative values are rejected. Requires Journal.
	SnapshotEvery time.Duration

	// MaxBatchOps caps the operations of one POST /batch request (default
	// 1024; larger batches answer 413).
	MaxBatchOps int
	// MaxBatchBytes caps one /batch request body (default 8 MiB).
	MaxBatchBytes int64

	// MaxInflight bounds concurrent /kv/ and /batch requests (one batch
	// takes one slot — the amortization that makes batching pay also
	// applies to the gate). A request arriving at a full gate is shed with
	// 503 + Retry-After when it carries no deadline, and otherwise waits
	// until a slot frees or the deadline expires (504). 0 disables the
	// gate.
	MaxInflight int
	// RetryAfter is the backoff hint carried on shed responses (default
	// 1s).
	RetryAfter time.Duration
	// DefaultDeadline bounds every /kv/ request that arrives without an
	// X-Deadline header; 0 applies no default. Clients override it per
	// request with X-Deadline (a Go duration, e.g. "250ms").
	DefaultDeadline time.Duration

	// StatePath enables crash-safe warm restarts: the cache's warm state
	// (entries, protection bookkeeping, RDD evidence, PD) is snapshotted
	// there every StateEvery (default 30s) and once more at shutdown,
	// atomically and durably. Empty disables state snapshots.
	StatePath string
	// StateEvery is the state-snapshot period (default 30s when
	// StatePath is set).
	StateEvery time.Duration

	// Cluster enables ownership-aware routing: keys this node owns are
	// served locally; keys owned by a live peer are proxied (GETs through
	// the singleflight fill table, mutations directly), with a local
	// fallback when the peer is unreachable. Nil keeps the server
	// single-node. The server drives the cluster's probe loop from
	// Start/Shutdown.
	Cluster *cluster.Cluster
	// Listener, when non-nil, is used instead of listening on Addr — a
	// test seam that lets a caller pre-bind ports so peer URLs are known
	// before any server starts.
	Listener net.Listener

	// Registry and Journal receive server telemetry (both optional).
	Registry *telemetry.Registry
	Journal  *telemetry.Journal
}

// Server serves one kvcache.Cache over HTTP.
type Server struct {
	cfg     Config
	cache   *kvcache.Cache
	ln      net.Listener
	httpSrv *http.Server
	adapter *kvcache.Adapter
	gate    *servefault.Gate

	snapCancel context.CancelFunc
	snapDone   chan struct{}
	lastStats  kvcache.Stats

	// Crash-safe state snapshots: the coalescing saver plus its ticker.
	stateSaver  *resilience.Saver
	stateCancel context.CancelFunc
	stateDone   chan struct{}
	mSnaps      *telemetry.Counter
	mSnapErrs   *telemetry.Counter

	// Middleware state: the instrumented routes (for /stats latency
	// summaries) and the request-id generator.
	routes  []*routeMetrics
	reqSeq  atomic.Uint64
	mErrors *telemetry.Counter

	// Batch-path telemetry: batch/op counts, the batch-size log2
	// histogram, and the amortized per-op latency histogram (one batch's
	// wall time booked once per op).
	mBatches    *telemetry.Counter
	mBatchOps   *telemetry.Counter
	hBatchSize  *telemetry.Histogram
	hBatchOpLat *telemetry.Histogram

	errCh chan error
}

// New validates cfg and binds a server to the cache. The listener is not
// opened until Start.
func New(cache *kvcache.Cache, cfg Config) (*Server, error) {
	if cache == nil {
		return nil, fmt.Errorf("kvserver: nil cache")
	}
	if cfg.Addr == "" {
		cfg.Addr = ":7070"
	}
	if cfg.MaxValueBytes == 0 {
		cfg.MaxValueBytes = 1 << 20
	}
	if cfg.MaxValueBytes < 0 {
		return nil, fmt.Errorf("kvserver: MaxValueBytes must be positive, got %d", cfg.MaxValueBytes)
	}
	if cfg.AdaptEvery < 0 {
		return nil, fmt.Errorf("kvserver: AdaptEvery must be >= 0, got %v", cfg.AdaptEvery)
	}
	if cfg.SnapshotEvery < 0 {
		return nil, fmt.Errorf("kvserver: SnapshotEvery must be >= 0, got %v", cfg.SnapshotEvery)
	}
	if cfg.MaxBatchOps == 0 {
		cfg.MaxBatchOps = 1024
	}
	if cfg.MaxBatchOps < 0 {
		return nil, fmt.Errorf("kvserver: MaxBatchOps must be positive, got %d", cfg.MaxBatchOps)
	}
	if cfg.MaxBatchBytes == 0 {
		cfg.MaxBatchBytes = 8 << 20
	}
	if cfg.MaxBatchBytes < 0 {
		return nil, fmt.Errorf("kvserver: MaxBatchBytes must be positive, got %d", cfg.MaxBatchBytes)
	}
	if cfg.MaxInflight < 0 {
		return nil, fmt.Errorf("kvserver: MaxInflight must be >= 0, got %d", cfg.MaxInflight)
	}
	if cfg.RetryAfter == 0 {
		cfg.RetryAfter = time.Second
	}
	if cfg.RetryAfter < 0 {
		return nil, fmt.Errorf("kvserver: RetryAfter must be positive, got %v", cfg.RetryAfter)
	}
	if cfg.DefaultDeadline < 0 {
		return nil, fmt.Errorf("kvserver: DefaultDeadline must be >= 0, got %v", cfg.DefaultDeadline)
	}
	if cfg.StateEvery < 0 {
		return nil, fmt.Errorf("kvserver: StateEvery must be >= 0, got %v", cfg.StateEvery)
	}
	if cfg.StatePath != "" && cfg.StateEvery == 0 {
		cfg.StateEvery = 30 * time.Second
	}
	if cfg.Registry == nil {
		// Default to the cache's registry so one /metrics scrape covers
		// both the serving layer and the cache it fronts.
		cfg.Registry = cache.Config().Registry
	}
	s := &Server{cfg: cfg, cache: cache, errCh: make(chan error, 1)}
	s.mErrors = cfg.Registry.Counter("http.serve_errors")
	s.mSnapErrs = cfg.Registry.Counter("kv.state_snapshot_errors")
	s.mSnaps = cfg.Registry.Counter("kv.state_snapshots")
	s.mBatches = cfg.Registry.Counter("http.batches")
	s.mBatchOps = cfg.Registry.Counter("http.batch_ops")
	s.hBatchSize = cfg.Registry.Histogram("http.batch_size")
	s.hBatchOpLat = cfg.Registry.Histogram("http.batch_op_latency_ns")
	s.gate = servefault.NewGate(cfg.MaxInflight, cfg.RetryAfter, cfg.Registry, cfg.Journal)
	mux := http.NewServeMux()
	mux.Handle("/kv/", s.instrument("/kv/", s.protect("/kv/", s.routeKV)))
	mux.Handle("/batch", s.instrument("/batch", s.protect("/batch", s.handleBatch)))
	if cfg.Cluster != nil {
		mux.Handle("/cluster/ring", s.instrument("/cluster/ring", getOnly(s.handleClusterRing)))
	}
	mux.Handle("/stats", s.instrument("/stats", getOnly(s.handleStats)))
	mux.Handle("/healthz", s.instrument("/healthz", getOnly(s.handleHealthz)))
	mux.Handle("/readyz", s.instrument("/readyz", getOnly(s.handleReadyz)))
	mux.Handle("/metrics", s.instrument("/metrics", getOnly(s.handleMetrics)))
	mux.Handle("/debug/decisions", s.instrument("/debug/decisions", getOnly(s.handleDecisions)))
	s.httpSrv = &http.Server{Handler: mux}
	return s, nil
}

// serveError books one serving-layer fault: the counter for alerting, the
// journal for forensics (with the failing route and request id).
func (s *Server) serveError(route, reqID string, err error) {
	s.mErrors.Inc()
	s.cfg.Journal.Append(telemetry.ServeErrorRecord{
		Kind:      telemetry.KindServeError,
		Route:     route,
		RequestID: reqID,
		Err:       err.Error(),
	})
}

// Start opens the listener and begins serving in the background; it
// returns once the port is bound, so Addr() is immediately valid.
func (s *Server) Start(ctx context.Context) error {
	ln := s.cfg.Listener
	if ln == nil {
		var err error
		ln, err = net.Listen("tcp", s.cfg.Addr)
		if err != nil {
			return fmt.Errorf("kvserver: listen %s: %w", s.cfg.Addr, err)
		}
	}
	s.ln = ln
	go func() {
		if err := s.httpSrv.Serve(ln); err != nil && err != http.ErrServerClosed {
			// Record to telemetry and journal *before* offering the error
			// on the channel: errCh has capacity 1 and is only drained by
			// a caller that happens to be listening, so an error racing
			// shutdown must not depend on the channel for visibility.
			s.serveError("", "", err)
			select {
			case s.errCh <- err:
			default:
			}
		}
	}()
	if s.cfg.AdaptEvery > 0 {
		ad, err := kvcache.NewAdapter(s.cache, s.cfg.AdaptEvery)
		if err != nil {
			ln.Close()
			return err
		}
		s.adapter = ad
		ad.Start(ctx)
	}
	if s.cfg.SnapshotEvery > 0 {
		snapCtx, cancel := context.WithCancel(ctx)
		s.snapCancel = cancel
		s.snapDone = make(chan struct{})
		go s.snapshotLoop(snapCtx)
	}
	if s.cfg.StatePath != "" {
		s.stateSaver = resilience.NewSaver(s.saveState, func(err error) {
			s.serveError("", "", err)
		})
		stateCtx, cancel := context.WithCancel(ctx)
		s.stateCancel = cancel
		s.stateDone = make(chan struct{})
		go s.stateLoop(stateCtx)
	}
	if s.cfg.Cluster != nil {
		s.cfg.Cluster.Start(ctx)
	}
	return nil
}

// saveState persists one crash-safe cache snapshot (the Saver's save
// closure; also run once more by its Close during Shutdown).
func (s *Server) saveState() error {
	err := servefault.SaveSnapshot(s.cache, s.cfg.StatePath, s.cfg.Journal)
	if err != nil {
		s.mSnapErrs.Inc()
		return err
	}
	s.mSnaps.Inc()
	return nil
}

// stateLoop requests one state snapshot per period; the coalescing Saver
// serializes the writes.
func (s *Server) stateLoop(ctx context.Context) {
	defer close(s.stateDone)
	t := time.NewTicker(s.cfg.StateEvery)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			s.stateSaver.Request()
		}
	}
}

// Addr returns the bound listen address (valid after Start).
func (s *Server) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Err returns a channel receiving a fatal serve error, if one occurs.
func (s *Server) Err() <-chan error { return s.errCh }

// Shutdown stops the snapshot loops, the adapter and the HTTP server
// gracefully — persisting one final cache-state snapshot when StatePath
// is configured, so a clean restart resumes from the freshest state —
// then flushes the journal.
func (s *Server) Shutdown(ctx context.Context) error {
	if s.cfg.Cluster != nil {
		s.cfg.Cluster.Stop()
	}
	if s.snapCancel != nil {
		s.snapCancel()
		<-s.snapDone
		s.snapCancel = nil
	}
	if s.stateCancel != nil {
		s.stateCancel()
		<-s.stateDone
		s.stateCancel = nil
		s.stateSaver.Close()
	}
	if s.adapter != nil {
		s.adapter.Stop()
	}
	err := s.httpSrv.Shutdown(ctx)
	if ferr := s.cfg.Journal.Flush(); err == nil {
		err = ferr
	}
	return err
}

// snapshotLoop journals one SnapshotRecord per period: the serving-layer
// time series (hit rate, PD, occupancy) that mirrors the simulator's
// interval snapshots.
func (s *Server) snapshotLoop(ctx context.Context) {
	defer close(s.snapDone)
	t := time.NewTicker(s.cfg.SnapshotEvery)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			s.emitSnapshot()
		}
	}
}

func (s *Server) emitSnapshot() {
	st := s.cache.Stats()
	prev := s.lastStats
	s.lastStats = st
	var interval float64
	if dg := st.Gets - prev.Gets; dg > 0 {
		interval = float64(st.Hits-prev.Hits) / float64(dg)
	}
	capacity := s.cache.Config().Shards * s.cache.Config().Sets * s.cache.Config().Ways
	var validFrac float64
	if capacity > 0 {
		validFrac = float64(st.Entries) / float64(capacity)
	}
	s.cfg.Journal.Append(telemetry.SnapshotRecord{
		Kind:            telemetry.KindSnapshot,
		Access:          st.Gets + st.Puts + st.Deletes,
		HitRate:         st.HitRate(),
		IntervalHitRate: interval,
		PD:              st.PD,
		Accesses:        st.Gets,
		Hits:            st.Hits,
		Misses:          st.Misses,
		Evictions:       st.Evictions,
		Bypasses:        st.Denies,
		ValidFrac:       validFrac,
	})
}

// protect wraps a data-path handler with overload protection: the
// per-request deadline (the client's X-Deadline, else the configured
// default) and the admission gate. Shed requests answer 503 with a
// Retry-After hint; requests whose deadline expires while queued answer
// 504. Composed inside instrument, so sheds still count in the route's
// request metrics and latency histogram.
func (s *Server) protect(route string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		ctx := r.Context()
		deadline := s.cfg.DefaultDeadline
		if v := r.Header.Get("X-Deadline"); v != "" {
			d, err := time.ParseDuration(v)
			if err != nil || d <= 0 {
				http.Error(w, "bad X-Deadline", http.StatusBadRequest)
				return
			}
			deadline = d
		}
		if deadline > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, deadline)
			defer cancel()
			r = r.WithContext(ctx)
		}
		switch err := s.gate.Enter(ctx, route, requestID(r)); err {
		case nil:
			defer s.gate.Exit()
		case servefault.ErrShed:
			secs := int(s.gate.RetryAfter() / time.Second)
			if secs < 1 {
				secs = 1
			}
			w.Header().Set("Retry-After", strconv.Itoa(secs))
			http.Error(w, "overloaded, retry later", http.StatusServiceUnavailable)
			return
		default: // servefault.ErrDeadline
			http.Error(w, "deadline expired while queued", http.StatusGatewayTimeout)
			return
		}
		if ctx.Err() != nil {
			// Admitted, but the budget is already gone: answering 504 now is
			// cheaper than doing work the client has stopped waiting for.
			http.Error(w, "deadline expired", http.StatusGatewayTimeout)
			return
		}
		h(w, r)
	}
}

// kvBufs pools the /kv/ data path's per-request scratch buffer: GET
// copies the value out of the cache into it (via GetAppend) and PUT reads
// the request body into it, so the steady-state data path allocates no
// value-sized buffers at all — each pooled buffer grows to the route's
// value high-water mark and is reused.
var kvBufs = sync.Pool{New: func() any {
	b := make([]byte, 0, 4096)
	return &b
}}

// appendLimited is io.ReadAll with a caller-owned buffer: it reads r to
// EOF into buf (reusing its capacity, growing as needed) but never past
// limit bytes, so an oversized body costs bounded memory and the PUT path
// can reuse a pooled buffer instead of allocating per request.
func appendLimited(buf []byte, r io.Reader, limit int64) ([]byte, error) {
	for int64(len(buf)) < limit {
		if len(buf) == cap(buf) {
			buf = append(buf, 0)[:len(buf)]
		}
		space := cap(buf) - len(buf)
		if int64(space) > limit-int64(len(buf)) {
			space = int(limit - int64(len(buf)))
		}
		n, err := r.Read(buf[len(buf) : len(buf)+space])
		buf = buf[:len(buf)+n]
		if err == io.EOF {
			break
		}
		if err != nil {
			return buf, err
		}
	}
	return buf, nil
}

// handleKV dispatches GET/PUT/DELETE on /kv/{key}.
func (s *Server) handleKV(w http.ResponseWriter, r *http.Request) {
	key := strings.TrimPrefix(r.URL.Path, "/kv/")
	if key == "" {
		http.Error(w, "missing key", http.StatusBadRequest)
		return
	}
	switch r.Method {
	case http.MethodGet:
		bp := kvBufs.Get().(*[]byte)
		val, ok := s.cache.GetAppend(key, (*bp)[:0])
		if !ok {
			kvBufs.Put(bp)
			w.Header().Set("X-Cache", "miss")
			http.Error(w, "not found", http.StatusNotFound)
			return
		}
		w.Header().Set("X-Cache", "hit")
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Write(val)
		// net/http has copied val into its own write buffer by now.
		*bp = val[:0]
		kvBufs.Put(bp)
	case http.MethodPut, http.MethodPost:
		bp := kvBufs.Get().(*[]byte)
		body, err := appendLimited((*bp)[:0], r.Body, s.cfg.MaxValueBytes+1)
		*bp = body[:0]
		if err != nil {
			kvBufs.Put(bp)
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if int64(len(body)) > s.cfg.MaxValueBytes {
			kvBufs.Put(bp)
			http.Error(w, "value too large", http.StatusRequestEntityTooLarge)
			return
		}
		admitted := s.cache.Put(key, body)
		kvBufs.Put(bp)
		if !admitted {
			// Admission denied: the policy judged the key not worth caching
			// right now. 204 tells the client the write was handled but not
			// stored — cache-aside clients treat it like a successful set.
			w.Header().Set("X-Cache", "deny")
			w.WriteHeader(http.StatusNoContent)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	case http.MethodDelete:
		if s.cache.Delete(key) {
			w.WriteHeader(http.StatusNoContent)
		} else {
			http.Error(w, "not found", http.StatusNotFound)
		}
	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

// latencyView is one route's latency digest in microseconds (the
// histograms record nanoseconds; microseconds read better in JSON).
type latencyView struct {
	Count uint64  `json:"count"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
	P999  float64 `json:"p999"`
}

// gateView is the admission gate's state in /stats.
type gateView struct {
	MaxInflight int `json:"max_inflight"`
	InFlight    int `json:"in_flight"`
}

// shardView is kvcache.ShardStats plus its derived hit rate.
type shardView struct {
	kvcache.ShardStats
	HitRate float64 `json:"hit_rate"`
}

// skewView summarizes imbalance across shards: occupancy and traffic as
// max/mean ratios (1 = perfectly uniform), hit rate as its min/max
// spread.
type skewView struct {
	OccupancySkew float64 `json:"occupancy_skew"`
	TrafficSkew   float64 `json:"traffic_skew"`
	HitRateMin    float64 `json:"hit_rate_min"`
	HitRateMax    float64 `json:"hit_rate_max"`
}

// batchStatsView summarizes the /batch pipeline: batch and logical-op
// counts, the mean batch size, and the amortized per-op latency
// quantiles (one batch's wall time booked once per op — directly
// comparable to the /kv/ per-request latency at equal offered load).
type batchStatsView struct {
	Batches      uint64      `json:"batches"`
	Ops          uint64      `json:"ops"`
	MeanSize     float64     `json:"mean_size"`
	OpLatencyUS  latencyView `json:"op_latency_us"`
	SizeBucketsL []uint64    `json:"size_log2_buckets"`
}

// statsResponse is the /stats JSON schema.
type statsResponse struct {
	kvcache.Stats
	Policy  string  `json:"policy"`
	HitRate float64 `json:"hit_rate"`
	// LatencyUS maps each instrumented route to its server-side request
	// latency quantiles.
	LatencyUS map[string]latencyView `json:"latency_us,omitempty"`
	Shards    []shardView            `json:"shards,omitempty"`
	ShardSkew *skewView              `json:"shard_skew,omitempty"`
	// Gate reports overload-protection state when the admission gate is
	// enabled.
	Gate *gateView `json:"gate,omitempty"`
	// Batch reports the /batch pipeline once it has served traffic.
	Batch *batchStatsView `json:"batch,omitempty"`
	// RDD is the live merged reuse-distance distribution (PDP only) —
	// what the next recompute will decide from.
	RDD *kvcache.RDDView `json:"rdd,omitempty"`
	// Decisions counts attributed policy decisions by kind.
	Decisions map[string]uint64 `json:"decisions,omitempty"`
	// Cluster is the node's ring/routing view when clustering is enabled.
	Cluster *cluster.View `json:"cluster,omitempty"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	st := s.cache.Stats()
	resp := statsResponse{
		Stats:     st,
		Policy:    string(s.cache.Config().Policy),
		HitRate:   st.HitRate(),
		LatencyUS: map[string]latencyView{},
	}
	for _, m := range s.routes {
		h := m.latency
		if h.Count() == 0 {
			continue
		}
		q := h.Summary()
		resp.LatencyUS[m.name] = latencyView{
			Count: h.Count(),
			Mean:  h.Mean() / 1e3,
			P50:   q.P50 / 1e3,
			P90:   q.P90 / 1e3,
			P99:   q.P99 / 1e3,
			P999:  q.P999 / 1e3,
		}
	}
	per := s.cache.ShardStats()
	var maxEntries, sumEntries float64
	var maxGets, sumGets float64
	skew := &skewView{HitRateMin: 1}
	for _, sh := range per {
		resp.Shards = append(resp.Shards, shardView{ShardStats: sh, HitRate: sh.HitRate()})
		e, g := float64(sh.Entries), float64(sh.Gets)
		sumEntries += e
		sumGets += g
		if e > maxEntries {
			maxEntries = e
		}
		if g > maxGets {
			maxGets = g
		}
		if hr := sh.HitRate(); hr < skew.HitRateMin {
			skew.HitRateMin = hr
		} else if hr > skew.HitRateMax {
			skew.HitRateMax = hr
		}
	}
	if n := float64(len(per)); n > 0 {
		if sumEntries > 0 {
			skew.OccupancySkew = maxEntries / (sumEntries / n)
		}
		if sumGets > 0 {
			skew.TrafficSkew = maxGets / (sumGets / n)
		}
		resp.ShardSkew = skew
	}
	if s.gate != nil {
		resp.Gate = &gateView{MaxInflight: s.cfg.MaxInflight, InFlight: s.gate.InFlight()}
	}
	if nb := s.mBatches.Value(); nb > 0 {
		q := s.hBatchOpLat.Summary()
		resp.Batch = &batchStatsView{
			Batches:  nb,
			Ops:      s.mBatchOps.Value(),
			MeanSize: s.hBatchSize.Mean(),
			OpLatencyUS: latencyView{
				Count: s.hBatchOpLat.Count(),
				Mean:  s.hBatchOpLat.Mean() / 1e3,
				P50:   q.P50 / 1e3,
				P90:   q.P90 / 1e3,
				P99:   q.P99 / 1e3,
				P999:  q.P999 / 1e3,
			},
			SizeBucketsL: s.hBatchSize.Buckets(),
		}
	}
	if rdd := s.cache.RDDSnapshot(); rdd.Counts != nil {
		resp.RDD = &rdd
	}
	if s.cfg.Cluster != nil {
		v := s.cfg.Cluster.StatsView("")
		resp.Cluster = &v
	}
	if dl := s.cache.Decisions(); dl != nil {
		resp.Decisions = map[string]uint64{
			kvcache.DecisionEvictUnprotected: dl.CountKind(kvcache.DecisionEvictUnprotected),
			kvcache.DecisionEvictForced:      dl.CountKind(kvcache.DecisionEvictForced),
			kvcache.DecisionDeny:             dl.CountKind(kvcache.DecisionDeny),
			kvcache.DecisionSave:             dl.CountKind(kvcache.DecisionSave),
		}
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(resp); err != nil {
		s.serveError("/stats", requestID(r), err)
	}
}

// handleMetrics serves the registry in Prometheus text format. The
// occupancy gauges are refreshed from a stats pass first, so a scrape
// always sees current entries/bytes/hit-rate alongside the counters.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.cache.Stats()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.cfg.Registry.WriteProm(w); err != nil {
		s.serveError("/metrics", requestID(r), err)
	}
}

// decisionsResponse is the /debug/decisions JSON schema.
type decisionsResponse struct {
	Total  uint64             `json:"total"`
	Counts map[string]uint64  `json:"counts"`
	Tail   []kvcache.Decision `json:"tail"`
}

// handleDecisions exports the policy decision ring: the most recent n
// (default 100, capped at the ring size by the log itself) attributed
// decisions, oldest first.
func (s *Server) handleDecisions(w http.ResponseWriter, r *http.Request) {
	dl := s.cache.Decisions()
	if dl == nil {
		http.Error(w, "decision log disabled", http.StatusNotFound)
		return
	}
	n := 100
	if v := r.URL.Query().Get("n"); v != "" {
		parsed, err := strconv.Atoi(v)
		if err != nil || parsed < 1 {
			http.Error(w, "bad n", http.StatusBadRequest)
			return
		}
		n = parsed
	}
	resp := decisionsResponse{
		Total: dl.Total(),
		Counts: map[string]uint64{
			kvcache.DecisionEvictUnprotected: dl.CountKind(kvcache.DecisionEvictUnprotected),
			kvcache.DecisionEvictForced:      dl.CountKind(kvcache.DecisionEvictForced),
			kvcache.DecisionDeny:             dl.CountKind(kvcache.DecisionDeny),
			kvcache.DecisionSave:             dl.CountKind(kvcache.DecisionSave),
		},
		Tail: dl.Tail(n),
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(resp); err != nil {
		s.serveError("/debug/decisions", requestID(r), err)
	}
}

// handleHealthz is liveness: the process is up and serving HTTP. It stays
// 200 even while shards serve degraded — a degraded cache is exactly the
// state where restarting the process would make things worse.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.WriteHeader(http.StatusOK)
	if _, err := io.WriteString(w, "ok\n"); err != nil {
		s.serveError("/healthz", requestID(r), err)
	}
}

// readyzResponse is the /readyz JSON schema.
type readyzResponse struct {
	Ready bool `json:"ready"`
	// DegradedShards is the number of shards currently serving in
	// shadow-LRU fallback (the reason for a not-ready answer).
	DegradedShards int `json:"degraded_shards"`
	// BreakerTrips/Rearms give the transition history behind the state.
	BreakerTrips  uint64 `json:"breaker_trips"`
	BreakerRearms uint64 `json:"breaker_rearms"`
}

// handleReadyz is readiness: 200 while every shard serves its configured
// policy, 503 while any shard is tripped into degraded shadow-LRU
// fallback — load balancers drain a degraded replica without killing it.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	resp := readyzResponse{
		DegradedShards: s.cache.DegradedShards(),
		BreakerTrips:   s.cache.BreakerTrips(),
		BreakerRearms:  s.cache.BreakerRearms(),
	}
	resp.Ready = resp.DegradedShards == 0
	w.Header().Set("Content-Type", "application/json")
	if !resp.Ready {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	if err := json.NewEncoder(w).Encode(resp); err != nil {
		s.serveError("/readyz", requestID(r), err)
	}
}
