package kvserver

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"testing"
	"time"

	"pdp/internal/cluster"
	"pdp/internal/kvcache"
	"pdp/internal/telemetry"
)

// postBatch posts ops to base's /batch and decodes the per-op results.
func postBatch(t *testing.T, base string, ops []wireOp) (int, []wireResult) {
	t.Helper()
	body, err := json.Marshal(ops)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return resp.StatusCode, nil
	}
	var out []wireResult
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decode batch response: %v", err)
	}
	return resp.StatusCode, out
}

// TestBatchRoundTrip drives one mixed batch through a single node and
// checks the wire statuses, the returned values, the batch telemetry and
// the /stats batch section.
func TestBatchRoundTrip(t *testing.T) {
	srv, base := startServer(t, kvcache.Config{Shards: 2, Sets: 16, Ways: 4},
		Config{MaxValueBytes: 64, Registry: telemetry.NewRegistry()})

	big := make([]byte, 65) // over MaxValueBytes: per-op too_large
	status, out := postBatch(t, base, []wireOp{
		{Op: "put", Key: "a", Value: []byte("alpha")},
		{Op: "get", Key: "a"},
		{Op: "get", Key: "absent"},
		{Op: "put", Key: "big", Value: big},
		{Op: "delete", Key: "a"},
		{Op: "delete", Key: "never"},
		{Op: "frob", Key: "a"},
		{Op: "get", Key: ""},
	})
	if status != http.StatusOK {
		t.Fatalf("batch status %d", status)
	}
	want := []string{"stored", "hit", "miss", "too_large", "deleted", "not_found", "error", "error"}
	for i, w := range want {
		if out[i].Status != w {
			t.Errorf("op %d: status %q, want %q", i, out[i].Status, w)
		}
	}
	if !bytes.Equal(out[1].Value, []byte("alpha")) {
		t.Errorf("op 1 value %q, want alpha", out[1].Value)
	}
	// The oversized value never reached the cache.
	if _, ok := srv.cache.Get("big"); ok {
		t.Error("too_large value was stored")
	}

	// Batch telemetry: counts, the size histogram, the per-op latency.
	reg := srv.cfg.Registry
	if got := reg.Counter("http.batches").Value(); got != 1 {
		t.Errorf("http.batches = %d, want 1", got)
	}
	if got := reg.Counter("http.batch_ops").Value(); got != 8 {
		t.Errorf("http.batch_ops = %d, want 8", got)
	}
	if got := reg.Histogram("http.batch_op_latency_ns").Count(); got != 8 {
		t.Errorf("batch_op_latency count = %d, want 8 (one amortized sample per op)", got)
	}

	// /stats exposes the batch section.
	resp, err := http.Get(base + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st statsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Batch == nil || st.Batch.Batches != 1 || st.Batch.Ops != 8 {
		t.Fatalf("stats batch section: %+v", st.Batch)
	}
}

// TestBatchRejections covers the whole-batch failure modes: an empty
// batch, a malformed body, and one exceeding MaxBatchOps.
func TestBatchRejections(t *testing.T) {
	_, base := startServer(t, kvcache.Config{Shards: 2, Sets: 16, Ways: 4},
		Config{MaxBatchOps: 4, Registry: telemetry.NewRegistry()})

	if status, _ := postBatch(t, base, []wireOp{}); status != http.StatusBadRequest {
		t.Errorf("empty batch: %d, want 400", status)
	}
	resp, err := http.Post(base+"/batch", "application/json", bytes.NewReader([]byte("{not json")))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed body: %d, want 400", resp.StatusCode)
	}
	ops := make([]wireOp, 5)
	for i := range ops {
		ops[i] = wireOp{Op: "get", Key: fmt.Sprintf("k%d", i)}
	}
	if status, _ := postBatch(t, base, ops); status != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized batch: %d, want 413", status)
	}
	resp, err = http.Get(base + "/batch")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /batch: %d, want 405", resp.StatusCode)
	}
}

// startBatchCluster boots n ring-wired nodes like startCluster, but lets
// the caller adjust each node's server config (gate limits for the
// partial-failure test).
func startBatchCluster(t *testing.T, n int, tweak func(i int, scfg *Config)) []*clusterNode {
	t.Helper()
	lns := make([]net.Listener, n)
	urls := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		urls[i] = "http://" + ln.Addr().String()
	}
	nodes := make([]*clusterNode, n)
	for i := range nodes {
		reg := telemetry.NewRegistry()
		cache, err := kvcache.New(kvcache.Config{Shards: 2, Sets: 64, Ways: 4, Registry: reg})
		if err != nil {
			t.Fatal(err)
		}
		cl, err := cluster.New(cluster.Config{
			Self:       urls[i],
			Peers:      urls,
			ProbeEvery: 50 * time.Millisecond,
			EjectAfter: 2,
			Registry:   reg,
		})
		if err != nil {
			t.Fatal(err)
		}
		scfg := Config{Addr: urls[i], Listener: lns[i], Cluster: cl, Registry: reg}
		if tweak != nil {
			tweak(i, &scfg)
		}
		srv, err := New(cache, scfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := srv.Start(context.Background()); err != nil {
			t.Fatal(err)
		}
		nodes[i] = &clusterNode{cache: cache, srv: srv, base: urls[i]}
	}
	t.Cleanup(func() {
		for _, nd := range nodes {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			nd.srv.Shutdown(ctx)
			cancel()
		}
	})
	return nodes
}

// ownedKeys returns count keys the ring resolves to each node, indexed
// like nodes.
func ownedKeys(nodes []*clusterNode, count int) [][]string {
	ring := nodes[0].srv.cfg.Cluster.Ring()
	out := make([][]string, len(nodes))
	for i := 0; len(out[0]) < count || len(out[1]) < count || (len(nodes) > 2 && len(out[2]) < count); i++ {
		key := fmt.Sprintf("bk-%04d", i)
		owner, _ := ring.Owner(key)
		for j, nd := range nodes {
			if nd.base == owner && len(out[j]) < count {
				out[j] = append(out[j], key)
			}
		}
	}
	return out
}

// TestBatchScatterGatherOrder: a batch interleaving keys owned by all
// three nodes, posted to one node, comes back in input order with every
// value intact and each op attributed to the node that executed it.
func TestBatchScatterGatherOrder(t *testing.T) {
	nodes := startBatchCluster(t, 3, nil)
	owned := ownedKeys(nodes, 8)

	// Interleave the owners so the reassembly has to undo the grouping,
	// and store every key's value through the batch path itself.
	var keys []string
	for k := 0; k < 8; k++ {
		for j := range nodes {
			keys = append(keys, owned[j][k])
		}
	}
	puts := make([]wireOp, len(keys))
	for i, k := range keys {
		puts[i] = wireOp{Op: "put", Key: k, Value: []byte("val-" + k)}
	}
	status, out := postBatch(t, nodes[0].base, puts)
	if status != http.StatusOK {
		t.Fatalf("put batch status %d", status)
	}
	for i := range out {
		if out[i].Status != "stored" {
			t.Fatalf("put %d (%s): %+v", i, keys[i], out[i])
		}
	}

	gets := make([]wireOp, len(keys))
	for i, k := range keys {
		gets[i] = wireOp{Op: "get", Key: k}
	}
	status, out = postBatch(t, nodes[0].base, gets)
	if status != http.StatusOK {
		t.Fatalf("get batch status %d", status)
	}
	ring := nodes[0].srv.cfg.Cluster.Ring()
	for i, k := range keys {
		if out[i].Status != "hit" {
			t.Errorf("get %d (%s): status %q, want hit", i, k, out[i].Status)
		}
		if want := "val-" + k; !bytes.Equal(out[i].Value, []byte(want)) {
			t.Errorf("get %d (%s): value %q, want %q — input order broken", i, k, out[i].Value, want)
		}
		if owner, _ := ring.Owner(k); out[i].Node != owner {
			t.Errorf("get %d (%s): node %q, want owner %q", i, k, out[i].Node, owner)
		}
	}

	// The fan-out actually engaged: the entry node issued sub-batches.
	if v := nodes[0].srv.cfg.Cluster.StatsView(""); v.BatchFanout == 0 {
		t.Error("no batch fan-out recorded; scatter-gather inert")
	}
}

// TestBatchPartialFailureShed: with one peer's admission gate saturated,
// a mixed batch through another node completes partially — the shedding
// peer's ops book "shed", everything else (local hits/misses, an
// oversized value) proceeds normally.
func TestBatchPartialFailureShed(t *testing.T) {
	// Node 1 gets a one-slot gate; the others stay ungated.
	nodes := startBatchCluster(t, 2, func(i int, scfg *Config) {
		scfg.MaxValueBytes = 64
		if i == 1 {
			scfg.MaxInflight = 1
		}
	})
	owned := ownedKeys(nodes, 4)

	// Warm a local key so the batch sees a hit.
	status, out := postBatch(t, nodes[0].base, []wireOp{
		{Op: "put", Key: owned[0][0], Value: []byte("local-v")},
	})
	if status != http.StatusOK || out[0].Status != "stored" {
		t.Fatalf("warm put: %d %+v", status, out)
	}

	// Saturate node 1's only gate slot with a PUT whose body never
	// arrives (the TestHealthExemptFromGate technique).
	pr, pw := io.Pipe()
	defer pw.Close()
	req, _ := http.NewRequest(http.MethodPut, nodes[1].base+"/kv/stall", pr)
	req.ContentLength = -1
	stalled := make(chan struct{})
	go func() {
		defer close(stalled)
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()
	// Wait for the stalled PUT to occupy the slot by watching the gate's
	// own inflight count. Probing with real /kv/ requests would race: each
	// probe holds the single slot for its own round-trip, and a probe
	// in flight when the stalled PUT arrives sheds it — permanently, since
	// the pipe never retries.
	deadline := time.Now().Add(5 * time.Second)
	for nodes[1].srv.gate.InFlight() != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("gate never saturated: inflight %d", nodes[1].srv.gate.InFlight())
		}
		time.Sleep(2 * time.Millisecond)
	}

	big := make([]byte, 65)
	status, out = postBatch(t, nodes[0].base, []wireOp{
		{Op: "get", Key: owned[0][0]},                     // local hit
		{Op: "get", Key: owned[1][0]},                     // peer-owned: shed
		{Op: "get", Key: owned[0][1]},                     // local miss
		{Op: "put", Key: owned[0][2], Value: big},         // local too_large
		{Op: "put", Key: owned[1][1], Value: []byte("x")}, // peer-owned: shed
	})
	if status != http.StatusOK {
		t.Fatalf("mixed batch status %d (partial failure must not fail the batch)", status)
	}
	want := []string{"hit", "shed", "miss", "too_large", "shed"}
	for i, w := range want {
		if out[i].Status != w {
			t.Errorf("op %d: status %q, want %q (results: %+v)", i, out[i].Status, w, out)
		}
	}
	if !bytes.Equal(out[0].Value, []byte("local-v")) {
		t.Errorf("op 0 value %q, want local-v", out[0].Value)
	}
	for _, i := range []int{1, 4} {
		if out[i].Node != nodes[1].base {
			t.Errorf("op %d: shed attributed to %q, want the shedding peer %q", i, out[i].Node, nodes[1].base)
		}
	}

	pw.CloseWithError(io.ErrUnexpectedEOF)
	<-stalled
}

// TestBatchDeadPeerFallback is the 3-node e2e with one dead member: after
// the peer is killed, batches through a survivor that include the dead
// node's keys still answer every op — its ops fall back to local
// execution (possibly misses, never errors) until the probe loop ejects
// it, after which ownership reroutes entirely.
func TestBatchDeadPeerFallback(t *testing.T) {
	nodes := startBatchCluster(t, 3, nil)
	owned := ownedKeys(nodes, 4)

	// Kill node 2 hard.
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	nodes[2].srv.Shutdown(ctx)
	cancel()

	// Immediately drive batches with all three owners' keys through node
	// 0. Every op must resolve to a definite status; the dead peer's ops
	// go through the local fallback (miss/stored locally), never "error".
	for round := 0; round < 10; round++ {
		ops := []wireOp{
			{Op: "put", Key: owned[0][0], Value: []byte("a")},
			{Op: "put", Key: owned[1][0], Value: []byte("b")},
			{Op: "put", Key: owned[2][0], Value: []byte("c")}, // dead owner
			{Op: "get", Key: owned[2][1]},                     // dead owner
			{Op: "get", Key: owned[1][1]},
		}
		status, out := postBatch(t, nodes[0].base, ops)
		if status != http.StatusOK {
			t.Fatalf("round %d: batch status %d", round, status)
		}
		for i, res := range out {
			switch res.Status {
			case "hit", "miss", "stored", "denied", "deleted", "not_found", "shed":
			default:
				t.Fatalf("round %d op %d (%s): status %q — dead peer must not surface errors",
					round, i, ops[i].Key, res.Status)
			}
		}
		time.Sleep(20 * time.Millisecond)
	}

	// The survivor bridged with local fallbacks and/or ejected the peer.
	v := nodes[0].srv.cfg.Cluster.StatsView("")
	if v.FallbackLocal == 0 && v.Alive == 3 {
		t.Error("dead peer neither triggered local fallback nor got ejected")
	}
}
