package kvserver

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"

	"pdp/internal/kvcache"
	"pdp/internal/telemetry"
)

// flushRecorder is a ResponseWriter that records whether Flush reached
// it — the capability statusWriter must not swallow.
type flushRecorder struct {
	nopResponseWriter
	flushed bool
}

func (w *flushRecorder) Flush() { w.flushed = true }

// readFromRecorder additionally implements io.ReaderFrom, recording
// whether the sendfile-style path was taken.
type readFromRecorder struct {
	nopResponseWriter
	readFrom bool
	n        int64
}

func (w *readFromRecorder) ReadFrom(r io.Reader) (int64, error) {
	w.readFrom = true
	n, err := io.Copy(struct{ io.Writer }{w}, r)
	w.n += n
	return n, err
}

// opaqueReader hides bytes.Reader's WriterTo so io.Copy must discover
// the destination's ReaderFrom instead.
type opaqueReader struct{ io.Reader }

// TestInstrumentPreservesFlusher pins the statusWriter contract: a
// handler running under instrument can still type-assert http.Flusher
// and the flush reaches the real connection. Before the pass-throughs,
// wrapping hid the interface and streaming handlers silently stopped
// flushing.
func TestInstrumentPreservesFlusher(t *testing.T) {
	cache, err := kvcache.New(kvcache.Config{Shards: 1, Sets: 4, Ways: 2})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(cache, Config{Addr: "127.0.0.1:0", Registry: telemetry.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}

	sawFlusher := false
	h := srv.instrument("/stream", func(w http.ResponseWriter, r *http.Request) {
		f, ok := w.(http.Flusher)
		sawFlusher = ok
		if ok {
			f.Flush()
		}
	})
	rec := &flushRecorder{nopResponseWriter: nopResponseWriter{h: make(http.Header)}}
	req, _ := http.NewRequest(http.MethodGet, "http://x/stream", nil)
	h.ServeHTTP(rec, req)
	if !sawFlusher {
		t.Fatal("handler could not assert http.Flusher through the instrumented writer")
	}
	if !rec.flushed {
		t.Fatal("Flush did not reach the underlying writer")
	}

	// A writer with no Flusher underneath must not panic: the
	// pass-through degrades to a no-op.
	h.ServeHTTP(&statusWriter{ResponseWriter: nopResponseWriter{h: make(http.Header)}}, req)
}

// TestStatusWriterReadFrom pins the io.ReaderFrom pass-through both
// ways: delegated when the wrapped writer implements it, plain copy
// when it doesn't — and io.Copy must discover it through the wrapper.
func TestStatusWriterReadFrom(t *testing.T) {
	payload := strings.Repeat("x", 4096)

	under := &readFromRecorder{nopResponseWriter: nopResponseWriter{h: make(http.Header)}}
	sw := &statusWriter{ResponseWriter: under, status: http.StatusOK}
	n, err := io.Copy(sw, opaqueReader{bytes.NewReader([]byte(payload))})
	if err != nil || n != int64(len(payload)) {
		t.Fatalf("io.Copy through statusWriter: n=%d err=%v", n, err)
	}
	if !under.readFrom {
		t.Fatal("underlying ReadFrom was not delegated to")
	}

	// Underlying writer without ReaderFrom: the fallback copy still
	// moves every byte.
	plain := &statusWriter{ResponseWriter: nopResponseWriter{h: make(http.Header)}}
	n, err = plain.ReadFrom(opaqueReader{bytes.NewReader([]byte(payload))})
	if err != nil || n != int64(len(payload)) {
		t.Fatalf("fallback ReadFrom: n=%d err=%v", n, err)
	}
}

// TestStatusWriterUnwrap pins the http.ResponseController convention.
func TestStatusWriterUnwrap(t *testing.T) {
	under := &flushRecorder{nopResponseWriter: nopResponseWriter{h: make(http.Header)}}
	sw := &statusWriter{ResponseWriter: under}
	if got := sw.Unwrap(); got != http.ResponseWriter(under) {
		t.Fatalf("Unwrap returned %T, want the wrapped writer", got)
	}
}

// TestMethodLabelClamped is the cardinality regression test for the
// per-route request counters: arbitrary client methods (`curl -X
// whatever`) must collapse into the OTHER label instead of minting one
// Prometheus series per distinct string an attacker sends.
func TestMethodLabelClamped(t *testing.T) {
	_, base := startServer(t, kvcache.Config{
		Shards: 1, Sets: 16, Ways: 4, Registry: telemetry.NewRegistry(),
	}, Config{})
	client := &http.Client{}

	junk := []string{"FOO", "BARBAZ", "EVIL-9", "get"} // casing variants are unknown too
	for _, method := range junk {
		req, err := http.NewRequest(method, base+"/kv/cardinality", nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := client.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}

	resp, err := client.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	page := string(body)
	if err := telemetry.LintProm(bytes.NewReader(body)); err != nil {
		t.Fatalf("/metrics fails promlint after clamped methods: %v", err)
	}
	if !strings.Contains(page, `method="OTHER"`) {
		t.Fatal("expected a method=\"OTHER\" series after unknown-method requests")
	}
	for _, method := range junk {
		if strings.Contains(page, `method="`+method+`"`) {
			t.Fatalf("raw client method %q leaked into a metric series", method)
		}
	}
}

// TestMethodCardinalityCap hammers one route's counter cache with
// hundreds of distinct methods and asserts the series count stays at
// one — the OTHER clamp — not one per string.
func TestMethodCardinalityCap(t *testing.T) {
	reg := telemetry.NewRegistry()
	m := &routeMetrics{
		name:    "/kv/",
		latency: reg.Histogram(`http.latency_ns{route="/kv/"}`),
		reg:     reg,
	}
	for i := 0; i < 500; i++ {
		m.counter(fmt.Sprintf("M%03d", i), http.StatusMethodNotAllowed).Inc()
	}
	series := 0
	for _, name := range reg.Names() {
		if strings.HasPrefix(name, "http.requests{") {
			series++
		}
	}
	if series != 1 {
		t.Fatalf("500 distinct methods minted %d request series, want 1 (OTHER clamp)", series)
	}

	// Known methods still get their own labeled series.
	for _, method := range knownMethods {
		m.counter(method, http.StatusOK).Inc()
	}
	series = 0
	for _, name := range reg.Names() {
		if strings.HasPrefix(name, "http.requests{") {
			series++
		}
	}
	want := len(knownMethods) + 1 // one per known label at 200, plus the 405 OTHER above
	if series != want {
		t.Fatalf("series count %d, want %d: cardinality must be bounded by the known-method set", series, want)
	}
}
