package kvserver

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"pdp/internal/kvcache"
	"pdp/internal/loadgen"
	"pdp/internal/telemetry"
	"pdp/internal/workload"
)

// TestReadOnlyEndpointsRejectWrites pins the 405 contract: every
// read-only endpoint answers non-GET methods with MethodNotAllowed and
// an Allow header, without touching its handler.
func TestReadOnlyEndpointsRejectWrites(t *testing.T) {
	_, base := startServer(t, kvcache.Config{Shards: 1, Sets: 16, Ways: 4}, Config{})
	for _, route := range []string{"/stats", "/healthz", "/metrics", "/debug/decisions"} {
		for _, method := range []string{http.MethodPost, http.MethodPut, http.MethodDelete} {
			req, _ := http.NewRequest(method, base+route, bytes.NewReader([]byte("x")))
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusMethodNotAllowed {
				t.Fatalf("%s %s: %s, want 405", method, route, resp.Status)
			}
			if resp.Header.Get("Allow") != http.MethodGet {
				t.Fatalf("%s %s: Allow=%q", method, route, resp.Header.Get("Allow"))
			}
		}
		// GET still works.
		resp, err := http.Get(base + route)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %s", route, resp.Status)
		}
	}
}

// TestRequestIDHeader: the middleware echoes a caller-supplied
// X-Request-Id and mints distinct ids when the caller sends none.
func TestRequestIDHeader(t *testing.T) {
	_, base := startServer(t, kvcache.Config{Shards: 1, Sets: 16, Ways: 4}, Config{})

	req, _ := http.NewRequest(http.MethodGet, base+"/healthz", nil)
	req.Header.Set("X-Request-Id", "trace-abc-123")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-Id"); got != "trace-abc-123" {
		t.Fatalf("echoed id = %q", got)
	}

	seen := map[string]bool{}
	for i := 0; i < 3; i++ {
		resp, err := http.Get(base + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		id := resp.Header.Get("X-Request-Id")
		if !strings.HasPrefix(id, "r-") || seen[id] {
			t.Fatalf("generated id %q (seen=%v)", id, seen)
		}
		seen[id] = true
	}
}

// promCounterValue extracts one sample's value from an exposition page;
// ok is false if the exact series is absent.
func promCounterValue(page, series string) (float64, bool) {
	for _, line := range strings.Split(page, "\n") {
		if strings.HasPrefix(line, series+" ") {
			v, err := strconv.ParseFloat(strings.TrimPrefix(line, series+" "), 64)
			if err != nil {
				return 0, false
			}
			return v, true
		}
	}
	return 0, false
}

// TestMetricsScrapeDuringLoad is the e2e satellite: scrape /metrics
// repeatedly while the load generator hammers the server, asserting
// every page parses as valid exposition text and the request counters
// move monotonically between scrapes.
func TestMetricsScrapeDuringLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("e2e scrape test")
	}
	_, base := startServer(t, kvcache.Config{
		Policy: kvcache.PolicyPDP, Shards: 2, Sets: 16, Ways: 8,
		RecomputeEvery: 2048, Registry: telemetry.NewRegistry(),
	}, Config{})

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		loadgen.Run(context.Background(), loadgen.Config{
			BaseURL: base,
			Mix:     workload.ServiceConfig{Keys: 200, ZipfS: 0.8, ValueBytes: 32},
			Workers: 2,
			Ops:     8000,
			Seed:    11,
		})
	}()

	var lastGets float64 = -1
	for i := 0; i < 5; i++ {
		resp, err := http.Get(base + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("scrape %d: %s", i, resp.Status)
		}
		if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
			t.Fatalf("scrape %d Content-Type = %q", i, ct)
		}
		if err := telemetry.LintProm(bytes.NewReader(body)); err != nil {
			t.Fatalf("scrape %d invalid exposition: %v\n%s", i, err, body)
		}
		page := string(body)
		gets, ok := promCounterValue(page, "kv_gets")
		if !ok {
			t.Fatalf("scrape %d missing kv_gets:\n%s", i, page)
		}
		if gets < lastGets {
			t.Fatalf("kv_gets went backwards: %v -> %v", lastGets, gets)
		}
		lastGets = gets
		if !strings.Contains(page, `http_latency_ns_bucket{route="/kv/",le="`) {
			t.Fatalf("scrape %d missing per-route latency buckets", i)
		}
		if _, ok := promCounterValue(page, "kv_pd"); !ok {
			t.Fatalf("scrape %d missing kv_pd gauge", i)
		}
		time.Sleep(20 * time.Millisecond)
	}
	wg.Wait()

	// After load, the per-shard decision counters must be present too.
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), `kv_shard_evictions{`) {
		t.Fatalf("no per-shard eviction attribution in exposition:\n%s", body)
	}
}

// TestStatsRicherFields asserts the expanded /stats payload: per-route
// latency quantiles, per-shard stats with skew, the decision counts,
// and the live RDD view for a PDP cache.
func TestStatsRicherFields(t *testing.T) {
	_, base := startServer(t, kvcache.Config{
		Policy: kvcache.PolicyPDP, Shards: 2, Sets: 16, Ways: 4,
		RecomputeEvery: 1 << 30, Registry: telemetry.NewRegistry(),
	}, Config{})

	_, err := loadgen.Run(context.Background(), loadgen.Config{
		BaseURL: base,
		Mix:     workload.ServiceConfig{Keys: 100, ZipfS: 0.8, ValueBytes: 32},
		Workers: 1,
		Ops:     3000,
		Seed:    5,
	})
	if err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(base + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st struct {
		HitRate   float64 `json:"hit_rate"`
		LatencyUS map[string]struct {
			Count uint64  `json:"count"`
			Mean  float64 `json:"mean"`
			P50   float64 `json:"p50"`
			P99   float64 `json:"p99"`
		} `json:"latency_us"`
		Shards []struct {
			Shard   int     `json:"shard"`
			Gets    uint64  `json:"gets"`
			HitRate float64 `json:"hit_rate"`
		} `json:"shards"`
		ShardSkew *struct {
			TrafficSkew float64 `json:"traffic_skew"`
		} `json:"shard_skew"`
		RDD *struct {
			Total uint64 `json:"total"`
			SC    int    `json:"sc"`
		} `json:"rdd"`
		Decisions map[string]uint64 `json:"decisions"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	kv, ok := st.LatencyUS["/kv/"]
	if !ok || kv.Count == 0 || kv.P50 <= 0 || kv.P99 < kv.P50 {
		t.Fatalf("latency_us[/kv/] = %+v (present=%v)", kv, ok)
	}
	if len(st.Shards) != 2 {
		t.Fatalf("%d shard entries", len(st.Shards))
	}
	var gets uint64
	for _, sh := range st.Shards {
		gets += sh.Gets
	}
	if gets == 0 {
		t.Fatal("shard gets all zero after load")
	}
	if st.ShardSkew == nil || st.ShardSkew.TrafficSkew < 1 {
		t.Fatalf("shard_skew = %+v", st.ShardSkew)
	}
	if st.RDD == nil || st.RDD.Total == 0 || st.RDD.SC == 0 {
		t.Fatalf("rdd = %+v", st.RDD)
	}
	if st.Decisions == nil {
		t.Fatal("decisions map absent")
	}
}

// TestDecisionsEndpoint drives enough conflicting traffic through a tiny
// PDP cache to populate the decision ring, then checks the export.
func TestDecisionsEndpoint(t *testing.T) {
	_, base := startServer(t, kvcache.Config{
		Policy: kvcache.PolicyPDP, Shards: 1, Sets: 4, Ways: 2,
		DefaultPD: 64, RecomputeEvery: 1 << 30,
	}, Config{})

	_, err := loadgen.Run(context.Background(), loadgen.Config{
		BaseURL: base,
		Mix:     workload.ServiceConfig{Keys: 64, ZipfS: 0.5, ValueBytes: 8},
		Workers: 1,
		Ops:     2000,
		Seed:    3,
	})
	if err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(base + "/debug/decisions?n=5")
	if err != nil {
		t.Fatal(err)
	}
	var dec struct {
		Total  uint64             `json:"total"`
		Counts map[string]uint64  `json:"counts"`
		Tail   []kvcache.Decision `json:"tail"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&dec); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if dec.Total == 0 {
		t.Fatal("no decisions after conflicting load")
	}
	if len(dec.Tail) == 0 || len(dec.Tail) > 5 {
		t.Fatalf("tail len %d with n=5", len(dec.Tail))
	}
	if _, ok := dec.Counts[kvcache.DecisionDeny]; !ok {
		t.Fatalf("counts missing deny kind: %v", dec.Counts)
	}
	var sum uint64
	for _, v := range dec.Counts {
		sum += v
	}
	if sum != dec.Total {
		t.Fatalf("kind counts sum %d != total %d", sum, dec.Total)
	}
	for i := 1; i < len(dec.Tail); i++ {
		if dec.Tail[i].Seq <= dec.Tail[i-1].Seq {
			t.Fatalf("tail not ordered: %+v", dec.Tail)
		}
	}

	// Malformed n is a client error.
	resp, err = http.Get(base + "/debug/decisions?n=banana")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad n: %s", resp.Status)
	}
}

// nopResponseWriter is the cheapest possible ResponseWriter, so the
// overhead benchmark measures the middleware, not the sink.
type nopResponseWriter struct{ h http.Header }

func (w nopResponseWriter) Header() http.Header         { return w.h }
func (w nopResponseWriter) Write(p []byte) (int, error) { return len(p), nil }
func (w nopResponseWriter) WriteHeader(int)             {}

// TestMiddlewareOverheadBudget is the CI perf guard: the full
// instrumentation path (request id, status capture, latency observe,
// counter bump) must cost under 1µs per request. Skipped under the race
// detector, whose instrumentation dwarfs the budget.
func TestMiddlewareOverheadBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("perf budget is meaningless under -race")
	}
	if testing.Short() {
		t.Skip("perf guard")
	}
	cache, err := kvcache.New(kvcache.Config{Shards: 1, Sets: 4, Ways: 2})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(cache, Config{Addr: "127.0.0.1:0", Registry: telemetry.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	h := srv.instrument("/bench", func(http.ResponseWriter, *http.Request) {})
	req, _ := http.NewRequest(http.MethodGet, "http://x/bench", nil)
	w := nopResponseWriter{h: make(http.Header)}

	// Best of three: the guard polices the middleware, not scheduler noise
	// from whatever else the test host is compiling at the time.
	perOp := math.Inf(1)
	allocs := int64(0)
	for run := 0; run < 3 && perOp > 1000; run++ {
		res := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				h.ServeHTTP(w, req)
			}
		})
		if got := float64(res.T.Nanoseconds()) / float64(res.N); got < perOp {
			perOp = got
			allocs = res.AllocsPerOp()
		}
	}
	t.Logf("middleware overhead: %.0f ns/op, %d allocs/op", perOp, allocs)
	if perOp > 1000 {
		t.Fatalf("middleware overhead %.0f ns/op exceeds the 1µs budget", perOp)
	}
}
