// Package sdp implements the Sampling Dead Block Predictor of Khan, Jiménez
// et al. (MICRO 2010), the PC-based bypass/replacement comparison point of
// the PDP paper. A small decoupled sampler observes a few sets with its own
// LRU tag array, training three skewed PC-indexed counter tables: the last
// PC to touch a line that then dies (is evicted unused) is trained "dead";
// a PC whose line is re-referenced is trained "live". The main cache
// bypasses fills predicted dead-on-arrival and preferentially victimizes
// predicted-dead lines. Per the PDP paper's methodology (Sec. 5), the
// predictor here is provisioned ~3x the original structure sizes.
package sdp

import (
	"pdp/internal/cache"
	"pdp/internal/trace"
)

// Config parameterizes SDP.
type Config struct {
	Sets, Ways int
	// SamplerSets is the number of decoupled sampler sets (3x the original
	// 32 per the PDP paper's provisioning).
	SamplerSets int
	// SamplerAssoc is the sampler tag array associativity.
	SamplerAssoc int
	// TableSize is the number of counters per skewed table.
	TableSize int
	// Threshold: a PC is predicted dead when the three counters sum to at
	// least this value (counters saturate at 3; max sum 9).
	Threshold int
	// AllowBypass gates dead-on-arrival bypassing (non-inclusive LLC).
	AllowBypass bool
}

func (c *Config) setDefaults() {
	// The PDP paper provisions SDP at 3x the original structure sizes (48
	// sets x 24 ways = 3x the original 32x12 sampler entries). The doubled
	// sampler associativity in particular widens the reuse window within
	// which a live PC can be recognized.
	if c.SamplerSets == 0 {
		c.SamplerSets = 48
	}
	if c.SamplerAssoc == 0 {
		c.SamplerAssoc = 24
	}
	if c.TableSize == 0 {
		c.TableSize = 3 * 4096
	}
	if c.Threshold == 0 {
		c.Threshold = 8
	}
	if c.SamplerSets > c.Sets {
		c.SamplerSets = c.Sets
	}
}

type sampEntry struct {
	tag   uint16
	pc    uint16
	valid bool
	lru   uint32
}

// SDP implements cache.Policy.
type SDP struct {
	cfg    Config
	lru    *cache.LRU
	dead   []bool // per-line dead prediction
	tables [3][]uint8
	samp   [][]sampEntry
	clock  uint32
	stride int

	// Bypassed counts dead-on-arrival bypasses (reporting).
	Bypassed uint64
}

var _ cache.Policy = (*SDP)(nil)

// New builds an SDP policy.
func New(cfg Config) *SDP {
	cfg.setDefaults()
	p := &SDP{
		cfg:    cfg,
		lru:    cache.NewLRU(cfg.Sets, cfg.Ways),
		dead:   make([]bool, cfg.Sets*cfg.Ways),
		samp:   make([][]sampEntry, cfg.SamplerSets),
		stride: cfg.Sets / cfg.SamplerSets,
	}
	if p.stride == 0 {
		p.stride = 1
	}
	for i := range p.tables {
		p.tables[i] = make([]uint8, cfg.TableSize)
	}
	for i := range p.samp {
		p.samp[i] = make([]sampEntry, cfg.SamplerAssoc)
	}
	return p
}

// Name implements cache.Policy.
func (p *SDP) Name() string { return "SDP" }

// sig folds a PC into the 16-bit trace signature (original: partial PC).
func sig(pc uint64) uint16 {
	x := pc ^ pc>>16 ^ pc>>32
	return uint16(x)
}

// hash indexes table t with a per-table skewing function.
func (p *SDP) hash(t int, s uint16) int {
	x := uint32(s)
	switch t {
	case 0:
		x = x*2654435761 + 17
	case 1:
		x = (x ^ x<<7) * 40503
	default:
		x = (x + 0xBEEF) * 48271
	}
	return int(x % uint32(p.cfg.TableSize))
}

// Predict reports whether a block last touched by pc is predicted dead.
func (p *SDP) Predict(pc uint64) bool {
	s := sig(pc)
	sum := 0
	for t := range p.tables {
		sum += int(p.tables[t][p.hash(t, s)])
	}
	return sum >= p.cfg.Threshold
}

// train adjusts the three tables for signature s: dead=true increments,
// dead=false decrements (saturating 2-bit counters).
func (p *SDP) train(s uint16, dead bool) {
	for t := range p.tables {
		i := p.hash(t, s)
		v := p.tables[t][i]
		if dead {
			if v < 3 {
				p.tables[t][i] = v + 1
			}
		} else if v > 0 {
			p.tables[t][i] = v - 1
		}
	}
}

// samplerAccess runs the decoupled sampler for an access to a sampled set.
func (p *SDP) samplerAccess(set int, acc trace.Access) {
	if set%p.stride != 0 {
		return
	}
	slot := set / p.stride
	if slot >= p.cfg.SamplerSets {
		return
	}
	arr := p.samp[slot]
	// Fold the full line address into the 16-bit partial tag (a straight
	// truncation aliases against periodic address patterns).
	x := acc.Addr >> 6
	tag := uint16(x ^ x>>16 ^ x>>32)
	pcs := sig(acc.PC)
	p.clock++

	// Hit: the previous last-touch PC led to a reuse -> train live.
	for i := range arr {
		if arr[i].valid && arr[i].tag == tag {
			p.train(arr[i].pc, false)
			arr[i].pc = pcs
			arr[i].lru = p.clock
			return
		}
	}
	// Miss: evict sampler LRU; its last-touch PC led to a dead block.
	victim, oldest := 0, ^uint32(0)
	for i := range arr {
		if !arr[i].valid {
			victim = i
			oldest = 0
			break
		}
		if arr[i].lru < oldest {
			victim, oldest = i, arr[i].lru
		}
	}
	if arr[victim].valid {
		p.train(arr[victim].pc, true)
	}
	arr[victim] = sampEntry{tag: tag, pc: pcs, valid: true, lru: p.clock}
}

// Hit implements cache.Policy.
func (p *SDP) Hit(set, way int, acc trace.Access) {
	p.lru.Hit(set, way, acc)
	p.dead[set*p.cfg.Ways+way] = p.Predict(acc.PC)
}

// Victim implements cache.Policy: predicted-dead lines first, else LRU.
// Fills predicted dead-on-arrival bypass when allowed.
func (p *SDP) Victim(set int, acc trace.Access) (int, bool) {
	if p.cfg.AllowBypass && !acc.WB && p.Predict(acc.PC) {
		p.Bypassed++
		return 0, true
	}
	base := set * p.cfg.Ways
	for w := 0; w < p.cfg.Ways; w++ {
		if p.dead[base+w] {
			return w, false
		}
	}
	return p.lru.Victim(set, acc)
}

// Insert implements cache.Policy.
func (p *SDP) Insert(set, way int, acc trace.Access) {
	p.lru.Insert(set, way, acc)
	p.dead[set*p.cfg.Ways+way] = p.Predict(acc.PC)
}

// Evict implements cache.Policy.
func (p *SDP) Evict(set, way int) {
	p.lru.Evict(set, way)
	p.dead[set*p.cfg.Ways+way] = false
}

// PostAccess implements cache.Policy: feeds the decoupled sampler.
func (p *SDP) PostAccess(set int, acc trace.Access) {
	if !acc.WB {
		p.samplerAccess(set, acc)
	}
}
