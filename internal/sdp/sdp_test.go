package sdp

import (
	"testing"

	"pdp/internal/cache"
	"pdp/internal/trace"
)

func addr(sets, set, tag int) uint64 { return uint64(tag*sets+set) * 64 }

func TestPredictorTrainsDeadFromSamplerEvictions(t *testing.T) {
	p := New(Config{Sets: 4, Ways: 2, SamplerSets: 1, SamplerAssoc: 2})
	c := cache.New(cache.Config{Name: "t", Sets: 4, Ways: 2, LineSize: 64}, p)
	deadPC := uint64(0xDEAD)
	if p.Predict(deadPC) {
		t.Fatal("untrained predictor must predict live")
	}
	// Stream distinct lines through sampled set 0 with one PC: every
	// sampler eviction trains that PC dead.
	for tag := 0; tag < 40; tag++ {
		c.Access(trace.Access{Addr: addr(4, 0, tag), PC: deadPC})
	}
	if !p.Predict(deadPC) {
		t.Fatal("streaming PC must be predicted dead")
	}
}

func TestPredictorTrainsLiveFromSamplerHits(t *testing.T) {
	p := New(Config{Sets: 4, Ways: 4, SamplerSets: 1, SamplerAssoc: 4})
	c := cache.New(cache.Config{Name: "t", Sets: 4, Ways: 4, LineSize: 64}, p)
	livePC := uint64(0x11FE)
	// Two lines ping-ponging: constant sampler hits, no evictions.
	for i := 0; i < 100; i++ {
		c.Access(trace.Access{Addr: addr(4, 0, i%2), PC: livePC})
	}
	if p.Predict(livePC) {
		t.Fatal("reusing PC must be predicted live")
	}
}

func TestDeadOnArrivalBypass(t *testing.T) {
	p := New(Config{Sets: 4, Ways: 2, SamplerSets: 1, SamplerAssoc: 2, AllowBypass: true})
	c := cache.New(cache.Config{Name: "t", Sets: 4, Ways: 2, LineSize: 64, AllowBypass: true}, p)
	deadPC := uint64(0xDEAD)
	for tag := 0; tag < 40; tag++ {
		c.Access(trace.Access{Addr: addr(4, 0, tag), PC: deadPC})
	}
	// Set 1 is unsampled; fill it, then a dead-PC miss must bypass.
	c.Access(trace.Access{Addr: addr(4, 1, 100), PC: 1})
	c.Access(trace.Access{Addr: addr(4, 1, 101), PC: 1})
	r := c.Access(trace.Access{Addr: addr(4, 1, 102), PC: deadPC})
	if !r.Bypass {
		t.Fatalf("dead-on-arrival fill must bypass, got %+v", r)
	}
	if p.Bypassed == 0 {
		t.Fatal("bypass counter not incremented")
	}
}

func TestVictimPrefersPredictedDead(t *testing.T) {
	p := New(Config{Sets: 4, Ways: 2, SamplerSets: 1, SamplerAssoc: 2})
	c := cache.New(cache.Config{Name: "t", Sets: 4, Ways: 2, LineSize: 64}, p)
	deadPC := uint64(0xDEAD)
	for tag := 0; tag < 40; tag++ {
		c.Access(trace.Access{Addr: addr(4, 0, tag), PC: deadPC})
	}
	// Unsampled set 1: insert a dead-PC line (MRU) and a live line (LRU).
	c.Access(trace.Access{Addr: addr(4, 1, 0), PC: 1})      // live, becomes LRU
	c.Access(trace.Access{Addr: addr(4, 1, 1), PC: deadPC}) // dead-predicted, MRU
	r := c.Access(trace.Access{Addr: addr(4, 1, 2), PC: 1}) // miss
	if r.VictimAddr != addr(4, 1, 1) {
		t.Fatalf("victim = %#x, want predicted-dead line despite being MRU", r.VictimAddr)
	}
}

func TestSDPProtectsHotSetAgainstStream(t *testing.T) {
	// Hot working set touched by "live" PCs and a cold stream from a
	// distinct "dead" PC: SDP must beat LRU by bypassing the stream.
	const sets, ways = 64, 4
	p := New(Config{Sets: sets, Ways: ways, AllowBypass: true})
	cS := cache.New(cache.Config{Name: "t", Sets: sets, Ways: ways, LineSize: 64, AllowBypass: true}, p)
	cL := cache.New(cache.Config{Name: "t", Sets: sets, Ways: ways, LineSize: 64}, cache.NewLRU(sets, ways))

	hot := trace.NewLoopGen("hot", 2*sets, 1, 1)
	stream := trace.NewStreamGen("stream", 2)
	mix := trace.NewMixGen("mix", 7, []trace.Generator{hot, stream}, []float64{0.4, 0.6})
	for i := 0; i < 300000; i++ {
		a := mix.Next()
		cS.Access(a)
		cL.Access(a)
	}
	if cS.Stats.HitRate() < cL.Stats.HitRate()+0.1 {
		t.Fatalf("SDP %.3f vs LRU %.3f under streaming: want clear win",
			cS.Stats.HitRate(), cL.Stats.HitRate())
	}
}

func TestWritebacksDontTrainSampler(t *testing.T) {
	p := New(Config{Sets: 4, Ways: 2, SamplerSets: 1, SamplerAssoc: 2})
	c := cache.New(cache.Config{Name: "t", Sets: 4, Ways: 2, LineSize: 64}, p)
	pc := uint64(0xB0B)
	for tag := 0; tag < 40; tag++ {
		c.Access(trace.Access{Addr: addr(4, 0, tag), PC: pc, Write: true, WB: true})
	}
	if p.Predict(pc) {
		t.Fatal("writeback traffic must not train the predictor")
	}
}
