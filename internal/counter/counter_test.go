package counter

import (
	"testing"

	"pdp/internal/cache"
	"pdp/internal/trace"
)

func addr(sets, set, tag int) uint64 { return uint64(tag*sets+set) * 64 }

func mk(sets, ways int, bypass bool) (*cache.Cache, *AIP) {
	p := New(Config{Sets: sets, Ways: ways, AllowBypass: bypass})
	c := cache.New(cache.Config{Name: "t", Sets: sets, Ways: ways, LineSize: 64,
		AllowBypass: bypass}, p)
	return c, p
}

func TestLearnsAccessInterval(t *testing.T) {
	c, p := mk(1, 4, false)
	pc := uint64(0x700)
	// A line touched every 3 set accesses, across two generations so the
	// table learns at the first eviction.
	for round := 0; round < 30; round++ {
		c.Access(trace.Access{Addr: addr(1, 0, 0), PC: pc})
		c.Access(trace.Access{Addr: addr(1, 0, 1+round%8), PC: 0x900})
		c.Access(trace.Access{Addr: addr(1, 0, 9+round%8), PC: 0x900})
	}
	// Learning happens at eviction: push the hot line out once.
	for i := 0; i < 8; i++ {
		c.Access(trace.Access{Addr: addr(1, 0, 200+i), PC: 0x900})
	}
	e := p.table[p.sigOf(pc)]
	if !e.confident {
		t.Fatal("signature must be confident after evictions")
	}
	// The line's observed interval is ~3.
	if e.interval > 8 {
		t.Fatalf("learned interval %d, want small (~3)", e.interval)
	}
}

func TestExpiredLinesEvictedFirst(t *testing.T) {
	c, p := mk(1, 2, false)
	// Train signature 0xAAA with interval ~1 via a first generation.
	for i := 0; i < 40; i++ {
		c.Access(trace.Access{Addr: addr(1, 0, i%4), PC: 0xAAA})
	}
	// Fresh set state: insert a trained line, then let it expire.
	c.Access(trace.Access{Addr: addr(1, 0, 100), PC: 0xAAA}) // way X
	c.Access(trace.Access{Addr: addr(1, 0, 101), PC: 0xBBB}) // untrained: MaxCounter threshold
	for i := 0; i < 30; i++ {
		c.Access(trace.Access{Addr: addr(1, 0, 100), PC: 0xAAA})
		c.Access(trace.Access{Addr: addr(1, 0, 101), PC: 0xBBB})
	}
	// Now stop touching 100; after enough set accesses it expires while 101
	// stays protected by its untrained (max) threshold... instead verify
	// via the Expired probe after idle accesses.
	for i := 0; i < 64; i++ {
		c.Access(trace.Access{Addr: addr(1, 0, 101), PC: 0xBBB})
	}
	set, found := 0, false
	for w := 0; w < 2; w++ {
		if c.Valid(set, w) && c.LineAddr(set, w) == addr(1, 0, 100) {
			found = true
			if !p.Expired(set, w) {
				t.Fatal("idle trained line must expire")
			}
		}
	}
	if !found {
		t.Skip("line already evicted (acceptable)")
	}
	r := c.Access(trace.Access{Addr: addr(1, 0, 102), PC: 0xCCC})
	if !r.Evicted || r.VictimAddr != addr(1, 0, 100) {
		t.Fatalf("victim = %#x, want the expired line", r.VictimAddr)
	}
}

func TestBypassesDeadOnArrival(t *testing.T) {
	c, p := mk(4, 2, true)
	// Stream through sets with one PC: every line dies unreused, training
	// interval 0 with confidence.
	g := trace.NewStreamGen("s", 1)
	bypassed := false
	for i := 0; i < 5000; i++ {
		a := g.Next()
		a.PC = 0xDEAD
		if r := c.Access(a); r.Bypass {
			bypassed = true
		}
	}
	if !bypassed {
		t.Fatal("dead-on-arrival stream must eventually bypass")
	}
	if e := p.table[p.sigOf(0xDEAD)]; !e.confident || e.interval != 0 {
		t.Fatalf("table entry = %+v, want confident interval 0", e)
	}
}

func TestBeatsLRUOnExpiringWorkload(t *testing.T) {
	// Hot working set with a short interval + a stream: AIP expires the
	// stream lines quickly and keeps the hot set; LRU thrashes.
	const sets, ways = 64, 4
	cA, _ := mk(sets, ways, true)
	cL := cache.New(cache.Config{Name: "t", Sets: sets, Ways: ways, LineSize: 64},
		cache.NewLRU(sets, ways))
	hot := trace.NewLoopGen("hot", 3*sets, 1, 1)
	stream := trace.NewStreamGen("stream", 2)
	mix := trace.NewMixGen("mix", 7, []trace.Generator{hot, stream}, []float64{0.4, 0.6})
	for i := 0; i < 400000; i++ {
		a := mix.Next()
		cA.Access(a)
		cL.Access(a)
	}
	if cA.Stats.HitRate() <= cL.Stats.HitRate() {
		t.Fatalf("AIP %.3f vs LRU %.3f", cA.Stats.HitRate(), cL.Stats.HitRate())
	}
}
