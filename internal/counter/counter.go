// Package counter implements the counter-based replacement and bypassing
// algorithm of Kharbutli & Solihin (IEEE TC 2008), the paper's reference
// [19]: each line carries an event counter of set accesses since its last
// touch; a PC-indexed prediction table learns each access interval, and a
// line expires — becomes the preferred victim — once its counter exceeds
// the learned interval plus slack. The PDP paper positions this as implicit
// protection ("protects lines by not evicting them until they expire")
// learned per line class rather than computed from an explicit hit-rate
// model.
package counter

import (
	"pdp/internal/cache"
	"pdp/internal/trace"
)

// Config parameterizes the AIP-style policy.
type Config struct {
	Sets, Ways int
	// TableSize is the number of prediction entries (PC-indexed).
	TableSize int
	// MaxCounter saturates the per-line event counters.
	MaxCounter uint16
	// Slack is added to the learned interval before a line expires.
	Slack uint16
	// AllowBypass bypasses fills whose PC's learned interval is zero with
	// high confidence (dead-on-arrival).
	AllowBypass bool
}

func (c *Config) setDefaults() {
	if c.TableSize == 0 {
		c.TableSize = 4096
	}
	if c.MaxCounter == 0 {
		c.MaxCounter = 1023
	}
	if c.Slack == 0 {
		c.Slack = 8
	}
}

type predEntry struct {
	interval  uint16
	confident bool
}

// AIP is the access-interval-predicting policy. It implements cache.Policy.
type AIP struct {
	cfg Config
	lru *cache.LRU

	events   []uint16 // set accesses since the line's last touch
	maxIvl   []uint16 // largest interval observed this generation
	sig      []uint16 // PC signature of the line's filling access
	table    []predEntry
	hadReuse []bool
}

var _ cache.Policy = (*AIP)(nil)

// New builds the policy.
func New(cfg Config) *AIP {
	cfg.setDefaults()
	n := cfg.Sets * cfg.Ways
	return &AIP{
		cfg:      cfg,
		lru:      cache.NewLRU(cfg.Sets, cfg.Ways),
		events:   make([]uint16, n),
		maxIvl:   make([]uint16, n),
		sig:      make([]uint16, n),
		table:    make([]predEntry, cfg.TableSize),
		hadReuse: make([]bool, n),
	}
}

// Name implements cache.Policy.
func (p *AIP) Name() string { return "AIP" }

func (p *AIP) sigOf(pc uint64) uint16 {
	x := pc ^ pc>>12 ^ pc>>24 ^ pc>>36
	return uint16(x) & uint16(p.cfg.TableSize-1)
}

// threshold returns the expiry threshold for a line, or MaxCounter when the
// signature has no confident prediction yet.
func (p *AIP) threshold(sig uint16) uint16 {
	e := p.table[sig]
	if !e.confident {
		return p.cfg.MaxCounter
	}
	t := e.interval + p.cfg.Slack
	if t > p.cfg.MaxCounter {
		t = p.cfg.MaxCounter
	}
	return t
}

// Expired reports whether the line in (set, way) has outlived its learned
// access interval (testing).
func (p *AIP) Expired(set, way int) bool {
	i := set*p.cfg.Ways + way
	return p.events[i] > p.threshold(p.sig[i])
}

// Hit implements cache.Policy.
func (p *AIP) Hit(set, way int, acc trace.Access) {
	p.lru.Hit(set, way, acc)
	i := set*p.cfg.Ways + way
	if p.events[i] > p.maxIvl[i] {
		p.maxIvl[i] = p.events[i]
	}
	p.events[i] = 0
	p.hadReuse[i] = true
}

// Victim implements cache.Policy: an expired line if any, else LRU. With
// bypassing enabled, fills whose signature confidently never reuses skip
// allocation.
func (p *AIP) Victim(set int, acc trace.Access) (int, bool) {
	if p.cfg.AllowBypass && !acc.WB {
		e := p.table[p.sigOf(acc.PC)]
		if e.confident && e.interval == 0 {
			return 0, true
		}
	}
	base := set * p.cfg.Ways
	best, bestOver := -1, uint16(0)
	for w := 0; w < p.cfg.Ways; w++ {
		i := base + w
		if th := p.threshold(p.sig[i]); p.events[i] > th {
			if over := p.events[i] - th; best < 0 || over > bestOver {
				best, bestOver = w, over
			}
		}
	}
	if best >= 0 {
		return best, false
	}
	return p.lru.Victim(set, acc)
}

// Insert implements cache.Policy.
func (p *AIP) Insert(set, way int, acc trace.Access) {
	p.lru.Insert(set, way, acc)
	i := set*p.cfg.Ways + way
	p.events[i] = 0
	p.maxIvl[i] = 0
	p.sig[i] = p.sigOf(acc.PC)
	p.hadReuse[i] = false
}

// Evict implements cache.Policy: learn the line's observed access interval
// for its signature.
func (p *AIP) Evict(set, way int) {
	i := set*p.cfg.Ways + way
	e := &p.table[p.sig[i]]
	observed := p.maxIvl[i] // 0 when the line was never reused
	if !p.hadReuse[i] {
		observed = 0
	}
	if !e.confident {
		e.interval = observed
		e.confident = true
	} else if observed > e.interval {
		e.interval = observed // grow immediately
	} else {
		// Shrink slowly toward the observed interval.
		e.interval = (e.interval + observed + 1) / 2
	}
	p.lru.Evict(set, way)
}

// PostAccess implements cache.Policy: age every line in the set.
func (p *AIP) PostAccess(set int, _ trace.Access) {
	base := set * p.cfg.Ways
	for w := 0; w < p.cfg.Ways; w++ {
		if p.events[base+w] < p.cfg.MaxCounter {
			p.events[base+w]++
		}
	}
}
