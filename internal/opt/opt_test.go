package opt

import (
	"testing"
	"testing/quick"

	"pdp/internal/cache"
	"pdp/internal/core"
	"pdp/internal/trace"
)

func newPDPForTest(sets, ways, pd int) cache.Policy {
	return core.New(core.Config{Sets: sets, Ways: ways, StaticPD: pd, Bypass: true})
}

func accessesOf(lines ...int) []trace.Access {
	out := make([]trace.Access, len(lines))
	for i, l := range lines {
		out[i] = trace.Access{Addr: uint64(l) * trace.LineSize}
	}
	return out
}

func TestOPTHandComputed(t *testing.T) {
	// Classic MIN example, 1 set, 2 ways, lines a=0 b=1 c=2:
	// a b c a b c: OPT keeps a (reused sooner), evicts b for c... sequence:
	//  a: miss (fill) | b: miss (fill) | c: miss, residents a(next 3) b(next 4),
	//  evict the farther (b), keep a | a: hit | b: miss ...
	st, err := Simulate(accessesOf(0, 1, 2, 0, 1, 2), 1, 2, false)
	if err != nil {
		t.Fatal(err)
	}
	if st.Hits != 2 { // a at index 3 hits; c at index 5 hits (kept over b)
		t.Fatalf("OPT hits = %d, want 2 (full trace: %+v)", st.Hits, st)
	}
}

func TestOPTGeometryValidation(t *testing.T) {
	if _, err := Simulate(nil, 3, 2, false); err == nil {
		t.Fatal("non-power-of-two sets must error")
	}
	if _, err := Simulate(nil, 4, 0, false); err == nil {
		t.Fatal("zero ways must error")
	}
}

func TestOPTNeverWorseThanLRU(t *testing.T) {
	// Property: OPT hits >= LRU hits on any trace (the definition of
	// optimality, checked against the online simulator).
	f := func(seed uint64) bool {
		rng := trace.NewRNG(seed)
		const sets, ways, n = 8, 4, 4000
		accs := make([]trace.Access, n)
		for i := range accs {
			accs[i] = trace.Access{Addr: uint64(rng.Intn(sets*ways*3)) * trace.LineSize}
		}
		c := cache.New(cache.Config{Name: "t", Sets: sets, Ways: ways, LineSize: trace.LineSize},
			cache.NewLRU(sets, ways))
		for _, a := range accs {
			c.Access(a)
		}
		st, err := Simulate(accs, sets, ways, false)
		return err == nil && st.Hits >= c.Stats.Hits
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestOPTBypassNeverWorse(t *testing.T) {
	// Property: the optimal bypass rule can only help.
	f := func(seed uint64) bool {
		rng := trace.NewRNG(seed)
		const sets, ways, n = 4, 2, 3000
		accs := make([]trace.Access, n)
		for i := range accs {
			accs[i] = trace.Access{Addr: uint64(rng.Intn(64)) * trace.LineSize}
		}
		plain, err1 := Simulate(accs, sets, ways, false)
		byp, err2 := Simulate(accs, sets, ways, true)
		return err1 == nil && err2 == nil && byp.Hits >= plain.Hits
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestOPTThrashingLoop(t *testing.T) {
	// Loop of N distinct lines in one set with capacity C: OPT's
	// steady-state hit rate on a cyclic pattern is (C-1)/(N-1).
	const ways, per, rounds = 4, 8, 200
	g := trace.NewLoopGen("loop", per, 1, 1)
	accs := Collect(g, per*rounds)
	st, err := Simulate(accs, 1, ways, false)
	if err != nil {
		t.Fatal(err)
	}
	want := float64(ways-1) / float64(per-1)
	if hr := st.HitRate(); hr < want*0.9 || hr > want*1.1 {
		t.Fatalf("OPT hit rate %.3f on loop, want ~%.3f", hr, want)
	}
}

func TestOPTBeatsPDPButNotByMagic(t *testing.T) {
	// On a protectable loop, PDP approaches OPT: OPT >= PDP and PDP should
	// recover most of OPT's hits (the optgap experiment's premise).
	const sets, ways, per = 16, 8, 24
	g := trace.NewLoopGen("loop", per*sets, 1, 1)
	accs := Collect(g, per*sets*100)

	st, err := Simulate(accs, sets, ways, true)
	if err != nil {
		t.Fatal(err)
	}
	// PDP static at the loop distance.
	pd := per
	pol := newPDPForTest(sets, ways, pd)
	c := cache.New(cache.Config{Name: "t", Sets: sets, Ways: ways, LineSize: trace.LineSize, AllowBypass: true}, pol)
	for _, a := range accs {
		c.Access(a)
	}
	if c.Stats.Hits > st.Hits {
		t.Fatalf("PDP (%d) out-hit OPT (%d): OPT implementation is broken", c.Stats.Hits, st.Hits)
	}
	if float64(c.Stats.Hits) < 0.7*float64(st.Hits) {
		t.Fatalf("PDP recovered only %d of OPT's %d hits on its best-case pattern",
			c.Stats.Hits, st.Hits)
	}
}
