// Package opt implements Belady's offline optimal replacement (MIN) for
// set-associative caches, with an optional optimal bypass decision for
// non-inclusive caches. It is not a cache.Policy — OPT needs the future —
// but a standalone two-pass simulator over a recorded trace. The paper
// discusses Belady only as the unreachable reference (Shepherd cache
// emulates it); here it bounds how much of the available headroom PDP
// actually captures (see the optgap experiment).
package opt

import (
	"fmt"

	"pdp/internal/trace"
)

// Stats reports an OPT simulation.
type Stats struct {
	Accesses uint64
	Hits     uint64
	Misses   uint64
	Bypasses uint64
}

// HitRate returns hits/accesses.
func (s Stats) HitRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Accesses)
}

// infinity marks "never referenced again".
const infinity = int(^uint(0) >> 1)

// Simulate runs Belady's MIN over the access sequence for a sets x ways
// cache. With bypass enabled (non-inclusive cache), a miss whose line's
// next use is farther than every resident line's next use is not allocated
// — the optimal bypass rule.
//
// Each set is processed independently (set-associative OPT decomposes per
// set). Memory use is O(len(accs)).
func Simulate(accs []trace.Access, sets, ways int, bypass bool) (Stats, error) {
	if sets <= 0 || sets&(sets-1) != 0 || ways <= 0 {
		return Stats{}, fmt.Errorf("opt: invalid geometry %dx%d", sets, ways)
	}
	var st Stats
	st.Accesses = uint64(len(accs))

	// Bucket access indices by set, preserving order.
	perSet := make([][]int32, sets)
	lineOf := make([]uint64, len(accs))
	for i, a := range accs {
		line := a.Addr / trace.LineSize
		lineOf[i] = line
		s := int(line) & (sets - 1)
		perSet[s] = append(perSet[s], int32(i))
	}

	// next[i] = index (into the per-set sequence) of the next access to the
	// same line, or infinity.
	for s := 0; s < sets; s++ {
		seq := perSet[s]
		n := len(seq)
		if n == 0 {
			continue
		}
		next := make([]int, n)
		last := make(map[uint64]int, ways*4)
		for j := n - 1; j >= 0; j-- {
			line := lineOf[seq[j]]
			if k, ok := last[line]; ok {
				next[j] = k
			} else {
				next[j] = infinity
			}
			last[line] = j
		}

		// Residents: parallel arrays of line id and its next-use index.
		resLine := make([]uint64, 0, ways)
		resNext := make([]int, 0, ways)
		for j := 0; j < n; j++ {
			line := lineOf[seq[j]]
			hit := -1
			for w, rl := range resLine {
				if rl == line {
					hit = w
					break
				}
			}
			if hit >= 0 {
				st.Hits++
				resNext[hit] = next[j]
				continue
			}
			st.Misses++
			if len(resLine) < ways {
				resLine = append(resLine, line)
				resNext = append(resNext, next[j])
				continue
			}
			// Find the resident with the farthest next use.
			victim, far := 0, resNext[0]
			for w := 1; w < ways; w++ {
				if resNext[w] > far {
					victim, far = w, resNext[w]
				}
			}
			if bypass && next[j] >= far {
				// The fetched line is reused no sooner than the farthest
				// resident: allocating cannot help.
				st.Bypasses++
				continue
			}
			resLine[victim] = line
			resNext[victim] = next[j]
		}
	}
	return st, nil
}

// Collect records n accesses from g for an OPT run.
func Collect(g trace.Generator, n int) []trace.Access {
	out := make([]trace.Access, n)
	for i := range out {
		out[i] = g.Next()
	}
	return out
}
