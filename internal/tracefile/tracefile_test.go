package tracefile

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"testing/quick"

	"pdp/internal/trace"
)

func roundTrip(t *testing.T, accs []trace.Access) []trace.Access {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range accs {
		if err := w.Write(a); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	out, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestRoundTripBasic(t *testing.T) {
	in := []trace.Access{
		{Addr: 0x1000, PC: 0x40, Thread: 0},
		{Addr: 0x1040, PC: 0x40, Write: true, Thread: 1},
		{Addr: 0x0FC0, PC: 0x44, WB: true, Write: true, Thread: 2},
		{Addr: 0xFFFFFFFFFF40, PC: 0x48, Prefetch: true, Thread: 3},
		{Addr: 0x1000, PC: 0x48, Thread: 0},
	}
	out := roundTrip(t, in)
	if len(out) != len(in) {
		t.Fatalf("got %d records, want %d", len(out), len(in))
	}
	for i := range in {
		if in[i] != out[i] {
			t.Errorf("record %d: %+v != %+v", i, in[i], out[i])
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(seed uint64, n uint16) bool {
		rng := trace.NewRNG(seed)
		count := int(n)%500 + 1
		in := make([]trace.Access, count)
		for i := range in {
			in[i] = trace.Access{
				Addr:     rng.Uint64() &^ 63,
				PC:       uint64(rng.Intn(64)) * 4,
				Write:    rng.Bernoulli(0.3),
				WB:       rng.Bernoulli(0.1),
				Prefetch: rng.Bernoulli(0.1),
				Thread:   rng.Intn(16),
			}
		}
		var buf bytes.Buffer
		w, err := NewWriter(&buf)
		if err != nil {
			return false
		}
		for _, a := range in {
			if w.Write(a) != nil {
				return false
			}
		}
		if w.Flush() != nil {
			return false
		}
		out, err := ReadAll(&buf)
		if err != nil || len(out) != len(in) {
			return false
		}
		for i := range in {
			if in[i] != out[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestCompactness(t *testing.T) {
	// A sequential same-PC stream must encode in very few bytes per record.
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	const n = 10000
	for i := 0; i < n; i++ {
		if err := w.Write(trace.Access{Addr: uint64(i) * 64, PC: 0x40}); err != nil {
			t.Fatal(err)
		}
	}
	w.Flush()
	if per := float64(buf.Len()) / n; per > 4.5 {
		t.Fatalf("%.1f bytes/record for a sequential stream, want <= 4.5", per)
	}
}

func TestBadInputs(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("nope"))); err == nil {
		t.Fatal("bad magic must error")
	}
	if _, err := NewReader(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty input must error")
	}
	// Truncated mid-record.
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	w.Write(trace.Access{Addr: 1 << 40, PC: 7})
	w.Flush()
	trunc := buf.Bytes()[:buf.Len()-1]
	if _, err := ReadAll(bytes.NewReader(trunc)); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("truncated trace gave %v, want ErrUnexpectedEOF", err)
	}
	// Negative thread rejected at write time.
	if err := w.Write(trace.Access{Thread: -1}); err == nil {
		t.Fatal("negative thread must error")
	}
}

func TestGeneratorLoops(t *testing.T) {
	accs := []trace.Access{{Addr: 64}, {Addr: 128}, {Addr: 192}}
	g := NewGenerator("t", accs)
	for round := 0; round < 3; round++ {
		for i := range accs {
			if got := g.Next(); got != accs[i] {
				t.Fatalf("round %d pos %d: %+v", round, i, got)
			}
		}
	}
	g.Next()
	g.Reset()
	if got := g.Next(); got != accs[0] {
		t.Fatal("Reset must rewind")
	}
}

func TestGeneratorEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewGenerator("x", nil)
}

func TestRoundTripSyntheticModel(t *testing.T) {
	// Export a synthetic model and re-import it: the replayed stream must
	// match the original exactly.
	g := trace.NewRDDGen("m", trace.RDDSpec{
		Peaks: []trace.Peak{{Dist: 24, Weight: 0.5}}, Fresh: 0.4, WriteFrac: 0.2,
	}, 64, 1, 9)
	in := trace.Collect(g, 20000)
	out := roundTrip(t, in)
	for i := range in {
		if in[i] != out[i] {
			t.Fatalf("record %d differs", i)
		}
	}
}

func mkAccess(addr, pc uint64) trace.Access {
	return trace.Access{Addr: addr, PC: pc}
}
