// Package tracefile defines a compact binary format for memory-access
// traces, so externally captured traces (e.g. from a binary-instrumentation
// tool) can drive the simulator, and the synthetic models can be exported
// for other tools. The format is a magic header followed by
// varint-delta-encoded records; typical synthetic traces compress to a few
// bytes per access.
//
// Layout (little-endian varints, encoding/binary Uvarint):
//
//	magic   "PDPT"            4 bytes
//	version uvarint           currently 1
//	records:
//	  flags   1 byte          bit0 write, bit1 writeback, bit2 prefetch,
//	                          bit3 addr-delta-negative, bit4 pc-repeat
//	  thread  uvarint
//	  addr    uvarint         zig-zag-free |delta| from previous addr
//	  pc      uvarint         absent when pc-repeat is set
package tracefile

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"pdp/internal/trace"
)

var magic = [4]byte{'P', 'D', 'P', 'T'}

// Version is the current format version.
const Version = 1

// flag bits
const (
	fWrite    = 1 << 0
	fWB       = 1 << 1
	fPrefetch = 1 << 2
	fAddrNeg  = 1 << 3
	fPCRepeat = 1 << 4
)

// Writer streams accesses to an io.Writer in the trace format.
type Writer struct {
	w        *bufio.Writer
	prevAddr uint64
	prevPC   uint64
	n        uint64
	buf      [binary.MaxVarintLen64]byte
}

// NewWriter starts a trace stream on w.
func NewWriter(w io.Writer) (*Writer, error) {
	tw := &Writer{w: bufio.NewWriter(w)}
	if _, err := tw.w.Write(magic[:]); err != nil {
		return nil, err
	}
	n := binary.PutUvarint(tw.buf[:], Version)
	if _, err := tw.w.Write(tw.buf[:n]); err != nil {
		return nil, err
	}
	return tw, nil
}

// Write appends one access.
func (tw *Writer) Write(a trace.Access) error {
	var flags byte
	if a.Write {
		flags |= fWrite
	}
	if a.WB {
		flags |= fWB
	}
	if a.Prefetch {
		flags |= fPrefetch
	}
	delta := int64(a.Addr) - int64(tw.prevAddr)
	if delta < 0 {
		flags |= fAddrNeg
		delta = -delta
	}
	if a.PC == tw.prevPC {
		flags |= fPCRepeat
	}
	if err := tw.w.WriteByte(flags); err != nil {
		return err
	}
	if a.Thread < 0 {
		return fmt.Errorf("tracefile: negative thread %d", a.Thread)
	}
	n := binary.PutUvarint(tw.buf[:], uint64(a.Thread))
	if _, err := tw.w.Write(tw.buf[:n]); err != nil {
		return err
	}
	n = binary.PutUvarint(tw.buf[:], uint64(delta))
	if _, err := tw.w.Write(tw.buf[:n]); err != nil {
		return err
	}
	if flags&fPCRepeat == 0 {
		n = binary.PutUvarint(tw.buf[:], a.PC)
		if _, err := tw.w.Write(tw.buf[:n]); err != nil {
			return err
		}
	}
	tw.prevAddr = a.Addr
	tw.prevPC = a.PC
	tw.n++
	return nil
}

// Count returns the number of records written.
func (tw *Writer) Count() uint64 { return tw.n }

// Flush completes the stream.
func (tw *Writer) Flush() error { return tw.w.Flush() }

// countingReader counts bytes consumed from the underlying stream so
// decode errors can report where the corruption sits.
type countingReader struct {
	r   *bufio.Reader
	off int64
}

func (cr *countingReader) ReadByte() (byte, error) {
	b, err := cr.r.ReadByte()
	if err == nil {
		cr.off++
	}
	return b, err
}

// Reader decodes a trace stream.
type Reader struct {
	r        countingReader
	rec      uint64
	prevAddr uint64
	prevPC   uint64
}

// NewReader validates the header and prepares decoding.
func NewReader(r io.Reader) (*Reader, error) {
	tr := &Reader{r: countingReader{r: bufio.NewReader(r)}}
	var m [4]byte
	for i := range m {
		b, err := tr.r.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("tracefile: reading magic: %w", unexpectAt(err, tr.r.off > 0))
		}
		m[i] = b
	}
	if m != magic {
		return nil, errors.New("tracefile: bad magic (not a PDPT trace)")
	}
	v, err := binary.ReadUvarint(&tr.r)
	if err != nil {
		return nil, fmt.Errorf("tracefile: reading version: %w", unexpect(err))
	}
	if v != Version {
		return nil, fmt.Errorf("tracefile: unsupported version %d", v)
	}
	return tr, nil
}

// Records returns the number of complete records decoded so far.
func (tr *Reader) Records() uint64 { return tr.rec }

// Offset returns the byte offset of the next unread byte.
func (tr *Reader) Offset() int64 { return tr.r.off }

// Read returns the next access, or io.EOF at the end of the stream. A
// mid-record failure (truncation or varint overflow) is wrapped with the
// failing record's index and starting byte offset, so corrupt-trace
// reports from fault campaigns pinpoint the damage.
func (tr *Reader) Read() (trace.Access, error) {
	start := tr.r.off
	flags, err := tr.r.ReadByte()
	if err != nil {
		return trace.Access{}, err // io.EOF at a record boundary is clean
	}
	thread, err := binary.ReadUvarint(&tr.r)
	if err != nil {
		return trace.Access{}, tr.corrupt("thread", start, err)
	}
	delta, err := binary.ReadUvarint(&tr.r)
	if err != nil {
		return trace.Access{}, tr.corrupt("addr delta", start, err)
	}
	addr := tr.prevAddr
	if flags&fAddrNeg != 0 {
		addr -= delta
	} else {
		addr += delta
	}
	pc := tr.prevPC
	if flags&fPCRepeat == 0 {
		pc, err = binary.ReadUvarint(&tr.r)
		if err != nil {
			return trace.Access{}, tr.corrupt("pc", start, err)
		}
	}
	tr.prevAddr = addr
	tr.prevPC = pc
	tr.rec++
	return trace.Access{
		Addr:     addr,
		PC:       pc,
		Write:    flags&fWrite != 0,
		WB:       flags&fWB != 0,
		Prefetch: flags&fPrefetch != 0,
		Thread:   int(thread),
	}, nil
}

// corrupt annotates a mid-record decode failure with positional context.
func (tr *Reader) corrupt(field string, start int64, err error) error {
	return fmt.Errorf("tracefile: record %d (starting at byte %d, decoding %s): %w",
		tr.rec, start, field, unexpect(err))
}

func unexpect(err error) error {
	if errors.Is(err, io.EOF) {
		return io.ErrUnexpectedEOF
	}
	return err
}

// unexpectAt maps EOF to ErrUnexpectedEOF only when some bytes were
// already consumed (mid-header truncation); a zero-byte stream keeps the
// clean io.EOF.
func unexpectAt(err error, mid bool) error {
	if mid {
		return unexpect(err)
	}
	return err
}

// ReadAll decodes every record (convenience for bounded traces).
func ReadAll(r io.Reader) ([]trace.Access, error) {
	tr, err := NewReader(r)
	if err != nil {
		return nil, err
	}
	var out []trace.Access
	for {
		a, err := tr.Read()
		if errors.Is(err, io.EOF) {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, a)
	}
}

// Generator adapts a fully-read trace to trace.Generator, looping at the
// end (matching the paper's thread-rewind semantics, Sec. 5).
type Generator struct {
	name string
	accs []trace.Access
	pos  int
}

// NewGenerator wraps decoded accesses as a looping generator.
func NewGenerator(name string, accs []trace.Access) *Generator {
	if len(accs) == 0 {
		panic("tracefile: empty trace")
	}
	return &Generator{name: name, accs: accs}
}

// Name implements trace.Generator.
func (g *Generator) Name() string { return g.name }

// Reset implements trace.Generator.
func (g *Generator) Reset() { g.pos = 0 }

// Next implements trace.Generator.
func (g *Generator) Next() trace.Access {
	a := g.accs[g.pos]
	g.pos++
	if g.pos == len(g.accs) {
		g.pos = 0
	}
	return a
}
