package tracefile

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// FuzzReader ensures arbitrary bytes never crash the decoder: every input
// either decodes cleanly or returns an error.
func FuzzReader(f *testing.F) {
	// Seed with a valid stream and a few corruptions.
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	w.Write(mkAccess(0x1000, 0x40))
	w.Write(mkAccess(0x2000, 0x44))
	w.Flush()
	f.Add(buf.Bytes())
	f.Add([]byte("PDPT"))
	f.Add([]byte{})
	f.Add(append(append([]byte{}, buf.Bytes()...), 0xFF, 0xFF))

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return
		}
		for i := 0; i < 10000; i++ {
			_, err := r.Read()
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				return
			}
			if err != nil {
				return
			}
		}
	})
}
