package experiments

// Extension experiments beyond the paper's own evaluation:
//   - optgap: how much of Belady-OPT's headroom over DIP each policy
//     recovers (the paper cites Belady only as the unreachable reference);
//   - classpdp: the paper's Sec. 6.3 future-work proposal — per-PC-class
//     protecting distances — implemented and measured.

import (
	"fmt"

	"pdp/internal/cache"
	"pdp/internal/core"
	"pdp/internal/counter"
	"pdp/internal/cpu"
	"pdp/internal/cpusim"
	"pdp/internal/metrics"
	"pdp/internal/opt"
	"pdp/internal/parallel"
	"pdp/internal/rrip"
	"pdp/internal/trace"
	"pdp/internal/workload"
)

// OptGap measures each policy's recovered fraction of the OPT-over-DIP
// hit headroom: (hits(policy) - hits(DIP)) / (hits(OPT) - hits(DIP)).
func OptGap(cfg Config) error {
	header(cfg.Out, "optgap", "Fraction of Belady-OPT headroom over DIP recovered (extension)")
	recompute := uint64(cfg.Accesses / 8)
	if recompute < 4096 {
		recompute = 4096
	}
	specs := []PolicySpec{specDRRIP(1.0 / 32), specSDP(), specPDP(8, recompute)}
	suite := workload.Suite()
	type optRow struct {
		ost  opt.Stats
		base RunResult
		runs []RunResult
	}
	rowsP, err := parallel.Map(cfg.jobs(), len(suite), func(i int) (optRow, error) {
		b := suite[i]
		// Record the same access window OPT will consume.
		g := b.Generator(LLCSets, 1, cfg.Seed)
		for j := Warmup(cfg.Accesses); j > 0; j-- {
			g.Next()
		}
		accs := opt.Collect(g, cfg.Accesses)
		ost, err := opt.Simulate(accs, LLCSets, LLCWays, true)
		if err != nil {
			return optRow{}, err
		}
		row := optRow{ost: ost, base: RunSingle(cfg.Bench(b), specDIP(), cfg.Accesses, cfg.Seed)}
		for _, s := range specs {
			row.runs = append(row.runs, RunSingle(cfg.Bench(b), s, cfg.Accesses, cfg.Seed))
		}
		return row, nil
	})
	if err != nil {
		return err
	}
	tw := table(cfg.Out)
	fmt.Fprintln(tw, "benchmark\tDIP hit%\tOPT-B hit%\tDRRIP\tSDP\tPDP-8")
	rows := map[string][]float64{}
	for i, b := range suite {
		ost, base := rowsP[i].ost, rowsP[i].base
		head := float64(ost.Hits) - float64(base.Stats.Hits)
		// Benchmarks where DIP already sits at OPT (streaming,
		// LRU-friendly) have no headroom to recover; exclude them from the
		// averages rather than dividing by ~zero.
		meaningful := head >= 0.01*float64(cfg.Accesses)
		fmt.Fprintf(tw, "%s\t%.1f\t%.1f", b.Name,
			100*base.Stats.HitRate(), 100*ost.HitRate())
		for j, s := range specs {
			r := rowsP[i].runs[j]
			if !meaningful {
				fmt.Fprintf(tw, "\t(n/a)")
				continue
			}
			rec := (float64(r.Stats.Hits) - float64(base.Stats.Hits)) / head
			fmt.Fprintf(tw, "\t%s", fmtPct(rec))
			rows[s.Name] = append(rows[s.Name], rec)
		}
		fmt.Fprintln(tw)
	}
	fmt.Fprintf(tw, "AVERAGE\t\t\t%s\t%s\t%s\n",
		fmtPct(metrics.Mean(rows["DRRIP"])),
		fmtPct(metrics.Mean(rows["SDP"])),
		fmtPct(metrics.Mean(rows["PDP-8"])))
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintln(cfg.Out, "(OPT-B = Belady's MIN with the optimal bypass rule; a 100% recovery equals OPT)")
	return nil
}

// specClassPDP builds the Sec. 6.3 classified PDP.
func specClassPDP(classes int, recompute uint64) PolicySpec {
	return PolicySpec{Name: fmt.Sprintf("PDP-C%d", classes), Bypass: true,
		New: func(s, w int, _ uint64) cache.Policy {
			return core.NewClassPDP(core.ClassConfig{
				Sets: s, Ways: w, Classes: classes, RecomputeEvery: recompute,
			})
		}}
}

// ClassPDPExp evaluates the paper's Sec. 6.3 proposal: per-PC-class
// protecting distances, against plain PDP and the PC-classifying policies
// the paper identifies as related (SDP's dead-block prediction, SHiP's
// signature-based insertion).
func ClassPDPExp(cfg Config) error {
	header(cfg.Out, "classpdp", "Per-PC-class PDP (paper Sec. 6.3 future work; IPC improvement over DIP)")
	recompute := uint64(cfg.Accesses / 8)
	if recompute < 4096 {
		recompute = 4096
	}
	ship := PolicySpec{Name: "SHiP", New: func(s, w int, _ uint64) cache.Policy {
		return rrip.NewSHiP(s, w)
	}}
	aip := PolicySpec{Name: "AIP", Bypass: true, New: func(s, w int, _ uint64) cache.Policy {
		return counter.New(counter.Config{Sets: s, Ways: w, AllowBypass: true})
	}}
	specs := []PolicySpec{specSDP(), ship, aip, specPDP(8, recompute), specClassPDP(8, recompute)}
	suite := workload.Suite()
	// Column 0 is the DIP base, columns 1.. follow specs.
	grid, err := parallel.Grid(cfg.jobs(), len(suite), 1+len(specs), func(r, c int) (RunResult, error) {
		if c == 0 {
			return RunSingle(cfg.Bench(suite[r]), specDIP(), cfg.Accesses, cfg.Seed), nil
		}
		return RunSingle(cfg.Bench(suite[r]), specs[c-1], cfg.Accesses, cfg.Seed), nil
	})
	if err != nil {
		return err
	}
	tw := table(cfg.Out)
	fmt.Fprintln(tw, "benchmark\tSDP\tSHiP\tAIP\tPDP-8\tPDP-C8")
	avg := map[string][]float64{}
	for i, b := range suite {
		base := grid[i][0]
		fmt.Fprintf(tw, "%s", b.Name)
		for j, s := range specs {
			imp := metrics.Improvement(grid[i][1+j].IPC, base.IPC)
			fmt.Fprintf(tw, "\t%s", fmtPct(imp))
			avg[s.Name] = append(avg[s.Name], imp)
		}
		fmt.Fprintln(tw)
	}
	fmt.Fprintf(tw, "AVERAGE\t%s\t%s\t%s\t%s\t%s\n",
		fmtPct(metrics.Mean(avg["SDP"])),
		fmtPct(metrics.Mean(avg["SHiP"])),
		fmtPct(metrics.Mean(avg["AIP"])),
		fmtPct(metrics.Mean(avg["PDP-8"])),
		fmtPct(metrics.Mean(avg["PDP-C8"])))
	return tw.Flush()
}

// Energy estimates the LLC + memory dynamic energy of each policy relative
// to DIP (extension; the paper's Sec. 6.2 argues bypass saves LLC write
// power). Misses dominate via memory energy, so the policies that win on
// hit rate win here too — bypass adds a further LLC-write saving.
func Energy(cfg Config) error {
	header(cfg.Out, "energy", "LLC+memory dynamic energy vs DIP (extension)")
	recompute := uint64(cfg.Accesses / 8)
	if recompute < 4096 {
		recompute = 4096
	}
	model := cpu.DefaultEnergy()
	specs := []PolicySpec{specDRRIP(1.0 / 32), specSDP(), specPDP(8, recompute)}
	suite := workload.Suite()
	grid, err := parallel.Grid(cfg.jobs(), len(suite), 1+len(specs), func(r, c int) (RunResult, error) {
		if c == 0 {
			return RunSingle(cfg.Bench(suite[r]), specDIP(), cfg.Accesses, cfg.Seed), nil
		}
		return RunSingle(cfg.Bench(suite[r]), specs[c-1], cfg.Accesses, cfg.Seed), nil
	})
	if err != nil {
		return err
	}
	tw := table(cfg.Out)
	fmt.Fprintln(tw, "benchmark\tDRRIP\tSDP\tPDP-8\t| PDP-8 LLC-write energy vs DIP")
	var avg = map[string][]float64{}
	var wAvg []float64
	for i, b := range suite {
		base := grid[i][0]
		be := model.Estimate(base.Stats.Hits, base.Stats.Inserts, base.Stats.Bypasses, base.Stats.Misses)
		fmt.Fprintf(tw, "%s", b.Name)
		var pdpWrite float64
		for j, s := range specs {
			r := grid[i][1+j]
			e := model.Estimate(r.Stats.Hits, r.Stats.Inserts, r.Stats.Bypasses, r.Stats.Misses)
			rel := metrics.Reduction(e.Total(), be.Total())
			fmt.Fprintf(tw, "\t%s", fmtPct(rel))
			avg[s.Name] = append(avg[s.Name], rel)
			if s.Name == "PDP-8" {
				pdpWrite = metrics.Reduction(e.WriteNJ, be.WriteNJ)
			}
		}
		fmt.Fprintf(tw, "\t%s\n", fmtPct(pdpWrite))
		wAvg = append(wAvg, pdpWrite)
	}
	fmt.Fprintf(tw, "AVERAGE\t%s\t%s\t%s\t%s\n",
		fmtPct(metrics.Mean(avg["DRRIP"])),
		fmtPct(metrics.Mean(avg["SDP"])),
		fmtPct(metrics.Mean(avg["PDP-8"])),
		fmtPct(metrics.Mean(wAvg)))
	return tw.Flush()
}

// runTimed drives a benchmark through the LLC while feeding the interval
// core simulator (MLP-aware) alongside the blocking analytic model.
func runTimed(b workload.Benchmark, spec PolicySpec, n int, seed uint64) (analytic, simulated float64, err error) {
	pol := spec.New(LLCSets, LLCWays, seed)
	c := cache.New(cache.Config{Name: "LLC", Sets: LLCSets, Ways: LLCWays,
		LineSize: trace.LineSize, AllowBypass: spec.Bypass}, pol)
	g := b.Generator(LLCSets, 1, seed)
	for i := Warmup(n); i > 0; i-- {
		c.Access(g.Next())
	}
	c.Stats = cache.Stats{}

	cfg := cpusim.Default()
	core2, err := cpusim.New(cfg)
	if err != nil {
		return 0, 0, err
	}
	gap := 1000.0/b.APKI - 1
	if gap < 0 {
		gap = 0
	}
	carry := 0.0
	for i := 0; i < n; i++ {
		carry += gap
		whole := uint64(carry)
		carry -= float64(whole)
		core2.Advance(whole)
		r := c.Access(g.Next())
		if r.Hit {
			core2.Memory(cfg.LLCHitCycles)
		} else {
			core2.Memory(cfg.MemCycles)
		}
	}
	instr := cpu.Instructions(c.Stats.Accesses, b.APKI)
	analytic = cpu.Default().IPC(instr, c.Stats.Hits, c.Stats.Misses)
	simulated = core2.IPC()
	return analytic, simulated, nil
}

// Timing compares the blocking analytic core model against the MLP-aware
// interval simulator (extension): the paper's relative claims must be
// robust to the core model, i.e. the PDP-over-DIP improvement should keep
// its sign and rough magnitude under memory-level parallelism.
func Timing(cfg Config) error {
	header(cfg.Out, "timing", "Core-model robustness: PDP-8 IPC improvement over DIP under blocking vs MLP-aware timing (extension)")
	recompute := uint64(cfg.Accesses / 8)
	if recompute < 4096 {
		recompute = 4096
	}
	suite := workload.Suite()
	type timedRow struct {
		aDIP, sDIP, aPDP, sPDP float64
	}
	rows, err := parallel.Map(cfg.jobs(), len(suite), func(i int) (timedRow, error) {
		var row timedRow
		var err error
		if row.aDIP, row.sDIP, err = runTimed(suite[i], specDIP(), cfg.Accesses, cfg.Seed); err != nil {
			return row, err
		}
		row.aPDP, row.sPDP, err = runTimed(suite[i], specPDP(8, recompute), cfg.Accesses, cfg.Seed)
		return row, err
	})
	if err != nil {
		return err
	}
	tw := table(cfg.Out)
	fmt.Fprintln(tw, "benchmark\tblocking model\tinterval (MLP) model")
	var aAvg, sAvg []float64
	for i, b := range suite {
		ia := metrics.Improvement(rows[i].aPDP, rows[i].aDIP)
		is := metrics.Improvement(rows[i].sPDP, rows[i].sDIP)
		fmt.Fprintf(tw, "%s\t%s\t%s\n", b.Name, fmtPct(ia), fmtPct(is))
		aAvg = append(aAvg, ia)
		sAvg = append(sAvg, is)
	}
	fmt.Fprintf(tw, "AVERAGE\t%s\t%s\n", fmtPct(metrics.Mean(aAvg)), fmtPct(metrics.Mean(sAvg)))
	return tw.Flush()
}
