package experiments

import (
	"testing"

	"pdp/internal/metrics"
	"pdp/internal/workload"
)

// TestHeadlineClaims pins the paper's qualitative headline results at
// reduced scale, so regressions in any substrate that would flip a
// conclusion fail loudly. Thresholds are deliberately loose — they assert
// signs and orderings, not absolute numbers.
func TestHeadlineClaims(t *testing.T) {
	if testing.Short() {
		t.Skip("slow headline regression")
	}
	const n = 500_000
	recompute := uint64(50_000)

	avgIPC := func(spec PolicySpec) float64 {
		var imps []float64
		for _, b := range workload.Suite() {
			base := RunSingle(b, specDIP(), n, 1)
			r := RunSingle(b, spec, n, 1)
			imps = append(imps, metrics.Improvement(r.IPC, base.IPC))
		}
		return metrics.Mean(imps)
	}

	pdp8 := avgIPC(specPDP(8, recompute))
	drrip := avgIPC(specDRRIP(1.0 / 32))
	eelru := avgIPC(specEELRU())

	// Paper Sec. 6.2: PDP-8 improves ~4.2% over DIP and clearly beats
	// DRRIP; EELRU degrades significantly.
	if pdp8 < 0.02 {
		t.Errorf("PDP-8 average IPC improvement over DIP = %.3f, want >= 0.02", pdp8)
	}
	if pdp8 < drrip+0.02 {
		t.Errorf("PDP-8 (%.3f) must clearly beat DRRIP (%.3f)", pdp8, drrip)
	}
	if eelru > 0 {
		t.Errorf("EELRU average improvement %.3f; the paper reports degradation", eelru)
	}

	// Paper Sec. 6.2: SDP wins on the PC-predictable benchmarks.
	for _, name := range []string{"437.leslie3d", "459.GemsFDTD"} {
		b, _ := workload.ByName(name)
		base := RunSingle(b, specDIP(), n, 1)
		sdp := RunSingle(b, specSDP(), n, 1)
		pdp := RunSingle(b, specPDP(8, recompute), n, 1)
		if sdp.IPC <= base.IPC {
			t.Errorf("%s: SDP (%.4f) must beat DIP (%.4f)", name, sdp.IPC, base.IPC)
		}
		if sdp.IPC < pdp.IPC {
			t.Errorf("%s: SDP (%.4f) should beat PDP-8 (%.4f) per the paper", name, sdp.IPC, pdp.IPC)
		}
	}

	// Paper Sec. 2.3: the bypass variant beats non-bypass on h264ref.
	{
		b, _ := workload.ByName("464.h264ref")
		nb, _ := bestOver(b, []int{32, 48, 64, 80}, func(pd int) PolicySpec { return specSPDP(pd, false) }, n, 1)
		bp, _ := bestOver(b, []int{32, 48, 64, 80}, func(pd int) PolicySpec { return specSPDP(pd, true) }, n, 1)
		if bp.Stats.Misses > nb.Stats.Misses {
			t.Errorf("h264ref: SPDP-B (%d misses) must not lose to SPDP-NB (%d)",
				bp.Stats.Misses, nb.Stats.Misses)
		}
	}
}

// TestMulticoreHeadline pins the Fig. 12 shape at reduced scale: PD-based
// partitioning with fine-grained RPDs beats TA-DRRIP on average.
func TestMulticoreHeadline(t *testing.T) {
	if testing.Short() {
		t.Skip("slow headline regression")
	}
	const perThread = 300_000
	mixes := workload.Mixes(4, 5, 42+4)
	interval := uint64(perThread * 4 / 4)

	var deltas []float64
	for _, m := range mixes {
		single := make([]float64, len(m.Benchs))
		for tt, b := range m.Benchs {
			single[tt] = singleIPC(b, 4, perThread, 42)
		}
		eval := func(spec MCPolicySpec) float64 {
			r := RunMix(m, spec, perThread, 42+uint64(m.ID))
			w, err := metrics.WeightedIPC(r.IPC, single)
			if err != nil {
				t.Fatal(err)
			}
			return w
		}
		base := eval(mcTADRRIP())
		pdp := eval(mcPDPPart(8, interval))
		deltas = append(deltas, metrics.Improvement(pdp, base))
	}
	if avg := metrics.Mean(deltas); avg < 0 {
		t.Errorf("PDP-8 partitioning average dW = %.3f vs TA-DRRIP, want >= 0", avg)
	}
}
