package experiments

import (
	"bufio"
	"bytes"
	"encoding/json"
	"testing"

	"pdp/internal/telemetry"
	"pdp/internal/workload"
)

// TestRunSingleTelemetry is the ISSUE acceptance path at unit scale: a
// pdp-8 run must journal pd_recompute events and periodic snapshots that
// carry a hit rate and the current PD, all as valid JSONL.
func TestRunSingleTelemetry(t *testing.T) {
	b, ok := workload.ByName("436.cactusADM")
	if !ok {
		t.Fatal("benchmark model missing")
	}
	const n = 40_000 // SpecByName floors RecomputeEvery at 4096 -> ~9 recomputes
	spec, err := SpecByName("pdp-8", n)
	if err != nil {
		t.Fatal(err)
	}

	reg := telemetry.NewRegistry()
	j := telemetry.NewJournal(0)
	var sink bytes.Buffer
	j.SetSink(&sink)

	r := RunSingleTelemetry(b, spec, n, 42, TelemetryOptions{
		Registry:      reg,
		Journal:       j,
		SnapshotEvery: 10_000,
		EventSample:   64,
	})
	if err := j.Flush(); err != nil {
		t.Fatal(err)
	}

	if r.Stats.Accesses != n {
		t.Fatalf("accesses = %d, want %d", r.Stats.Accesses, n)
	}
	if got := reg.Counter("LLC.hits").Value(); got != r.Stats.Hits {
		t.Fatalf("hits counter = %d, stats = %d", got, r.Stats.Hits)
	}
	if j.CountKind(telemetry.KindPDRecompute) == 0 {
		t.Fatal("no pd_recompute records")
	}
	if j.CountKind(telemetry.KindSnapshot) != 4 {
		t.Fatalf("snapshots = %d, want 4", j.CountKind(telemetry.KindSnapshot))
	}

	// Every sink line is valid JSON; snapshots carry hit_rate and pd,
	// recomputes carry the RDD and new PD.
	sc := bufio.NewScanner(&sink)
	var snaps, recomputes int
	for sc.Scan() {
		var rec map[string]any
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("invalid JSONL line %q: %v", sc.Text(), err)
		}
		switch rec["kind"] {
		case telemetry.KindSnapshot:
			snaps++
			if _, ok := rec["hit_rate"]; !ok {
				t.Fatalf("snapshot without hit_rate: %v", rec)
			}
			if pd, _ := rec["pd"].(float64); pd <= 0 {
				t.Fatalf("snapshot without positive pd: %v", rec)
			}
		case telemetry.KindPDRecompute:
			recomputes++
			if pd, _ := rec["new_pd"].(float64); pd <= 0 {
				t.Fatalf("recompute without new_pd: %v", rec)
			}
			if _, ok := rec["rdd"]; !ok {
				t.Fatalf("recompute without rdd: %v", rec)
			}
		}
	}
	if snaps != 4 || recomputes == 0 {
		t.Fatalf("sink saw %d snapshots, %d recomputes", snaps, recomputes)
	}
}

// TestRunMixTelemetry checks the multi-core pipeline: snapshots carry
// per-core occupancy and, for the PD-partitioning policy, per-thread PDs.
func TestRunMixTelemetry(t *testing.T) {
	mix := workload.Mixes(2, 1, 44)[0]
	const perThread = 20_000
	spec, err := MCSpecByName("pdppart-3", perThread)
	if err != nil {
		t.Fatal(err)
	}

	j := telemetry.NewJournal(256)
	res := RunMixTelemetry(mix, spec, perThread, 42, TelemetryOptions{
		Journal:       j,
		SnapshotEvery: 20_000,
		EventSample:   64,
	})
	if len(res.IPC) != 2 {
		t.Fatalf("IPC = %v", res.IPC)
	}
	if j.CountKind(telemetry.KindSnapshot) == 0 {
		t.Fatal("no snapshots")
	}
	for _, rec := range j.Tail(j.Len()) {
		snap, ok := rec.(telemetry.SnapshotRecord)
		if !ok {
			continue
		}
		if len(snap.Occupancy) != 2 {
			t.Fatalf("occupancy = %v, want 2 cores", snap.Occupancy)
		}
		sum := snap.Occupancy[0] + snap.Occupancy[1]
		if sum <= 0 || sum > 1.0001 {
			t.Fatalf("occupancy sums to %v: %v", sum, snap.Occupancy)
		}
		if len(snap.PDs) != 2 {
			t.Fatalf("per-thread PDs = %v, want 2", snap.PDs)
		}
		for _, pd := range snap.PDs {
			if pd <= 0 {
				t.Fatalf("non-positive per-thread PD: %v", snap.PDs)
			}
		}
	}
}
