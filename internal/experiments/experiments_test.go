package experiments

import (
	"bytes"
	"strings"
	"testing"

	"pdp/internal/workload"
)

// tinyConfig is small enough for unit tests yet large enough for the
// qualitative shapes to emerge.
func tinyConfig(buf *bytes.Buffer) Config {
	return Config{
		Accesses:            120_000,
		MCAccessesPerThread: 40_000,
		Mixes4:              2,
		Mixes16:             1,
		Seed:                42,
		Out:                 buf,
	}
}

func TestRegistryCoversDesignIndex(t *testing.T) {
	want := []string{"fig1", "fig2", "fig4", "fig5a", "fig5b", "fig6", "fig9",
		"fig10", "fig11", "fig12", "tab2", "overhead", "sec63", "sec65", "pdproc"}
	ids := IDs()
	have := map[string]bool{}
	for _, id := range ids {
		have[id] = true
	}
	for _, w := range want {
		if !have[w] {
			t.Errorf("experiment %s missing from registry", w)
		}
	}
	if _, ok := ByID("fig10"); !ok {
		t.Error("ByID failed for fig10")
	}
	if _, ok := ByID("nope"); ok {
		t.Error("ByID accepted unknown id")
	}
}

func TestRunSingleBasics(t *testing.T) {
	b, _ := workload.ByName("436.cactusADM")
	r := RunSingle(b, specDIP(), 50_000, 1)
	if r.Stats.Accesses != 50_000 {
		t.Fatalf("accesses = %d, want 50000", r.Stats.Accesses)
	}
	if r.IPC <= 0 || r.MPKI <= 0 || r.Instr == 0 {
		t.Fatalf("degenerate result: %+v", r)
	}
	// Determinism.
	r2 := RunSingle(b, specDIP(), 50_000, 1)
	if r2.Stats != r.Stats {
		t.Fatal("RunSingle not deterministic")
	}
}

func TestPDPBeatsDIPOnCactusADM(t *testing.T) {
	// The paper's headline single-core case: cactusADM's peak at ~68 is
	// invisible to DIP but captured by the dynamic PDP.
	b, _ := workload.ByName("436.cactusADM")
	const n = 800_000
	dip := RunSingle(b, specDIP(), n, 1)
	pdp := RunSingle(b, specPDP(8, 40_000), n, 1)
	if pdp.Stats.Misses >= dip.Stats.Misses {
		t.Fatalf("PDP-8 misses %d vs DIP %d: PDP must win on cactusADM",
			pdp.Stats.Misses, dip.Stats.Misses)
	}
	red := 1 - float64(pdp.Stats.Misses)/float64(dip.Stats.Misses)
	if red < 0.05 {
		t.Fatalf("miss reduction %.3f too small for the showcase benchmark", red)
	}
}

func TestAstarIndifferent(t *testing.T) {
	// LRU-friendly benchmark: no policy should change much (paper: "in
	// some the LRU replacement works fine").
	b, _ := workload.ByName("473.astar")
	const n = 200_000
	dip := RunSingle(b, specDIP(), n, 1)
	pdp := RunSingle(b, specPDP(8, n/8), n, 1)
	rel := float64(pdp.Stats.Misses)/float64(dip.Stats.Misses) - 1
	if rel > 0.10 {
		t.Fatalf("PDP hurts astar by %.1f%%; should be near-neutral", 100*rel)
	}
}

func TestRunMixShapes(t *testing.T) {
	mixes := workload.Mixes(4, 1, 7)
	r := RunMix(mixes[0], mcTADRRIP(), 20_000, 1)
	if len(r.IPC) != 4 {
		t.Fatalf("got %d IPCs, want 4", len(r.IPC))
	}
	for i, v := range r.IPC {
		if v <= 0 {
			t.Fatalf("thread %d IPC %v", i, v)
		}
	}
}

func TestExperimentsSmoke(t *testing.T) {
	// Every experiment must run end-to-end and produce output.
	if testing.Short() {
		t.Skip("slow smoke test")
	}
	for _, e := range Registry() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			var buf bytes.Buffer
			cfg := tinyConfig(&buf)
			if err := e.Run(cfg); err != nil {
				t.Fatalf("%s failed: %v", e.ID, err)
			}
			if buf.Len() < 40 {
				t.Fatalf("%s produced no meaningful output", e.ID)
			}
			if !strings.Contains(buf.String(), "===") {
				t.Fatalf("%s missing header", e.ID)
			}
		})
	}
}
