package experiments

import (
	"bytes"
	"sync"
	"testing"

	"pdp/internal/cache"
	"pdp/internal/parallel"
	"pdp/internal/telemetry"
	"pdp/internal/workload"
)

// TestTablesByteIdenticalAcrossJobs is the engine's core guarantee: an
// experiment's rendered table is the same byte sequence at every jobs
// count. The sample covers each parallel shape — Grid with a shared base
// column (fig2), the Map over measured RDDs (fig5b), Grid with the base
// doubling as the normalization column (fig9), a Map whose last task is a
// sweep (sec63), and the mix x policy grid plus the parallel stand-alone
// baselines (fig12).
func TestTablesByteIdenticalAcrossJobs(t *testing.T) {
	if testing.Short() {
		t.Skip("slow determinism test")
	}
	for _, id := range []string{"fig2", "fig5b", "fig9", "sec63", "fig12"} {
		id := id
		t.Run(id, func(t *testing.T) {
			e, ok := ByID(id)
			if !ok {
				t.Fatalf("experiment %s missing", id)
			}
			render := func(jobs int) []byte {
				var buf bytes.Buffer
				cfg := Config{
					Accesses:            60_000,
					MCAccessesPerThread: 20_000,
					Mixes4:              2,
					Mixes16:             1,
					Seed:                42,
					Out:                 &buf,
					Jobs:                jobs,
				}
				if err := e.Run(cfg); err != nil {
					t.Fatalf("%s with jobs=%d: %v", id, jobs, err)
				}
				return buf.Bytes()
			}
			serial := render(1)
			parallel8 := render(8)
			if !bytes.Equal(serial, parallel8) {
				t.Fatalf("%s output differs between -jobs 1 and -jobs 8:\n--- jobs=1 ---\n%s\n--- jobs=8 ---\n%s",
					id, serial, parallel8)
			}
		})
	}
}

// countingMonitor tallies events; unsafe on its own, it stands in for any
// aggregate observer a caller might share across runs.
type countingMonitor struct{ events int }

func (m *countingMonitor) Event(cache.Event) { m.events++ }

// TestConcurrentRunsSharedMonitor drives 8 concurrent telemetry runs that
// share one journal, one registry and one Synchronized extra monitor —
// the exact sharing pattern of a Jobs > 1 fan-out. Run under -race this
// is the audit for the telemetry layer's cross-run state.
func TestConcurrentRunsSharedMonitor(t *testing.T) {
	b, ok := workload.ByName("436.cactusADM")
	if !ok {
		t.Fatal("benchmark missing")
	}
	journal := telemetry.NewJournal(256)
	reg := telemetry.NewRegistry()
	shared := &countingMonitor{}
	extra := telemetry.Synchronized(shared)

	const runs = 8
	results := make([]RunResult, runs)
	err := parallel.ForEach(runs, runs, func(i int) error {
		results[i] = RunSingleTelemetry(b, specPDP(8, 10_000), 40_000, 42, TelemetryOptions{
			Registry:      reg,
			Journal:       journal,
			SnapshotEvery: 10_000,
			EventSample:   64,
			Extra:         extra,
		})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < runs; i++ {
		if results[i].Stats != results[0].Stats {
			t.Fatalf("identically-seeded concurrent runs diverge: run %d %+v vs run 0 %+v",
				i, results[i].Stats, results[0].Stats)
		}
	}
	if shared.events == 0 {
		t.Fatal("shared monitor saw no events")
	}
	if journal.Total() == 0 {
		t.Fatal("shared journal recorded nothing")
	}
}

// TestSynchronizedMonitorSerializes hammers one Synchronized monitor from
// many goroutines; under -race this fails without the wrapper's mutex,
// and the count checks that no event is lost.
func TestSynchronizedMonitorSerializes(t *testing.T) {
	shared := &countingMonitor{}
	mon := telemetry.Synchronized(shared)
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				mon.Event(cache.Event{})
			}
		}()
	}
	wg.Wait()
	if shared.events != workers*per {
		t.Fatalf("events = %d, want %d", shared.events, workers*per)
	}
	if telemetry.Synchronized(nil) != nil {
		t.Fatal("Synchronized(nil) must be nil")
	}
}
