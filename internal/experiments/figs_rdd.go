package experiments

import (
	"fmt"
	"strings"

	"pdp/internal/core"
	"pdp/internal/parallel"
	"pdp/internal/pdproc"
	"pdp/internal/sampler"
	"pdp/internal/trace"
	"pdp/internal/workload"
)

// measureRDD collects the exact RDD of a benchmark with the Full sampler.
func measureRDD(b workload.Benchmark, sc, n int, seed uint64) *sampler.CounterArray {
	s := sampler.New(sampler.FullConfig(LLCSets, sc))
	// Offline analysis: widen the counters so long windows do not saturate
	// the 16-bit hardware widths (the periodic-reset Real sampler never
	// accumulates this much).
	s.Array().NiMax = 1 << 31
	s.Array().NtMax = 1 << 62
	g := b.Generator(LLCSets, 1, seed)
	feed := func(count int) {
		for i := 0; i < count; i++ {
			a := g.Next()
			set := int(a.Addr / trace.LineSize % uint64(LLCSets))
			s.Access(set, a.Addr)
		}
	}
	// Warm the generator and the sampler FIFOs, then restart the counters.
	feed(Warmup(n))
	s.Array().Reset()
	feed(n)
	return s.Array()
}

// printRDD renders one RDD as a textual histogram (bins with >= 0.5% of
// reuse mass) plus the below-d_max fraction bar of paper Fig. 1.
func printRDD(cfg Config, name string, arr *sampler.CounterArray) {
	var hits uint64
	for k := 0; k < arr.K(); k++ {
		hits += uint64(arr.Count(k))
	}
	fmt.Fprintf(cfg.Out, "%s  (reuse mass below d_max: %.0f%% of accesses)\n",
		name, 100*float64(hits)/float64(arr.Total()+1))
	if hits == 0 {
		fmt.Fprintln(cfg.Out, "  (no reuse below d_max — streaming)")
		return
	}
	for k := 0; k < arr.K(); k++ {
		frac := float64(arr.Count(k)) / float64(hits)
		if frac < 0.005 {
			continue
		}
		bar := strings.Repeat("#", int(frac*120))
		fmt.Fprintf(cfg.Out, "  d<=%3d  %5.1f%% %s\n", arr.Dist(k), 100*frac, bar)
	}
}

// measureRDDs collects the RDDs of several benchmarks across cfg.Jobs
// workers (each measurement is an independent full-sampler pass).
func measureRDDs(cfg Config, bs []workload.Benchmark, sc int) ([]*sampler.CounterArray, error) {
	return parallel.Map(cfg.jobs(), len(bs), func(i int) (*sampler.CounterArray, error) {
		return measureRDD(bs[i], sc, cfg.Accesses, cfg.Seed), nil
	})
}

// Fig1 reproduces paper Fig. 1: RDDs of selected benchmarks.
func Fig1(cfg Config) error {
	header(cfg.Out, "fig1", "Reuse distance distributions of selected benchmarks")
	names := []string{"403.gcc", "436.cactusADM", "450.soplex", "464.h264ref", "482.sphinx3"}
	bs := make([]workload.Benchmark, len(names))
	for i, name := range names {
		b, ok := workload.ByName(name)
		if !ok {
			return fmt.Errorf("unknown benchmark %s", name)
		}
		bs[i] = b
	}
	arrs, err := measureRDDs(cfg, bs, 4)
	if err != nil {
		return err
	}
	for i, name := range names {
		printRDD(cfg, name, arrs[i])
		fmt.Fprintln(cfg.Out)
	}
	return nil
}

// Fig5b reproduces paper Fig. 5b: RDDs of the three xalancbmk windows.
func Fig5b(cfg Config) error {
	header(cfg.Out, "fig5b", "RDDs of three windows of 483.xalancbmk")
	windows := workload.XalancWindows()
	arrs, err := measureRDDs(cfg, windows, 4)
	if err != nil {
		return err
	}
	for i, b := range windows {
		printRDD(cfg, b.Name, arrs[i])
		fmt.Fprintln(cfg.Out)
	}
	return nil
}

// Fig6 reproduces paper Fig. 6: the hit-rate model E(d_p) against the
// measured hit rate of the static bypass PDP across d_p.
func Fig6(cfg Config) error {
	header(cfg.Out, "fig6", "E(d_p) vs measured hit rate (model validation)")
	benches := []string{"464.h264ref", "403.gcc", "482.sphinx3", "483.xalancbmk.2", "436.cactusADM"}
	type fig6Row struct {
		arr  *sampler.CounterArray
		runs []RunResult // one per d_p step
	}
	rows, err := parallel.Map(cfg.jobs(), len(benches), func(i int) (fig6Row, error) {
		b, ok := workload.ByName(benches[i])
		if !ok {
			return fig6Row{}, fmt.Errorf("unknown benchmark %s", benches[i])
		}
		row := fig6Row{arr: measureRDD(b, 4, cfg.Accesses, cfg.Seed)}
		for dp := 16; dp <= 256; dp += 16 {
			row.runs = append(row.runs, RunSingle(cfg.Bench(b), specSPDP(dp, true), cfg.Accesses, cfg.Seed))
		}
		return row, nil
	})
	if err != nil {
		return err
	}
	for i, name := range benches {
		arr := rows[i].arr
		ev := core.EValues(arr, LLCWays)
		// Normalize E to its max for readability (it is proportional to the
		// hit rate, not equal).
		maxE := 0.0
		for _, v := range ev {
			if v > maxE {
				maxE = v
			}
		}
		fmt.Fprintf(cfg.Out, "%s\n", name)
		tw := table(cfg.Out)
		fmt.Fprintln(tw, "d_p\tE(d_p) (norm)\tmeasured hit rate\tRDD mass")
		var hits uint64
		for k := 0; k < arr.K(); k++ {
			hits += uint64(arr.Count(k))
		}
		bestModel, bestMeasured := 0, 0
		bestE, bestHR := -1.0, -1.0
		for step, r := range rows[i].runs {
			dp := 16 * (step + 1)
			k := dp/4 - 1
			e := 0.0
			if maxE > 0 {
				e = ev[k] / maxE
			}
			mass := 0.0
			if hits > 0 {
				var m uint64
				for j := dp/4 - 4; j < dp/4; j++ {
					if j >= 0 {
						m += uint64(arr.Count(j))
					}
				}
				mass = float64(m) / float64(hits)
			}
			hr := r.Stats.HitRate()
			fmt.Fprintf(tw, "%d\t%.3f\t%.3f\t%.3f\n", dp, e, hr, mass)
			if e > bestE {
				bestE, bestModel = e, dp
			}
			if hr > bestHR {
				bestHR, bestMeasured = hr, dp
			}
		}
		tw.Flush()
		fmt.Fprintf(cfg.Out, "model argmax d_p = %d, measured argmax d_p = %d\n\n", bestModel, bestMeasured)
	}
	return nil
}

// Tab2 reproduces paper Table 2: the distribution of computed optimal PDs
// across the benchmark suite (none beyond d_max = 256).
func Tab2(cfg Config) error {
	header(cfg.Out, "tab2", "Distribution of optimal PD across SPEC-like suite")
	type bucket struct {
		lo, hi int
		names  []string
	}
	buckets := []bucket{{1, 16, nil}, {17, 32, nil}, {33, 64, nil}, {65, 128, nil}, {129, 256, nil}}
	none := []string{}
	suite := workload.Suite()
	type tab2Cell struct {
		pd int
		e  float64
	}
	cells, err := parallel.Map(cfg.jobs(), len(suite), func(i int) (tab2Cell, error) {
		arr := measureRDD(suite[i], 4, cfg.Accesses, cfg.Seed)
		pd, e := core.FindPD(arr, LLCWays)
		return tab2Cell{pd: pd, e: e}, nil
	})
	if err != nil {
		return err
	}
	tw := table(cfg.Out)
	fmt.Fprintln(tw, "benchmark\tcomputed PD\tE")
	for i, b := range suite {
		pd, e := cells[i].pd, cells[i].e
		if pd == 0 {
			none = append(none, b.Name)
			fmt.Fprintf(tw, "%s\t(no reuse)\t-\n", b.Name)
			continue
		}
		fmt.Fprintf(tw, "%s\t%d\t%.5f\n", b.Name, pd, e)
		for j := range buckets {
			if pd >= buckets[j].lo && pd <= buckets[j].hi {
				buckets[j].names = append(buckets[j].names, b.Name)
			}
		}
	}
	tw.Flush()
	fmt.Fprintln(cfg.Out, "\nRange of PD\t# of benchmarks")
	for _, bk := range buckets {
		fmt.Fprintf(cfg.Out, "%d-%d\t%d\n", bk.lo, bk.hi, len(bk.names))
	}
	fmt.Fprintf(cfg.Out, "streaming (no computable PD): %d\n", len(none))
	fmt.Fprintln(cfg.Out, "No benchmark requires PD > 256, matching the paper's d_max choice.")
	return nil
}

// PDProc demonstrates paper Sec. 3's special-purpose processor: for every
// benchmark's RDD the hardware search must match the software optimum at a
// cycle cost negligible against the 512K-access recompute interval.
func PDProc(cfg Config) error {
	header(cfg.Out, "pdproc", "Hardware PD-compute processor vs software search")
	suite := workload.Suite()
	type pdprocCell struct {
		sw  int
		res pdproc.Result
	}
	cells, err := parallel.Map(cfg.jobs(), len(suite), func(i int) (pdprocCell, error) {
		arr := measureRDD(suite[i], 4, cfg.Accesses, cfg.Seed)
		sw, _ := core.FindPD(arr, LLCWays)
		res, err := pdproc.Compute(arr, LLCWays)
		return pdprocCell{sw: sw, res: res}, err
	})
	if err != nil {
		return err
	}
	tw := table(cfg.Out)
	fmt.Fprintln(tw, "benchmark\tsoftware PD\thardware PD\tcycles\tfraction of 512K interval")
	for i, b := range suite {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%.5f\n",
			b.Name, cells[i].sw, cells[i].res.PD, cells[i].res.Cycles,
			float64(cells[i].res.Cycles)/(512*1024))
	}
	tw.Flush()
	fmt.Fprintf(cfg.Out, "program: %d instructions in the 16-op ISA (mult8=8cy, div32=33cy)\n",
		pdproc.SearchProgram().Len())
	return nil
}

// Overhead reproduces the paper Sec. 6.2 hardware accounting: SRAM bits of
// PDP-2/PDP-3 against DIP and DRRIP for the 2MB LLC.
func Overhead(cfg Config) error {
	header(cfg.Out, "overhead", "Hardware overhead for the 2MB 16-way LLC (SRAM bits)")
	dataBits := LLCSets * LLCWays * trace.LineSize * 8
	tw := table(cfg.Out)
	fmt.Fprintln(tw, "policy\tbits\t% of data array")
	row := func(name string, bits int) {
		fmt.Fprintf(tw, "%s\t%d\t%.3f%%\n", name, bits, 100*float64(bits)/float64(dataBits))
	}
	for _, nc := range []int{2, 3, 8} {
		p := core.New(core.Config{Sets: LLCSets, Ways: LLCWays, NC: nc, Bypass: true})
		row(fmt.Sprintf("PDP-%d", nc), p.HardwareBits())
	}
	// DIP: one 10-bit PSEL (leader-set selection is combinational).
	row("DIP", 10)
	// DRRIP: 2 RRPV bits per line + 10-bit PSEL.
	row("DRRIP", LLCSets*LLCWays*2+10)
	tw.Flush()
	fmt.Fprintln(cfg.Out, "(paper: ~0.6% for PDP-2 and ~0.8% for PDP-3 including samplers and compute logic)")
	return nil
}
