package experiments

import (
	"fmt"
	"sort"
)

// Experiment is one regenerable paper artifact.
type Experiment struct {
	ID    string
	Title string
	Run   func(Config) error
}

// Registry lists every experiment by id.
func Registry() []Experiment {
	return []Experiment{
		{"fig1", "RDDs of selected benchmarks (paper Fig. 1)", Fig1},
		{"fig2", "DRRIP misses vs epsilon (paper Fig. 2)", Fig2},
		{"fig4", "Static PDP vs DRRIP (paper Fig. 4)", Fig4},
		{"fig5a", "Access/occupancy breakdown (paper Fig. 5a)", Fig5a},
		{"fig5b", "xalancbmk window RDDs (paper Fig. 5b)", Fig5b},
		{"fig6", "Hit-rate model validation (paper Fig. 6)", Fig6},
		{"fig9", "PDP parameter exploration (paper Fig. 9)", Fig9},
		{"fig10", "Single-core policies vs DIP (paper Fig. 10)", Fig10},
		{"fig11", "Phase adaptation (paper Fig. 11)", Fig11},
		{"fig12", "Multi-core partitioning (paper Fig. 12)", Fig12},
		{"tab2", "Optimal PD distribution (paper Table 2)", Tab2},
		{"overhead", "Hardware overhead (paper Sec. 6.2)", Overhead},
		{"sec63", "429.mcf insertion study (paper Sec. 6.3)", Sec63},
		{"sec65", "Prefetch-aware PDP (paper Sec. 6.5)", Sec65},
		{"pdproc", "PD-compute processor (paper Sec. 3)", PDProc},
		{"optgap", "Belady-OPT headroom recovery (extension)", OptGap},
		{"classpdp", "Per-PC-class PDP (paper Sec. 6.3 proposal, extension)", ClassPDPExp},
		{"energy", "LLC+memory dynamic energy (extension)", Energy},
		{"timing", "Core-model robustness under MLP (extension)", Timing},
	}
}

// ByID finds an experiment.
func ByID(id string) (Experiment, bool) {
	for _, e := range Registry() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// IDs returns all experiment ids, sorted.
func IDs() []string {
	var out []string
	for _, e := range Registry() {
		out = append(out, e.ID)
	}
	sort.Strings(out)
	return out
}

// RunAll executes every experiment in registry order.
func RunAll(cfg Config) error {
	for _, e := range Registry() {
		if err := e.Run(cfg); err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
	}
	return nil
}
