package experiments

import (
	"fmt"

	"pdp/internal/cache"
	"pdp/internal/cpu"
	"pdp/internal/metrics"
	"pdp/internal/parallel"
	"pdp/internal/partition"
	"pdp/internal/rrip"
	"pdp/internal/telemetry"
	"pdp/internal/trace"
	"pdp/internal/workload"
)

// MCPolicySpec names a shared-cache policy and builds it per geometry.
type MCPolicySpec struct {
	Name   string
	Bypass bool
	New    func(sets, ways, threads int, seed uint64) cache.Policy
}

func mcTADRRIP() MCPolicySpec {
	return MCPolicySpec{Name: "TA-DRRIP", New: func(s, w, t int, seed uint64) cache.Policy {
		return rrip.NewTADRRIP(s, w, t, rrip.DefaultEpsilon, seed)
	}}
}

func mcUCP(interval uint64) MCPolicySpec {
	return MCPolicySpec{Name: "UCP", New: func(s, w, t int, _ uint64) cache.Policy {
		return partition.NewUCP(s, w, t, interval)
	}}
}

func mcPIPP(interval uint64) MCPolicySpec {
	return MCPolicySpec{Name: "PIPP", New: func(s, w, t int, seed uint64) cache.Policy {
		return partition.NewPIPP(s, w, t, interval, seed)
	}}
}

func mcPDPPart(nc int, interval uint64) MCPolicySpec {
	return MCPolicySpec{Name: fmt.Sprintf("PDP-%d", nc), Bypass: true,
		New: func(s, w, t int, _ uint64) cache.Policy {
			return partition.NewPDPPart(partition.PDPPartConfig{
				Sets: s, Ways: w, Threads: t, NC: nc, SC: 16, RecomputeEvery: interval,
			})
		}}
}

// MixResult holds per-thread IPCs of one multi-programmed run.
type MixResult struct {
	Policy string
	IPC    []float64
}

// RunMix drives a multi-programmed mix through a shared LLC of 2MB per
// core. Threads interleave with probabilities proportional to their APKI
// (memory-intensity-proportional arrival, standing in for co-run timing).
func RunMix(mix workload.Mix, spec MCPolicySpec, perThread int, seed uint64) MixResult {
	return runMix(mix, spec, perThread, seed, nil)
}

// RunMixTelemetry is RunMix with the telemetry pipeline attached after
// warm-up: a per-core-occupancy-aware cache Tap plus opt.Extra. Shared-LLC
// partitioning policies exposing PDs() get their per-thread protecting
// distances stamped into every snapshot.
func RunMixTelemetry(mix workload.Mix, spec MCPolicySpec, perThread int, seed uint64, opt TelemetryOptions) MixResult {
	return runMix(mix, spec, perThread, seed, func(c *cache.Cache, pol cache.Policy) {
		tap := telemetry.NewTap(c, telemetry.TapConfig{
			Registry:      opt.Registry,
			Journal:       opt.Journal,
			SnapshotEvery: opt.SnapshotEvery,
			EventSample:   opt.EventSample,
			Cores:         len(mix.Benchs),
		})
		tap.ObservePolicy(pol)
		c.SetMonitor(telemetry.Multi(tap, opt.Extra))
	})
}

// runMix drives one multi-programmed run; attach, called on the warmed-up
// cache just before the measured window, installs any observers.
func runMix(mix workload.Mix, spec MCPolicySpec, perThread int, seed uint64, attach func(*cache.Cache, cache.Policy)) MixResult {
	cores := len(mix.Benchs)
	sets := LLCSets * cores
	pol := spec.New(sets, LLCWays, cores, seed)
	c := cache.New(cache.Config{Name: "LLC", Sets: sets, Ways: LLCWays,
		LineSize: trace.LineSize, AllowBypass: spec.Bypass}, pol)

	gens := make([]trace.Generator, cores)
	cum := make([]float64, cores)
	total := 0.0
	for t, b := range mix.Benchs {
		// Generators are built at single-core granularity (2048 sets): a
		// program's working set does not grow because the shared LLC did.
		// Its lines spread over the larger LLC (the tag bits alias across
		// the extra index bits), and with the LLC scaling with the core
		// count, per-set reuse distances stay at their single-core values.
		gens[t] = b.Generator(LLCSets, uint64(t+1), seed+uint64(t)*977)
		total += b.APKI
		cum[t] = total
	}
	rng := trace.NewRNG(seed ^ 0xC0FFEE)
	accs := make([]uint64, cores)
	hits := make([]uint64, cores)
	mem := make([]uint64, cores)
	pick := func() int {
		u := rng.Float64() * total
		t := 0
		for t < cores-1 && u >= cum[t] {
			t++
		}
		return t
	}
	n := perThread * cores
	// Multi-core warm-up: every thread needs its own single-core-scale
	// warm-up, and threads only advance at ~1/cores of the global rate.
	warm := n / 3
	if warm > 2_000_000 {
		warm = 2_000_000
	}
	for i := warm; i > 0; i-- {
		t := pick()
		a := gens[t].Next()
		a.Thread = t
		c.Access(a)
	}
	c.Stats = cache.Stats{}
	if attach != nil {
		attach(c, pol)
	}
	for i := 0; i < n; i++ {
		t := pick()
		a := gens[t].Next()
		a.Thread = t
		r := c.Access(a)
		accs[t]++
		if r.Hit {
			hits[t]++
		} else {
			mem[t]++
		}
	}
	model := cpu.Default()
	ipc := make([]float64, cores)
	for t := range ipc {
		instr := cpu.Instructions(accs[t], mix.Benchs[t].APKI)
		ipc[t] = model.IPC(instr, hits[t], mem[t])
	}
	return MixResult{Policy: spec.Name, IPC: ipc}
}

// singleIPC computes a benchmark's stand-alone IPC on the multi-core LLC
// under LRU (the paper's IPCSingle baseline).
func singleIPC(b workload.Benchmark, cores, accesses int, seed uint64) float64 {
	sets := LLCSets * cores
	c := cache.New(cache.Config{Name: "LLC", Sets: sets, Ways: LLCWays,
		LineSize: trace.LineSize}, cache.NewLRU(sets, LLCWays))
	// Same single-core-granularity generator as RunMix: alone on the large
	// LLC, the thread's lines spread thinner and distances shrink.
	g := b.Generator(LLCSets, 1, seed)
	for i := Warmup(accesses); i > 0; i-- {
		c.Access(g.Next())
	}
	c.Stats = cache.Stats{}
	for i := 0; i < accesses; i++ {
		c.Access(g.Next())
	}
	instr := cpu.Instructions(c.Stats.Accesses, b.APKI)
	return cpu.Default().IPC(instr, c.Stats.Hits, c.Stats.Misses)
}

// Fig12 reproduces paper Fig. 12: 4- and 16-core cache partitioning — the
// weighted IPC (W), throughput (T) and harmonic fairness (H) of UCP, PIPP
// and PD-based partitioning, normalized to TA-DRRIP.
func Fig12(cfg Config) error {
	header(cfg.Out, "fig12", "Cache partitioning for 4- and 16-core workloads (vs TA-DRRIP)")
	for _, setup := range []struct {
		cores, mixes int
	}{{4, cfg.Mixes4}, {16, cfg.Mixes16}} {
		cores := setup.cores
		// Repartition/recompute interval: a few times per measured window,
		// but long enough that every thread accumulates a usable sampled
		// RDD (the paper recomputes every 512K accesses).
		interval := uint64(cfg.MCAccessesPerThread * cores / 4)
		if interval < 65536 {
			interval = 65536
		}
		if interval > 512*1024 {
			interval = 512 * 1024
		}
		policies := []MCPolicySpec{
			mcTADRRIP(),
			mcUCP(interval),
			mcPIPP(interval),
			mcPDPPart(2, interval),
			mcPDPPart(3, interval),
			// The paper evaluates 2- and 3-bit RPDs; the 8-bit column shows
			// what the S_d quantization costs (extension).
			mcPDPPart(8, interval),
		}
		mixes := workload.Mixes(cores, setup.mixes, cfg.Seed+uint64(cores))
		fmt.Fprintf(cfg.Out, "\n-- %d cores, %d mixes, %d accesses/thread --\n",
			cores, setup.mixes, cfg.MCAccessesPerThread)

		// Stand-alone IPCs, cached per benchmark. Unique benchmarks are
		// collected in deterministic first-appearance order, then measured
		// across the worker pool.
		var uniq []workload.Benchmark
		singles := map[string]float64{}
		for _, m := range mixes {
			for _, b := range m.Benchs {
				if _, ok := singles[b.Name]; !ok {
					singles[b.Name] = 0
					uniq = append(uniq, b)
				}
			}
		}
		ipcs, err := parallel.Map(cfg.jobs(), len(uniq), func(i int) (float64, error) {
			return singleIPC(uniq[i], cores, cfg.MCAccessesPerThread, cfg.Seed), nil
		})
		if err != nil {
			return err
		}
		for i, b := range uniq {
			singles[b.Name] = ipcs[i]
		}

		// All mix x policy runs, column 0 = the TA-DRRIP base. Each cell is
		// an independent run seeded only by the mix id, so the grid is
		// identical at every jobs count.
		runs, err := parallel.Grid(cfg.jobs(), len(mixes), len(policies), func(r, c int) (MixResult, error) {
			m := mixes[r]
			return RunMix(cfg.Mix(m), policies[c], cfg.MCAccessesPerThread, cfg.Seed+uint64(m.ID)), nil
		})
		if err != nil {
			return err
		}

		type agg struct{ w, t, h []float64 }
		deltas := map[string]*agg{}
		for _, p := range policies[1:] {
			deltas[p.Name] = &agg{}
		}
		tw := table(cfg.Out)
		fmt.Fprint(tw, "mix\tworkload")
		for _, p := range policies[1:] {
			fmt.Fprintf(tw, "\t%s dW", p.Name)
		}
		fmt.Fprintln(tw)
		for mi, m := range mixes {
			single := make([]float64, cores)
			for t, b := range m.Benchs {
				single[t] = singles[b.Name]
			}
			eval := func(r MixResult) (float64, float64, float64) {
				w, err := metrics.WeightedIPC(r.IPC, single)
				if err != nil {
					return 0, 0, 0
				}
				t := metrics.Throughput(r.IPC)
				h, err := metrics.HarmonicMeanNorm(r.IPC, single)
				if err != nil {
					h = 0
				}
				return w, t, h
			}
			baseW, baseT, baseH := eval(runs[mi][0])
			fmt.Fprintf(tw, "%d\t%s", m.ID, shortNames(m.Names))
			for pi, p := range policies[1:] {
				w, t, h := eval(runs[mi][1+pi])
				dw := metrics.Improvement(w, baseW)
				dt := metrics.Improvement(t, baseT)
				dh := metrics.Improvement(h, baseH)
				a := deltas[p.Name]
				a.w = append(a.w, dw)
				a.t = append(a.t, dt)
				a.h = append(a.h, dh)
				fmt.Fprintf(tw, "\t%s", fmtPct(dw))
			}
			fmt.Fprintln(tw)
		}
		tw.Flush()

		fmt.Fprintf(cfg.Out, "\nAverages over %d-core mixes (vs TA-DRRIP):\n", cores)
		tw = table(cfg.Out)
		fmt.Fprintln(tw, "policy\tdW\tdT\tdH")
		for _, p := range policies[1:] {
			a := deltas[p.Name]
			fmt.Fprintf(tw, "%s\t%s\t%s\t%s\n", p.Name,
				fmtPct(metrics.Mean(a.w)), fmtPct(metrics.Mean(a.t)), fmtPct(metrics.Mean(a.h)))
		}
		tw.Flush()
	}
	return nil
}

// shortNames compresses a mix's benchmark list for table display.
func shortNames(names []string) string {
	if len(names) <= 4 {
		out := ""
		for i, n := range names {
			if i > 0 {
				out += ","
			}
			if len(n) > 3 {
				n = n[:3]
			}
			out += n
		}
		return out
	}
	return fmt.Sprintf("(%d threads)", len(names))
}

// SingleIPC exposes the stand-alone LRU baseline IPC used by the W/H
// metrics (command-line support).
func SingleIPC(b workload.Benchmark, cores, accesses int, seed uint64) float64 {
	return singleIPC(b, cores, accesses, seed)
}
