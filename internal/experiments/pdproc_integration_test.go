package experiments

import (
	"testing"

	"pdp/internal/cache"
	"pdp/internal/core"
	"pdp/internal/pdproc"
	"pdp/internal/trace"
	"pdp/internal/workload"
)

// TestPDPWithHardwareSolver runs the dynamic PDP end-to-end with the
// cycle-accurate PD-compute processor in the loop and checks it tracks the
// software solver: same workload, closely matching hit rates, and machine
// time negligible against the recompute interval (the paper's Sec. 3
// claim).
func TestPDPWithHardwareSolver(t *testing.T) {
	b, _ := workload.ByName("436.cactusADM")
	const n = 600_000
	run := func(solver core.PDSolver) (*cache.Cache, *core.PDP) {
		pol := core.New(core.Config{
			Sets: LLCSets, Ways: LLCWays, Bypass: true,
			RecomputeEvery: 50_000, Solver: solver,
		})
		c := cache.New(cache.Config{Name: "LLC", Sets: LLCSets, Ways: LLCWays,
			LineSize: trace.LineSize, AllowBypass: true}, pol)
		g := b.Generator(LLCSets, 1, 7)
		for i := 0; i < n; i++ {
			c.Access(g.Next())
		}
		return c, pol
	}

	hw := &pdproc.Solver{}
	cHW, pHW := run(hw)
	cSW, pSW := run(nil) // default software solver

	if hw.Runs == 0 {
		t.Fatal("hardware solver never invoked")
	}
	if pHW.PD() != pSW.PD() {
		// The fixed-point search may differ by quantization; both must land
		// in the same RDD peak.
		d := pHW.PD() - pSW.PD()
		if d < -8 || d > 8 {
			t.Fatalf("hardware PD %d vs software PD %d", pHW.PD(), pSW.PD())
		}
	}
	hrHW, hrSW := cHW.Stats.HitRate(), cSW.Stats.HitRate()
	if hrHW < 0.95*hrSW {
		t.Fatalf("hardware-solver hit rate %.4f vs software %.4f", hrHW, hrSW)
	}
	// Machine time per recompute must be a vanishing fraction of the
	// interval (paper: the processor can sleep between recomputations).
	perRun := float64(hw.TotalCycles) / float64(hw.Runs)
	if perRun/50_000 > 0.2 {
		t.Fatalf("hardware search costs %.0f cycles per 50K-access interval", perRun)
	}
}
