// Package experiments regenerates every table and figure of the PDP
// paper's evaluation (see DESIGN.md's per-experiment index). Each
// experiment writes a plain-text table; cmd/repro drives them by id.
package experiments

import (
	"context"
	"fmt"
	"io"

	"text/tabwriter"

	"pdp/internal/cache"
	"pdp/internal/core"
	"pdp/internal/cpu"
	"pdp/internal/dip"
	"pdp/internal/eelru"
	"pdp/internal/parallel"
	"pdp/internal/resilience"
	"pdp/internal/rrip"
	"pdp/internal/sdp"
	"pdp/internal/telemetry"
	"pdp/internal/trace"
	"pdp/internal/workload"
)

// Paper Table 1 LLC geometry: 2MB, 16-way, 64B lines.
const (
	LLCSets = 2048
	LLCWays = 16
)

// Config controls experiment execution.
type Config struct {
	// Accesses is the single-core trace window in LLC accesses (the paper's
	// 1B-instruction windows, scaled; see DESIGN.md).
	Accesses int
	// MCAccessesPerThread is the per-thread window for multi-core runs.
	MCAccessesPerThread int
	// Mixes4 and Mixes16 are the workload counts for Fig. 12 (paper: 80).
	Mixes4, Mixes16 int
	// Seed fixes all random streams.
	Seed uint64
	// Jobs bounds the number of concurrent simulation tasks per experiment
	// (0 or 1 = serial, < 0 = GOMAXPROCS). Tables are byte-identical for
	// every Jobs value: tasks are pure functions of their identity and
	// rendering happens after the pool drains, in task order.
	Jobs int
	// Out receives the rendered tables.
	Out io.Writer
	// Ctx, when non-nil, cancels in-flight runs cooperatively: every
	// benchmark routed through Bench/Mix gets a guarded generator
	// (resilience.GuardGenerator), so the run must execute under
	// resilience.Supervisor.Run to absorb the cancellation.
	Ctx context.Context
	// Heartbeat, when non-nil, receives progress beats from guarded
	// generators (the supervisor's watchdog reads it).
	Heartbeat *resilience.Heartbeat
	// WrapBench, when non-nil, wraps each benchmark routed through
	// Bench/Mix before the cancellation guard — the fault-injection seam
	// (cmd/repro installs faultinject.WrapBenchmark here).
	WrapBench func(workload.Benchmark) workload.Benchmark
}

// Bench applies the config's run instrumentation to b: the WrapBench
// fault-injection wrapper first, then the cancellation guard. With neither
// configured it returns b unchanged.
func (cfg Config) Bench(b workload.Benchmark) workload.Benchmark {
	if cfg.WrapBench != nil {
		b = cfg.WrapBench(b)
	}
	if cfg.Ctx != nil {
		ctx, hb := cfg.Ctx, cfg.Heartbeat
		build := b.Build
		b.Build = func(sets int, base, seed uint64) trace.Generator {
			return resilience.GuardGenerator(ctx, build(sets, base, seed), 0, hb)
		}
	}
	return b
}

// jobs returns the experiment-level concurrency bound: 0 and 1 mean
// serial, negative values resolve to GOMAXPROCS.
func (cfg Config) jobs() int {
	if cfg.Jobs == 0 {
		return 1
	}
	return parallel.Jobs(cfg.Jobs)
}

// Mix applies Bench to every benchmark of a multi-programmed mix.
func (cfg Config) Mix(m workload.Mix) workload.Mix {
	if cfg.WrapBench == nil && cfg.Ctx == nil {
		return m
	}
	benchs := make([]workload.Benchmark, len(m.Benchs))
	for i, b := range m.Benchs {
		benchs[i] = cfg.Bench(b)
	}
	m.Benchs = benchs
	return m
}

// DefaultConfig returns a configuration sized for minutes-scale runs.
func DefaultConfig(out io.Writer) Config {
	return Config{
		Accesses:            1_000_000,
		MCAccessesPerThread: 400_000,
		Mixes4:              20,
		Mixes16:             8,
		Seed:                42,
		Out:                 out,
	}
}

// PolicySpec names a policy and builds it for a given geometry.
type PolicySpec struct {
	Name   string
	Bypass bool
	New    func(sets, ways int, seed uint64) cache.Policy
}

// Standard single-core policy specs.
func specLRU() PolicySpec {
	return PolicySpec{Name: "LRU", New: func(s, w int, _ uint64) cache.Policy { return cache.NewLRU(s, w) }}
}

func specDIP() PolicySpec {
	return PolicySpec{Name: "DIP", New: func(s, w int, seed uint64) cache.Policy {
		return dip.NewDIP(s, w, dip.DefaultEpsilon, seed)
	}}
}

func specDRRIP(eps float64) PolicySpec {
	name := "DRRIP"
	if eps != rrip.DefaultEpsilon {
		name = fmt.Sprintf("DRRIP(1/%.0f)", 1/eps)
	}
	return PolicySpec{Name: name, New: func(s, w int, seed uint64) cache.Policy {
		return rrip.NewDRRIP(s, w, eps, seed)
	}}
}

func specEELRU() PolicySpec {
	return PolicySpec{Name: "EELRU", New: func(s, w int, _ uint64) cache.Policy {
		return eelru.New(eelru.Config{Sets: s, Ways: w})
	}}
}

func specSDP() PolicySpec {
	return PolicySpec{Name: "SDP", Bypass: true, New: func(s, w int, _ uint64) cache.Policy {
		return sdp.New(sdp.Config{Sets: s, Ways: w, AllowBypass: true})
	}}
}

func specPDP(nc int, recompute uint64) PolicySpec {
	return PolicySpec{Name: fmt.Sprintf("PDP-%d", nc), Bypass: true,
		New: func(s, w int, _ uint64) cache.Policy {
			return core.New(core.Config{Sets: s, Ways: w, NC: nc, Bypass: true, RecomputeEvery: recompute})
		}}
}

func specSPDP(pd int, bypass bool) PolicySpec {
	name := fmt.Sprintf("SPDP-NB(%d)", pd)
	if bypass {
		name = fmt.Sprintf("SPDP-B(%d)", pd)
	}
	return PolicySpec{Name: name, Bypass: bypass, New: func(s, w int, _ uint64) cache.Policy {
		return core.New(core.Config{Sets: s, Ways: w, StaticPD: pd, Bypass: bypass})
	}}
}

// RunResult summarizes one single-core run. The JSON field names are the
// stable schema of the CLIs' `-stats json` output.
type RunResult struct {
	Bench  string      `json:"benchmark"`
	Policy string      `json:"policy"`
	Stats  cache.Stats `json:"stats"`
	Instr  uint64      `json:"instructions"`
	IPC    float64     `json:"ipc"`
	MPKI   float64     `json:"mpki"`
}

// BypassFrac returns bypasses / accesses.
func (r RunResult) BypassFrac() float64 {
	if r.Stats.Accesses == 0 {
		return 0
	}
	return float64(r.Stats.Bypasses) / float64(r.Stats.Accesses)
}

// RunSingle drives n accesses of benchmark b through a fresh LLC managed by
// spec's policy.
func RunSingle(b workload.Benchmark, spec PolicySpec, n int, seed uint64) RunResult {
	return RunSingleMonitored(b, spec, n, seed, nil)
}

// Warmup returns the number of unmeasured warm-up accesses for a window of
// n measured accesses. Warm-up serves two purposes: the cache and the
// dynamic policies reach steady state, and the trace generators accumulate
// enough per-set history to produce their long reuse distances (a d=124
// set-level reuse needs ~124 x 2048 global accesses of history).
func Warmup(n int) int {
	w := n / 2
	if w < 64_000 {
		w = 64_000
	}
	if w > 300_000 {
		w = 300_000
	}
	return w
}

// RunSingleMonitored is RunSingle with an attached cache monitor. Warm-up
// accesses run before counters (and the monitor) start.
func RunSingleMonitored(b workload.Benchmark, spec PolicySpec, n int, seed uint64, mon cache.Monitor) RunResult {
	return runSingle(b, spec, n, seed, runOpts{attach: func(c *cache.Cache, _ cache.Policy) {
		if mon != nil {
			c.SetMonitor(mon)
		}
	}})
}

// runOpts are the internal knobs of runSingle.
type runOpts struct {
	attach        func(*cache.Cache, cache.Policy)
	start         uint64 // resume the measured window at this offset
	onProgress    func(done uint64)
	progressEvery uint64
}

// runSingle drives one single-core run; attach, called on the warmed-up
// cache just before the measured window (stats freshly reset), installs
// any observers. A positive start offset replays that many measured-window
// accesses unmeasured first — generators are deterministic, so the replay
// rebuilds the exact cache state of the interrupted run — and measures
// only the remainder.
func runSingle(b workload.Benchmark, spec PolicySpec, n int, seed uint64, opt runOpts) RunResult {
	pol := spec.New(LLCSets, LLCWays, seed)
	c := cache.New(cache.Config{
		Name: "LLC", Sets: LLCSets, Ways: LLCWays, LineSize: trace.LineSize,
		AllowBypass: spec.Bypass,
	}, pol)
	g := b.Generator(LLCSets, 1, seed)
	skip := int(opt.start)
	if skip > n {
		skip = n
	}
	for i := Warmup(n) + skip; i > 0; i-- {
		c.Access(g.Next())
	}
	c.Stats = cache.Stats{}
	if opt.attach != nil {
		opt.attach(c, pol)
	}
	if opt.progressEvery > 0 && opt.onProgress != nil {
		for i := skip; i < n; i++ {
			c.Access(g.Next())
			if done := uint64(i + 1); done%opt.progressEvery == 0 {
				opt.onProgress(done)
			}
		}
	} else {
		for i := skip; i < n; i++ {
			c.Access(g.Next())
		}
	}
	instr := cpu.Instructions(c.Stats.Accesses, b.APKI)
	model := cpu.Default()
	mem := c.Stats.Misses // misses include bypasses
	return RunResult{
		Bench:  b.Name,
		Policy: spec.Name,
		Stats:  c.Stats,
		Instr:  instr,
		IPC:    model.IPC(instr, c.Stats.Hits, mem),
		MPKI:   cpu.MPKI(mem, instr),
	}
}

// TelemetryOptions configures the observability pipeline of an
// instrumented run: where metrics and events go, the snapshot cadence,
// and any additional monitor to fan in via telemetry.Multi.
type TelemetryOptions struct {
	// Registry receives the run's counters, gauges and histograms (nil
	// disables metrics).
	Registry *telemetry.Registry
	// Journal receives events and snapshots (nil disables journaling).
	Journal *telemetry.Journal
	// SnapshotEvery is the snapshot cadence in measured accesses (0
	// disables snapshots).
	SnapshotEvery uint64
	// EventSample journals one in EventSample high-frequency events
	// (bypasses, protected evictions, sampler FIFO evictions); <= 1
	// journals all.
	EventSample uint64
	// Extra is an additional cache monitor observing the same run. A
	// monitor shared by several concurrent runs (e.g. one aggregate
	// observer across a Jobs > 1 fan-out) must be wrapped in
	// telemetry.Synchronized; per-run monitors need no locking.
	Extra cache.Monitor
	// Attach, when non-nil, runs on the warmed-up cache and policy just
	// before the measured window and may return one more monitor to fan
	// in (nil is fine). Fault injectors and invariant checkers that need
	// the policy instance hook in here.
	Attach func(*cache.Cache, cache.Policy) cache.Monitor
}

// RunSingleTelemetry is RunSingle with the full telemetry pipeline
// attached after warm-up: a cache Tap (metrics, snapshots, bypass and
// protected-eviction events), the PDP recompute observer and the sampler
// FIFO hook when the policy is a dynamic PDP, plus opt.Extra.
func RunSingleTelemetry(b workload.Benchmark, spec PolicySpec, n int, seed uint64, opt TelemetryOptions) RunResult {
	return runSingle(b, spec, n, seed, runOpts{attach: telemetryAttach(opt)})
}

// telemetryAttach builds the runSingle attach hook for opt.
func telemetryAttach(opt TelemetryOptions) func(*cache.Cache, cache.Policy) {
	return func(c *cache.Cache, pol cache.Policy) {
		tap := telemetry.NewTap(c, telemetry.TapConfig{
			Registry:      opt.Registry,
			Journal:       opt.Journal,
			SnapshotEvery: opt.SnapshotEvery,
			EventSample:   opt.EventSample,
		})
		tap.ObservePolicy(pol)
		if pdp, ok := pol.(*core.PDP); ok {
			telemetry.ObservePDP(pdp, opt.Journal, opt.EventSample)
		}
		var extra cache.Monitor
		if opt.Attach != nil {
			extra = opt.Attach(c, pol)
		}
		c.SetMonitor(telemetry.Multi(tap, opt.Extra, extra))
	}
}

// RunOptions configures a resumable, supervised single-core run.
type RunOptions struct {
	// Telemetry configures the run's observability pipeline.
	Telemetry TelemetryOptions
	// StartAccess resumes the measured window at this offset: the skipped
	// prefix is replayed unmeasured to rebuild cache state (generators are
	// deterministic), and only the remaining window is measured.
	StartAccess uint64
	// OnProgress, when non-nil, is called every ProgressEvery measured
	// accesses with the absolute measured offset — the checkpoint-save
	// hook. ProgressEvery == 0 disables it.
	OnProgress    func(done uint64)
	ProgressEvery uint64
}

// RunSingleResilient is RunSingleTelemetry plus checkpoint/resume
// support: it can start mid-window and report progress for periodic
// checkpointing.
func RunSingleResilient(b workload.Benchmark, spec PolicySpec, n int, seed uint64, opt RunOptions) RunResult {
	return runSingle(b, spec, n, seed, runOpts{
		attach:        telemetryAttach(opt.Telemetry),
		start:         opt.StartAccess,
		onProgress:    opt.OnProgress,
		progressEvery: opt.ProgressEvery,
	})
}

// table starts an aligned text table on w.
func table(w io.Writer) *tabwriter.Writer {
	return tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
}

func header(out io.Writer, id, title string) {
	fmt.Fprintf(out, "\n=== %s — %s ===\n", id, title)
}

// fmtPct renders a fraction as a signed percentage.
func fmtPct(f float64) string { return fmt.Sprintf("%+.1f%%", 100*f) }

// SpecByName resolves a single-core policy spec from a command-line name:
// lru, dip, drrip, drrip:1/64, eelru, sdp, pdp-2, pdp-3, pdp-8,
// spdp-b:76, spdp-nb:76.
func SpecByName(name string, accesses int) (PolicySpec, error) {
	recompute := uint64(accesses / 8)
	if recompute < 4096 {
		recompute = 4096
	}
	var pd int
	switch {
	case name == "lru":
		return specLRU(), nil
	case name == "dip":
		return specDIP(), nil
	case name == "drrip":
		return specDRRIP(1.0 / 32), nil
	case name == "eelru":
		return specEELRU(), nil
	case name == "sdp":
		return specSDP(), nil
	case name == "pdp-2":
		return specPDP(2, recompute), nil
	case name == "pdp-3":
		return specPDP(3, recompute), nil
	case name == "pdp-8":
		return specPDP(8, recompute), nil
	}
	if n, err := fmt.Sscanf(name, "spdp-b:%d", &pd); err == nil && n == 1 {
		return specSPDP(pd, true), nil
	}
	if n, err := fmt.Sscanf(name, "spdp-nb:%d", &pd); err == nil && n == 1 {
		return specSPDP(pd, false), nil
	}
	var denom float64
	if n, err := fmt.Sscanf(name, "drrip:1/%f", &denom); err == nil && n == 1 && denom > 0 {
		return specDRRIP(1 / denom), nil
	}
	return PolicySpec{}, fmt.Errorf("unknown policy %q", name)
}

// MCSpecByName resolves a multi-core policy spec: ta-drrip, ucp, pipp,
// pdppart-2, pdppart-3, pdppart-8.
func MCSpecByName(name string, perThread int) (MCPolicySpec, error) {
	interval := uint64(perThread / 4)
	if interval < 4096 {
		interval = 4096
	}
	switch name {
	case "ta-drrip":
		return mcTADRRIP(), nil
	case "ucp":
		return mcUCP(interval), nil
	case "pipp":
		return mcPIPP(interval), nil
	case "pdppart-2":
		return mcPDPPart(2, interval), nil
	case "pdppart-3":
		return mcPDPPart(3, interval), nil
	case "pdppart-8":
		return mcPDPPart(8, interval), nil
	}
	return MCPolicySpec{}, fmt.Errorf("unknown multi-core policy %q", name)
}
