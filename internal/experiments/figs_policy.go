package experiments

import (
	"fmt"

	"pdp/internal/cache"
	"pdp/internal/core"
	"pdp/internal/cpu"
	"pdp/internal/metrics"
	"pdp/internal/parallel"
	"pdp/internal/prefetch"
	"pdp/internal/trace"
	"pdp/internal/workload"
)

var epsilons = []float64{1.0 / 4, 1.0 / 8, 1.0 / 16, 1.0 / 32, 1.0 / 64, 1.0 / 128, 1.0 / 256}

// staticPDs is the sweep grid for static PDP (paper: 16..d_max).
func staticPDs() []int {
	var out []int
	for pd := 16; pd <= 256; pd += 16 {
		out = append(out, pd)
	}
	return out
}

// Fig2 reproduces paper Fig. 2: DRRIP misses as a function of epsilon,
// normalized to epsilon = 1/32. Cells of the benchmark x epsilon grid are
// independent runs, fanned across cfg.Jobs workers; the table renders
// after the grid completes, in fixed order.
func Fig2(cfg Config) error {
	header(cfg.Out, "fig2", "DRRIP MPKI vs epsilon (normalized to 1/32)")
	benches := []string{"403.gcc", "436.cactusADM", "464.h264ref", "483.xalancbmk.3"}
	bs := make([]workload.Benchmark, len(benches))
	for i, name := range benches {
		b, ok := workload.ByName(name)
		if !ok {
			return fmt.Errorf("unknown benchmark %s", name)
		}
		bs[i] = b
	}
	// Column 0 is the epsilon = 1/32 normalization base.
	grid, err := parallel.Grid(cfg.jobs(), len(bs), 1+len(epsilons), func(r, c int) (RunResult, error) {
		eps := 1.0 / 32
		if c > 0 {
			eps = epsilons[c-1]
		}
		return RunSingle(cfg.Bench(bs[r]), specDRRIP(eps), cfg.Accesses, cfg.Seed), nil
	})
	if err != nil {
		return err
	}
	tw := table(cfg.Out)
	fmt.Fprint(tw, "benchmark")
	for _, e := range epsilons {
		fmt.Fprintf(tw, "\t1/%.0f", 1/e)
	}
	fmt.Fprintln(tw)
	for r, name := range benches {
		base := grid[r][0].MPKI
		fmt.Fprint(tw, name)
		for c := range epsilons {
			fmt.Fprintf(tw, "\t%.3f", grid[r][c+1].MPKI/base)
		}
		fmt.Fprintln(tw)
	}
	return tw.Flush()
}

// bestOver runs spec builders over a grid and returns the result with the
// fewest misses, together with its grid value.
func bestOver[T any](b workload.Benchmark, grid []T, mk func(T) PolicySpec, n int, seed uint64) (RunResult, T) {
	var best RunResult
	var bestV T
	first := true
	for _, v := range grid {
		r := RunSingle(b, mk(v), n, seed)
		if first || r.Stats.Misses < best.Stats.Misses {
			best, bestV, first = r, v, false
		}
	}
	return best, bestV
}

// Fig4 reproduces paper Fig. 4: miss reduction over DRRIP(1/32) of DRRIP
// with the best epsilon, best static SPDP-NB, and best static SPDP-B.
// Each benchmark row (baseline plus three grid sweeps, ~40 runs) is one
// pool task; rows render in suite order once all complete.
func Fig4(cfg Config) error {
	header(cfg.Out, "fig4", "Static PDP vs DRRIP: miss reduction over DRRIP(eps=1/32)")
	type row struct {
		rd, rnb, rb float64
		pdNB, pdB   int
	}
	all := workload.All()
	rows, err := parallel.Map(cfg.jobs(), len(all), func(i int) (row, error) {
		b := all[i]
		base := RunSingle(cfg.Bench(b), specDRRIP(1.0/32), cfg.Accesses, cfg.Seed)
		bd, _ := bestOver(cfg.Bench(b), epsilons, specDRRIP, cfg.Accesses, cfg.Seed)
		bnb, pdNB := bestOver(cfg.Bench(b), staticPDs(), func(pd int) PolicySpec { return specSPDP(pd, false) }, cfg.Accesses, cfg.Seed)
		bb, pdB := bestOver(cfg.Bench(b), staticPDs(), func(pd int) PolicySpec { return specSPDP(pd, true) }, cfg.Accesses, cfg.Seed)
		return row{
			rd:   metrics.Reduction(float64(bd.Stats.Misses), float64(base.Stats.Misses)),
			rnb:  metrics.Reduction(float64(bnb.Stats.Misses), float64(base.Stats.Misses)),
			rb:   metrics.Reduction(float64(bb.Stats.Misses), float64(base.Stats.Misses)),
			pdNB: pdNB, pdB: pdB,
		}, nil
	})
	if err != nil {
		return err
	}
	tw := table(cfg.Out)
	fmt.Fprintln(tw, "benchmark\tDRRIP best-eps\tSPDP-NB\t(best PD)\tSPDP-B\t(best PD)")
	var dAvg, nbAvg, bAvg []float64
	for i, b := range all {
		r := rows[i]
		fmt.Fprintf(tw, "%s\t%s\t%s\t%d\t%s\t%d\n", b.Name, fmtPct(r.rd), fmtPct(r.rnb), r.pdNB, fmtPct(r.rb), r.pdB)
		if !isExtraWindow(b.Name) {
			dAvg = append(dAvg, r.rd)
			nbAvg = append(nbAvg, r.rnb)
			bAvg = append(bAvg, r.rb)
		}
	}
	fmt.Fprintf(tw, "AVERAGE\t%s\t%s\t\t%s\t\n",
		fmtPct(metrics.Mean(dAvg)), fmtPct(metrics.Mean(nbAvg)), fmtPct(metrics.Mean(bAvg)))
	return tw.Flush()
}

// isExtraWindow reports whether the benchmark is one of the xalancbmk
// windows excluded from paper averages.
func isExtraWindow(name string) bool {
	return name == "483.xalancbmk.1" || name == "483.xalancbmk.2"
}

// occMonitor implements the occupancy analysis of paper Fig. 5a: the life
// of a line is split into segments from insertion/promotion to the next
// promotion or eviction, measured in accesses to its set.
type occMonitor struct {
	ways     int
	start    []uint64
	inserted []bool

	Hits, Bypasses, Inserts     uint64
	SegPromoted                 uint64 // segments ending in promotion
	EvictShort, EvictLong       uint64 // evicted segments (<=16 / >16)
	OccPromoted                 uint64
	OccEvictShort, OccEvictLong uint64
}

func newOccMonitor(sets, ways int) *occMonitor {
	return &occMonitor{ways: ways, start: make([]uint64, sets*ways), inserted: make([]bool, sets*ways)}
}

// Event implements cache.Monitor.
func (m *occMonitor) Event(ev cache.Event) {
	i := ev.Set*m.ways + ev.Way
	switch ev.Kind {
	case cache.EvHit:
		m.Hits++
		if m.inserted[i] {
			m.SegPromoted++
			m.OccPromoted += ev.SetAccesses - m.start[i]
			m.start[i] = ev.SetAccesses
		}
	case cache.EvInsert:
		m.Inserts++
		m.start[i] = ev.SetAccesses
		m.inserted[i] = true
	case cache.EvEvict:
		if m.inserted[i] {
			occ := ev.SetAccesses - m.start[i]
			if occ <= 16 {
				m.EvictShort++
				m.OccEvictShort += occ
			} else {
				m.EvictLong++
				m.OccEvictLong += occ
			}
			m.inserted[i] = false
		}
	case cache.EvBypass:
		m.Bypasses++
	}
}

// Fig5a reproduces paper Fig. 5a: the access and occupancy breakdown for
// DRRIP vs static PDP without and with bypass.
func Fig5a(cfg Config) error {
	header(cfg.Out, "fig5a", "Access and occupancy breakdown (hit/bypass/evicted<=16/evicted>16)")
	names := []string{"436.cactusADM", "464.h264ref"}
	type section struct {
		specs []PolicySpec
		runs  []RunResult
		mons  []*occMonitor
	}
	sections, err := parallel.Map(cfg.jobs(), len(names), func(i int) (section, error) {
		b, ok := workload.ByName(names[i])
		if !ok {
			return section{}, fmt.Errorf("unknown benchmark %s", names[i])
		}
		// Use each policy's best static PD from a quick sweep.
		_, pdNB := bestOver(cfg.Bench(b), staticPDs(), func(pd int) PolicySpec { return specSPDP(pd, false) }, cfg.Accesses/2, cfg.Seed)
		_, pdB := bestOver(cfg.Bench(b), staticPDs(), func(pd int) PolicySpec { return specSPDP(pd, true) }, cfg.Accesses/2, cfg.Seed)
		s := section{specs: []PolicySpec{specDRRIP(1.0 / 32), specSPDP(pdNB, false), specSPDP(pdB, true)}}
		for _, spec := range s.specs {
			mon := newOccMonitor(LLCSets, LLCWays)
			s.runs = append(s.runs, RunSingleMonitored(cfg.Bench(b), spec, cfg.Accesses, cfg.Seed, mon))
			s.mons = append(s.mons, mon)
		}
		return s, nil
	})
	if err != nil {
		return err
	}
	for i, name := range names {
		fmt.Fprintf(cfg.Out, "%s\n", name)
		tw := table(cfg.Out)
		fmt.Fprintln(tw, "policy\thit%\tbypass%\tevict<=16%\tevict>16%\t|\tocc promoted%\tocc evict<=16%\tocc evict>16%")
		for j, spec := range sections[i].specs {
			r, mon := sections[i].runs[j], sections[i].mons[j]
			tot := float64(r.Stats.Accesses)
			occTot := float64(mon.OccPromoted + mon.OccEvictShort + mon.OccEvictLong)
			if occTot == 0 {
				occTot = 1
			}
			fmt.Fprintf(tw, "%s\t%.1f\t%.1f\t%.1f\t%.1f\t|\t%.1f\t%.1f\t%.1f\n",
				spec.Name,
				100*float64(mon.Hits)/tot,
				100*float64(mon.Bypasses)/tot,
				100*float64(mon.EvictShort)/tot,
				100*float64(mon.EvictLong)/tot,
				100*float64(mon.OccPromoted)/occTot,
				100*float64(mon.OccEvictShort)/occTot,
				100*float64(mon.OccEvictLong)/occTot)
		}
		tw.Flush()
		fmt.Fprintln(cfg.Out)
	}
	return nil
}

// Fig9 reproduces paper Fig. 9: the PDP parameter exploration — Full vs
// Real sampler and the counter step S_c — as MPKI normalized to the Full
// configuration.
func Fig9(cfg Config) error {
	header(cfg.Out, "fig9", "PDP parameters: sampler configuration and counter step S_c (MPKI / Full)")
	recompute := uint64(cfg.Accesses / 8)
	if recompute < 4096 {
		recompute = 4096
	}
	mk := func(full bool, sc int) PolicySpec {
		name := fmt.Sprintf("Real,Sc=%d", sc)
		if full {
			name = "Full,Sc=1"
		}
		return PolicySpec{Name: name, Bypass: true, New: func(s, w int, _ uint64) cache.Policy {
			return core.New(core.Config{Sets: s, Ways: w, Bypass: true, SC: sc,
				FullSampler: full, RecomputeEvery: recompute})
		}}
	}
	configs := []PolicySpec{mk(true, 1), mk(false, 1), mk(false, 2), mk(false, 4), mk(false, 8)}
	suite := workload.Suite()
	// Column 0 (the Full configuration) doubles as the normalization base.
	grid, err := parallel.Grid(cfg.jobs(), len(suite), len(configs), func(r, c int) (RunResult, error) {
		return RunSingle(cfg.Bench(suite[r]), configs[c], cfg.Accesses, cfg.Seed), nil
	})
	if err != nil {
		return err
	}
	tw := table(cfg.Out)
	fmt.Fprint(tw, "benchmark")
	for _, c := range configs {
		fmt.Fprintf(tw, "\t%s", c.Name)
	}
	fmt.Fprintln(tw)
	for r, b := range suite {
		base := grid[r][0].MPKI
		fmt.Fprint(tw, b.Name)
		for c := range configs {
			norm := 1.0
			if base > 0 {
				norm = grid[r][c].MPKI / base
			}
			fmt.Fprintf(tw, "\t%.3f", norm)
		}
		fmt.Fprintln(tw)
	}
	return tw.Flush()
}

// Fig10 reproduces paper Fig. 10: single-core replacement and bypass
// policies vs DIP — miss reduction, IPC improvement, bypass fraction.
func Fig10(cfg Config) error {
	header(cfg.Out, "fig10", "Single-core policies vs DIP")
	recompute := uint64(cfg.Accesses / 8)
	if recompute < 4096 {
		recompute = 4096
	}
	specs := []PolicySpec{
		specDRRIP(1.0 / 32),
		specEELRU(),
		specSDP(),
		specPDP(2, recompute),
		specPDP(3, recompute),
		specPDP(8, recompute),
	}
	coarse := []int{16, 32, 48, 64, 80, 96, 128, 192, 256}

	type row struct {
		base    RunResult
		results []RunResult
	}
	all := workload.All()
	rows, err := parallel.Map(cfg.jobs(), len(all), func(i int) (row, error) {
		b := all[i]
		out := row{base: RunSingle(cfg.Bench(b), specDIP(), cfg.Accesses, cfg.Seed)}
		out.results = make([]RunResult, 0, len(specs)+1)
		for _, s := range specs {
			out.results = append(out.results, RunSingle(cfg.Bench(b), s, cfg.Accesses, cfg.Seed))
		}
		spdpb, _ := bestOver(cfg.Bench(b), coarse, func(pd int) PolicySpec { return specSPDP(pd, true) }, cfg.Accesses, cfg.Seed)
		spdpb.Policy = "SPDP-B"
		out.results = append(out.results, spdpb)
		return out, nil
	})
	if err != nil {
		return err
	}

	tw := table(cfg.Out)
	fmt.Fprint(tw, "benchmark\tmetric\tDIP(base)")
	for _, s := range specs {
		fmt.Fprintf(tw, "\t%s", s.Name)
	}
	fmt.Fprintln(tw, "\tSPDP-B")

	avgMiss := map[string][]float64{}
	avgIPC := map[string][]float64{}
	avgByp := map[string][]float64{}
	for i, b := range all {
		base, results := rows[i].base, rows[i].results

		fmt.Fprintf(tw, "%s\tmissRed\t-", b.Name)
		for _, r := range results {
			red := metrics.Reduction(float64(r.Stats.Misses), float64(base.Stats.Misses))
			fmt.Fprintf(tw, "\t%s", fmtPct(red))
			if !isExtraWindow(b.Name) {
				avgMiss[r.Policy] = append(avgMiss[r.Policy], red)
			}
		}
		fmt.Fprintln(tw)
		fmt.Fprintf(tw, "\tipcImp\t-")
		for _, r := range results {
			imp := metrics.Improvement(r.IPC, base.IPC)
			fmt.Fprintf(tw, "\t%s", fmtPct(imp))
			if !isExtraWindow(b.Name) {
				avgIPC[r.Policy] = append(avgIPC[r.Policy], imp)
			}
		}
		fmt.Fprintln(tw)
		fmt.Fprintf(tw, "\tbypass\t0.0%%")
		for _, r := range results {
			fmt.Fprintf(tw, "\t%.1f%%", 100*r.BypassFrac())
			if !isExtraWindow(b.Name) {
				avgByp[r.Policy] = append(avgByp[r.Policy], r.BypassFrac())
			}
		}
		fmt.Fprintln(tw)
	}
	fmt.Fprint(tw, "AVERAGE\tmissRed\t-")
	order := append([]string{}, "DRRIP", "EELRU", "SDP", "PDP-2", "PDP-3", "PDP-8", "SPDP-B")
	for _, p := range order {
		fmt.Fprintf(tw, "\t%s", fmtPct(metrics.Mean(avgMiss[p])))
	}
	fmt.Fprintln(tw)
	fmt.Fprint(tw, "AVERAGE\tipcImp\t-")
	for _, p := range order {
		fmt.Fprintf(tw, "\t%s", fmtPct(metrics.Mean(avgIPC[p])))
	}
	fmt.Fprintln(tw)
	fmt.Fprint(tw, "AVERAGE\tbypass\t-")
	for _, p := range order {
		fmt.Fprintf(tw, "\t%.1f%%", 100*metrics.Mean(avgByp[p]))
	}
	fmt.Fprintln(tw)
	return tw.Flush()
}

// Fig11 reproduces paper Fig. 11: phase adaptation — the effect of the
// RDD reset/recompute interval, the policy comparison on phase-changing
// benchmarks, and the PD trajectory over time.
func Fig11(cfg Config) error {
	header(cfg.Out, "fig11a", "PD recompute interval on phase-changing benchmarks (IPC / smallest interval)")
	intervals := []uint64{32768, 65536, 131072, 262144}
	mkPDP := func(iv uint64) PolicySpec {
		return PolicySpec{Name: "PDP-8", Bypass: true, New: func(s, w int, _ uint64) cache.Policy {
			return core.New(core.Config{Sets: s, Ways: w, Bypass: true, RecomputeEvery: iv})
		}}
	}
	phased := workload.Phased()
	gridA, err := parallel.Grid(cfg.jobs(), len(phased), len(intervals), func(r, c int) (RunResult, error) {
		return RunSingle(cfg.Bench(phased[r]), mkPDP(intervals[c]), cfg.Accesses*2, cfg.Seed), nil
	})
	if err != nil {
		return err
	}
	tw := table(cfg.Out)
	fmt.Fprint(tw, "benchmark")
	for _, iv := range intervals {
		fmt.Fprintf(tw, "\t%dK", iv/1024)
	}
	fmt.Fprintln(tw)
	for r, b := range phased {
		base := gridA[r][0].IPC
		fmt.Fprint(tw, b.Name)
		for c := range intervals {
			fmt.Fprintf(tw, "\t%.3f", gridA[r][c].IPC/base)
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()

	header(cfg.Out, "fig11b", "Policies on phase-changing benchmarks (IPC improvement over DIP)")
	specsB := []PolicySpec{specDIP(), specDRRIP(1.0 / 32), mkPDP(65536)}
	gridB, err := parallel.Grid(cfg.jobs(), len(phased), len(specsB), func(r, c int) (RunResult, error) {
		return RunSingle(cfg.Bench(phased[r]), specsB[c], cfg.Accesses*2, cfg.Seed), nil
	})
	if err != nil {
		return err
	}
	tw = table(cfg.Out)
	fmt.Fprintln(tw, "benchmark\tDRRIP\tPDP-8")
	for r, b := range phased {
		base, d, p := gridB[r][0], gridB[r][1], gridB[r][2]
		fmt.Fprintf(tw, "%s\t%s\t%s\n", b.Name,
			fmtPct(metrics.Improvement(d.IPC, base.IPC)),
			fmtPct(metrics.Improvement(p.IPC, base.IPC)))
	}
	tw.Flush()

	header(cfg.Out, "fig11c", "PD over time (one sample per recompute)")
	trajectories, err := parallel.Map(cfg.jobs(), len(phased), func(i int) ([]int, error) {
		b := phased[i]
		pol := core.New(core.Config{Sets: LLCSets, Ways: LLCWays, Bypass: true,
			RecomputeEvery: 65536, RecordHistory: true})
		c := cache.New(cache.Config{Name: "LLC", Sets: LLCSets, Ways: LLCWays,
			LineSize: trace.LineSize, AllowBypass: true}, pol)
		g := b.Generator(LLCSets, 1, cfg.Seed)
		for j := 0; j < cfg.Accesses*2; j++ {
			c.Access(g.Next())
		}
		var pds []int
		for _, pt := range pol.History() {
			pds = append(pds, pt.PD)
		}
		return pds, nil
	})
	if err != nil {
		return err
	}
	for i, b := range phased {
		fmt.Fprintf(cfg.Out, "%s:", b.Name)
		for _, pd := range trajectories[i] {
			fmt.Fprintf(cfg.Out, " %d", pd)
		}
		fmt.Fprintln(cfg.Out)
	}
	return nil
}

// Sec63 reproduces the paper's Sec. 6.3 429.mcf study: inserting missed
// lines with PD = 1 beats both the computed PD and the best static PD.
func Sec63(cfg Config) error {
	header(cfg.Out, "sec63", "429.mcf: insertion with PD=1 (miss reduction vs DIP)")
	b, _ := workload.ByName("429.mcf")
	base := RunSingle(cfg.Bench(b), specDIP(), cfg.Accesses, cfg.Seed)
	recompute := uint64(cfg.Accesses / 8)
	specs := []PolicySpec{
		specDRRIP(1.0 / 32),
		specPDP(8, recompute),
		{Name: "PDP-8+InsertPD=1", Bypass: true, New: func(s, w int, _ uint64) cache.Policy {
			return core.New(core.Config{Sets: s, Ways: w, Bypass: true,
				RecomputeEvery: recompute, InsertPD: 1})
		}},
	}
	type cell struct {
		r  RunResult
		pd int
	}
	// Tasks 0..len(specs)-1 are the policy runs, the last is the SPDP-B sweep.
	cells, err := parallel.Map(cfg.jobs(), len(specs)+1, func(i int) (cell, error) {
		if i == len(specs) {
			r, pd := bestOver(cfg.Bench(b), staticPDs(), func(pd int) PolicySpec { return specSPDP(pd, true) }, cfg.Accesses, cfg.Seed)
			return cell{r: r, pd: pd}, nil
		}
		return cell{r: RunSingle(cfg.Bench(b), specs[i], cfg.Accesses, cfg.Seed)}, nil
	})
	if err != nil {
		return err
	}
	tw := table(cfg.Out)
	fmt.Fprintln(tw, "policy\tmiss reduction vs DIP")
	for i, s := range specs {
		fmt.Fprintf(tw, "%s\t%s\n", s.Name, fmtPct(metrics.Reduction(float64(cells[i].r.Stats.Misses), float64(base.Stats.Misses))))
	}
	sweep := cells[len(specs)]
	fmt.Fprintf(tw, "SPDP-B(best=%d)\t%s\n", sweep.pd, fmtPct(metrics.Reduction(float64(sweep.r.Stats.Misses), float64(base.Stats.Misses))))
	return tw.Flush()
}

// pfBuffer models the upper-level cache that receives prefetches in the
// paper's non-inclusive organization ("the bypassed lines are inserted in
// a higher-level cache"): a small FIFO of line addresses.
type pfBuffer struct {
	ring []uint64
	pos  int
	set  map[uint64]bool
}

func newPFBuffer(capacity int) *pfBuffer {
	return &pfBuffer{ring: make([]uint64, capacity), set: make(map[uint64]bool, capacity)}
}

func (b *pfBuffer) add(line uint64) {
	if b.set[line] {
		return
	}
	if old := b.ring[b.pos]; old != 0 {
		delete(b.set, old)
	}
	b.ring[b.pos] = line
	b.pos = (b.pos + 1) % len(b.ring)
	b.set[line] = true
}

func (b *pfBuffer) take(line uint64) bool {
	if !b.set[line] {
		return false
	}
	delete(b.set, line)
	return true
}

// runPrefetch drives a benchmark through the LLC with a stream prefetcher.
// Prefetched lines also land in an upper-level buffer (the L2 of the
// paper's hierarchy), so a bypassed prefetch still serves its first demand
// use; demand accesses count toward stats.
func runPrefetch(b workload.Benchmark, spec PolicySpec, n int, seed uint64, usePrefetcher bool) RunResult {
	pol := spec.New(LLCSets, LLCWays, seed)
	c := cache.New(cache.Config{Name: "LLC", Sets: LLCSets, Ways: LLCWays,
		LineSize: trace.LineSize, AllowBypass: spec.Bypass}, pol)
	g := b.Generator(LLCSets, 1, seed)
	pf := prefetch.New(prefetch.Config{})
	upper := newPFBuffer(4096) // 256KB worth of lines
	for i := Warmup(n); i > 0; i-- {
		c.Access(g.Next())
	}
	var demandHits, demandAccs, demandMem uint64
	for i := 0; i < n; i++ {
		a := g.Next()
		demandAccs++
		if upper.take(a.Addr &^ (trace.LineSize - 1)) {
			// Served by the upper level where the prefetch landed; the LLC
			// does not see the access.
			demandHits++
		} else {
			r := c.Access(a)
			if r.Hit {
				demandHits++
			} else {
				demandMem++
			}
		}
		if usePrefetcher {
			for _, pa := range pf.Observe(a) {
				upper.add(pa)
				if !c.Contains(pa) {
					c.Access(trace.Access{Addr: pa, PC: a.PC, Prefetch: true})
				}
			}
		}
	}
	instr := cpu.Instructions(demandAccs, b.APKI)
	model := cpu.Default()
	return RunResult{
		Bench:  b.Name,
		Policy: spec.Name,
		Stats:  c.Stats,
		Instr:  instr,
		IPC:    model.IPC(instr, demandHits, demandMem),
		MPKI:   cpu.MPKI(demandMem, instr),
	}
}

// Sec65 reproduces the paper's Sec. 6.5 prefetch-aware PDP study.
func Sec65(cfg Config) error {
	header(cfg.Out, "sec65", "Prefetch-aware PDP (IPC improvement over prefetch-unaware DRRIP, all with stream prefetcher)")
	recompute := uint64(cfg.Accesses / 8)
	mk := func(name string, mode core.PrefetchMode) PolicySpec {
		return PolicySpec{Name: name, Bypass: true, New: func(s, w int, _ uint64) cache.Policy {
			return core.New(core.Config{Sets: s, Ways: w, Bypass: true,
				RecomputeEvery: recompute, Prefetch: mode})
		}}
	}
	benches := []string{"403.gcc", "450.soplex", "482.sphinx3", "483.xalancbmk.3", "436.cactusADM", "470.lbm"}
	bs := make([]workload.Benchmark, len(benches))
	for i, name := range benches {
		b, ok := workload.ByName(name)
		if !ok {
			return fmt.Errorf("unknown benchmark %s", name)
		}
		bs[i] = b
	}
	cols := []PolicySpec{specDRRIP(1.0 / 32), mk("PDP", core.PFNormal),
		mk("PDP-pd1", core.PFInsertPD1), mk("PDP-byp", core.PFBypass)}
	grid, err := parallel.Grid(cfg.jobs(), len(bs), len(cols), func(r, c int) (RunResult, error) {
		return runPrefetch(bs[r], cols[c], cfg.Accesses, cfg.Seed, true), nil
	})
	if err != nil {
		return err
	}
	tw := table(cfg.Out)
	fmt.Fprintln(tw, "benchmark\tPDP(pf-unaware)\tPDP(insert PD=1)\tPDP(bypass pf)")
	var a1, a2, a3 []float64
	for r, name := range benches {
		base := grid[r][0]
		i1 := metrics.Improvement(grid[r][1].IPC, base.IPC)
		i2 := metrics.Improvement(grid[r][2].IPC, base.IPC)
		i3 := metrics.Improvement(grid[r][3].IPC, base.IPC)
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\n", name, fmtPct(i1), fmtPct(i2), fmtPct(i3))
		a1, a2, a3 = append(a1, i1), append(a2, i2), append(a3, i3)
	}
	fmt.Fprintf(tw, "AVERAGE\t%s\t%s\t%s\n",
		fmtPct(metrics.Mean(a1)), fmtPct(metrics.Mean(a2)), fmtPct(metrics.Mean(a3)))
	return tw.Flush()
}
