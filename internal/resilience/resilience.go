// Package resilience is the supervised run harness of the simulator: it
// runs each experiment or simulation under panic recovery (converted to
// errors with the captured stack), a per-run watchdog timeout fed by
// progress heartbeats, SIGINT/SIGTERM graceful shutdown, retry with
// exponential backoff for transient failures, and a JSON checkpoint so
// long campaigns can resume where they stopped.
//
// The PDP paper's mechanisms degrade gracefully by construction — the
// sampler sees 1-in-M accesses, counters saturate, RPDs live in n_c bits —
// and this package gives the *harness* the same property: one bad run, a
// hung window, or a corrupted input never takes down a campaign, and
// everything the harness survives is journaled through internal/telemetry.
package resilience

import (
	"fmt"
	"time"
)

// PanicError is a recovered panic converted to an error, with the stack
// captured at the point of the panic.
type PanicError struct {
	// Value is the value passed to panic.
	Value any
	// Stack is the formatted goroutine stack at recovery.
	Stack []byte
}

// Error implements error.
func (e *PanicError) Error() string {
	return fmt.Sprintf("panic: %v", e.Value)
}

// WatchdogError reports a supervised run exceeding its watchdog timeout.
type WatchdogError struct {
	// Name identifies the run.
	Name string
	// Timeout is the configured bound.
	Timeout time.Duration
	// LastBeat is the run's last heartbeat progress value, -1 when the run
	// never reported progress.
	LastBeat int64
}

// Error implements error.
func (e *WatchdogError) Error() string {
	if e.LastBeat < 0 {
		return fmt.Sprintf("%s: watchdog timeout after %v (no progress reported)", e.Name, e.Timeout)
	}
	return fmt.Sprintf("%s: watchdog timeout after %v (last progress %d)", e.Name, e.Timeout, e.LastBeat)
}
