package resilience

// Saver serializes checkpoint saves through a single owner goroutine.
//
// With experiments fanned across a worker pool, several tasks can finish
// (and want their completion persisted) at nearly the same moment. Letting
// each caller invoke Checkpoint.Save directly is safe against corruption —
// saves are atomic temp-file + rename — but concurrent savers interleave:
// renames land in arbitrary order, so an older in-memory snapshot can
// overwrite a newer one, silently dropping completion marks. The Saver
// fixes the ordering by making one goroutine the only writer: callers
// Request() a save (cheap, non-blocking, coalescing) and the owner snapshots
// the checkpoint's current state on each save, so every write is at least
// as new as the request that triggered it.
type Saver struct {
	save  func() error
	onErr func(error)
	kick  chan struct{}
	quit  chan struct{}
	done  chan struct{}
}

// NewSaver starts the owner goroutine. save performs one persist of the
// current checkpoint state (callers typically close over Checkpoint.Save,
// possibly wrapped in Retry); onErr receives save failures (nil discards
// them). Close the Saver to stop the goroutine and flush a final save.
func NewSaver(save func() error, onErr func(error)) *Saver {
	s := &Saver{
		save:  save,
		onErr: onErr,
		kick:  make(chan struct{}, 1),
		quit:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	go s.loop()
	return s
}

func (s *Saver) loop() {
	defer close(s.done)
	for {
		select {
		case <-s.kick:
			s.runSave()
		case <-s.quit:
			// The final save covers any request still pending in kick.
			s.runSave()
			return
		}
	}
}

func (s *Saver) runSave() {
	if err := s.save(); err != nil && s.onErr != nil {
		s.onErr(err)
	}
}

// Request asks the owner to persist the checkpoint. It never blocks:
// back-to-back requests while a save is in flight coalesce into one
// follow-up save, which snapshots state at save time and therefore covers
// all of them.
func (s *Saver) Request() {
	select {
	case s.kick <- struct{}{}:
	default:
	}
}

// Close performs a final save and stops the owner goroutine. It returns
// once the final save has finished; further Requests are no-ops that no
// goroutine will ever service.
func (s *Saver) Close() {
	close(s.quit)
	<-s.done
}
