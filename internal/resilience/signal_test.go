package resilience

import (
	"bytes"
	"context"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"pdp/internal/telemetry"
)

// TestSIGINTFlushesPartialState models the harness shutdown path: a SIGINT
// arrives mid-campaign, the shutdown context cancels the supervised run,
// and the deferred flushes still write the telemetry journal and the
// checkpoint before exit.
func TestSIGINTFlushesPartialState(t *testing.T) {
	ctx, stop := WithShutdown(context.Background())
	defer stop()

	var sink bytes.Buffer
	j := telemetry.NewJournal(32)
	j.SetSink(&sink)
	cp := NewCheckpoint()
	cp.MarkDone("fig1", time.Second)
	path := filepath.Join(t.TempDir(), "ckpt.json")

	s := &Supervisor{Journal: j}
	go func() {
		time.Sleep(20 * time.Millisecond)
		syscall.Kill(syscall.Getpid(), syscall.SIGINT)
	}()
	out := s.Run(ctx, "interrupted", func(ctx context.Context, hb *Heartbeat) error {
		g := GuardGenerator(ctx, &loopGen{}, 512, hb)
		for {
			g.Next()
		}
	})
	if !out.Failed() {
		t.Fatal("interrupted run reported success")
	}
	if out.TimedOut {
		t.Fatal("shutdown misreported as watchdog timeout")
	}

	// The shutdown path: flush journal + save checkpoint.
	if err := cp.Save(path, j); err != nil {
		t.Fatal(err)
	}
	if err := j.Flush(); err != nil {
		t.Fatal(err)
	}
	if sink.Len() == 0 {
		t.Fatal("journal sink empty after shutdown flush")
	}
	got, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Done("fig1") {
		t.Fatal("checkpoint lost completed runs across shutdown")
	}
}
