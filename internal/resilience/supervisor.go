package resilience

import (
	"context"
	"errors"
	"runtime/debug"
	"sync/atomic"
	"time"

	"pdp/internal/telemetry"
)

// Heartbeat carries progress reports from a supervised task to its
// watchdog. Tasks call Beat with a monotonically growing progress value
// (measured accesses for simulator runs); the supervisor includes the last
// beat in watchdog reports. All methods are safe for concurrent use and on
// a nil receiver.
type Heartbeat struct {
	v atomic.Int64
}

func newHeartbeat() *Heartbeat {
	h := &Heartbeat{}
	h.v.Store(-1)
	return h
}

// Beat records progress.
func (h *Heartbeat) Beat(progress int64) {
	if h != nil {
		h.v.Store(progress)
	}
}

// Last returns the most recent progress value, -1 when none was reported.
func (h *Heartbeat) Last() int64 {
	if h == nil {
		return -1
	}
	return h.v.Load()
}

// Supervisor runs tasks under panic recovery and an optional watchdog
// timeout, journaling lifecycle, watchdog and recovery events.
type Supervisor struct {
	// Timeout bounds each run's wall-clock time; 0 disables the watchdog.
	Timeout time.Duration
	// Grace is how long, after cancellation, the supervisor waits for the
	// task to notice and unwind before abandoning its goroutine (guarded
	// generators notice within a few thousand accesses). Default 250ms.
	Grace time.Duration
	// Journal receives run_status / watchdog / recovery records (nil
	// disables journaling).
	Journal *telemetry.Journal
}

// Outcome summarizes one supervised run.
type Outcome struct {
	// Name identifies the run.
	Name string
	// Err is nil for a clean completion. Watchdog expiries surface as
	// *WatchdogError, recovered panics as *PanicError, and a harness
	// shutdown as the parent context's error.
	Err error
	// Duration is the run's wall-clock time.
	Duration time.Duration
	// TimedOut marks watchdog expiry; Panicked marks a recovered panic;
	// Abandoned marks a run whose goroutine did not unwind within the grace
	// period (its work is discarded, but it may still burn CPU until
	// process exit).
	TimedOut, Panicked, Abandoned bool
}

// Failed reports whether the run must count as a failure.
func (o Outcome) Failed() bool { return o.Err != nil }

// cancelAbort is the sentinel panic a guarded generator raises when its
// context is cancelled mid-run; Supervisor.Run converts it back to the
// context's error.
type cancelAbort struct{ err error }

// Run executes fn under supervision: a per-run context carrying the
// watchdog timeout, panic recovery, and heartbeat plumbing. fn must either
// honor ctx cancellation or drive its access loop through a generator
// wrapped by GuardGenerator, which aborts cooperatively.
func (s *Supervisor) Run(ctx context.Context, name string, fn func(ctx context.Context, hb *Heartbeat) error) Outcome {
	if ctx == nil {
		ctx = context.Background()
	}
	runCtx, cancel := ctx, context.CancelFunc(func() {})
	if s.Timeout > 0 {
		runCtx, cancel = context.WithTimeout(ctx, s.Timeout)
	}
	defer cancel()

	hb := newHeartbeat()
	start := time.Now()
	s.journal(telemetry.RunStatusRecord{Kind: telemetry.KindRunStatus, Name: name, Status: "start"})

	done := make(chan error, 1)
	go func() {
		defer func() {
			if r := recover(); r != nil {
				if c, ok := r.(cancelAbort); ok {
					done <- c.err
					return
				}
				done <- &PanicError{Value: r, Stack: debug.Stack()}
			}
		}()
		done <- fn(runCtx, hb)
	}()

	var err error
	abandoned := false
	select {
	case err = <-done:
	case <-runCtx.Done():
		grace := s.Grace
		if grace <= 0 {
			grace = 250 * time.Millisecond
		}
		select {
		case err = <-done:
		case <-time.After(grace):
			err = runCtx.Err()
			abandoned = true
		}
	}

	out := Outcome{Name: name, Err: err, Duration: time.Since(start), Abandoned: abandoned}

	// A run cut down by the watchdog reports deadline expiry whichever way
	// it unwound; a run cut down by the parent (shutdown) keeps the parent's
	// cancellation error.
	if errors.Is(err, context.DeadlineExceeded) && ctx.Err() == nil {
		out.TimedOut = true
		out.Err = &WatchdogError{Name: name, Timeout: s.Timeout, LastBeat: hb.Last()}
		s.journal(telemetry.WatchdogRecord{
			Kind: telemetry.KindWatchdog, Name: name,
			TimeoutSec: s.Timeout.Seconds(), LastBeat: hb.Last(),
		})
	}
	var pe *PanicError
	if errors.As(err, &pe) {
		out.Panicked = true
		s.journal(telemetry.RecoveryRecord{
			Kind: telemetry.KindRecovery, Name: name, Cause: "panic",
			Detail: pe.Error(),
		})
	}

	status := "done"
	if out.Err != nil {
		status = "failed"
	}
	rec := telemetry.RunStatusRecord{
		Kind: telemetry.KindRunStatus, Name: name, Status: status,
		Seconds: out.Duration.Seconds(),
	}
	if out.Err != nil {
		rec.Err = out.Err.Error()
	}
	s.journal(rec)
	return out
}

// Skip journals a run skipped via checkpoint resume.
func (s *Supervisor) Skip(name string) {
	s.journal(telemetry.RunStatusRecord{Kind: telemetry.KindRunStatus, Name: name, Status: "skipped"})
}

func (s *Supervisor) journal(r telemetry.Record) {
	if s != nil && s.Journal != nil {
		s.Journal.Append(r)
	}
}
