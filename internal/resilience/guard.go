package resilience

import (
	"context"

	"pdp/internal/trace"
)

// DefaultGuardEvery is the cancellation-check stride of GuardGenerator in
// accesses: frequent enough that a cancelled multi-million-access window
// stops within milliseconds, rare enough to stay off the hot path.
const DefaultGuardEvery = 4096

// guardedGen wraps a trace.Generator with periodic context checks and
// heartbeat reporting.
type guardedGen struct {
	g     trace.Generator
	ctx   context.Context
	hb    *Heartbeat
	every int
	n     int64
}

// GuardGenerator wraps g so that every `every` generated accesses (<= 0
// selects DefaultGuardEvery) the run's context is checked and a heartbeat
// is reported. When the context is cancelled the generator aborts the run
// by panicking with an internal sentinel that Supervisor.Run converts back
// into the context's error — the cooperative-cancellation seam that lets
// watchdog timeouts and SIGINT interrupt access loops deep inside the
// experiments runner without threading a context through every layer.
// Guarded generators must therefore run under Supervisor.Run.
func GuardGenerator(ctx context.Context, g trace.Generator, every int, hb *Heartbeat) trace.Generator {
	if ctx == nil {
		return g
	}
	if every <= 0 {
		every = DefaultGuardEvery
	}
	return &guardedGen{g: g, ctx: ctx, hb: hb, every: every}
}

// Name implements trace.Generator.
func (g *guardedGen) Name() string { return g.g.Name() }

// Reset implements trace.Generator.
func (g *guardedGen) Reset() { g.g.Reset() }

// Next implements trace.Generator.
func (g *guardedGen) Next() trace.Access {
	g.n++
	if g.n%int64(g.every) == 0 {
		if err := g.ctx.Err(); err != nil {
			panic(cancelAbort{err: err})
		}
		g.hb.Beat(g.n)
	}
	return g.g.Next()
}
