package resilience

import (
	"context"
	"os"
	"os/signal"
	"syscall"
)

// WithShutdown returns a context cancelled on SIGINT or SIGTERM, for
// graceful campaign shutdown: the access loops (guarded generators) abort
// cooperatively, the supervisor reports the interrupted run, and the
// caller's deferred flushes write partial tables, telemetry and the
// checkpoint before exit. A second signal while shutting down kills the
// process with the default disposition (stop restores it).
func WithShutdown(parent context.Context) (context.Context, context.CancelFunc) {
	if parent == nil {
		parent = context.Background()
	}
	return signal.NotifyContext(parent, os.Interrupt, syscall.SIGTERM)
}
