package resilience

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"pdp/internal/telemetry"
)

func TestCheckpointRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.json")
	c := NewCheckpoint()
	c.MarkDone("fig10", 2*time.Second)
	c.MarkDone("tab2", 500*time.Millisecond)
	c.SetOffset(RunKey("436.cactusADM", 1_000_000, 42), 300_000)

	j := telemetry.NewJournal(8)
	if err := c.Save(path, j); err != nil {
		t.Fatal(err)
	}
	if j.CountKind(telemetry.KindCheckpoint) != 1 {
		t.Fatal("checkpoint save not journaled")
	}

	got, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Done("fig10") || !got.Done("tab2") || got.Done("fig11") {
		t.Fatal("completed set did not round-trip")
	}
	if got.CompletedCount() != 2 {
		t.Fatalf("CompletedCount = %d, want 2", got.CompletedCount())
	}
	if off := got.Offset(RunKey("436.cactusADM", 1_000_000, 42)); off != 300_000 {
		t.Fatalf("Offset = %d, want 300000", off)
	}
	if off := got.Offset("other"); off != 0 {
		t.Fatalf("unknown key Offset = %d, want 0", off)
	}

	got.ClearOffset(RunKey("436.cactusADM", 1_000_000, 42))
	if got.Offset(RunKey("436.cactusADM", 1_000_000, 42)) != 0 {
		t.Fatal("ClearOffset did not clear")
	}
}

func TestCheckpointResumeSkipsCompletedIDs(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.json")
	c := NewCheckpoint()
	ids := []string{"fig1", "fig2", "fig4"}
	c.MarkDone("fig1", time.Second)
	c.MarkDone("fig4", time.Second)
	if err := c.Save(path, nil); err != nil {
		t.Fatal(err)
	}

	resumed, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	var ran []string
	for _, id := range ids {
		if resumed.Done(id) {
			continue
		}
		ran = append(ran, id)
	}
	if len(ran) != 1 || ran[0] != "fig2" {
		t.Fatalf("resume ran %v, want only fig2", ran)
	}
}

func TestLoadCheckpointMissingFileIsFresh(t *testing.T) {
	c, err := LoadCheckpoint(filepath.Join(t.TempDir(), "absent.json"))
	if err != nil {
		t.Fatal(err)
	}
	if c.CompletedCount() != 0 {
		t.Fatal("missing file should load as empty checkpoint")
	}
}

func TestDecodeCheckpointRejectsGarbage(t *testing.T) {
	for _, bad := range []string{
		"",
		"not json",
		`{"version": 99}`,
		`[]`,
	} {
		if _, err := DecodeCheckpoint([]byte(bad)); err == nil {
			t.Fatalf("DecodeCheckpoint(%q) accepted garbage", bad)
		}
	}
}

func TestCheckpointSaveIsAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ckpt.json")
	c := NewCheckpoint()
	c.MarkDone("fig1", time.Second)
	if err := c.Save(path, nil); err != nil {
		t.Fatal(err)
	}
	c.MarkDone("fig2", time.Second)
	if err := c.Save(path, nil); err != nil {
		t.Fatal(err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		t.Fatalf("temp files left behind: %v", ents)
	}
	got, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Done("fig1") || !got.Done("fig2") {
		t.Fatal("second save lost state")
	}
}

// FuzzDecodeCheckpoint ensures arbitrary bytes never crash the decoder:
// every input either parses to a valid checkpoint or returns an error.
func FuzzDecodeCheckpoint(f *testing.F) {
	f.Add([]byte(`{"version":1,"completed":{"fig1":{"seconds":1}},"offsets":{"k":5}}`))
	f.Add([]byte(`{"version":1}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(``))
	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := DecodeCheckpoint(data)
		if err != nil {
			return
		}
		// A decoded checkpoint must be fully usable.
		c.Done("x")
		c.MarkDone("x", time.Second)
		c.Offset("y")
		c.SetOffset("y", 1)
		if !c.Done("x") {
			t.Fatal("MarkDone lost on decoded checkpoint")
		}
	})
}
