package resilience

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"pdp/internal/telemetry"
	"pdp/internal/trace"
)

func TestRunSuccess(t *testing.T) {
	j := telemetry.NewJournal(16)
	s := &Supervisor{Journal: j}
	out := s.Run(context.Background(), "ok", func(ctx context.Context, hb *Heartbeat) error {
		hb.Beat(42)
		return nil
	})
	if out.Failed() {
		t.Fatalf("unexpected failure: %v", out.Err)
	}
	if j.CountKind(telemetry.KindRunStatus) != 2 {
		t.Fatalf("want start+done records, got %d", j.CountKind(telemetry.KindRunStatus))
	}
}

func TestRunRecoversPanic(t *testing.T) {
	j := telemetry.NewJournal(16)
	s := &Supervisor{Journal: j}
	out := s.Run(context.Background(), "boom", func(ctx context.Context, hb *Heartbeat) error {
		panic("victim selection exploded")
	})
	var pe *PanicError
	if !errors.As(out.Err, &pe) {
		t.Fatalf("want PanicError, got %v", out.Err)
	}
	if !out.Panicked {
		t.Fatal("outcome not marked Panicked")
	}
	if !strings.Contains(string(pe.Stack), "supervisor_test") {
		t.Fatalf("stack missing panic site:\n%s", pe.Stack)
	}
	if j.CountKind(telemetry.KindRecovery) != 1 {
		t.Fatal("panic recovery not journaled")
	}
}

func TestRunWatchdogTimeout(t *testing.T) {
	j := telemetry.NewJournal(16)
	s := &Supervisor{Timeout: 30 * time.Millisecond, Journal: j}
	out := s.Run(context.Background(), "slow", func(ctx context.Context, hb *Heartbeat) error {
		hb.Beat(7)
		<-ctx.Done() // cooperative: unwind when the watchdog fires
		return ctx.Err()
	})
	var we *WatchdogError
	if !errors.As(out.Err, &we) {
		t.Fatalf("want WatchdogError, got %v", out.Err)
	}
	if !out.TimedOut || out.Abandoned {
		t.Fatalf("outcome = %+v, want TimedOut and not Abandoned", out)
	}
	if we.LastBeat != 7 {
		t.Fatalf("LastBeat = %d, want 7", we.LastBeat)
	}
	if j.CountKind(telemetry.KindWatchdog) != 1 {
		t.Fatal("watchdog event not journaled")
	}
}

func TestRunWatchdogAbandonsStuckTask(t *testing.T) {
	s := &Supervisor{Timeout: 20 * time.Millisecond, Grace: 20 * time.Millisecond}
	block := make(chan struct{})
	defer close(block)
	out := s.Run(context.Background(), "stuck", func(ctx context.Context, hb *Heartbeat) error {
		<-block // ignores ctx entirely
		return nil
	})
	var we *WatchdogError
	if !errors.As(out.Err, &we) {
		t.Fatalf("want WatchdogError, got %v", out.Err)
	}
	if !out.Abandoned {
		t.Fatal("stuck task not marked Abandoned")
	}
}

func TestRunParentCancelIsNotWatchdog(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	s := &Supervisor{Timeout: time.Minute}
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	out := s.Run(ctx, "shutdown", func(ctx context.Context, hb *Heartbeat) error {
		<-ctx.Done()
		return ctx.Err()
	})
	if !errors.Is(out.Err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", out.Err)
	}
	if out.TimedOut {
		t.Fatal("parent cancellation misreported as watchdog timeout")
	}
}

// loopGen is an infinite trivial generator for guard tests.
type loopGen struct{ n uint64 }

func (g *loopGen) Name() string       { return "loop" }
func (g *loopGen) Reset()             { g.n = 0 }
func (g *loopGen) Next() trace.Access { g.n++; return trace.Access{Addr: g.n * 64} }

func TestGuardGeneratorAbortsCancelledRun(t *testing.T) {
	s := &Supervisor{Timeout: 25 * time.Millisecond}
	out := s.Run(context.Background(), "guarded", func(ctx context.Context, hb *Heartbeat) error {
		g := GuardGenerator(ctx, &loopGen{}, 1024, hb)
		for { // hot access loop with no explicit ctx checks
			g.Next()
		}
	})
	var we *WatchdogError
	if !errors.As(out.Err, &we) {
		t.Fatalf("want WatchdogError via guarded generator, got %v", out.Err)
	}
	if out.Abandoned {
		t.Fatal("guarded run should unwind cooperatively, not be abandoned")
	}
	if we.LastBeat < 0 {
		t.Fatal("guarded generator reported no heartbeat")
	}
}

func TestGuardGeneratorPassThrough(t *testing.T) {
	g := GuardGenerator(context.Background(), &loopGen{}, 2, nil)
	if g.Name() != "loop" {
		t.Fatalf("Name = %q", g.Name())
	}
	a1 := g.Next()
	a2 := g.Next()
	if a1.Addr == a2.Addr {
		t.Fatal("guard altered the stream")
	}
	g.Reset()
	if a := g.Next(); a.Addr != a1.Addr {
		t.Fatalf("after Reset, Addr = %d, want %d", a.Addr, a1.Addr)
	}
}
