package resilience

import (
	"os"
	"path/filepath"
	"testing"
)

func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.json")

	if err := WriteFileAtomic(path, []byte("one")); err != nil {
		t.Fatal(err)
	}
	if got, _ := os.ReadFile(path); string(got) != "one" {
		t.Fatalf("read back %q", got)
	}

	// Overwrite replaces the content whole; the old file is never
	// partially visible and no temp files are left behind.
	if err := WriteFileAtomic(path, []byte("two is longer")); err != nil {
		t.Fatal(err)
	}
	if got, _ := os.ReadFile(path); string(got) != "two is longer" {
		t.Fatalf("read back %q", got)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("%d directory entries after two writes; temp file leaked", len(entries))
	}
}

func TestWriteFileAtomicBadDir(t *testing.T) {
	if err := WriteFileAtomic(filepath.Join(t.TempDir(), "no", "such", "dir", "f"), []byte("x")); err == nil {
		t.Fatal("write into a missing directory succeeded")
	}
}
