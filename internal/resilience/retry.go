package resilience

import (
	"context"
	"errors"
	"fmt"
	"time"

	"pdp/internal/telemetry"
)

// transientError marks an error as worth retrying.
type transientError struct{ err error }

func (e *transientError) Error() string { return e.err.Error() }
func (e *transientError) Unwrap() error { return e.err }

// MarkTransient wraps err so IsTransient reports it retryable (output and
// trace I/O paths mark their failures this way). A nil err stays nil.
func MarkTransient(err error) error {
	if err == nil {
		return nil
	}
	return &transientError{err: err}
}

// IsTransient reports whether err was marked with MarkTransient or
// declares itself temporary (net.Error-style `Temporary() bool`).
func IsTransient(err error) bool {
	var te *transientError
	if errors.As(err, &te) {
		return true
	}
	var tmp interface{ Temporary() bool }
	return errors.As(err, &tmp) && tmp.Temporary()
}

// RetryConfig parameterizes Retry.
type RetryConfig struct {
	// Name labels the operation in journal records.
	Name string
	// Attempts is the maximum number of tries (default 3).
	Attempts int
	// Base is the first backoff delay (default 100ms); each subsequent
	// delay doubles, capped at Max (default 5s).
	Base, Max time.Duration
	// Transient reports whether an error is worth retrying; nil selects
	// IsTransient.
	Transient func(error) bool
	// Journal receives a recovery record when a retry eventually succeeds.
	Journal *telemetry.Journal
	// Sleep overrides the backoff sleep (tests); nil sleeps honoring ctx.
	Sleep func(context.Context, time.Duration) error
}

// Retry runs fn up to cfg.Attempts times with exponential backoff,
// stopping early on success, on a non-transient error, or when ctx is
// cancelled. A success after failures is journaled as a recovery.
func Retry(ctx context.Context, cfg RetryConfig, fn func() error) error {
	if ctx == nil {
		ctx = context.Background()
	}
	attempts := cfg.Attempts
	if attempts <= 0 {
		attempts = 3
	}
	base := cfg.Base
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	max := cfg.Max
	if max <= 0 {
		max = 5 * time.Second
	}
	transient := cfg.Transient
	if transient == nil {
		transient = IsTransient
	}
	sleep := cfg.Sleep
	if sleep == nil {
		sleep = func(ctx context.Context, d time.Duration) error {
			t := time.NewTimer(d)
			defer t.Stop()
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-t.C:
				return nil
			}
		}
	}

	var err error
	delay := base
	for attempt := 1; attempt <= attempts; attempt++ {
		err = fn()
		if err == nil {
			if attempt > 1 && cfg.Journal != nil {
				cfg.Journal.Append(telemetry.RecoveryRecord{
					Kind: telemetry.KindRecovery, Name: cfg.Name, Cause: "retry",
					Detail: fmt.Sprintf("succeeded on attempt %d", attempt),
				})
			}
			return nil
		}
		if attempt == attempts || !transient(err) || ctx.Err() != nil {
			break
		}
		if serr := sleep(ctx, delay); serr != nil {
			return fmt.Errorf("%s: %w (after %v)", cfg.Name, serr, err)
		}
		if delay *= 2; delay > max {
			delay = max
		}
	}
	return err
}
