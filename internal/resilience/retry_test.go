package resilience

import (
	"context"
	"errors"
	"testing"
	"time"

	"pdp/internal/telemetry"
)

// noSleep makes backoff instantaneous in tests.
func noSleep(context.Context, time.Duration) error { return nil }

func TestRetrySucceedsAfterTransientFailures(t *testing.T) {
	j := telemetry.NewJournal(8)
	calls := 0
	err := Retry(context.Background(), RetryConfig{
		Name: "write-table", Attempts: 5, Journal: j, Sleep: noSleep,
	}, func() error {
		calls++
		if calls < 3 {
			return MarkTransient(errors.New("disk hiccup"))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 3 {
		t.Fatalf("calls = %d, want 3", calls)
	}
	if j.CountKind(telemetry.KindRecovery) != 1 {
		t.Fatal("retry recovery not journaled")
	}
}

func TestRetryStopsOnPermanentError(t *testing.T) {
	calls := 0
	perm := errors.New("bad spec")
	err := Retry(context.Background(), RetryConfig{Attempts: 5, Sleep: noSleep}, func() error {
		calls++
		return perm
	})
	if !errors.Is(err, perm) {
		t.Fatalf("err = %v, want permanent error", err)
	}
	if calls != 1 {
		t.Fatalf("calls = %d, want 1 (no retry of permanent errors)", calls)
	}
}

func TestRetryExhaustsAttempts(t *testing.T) {
	calls := 0
	err := Retry(context.Background(), RetryConfig{Attempts: 3, Sleep: noSleep}, func() error {
		calls++
		return MarkTransient(errors.New("still flaky"))
	})
	if err == nil || calls != 3 {
		t.Fatalf("err=%v calls=%d, want failure after 3 attempts", err, calls)
	}
	if !IsTransient(err) {
		t.Fatal("returned error lost its transient mark")
	}
}

func TestRetryHonorsContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	calls := 0
	err := Retry(ctx, RetryConfig{Attempts: 5}, func() error {
		calls++
		return MarkTransient(errors.New("x"))
	})
	if err == nil {
		t.Fatal("want error when ctx cancelled")
	}
	if calls != 1 {
		t.Fatalf("calls = %d, want 1", calls)
	}
}

func TestIsTransient(t *testing.T) {
	if IsTransient(errors.New("plain")) {
		t.Fatal("plain error reported transient")
	}
	if !IsTransient(MarkTransient(errors.New("x"))) {
		t.Fatal("marked error not transient")
	}
	wrapped := errors.Join(errors.New("ctx"), MarkTransient(errors.New("x")))
	if !IsTransient(wrapped) {
		t.Fatal("wrapped transient not detected")
	}
	if MarkTransient(nil) != nil {
		t.Fatal("MarkTransient(nil) != nil")
	}
}
