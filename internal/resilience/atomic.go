package resilience

import (
	"fmt"
	"os"
	"path/filepath"
)

// WriteFileAtomic writes data to path so that a crash — including power
// loss — at any point leaves either the previous file or the new one,
// never a partial or missing file. The sequence is the full durability
// dance:
//
//  1. write to a temp file in the target directory (same filesystem, so
//     the rename is atomic),
//  2. fsync the temp file (the data itself reaches stable storage),
//  3. rename over the target (atomic replacement),
//  4. fsync the parent directory (the rename — a directory-entry update —
//     reaches stable storage too).
//
// Step 4 is the one that distinguishes surviving power loss from merely
// surviving a process crash: without it the kernel may hold the directory
// update in cache, and a power cut can resurrect the old name pointing at
// the old inode, or no name at all.
func WriteFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+"-*.tmp")
	if err != nil {
		return fmt.Errorf("atomic write: %w", err)
	}
	tmpName := tmp.Name()
	cleanup := func(err error) error {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("atomic write: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		return cleanup(err)
	}
	if err := tmp.Sync(); err != nil {
		return cleanup(err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("atomic write: %w", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("atomic write: %w", err)
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so renames within it are durable. Some
// platforms/filesystems refuse to fsync a directory handle; that is a
// property of the platform, not a failed write, so such errors are
// swallowed — the data fsync already happened and the rename is atomic.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("atomic write: sync dir: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil && !isSyncUnsupported(err) {
		return fmt.Errorf("atomic write: sync dir: %w", err)
	}
	return nil
}

// isSyncUnsupported reports whether a Sync error means "this handle kind
// cannot be synced here" rather than "the sync failed".
func isSyncUnsupported(err error) bool {
	pe, ok := err.(*os.PathError)
	if !ok {
		return false
	}
	msg := pe.Err.Error()
	return msg == "invalid argument" || msg == "operation not supported" ||
		msg == "not supported" || msg == "bad file descriptor"
}
