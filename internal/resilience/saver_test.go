package resilience

import (
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestSaverSerializesConcurrentRequests(t *testing.T) {
	var inFlight, maxInFlight, saves atomic.Int64
	saver := NewSaver(func() error {
		if n := inFlight.Add(1); n > maxInFlight.Load() {
			maxInFlight.Store(n)
		}
		time.Sleep(time.Millisecond)
		saves.Add(1)
		inFlight.Add(-1)
		return nil
	}, nil)

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				saver.Request()
			}
		}()
	}
	wg.Wait()
	saver.Close()

	if maxInFlight.Load() != 1 {
		t.Fatalf("saves overlapped: max in-flight %d", maxInFlight.Load())
	}
	if n := saves.Load(); n < 1 {
		t.Fatalf("no save ran (%d)", n)
	}
	// Coalescing: 400 requests must not mean 400 saves.
	if n := saves.Load(); n > 100 {
		t.Fatalf("requests did not coalesce: %d saves", n)
	}
}

func TestSaverCloseFlushesFinalState(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ck.json")
	ck := NewCheckpoint()
	saver := NewSaver(func() error { return ck.Save(path, nil) }, nil)
	ck.MarkDone("fig2", time.Second)
	// No Request: Close alone must still persist the latest state.
	saver.Close()

	loaded, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if !loaded.Done("fig2") {
		t.Fatal("final save missing completion mark")
	}
}

func TestSaverReportsErrors(t *testing.T) {
	var got atomic.Int64
	boom := NewSaver(func() error { return os.ErrPermission }, func(err error) {
		if err == os.ErrPermission {
			got.Add(1)
		}
	})
	boom.Request()
	boom.Close()
	if got.Load() == 0 {
		t.Fatal("save error not reported")
	}
}

func TestCheckpointConfigMatch(t *testing.T) {
	rc := RunConfig{Accesses: 1000, MCAccessesPerThread: 400, Mixes4: 2, Mixes16: 1, Seed: 42}
	ck := NewCheckpoint()

	// Unrecorded config (pre-config checkpoints, fresh checkpoints)
	// matches anything.
	if ok, _ := ck.ConfigMatches(rc); !ok {
		t.Fatal("zero recorded config must match")
	}

	ck.SetConfig(rc)
	if ok, why := ck.ConfigMatches(rc); !ok {
		t.Fatalf("identical config rejected: %s", why)
	}
	for _, tc := range []struct {
		name string
		mut  func(RunConfig) RunConfig
	}{
		{"accesses", func(c RunConfig) RunConfig { c.Accesses++; return c }},
		{"mc-accesses", func(c RunConfig) RunConfig { c.MCAccessesPerThread++; return c }},
		{"mixes4", func(c RunConfig) RunConfig { c.Mixes4++; return c }},
		{"mixes16", func(c RunConfig) RunConfig { c.Mixes16++; return c }},
		{"seed", func(c RunConfig) RunConfig { c.Seed++; return c }},
	} {
		if ok, why := ck.ConfigMatches(tc.mut(rc)); ok {
			t.Fatalf("%s mismatch accepted", tc.name)
		} else if why == "" {
			t.Fatalf("%s mismatch has no reason", tc.name)
		}
	}

	// The config survives the save/load round trip.
	dir := t.TempDir()
	path := filepath.Join(dir, "ck.json")
	if err := ck.Save(path, nil); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if ok, why := loaded.ConfigMatches(rc); !ok {
		t.Fatalf("round-tripped config rejected: %s", why)
	}
	if ok, _ := loaded.ConfigMatches(RunConfig{Accesses: 9}); ok {
		t.Fatal("round-tripped config matched a different run")
	}
}
