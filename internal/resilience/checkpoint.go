package resilience

import (
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"time"

	"pdp/internal/telemetry"
)

// CheckpointVersion is the current checkpoint format version.
const CheckpointVersion = 1

// RunMark records the completion of one run id.
type RunMark struct {
	// Seconds is the run's wall-clock duration.
	Seconds float64 `json:"seconds,omitempty"`
	// UnixSec is the completion time.
	UnixSec int64 `json:"unix_sec,omitempty"`
}

// Checkpoint is the resumable state of a campaign: the set of completed
// run ids (`repro -resume` skips them) and saved trace access offsets
// (`pdpsim -resume` fast-forwards its deterministic generator past them).
// Only trace positions are saved, never policy or cache state, so a resume
// is policy-agnostic: any policy can pick up the remaining window. All
// methods are safe for concurrent use.
type Checkpoint struct {
	mu sync.Mutex
	d  checkpointData
}

// RunConfig records the run parameters a checkpoint was produced under.
// Only parameters that change what a completed run means are included —
// the jobs count is deliberately absent, because tables are identical at
// every jobs count and a `-jobs 8` campaign may resume a `-jobs 1` one.
type RunConfig struct {
	Accesses            int    `json:"accesses,omitempty"`
	MCAccessesPerThread int    `json:"mc_accesses_per_thread,omitempty"`
	Mixes4              int    `json:"mixes4,omitempty"`
	Mixes16             int    `json:"mixes16,omitempty"`
	Seed                uint64 `json:"seed,omitempty"`
}

// checkpointData is the JSON shape of a checkpoint file.
type checkpointData struct {
	Version int `json:"version"`
	// Config is the recorded run configuration (zero value: unrecorded,
	// written by pre-config checkpoints).
	Config RunConfig `json:"config,omitempty"`
	// Completed maps run ids (experiment ids) to their completion marks.
	Completed map[string]RunMark `json:"completed,omitempty"`
	// Offsets maps resume keys (bench/window/seed) to the number of
	// measured accesses already simulated.
	Offsets map[string]uint64 `json:"offsets,omitempty"`
}

// NewCheckpoint returns an empty checkpoint.
func NewCheckpoint() *Checkpoint {
	return &Checkpoint{d: checkpointData{
		Version:   CheckpointVersion,
		Completed: map[string]RunMark{},
		Offsets:   map[string]uint64{},
	}}
}

// DecodeCheckpoint parses and validates checkpoint JSON.
func DecodeCheckpoint(data []byte) (*Checkpoint, error) {
	var d checkpointData
	if err := json.Unmarshal(data, &d); err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	if d.Version != CheckpointVersion {
		return nil, fmt.Errorf("checkpoint: unsupported version %d", d.Version)
	}
	if d.Completed == nil {
		d.Completed = map[string]RunMark{}
	}
	if d.Offsets == nil {
		d.Offsets = map[string]uint64{}
	}
	return &Checkpoint{d: d}, nil
}

// LoadCheckpoint reads a checkpoint file; a missing file yields a fresh
// empty checkpoint (resuming a campaign that never started is a no-op).
func LoadCheckpoint(path string) (*Checkpoint, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return NewCheckpoint(), nil
	}
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	c, err := DecodeCheckpoint(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return c, nil
}

// SetConfig stamps the run configuration into the checkpoint.
func (c *Checkpoint) SetConfig(rc RunConfig) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.d.Config = rc
}

// ConfigMatches reports whether a resume under rc may trust this
// checkpoint's completion marks. A zero recorded config (a checkpoint
// written before configs were recorded, or an empty checkpoint) matches
// anything; otherwise every field must agree, and the returned reason
// names the first mismatch.
func (c *Checkpoint) ConfigMatches(rc RunConfig) (bool, string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	rec := c.d.Config
	if rec == (RunConfig{}) {
		return true, ""
	}
	switch {
	case rec.Accesses != rc.Accesses:
		return false, fmt.Sprintf("recorded accesses=%d, current %d", rec.Accesses, rc.Accesses)
	case rec.MCAccessesPerThread != rc.MCAccessesPerThread:
		return false, fmt.Sprintf("recorded mc-accesses=%d, current %d", rec.MCAccessesPerThread, rc.MCAccessesPerThread)
	case rec.Mixes4 != rc.Mixes4:
		return false, fmt.Sprintf("recorded mixes4=%d, current %d", rec.Mixes4, rc.Mixes4)
	case rec.Mixes16 != rc.Mixes16:
		return false, fmt.Sprintf("recorded mixes16=%d, current %d", rec.Mixes16, rc.Mixes16)
	case rec.Seed != rc.Seed:
		return false, fmt.Sprintf("recorded seed=%d, current %d", rec.Seed, rc.Seed)
	}
	return true, ""
}

// Done reports whether run id completed.
func (c *Checkpoint) Done(id string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.d.Completed[id]
	return ok
}

// MarkDone records run id as completed.
func (c *Checkpoint) MarkDone(id string, dur time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.d.Completed[id] = RunMark{Seconds: dur.Seconds(), UnixSec: time.Now().Unix()}
}

// CompletedCount returns the number of completed run ids.
func (c *Checkpoint) CompletedCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.d.Completed)
}

// Offset returns the saved access offset for key (0 when none).
func (c *Checkpoint) Offset(key string) uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.d.Offsets[key]
}

// SetOffset records the access offset for key.
func (c *Checkpoint) SetOffset(key string, off uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.d.Offsets[key] = off
}

// ClearOffset removes key's offset (the window completed).
func (c *Checkpoint) ClearOffset(key string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.d.Offsets, key)
}

// Save writes the checkpoint atomically and durably (temp file + fsync +
// rename + parent-directory fsync, via WriteFileAtomic), so a crash — or a
// power cut — mid-save never corrupts or loses an existing checkpoint.
// When journal is non-nil the save is recorded as a checkpoint event.
func (c *Checkpoint) Save(path string, journal *telemetry.Journal) error {
	c.mu.Lock()
	data, err := json.MarshalIndent(c.d, "", "  ")
	completed := len(c.d.Completed)
	var off uint64
	for _, v := range c.d.Offsets {
		if v > off {
			off = v
		}
	}
	c.mu.Unlock()
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	data = append(data, '\n')

	if err := WriteFileAtomic(path, data); err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	journal.Append(telemetry.CheckpointRecord{
		Kind: telemetry.KindCheckpoint, Path: path, Completed: completed, Offset: off,
	})
	return nil
}

// RunKey builds the policy-agnostic resume key of a simulation window:
// the benchmark, window length and seed fully determine the deterministic
// access stream, so any policy can resume from the saved offset.
func RunKey(bench string, n int, seed uint64) string {
	return fmt.Sprintf("%s/n=%d/seed=%d", bench, n, seed)
}
