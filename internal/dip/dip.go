// Package dip implements BIP and the Dynamic Insertion Policy of Qureshi et
// al. (ISCA 2007), the baseline that the PDP paper normalizes its
// single-core results against. DIP duels LRU against BIP on dedicated
// leader sets with a PSEL counter; follower sets adopt the winner.
// Writeback accesses are excluded from PSEL updates, as in the paper's
// methodology (Sec. 5).
package dip

import (
	"pdp/internal/cache"
	"pdp/internal/trace"
)

// DefaultEpsilon is the BIP bimodal throttle (paper: 1/32).
const DefaultEpsilon = 1.0 / 32

// BIP is the Bimodal Insertion Policy: lines are inserted at the LRU
// position except with probability Epsilon at MRU. Hits promote to MRU.
type BIP struct {
	*cache.LRU
	eps float64
	rng *trace.RNG
}

// NewBIP builds a BIP policy.
func NewBIP(sets, ways int, eps float64, seed uint64) *BIP {
	return &BIP{LRU: cache.NewLRU(sets, ways), eps: eps, rng: trace.NewRNG(seed)}
}

// Name implements cache.Policy.
func (p *BIP) Name() string { return "BIP" }

// Insert implements cache.Policy.
func (p *BIP) Insert(set, way int, _ trace.Access) {
	if p.rng.Bernoulli(p.eps) {
		p.Touch(set, way)
	} else {
		p.Demote(set, way)
	}
}

// DuelingConfig parameterizes a set-dueling monitor.
type DuelingConfig struct {
	// Sets is the number of cache sets.
	Sets int
	// Leaders is the number of leader sets per competing policy (paper: 32).
	Leaders int
	// PSELBits sizes the saturating selector counter (paper: 10).
	PSELBits int
}

func (c *DuelingConfig) setDefaults() {
	if c.Leaders == 0 {
		c.Leaders = 32
	}
	if c.PSELBits == 0 {
		c.PSELBits = 10
	}
	// Small test caches cannot dedicate 2*32 leader sets.
	if 2*c.Leaders > c.Sets {
		c.Leaders = c.Sets / 2
		if c.Leaders == 0 {
			c.Leaders = 1
		}
	}
}

// Dueler implements a two-policy set-dueling monitor: leader sets for
// policy 0 and policy 1, and a PSEL counter counting policy-0 leader misses
// up and policy-1 leader misses down. Followers use the policy with fewer
// leader misses.
type Dueler struct {
	cfg     DuelingConfig
	role    []int8 // per set: 0 leader-A, 1 leader-B, -1 follower
	psel    int
	pselMax int
}

// NewDueler builds a monitor for the given geometry.
func NewDueler(cfg DuelingConfig) *Dueler {
	cfg.setDefaults()
	d := &Dueler{
		cfg:     cfg,
		role:    make([]int8, cfg.Sets),
		pselMax: 1<<uint(cfg.PSELBits) - 1,
	}
	d.psel = d.pselMax / 2 // midpoint with Winner() == 0 initially
	for s := range d.role {
		d.role[s] = -1
	}
	stride := cfg.Sets / (2 * cfg.Leaders)
	if stride == 0 {
		stride = 1
	}
	for i := 0; i < cfg.Leaders; i++ {
		a := (2 * i) * stride
		b := (2*i + 1) * stride
		if a < cfg.Sets {
			d.role[a] = 0
		}
		if b < cfg.Sets {
			d.role[b] = 1
		}
	}
	return d
}

// Role returns 0 or 1 for leader sets, -1 for followers.
func (d *Dueler) Role(set int) int { return int(d.role[set]) }

// Miss records a leader-set miss (call only for demand traffic).
func (d *Dueler) Miss(set int) {
	switch d.role[set] {
	case 0:
		if d.psel < d.pselMax {
			d.psel++
		}
	case 1:
		if d.psel > 0 {
			d.psel--
		}
	}
}

// Winner returns the policy (0 or 1) follower sets should use: policy 1
// when the policy-0 leaders have accumulated more misses.
func (d *Dueler) Winner() int {
	if d.psel > d.pselMax/2 {
		return 1
	}
	return 0
}

// PolicyFor returns the insertion policy a given set must use.
func (d *Dueler) PolicyFor(set int) int {
	if r := d.role[set]; r >= 0 {
		return int(r)
	}
	return d.Winner()
}

// DIP duels LRU (policy 0) against BIP (policy 1).
type DIP struct {
	lru  *cache.LRU
	duel *Dueler
	eps  float64
	rng  *trace.RNG
}

var _ cache.Policy = (*DIP)(nil)

// NewDIP builds the dynamic insertion policy.
func NewDIP(sets, ways int, eps float64, seed uint64) *DIP {
	return &DIP{
		lru:  cache.NewLRU(sets, ways),
		duel: NewDueler(DuelingConfig{Sets: sets}),
		eps:  eps,
		rng:  trace.NewRNG(seed),
	}
}

// Name implements cache.Policy.
func (p *DIP) Name() string { return "DIP" }

// Dueler exposes the monitor (testing).
func (p *DIP) Dueler() *Dueler { return p.duel }

// Hit implements cache.Policy.
func (p *DIP) Hit(set, way int, acc trace.Access) { p.lru.Hit(set, way, acc) }

// Victim implements cache.Policy.
func (p *DIP) Victim(set int, acc trace.Access) (int, bool) {
	return p.lru.Victim(set, acc)
}

// Insert implements cache.Policy.
func (p *DIP) Insert(set, way int, acc trace.Access) {
	if !acc.WB {
		p.duel.Miss(set)
	}
	if p.duel.PolicyFor(set) == 0 {
		p.lru.Touch(set, way) // LRU insertion (MRU position)
		return
	}
	// BIP insertion.
	if p.rng.Bernoulli(p.eps) {
		p.lru.Touch(set, way)
	} else {
		p.lru.Demote(set, way)
	}
}

// Evict implements cache.Policy.
func (p *DIP) Evict(set, way int) { p.lru.Evict(set, way) }

// PostAccess implements cache.Policy.
func (p *DIP) PostAccess(set int, acc trace.Access) {}
