package dip

import (
	"testing"

	"pdp/internal/cache"
	"pdp/internal/trace"
)

func addr(sets, set, tag int) uint64 { return uint64(tag*sets+set) * 64 }

func TestBIPInsertsAtLRU(t *testing.T) {
	// eps = 0: every insertion goes to the LRU position and is victimized
	// next.
	p := NewBIP(1, 4, 0, 1)
	c := cache.New(cache.Config{Name: "t", Sets: 1, Ways: 4, LineSize: 64}, p)
	for tag := 0; tag < 4; tag++ {
		c.Access(trace.Access{Addr: addr(1, 0, tag)})
	}
	r := c.Access(trace.Access{Addr: addr(1, 0, 10)})
	if !r.Evicted || r.VictimAddr != addr(1, 0, 3) {
		t.Fatalf("victim = %#x, want most recent insert (tag 3)", r.VictimAddr)
	}
	// The new line itself is at LRU: next insert evicts it.
	r = c.Access(trace.Access{Addr: addr(1, 0, 11)})
	if r.VictimAddr != addr(1, 0, 10) {
		t.Fatalf("victim = %#x, want tag 10", r.VictimAddr)
	}
}

func TestBIPHitPromotes(t *testing.T) {
	p := NewBIP(1, 2, 0, 1)
	c := cache.New(cache.Config{Name: "t", Sets: 1, Ways: 2, LineSize: 64}, p)
	c.Access(trace.Access{Addr: addr(1, 0, 0)})
	c.Access(trace.Access{Addr: addr(1, 0, 1)})
	c.Access(trace.Access{Addr: addr(1, 0, 1)}) // promote tag 1 to MRU
	r := c.Access(trace.Access{Addr: addr(1, 0, 2)})
	if r.VictimAddr != addr(1, 0, 0) {
		t.Fatalf("victim = %#x, want non-promoted tag 0", r.VictimAddr)
	}
}

func TestDuelerRoles(t *testing.T) {
	d := NewDueler(DuelingConfig{Sets: 1024})
	nA, nB := 0, 0
	for s := 0; s < 1024; s++ {
		switch d.Role(s) {
		case 0:
			nA++
		case 1:
			nB++
		}
	}
	if nA != 32 || nB != 32 {
		t.Fatalf("leaders = (%d, %d), want (32, 32)", nA, nB)
	}
}

func TestDuelerSmallCache(t *testing.T) {
	d := NewDueler(DuelingConfig{Sets: 8})
	nA, nB := 0, 0
	for s := 0; s < 8; s++ {
		switch d.Role(s) {
		case 0:
			nA++
		case 1:
			nB++
		}
	}
	if nA == 0 || nB == 0 || nA+nB > 8 {
		t.Fatalf("leaders = (%d, %d) for 8 sets", nA, nB)
	}
}

func TestDuelerSelection(t *testing.T) {
	d := NewDueler(DuelingConfig{Sets: 64, Leaders: 4, PSELBits: 4})
	var leaderA, leaderB, follower int = -1, -1, -1
	for s := 0; s < 64; s++ {
		switch d.Role(s) {
		case 0:
			leaderA = s
		case 1:
			leaderB = s
		default:
			follower = s
		}
	}
	if d.Winner() != 0 {
		t.Fatal("initial winner must be policy 0 (PSEL at midpoint)")
	}
	// Policy 0 leaders missing a lot -> policy 1 wins.
	for i := 0; i < 20; i++ {
		d.Miss(leaderA)
	}
	if d.Winner() != 1 {
		t.Fatal("winner must flip to policy 1 after leader-0 misses")
	}
	if d.PolicyFor(follower) != 1 {
		t.Fatal("follower must adopt the winner")
	}
	// Leaders always use their own policy.
	if d.PolicyFor(leaderA) != 0 || d.PolicyFor(leaderB) != 1 {
		t.Fatal("leaders must use their dedicated policies")
	}
	// Policy 1 leaders missing more flips it back.
	for i := 0; i < 40; i++ {
		d.Miss(leaderB)
	}
	if d.Winner() != 0 {
		t.Fatal("winner must flip back to policy 0")
	}
}

func TestDIPLRUFriendly(t *testing.T) {
	const sets, ways = 64, 4
	p := NewDIP(sets, ways, DefaultEpsilon, 1)
	c := cache.New(cache.Config{Name: "t", Sets: sets, Ways: ways, LineSize: 64}, p)
	g := trace.NewLoopGen("loop", ways*sets, 1, 1)
	n := ways * sets * 50
	for i := 0; i < n; i++ {
		c.Access(g.Next())
	}
	// Compulsory misses only, since the working set fits.
	if c.Stats.Misses != uint64(ways*sets) {
		t.Fatalf("misses = %d, want %d cold misses", c.Stats.Misses, ways*sets)
	}
}

func TestDIPBeatsLRUOnThrash(t *testing.T) {
	const sets, ways, per = 256, 4, 8
	p := NewDIP(sets, ways, DefaultEpsilon, 1)
	cDIP := cache.New(cache.Config{Name: "t", Sets: sets, Ways: ways, LineSize: 64}, p)
	cLRU := cache.New(cache.Config{Name: "t", Sets: sets, Ways: ways, LineSize: 64}, cache.NewLRU(sets, ways))
	g := trace.NewLoopGen("loop", per*sets, 1, 1)
	for i := 0; i < per*sets*200; i++ {
		a := g.Next()
		cDIP.Access(a)
		cLRU.Access(a)
	}
	if cLRU.Stats.HitRate() > 0.01 {
		t.Fatalf("LRU hit rate %v on thrash, want ~0", cLRU.Stats.HitRate())
	}
	if cDIP.Stats.HitRate() < cLRU.Stats.HitRate()+0.2 {
		t.Fatalf("DIP %v vs LRU %v: want clear win", cDIP.Stats.HitRate(), cLRU.Stats.HitRate())
	}
	if p.Dueler().Winner() != 1 {
		t.Fatal("BIP must win the duel under thrashing")
	}
}

func TestDIPExcludesWritebacksFromPSEL(t *testing.T) {
	const sets, ways = 64, 2
	p := NewDIP(sets, ways, DefaultEpsilon, 1)
	c := cache.New(cache.Config{Name: "t", Sets: sets, Ways: ways, LineSize: 64}, p)
	// Find a policy-0 leader set and hammer it with writeback misses.
	leader := -1
	for s := 0; s < sets; s++ {
		if p.Dueler().Role(s) == 0 {
			leader = s
			break
		}
	}
	for tag := 0; tag < 100; tag++ {
		c.Access(trace.Access{Addr: addr(sets, leader, tag), Write: true, WB: true})
	}
	if p.Dueler().Winner() != 0 {
		t.Fatal("writeback misses must not train PSEL (paper Sec. 5)")
	}
}
