package cluster

import (
	"fmt"
	"math"
	"testing"
)

func keys(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("k%016x", uint64(i)*0x9E3779B97F4A7C15)
	}
	return out
}

func members(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("http://10.0.0.%d:7070", i+1)
	}
	return out
}

func owners(t *testing.T, r *Ring, ks []string) map[string]string {
	t.Helper()
	out := make(map[string]string, len(ks))
	for _, k := range ks {
		o, ok := r.Owner(k)
		if !ok {
			t.Fatalf("no owner for %q", k)
		}
		out[k] = o
	}
	return out
}

// TestRingDeterminism: the ring is a pure function of (seed, member set,
// vnodes) — member order must not matter, and a second construction must
// agree key for key. This is what lets every node compute its own ring
// from the static -peers list with no coordination.
func TestRingDeterminism(t *testing.T) {
	ms := members(5)
	ks := keys(10000)
	a, err := NewRing(42, 64, ms)
	if err != nil {
		t.Fatal(err)
	}
	// Same members in reversed order, built independently.
	rev := make([]string, len(ms))
	for i, m := range ms {
		rev[len(ms)-1-i] = m
	}
	b, err := NewRing(42, 64, rev)
	if err != nil {
		t.Fatal(err)
	}
	oa, ob := owners(t, a, ks), owners(t, b, ks)
	for _, k := range ks {
		if oa[k] != ob[k] {
			t.Fatalf("rings disagree on %q: %q vs %q", k, oa[k], ob[k])
		}
	}

	// A different seed must give a different placement (sanity that the
	// seed actually participates).
	c, err := NewRing(43, 64, ms)
	if err != nil {
		t.Fatal(err)
	}
	oc := owners(t, c, ks)
	same := 0
	for _, k := range ks {
		if oa[k] == oc[k] {
			same++
		}
	}
	if same == len(ks) {
		t.Fatal("seed 42 and 43 produced identical placements")
	}
}

// TestRingBalance: with enough virtual nodes, each of N members owns
// roughly K/N of the key space (within 35% relative error at 128
// vnodes — consistent hashing's usual spread).
func TestRingBalance(t *testing.T) {
	const n, K = 5, 20000
	r, err := NewRing(1, 128, members(n))
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for k := range owners(t, r, keys(K)) {
		o, _ := r.Owner(k)
		counts[o]++
	}
	want := float64(K) / n
	for m, c := range counts {
		if rel := math.Abs(float64(c)-want) / want; rel > 0.35 {
			t.Fatalf("member %s owns %d keys, want ~%.0f (rel err %.2f): %v", m, c, want, rel, counts)
		}
	}
}

// TestRingMinimalMovement is the satellite property test: ejecting one
// node moves only that node's keys (every key owned by a survivor keeps
// its owner), rejoin restores the original placement exactly, and
// adding a member to the set moves no more than ~K/N + eps keys.
func TestRingMinimalMovement(t *testing.T) {
	const n, K = 5, 20000
	ms := members(n)
	ks := keys(K)
	r, err := NewRing(7, 128, ms)
	if err != nil {
		t.Fatal(err)
	}
	before := owners(t, r, ks)

	// Leave: eject member 3. Keys it owned must redistribute across the
	// survivors; keys it did not own must not move at all.
	victim := ms[2]
	if !r.Eject(victim) {
		t.Fatal("eject reported no change")
	}
	after := owners(t, r, ks)
	victimKeys := 0
	for _, k := range ks {
		if before[k] == victim {
			victimKeys++
			if after[k] == victim {
				t.Fatalf("key %q still owned by ejected member", k)
			}
			continue
		}
		if after[k] != before[k] {
			t.Fatalf("key %q moved %q -> %q though its owner survived", k, before[k], after[k])
		}
	}
	if victimKeys == 0 {
		t.Fatal("victim owned no keys; test is vacuous")
	}

	// Rejoin: placement never changed, so the recovered member gets back
	// exactly its original keys.
	if !r.Rejoin(victim) {
		t.Fatal("rejoin reported no change")
	}
	restored := owners(t, r, ks)
	for _, k := range ks {
		if restored[k] != before[k] {
			t.Fatalf("rejoin did not restore %q: %q vs %q", k, restored[k], before[k])
		}
	}

	// Join: a ring over N+1 members vs the same ring over N members must
	// move at most ~K/(N+1) keys (the new member's fair share), with 50%
	// slack for hash-spread variance.
	grown, err := NewRing(7, 128, append(append([]string{}, ms...), "http://10.0.0.99:7070"))
	if err != nil {
		t.Fatal(err)
	}
	afterJoin := owners(t, grown, ks)
	moved := 0
	for _, k := range ks {
		if afterJoin[k] != before[k] {
			moved++
			if afterJoin[k] != "http://10.0.0.99:7070" {
				t.Fatalf("key %q moved to %q, not the joining member", k, afterJoin[k])
			}
		}
	}
	bound := int(1.5 * float64(K) / float64(n+1))
	if moved > bound {
		t.Fatalf("join moved %d keys, want <= %d (~K/N + eps)", moved, bound)
	}
	if moved == 0 {
		t.Fatal("join moved no keys; test is vacuous")
	}
}

// TestRingAllDead: with every member ejected, Owner reports no owner
// instead of looping forever.
func TestRingAllDead(t *testing.T) {
	r, err := NewRing(1, 16, members(2))
	if err != nil {
		t.Fatal(err)
	}
	r.Eject(members(2)[0])
	r.Eject(members(2)[1])
	if _, ok := r.Owner("k"); ok {
		t.Fatal("all-dead ring still returned an owner")
	}
	if r.AliveCount() != 0 {
		t.Fatalf("AliveCount = %d, want 0", r.AliveCount())
	}
}

// TestRingValidation pins the constructor's error paths.
func TestRingValidation(t *testing.T) {
	if _, err := NewRing(1, 8, nil); err == nil {
		t.Fatal("empty member set accepted")
	}
	if _, err := NewRing(1, 8, []string{""}); err == nil {
		t.Fatal("empty member name accepted")
	}
	// Duplicates collapse rather than double a member's share.
	r, err := NewRing(1, 8, []string{"a", "a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(r.Members()); got != 2 {
		t.Fatalf("dupes not collapsed: %d members", got)
	}
}
