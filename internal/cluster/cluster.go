package cluster

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"pdp/internal/resilience"
	"pdp/internal/telemetry"
)

// Config parameterizes a cluster node.
type Config struct {
	// Self is this node's id — its advertised base URL, exactly as it
	// appears in Peers (e.g. "http://127.0.0.1:8081").
	Self string
	// Peers is the static member list: every node's base URL, including
	// Self. Order does not matter; every node must be given the same set.
	Peers []string
	// VNodes is the number of virtual points per member (default 64).
	VNodes int
	// Seed fixes the ring placement; every member must share it
	// (default 1).
	Seed uint64

	// ProbeEvery is the health-probe period per peer (default 1s).
	ProbeEvery time.Duration
	// ProbeTimeout bounds one /healthz probe (default 500ms).
	ProbeTimeout time.Duration
	// EjectAfter ejects a peer from the ring after that many consecutive
	// failed probe rounds (default 3); RejoinAfter rejoins it after that
	// many consecutive successes (default 2).
	EjectAfter, RejoinAfter int

	// FetchTimeout bounds one proxied exchange to a peer (default 2s).
	FetchTimeout time.Duration
	// MaxValueBytes caps a peer response body (default 1 MiB + headroom).
	MaxValueBytes int64

	// Registry and Journal receive cluster telemetry (both optional):
	// per-peer labeled request/error/latency/breaker series, routing
	// counters, and one MembershipRecord per ring transition.
	Registry *telemetry.Registry
	Journal  *telemetry.Journal
}

func (c *Config) setDefaults() error {
	if c.Self == "" {
		return fmt.Errorf("cluster: Self required")
	}
	if len(c.Peers) == 0 {
		return fmt.Errorf("cluster: Peers required")
	}
	if c.VNodes == 0 {
		c.VNodes = 64
	}
	if c.VNodes < 0 {
		return fmt.Errorf("cluster: VNodes must be positive, got %d", c.VNodes)
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.ProbeEvery == 0 {
		c.ProbeEvery = time.Second
	}
	if c.ProbeEvery < 0 {
		return fmt.Errorf("cluster: ProbeEvery must be positive, got %v", c.ProbeEvery)
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = 500 * time.Millisecond
	}
	if c.EjectAfter == 0 {
		c.EjectAfter = 3
	}
	if c.RejoinAfter == 0 {
		c.RejoinAfter = 2
	}
	if c.EjectAfter < 0 || c.RejoinAfter < 0 {
		return fmt.Errorf("cluster: EjectAfter=%d RejoinAfter=%d must be positive", c.EjectAfter, c.RejoinAfter)
	}
	if c.FetchTimeout <= 0 {
		c.FetchTimeout = 2 * time.Second
	}
	if c.MaxValueBytes <= 0 {
		c.MaxValueBytes = 1<<20 + 4096
	}
	return nil
}

// Cluster is one node's view of the tier: the shared ring, a client per
// remote peer, the singleflight fill table, and the probe loop that
// drives ejection/rejoin.
type Cluster struct {
	cfg    Config
	ring   *Ring
	peers  map[string]*Peer // remote members only
	flight Flight

	probeCancel context.CancelFunc
	probeDone   chan struct{}
	probeHC     *http.Client

	// per-peer consecutive probe outcomes (guarded by pmu).
	pmu      sync.Mutex
	failRun  map[string]int
	okRun    map[string]int
	peerUp   map[string]*telemetry.Gauge
	mProxied *telemetry.Counter
	mFanout  *telemetry.Counter
	mCoal    *telemetry.Counter
	mFills   *telemetry.Counter
	mFallbk  *telemetry.Counter
	mLoops   *telemetry.Counter
	mEjects  *telemetry.Counter
	mRejoins *telemetry.Counter
	gAlive   *telemetry.Gauge
}

// New validates cfg, builds the ring and the peer clients. Start begins
// probing; until then every configured member counts alive.
func New(cfg Config) (*Cluster, error) {
	if err := cfg.setDefaults(); err != nil {
		return nil, err
	}
	ring, err := NewRing(cfg.Seed, cfg.VNodes, cfg.Peers)
	if err != nil {
		return nil, err
	}
	if ring.index(cfg.Self) < 0 {
		return nil, fmt.Errorf("cluster: Self %q not in Peers %v", cfg.Self, ring.Members())
	}
	// One pooled transport for all peers: proxied traffic reuses
	// connections instead of paying a dial per request. Both the idle and
	// the hard per-host caps are explicit — the default MaxConnsPerHost of
	// 0 (unlimited) lets a fan-out burst dial far past the idle pool, and
	// every connection past MaxIdleConnsPerHost is then torn down on
	// release, so the next burst dials again. Matching the caps keeps the
	// connection count flat across batch waves.
	tr := &http.Transport{
		MaxIdleConns:        256,
		MaxIdleConnsPerHost: 64,
		MaxConnsPerHost:     64,
		IdleConnTimeout:     90 * time.Second,
	}
	reg := cfg.Registry
	c := &Cluster{
		cfg:     cfg,
		ring:    ring,
		peers:   make(map[string]*Peer),
		probeHC: &http.Client{Transport: tr, Timeout: cfg.ProbeTimeout},
		failRun: make(map[string]int),
		okRun:   make(map[string]int),
		peerUp:  make(map[string]*telemetry.Gauge),

		mProxied: reg.Counter("cluster.proxied"),
		mFanout:  reg.Counter("cluster.batch_fanout"),
		mCoal:    reg.Counter("cluster.singleflight_coalesced"),
		mFills:   reg.Counter("cluster.singleflight_fills"),
		mFallbk:  reg.Counter("cluster.fallback_local"),
		mLoops:   reg.Counter("cluster.hop_terminated"),
		mEjects:  reg.Counter("cluster.ring_ejections"),
		mRejoins: reg.Counter("cluster.ring_rejoins"),
		gAlive:   reg.Gauge("cluster.members_alive"),
	}
	for _, m := range ring.Members() {
		if m == cfg.Self {
			continue
		}
		c.peers[m] = newPeer(m, tr, cfg.FetchTimeout, cfg.MaxValueBytes, reg)
		up := reg.Gauge("cluster.peer_up{" + telemetry.Label("peer", m) + "}")
		up.Set(1)
		c.peerUp[m] = up
	}
	c.gAlive.Set(float64(ring.AliveCount()))
	return c, nil
}

// Self returns this node's id.
func (c *Cluster) Self() string { return c.cfg.Self }

// Ring returns the node's ring (shared, concurrency-safe).
func (c *Cluster) Ring() *Ring { return c.ring }

// Peer returns the client for a remote member (nil for Self/unknowns).
func (c *Cluster) Peer(id string) *Peer { return c.peers[id] }

// Owner resolves key's owner. local reports owner == Self; ok is false
// only when every member (including Self) is marked dead, which the
// probe loop never does to Self.
func (c *Cluster) Owner(key string) (owner string, local, ok bool) {
	owner, ok = c.ring.Owner(key)
	return owner, ok && owner == c.cfg.Self, ok
}

// --- proxying ----------------------------------------------------------

// FetchGet performs the singleflighted proxy GET for key against its
// owner: N concurrent callers for one (owner, key) pair cost exactly one
// peer exchange. The returned response is shared — read-only.
func (c *Cluster) FetchGet(ctx context.Context, owner, key string) (*PeerResponse, error) {
	p := c.peers[owner]
	if p == nil {
		return nil, fmt.Errorf("cluster: no client for %q", owner)
	}
	c.mProxied.Inc()
	resp, err, shared := c.flight.Do(owner+"\x00"+key, func() (*PeerResponse, error) {
		// The fetch is shared by every coalesced caller, so it must not
		// die with the first caller's context; it runs under its own
		// FetchTimeout budget instead.
		fctx, cancel := context.WithTimeout(context.WithoutCancel(ctx), c.cfg.FetchTimeout)
		defer cancel()
		c.mFills.Inc()
		return p.do(fctx, http.MethodGet, key, nil)
	})
	if shared {
		c.mCoal.Inc()
	}
	return resp, err
}

// Forward proxies one mutating exchange (PUT/DELETE) to the owner.
// Mutations are never coalesced.
func (c *Cluster) Forward(ctx context.Context, owner, method, key string, body []byte) (*PeerResponse, error) {
	p := c.peers[owner]
	if p == nil {
		return nil, fmt.Errorf("cluster: no client for %q", owner)
	}
	c.mProxied.Inc()
	return p.do(ctx, method, key, body)
}

// ForwardBatch posts a JSON-encoded sub-batch to owner's /batch route —
// one leg of the owner-split scatter-gather. maxResp bounds the response
// body; the caller scales it by the sub-batch size. Batches are never
// coalesced (they carry mutations).
func (c *Cluster) ForwardBatch(ctx context.Context, owner string, body []byte, maxResp int64) (*PeerResponse, error) {
	p := c.peers[owner]
	if p == nil {
		return nil, fmt.Errorf("cluster: no client for %q", owner)
	}
	c.mFanout.Inc()
	return p.doBatch(ctx, body, maxResp)
}

// FallbackLocal books one proxy failure answered from the local cache.
func (c *Cluster) FallbackLocal() { c.mFallbk.Inc() }

// HopTerminated books one forwarded request served locally despite a
// divergent ring view — the loop-prevention path.
func (c *Cluster) HopTerminated() { c.mLoops.Inc() }

// --- membership --------------------------------------------------------

// Start launches the health-probe loop; Stop (or ctx cancellation) ends
// it. Probing is what turns the static member list into a failure-aware
// ring: EjectAfter consecutive failed rounds eject a peer, RejoinAfter
// consecutive successes rejoin it.
func (c *Cluster) Start(ctx context.Context) {
	pctx, cancel := context.WithCancel(ctx)
	c.probeCancel = cancel
	c.probeDone = make(chan struct{})
	go c.probeLoop(pctx)
}

// Stop ends the probe loop (idempotent; safe before Start).
func (c *Cluster) Stop() {
	if c.probeCancel != nil {
		c.probeCancel()
		<-c.probeDone
		c.probeCancel = nil
	}
}

func (c *Cluster) probeLoop(ctx context.Context) {
	defer close(c.probeDone)
	t := time.NewTicker(c.cfg.ProbeEvery)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			c.probeRound(ctx)
		}
	}
}

// probeRound probes every remote member once, in parallel (a dead peer
// costs a full ProbeTimeout; serially, two dead peers would delay the
// detection of a third).
func (c *Cluster) probeRound(ctx context.Context) {
	var wg sync.WaitGroup
	for id := range c.peers {
		wg.Add(1)
		go func(id string) {
			defer wg.Done()
			c.probeOne(ctx, id)
		}(id)
	}
	wg.Wait()
}

// probeOne GETs the peer's /healthz — the liveness route that kvserver
// keeps exempt from the admission gate, so an overloaded-but-alive peer
// still answers. One round retries once with the resilience backoff
// before counting a failure, so a single dropped packet doesn't start an
// ejection streak.
func (c *Cluster) probeOne(ctx context.Context, id string) {
	err := resilience.Retry(ctx, resilience.RetryConfig{
		Name:      "cluster.probe",
		Attempts:  2,
		Base:      c.cfg.ProbeTimeout / 4,
		Max:       c.cfg.ProbeTimeout,
		Transient: func(error) bool { return true },
	}, func() error {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, id+"/healthz", nil)
		if err != nil {
			return err
		}
		resp, err := c.probeHC.Do(req)
		if err != nil {
			return err
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("healthz %d", resp.StatusCode)
		}
		return nil
	})
	if ctx.Err() != nil {
		return
	}
	c.pmu.Lock()
	defer c.pmu.Unlock()
	if err != nil {
		c.failRun[id]++
		c.okRun[id] = 0
		if c.failRun[id] >= c.cfg.EjectAfter && c.ring.Eject(id) {
			c.mEjects.Inc()
			c.peerUp[id].Set(0)
			c.gAlive.Set(float64(c.ring.AliveCount()))
			c.cfg.Journal.Append(telemetry.MembershipRecord{
				Kind: telemetry.KindMembership, Event: "eject", Peer: id,
				Alive: c.ring.AliveCount(), Members: len(c.ring.Members()),
				Streak: c.failRun[id],
			})
		}
		return
	}
	c.okRun[id]++
	c.failRun[id] = 0
	if c.okRun[id] >= c.cfg.RejoinAfter && c.ring.Rejoin(id) {
		c.mRejoins.Inc()
		c.peerUp[id].Set(1)
		c.gAlive.Set(float64(c.ring.AliveCount()))
		c.cfg.Journal.Append(telemetry.MembershipRecord{
			Kind: telemetry.KindMembership, Event: "rejoin", Peer: id,
			Alive: c.ring.AliveCount(), Members: len(c.ring.Members()),
			Streak: c.okRun[id],
		})
	}
}

// --- introspection -----------------------------------------------------

// MemberView is one member's row in the /cluster/ring view.
type MemberView struct {
	ID    string `json:"id"`
	Self  bool   `json:"self,omitempty"`
	Alive bool   `json:"alive"`
	// BreakerOpen reports the peer client's circuit state (always false
	// for Self).
	BreakerOpen bool `json:"breaker_open,omitempty"`
}

// View is the /cluster/ring JSON schema.
type View struct {
	Self    string       `json:"self"`
	Seed    uint64       `json:"seed"`
	VNodes  int          `json:"vnodes"`
	Alive   int          `json:"alive"`
	Members []MemberView `json:"members"`
	// Owner is the resolved owner for the ?key= query (omitted without
	// one).
	Owner string `json:"owner,omitempty"`
	// Proxied/Coalesced/FallbackLocal/HopTerminated are this node's
	// routing counters; BatchFanout counts per-peer sub-batches issued by
	// the owner-split scatter-gather.
	Proxied       uint64 `json:"proxied"`
	BatchFanout   uint64 `json:"batch_fanout"`
	Coalesced     uint64 `json:"singleflight_coalesced"`
	FallbackLocal uint64 `json:"fallback_local"`
	HopTerminated uint64 `json:"hop_terminated"`
	Ejections     uint64 `json:"ring_ejections"`
	Rejoins       uint64 `json:"ring_rejoins"`
}

// StatsView assembles the node's cluster view; key, when non-empty, adds
// its resolved owner.
func (c *Cluster) StatsView(key string) View {
	v := View{
		Self:          c.cfg.Self,
		Seed:          c.cfg.Seed,
		VNodes:        c.cfg.VNodes,
		Alive:         c.ring.AliveCount(),
		Proxied:       c.mProxied.Value(),
		BatchFanout:   c.mFanout.Value(),
		Coalesced:     c.mCoal.Value(),
		FallbackLocal: c.mFallbk.Value(),
		HopTerminated: c.mLoops.Value(),
		Ejections:     c.mEjects.Value(),
		Rejoins:       c.mRejoins.Value(),
	}
	for _, m := range c.ring.Members() {
		mv := MemberView{ID: m, Self: m == c.cfg.Self, Alive: c.ring.IsAlive(m)}
		if p := c.peers[m]; p != nil {
			mv.BreakerOpen = p.BreakerOpen()
		}
		v.Members = append(v.Members, mv)
	}
	if key != "" {
		if owner, ok := c.ring.Owner(key); ok {
			v.Owner = owner
		}
	}
	return v
}
