package cluster

import "sync"

// flightCall is one in-flight fetch shared by every coalesced caller.
type flightCall struct {
	wg  sync.WaitGroup
	val *PeerResponse
	err error
}

// Flight is the singleflight fill table: concurrent fetches for one key
// collapse into a single execution of the fetch function, with every
// caller receiving the shared result. The zero value is ready to use.
//
// Unlike a cache, the table holds a key only while its fetch is running —
// the moment the fetch returns, the entry is dropped, so a later miss
// fetches fresh.
type Flight struct {
	mu    sync.Mutex
	calls map[string]*flightCall
}

// Do runs fn for key, unless a fetch for key is already in flight, in
// which case it waits for that fetch and returns its result. shared
// reports whether the result was produced by another caller's fetch.
//
// The returned *PeerResponse may be shared across callers; treat it as
// read-only.
func (f *Flight) Do(key string, fn func() (*PeerResponse, error)) (v *PeerResponse, err error, shared bool) {
	f.mu.Lock()
	if f.calls == nil {
		f.calls = make(map[string]*flightCall)
	}
	if c, ok := f.calls[key]; ok {
		f.mu.Unlock()
		c.wg.Wait()
		return c.val, c.err, true
	}
	c := &flightCall{}
	c.wg.Add(1)
	f.calls[key] = c
	f.mu.Unlock()

	c.val, c.err = fn()
	c.wg.Done()

	f.mu.Lock()
	delete(f.calls, key)
	f.mu.Unlock()
	return c.val, c.err, false
}

// InFlight returns the number of fetches currently running (tests and
// /stats).
func (f *Flight) InFlight() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.calls)
}
