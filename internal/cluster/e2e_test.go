package cluster_test

// The 3-node end-to-end acceptance tests: real kvservers wired into one
// ring, driven by the real load generator. This lives in an external
// test package because kvserver imports cluster; as cluster_test it can
// import both without a cycle.

import (
	"context"
	"encoding/json"
	"net"
	"net/http"
	"testing"
	"time"

	"pdp/internal/cluster"
	"pdp/internal/kvcache"
	"pdp/internal/kvserver"
	"pdp/internal/loadgen"
	"pdp/internal/telemetry"
	"pdp/internal/workload"
)

// e2eMix is a zipf+scan service mix scaled down so the test runs in
// seconds: a reused hot set under periodic scan bursts — the traffic
// where owner-routing (one coherent PDP view per key) should match a
// single cache of equal total capacity.
var e2eMix = workload.ServiceConfig{
	Keys: 4000, ZipfS: 0.99, PutFrac: 0.05, ScanEvery: 200, ScanLen: 300,
}

type e2eNode struct {
	srv  *kvserver.Server
	cl   *cluster.Cluster
	base string
}

// bootCluster starts n nodes, each with per-node set count sets — total
// capacity scales with n*sets.
func bootCluster(t *testing.T, n, sets int, probeEvery time.Duration, ejectAfter int) []*e2eNode {
	t.Helper()
	lns := make([]net.Listener, n)
	urls := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		urls[i] = "http://" + ln.Addr().String()
	}
	nodes := make([]*e2eNode, n)
	for i := range nodes {
		reg := telemetry.NewRegistry()
		cache, err := kvcache.New(kvcache.Config{
			Shards: 2, Sets: sets, Ways: 4, Registry: reg,
		})
		if err != nil {
			t.Fatal(err)
		}
		cl, err := cluster.New(cluster.Config{
			Self:         urls[i],
			Peers:        urls,
			ProbeEvery:   probeEvery,
			ProbeTimeout: 250 * time.Millisecond,
			EjectAfter:   ejectAfter,
			RejoinAfter:  2,
			Registry:     reg,
		})
		if err != nil {
			t.Fatal(err)
		}
		srv, err := kvserver.New(cache, kvserver.Config{
			Addr: urls[i], Listener: lns[i], Cluster: cl, Registry: reg,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := srv.Start(context.Background()); err != nil {
			t.Fatal(err)
		}
		nodes[i] = &e2eNode{srv: srv, cl: cl, base: urls[i]}
	}
	t.Cleanup(func() {
		for _, nd := range nodes {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			nd.srv.Shutdown(ctx)
			cancel()
		}
	})
	return nodes
}

func drive(t *testing.T, targets []string, workers, ops int) loadgen.Result {
	t.Helper()
	res, err := loadgen.Run(context.Background(), loadgen.Config{
		Targets:   targets,
		Mix:       e2eMix,
		Workers:   workers,
		Ops:       ops,
		Seed:      42,
		RetryBase: time.Millisecond,
		RetryMax:  10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestE2EScaleOutHitRate: three nodes of capacity C/3 each, driven
// through owner routing, reach an aggregate hit rate within 10% of a
// single node of capacity C on the same seeded zipf+scan mix.
func TestE2EScaleOutHitRate(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second e2e")
	}
	const perNodeSets, workers, ops = 64, 4, 8000

	single := bootCluster(t, 1, 3*perNodeSets, time.Hour, 3)
	resSingle := drive(t, []string{single[0].base, single[0].base}, workers, ops)

	nodes := bootCluster(t, 3, perNodeSets, time.Hour, 3)
	targets := []string{nodes[0].base, nodes[1].base, nodes[2].base}
	resCluster := drive(t, targets, workers, ops)

	if resSingle.HitRate() == 0 || resCluster.HitRate() == 0 {
		t.Fatalf("degenerate run: single=%.4f cluster=%.4f", resSingle.HitRate(), resCluster.HitRate())
	}
	rel := (resSingle.HitRate() - resCluster.HitRate()) / resSingle.HitRate()
	t.Logf("hit rate: single(C)=%.4f cluster(3x C/3)=%.4f rel gap=%.3f", resSingle.HitRate(), resCluster.HitRate(), rel)
	if rel > 0.10 {
		t.Fatalf("cluster hit rate %.4f more than 10%% below single-node %.4f", resCluster.HitRate(), resSingle.HitRate())
	}
	if resCluster.Availability() < 0.99 {
		t.Fatalf("healthy-cluster availability %.4f < 0.99", resCluster.Availability())
	}

	// Owner routing actually engaged: some traffic was proxied, and the
	// singleflight table coalesced at least part of it.
	var proxied uint64
	for _, nd := range nodes {
		proxied += nd.cl.StatsView("").Proxied
	}
	if proxied == 0 {
		t.Fatal("no request was proxied; ownership routing inert")
	}
}

// TestE2EKillNodeAvailability: killing one node mid-tier keeps
// availability >= 99% when driving the survivors — local fallback
// bridges the detection window, then ejection reroutes the dead node's
// keys — and the survivors' rings converge to alive==2 without loops.
func TestE2EKillNodeAvailability(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second e2e")
	}
	nodes := bootCluster(t, 3, 64, 100*time.Millisecond, 2)
	targets := []string{nodes[0].base, nodes[1].base, nodes[2].base}

	// Warm the tier, then kill node 2 hard.
	drive(t, targets, 2, 2000)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	nodes[2].srv.Shutdown(ctx)
	cancel()

	// Drive the survivors while their probes discover the death.
	res := drive(t, targets[:2], 4, 4000)
	if res.Availability() < 0.99 {
		t.Fatalf("availability %.4f < 0.99 after killing one node (errors=%d timeouts=%d transport=%d)",
			res.Availability(), res.Errors, res.Timeouts, res.Transport)
	}

	// Both survivors converge on ejecting the dead node.
	deadline := time.Now().Add(10 * time.Second)
	for _, nd := range nodes[:2] {
		for {
			if v := nd.cl.StatsView(""); v.Alive == 2 {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("node %s never ejected the dead member", nd.base)
			}
			time.Sleep(20 * time.Millisecond)
		}
	}

	// And they agree on every rerouted owner — and serve it: a GET for a
	// key the dead node owned answers from a survivor (possibly a miss),
	// never an error or a loop.
	for _, key := range []string{"a", "b", "c", "rerouted-1", "rerouted-2"} {
		var owners []string
		for _, nd := range nodes[:2] {
			resp, err := http.Get(nd.base + "/cluster/ring?key=" + key)
			if err != nil {
				t.Fatal(err)
			}
			var v cluster.View
			if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			owners = append(owners, v.Owner)
		}
		if owners[0] != owners[1] {
			t.Fatalf("survivors disagree on owner of %q: %v", key, owners)
		}
		if owners[0] == nodes[2].base {
			t.Fatalf("key %q still resolves to the dead node", key)
		}
		resp, err := http.Get(nodes[0].base + "/kv/" + key)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusNotFound {
			t.Fatalf("GET %q post-ejection: %s", key, resp.Status)
		}
	}
}
