package cluster

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"pdp/internal/telemetry"
)

// HopHeader marks a request already forwarded once by a cluster node.
// A node receiving it serves locally no matter what its ring says, so
// two nodes with momentarily divergent ring views (one has ejected a
// member the other still trusts) bounce a request at most once instead
// of proxying it in a cycle.
const HopHeader = "X-Cluster-Hop"

// ErrPeerDown reports a peer whose breaker is open: recent requests to
// it failed, so callers should fall back (serve locally) instead of
// paying another connect timeout.
var ErrPeerDown = errors.New("cluster: peer breaker open")

// breaker is a per-peer circuit breaker in the servefault style:
// consecutive failures past a threshold open it; after a cooldown one
// probe request is let through (half-open), and its outcome closes or
// re-opens the circuit.
type breaker struct {
	limit    int
	cooldown time.Duration

	mu      sync.Mutex
	fails   int
	open    bool
	until   time.Time
	probing bool
}

// allow reports whether a request may proceed. In the open state it
// admits exactly one probe per cooldown window.
func (b *breaker) allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.open {
		return true
	}
	if b.probing || time.Now().Before(b.until) {
		return false
	}
	b.probing = true
	return true
}

func (b *breaker) success() {
	b.mu.Lock()
	b.fails = 0
	b.open = false
	b.probing = false
	b.mu.Unlock()
}

func (b *breaker) failure() {
	b.mu.Lock()
	b.fails++
	b.probing = false
	if b.fails >= b.limit {
		b.open = true
		b.until = time.Now().Add(b.cooldown)
	}
	b.mu.Unlock()
}

func (b *breaker) isOpen() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.open
}

// PeerResponse is one peer exchange's result, buffered so a singleflight
// fetch can hand the same response to every coalesced caller.
type PeerResponse struct {
	// Status is the peer's HTTP status code.
	Status int
	// XCache is the peer's X-Cache header (hit | miss | deny).
	XCache string
	// Body is the full response body (the value on 200).
	Body []byte
}

// Peer is the client side of one cluster member: a pooled HTTP client,
// the per-peer breaker, and per-peer labeled telemetry.
type Peer struct {
	id   string // node id == base URL, e.g. "http://127.0.0.1:8081"
	hc   *http.Client
	br   *breaker
	maxB int64

	mReqs *telemetry.Counter
	mErrs *telemetry.Counter
	hLat  *telemetry.Histogram
	gOpen *telemetry.Gauge
}

// newPeer builds the client for one member. The http.Client shares the
// cluster's pooled transport; timeout is the per-exchange cap (the
// request ctx may shorten it further).
func newPeer(id string, tr *http.Transport, timeout time.Duration, maxBody int64, reg *telemetry.Registry) *Peer {
	lbl := telemetry.Label("peer", id)
	return &Peer{
		id:   id,
		hc:   &http.Client{Transport: tr, Timeout: timeout},
		br:   &breaker{limit: 3, cooldown: 500 * time.Millisecond},
		maxB: maxBody,

		mReqs: reg.Counter("cluster.peer_requests{" + lbl + "}"),
		mErrs: reg.Counter("cluster.peer_errors{" + lbl + "}"),
		hLat:  reg.Histogram("cluster.peer_latency_ns{" + lbl + "}"),
		gOpen: reg.Gauge("cluster.peer_breaker_open{" + lbl + "}"),
	}
}

// ID returns the peer's node id.
func (p *Peer) ID() string { return p.id }

// BreakerOpen reports the breaker state (tests and /stats).
func (p *Peer) BreakerOpen() bool { return p.br.isOpen() }

// do issues one exchange against the peer's /kv/ route, buffering the
// response. Transport failures and 5xx answers count against the
// breaker; orderly answers (2xx/404, and 503 sheds — the peer is alive,
// just busy) reset it.
func (p *Peer) do(ctx context.Context, method, key string, body []byte) (*PeerResponse, error) {
	if !p.br.allow() {
		p.gOpen.Set(1)
		return nil, ErrPeerDown
	}
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, p.id+"/kv/"+key, rd)
	if err != nil {
		p.br.failure()
		return nil, err
	}
	req.Header.Set(HopHeader, "1")
	p.mReqs.Inc()
	t0 := time.Now()
	resp, err := p.hc.Do(req)
	if err != nil {
		p.mErrs.Inc()
		p.br.failure()
		p.gOpen.Set(boolGauge(p.br.isOpen()))
		return nil, err
	}
	buf, err := io.ReadAll(io.LimitReader(resp.Body, p.maxB+1))
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	p.hLat.Observe(uint64(time.Since(t0).Nanoseconds()))
	if err != nil {
		p.mErrs.Inc()
		p.br.failure()
		p.gOpen.Set(boolGauge(p.br.isOpen()))
		return nil, err
	}
	if int64(len(buf)) > p.maxB {
		p.mErrs.Inc()
		p.br.failure()
		return nil, fmt.Errorf("cluster: peer %s response exceeds %d bytes", p.id, p.maxB)
	}
	if resp.StatusCode >= 500 && resp.StatusCode != http.StatusServiceUnavailable {
		// A 5xx (other than an orderly shed) is the peer misbehaving.
		p.mErrs.Inc()
		p.br.failure()
	} else {
		p.br.success()
	}
	p.gOpen.Set(boolGauge(p.br.isOpen()))
	return &PeerResponse{
		Status: resp.StatusCode,
		XCache: resp.Header.Get("X-Cache"),
		Body:   buf,
	}, nil
}

// doBatch posts one JSON-encoded sub-batch to the peer's /batch route —
// the owner-split fan-out path. It shares do's breaker and telemetry
// bookkeeping; maxResp bounds the response body (a batch answer carries
// up to one value per op, so the caller scales the cap by the sub-batch
// size). The hop header caps forwarding exactly as on /kv/: the peer
// serves the whole sub-batch locally.
func (p *Peer) doBatch(ctx context.Context, body []byte, maxResp int64) (*PeerResponse, error) {
	if !p.br.allow() {
		p.gOpen.Set(1)
		return nil, ErrPeerDown
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, p.id+"/batch", bytes.NewReader(body))
	if err != nil {
		p.br.failure()
		return nil, err
	}
	req.Header.Set(HopHeader, "1")
	req.Header.Set("Content-Type", "application/json")
	p.mReqs.Inc()
	t0 := time.Now()
	resp, err := p.hc.Do(req)
	if err != nil {
		p.mErrs.Inc()
		p.br.failure()
		p.gOpen.Set(boolGauge(p.br.isOpen()))
		return nil, err
	}
	buf, err := io.ReadAll(io.LimitReader(resp.Body, maxResp+1))
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	p.hLat.Observe(uint64(time.Since(t0).Nanoseconds()))
	if err != nil {
		p.mErrs.Inc()
		p.br.failure()
		p.gOpen.Set(boolGauge(p.br.isOpen()))
		return nil, err
	}
	if int64(len(buf)) > maxResp {
		p.mErrs.Inc()
		p.br.failure()
		return nil, fmt.Errorf("cluster: peer %s batch response exceeds %d bytes", p.id, maxResp)
	}
	if resp.StatusCode >= 500 && resp.StatusCode != http.StatusServiceUnavailable {
		p.mErrs.Inc()
		p.br.failure()
	} else {
		p.br.success()
	}
	p.gOpen.Set(boolGauge(p.br.isOpen()))
	return &PeerResponse{
		Status: resp.StatusCode,
		XCache: resp.Header.Get("X-Cache"),
		Body:   buf,
	}, nil
}

func boolGauge(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
