package cluster

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pdp/internal/telemetry"
)

// TestFlightCoalesces: N concurrent Do calls for one key run the fetch
// exactly once and share its result; a later call after completion runs
// a fresh fetch (the table is not a cache).
func TestFlightCoalesces(t *testing.T) {
	var f Flight
	var calls atomic.Int64
	release := make(chan struct{})
	const N = 16

	var wg sync.WaitGroup
	var sharedCount atomic.Int64
	for i := 0; i < N; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, err, shared := f.Do("k", func() (*PeerResponse, error) {
				calls.Add(1)
				<-release
				return &PeerResponse{Status: 200, Body: []byte("v")}, nil
			})
			if err != nil || v.Status != 200 || string(v.Body) != "v" {
				t.Errorf("Do: v=%v err=%v", v, err)
			}
			if shared {
				sharedCount.Add(1)
			}
		}()
	}
	// Wait until the one fetch is in flight, then let it finish.
	for f.InFlight() == 0 {
		time.Sleep(time.Millisecond)
	}
	// Give the other goroutines a beat to pile onto the same call.
	time.Sleep(20 * time.Millisecond)
	close(release)
	wg.Wait()

	if got := calls.Load(); got != 1 {
		t.Fatalf("fetch ran %d times for %d concurrent misses, want 1", got, N)
	}
	if got := sharedCount.Load(); got != N-1 {
		t.Fatalf("%d callers saw shared=true, want %d", got, N-1)
	}

	// After completion the key is gone: the next Do fetches again.
	_, _, shared := f.Do("k", func() (*PeerResponse, error) {
		calls.Add(1)
		return &PeerResponse{Status: 404}, nil
	})
	if shared || calls.Load() != 2 {
		t.Fatalf("post-completion Do: shared=%v calls=%d, want fresh fetch", shared, calls.Load())
	}
}

// TestFlightDistinctKeys: different keys never coalesce.
func TestFlightDistinctKeys(t *testing.T) {
	var f Flight
	var calls atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			f.Do(fmt.Sprintf("k%d", i), func() (*PeerResponse, error) {
				calls.Add(1)
				return &PeerResponse{}, nil
			})
		}(i)
	}
	wg.Wait()
	if calls.Load() != 8 {
		t.Fatalf("distinct keys coalesced: %d calls, want 8", calls.Load())
	}
}

// TestPeerBreaker: consecutive transport failures open the breaker
// (requests fail fast with ErrPeerDown), the cooldown admits one probe,
// and a success closes it again.
func TestPeerBreaker(t *testing.T) {
	var failing atomic.Bool
	failing.Store(true)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if failing.Load() {
			// Hijack-and-drop produces a transport-level failure.
			hj := w.(http.Hijacker)
			conn, _, _ := hj.Hijack()
			conn.Close()
			return
		}
		w.Write([]byte("ok"))
	}))
	defer srv.Close()

	tr := &http.Transport{}
	defer tr.CloseIdleConnections()
	p := newPeer(srv.URL, tr, time.Second, 1<<20, telemetry.NewRegistry())
	p.br.cooldown = 50 * time.Millisecond

	ctx := context.Background()
	for i := 0; i < 3; i++ {
		if _, err := p.do(ctx, http.MethodGet, "k", nil); err == nil {
			t.Fatal("dropped connection reported success")
		}
	}
	if !p.BreakerOpen() {
		t.Fatal("breaker still closed after 3 consecutive failures")
	}
	if _, err := p.do(ctx, http.MethodGet, "k", nil); err != ErrPeerDown {
		t.Fatalf("open breaker let a request through: %v", err)
	}

	// After the cooldown, one probe goes through; with the peer healthy
	// again it closes the breaker.
	failing.Store(false)
	time.Sleep(60 * time.Millisecond)
	if _, err := p.do(ctx, http.MethodGet, "k", nil); err != nil {
		t.Fatalf("half-open probe failed: %v", err)
	}
	if p.BreakerOpen() {
		t.Fatal("breaker still open after successful probe")
	}
}

// fakePeer is a controllable cluster member: a real HTTP server whose
// /healthz can be flipped and whose /kv/ GETs are counted.
type fakePeer struct {
	srv     *httptest.Server
	healthy atomic.Bool
	gets    atomic.Int64
	delay   time.Duration
	value   []byte
}

func newFakePeer(t *testing.T, delay time.Duration) *fakePeer {
	t.Helper()
	f := &fakePeer{delay: delay, value: []byte("peer-value")}
	f.healthy.Store(true)
	f.srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch {
		case r.URL.Path == "/healthz":
			if !f.healthy.Load() {
				http.Error(w, "down", http.StatusServiceUnavailable)
				return
			}
			w.Write([]byte("ok\n"))
		case r.Method == http.MethodGet:
			f.gets.Add(1)
			time.Sleep(f.delay)
			w.Header().Set("X-Cache", "hit")
			w.Write(f.value)
		default:
			w.WriteHeader(http.StatusNoContent)
		}
	}))
	t.Cleanup(f.srv.Close)
	return f
}

// ownedBy hunts for a key the ring assigns to the wanted member.
func ownedBy(t *testing.T, r *Ring, want string) string {
	t.Helper()
	for i := 0; i < 100000; i++ {
		k := fmt.Sprintf("key-%d", i)
		if o, _ := r.Owner(k); o == want {
			return k
		}
	}
	t.Fatalf("no key owned by %s in 100k tries", want)
	return ""
}

// TestFetchGetSingleflight is the acceptance test for coalesced fills:
// N concurrent misses for one non-owned key cost exactly one peer fetch.
func TestFetchGetSingleflight(t *testing.T) {
	peer := newFakePeer(t, 30*time.Millisecond)
	self := "http://127.0.0.1:1" // never dialed: everything routes to the fake
	c, err := New(Config{
		Self:     self,
		Peers:    []string{self, peer.srv.URL},
		Registry: telemetry.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	key := ownedBy(t, c.Ring(), peer.srv.URL)

	const N = 24
	var wg sync.WaitGroup
	errs := make(chan error, N)
	for i := 0; i < N; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := c.FetchGet(context.Background(), peer.srv.URL, key)
			if err != nil {
				errs <- err
				return
			}
			if resp.Status != http.StatusOK || string(resp.Body) != "peer-value" {
				errs <- fmt.Errorf("bad response %d %q", resp.Status, resp.Body)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := peer.gets.Load(); got != 1 {
		t.Fatalf("%d concurrent misses cost %d peer fetches, want exactly 1", N, got)
	}
	v := c.StatsView("")
	if v.Coalesced != N-1 {
		t.Fatalf("coalesced counter %d, want %d", v.Coalesced, N-1)
	}
}

// TestProbeEjectRejoin: the probe loop ejects a peer after EjectAfter
// consecutive failed rounds and rejoins it after RejoinAfter successes;
// ownership follows.
func TestProbeEjectRejoin(t *testing.T) {
	peer := newFakePeer(t, 0)
	self := "http://127.0.0.1:1"
	reg := telemetry.NewRegistry()
	journal := telemetry.NewJournal(64)
	c, err := New(Config{
		Self:         self,
		Peers:        []string{self, peer.srv.URL},
		ProbeEvery:   20 * time.Millisecond,
		ProbeTimeout: 100 * time.Millisecond,
		EjectAfter:   2,
		RejoinAfter:  2,
		Registry:     reg,
		Journal:      journal,
	})
	if err != nil {
		t.Fatal(err)
	}
	key := ownedBy(t, c.Ring(), peer.srv.URL)
	c.Start(context.Background())
	defer c.Stop()

	waitFor := func(desc string, cond func() bool) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			if cond() {
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
		t.Fatalf("timeout waiting for %s", desc)
	}

	// Healthy: the peer stays in the ring.
	time.Sleep(100 * time.Millisecond)
	if !c.Ring().IsAlive(peer.srv.URL) {
		t.Fatal("healthy peer ejected")
	}

	// Fail its health checks: after EjectAfter rounds it leaves the ring
	// and its keys land on the survivor (self).
	peer.healthy.Store(false)
	waitFor("ejection", func() bool { return !c.Ring().IsAlive(peer.srv.URL) })
	if o, _, ok := c.Owner(key); !ok || o != self {
		t.Fatalf("after ejection key owner = %q, want self", o)
	}

	// Recover: it rejoins and gets its keys back.
	peer.healthy.Store(true)
	waitFor("rejoin", func() bool { return c.Ring().IsAlive(peer.srv.URL) })
	if o, _, _ := c.Owner(key); o != peer.srv.URL {
		t.Fatalf("after rejoin key owner = %q, want peer", o)
	}

	v := c.StatsView("")
	if v.Ejections < 1 || v.Rejoins < 1 {
		t.Fatalf("transition counters: ejections=%d rejoins=%d, want >= 1 each", v.Ejections, v.Rejoins)
	}
	if journal.CountKind(telemetry.KindMembership) < 2 {
		t.Fatalf("membership journal records: %d, want >= 2", journal.CountKind(telemetry.KindMembership))
	}
}

// TestClusterValidation pins the config error paths.
func TestClusterValidation(t *testing.T) {
	if _, err := New(Config{Peers: []string{"a"}}); err == nil {
		t.Fatal("missing Self accepted")
	}
	if _, err := New(Config{Self: "a"}); err == nil {
		t.Fatal("missing Peers accepted")
	}
	if _, err := New(Config{Self: "c", Peers: []string{"a", "b"}}); err == nil {
		t.Fatal("Self outside Peers accepted")
	}
	if _, err := New(Config{Self: "a", Peers: []string{"a"}, ProbeEvery: -time.Second}); err == nil {
		t.Fatal("negative ProbeEvery accepted")
	}
}
