// Package cluster turns a set of pdpcached nodes into one PDP cache
// tier: a deterministic consistent-hash ring (virtual nodes, seeded
// placement) maps every key to exactly one owner node, a
// connection-pooled peer client with per-peer breakers forwards
// non-owned requests, a singleflight table coalesces concurrent fills
// for one key into a single peer fetch, and a health-probe loop ejects
// dead members from the ring (and rejoins recovered ones) so keys
// rebalance onto survivors automatically.
//
// The ring's placement depends only on (seed, member set, vnodes) —
// never on join order or local state — so every node that shares the
// static member list computes the identical ring and the tier needs no
// coordination service. Liveness is the one piece of local knowledge:
// each node probes its peers and skips dead owners when routing, which
// converges cluster-wide within a probe period or two.
package cluster

import (
	"fmt"
	"sort"
	"sync"
)

// point is one virtual node on the ring.
type point struct {
	hash uint64
	node int // index into Ring.members
}

// Ring is a consistent-hash ring over a static member set with per-node
// virtual points and a liveness overlay. Placement (the point positions)
// is immutable after construction; Eject and Rejoin only flip liveness,
// so a recovered member gets exactly its original keys back.
type Ring struct {
	seed    uint64
	vnodes  int
	members []string // sorted, deduped
	points  []point  // sorted by hash

	mu    sync.RWMutex
	alive []bool
	nup   int
}

// fnv1a is the 64-bit FNV-1a hash over s, seeded by continuing from h
// (pass fnvOffset to start fresh).
const fnvOffset uint64 = 14695981039346656037
const fnvPrime uint64 = 1099511628211

func fnv1a(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime
	}
	return h
}

// mix64 is the splitmix64 finalizer: FNV's avalanche on short inputs is
// weak, and ring balance depends on point hashes looking uniform.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// keyHash positions a key on the ring.
func keyHash(key string) uint64 {
	return mix64(fnv1a(fnvOffset, key))
}

// pointHash positions virtual node r of member m on a ring with the
// given seed.
func pointHash(seed uint64, member string, r int) uint64 {
	h := fnv1a(fnvOffset, member)
	h = h ^ mix64(seed+uint64(r)*0x9E3779B97F4A7C15)
	return mix64(h)
}

// NewRing builds the ring for the given member set. Members are deduped
// and sorted first, so the placement is identical on every node no
// matter the order its flag listed them in. All members start alive.
func NewRing(seed uint64, vnodes int, members []string) (*Ring, error) {
	if vnodes <= 0 {
		vnodes = 64
	}
	seen := map[string]bool{}
	var ms []string
	for _, m := range members {
		if m == "" {
			return nil, fmt.Errorf("cluster: empty member name")
		}
		if !seen[m] {
			seen[m] = true
			ms = append(ms, m)
		}
	}
	if len(ms) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one member")
	}
	sort.Strings(ms)
	r := &Ring{
		seed:    seed,
		vnodes:  vnodes,
		members: ms,
		alive:   make([]bool, len(ms)),
		nup:     len(ms),
	}
	for i := range r.alive {
		r.alive[i] = true
	}
	r.points = make([]point, 0, len(ms)*vnodes)
	for i, m := range ms {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, point{hash: pointHash(seed, m, v), node: i})
		}
	}
	// Ties broken by member index (itself deterministic: members are
	// sorted) so a hash collision between two nodes' points cannot make
	// two replicas of the ring disagree.
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		return r.points[a].node < r.points[b].node
	})
	return r, nil
}

// Members returns the full (sorted) member set, dead or alive.
func (r *Ring) Members() []string {
	out := make([]string, len(r.members))
	copy(out, r.members)
	return out
}

// Seed and VNodes return the placement parameters.
func (r *Ring) Seed() uint64 { return r.seed }
func (r *Ring) VNodes() int  { return r.vnodes }

// index returns the member's slot, -1 if unknown.
func (r *Ring) index(member string) int {
	i := sort.SearchStrings(r.members, member)
	if i < len(r.members) && r.members[i] == member {
		return i
	}
	return -1
}

// Owner returns the alive member owning key: the first alive node at or
// clockwise after the key's position. ok is false when every member is
// dead (callers should then serve locally rather than fail).
func (r *Ring) Owner(key string) (string, bool) {
	return r.ownerAt(keyHash(key))
}

func (r *Ring) ownerAt(h uint64) (string, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if r.nup == 0 {
		return "", false
	}
	n := len(r.points)
	start := sort.Search(n, func(i int) bool { return r.points[i].hash >= h })
	for i := 0; i < n; i++ {
		p := r.points[(start+i)%n]
		if r.alive[p.node] {
			return r.members[p.node], true
		}
	}
	return "", false
}

// IsAlive reports the liveness overlay for member (false for unknowns).
func (r *Ring) IsAlive(member string) bool {
	i := r.index(member)
	if i < 0 {
		return false
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.alive[i]
}

// Alive returns the currently-live members, sorted.
func (r *Ring) Alive() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, r.nup)
	for i, m := range r.members {
		if r.alive[i] {
			out = append(out, m)
		}
	}
	return out
}

// AliveCount returns the number of live members.
func (r *Ring) AliveCount() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.nup
}

// Eject marks a member dead, rerouting its keys to the next alive nodes
// clockwise. It reports whether the state changed.
func (r *Ring) Eject(member string) bool { return r.setAlive(member, false) }

// Rejoin marks a member alive again; because placement never changed, it
// receives exactly the keys it owned before ejection.
func (r *Ring) Rejoin(member string) bool { return r.setAlive(member, true) }

func (r *Ring) setAlive(member string, up bool) bool {
	i := r.index(member)
	if i < 0 {
		return false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.alive[i] == up {
		return false
	}
	r.alive[i] = up
	if up {
		r.nup++
	} else {
		r.nup--
	}
	return true
}
