// Package metrics implements the multi-programmed performance metrics of
// the PDP paper's multi-core evaluation (Sec. 5): weighted IPC, throughput
// and the harmonic mean of normalized IPCs (fairness), plus small helpers.
package metrics

import (
	"fmt"
	"math"
)

// WeightedIPC returns sum_i IPC_i / IPCSingle_i (the paper's W).
func WeightedIPC(ipc, single []float64) (float64, error) {
	if err := checkPair(ipc, single); err != nil {
		return 0, err
	}
	w := 0.0
	for i := range ipc {
		if single[i] <= 0 {
			return 0, fmt.Errorf("metrics: non-positive single-thread IPC at %d", i)
		}
		w += ipc[i] / single[i]
	}
	return w, nil
}

// Throughput returns sum_i IPC_i (the paper's T).
func Throughput(ipc []float64) float64 {
	t := 0.0
	for _, v := range ipc {
		t += v
	}
	return t
}

// HarmonicMeanNorm returns N / sum_i (IPCSingle_i / IPC_i) (the paper's H,
// a balance of performance and fairness).
func HarmonicMeanNorm(ipc, single []float64) (float64, error) {
	if err := checkPair(ipc, single); err != nil {
		return 0, err
	}
	s := 0.0
	for i := range ipc {
		if ipc[i] <= 0 {
			return 0, fmt.Errorf("metrics: non-positive IPC at %d", i)
		}
		s += single[i] / ipc[i]
	}
	return float64(len(ipc)) / s, nil
}

func checkPair(a, b []float64) error {
	if len(a) == 0 || len(a) != len(b) {
		return fmt.Errorf("metrics: mismatched slices (%d vs %d)", len(a), len(b))
	}
	return nil
}

// GeoMean returns the geometric mean of positive values.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

// Mean returns the arithmetic mean.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Improvement returns (x/base - 1): the relative gain of x over base.
func Improvement(x, base float64) float64 {
	if base == 0 {
		return 0
	}
	return x/base - 1
}

// Reduction returns (1 - x/base): e.g. miss reduction relative to a base.
func Reduction(x, base float64) float64 {
	if base == 0 {
		return 0
	}
	return 1 - x/base
}
