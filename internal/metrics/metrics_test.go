package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func TestWeightedIPC(t *testing.T) {
	w, err := WeightedIPC([]float64{1, 2}, []float64{2, 2})
	if err != nil || math.Abs(w-1.5) > 1e-12 {
		t.Fatalf("W = %v, %v; want 1.5", w, err)
	}
	if _, err := WeightedIPC([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("mismatched slices must error")
	}
	if _, err := WeightedIPC([]float64{1}, []float64{0}); err == nil {
		t.Fatal("zero single-thread IPC must error")
	}
}

func TestThroughput(t *testing.T) {
	if got := Throughput([]float64{1, 2, 3}); got != 6 {
		t.Fatalf("T = %v, want 6", got)
	}
}

func TestHarmonicMeanNorm(t *testing.T) {
	// Equal slowdowns: H equals the common ratio.
	h, err := HarmonicMeanNorm([]float64{1, 1}, []float64{2, 2})
	if err != nil || math.Abs(h-0.5) > 1e-12 {
		t.Fatalf("H = %v, %v; want 0.5", h, err)
	}
	if _, err := HarmonicMeanNorm([]float64{0}, []float64{1}); err == nil {
		t.Fatal("zero IPC must error")
	}
}

func TestHarmonicPenalizesImbalance(t *testing.T) {
	single := []float64{1, 1}
	balanced, _ := HarmonicMeanNorm([]float64{0.5, 0.5}, single)
	skewed, _ := HarmonicMeanNorm([]float64{0.9, 0.1}, single)
	if skewed >= balanced {
		t.Fatalf("H must penalize unfairness: balanced %v, skewed %v", balanced, skewed)
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{1, 4}); math.Abs(got-2) > 1e-12 {
		t.Fatalf("GeoMean = %v, want 2", got)
	}
	if GeoMean(nil) != 0 || GeoMean([]float64{1, -1}) != 0 {
		t.Fatal("degenerate inputs must give 0")
	}
}

func TestMean(t *testing.T) {
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Fatalf("Mean = %v, want 2", got)
	}
	if Mean(nil) != 0 {
		t.Fatal("empty mean must be 0")
	}
}

func TestImprovementReduction(t *testing.T) {
	if got := Improvement(1.2, 1.0); math.Abs(got-0.2) > 1e-12 {
		t.Fatalf("Improvement = %v", got)
	}
	if got := Reduction(80, 100); math.Abs(got-0.2) > 1e-12 {
		t.Fatalf("Reduction = %v", got)
	}
	if Improvement(1, 0) != 0 || Reduction(1, 0) != 0 {
		t.Fatal("zero base must give 0")
	}
}

func TestWeightedIPCBounds(t *testing.T) {
	// Property: W is between N*min(ratio) and N*max(ratio).
	f := func(a, b uint8) bool {
		ipc := []float64{float64(a)/64 + 0.1, float64(b)/64 + 0.1}
		single := []float64{1, 1}
		w, err := WeightedIPC(ipc, single)
		if err != nil {
			return false
		}
		lo := math.Min(ipc[0], ipc[1])
		hi := math.Max(ipc[0], ipc[1])
		return w >= 2*lo-1e-9 && w <= 2*hi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
