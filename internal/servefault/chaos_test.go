// Package servefault_test holds the seeded chaos campaign: a real
// pdpcached-shaped server hammered by concurrent clients while the
// injector panics recomputes, flips RDD counters and spikes shard
// latency. The invariants under fire: no request is ever answered with
// an unexplained 5xx (only 503 shed / 504 deadline are orderly), the
// breaker trips into degraded LRU serving instead of failing, and once
// the chaos window closes, clean recomputes re-arm every shard.
package servefault_test

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pdp/internal/faultinject"
	"pdp/internal/kvcache"
	"pdp/internal/kvserver"
	"pdp/internal/servefault"
	"pdp/internal/telemetry"
)

func startChaosServer(t *testing.T, spec string, shards int) (*kvcache.Cache, string, *faultinject.Reporter) {
	t.Helper()
	parsed, err := faultinject.Parse(spec)
	if err != nil {
		t.Fatal(err)
	}
	journal := telemetry.NewJournal(64)
	rep := faultinject.NewReporter(journal)
	inj := servefault.NewInjector(parsed, shards, rep)
	if inj == nil {
		t.Fatalf("spec %q did not enable serving-path injection", spec)
	}
	cache, err := kvcache.New(kvcache.Config{
		Policy:           kvcache.PolicyPDP,
		Shards:           shards,
		Sets:             16,
		Ways:             4,
		RecomputeEvery:   512,
		MinSamples:       8,
		RearmAfter:       2,
		RecomputeTimeout: time.Second,
		Chaos:            inj,
		Journal:          journal,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := kvserver.New(cache, kvserver.Config{
		Addr:            "127.0.0.1:0",
		MaxInflight:     64,
		DefaultDeadline: 2 * time.Second,
		Journal:         journal,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	return cache, "http://" + srv.Addr(), rep
}

func TestChaosCampaign(t *testing.T) {
	const (
		goroutines = 16
		opsEach    = 500
		shards     = 4
	)
	// recompute.panic=0.9 means nearly every recompute inside the chaos
	// window dies; until=4000 closes the window well before the ~16k
	// accesses the campaign generates, so the tail of the run is clean
	// and the breaker can heal.
	cache, base, rep := startChaosServer(t,
		"recompute.panic=0.9,counter.flip=0.02,latency.spike=0.002,spike.ms=1,seed=7,until=4000",
		shards)

	client := &http.Client{Timeout: 5 * time.Second}
	var unexplained atomic.Int64
	var firstBad atomic.Value
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < opsEach; i++ {
				key := fmt.Sprintf("k%03d", (g*31+i)%256)
				resp, err := client.Get(base + "/kv/" + key)
				if err != nil {
					continue // transport errors are the client's problem
				}
				code := resp.StatusCode
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if code >= 500 && code != http.StatusServiceUnavailable && code != http.StatusGatewayTimeout {
					unexplained.Add(1)
					firstBad.Store(fmt.Sprintf("GET %s -> %d", key, code))
					continue
				}
				if code == http.StatusNotFound {
					req, _ := http.NewRequest(http.MethodPut, base+"/kv/"+key, nil)
					if resp, err := client.Do(req); err == nil {
						code := resp.StatusCode
						io.Copy(io.Discard, resp.Body)
						resp.Body.Close()
						if code >= 500 && code != http.StatusServiceUnavailable && code != http.StatusGatewayTimeout {
							unexplained.Add(1)
							firstBad.Store(fmt.Sprintf("PUT %s -> %d", key, code))
						}
					}
				}
			}
		}(g)
	}
	wg.Wait()

	if n := unexplained.Load(); n != 0 {
		t.Fatalf("%d unexplained >=500 responses under chaos (first: %v)", n, firstBad.Load())
	}
	if rep.Total() == 0 {
		t.Fatal("the injector never fired; the campaign tested nothing")
	}
	if cache.BreakerTrips() == 0 {
		t.Fatalf("no breaker trips despite %d injected faults (%v)", rep.Total(), rep.Counts())
	}
	if st := cache.Stats(); st.DegradedOps == 0 {
		t.Fatal("breaker tripped but no ops were served degraded")
	}

	// The chaos window (until=4000 accesses) is long past; clean
	// recomputes must re-arm every shard.
	for i := 0; i < 10 && cache.Degraded(); i++ {
		cache.Recompute()
	}
	if cache.Degraded() {
		t.Fatalf("breaker never re-armed after the chaos window: %d shards degraded",
			cache.DegradedShards())
	}
	if cache.BreakerRearms() == 0 {
		t.Fatal("re-arm transitions not counted")
	}
	if err := cache.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestReadyzTracksBreaker(t *testing.T) {
	// Deterministic readiness check: trip manually, watch /readyz flip.
	cache, base, _ := startChaosServer(t, "recompute.panic=1e-12,seed=1", 2)

	get := func(path string) int {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}

	if code := get("/readyz"); code != http.StatusOK {
		t.Fatalf("fresh server /readyz = %d", code)
	}
	cache.Trip("manual")
	if code := get("/readyz"); code != http.StatusServiceUnavailable {
		t.Fatalf("degraded /readyz = %d, want 503", code)
	}
	if code := get("/healthz"); code != http.StatusOK {
		t.Fatalf("degraded /healthz = %d; liveness must survive degradation", code)
	}
	for i := 0; i < cache.Config().RearmAfter && cache.Degraded(); i++ {
		cache.Recompute()
	}
	if code := get("/readyz"); code != http.StatusOK {
		t.Fatalf("re-armed /readyz = %d, want 200", code)
	}
}
