package servefault

import (
	"fmt"
	"time"

	"pdp/internal/faultinject"
	"pdp/internal/kvcache"
	"pdp/internal/trace"
	"sync/atomic"
)

// Default fault durations when the spec enables a stall or spike without
// sizing it.
const (
	defaultStallMS = 100
	defaultSpikeMS = 5
)

// Injector drives a faultinject.Spec's serving-path faults against a
// live kvcache: per cache access it may flip a bit of the shard's RDD
// counters, zero the array, or sleep while holding the shard lock (the
// lock-hold watchdog's prey); per PD recomputation it may stall the
// critical section past the recompute watchdog or panic inside it. Each
// shard gets its own RNG stream seeded from Spec.Seed, and each fault is
// counted and journaled through the Reporter, so a chaos campaign is
// reproducible and auditable end to end.
//
// Injector implements kvcache.Chaos. Access for one shard runs under
// that shard's lock and Recompute under the cache's recompute lock, so
// each RNG stream is externally serialized; only the shared until-clock
// is atomic.
type Injector struct {
	spec    faultinject.Spec
	rep     *faultinject.Reporter
	rngs    []*trace.RNG // one per shard, serialized by the shard lock
	rrng    *trace.RNG   // recompute stream, serialized by the recompute lock
	clock   atomic.Uint64
	stallMS int
	spikeMS int
}

// NewInjector wires the spec's serving faults for a cache of the given
// shard count. It returns nil when the spec injects nothing on the
// serving path — callers install the result only when non-nil (a typed
// nil in Config.Chaos would defeat kvcache's nil check).
func NewInjector(spec faultinject.Spec, shards int, rep *faultinject.Reporter) *Injector {
	if shards <= 0 || !spec.ServeEnabled() {
		return nil
	}
	in := &Injector{
		spec:    spec,
		rep:     rep,
		rngs:    make([]*trace.RNG, shards),
		rrng:    trace.NewRNG(spec.Seed ^ 0x5EF5EF5E),
		stallMS: spec.StallMS,
		spikeMS: spec.SpikeMS,
	}
	for i := range in.rngs {
		in.rngs[i] = trace.NewRNG(spec.Seed ^ (uint64(i+1) * 0x9E3779B97F4A7C15))
	}
	if in.stallMS <= 0 {
		in.stallMS = defaultStallMS
	}
	if in.spikeMS <= 0 {
		in.spikeMS = defaultSpikeMS
	}
	return in
}

// active reports whether the injector still fires at tick t (the spec's
// until horizon).
func (in *Injector) active(t uint64) bool {
	return in.spec.Until == 0 || t <= in.spec.Until
}

// Access implements kvcache.Chaos: called once per cache operation under
// the shard lock. arr is the shard's live RDD array (nil in LRU mode).
func (in *Injector) Access(shard int, arr kvcache.ChaosArray) {
	if in == nil || shard < 0 || shard >= len(in.rngs) {
		return
	}
	t := in.clock.Add(1)
	if !in.active(t) {
		return
	}
	rng := in.rngs[shard]
	if in.spec.LatencySpike > 0 && rng.Bernoulli(in.spec.LatencySpike) {
		in.rep.Record("latency.spike", t,
			fmt.Sprintf("shard %d lock held +%dms", shard, in.spikeMS))
		time.Sleep(time.Duration(in.spikeMS) * time.Millisecond)
	}
	if arr == nil {
		return
	}
	if in.spec.CounterFlip > 0 && rng.Bernoulli(in.spec.CounterFlip) {
		k := rng.Intn(arr.K())
		bit := uint(rng.Intn(16))
		arr.Corrupt(k, 1<<bit)
		in.rep.Record("counter.flip", t, fmt.Sprintf("shard %d N_%d ^= 1<<%d", shard, k, bit))
	}
	if in.spec.RDDZero > 0 && rng.Bernoulli(in.spec.RDDZero) {
		arr.Reset()
		in.rep.Record("rdd.zero", t, fmt.Sprintf("shard %d RDD zeroed mid-window", shard))
	}
}

// Recompute implements kvcache.Chaos: called inside the PD-recompute
// critical section (seq is the 1-based recompute ordinal). A stall fires
// before a panic so a spec enabling both exercises the watchdog first.
func (in *Injector) Recompute(seq uint64) {
	if in == nil || !in.active(in.clock.Load()) {
		return
	}
	if in.spec.RecomputeStall > 0 && in.rrng.Bernoulli(in.spec.RecomputeStall) {
		in.rep.Record("recompute.stall", seq,
			fmt.Sprintf("recompute %d stalled %dms", seq, in.stallMS))
		time.Sleep(time.Duration(in.stallMS) * time.Millisecond)
	}
	if in.spec.RecomputePanic > 0 && in.rrng.Bernoulli(in.spec.RecomputePanic) {
		in.rep.Record("recompute.panic", seq, fmt.Sprintf("recompute %d panicked", seq))
		panic(&faultinject.InjectedError{Site: "recompute.panic", Record: seq})
	}
}
