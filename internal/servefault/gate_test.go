package servefault

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestGateShedsWhenFull(t *testing.T) {
	g := NewGate(1, time.Second, nil, nil)
	ctx := context.Background()
	if err := g.Enter(ctx, "/kv/", "r1"); err != nil {
		t.Fatal(err)
	}
	// No deadline to wait under: the second request sheds immediately.
	if err := g.Enter(ctx, "/kv/", "r2"); !errors.Is(err, ErrShed) {
		t.Fatalf("want ErrShed, got %v", err)
	}
	if g.InFlight() != 1 {
		t.Fatalf("inflight = %d, want 1", g.InFlight())
	}
	g.Exit()
	if err := g.Enter(ctx, "/kv/", "r3"); err != nil {
		t.Fatalf("slot not freed: %v", err)
	}
	g.Exit()
}

func TestGateWaitsUnderDeadline(t *testing.T) {
	g := NewGate(1, time.Second, nil, nil)
	if err := g.Enter(context.Background(), "/kv/", "holder"); err != nil {
		t.Fatal(err)
	}

	// A deadline-bearing request waits — and times out if the slot never
	// frees.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	if err := g.Enter(ctx, "/kv/", "waiter"); !errors.Is(err, ErrDeadline) {
		t.Fatalf("want ErrDeadline, got %v", err)
	}
	if waited := time.Since(start); waited < 20*time.Millisecond {
		t.Fatalf("shed without waiting for the deadline (%v)", waited)
	}

	// ...and gets the slot when it frees in time.
	done := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		done <- g.Enter(ctx, "/kv/", "waiter2")
	}()
	time.Sleep(10 * time.Millisecond)
	g.Exit()
	if err := <-done; err != nil {
		t.Fatalf("queued request not admitted after Exit: %v", err)
	}
	g.Exit()
}

func TestNilGateAdmitsEverything(t *testing.T) {
	g := NewGate(0, time.Second, nil, nil)
	if g != nil {
		t.Fatal("limit 0 should disable the gate")
	}
	if err := g.Enter(context.Background(), "/kv/", "r"); err != nil {
		t.Fatal(err)
	}
	g.Exit()
	if g.InFlight() != 0 || g.RetryAfter() != 0 {
		t.Fatal("nil gate accessors not zero")
	}
}
