package servefault

import (
	"encoding/json"
	"fmt"
	"os"

	"pdp/internal/kvcache"
	"pdp/internal/resilience"
	"pdp/internal/telemetry"
)

// SaveSnapshot captures the cache's warm state and writes it to path
// atomically and durably (temp file + fsync + rename + parent-directory
// fsync), journaling one CacheSnapshotRecord per attempt — failed saves
// included, with the error text.
func SaveSnapshot(c *kvcache.Cache, path string, journal *telemetry.Journal) error {
	s := c.Snapshot()
	entries := 0
	var bytes int64
	for _, sh := range s.Shards {
		entries += len(sh.Entries)
		for _, e := range sh.Entries {
			bytes += int64(len(e.Value))
		}
	}
	rec := telemetry.CacheSnapshotRecord{
		Kind: telemetry.KindCacheSnapshot, Path: path,
		Entries: entries, Bytes: bytes, PD: s.PD,
	}
	data, err := json.Marshal(s)
	if err == nil {
		err = resilience.WriteFileAtomic(path, data)
	}
	if err != nil {
		rec.Err = err.Error()
		journal.Append(rec)
		return fmt.Errorf("servefault: snapshot %s: %w", path, err)
	}
	journal.Append(rec)
	return nil
}

// LoadSnapshot reads and parses a snapshot file. A missing file returns
// the underlying fs.ErrNotExist so resuming callers can distinguish
// "no snapshot yet" (cold-start quietly) from a corrupt one (warn).
func LoadSnapshot(path string) (*kvcache.Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s kvcache.Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("servefault: snapshot %s: %w", path, err)
	}
	return &s, nil
}

// RestoreFromFile loads path and replays it into c (which should be
// freshly built and empty), returning the number of entries restored. A
// version or geometry mismatch is an error and restores nothing; the
// caller logs it and cold-starts.
func RestoreFromFile(c *kvcache.Cache, path string) (int, error) {
	s, err := LoadSnapshot(path)
	if err != nil {
		return 0, err
	}
	return c.Restore(s)
}
