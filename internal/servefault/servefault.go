// Package servefault is the serving path's robustness kit: the
// concurrency-limited admission gate that sheds load instead of queueing
// unboundedly (overload protection), the seeded chaos injector that
// drives kvcache's fault seams for reproducible chaos campaigns, and the
// crash-safe cache snapshot I/O behind warm restarts. kvserver wires the
// pieces together; this package keeps them testable without an HTTP
// stack.
package servefault

import (
	"context"
	"errors"
	"time"

	"pdp/internal/telemetry"
)

// ErrShed reports a request refused by the admission gate: the gate was
// full and the request carried no deadline to wait under. HTTP maps it
// to 503 + Retry-After.
var ErrShed = errors.New("servefault: request shed, gate full")

// ErrDeadline reports a request whose deadline expired while it was
// queued at the gate. HTTP maps it to 504.
var ErrDeadline = errors.New("servefault: deadline expired while queued")

// Gate is a concurrency-limited admission gate: at most limit requests
// are in flight at once. A request arriving at a full gate is shed
// immediately when it has no deadline, and otherwise waits until a slot
// frees or the deadline expires — bounded queueing, never unbounded. A
// nil *Gate admits everything (the ungated configuration).
type Gate struct {
	sem        chan struct{}
	retryAfter time.Duration
	journal    *telemetry.Journal
	mShed      *telemetry.Counter
	mDeadline  *telemetry.Counter
}

// NewGate builds a gate admitting at most limit concurrent requests;
// retryAfter is the backoff hint shed responses should carry. A limit
// of 0 or less returns nil — the gate that admits everything — but the
// shed counters are still registered so they surface on /metrics at 0.
func NewGate(limit int, retryAfter time.Duration, reg *telemetry.Registry, journal *telemetry.Journal) *Gate {
	mShed := reg.Counter("http.shed")
	mDeadline := reg.Counter("http.deadline_timeout")
	if limit <= 0 {
		return nil
	}
	return &Gate{
		sem:        make(chan struct{}, limit),
		retryAfter: retryAfter,
		journal:    journal,
		mShed:      mShed,
		mDeadline:  mDeadline,
	}
}

// RetryAfter returns the configured shed backoff hint.
func (g *Gate) RetryAfter() time.Duration {
	if g == nil {
		return 0
	}
	return g.retryAfter
}

// InFlight returns the number of requests currently holding a slot.
func (g *Gate) InFlight() int {
	if g == nil {
		return 0
	}
	return len(g.sem)
}

// Enter claims a slot, blocking no longer than ctx's deadline. It
// returns nil when the request is admitted (the caller must Exit),
// ErrShed when the gate is full and ctx carries no deadline, and
// ErrDeadline when ctx expired while queued. route and reqID label the
// journal record.
func (g *Gate) Enter(ctx context.Context, route, reqID string) error {
	if g == nil {
		return nil
	}
	select {
	case g.sem <- struct{}{}:
		return nil
	default:
	}
	if _, ok := ctx.Deadline(); !ok {
		g.mShed.Inc()
		g.journal.Append(telemetry.ShedRecord{
			Kind: telemetry.KindShed, Route: route, Reason: "overload", RequestID: reqID,
		})
		return ErrShed
	}
	select {
	case g.sem <- struct{}{}:
		return nil
	case <-ctx.Done():
		g.mDeadline.Inc()
		g.journal.Append(telemetry.ShedRecord{
			Kind: telemetry.KindShed, Route: route, Reason: "deadline", RequestID: reqID,
		})
		return ErrDeadline
	}
}

// Exit releases the slot claimed by a successful Enter.
func (g *Gate) Exit() {
	if g == nil {
		return
	}
	<-g.sem
}
