package core

import (
	"testing"

	"pdp/internal/cache"
	"pdp/internal/trace"
)

func newCacheWithClassPDP(cfg ClassConfig) (*cache.Cache, *ClassPDP) {
	p := NewClassPDP(cfg)
	c := cache.New(cache.Config{
		Name: "LLC", Sets: cfg.Sets, Ways: cfg.Ways, LineSize: 64, AllowBypass: true,
	}, p)
	return c, p
}

func TestClassPDPLearnsPerClassPDs(t *testing.T) {
	// Two PC classes with different loop distances: each class must get its
	// own PD near its distance.
	const sets, ways = 32, 16
	cfg := ClassConfig{Sets: sets, Ways: ways, Classes: 4, RecomputeEvery: 40000}
	c, p := newCacheWithClassPDP(cfg)

	gA := trace.NewLoopGen("a", 10*sets, 1, 1)
	gB := trace.NewLoopGen("b", 40*sets, 2, 2)
	pcA, pcB := uint64(0x3333), uint64(0x1234)
	if p.ClassOf(pcA) == p.ClassOf(pcB) {
		t.Fatal("test PCs landed in the same class; pick different PCs")
	}
	rng := trace.NewRNG(3)
	for i := 0; i < 500000; i++ {
		if rng.Bernoulli(0.5) {
			a := gA.Next()
			a.PC = pcA
			c.Access(a)
		} else {
			a := gB.Next()
			a.PC = pcB
			c.Access(a)
		}
	}
	if p.Recomputes == 0 {
		t.Fatal("never recomputed")
	}
	pds := p.PDs()
	pdA, pdB := pds[p.ClassOf(pcA)], pds[p.ClassOf(pcB)]
	// Interleaving doubles set-level distances: ~20 and ~80.
	if pdA < 16 || pdA > 36 {
		t.Errorf("class A PD = %d, want near 20", pdA)
	}
	if pdB < 64 || pdB > 112 {
		t.Errorf("class B PD = %d, want near 80", pdB)
	}
}

func TestClassPDPMarksDeadClass(t *testing.T) {
	const sets, ways = 32, 8
	cfg := ClassConfig{Sets: sets, Ways: ways, Classes: 4, RecomputeEvery: 30000}
	c, p := newCacheWithClassPDP(cfg)

	loop := trace.NewLoopGen("loop", 6*sets, 1, 1)
	stream := trace.NewStreamGen("stream", 2)
	pcLoop, pcStream := uint64(0x3333), uint64(0x1234)
	if p.ClassOf(pcLoop) == p.ClassOf(pcStream) {
		t.Fatal("test PCs collide")
	}
	rng := trace.NewRNG(5)
	for i := 0; i < 300000; i++ {
		if rng.Bernoulli(0.5) {
			a := loop.Next()
			a.PC = pcLoop
			c.Access(a)
		} else {
			a := stream.Next()
			a.PC = pcStream
			c.Access(a)
		}
	}
	pds := p.PDs()
	if pds[p.ClassOf(pcStream)] != 1 {
		t.Errorf("stream class PD = %d, want 1 (dead-on-arrival)", pds[p.ClassOf(pcStream)])
	}
	if pds[p.ClassOf(pcLoop)] < 8 {
		t.Errorf("loop class PD = %d, want a protecting distance", pds[p.ClassOf(pcLoop)])
	}
}

func TestClassPDPBeatsPlainPDPOnDeadTraffic(t *testing.T) {
	// The Sec. 6.3 scenario: a drifting working set under dead-on-arrival
	// traffic from distinct PCs. Whenever drift frees a slot, plain PDP may
	// hand it to a dead line and protect it for the full PD (pollution);
	// classified PDP expires dead-class lines immediately, so the slots go
	// back to the working set.
	const sets, ways = 64, 16
	mk := func() (trace.Generator, trace.Generator) {
		return trace.NewDriftLoopGen("loop", 20*sets, 0.25, 1, 1), trace.NewStreamGen("stream", 2)
	}
	run := func(pol cache.Policy) *cache.Cache {
		c := cache.New(cache.Config{Name: "t", Sets: sets, Ways: ways, LineSize: 64, AllowBypass: true}, pol)
		loop, stream := mk()
		rng := trace.NewRNG(9)
		for i := 0; i < 800000; i++ {
			if rng.Bernoulli(0.4) {
				a := loop.Next()
				a.PC = 0x3333
				c.Access(a)
			} else {
				a := stream.Next()
				a.PC = 0x1234
				c.Access(a)
			}
		}
		return c
	}
	plain := run(New(Config{Sets: sets, Ways: ways, Bypass: true, RecomputeEvery: 40000}))
	classed := run(NewClassPDP(ClassConfig{Sets: sets, Ways: ways, Classes: 4, RecomputeEvery: 40000}))
	if classed.Stats.HitRate() <= plain.Stats.HitRate() {
		t.Fatalf("classified PDP %.3f vs plain %.3f: classification must help on dead traffic",
			classed.Stats.HitRate(), plain.Stats.HitRate())
	}
}

func TestClassPDPNeverEvictsProtected(t *testing.T) {
	cfg := ClassConfig{Sets: 8, Ways: 4, Classes: 4, RecomputeEvery: 10000}
	c, p := newCacheWithClassPDP(cfg)
	c.SetMonitor(monitorFunc(func(ev cache.Event) {
		if ev.Kind == cache.EvEvict && p.Protected(ev.Set, ev.Way) {
			t.Fatalf("protected line evicted")
		}
	}))
	rng := trace.NewRNG(11)
	for i := 0; i < 100000; i++ {
		c.Access(trace.Access{Addr: uint64(rng.Intn(1024)) * 64, PC: uint64(rng.Intn(16)) * 8})
	}
	if c.Stats.Evictions == 0 {
		t.Fatal("workload too tame")
	}
}

func TestClassPDPConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewClassPDP(ClassConfig{Sets: 0, Ways: 4})
}
