package core

import (
	"testing"
	"testing/quick"

	"pdp/internal/cache"
	"pdp/internal/trace"
)

// addr builds an address in a given set/tag for a cache with `sets` sets.
func addr(sets, set, tag int) uint64 {
	return uint64(tag*sets+set) * 64
}

func newCacheWithPDP(cfg Config, bypass bool) (*cache.Cache, *PDP) {
	cfg.Bypass = bypass
	p := New(cfg)
	c := cache.New(cache.Config{
		Name: "LLC", Sets: cfg.Sets, Ways: cfg.Ways, LineSize: 64, AllowBypass: bypass,
	}, p)
	return c, p
}

func TestPDPInsertAndDecrement(t *testing.T) {
	// Static PD=7, 4 ways, NC=8 over DMax=256 -> S_d = 1: every access
	// decrements. After inserting a line its RPD is PD-1 (set to PD, then
	// the post-access decrement applies, paper Fig. 3).
	c, p := newCacheWithPDP(Config{Sets: 1, Ways: 4, StaticPD: 7}, false)
	c.Access(trace.Access{Addr: addr(1, 0, 0)})
	if got := p.RPD(0, 0); got != 6 {
		t.Fatalf("RPD after insert = %d, want 6", got)
	}
	// A second access (different line) decrements the first again.
	c.Access(trace.Access{Addr: addr(1, 0, 1)})
	if got := p.RPD(0, 0); got != 5 {
		t.Fatalf("RPD after one more set access = %d, want 5", got)
	}
	// Hit promotes back to PD (then decrements).
	c.Access(trace.Access{Addr: addr(1, 0, 0)})
	if got := p.RPD(0, 0); got != 6 {
		t.Fatalf("RPD after promotion = %d, want 6", got)
	}
	if !p.Protected(0, 0) {
		t.Fatal("line must be protected")
	}
}

func TestPDPVictimPrefersUnprotected(t *testing.T) {
	c, p := newCacheWithPDP(Config{Sets: 1, Ways: 4, StaticPD: 3}, false)
	for tag := 0; tag < 4; tag++ {
		c.Access(trace.Access{Addr: addr(1, 0, tag)})
	}
	// Tag 0 was inserted 4 accesses ago with PD 3: now unprotected.
	if p.Protected(0, 0) {
		t.Fatal("oldest line should be unprotected")
	}
	r := c.Access(trace.Access{Addr: addr(1, 0, 9)})
	if !r.Evicted || r.VictimAddr != addr(1, 0, 0) {
		t.Fatalf("victim = %#x, want unprotected tag 0", r.VictimAddr)
	}
}

func TestPDPInclusiveVictimRules(t *testing.T) {
	// All lines protected; inserted lines must be victimized before reused
	// ones, highest RPD first (paper Sec. 2.2).
	c, p := newCacheWithPDP(Config{Sets: 1, Ways: 3, StaticPD: 100}, false)
	c.Access(trace.Access{Addr: addr(1, 0, 0)})
	c.Access(trace.Access{Addr: addr(1, 0, 1)})
	c.Access(trace.Access{Addr: addr(1, 0, 0)}) // tag 0 reused
	c.Access(trace.Access{Addr: addr(1, 0, 2)}) // tag 2 inserted last (highest RPD)
	for w := 0; w < 3; w++ {
		if !p.Protected(0, w) {
			t.Fatalf("way %d unexpectedly unprotected", w)
		}
	}
	r := c.Access(trace.Access{Addr: addr(1, 0, 9)})
	if r.VictimAddr != addr(1, 0, 2) {
		t.Fatalf("victim = %#x, want youngest inserted line (tag 2)", r.VictimAddr)
	}
	// Now tags 0 (reused) and 1, 9 (inserted) resident. Evict inserted
	// lines until only reused remain.
	r = c.Access(trace.Access{Addr: addr(1, 0, 10)})
	if r.VictimAddr == addr(1, 0, 0) {
		t.Fatal("reused line evicted while inserted lines remain")
	}
}

func TestPDPInclusiveVictimAllReused(t *testing.T) {
	c, _ := newCacheWithPDP(Config{Sets: 1, Ways: 2, StaticPD: 100}, false)
	c.Access(trace.Access{Addr: addr(1, 0, 0)})
	c.Access(trace.Access{Addr: addr(1, 0, 1)})
	c.Access(trace.Access{Addr: addr(1, 0, 0)})
	c.Access(trace.Access{Addr: addr(1, 0, 1)}) // both reused; tag 1 has highest RPD
	r := c.Access(trace.Access{Addr: addr(1, 0, 9)})
	if !r.Evicted || r.VictimAddr != addr(1, 0, 1) {
		t.Fatalf("victim = %#x, want reused line with highest RPD (tag 1)", r.VictimAddr)
	}
}

func TestPDPBypassWhenAllProtected(t *testing.T) {
	c, _ := newCacheWithPDP(Config{Sets: 1, Ways: 2, StaticPD: 100}, true)
	c.Access(trace.Access{Addr: addr(1, 0, 0)})
	c.Access(trace.Access{Addr: addr(1, 0, 1)})
	r := c.Access(trace.Access{Addr: addr(1, 0, 2)})
	if !r.Bypass {
		t.Fatalf("expected bypass, got %+v", r)
	}
	// Resident lines untouched.
	if !c.Contains(addr(1, 0, 0)) || !c.Contains(addr(1, 0, 1)) {
		t.Fatal("bypass must not disturb resident lines")
	}
}

// evictGuard asserts the PDP protection invariant on every eviction.
type evictGuard struct {
	t      *testing.T
	p      *PDP
	bypass bool
}

func (g *evictGuard) Event(ev cache.Event) {
	if ev.Kind != cache.EvEvict {
		return
	}
	if g.bypass && g.p.Protected(ev.Set, ev.Way) {
		g.t.Fatalf("bypass-mode PDP evicted a protected line (set %d way %d)", ev.Set, ev.Way)
	}
}

func TestPDPNeverEvictsProtectedWithBypass(t *testing.T) {
	cfg := Config{Sets: 8, Ways: 4, StaticPD: 20}
	c, p := newCacheWithPDP(cfg, true)
	c.SetMonitor(&evictGuard{t: t, p: p, bypass: true})
	rng := trace.NewRNG(123)
	for i := 0; i < 200000; i++ {
		c.Access(trace.Access{Addr: uint64(rng.Intn(4096)) * 64})
	}
	if c.Stats.Evictions == 0 || c.Stats.Bypasses == 0 {
		t.Fatalf("workload too tame: %+v", c.Stats)
	}
}

func TestPDPSDStepping(t *testing.T) {
	// NC=3 over DMax=256 -> S_d = 32: RPDs decrement once per 32 accesses.
	c, p := newCacheWithPDP(Config{Sets: 1, Ways: 4, StaticPD: 96, NC: 3}, true)
	if p.SD() != 32 {
		t.Fatalf("SD = %d, want 32", p.SD())
	}
	c.Access(trace.Access{Addr: addr(1, 0, 0)})
	// steps(96) = 3; after the first access the per-set counter is 1 (no
	// decrement yet), so RPD is still 3 steps = 96 accesses.
	if got := p.RPD(0, 0); got != 96 {
		t.Fatalf("RPD = %d, want 96", got)
	}
	// 31 more accesses trigger exactly one decrement.
	for i := 0; i < 31; i++ {
		c.Access(trace.Access{Addr: addr(1, 0, 1)})
	}
	if got := p.RPD(0, 0); got != 64 {
		t.Fatalf("RPD after 32 set accesses = %d, want 64", got)
	}
}

func TestPDPStepsClamp(t *testing.T) {
	p := New(Config{Sets: 1, Ways: 4, StaticPD: 256, NC: 8})
	if got := p.Protection().Steps(256); got != 255 {
		t.Fatalf("Steps(256) = %d, want clamp to 255 (8-bit RPD)", got)
	}
	if got := p.Protection().Steps(0); got != 1 {
		t.Fatalf("Steps(0) = %d, want 1", got)
	}
}

func TestPDPProtectsThrashingWorkingSet(t *testing.T) {
	// Working set of 8 lines per set with 4 ways: LRU gets zero hits; PDP
	// with bypass protects 4 of the 8 and converts half the accesses to
	// hits (the paper's core thrashing argument).
	const sets, ways, per = 32, 4, 8
	lru := cache.NewLRU(sets, ways)
	cLRU := cache.New(cache.Config{Name: "L", Sets: sets, Ways: ways, LineSize: 64}, lru)
	cPDP, _ := newCacheWithPDP(Config{Sets: sets, Ways: ways, StaticPD: per}, true)

	g := trace.NewLoopGen("loop", per*sets, 1, 1)
	for i := 0; i < per*sets*200; i++ {
		a := g.Next()
		cLRU.Access(a)
		cPDP.Access(a)
	}
	if hr := cLRU.Stats.HitRate(); hr > 0.01 {
		t.Fatalf("LRU hit rate %v on thrashing loop, want ~0", hr)
	}
	if hr := cPDP.Stats.HitRate(); hr < 0.40 {
		t.Fatalf("PDP hit rate %v on thrashing loop, want >= 0.40", hr)
	}
}

func TestPDPEquivalentToProtectingWForFriendlyLoop(t *testing.T) {
	// For an LRU-friendly loop (working set <= W), PDP with PD=W behaves
	// like LRU: every reuse hits (paper Sec. 1 remark).
	const sets, ways = 16, 8
	c, _ := newCacheWithPDP(Config{Sets: sets, Ways: ways, StaticPD: ways}, true)
	g := trace.NewLoopGen("loop", ways*sets, 1, 1)
	n := ways * sets * 100
	for i := 0; i < n; i++ {
		c.Access(g.Next())
	}
	misses := c.Stats.Misses
	if misses != uint64(ways*sets) {
		t.Fatalf("misses = %d, want only the %d cold misses", misses, ways*sets)
	}
}

func TestPDPDynamicConvergesToLoopDistance(t *testing.T) {
	const sets, ways, per = 32, 16, 24
	cfg := Config{
		Sets: sets, Ways: ways,
		SC:             4,
		RecomputeEvery: 20000,
		FullSampler:    true,
	}
	c, p := newCacheWithPDP(cfg, true)
	g := trace.NewLoopGen("loop", per*sets, 1, 1)
	for i := 0; i < 100000; i++ {
		c.Access(g.Next())
	}
	if p.Recomputes == 0 {
		t.Fatal("PD was never recomputed")
	}
	if p.PD() < per || p.PD() > per+2*cfg.SC {
		t.Fatalf("converged PD = %d, want ~%d (loop distance)", p.PD(), per)
	}
}

func TestPDPDynamicBeatsLRUOnThrash(t *testing.T) {
	const sets, ways, per = 32, 16, 48 // working set 3x associativity
	cfg := Config{Sets: sets, Ways: ways, RecomputeEvery: 20000, FullSampler: true}
	c, _ := newCacheWithPDP(cfg, true)
	lru := cache.NewLRU(sets, ways)
	cLRU := cache.New(cache.Config{Name: "L", Sets: sets, Ways: ways, LineSize: 64}, lru)

	g := trace.NewLoopGen("loop", per*sets, 1, 1)
	for i := 0; i < 400000; i++ {
		a := g.Next()
		c.Access(a)
		cLRU.Access(a)
	}
	if c.Stats.HitRate() < cLRU.Stats.HitRate()+0.2 {
		t.Fatalf("dynamic PDP %.3f vs LRU %.3f: want clear win",
			c.Stats.HitRate(), cLRU.Stats.HitRate())
	}
}

func TestPDPInsertPDOverride(t *testing.T) {
	c, p := newCacheWithPDP(Config{Sets: 1, Ways: 4, StaticPD: 100, InsertPD: 1}, true)
	c.Access(trace.Access{Addr: addr(1, 0, 0)})
	// steps(1) = 1, decremented once by PostAccess -> immediately
	// unprotected (the paper's 429.mcf variant).
	if p.Protected(0, 0) {
		t.Fatal("inserted line must be unprotected with InsertPD=1")
	}
	// A promotion still uses the full PD.
	c.Access(trace.Access{Addr: addr(1, 0, 0)})
	if !p.Protected(0, 0) {
		t.Fatal("promoted line must use the computed PD")
	}
}

func TestPDPPrefetchModes(t *testing.T) {
	// PFInsertPD1: prefetched fills arrive unprotected.
	c, p := newCacheWithPDP(Config{Sets: 1, Ways: 4, StaticPD: 100, Prefetch: PFInsertPD1}, true)
	c.Access(trace.Access{Addr: addr(1, 0, 0), Prefetch: true})
	if p.Protected(0, 0) {
		t.Fatal("prefetched line must be unprotected under PFInsertPD1")
	}
	c.Access(trace.Access{Addr: addr(1, 0, 1)})
	if !p.Protected(0, 1) {
		t.Fatal("demand line must be protected normally")
	}

	// PFBypass: prefetched fills bypass entirely (once the set is full).
	c2, _ := newCacheWithPDP(Config{Sets: 1, Ways: 2, StaticPD: 100, Prefetch: PFBypass}, true)
	c2.Access(trace.Access{Addr: addr(1, 0, 0)})
	c2.Access(trace.Access{Addr: addr(1, 0, 1)})
	r := c2.Access(trace.Access{Addr: addr(1, 0, 2), Prefetch: true})
	if !r.Bypass {
		t.Fatal("prefetched miss must bypass under PFBypass")
	}
}

func TestPDPHistoryRecording(t *testing.T) {
	cfg := Config{Sets: 32, Ways: 4, RecomputeEvery: 5000, FullSampler: true, RecordHistory: true}
	c, p := newCacheWithPDP(cfg, true)
	g := trace.NewLoopGen("loop", 8*32, 1, 1)
	for i := 0; i < 20000; i++ {
		c.Access(g.Next())
	}
	h := p.History()
	if len(h) < 2 {
		t.Fatalf("history has %d points, want initial + recomputations", len(h))
	}
	if h[0].Access != 0 {
		t.Fatalf("first history point at access %d, want 0", h[0].Access)
	}
}

func TestPDPNames(t *testing.T) {
	cases := []struct {
		cfg  Config
		want string
	}{
		{Config{Sets: 1, Ways: 2, StaticPD: 7, Bypass: true}, "SPDP-B(7)"},
		{Config{Sets: 1, Ways: 2, StaticPD: 7}, "SPDP-NB(7)"},
		{Config{Sets: 1, Ways: 2, Bypass: true, NC: 3}, "PDP-3"},
		{Config{Sets: 1, Ways: 2}, "PDP-NB-8"},
	}
	for _, cse := range cases {
		if got := New(cse.cfg).Name(); got != cse.want {
			t.Errorf("Name = %q, want %q", got, cse.want)
		}
	}
}

func TestPDPHardwareBits(t *testing.T) {
	// PDP-3 with bypass on a 2MB/16-way LLC: 3 bits/line + per-set S_d
	// counter + real sampler. Must be well under 1% of the 2MB data array
	// (paper Sec. 6.2 reports ~0.6%).
	p := New(Config{Sets: 2048, Ways: 16, NC: 3, Bypass: true})
	bits := p.HardwareBits()
	dataBits := 2048 * 16 * 64 * 8
	if frac := float64(bits) / float64(dataBits); frac > 0.01 {
		t.Fatalf("overhead %.4f%% too large", frac*100)
	}
	if bits <= 2048*16*3 {
		t.Fatal("overhead must include sampler and counters")
	}
}

func TestPDPConfigValidation(t *testing.T) {
	bad := []Config{
		{Sets: 0, Ways: 4},
		{Sets: 4, Ways: 0},
		{Sets: 4, Ways: 4, NC: 20},
		{Sets: 4, Ways: 4, DMax: 250, SC: 4},
	}
	for i, cfg := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic for %+v", i, cfg)
				}
			}()
			New(cfg)
		}()
	}
}

func TestPDPProtectionInvariantProperty(t *testing.T) {
	// Property: under random configurations and random traffic, a
	// bypass-mode PDP never evicts a protected line, and RPDs never exceed
	// the quantized PD ceiling.
	f := func(seed uint64, ncSel, pdSel uint8) bool {
		nc := []int{2, 3, 8}[int(ncSel)%3]
		pd := 1 + int(pdSel)%256
		cfg := Config{Sets: 8, Ways: 4, StaticPD: pd, NC: nc}
		c, p := newCacheWithPDP(cfg, true)
		ok := true
		c.SetMonitor(monitorFunc(func(ev cache.Event) {
			if ev.Kind == cache.EvEvict && p.Protected(ev.Set, ev.Way) {
				ok = false
			}
		}))
		rng := trace.NewRNG(seed)
		ceiling := ((pd+p.SD()-1)/p.SD() + 1) * p.SD() // quantized PD + slack
		for i := 0; i < 30000 && ok; i++ {
			c.Access(trace.Access{Addr: uint64(rng.Intn(2048)) * 64})
			for set := 0; set < cfg.Sets; set++ {
				for w := 0; w < cfg.Ways; w++ {
					if p.RPD(set, w) > ceiling {
						return false
					}
				}
			}
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// monitorFunc adapts a func to cache.Monitor.
type monitorFunc func(cache.Event)

func (f monitorFunc) Event(ev cache.Event) { f(ev) }

func TestPDPRecomputeObserver(t *testing.T) {
	c, p := newCacheWithPDP(Config{
		Sets: 16, Ways: 2, DMax: 64, SC: 4, RecomputeEvery: 256, FullSampler: true,
	}, true)
	var evs []RecomputeEvent
	p.SetObserver(func(ev RecomputeEvent) { evs = append(evs, ev) })

	// A tight loop with reuse distance 8 lines: the sampler measures it
	// and the solver picks a protecting PD.
	for i := 0; i < 1024; i++ {
		c.Access(trace.Access{Addr: addr(16, i%16, (i/16)%4)})
	}
	if p.Accesses() != 1024 {
		t.Fatalf("Accesses = %d, want 1024", p.Accesses())
	}
	if len(evs) != 4 {
		t.Fatalf("observer calls = %d, want 4 (every 256 accesses)", len(evs))
	}
	for i, ev := range evs {
		if ev.Seq != uint64(i+1) {
			t.Fatalf("event %d Seq = %d", i, ev.Seq)
		}
		if ev.Access != uint64(256*(i+1)) {
			t.Fatalf("event %d Access = %d, want %d", i, ev.Access, 256*(i+1))
		}
		if ev.NewPD <= 0 || ev.NewPD > 64 {
			t.Fatalf("event %d NewPD = %d out of range", i, ev.NewPD)
		}
		if len(ev.Counts) == 0 {
			t.Fatalf("event %d carries no RDD snapshot", i)
		}
		if len(ev.E) == 0 {
			t.Fatalf("event %d carries no E(d_p) curve", i)
		}
		if i > 0 && ev.OldPD != evs[i-1].NewPD {
			t.Fatalf("event %d OldPD = %d, previous NewPD = %d", i, ev.OldPD, evs[i-1].NewPD)
		}
	}
	// The RDD is captured before the post-recompute reset: a measured
	// trace must show a non-zero total.
	if evs[0].Total == 0 {
		t.Fatal("first recompute saw an empty RDD total")
	}
	if uint64(len(evs)) != p.Recomputes {
		t.Fatalf("observer calls = %d, Recomputes = %d", len(evs), p.Recomputes)
	}

	// Detach: no further events.
	p.SetObserver(nil)
	for i := 0; i < 256; i++ {
		c.Access(trace.Access{Addr: addr(16, i%16, (i/16)%4)})
	}
	if len(evs) != 4 {
		t.Fatalf("detached observer still called: %d events", len(evs))
	}
}

func TestPDPEpochDecayReconvergesAfterPhaseChange(t *testing.T) {
	// Satellite regression for the long-running-service path: with the
	// epoch-decay recompute (EpochDecayShift > 0) the RDD is an
	// exponentially weighted window, so a workload phase change must move
	// the PD to the new loop distance within a few epochs instead of being
	// pinned by stale history.
	const sets, ways = 32, 16
	const per1, per2 = 24, 96
	cfg := Config{
		Sets: sets, Ways: ways,
		SC:              4,
		RecomputeEvery:  20000,
		FullSampler:     true,
		EpochDecayShift: 1,
	}
	c, p := newCacheWithPDP(cfg, true)
	g1 := trace.NewLoopGen("phase1", per1*sets, 1, 1)
	for i := 0; i < 200000; i++ {
		c.Access(g1.Next())
	}
	if p.PD() < per1 || p.PD() > per1+2*cfg.SC {
		t.Fatalf("phase 1 PD = %d, want ~%d", p.PD(), per1)
	}
	rec1 := p.Recomputes

	g2 := trace.NewLoopGen("phase2", per2*sets, 1, 1)
	for i := 0; i < 400000; i++ {
		c.Access(g2.Next())
	}
	if p.Recomputes <= rec1 {
		t.Fatal("no recomputation happened in phase 2")
	}
	if p.PD() < per2 || p.PD() > per2+3*cfg.SC {
		t.Fatalf("phase 2 PD = %d, want re-convergence to ~%d", p.PD(), per2)
	}
}
