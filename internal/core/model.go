// Package core implements the PDP paper's primary contribution: the
// reuse-distance-based hit-rate model E(d_p) (Sec. 2.4), the protecting
// distance search, and the Protecting Distance based replacement/bypass
// Policy (Sec. 2.2) with the hardware parameters of Sec. 3 (n_c-bit RPDs
// stepped by S_d, S_c-compressed counter arrays, periodic recomputation).
package core

import (
	"sort"

	"pdp/internal/sampler"
)

// EValues evaluates the hit-rate approximation E(d_p) of paper Eq. (1) at
// every counter-array boundary d_p = Dist(k). de is the eviction-delay term
// d_e (the paper sets it to the associativity W).
//
//	E(d_p) = sum_{i<=d_p} N_i /
//	         ( sum_{i<=d_p} N_i*i  +  (N_t - sum_{i<=d_p} N_i)*(d_p+d_e) )
//
// E is proportional to the hit rate (the 1/W factor is dropped, as in the
// paper, to remove the dependence on cache organization).
func EValues(arr *sampler.CounterArray, de int) []float64 {
	k := arr.K()
	out := make([]float64, k)
	var sumN, sumNd uint64
	nt := arr.Total()
	for i := 0; i < k; i++ {
		n := uint64(arr.Count(i))
		d := uint64(arr.Dist(i))
		sumN += n
		sumNd += n * d
		long := uint64(0)
		if nt > sumN {
			long = nt - sumN
		}
		den := sumNd + long*(d+uint64(de))
		if den > 0 {
			out[i] = float64(sumN) / float64(den)
		}
	}
	return out
}

// FindPD returns the protecting distance maximizing E, together with the
// maximal E value. It returns (0, 0) when the array holds no reuse
// information (the caller should then keep its previous PD).
func FindPD(arr *sampler.CounterArray, de int) (pd int, e float64) {
	ev := EValues(arr, de)
	best, bestK := 0.0, -1
	for k, v := range ev {
		if v > best {
			best, bestK = v, k
		}
	}
	if bestK < 0 || best == 0 {
		return 0, 0
	}
	return arr.Dist(bestK), best
}

// Peak is a local maximum of E: a candidate protecting distance for the
// multi-core heuristic (paper Sec. 4 considers the top peaks per thread).
type Peak struct {
	PD int
	E  float64
}

// Peaks returns up to topN local maxima of E, ordered by decreasing E. The
// global maximum is always first.
func Peaks(arr *sampler.CounterArray, de, topN int) []Peak {
	ev := EValues(arr, de)
	var peaks []Peak
	for k, v := range ev {
		if v == 0 {
			continue
		}
		left := k == 0 || ev[k-1] < v
		right := k == len(ev)-1 || ev[k+1] <= v
		if left && right {
			peaks = append(peaks, Peak{PD: arr.Dist(k), E: v})
		}
	}
	sort.Slice(peaks, func(i, j int) bool {
		if peaks[i].E != peaks[j].E {
			return peaks[i].E > peaks[j].E
		}
		return peaks[i].PD < peaks[j].PD
	})
	if len(peaks) > topN {
		peaks = peaks[:topN]
	}
	return peaks
}

// PDSolver finds the E-maximizing protecting distance for a counter array.
// The default software solver is SoftwareSolver; internal/pdproc provides a
// cycle-accurate model of the paper's special-purpose processor.
type PDSolver interface {
	FindPD(arr *sampler.CounterArray, de int) int
}

// SoftwareSolver is the direct floating-point implementation of FindPD.
type SoftwareSolver struct{}

// FindPD implements PDSolver.
func (SoftwareSolver) FindPD(arr *sampler.CounterArray, de int) int {
	pd, _ := FindPD(arr, de)
	return pd
}
