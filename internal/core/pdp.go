package core

import (
	"fmt"

	"pdp/internal/cache"
	"pdp/internal/sampler"
	"pdp/internal/trace"
)

// PrefetchMode selects how PDP treats prefetched fills (paper Sec. 6.5).
type PrefetchMode uint8

// Prefetch handling variants.
const (
	// PFNormal treats prefetched fills like demand fills.
	PFNormal PrefetchMode = iota
	// PFInsertPD1 inserts prefetched lines with PD = 1 (mostly unprotected).
	PFInsertPD1
	// PFBypass makes prefetched fills bypass the cache entirely.
	PFBypass
)

// Config parameterizes a PDP policy instance.
type Config struct {
	// Sets and Ways describe the cache this policy will manage.
	Sets, Ways int
	// DMax is the maximum protecting distance (paper: 256).
	DMax int
	// NC is the number of RPD bits per line (paper explores 2, 3, 8); the
	// distance step is S_d = DMax / 2^NC.
	NC int
	// SC is the counter-array step S_c (paper: 4 single-core, 16 multicore).
	SC int
	// Bypass enables the non-inclusive bypass policy (PDP-B); without it
	// the inclusive victim rules with a reuse bit apply (PDP-NB).
	Bypass bool
	// StaticPD, when positive, fixes the protecting distance for the whole
	// run (the paper's SPDP); no sampler is instantiated.
	StaticPD int
	// RecomputeEvery is the number of cache accesses between PD
	// recomputations (paper: 512K); the counter array is reset after each.
	RecomputeEvery uint64
	// FullSampler selects the exact "Full" sampler configuration instead of
	// the 32-set "Real" one.
	FullSampler bool
	// DE overrides the model's d_e term; 0 means Ways (the paper's choice).
	DE int
	// InsertPD, when positive, overrides the PD assigned to inserted
	// (missed) lines; promotions still use the computed PD. The paper's
	// Sec. 6.3 429.mcf study uses InsertPD = 1.
	InsertPD int
	// DefaultPD seeds the policy before the first recomputation; 0 means
	// Ways (LRU-like warm-up).
	DefaultPD int
	// Prefetch selects the Sec. 6.5 prefetch-aware variant.
	Prefetch PrefetchMode
	// Solver computes the PD from the counter array; nil means
	// SoftwareSolver. internal/pdproc supplies the hardware model.
	Solver PDSolver
	// RecordHistory retains (access count, PD) samples for phase studies
	// (paper Fig. 11c).
	RecordHistory bool
	// EpochDecayShift, when > 0, right-shifts the RDD counters by that many
	// bits at each recomputation instead of clearing them — an exponential
	// forgetting window. The trace-driven default (0, full reset) matches
	// the paper's hardware; long-running services (internal/kvcache) use a
	// shift of 1 so the RDD tracks the recent window while retaining enough
	// cross-epoch mass to ride out sparse epochs.
	EpochDecayShift uint
	// Observer, when non-nil, receives every dynamic PD recomputation
	// (observability seam; internal/telemetry journals these). It can also
	// be attached after construction with SetObserver.
	Observer func(RecomputeEvent)
	// PDPerturb, when non-nil, maps each recomputed PD to the value actually
	// installed (fault-injection seam; internal/faultinject drives it). The
	// result is clamped to [1, DMax] regardless, so no perturbation — or
	// solver bug — can ever install an out-of-range protecting distance.
	PDPerturb func(pd int) int
}

func (c *Config) setDefaults() {
	if c.DMax == 0 {
		c.DMax = 256
	}
	if c.NC == 0 {
		c.NC = 8
	}
	if c.SC == 0 {
		c.SC = 4
	}
	if c.RecomputeEvery == 0 {
		c.RecomputeEvery = 512 * 1024
	}
	if c.DE == 0 {
		c.DE = c.Ways
	}
	if c.DefaultPD == 0 {
		c.DefaultPD = c.Ways
	}
	if c.Solver == nil {
		c.Solver = SoftwareSolver{}
	}
}

func (c *Config) validate() {
	if c.Sets <= 0 || c.Ways <= 0 {
		panic(fmt.Sprintf("core: invalid geometry %dx%d", c.Sets, c.Ways))
	}
	if c.NC < 1 || c.NC > 16 {
		panic(fmt.Sprintf("core: NC=%d out of range", c.NC))
	}
	if c.DMax < 1 || c.DMax%c.SC != 0 {
		panic(fmt.Sprintf("core: DMax=%d not a multiple of SC=%d", c.DMax, c.SC))
	}
	if c.DMax>>uint(c.NC) < 1 && c.NC > 8 {
		panic(fmt.Sprintf("core: NC=%d too large for DMax=%d", c.NC, c.DMax))
	}
}

// RecomputeEvent describes one dynamic PD recomputation, captured before
// the counter array is reset.
type RecomputeEvent struct {
	// Access is the policy-lifetime access count at recomputation.
	Access uint64
	// Seq is the 1-based recompute ordinal.
	Seq uint64
	// OldPD and NewPD are the protecting distances before and after; they
	// are equal when the RDD held no reuse and the previous PD was kept.
	OldPD, NewPD int
	// Counts is a copy of the RDD counter array (N_i) the decision was
	// computed from; Total is N_t; Frozen reports counter saturation.
	Counts []uint32
	Total  uint64
	Frozen bool
	// E is the hit-rate model curve E(d_p) at each counter boundary.
	E []float64
}

// PDPoint is one sample of the PD trajectory.
type PDPoint struct {
	// Access is the cache access count at which PD took effect.
	Access uint64
	// PD is the protecting distance chosen.
	PD int
}

// PDP is the Protecting Distance based Policy (paper Sec. 2.2 + Sec. 3).
// It implements cache.Policy.
type PDP struct {
	cfg  Config
	pd   int         // current protecting distance, in accesses
	prot *Protection // per-line RPD + reuse-bit bookkeeping

	smp     *sampler.RDSampler // nil for static PDP
	accs    uint64
	history []PDPoint

	// Recomputes counts dynamic PD recomputations performed.
	Recomputes uint64
}

var _ cache.Policy = (*PDP)(nil)

// New builds a PDP policy.
func New(cfg Config) *PDP {
	cfg.setDefaults()
	cfg.validate()
	p := &PDP{
		cfg:  cfg,
		prot: NewProtection(cfg.Sets, cfg.Ways, cfg.DMax, cfg.NC),
	}
	if cfg.StaticPD > 0 {
		p.pd = cfg.StaticPD
	} else {
		p.pd = cfg.DefaultPD
		var scfg sampler.Config
		if cfg.FullSampler {
			scfg = sampler.FullConfig(cfg.Sets, cfg.SC)
		} else {
			scfg = sampler.RealConfig(cfg.Sets, cfg.SC)
		}
		scfg.DMax = cfg.DMax
		p.smp = sampler.New(scfg)
	}
	if cfg.RecordHistory {
		p.history = append(p.history, PDPoint{0, p.pd})
	}
	return p
}

// Name implements cache.Policy.
func (p *PDP) Name() string {
	switch {
	case p.cfg.StaticPD > 0 && p.cfg.Bypass:
		return fmt.Sprintf("SPDP-B(%d)", p.cfg.StaticPD)
	case p.cfg.StaticPD > 0:
		return fmt.Sprintf("SPDP-NB(%d)", p.cfg.StaticPD)
	case p.cfg.Bypass:
		return fmt.Sprintf("PDP-%d", p.cfg.NC)
	default:
		return fmt.Sprintf("PDP-NB-%d", p.cfg.NC)
	}
}

// PD returns the current protecting distance.
func (p *PDP) PD() int { return p.pd }

// SD returns the distance step S_d.
func (p *PDP) SD() int { return p.prot.SD() }

// Protection returns the per-line bookkeeping (exported for monitors and
// invariant checkers).
func (p *PDP) Protection() *Protection { return p.prot }

// History returns the recorded PD trajectory (empty unless RecordHistory).
func (p *PDP) History() []PDPoint { return p.history }

// Sampler returns the RD sampler (nil for static PDP).
func (p *PDP) Sampler() *sampler.RDSampler { return p.smp }

// Accesses returns the policy-lifetime access count (the time base of
// RecomputeEvent.Access).
func (p *PDP) Accesses() uint64 { return p.accs }

// SetObserver attaches (or, with nil, detaches) the recompute observer.
func (p *PDP) SetObserver(f func(RecomputeEvent)) { p.cfg.Observer = f }

// AddObserver chains f after any existing recompute observer, so several
// subsystems (telemetry journaling, invariant checkers) can watch the same
// policy. A nil f is a no-op.
func (p *PDP) AddObserver(f func(RecomputeEvent)) {
	if f == nil {
		return
	}
	prev := p.cfg.Observer
	if prev == nil {
		p.cfg.Observer = f
		return
	}
	p.cfg.Observer = func(ev RecomputeEvent) {
		prev(ev)
		f(ev)
	}
}

// SetPDPerturb attaches (or, with nil, detaches) the fault-injection PD
// perturbation hook; see Config.PDPerturb.
func (p *PDP) SetPDPerturb(f func(pd int) int) { p.cfg.PDPerturb = f }

// DMax returns the maximum protecting distance (the PD clamp ceiling).
func (p *PDP) DMax() int { return p.cfg.DMax }

// RPD returns the remaining protecting distance of (set, way) in accesses
// (step-quantized); exported for tests and monitors.
func (p *PDP) RPD(set, way int) int { return p.prot.RPD(set, way) }

// Protected reports whether the line in (set, way) is currently protected.
func (p *PDP) Protected(set, way int) bool { return p.prot.Protected(set, way) }

// Hit implements cache.Policy: promotion resets the line's RPD to the PD
// and marks it reused.
func (p *PDP) Hit(set, way int, _ trace.Access) {
	p.prot.Promote(set, way, p.pd)
}

// Victim implements cache.Policy (paper Fig. 3 scenarios b-e).
func (p *PDP) Victim(set int, acc trace.Access) (int, bool) {
	if p.cfg.Prefetch == PFBypass && acc.Prefetch {
		return 0, true
	}

	// An unprotected line, if any, is the victim.
	if w, ok := p.prot.Unprotected(set); ok {
		return w, false
	}

	// No unprotected lines: bypass in the non-inclusive configuration.
	if p.cfg.Bypass {
		return 0, true
	}

	// Inclusive rules (paper Sec. 2.2), see Protection.InclusiveVictim.
	return p.prot.InclusiveVictim(set), false
}

// Insert implements cache.Policy.
func (p *PDP) Insert(set, way int, acc trace.Access) {
	pd := p.pd
	if p.cfg.InsertPD > 0 {
		pd = p.cfg.InsertPD
	}
	if p.cfg.Prefetch == PFInsertPD1 && acc.Prefetch {
		pd = 1
	}
	p.prot.Insert(set, way, pd)
}

// Evict implements cache.Policy.
func (p *PDP) Evict(set, way int) {
	p.prot.Clear(set, way)
}

// PostAccess implements cache.Policy: the once-per-access bookkeeping — the
// S_d-stepped RPD decrement (counting bypasses, paper Sec. 3), the RD
// sampler update, and the periodic PD recomputation.
func (p *PDP) PostAccess(set int, acc trace.Access) {
	p.prot.Tick(set)

	if p.smp == nil {
		return
	}
	p.smp.Access(set, acc.Addr)
	p.accs++
	if p.accs%p.cfg.RecomputeEvery == 0 {
		p.recompute()
	}
}

func (p *PDP) recompute() {
	arr := p.smp.Array()
	old := p.pd
	if pd := p.cfg.Solver.FindPD(arr, p.cfg.DE); pd > 0 {
		p.pd = pd
	}
	if p.cfg.PDPerturb != nil {
		p.pd = p.cfg.PDPerturb(p.pd)
	}
	// Graceful-degradation invariant: the installed PD stays in [1, DMax]
	// whatever the solver — or an injected fault — produced.
	if p.pd < 1 {
		p.pd = 1
	}
	if p.pd > p.cfg.DMax {
		p.pd = p.cfg.DMax
	}
	p.Recomputes++
	if p.cfg.Observer != nil {
		p.cfg.Observer(RecomputeEvent{
			Access: p.accs,
			Seq:    p.Recomputes,
			OldPD:  old,
			NewPD:  p.pd,
			Counts: arr.Counts(),
			Total:  arr.Total(),
			Frozen: arr.Frozen(),
			E:      EValues(arr, p.cfg.DE),
		})
	}
	if p.cfg.EpochDecayShift > 0 {
		arr.Decay(p.cfg.EpochDecayShift)
	} else {
		arr.Reset()
	}
	if p.cfg.RecordHistory {
		p.history = append(p.history, PDPoint{p.accs, p.pd})
	}
}

// HardwareBits estimates the policy's SRAM overhead in bits for the managed
// cache: per-line n_c RPD bits (plus the reuse bit in the non-bypass
// configuration), per-set S_d counters, and the sampler + counter array
// (paper Sec. 6.2 accounting).
func (p *PDP) HardwareBits() int {
	bits := p.cfg.Sets * p.cfg.Ways * p.cfg.NC
	if !p.cfg.Bypass {
		bits += p.cfg.Sets * p.cfg.Ways // reuse bit
	}
	if sd := p.prot.SD(); sd > 1 {
		// Per-set counter counting to S_d.
		logSd := 0
		for v := sd; v > 1; v >>= 1 {
			logSd++
		}
		bits += p.cfg.Sets * logSd
	}
	if p.smp != nil {
		bits += p.smp.Bits()
	}
	return bits
}
