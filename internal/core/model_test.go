package core

import (
	"math"
	"testing"
	"testing/quick"

	"pdp/internal/sampler"
)

func TestEValuesHandComputed(t *testing.T) {
	arr := sampler.NewCounterArray(8, 1)
	// 10 hits at RD 3, N_t = 20, d_e = 4.
	for i := 0; i < 10; i++ {
		arr.RecordHit(3)
	}
	for i := 0; i < 20; i++ {
		arr.RecordAccess()
	}
	ev := EValues(arr, 4)
	// E(2): no hits yet -> 0.
	if ev[1] != 0 {
		t.Errorf("E(2) = %v, want 0", ev[1])
	}
	// E(3) = 10 / (10*3 + 10*(3+4)) = 0.1
	if math.Abs(ev[2]-0.1) > 1e-12 {
		t.Errorf("E(3) = %v, want 0.1", ev[2])
	}
	// E(8) = 10 / (30 + 10*12) = 1/15
	if math.Abs(ev[7]-1.0/15) > 1e-12 {
		t.Errorf("E(8) = %v, want 1/15", ev[7])
	}
	pd, e := FindPD(arr, 4)
	if pd != 3 || math.Abs(e-0.1) > 1e-12 {
		t.Errorf("FindPD = (%d, %v), want (3, 0.1)", pd, e)
	}
}

func TestEValuesMatchClosedForm(t *testing.T) {
	// Property: EValues agrees with an independent per-point recomputation
	// for random counter arrays (incremental-search correctness).
	f := func(seed int64) bool {
		arr := sampler.NewCounterArray(64, 4)
		s := uint64(seed)
		next := func() uint64 { s = s*6364136223846793005 + 1442695040888963407; return s >> 33 }
		var totalHits uint64
		for k := 0; k < arr.K(); k++ {
			n := next() % 100
			for i := uint64(0); i < n; i++ {
				arr.RecordHit(k*4 + 1)
			}
			totalHits += n
		}
		for i := uint64(0); i < totalHits+next()%500; i++ {
			arr.RecordAccess()
		}
		ev := EValues(arr, 16)
		for k := 0; k < arr.K(); k++ {
			var sumN, sumNd float64
			for j := 0; j <= k; j++ {
				sumN += float64(arr.Count(j))
				sumNd += float64(arr.Count(j)) * float64(arr.Dist(j))
			}
			long := float64(arr.Total()) - sumN
			den := sumNd + long*float64(arr.Dist(k)+16)
			want := 0.0
			if den > 0 {
				want = sumN / den
			}
			if math.Abs(ev[k]-want) > 1e-9*(want+1) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestFindPDEmptyArray(t *testing.T) {
	arr := sampler.NewCounterArray(32, 1)
	if pd, e := FindPD(arr, 8); pd != 0 || e != 0 {
		t.Fatalf("FindPD on empty array = (%d, %v), want (0, 0)", pd, e)
	}
	// Accesses but no hits: still no usable PD.
	for i := 0; i < 100; i++ {
		arr.RecordAccess()
	}
	if pd, _ := FindPD(arr, 8); pd != 0 {
		t.Fatalf("FindPD with zero hits = %d, want 0", pd)
	}
}

func TestFindPDPrefersCoveringThePeak(t *testing.T) {
	arr := sampler.NewCounterArray(256, 4)
	// Strong peak at RD ~64, plus a sea of long lines.
	for i := 0; i < 5000; i++ {
		arr.RecordHit(64)
	}
	for i := 0; i < 8000; i++ {
		arr.RecordAccess()
	}
	pd, _ := FindPD(arr, 16)
	if pd != 64 {
		t.Fatalf("FindPD = %d, want 64 (covering the peak)", pd)
	}
}

func TestFindPDAvoidsPollution(t *testing.T) {
	// Few reuses at a long distance, many fresh lines: protecting to the
	// long distance must lose to a short PD once the reuse mass there is
	// tiny (pollution, paper Sec. 2.1).
	arr := sampler.NewCounterArray(256, 4)
	for i := 0; i < 1000; i++ {
		arr.RecordHit(8)
	}
	for i := 0; i < 30; i++ {
		arr.RecordHit(200)
	}
	for i := 0; i < 20000; i++ {
		arr.RecordAccess()
	}
	pd, _ := FindPD(arr, 16)
	if pd != 8 {
		t.Fatalf("FindPD = %d, want 8 (not 200: protecting 200 pollutes)", pd)
	}
}

func TestPeaksBimodal(t *testing.T) {
	arr := sampler.NewCounterArray(256, 4)
	for i := 0; i < 4000; i++ {
		arr.RecordHit(32)
	}
	for i := 0; i < 3000; i++ {
		arr.RecordHit(128)
	}
	for i := 0; i < 9000; i++ {
		arr.RecordAccess()
	}
	peaks := Peaks(arr, 16, 3)
	if len(peaks) < 2 {
		t.Fatalf("got %d peaks, want >= 2: %+v", len(peaks), peaks)
	}
	// Global max first and it matches FindPD.
	pd, e := FindPD(arr, 16)
	if peaks[0].PD != pd || math.Abs(peaks[0].E-e) > 1e-12 {
		t.Fatalf("Peaks[0] = %+v, FindPD = (%d, %v)", peaks[0], pd, e)
	}
	found32, found128 := false, false
	for _, p := range peaks {
		if p.PD == 32 {
			found32 = true
		}
		if p.PD == 128 {
			found128 = true
		}
	}
	if !found32 || !found128 {
		t.Fatalf("peaks %+v missing one of the two modes (32, 128)", peaks)
	}
}

func TestPeaksTopNLimit(t *testing.T) {
	arr := sampler.NewCounterArray(256, 4)
	for _, d := range []int{16, 48, 96, 160, 224} {
		for i := 0; i < 1000; i++ {
			arr.RecordHit(d)
		}
	}
	for i := 0; i < 10000; i++ {
		arr.RecordAccess()
	}
	if got := len(Peaks(arr, 16, 3)); got > 3 {
		t.Fatalf("Peaks returned %d entries, want <= 3", got)
	}
}
