package core

import "fmt"

// Protection is the per-line protecting-distance bookkeeping of the PDP
// policy (paper Sec. 2.2/3) factored out of the trace-driven policy so the
// serving layer (internal/kvcache) can reuse it verbatim: n_c-bit remaining
// protecting distances stepped by S_d, a reuse bit per line, and the
// paper's victim-selection rules. Unlike cache.Cache, it accepts any
// positive geometry — the set count need not be a power of two — and it is
// agnostic to what a "line" holds (fixed 64-byte blocks in the simulator,
// byte-sized values in the KV cache).
//
// Protection is not goroutine-safe; callers serialize access (the
// simulator is single-goroutine, kvcache holds its shard lock).
type Protection struct {
	sets, ways int
	sd         int // distance step S_d (accesses per RPD decrement)
	rpdMax     uint16

	rpd    []uint16 // remaining PD per line, in S_d steps
	reused []bool   // reuse bit (inclusive victim selection)
	sdCnt  []uint32 // per-set access counter for the S_d stepping
}

// NewProtection builds the bookkeeping for sets x ways lines with maximum
// protecting distance dmax quantized to nc bits per line.
func NewProtection(sets, ways, dmax, nc int) *Protection {
	if sets <= 0 || ways <= 0 {
		panic(fmt.Sprintf("core: invalid protection geometry %dx%d", sets, ways))
	}
	if dmax < 1 || nc < 1 || nc > 16 {
		panic(fmt.Sprintf("core: invalid protection dmax=%d nc=%d", dmax, nc))
	}
	sd := dmax >> uint(nc)
	if sd < 1 {
		sd = 1
	}
	return &Protection{
		sets:   sets,
		ways:   ways,
		sd:     sd,
		rpdMax: uint16(1<<uint(nc)) - 1,
		rpd:    make([]uint16, sets*ways),
		reused: make([]bool, sets*ways),
		sdCnt:  make([]uint32, sets),
	}
}

// SD returns the distance step S_d.
func (t *Protection) SD() int { return t.sd }

// Steps converts a protecting distance in accesses to RPD steps, clamped
// to the n_c-bit range.
func (t *Protection) Steps(pd int) uint16 {
	s := (pd + t.sd - 1) / t.sd
	if s < 1 {
		s = 1
	}
	if s > int(t.rpdMax) {
		s = int(t.rpdMax)
	}
	return uint16(s)
}

// RPD returns the remaining protecting distance of (set, way) in accesses
// (step-quantized).
func (t *Protection) RPD(set, way int) int { return int(t.rpd[set*t.ways+way]) * t.sd }

// Protected reports whether the line in (set, way) is currently protected.
func (t *Protection) Protected(set, way int) bool { return t.rpd[set*t.ways+way] > 0 }

// Reused reports the line's reuse bit.
func (t *Protection) Reused(set, way int) bool { return t.reused[set*t.ways+way] }

// Promote handles a hit: the line's RPD is reset to pd and its reuse bit
// set.
func (t *Protection) Promote(set, way, pd int) {
	i := set*t.ways + way
	t.rpd[i] = t.Steps(pd)
	t.reused[i] = true
}

// Insert handles a fill: the line starts protected for pd accesses with
// the reuse bit clear.
func (t *Protection) Insert(set, way, pd int) {
	i := set*t.ways + way
	t.rpd[i] = t.Steps(pd)
	t.reused[i] = false
}

// Clear handles an eviction or invalidation of (set, way).
func (t *Protection) Clear(set, way int) {
	i := set*t.ways + way
	t.rpd[i] = 0
	t.reused[i] = false
}

// Tick advances set's S_d-stepped access counter, decrementing every
// resident RPD once per S_d accesses (bypasses count, paper Sec. 3). Call
// it exactly once per access to the set.
func (t *Protection) Tick(set int) {
	t.sdCnt[set]++
	if t.sdCnt[set] < uint32(t.sd) {
		return
	}
	t.sdCnt[set] = 0
	base := set * t.ways
	for w := 0; w < t.ways; w++ {
		if t.rpd[base+w] > 0 {
			t.rpd[base+w]--
		}
	}
}

// Unprotected returns the lowest-indexed way whose RPD reached zero, or
// ok=false when every line in the set is still protected.
func (t *Protection) Unprotected(set int) (way int, ok bool) {
	base := set * t.ways
	for w := 0; w < t.ways; w++ {
		if t.rpd[base+w] == 0 {
			return w, true
		}
	}
	return 0, false
}

// InclusiveVictim applies the paper's inclusive fallback when every line
// is protected: prefer the inserted (never reused) line with the highest
// RPD, else the reused line with the highest RPD — protecting older lines
// (paper Sec. 2.2). Ties go to the highest way, matching the trace-driven
// policy's historical scan order.
func (t *Protection) InclusiveVictim(set int) int {
	base := set * t.ways
	best, bestRPD := -1, uint16(0)
	for w := 0; w < t.ways; w++ {
		if !t.reused[base+w] && t.rpd[base+w] >= bestRPD {
			best, bestRPD = w, t.rpd[base+w]
		}
	}
	if best >= 0 {
		return best
	}
	best, bestRPD = 0, t.rpd[base]
	for w := 1; w < t.ways; w++ {
		if t.rpd[base+w] >= bestRPD {
			best, bestRPD = w, t.rpd[base+w]
		}
	}
	return best
}

// MaxRPD returns the largest representable remaining protecting distance
// in accesses — the [0, MaxRPD] bound every line provably stays within.
func (t *Protection) MaxRPD() int { return int(t.rpdMax) * t.sd }
