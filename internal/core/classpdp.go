package core

import (
	"fmt"

	"pdp/internal/cache"
	"pdp/internal/sampler"
	"pdp/internal/trace"
)

// ClassConfig parameterizes the classified PDP — the improvement the paper
// sketches in Sec. 6.3: "group lines into different classes, each with its
// own PD, and where most of the lines are reused ... they are not
// overprotected if they are not reused". Lines are classified by a hash of
// the referencing PC (the paper's first suggested classifier); each class
// has its own RDD (shared sampler FIFOs, per-class counter arrays) and its
// own protecting distance.
type ClassConfig struct {
	Sets, Ways int
	// Classes is the number of PC classes (default 8).
	Classes int
	// DMax, NC, SC as in Config.
	DMax, NC, SC int
	// RecomputeEvery is the per-class PD recomputation interval.
	RecomputeEvery uint64
	// DE overrides d_e (0 = Ways).
	DE int
	// DeadThreshold: a class with at least this many sampled accesses and
	// no measurable reuse is treated as dead-on-arrival (PD = 1), the
	// class-level analogue of SDP's bypass.
	DeadThreshold uint64
}

func (c *ClassConfig) setDefaults() {
	if c.Classes == 0 {
		c.Classes = 8
	}
	if c.DMax == 0 {
		c.DMax = 256
	}
	if c.NC == 0 {
		c.NC = 8
	}
	if c.SC == 0 {
		c.SC = 4
	}
	if c.RecomputeEvery == 0 {
		c.RecomputeEvery = 512 * 1024
	}
	if c.DE == 0 {
		c.DE = c.Ways
	}
	if c.DeadThreshold == 0 {
		c.DeadThreshold = 64
	}
}

// ClassPDP is the classified protecting-distance policy (bypass variant).
// It implements cache.Policy.
type ClassPDP struct {
	cfg    ClassConfig
	sd     int
	rpdMax uint16

	pds   []int
	rpd   []uint16
	sdCnt []uint32
	smp   *sampler.MultiRDSampler
	accs  uint64

	// Recomputes counts PD-vector recomputations.
	Recomputes uint64
}

var _ cache.Policy = (*ClassPDP)(nil)

// NewClassPDP builds a classified PDP.
func NewClassPDP(cfg ClassConfig) *ClassPDP {
	cfg.setDefaults()
	if cfg.Sets <= 0 || cfg.Ways <= 0 {
		panic(fmt.Sprintf("core: invalid ClassPDP geometry %dx%d", cfg.Sets, cfg.Ways))
	}
	sd := cfg.DMax >> uint(cfg.NC)
	if sd < 1 {
		sd = 1
	}
	p := &ClassPDP{
		cfg:    cfg,
		sd:     sd,
		rpdMax: uint16(1<<uint(cfg.NC)) - 1,
		pds:    make([]int, cfg.Classes),
		rpd:    make([]uint16, cfg.Sets*cfg.Ways),
		sdCnt:  make([]uint32, cfg.Sets),
	}
	for cl := range p.pds {
		p.pds[cl] = cfg.Ways
	}
	scfg := sampler.RealConfig(cfg.Sets, cfg.SC)
	scfg.DMax = cfg.DMax
	p.smp = sampler.NewMulti(scfg, cfg.Classes)
	return p
}

// Name implements cache.Policy.
func (p *ClassPDP) Name() string { return fmt.Sprintf("PDP-C%d", p.cfg.Classes) }

// PDs returns the per-class protecting distances.
func (p *ClassPDP) PDs() []int { return append([]int(nil), p.pds...) }

// ClassOf returns the class of a PC.
func (p *ClassPDP) ClassOf(pc uint64) int {
	x := pc ^ pc>>13 ^ pc>>29
	x *= 0x9E3779B97F4A7C15
	return int(x>>48) % p.cfg.Classes
}

func (p *ClassPDP) steps(pd int) uint16 {
	s := (pd + p.sd - 1) / p.sd
	if s < 1 {
		s = 1
	}
	if s > int(p.rpdMax) {
		s = int(p.rpdMax)
	}
	return uint16(s)
}

// Protected reports whether (set, way) is protected (testing).
func (p *ClassPDP) Protected(set, way int) bool { return p.rpd[set*p.cfg.Ways+way] > 0 }

// Hit implements cache.Policy: promote with the PD of the hitting access's
// class.
func (p *ClassPDP) Hit(set, way int, acc trace.Access) {
	p.rpd[set*p.cfg.Ways+way] = p.steps(p.pds[p.ClassOf(acc.PC)])
}

// Victim implements cache.Policy: any unprotected line, else bypass.
func (p *ClassPDP) Victim(set int, _ trace.Access) (int, bool) {
	base := set * p.cfg.Ways
	for w := 0; w < p.cfg.Ways; w++ {
		if p.rpd[base+w] == 0 {
			return w, false
		}
	}
	return 0, true
}

// Insert implements cache.Policy.
func (p *ClassPDP) Insert(set, way int, acc trace.Access) {
	p.rpd[set*p.cfg.Ways+way] = p.steps(p.pds[p.ClassOf(acc.PC)])
}

// Evict implements cache.Policy.
func (p *ClassPDP) Evict(set, way int) { p.rpd[set*p.cfg.Ways+way] = 0 }

// PostAccess implements cache.Policy.
func (p *ClassPDP) PostAccess(set int, acc trace.Access) {
	p.sdCnt[set]++
	if p.sdCnt[set] >= uint32(p.sd) {
		p.sdCnt[set] = 0
		base := set * p.cfg.Ways
		for w := 0; w < p.cfg.Ways; w++ {
			if p.rpd[base+w] > 0 {
				p.rpd[base+w]--
			}
		}
	}
	p.smp.Access(set, p.ClassOf(acc.PC), acc.Addr)
	p.accs++
	if p.accs%p.cfg.RecomputeEvery == 0 {
		p.recompute()
	}
}

func (p *ClassPDP) recompute() {
	p.Recomputes++
	for cl := 0; cl < p.cfg.Classes; cl++ {
		arr := p.smp.Array(cl)
		pd, _ := FindPD(arr, p.cfg.DE)
		switch {
		case pd > 0:
			p.pds[cl] = pd
		case arr.Total() >= p.cfg.DeadThreshold:
			// Plenty of traffic, no reuse below d_max: dead-on-arrival
			// class; do not protect its lines at all.
			p.pds[cl] = 1
		}
	}
	p.smp.ResetArrays()
}
