package partition

import (
	"pdp/internal/cache"
	"pdp/internal/trace"
)

// PIPP is Promotion/Insertion Pseudo-Partitioning (Xie & Loh, ISCA 2009):
// the lookahead allocation is enforced implicitly by inserting thread i's
// lines at priority position pi_i and promoting hits by a single step with
// probability p_prom. Streaming threads (misses > theta_m and miss rate >
// theta_mr in an interval) insert at the bottom instead.
type PIPP struct {
	sets, ways, threads int
	umon                *UMON
	alloc               []int

	// prio[set] lists ways from lowest priority (victim end, index 0) to
	// highest.
	prio [][]uint8

	pprom   float64
	pstream float64
	thetaM  uint64
	thetaMR float64

	interval uint64
	accs     uint64
	// interval miss/access counters per thread for stream detection
	ivMiss, ivAcc []uint64
	stream        []bool

	rng *trace.RNG
}

var _ cache.Policy = (*PIPP)(nil)

// NewPIPP builds a PIPP policy with the original work's parameters
// (p_prom = 3/4, p_stream = 1/128, theta_m = 4095, theta_mr = 0.125).
func NewPIPP(sets, ways, threads int, interval uint64, seed uint64) *PIPP {
	if interval == 0 {
		interval = 256 * 1024
	}
	p := &PIPP{
		sets: sets, ways: ways, threads: threads,
		umon:     NewUMON(sets, ways, threads),
		alloc:    make([]int, threads),
		prio:     make([][]uint8, sets),
		pprom:    3.0 / 4.0,
		pstream:  1.0 / 128.0,
		thetaM:   4095,
		thetaMR:  0.125,
		interval: interval,
		ivMiss:   make([]uint64, threads),
		ivAcc:    make([]uint64, threads),
		stream:   make([]bool, threads),
		rng:      trace.NewRNG(seed),
	}
	for s := range p.prio {
		order := make([]uint8, ways)
		for w := range order {
			order[w] = uint8(w)
		}
		p.prio[s] = order
	}
	for w := 0; w < ways; w++ {
		p.alloc[w%threads]++
	}
	return p
}

// Name implements cache.Policy.
func (p *PIPP) Name() string { return "PIPP" }

// Allocation returns the current way allocation (testing).
func (p *PIPP) Allocation() []int { return append([]int(nil), p.alloc...) }

// Streaming reports whether thread t is currently classified as streaming.
func (p *PIPP) Streaming(t int) bool { return p.stream[t] }

func (p *PIPP) thread(acc trace.Access) int {
	if acc.Thread < 0 || acc.Thread >= p.threads {
		return 0
	}
	return acc.Thread
}

// posOf returns way's index in the set's priority list.
func (p *PIPP) posOf(set, way int) int {
	for i, w := range p.prio[set] {
		if int(w) == way {
			return i
		}
	}
	return -1
}

// Hit implements cache.Policy: promote by one position with p_prom.
func (p *PIPP) Hit(set, way int, acc trace.Access) {
	if !p.rng.Bernoulli(p.pprom) {
		return
	}
	order := p.prio[set]
	i := p.posOf(set, way)
	if i >= 0 && i < len(order)-1 {
		order[i], order[i+1] = order[i+1], order[i]
	}
}

// Victim implements cache.Policy: the lowest-priority line.
func (p *PIPP) Victim(set int, _ trace.Access) (int, bool) {
	return int(p.prio[set][0]), false
}

// Insert implements cache.Policy: place the filled way at the thread's
// insertion position.
func (p *PIPP) Insert(set, way int, acc trace.Access) {
	t := p.thread(acc)
	if !acc.WB {
		p.ivMiss[t]++ // every insert is a demand miss fill
	}
	pos := p.alloc[t] - 1
	if pos < 0 {
		pos = 0
	}
	if p.stream[t] {
		// Streaming threads insert at the bottom, very occasionally one up.
		pos = 0
		if p.pstream > 0 && p.rng.Bernoulli(p.pstream) {
			pos = 1
		}
	}
	if pos >= p.ways {
		pos = p.ways - 1
	}
	order := p.prio[set]
	// Remove `way` from its current position, then insert at pos.
	i := p.posOf(set, way)
	if i < 0 {
		return
	}
	copy(order[i:], order[i+1:len(order)])
	order = order[:len(order)-1]
	order = append(order, 0)
	copy(order[pos+1:], order[pos:len(order)-1])
	order[pos] = uint8(way)
	p.prio[set] = order
}

// Evict implements cache.Policy.
func (p *PIPP) Evict(set, way int) {}

// PostAccess implements cache.Policy.
func (p *PIPP) PostAccess(set int, acc trace.Access) {
	t := p.thread(acc)
	if !acc.WB {
		p.umon.Access(set, t, acc.Addr)
		p.ivAcc[t]++
	}
	p.accs++
	if p.accs%p.interval == 0 {
		p.alloc = p.umon.Lookahead()
		for i := 0; i < p.threads; i++ {
			mr := 0.0
			if p.ivAcc[i] > 0 {
				mr = float64(p.ivMiss[i]) / float64(p.ivAcc[i])
			}
			p.stream[i] = p.ivMiss[i] > p.thetaM && mr > p.thetaMR
			p.ivMiss[i], p.ivAcc[i] = 0, 0
		}
		p.umon.Decay()
	}
}
