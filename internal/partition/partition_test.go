package partition

import (
	"testing"

	"pdp/internal/cache"
	"pdp/internal/trace"
)

func addr(sets, set, tag int) uint64 { return uint64(tag*sets+set) * 64 }

func TestUMONStackDistanceCounting(t *testing.T) {
	u := NewUMON(32, 4, 2)
	// Set 0 is sampled (stride 1 for 32 sets).
	a, b := addr(32, 0, 1), addr(32, 0, 2)
	u.Access(0, 0, a) // miss
	u.Access(0, 0, b) // miss
	u.Access(0, 0, a) // hit at stack distance 2
	u.Access(0, 0, a) // hit at stack distance 1
	if got := u.Utility(0, 1); got != 1 {
		t.Fatalf("Utility(0,1) = %d, want 1", got)
	}
	if got := u.Utility(0, 2); got != 2 {
		t.Fatalf("Utility(0,2) = %d, want 2", got)
	}
	if u.Misses(0) != 2 {
		t.Fatalf("misses = %d, want 2", u.Misses(0))
	}
	// Thread 1 untouched.
	if u.Utility(1, 4) != 0 {
		t.Fatal("thread isolation violated")
	}
}

func TestLookaheadFavorsHighUtility(t *testing.T) {
	u := NewUMON(32, 8, 2)
	// Thread 0: strong utility in the first 2 ways. Thread 1: flat weak
	// utility across all 8.
	u.hits[0][1], u.hits[0][2] = 1000, 800
	for w := 1; w <= 8; w++ {
		u.hits[1][w] = 10
	}
	alloc := u.Lookahead()
	if alloc[0]+alloc[1] != 8 {
		t.Fatalf("allocation %v does not sum to ways", alloc)
	}
	// Thread 0's utility saturates at 2 ways; lookahead gives it exactly
	// those, and the flat-utility thread takes the remainder.
	if alloc[0] != 2 {
		t.Fatalf("allocation %v: thread 0 must get exactly its 2 high-utility ways", alloc)
	}
}

func TestLookaheadMinimumOneWay(t *testing.T) {
	u := NewUMON(32, 4, 3)
	u.hits[0][1] = 1000000 // thread 0 dominates
	alloc := u.Lookahead()
	total := 0
	for tt, a := range alloc {
		if a < 1 {
			t.Fatalf("thread %d got %d ways; minimum is 1", tt, a)
		}
		total += a
	}
	if total != 4 {
		t.Fatalf("allocation %v sums to %d, want 4", alloc, total)
	}
}

func TestLookaheadMoreThreadsThanWays(t *testing.T) {
	u := NewUMON(32, 4, 6)
	alloc := u.Lookahead()
	total := 0
	for _, a := range alloc {
		total += a
	}
	if total != 4 {
		t.Fatalf("allocation %v sums to %d, want 4", alloc, total)
	}
}

func TestUMONDecay(t *testing.T) {
	u := NewUMON(32, 4, 1)
	u.hits[0][1] = 100
	u.misses[0] = 50
	u.Decay()
	if u.hits[0][1] != 50 || u.misses[0] != 25 {
		t.Fatal("Decay must halve counters")
	}
}

func TestUCPEvictsOverAllocatedThread(t *testing.T) {
	p := NewUCP(32, 4, 2, 1<<40)
	c := cache.New(cache.Config{Name: "t", Sets: 32, Ways: 4, LineSize: 64}, p)
	// Force allocation: thread 0 -> 1 way, thread 1 -> 3 ways.
	p.alloc = []int{1, 3}
	// Thread 0 fills the whole set first.
	for tag := 0; tag < 4; tag++ {
		c.Access(trace.Access{Addr: addr(32, 1, tag), Thread: 0})
	}
	// Thread 1 misses: victim must come from thread 0 (over-allocated),
	// specifically its LRU line (tag 0).
	r := c.Access(trace.Access{Addr: addr(32, 1, 10), Thread: 1})
	if !r.Evicted || r.VictimAddr != addr(32, 1, 0) {
		t.Fatalf("victim = %#x, want thread 0's LRU line", r.VictimAddr)
	}
	// Thread 0 misses again while over its share: it replaces its own line.
	r = c.Access(trace.Access{Addr: addr(32, 1, 11), Thread: 0})
	if r.VictimAddr != addr(32, 1, 1) {
		t.Fatalf("victim = %#x, want thread 0's own LRU line", r.VictimAddr)
	}
}

func TestUCPConvergesAllocation(t *testing.T) {
	const sets, ways = 64, 8
	p := NewUCP(sets, ways, 2, 20000)
	c := cache.New(cache.Config{Name: "t", Sets: sets, Ways: ways, LineSize: 64}, p)
	// Thread 0: working set of 2 lines/set (useful). Thread 1: stream
	// (useless).
	g0 := trace.NewLoopGen("t0", 2*sets, 1, 1)
	g1 := trace.NewStreamGen("t1", 2)
	for i := 0; i < 200000; i++ {
		a0 := g0.Next()
		a0.Thread = 0
		c.Access(a0)
		a1 := g1.Next()
		a1.Thread = 1
		c.Access(a1)
	}
	alloc := p.Allocation()
	if alloc[0] < 2 {
		t.Fatalf("allocation %v: reusing thread must get >= its working set", alloc)
	}
}

func TestPIPPInsertionPosition(t *testing.T) {
	p := NewPIPP(32, 4, 2, 1<<40, 1)
	c := cache.New(cache.Config{Name: "t", Sets: 32, Ways: 4, LineSize: 64}, p)
	p.alloc = []int{3, 1}
	// Fill set 1 from thread 1 (allocation 1: inserts at the bottom).
	for tag := 0; tag < 4; tag++ {
		c.Access(trace.Access{Addr: addr(32, 1, tag), Thread: 1})
	}
	// Thread 0 inserts at position 2 (alloc-1): its line is NOT the next
	// victim; thread 1's most recent bottom insert is.
	c.Access(trace.Access{Addr: addr(32, 1, 10), Thread: 0})
	r := c.Access(trace.Access{Addr: addr(32, 1, 11), Thread: 1})
	if r.VictimAddr == addr(32, 1, 10) {
		t.Fatal("thread 0's higher-priority insert was victimized first")
	}
}

func TestPIPPPromotionMovesUp(t *testing.T) {
	p := NewPIPP(32, 2, 1, 1<<40, 1)
	p.pprom = 1.0 // deterministic promotion
	c := cache.New(cache.Config{Name: "t", Sets: 32, Ways: 2, LineSize: 64}, p)
	p.alloc = []int{1}
	c.Access(trace.Access{Addr: addr(32, 1, 0)}) // bottom
	c.Access(trace.Access{Addr: addr(32, 1, 1)}) // bottom (0 pushed up)
	// Hit on the bottom line promotes it above the other.
	c.Access(trace.Access{Addr: addr(32, 1, 1)})
	r := c.Access(trace.Access{Addr: addr(32, 1, 2)})
	if r.VictimAddr != addr(32, 1, 0) {
		t.Fatalf("victim = %#x, want the non-promoted line", r.VictimAddr)
	}
}

func TestPIPPStreamDetection(t *testing.T) {
	const sets, ways = 64, 4
	p := NewPIPP(sets, ways, 2, 10000, 1)
	c := cache.New(cache.Config{Name: "t", Sets: sets, Ways: ways, LineSize: 64}, p)
	g0 := trace.NewLoopGen("t0", 2*sets, 1, 1) // reuser
	g1 := trace.NewStreamGen("t1", 2)          // streamer
	for i := 0; i < 60000; i++ {
		a0 := g0.Next()
		a0.Thread = 0
		c.Access(a0)
		a1 := g1.Next()
		a1.Thread = 1
		c.Access(a1)
	}
	if p.Streaming(0) {
		t.Error("reusing thread misclassified as streaming")
	}
	if !p.Streaming(1) {
		t.Error("streaming thread not detected")
	}
}

func TestPDPPartPerThreadPDs(t *testing.T) {
	const sets, ways = 64, 16
	cfg := PDPPartConfig{Sets: sets, Ways: ways, Threads: 2, SC: 4, RecomputeEvery: 40000}
	p := NewPDPPart(cfg)
	c := cache.New(cache.Config{Name: "t", Sets: sets, Ways: ways, LineSize: 64, AllowBypass: true}, p)
	// Thread 0 loops at distance 8, thread 1 at distance 20. With a
	// random 50/50 interleave the global set-level distances double to
	// ~16 and ~40, and both working sets (8 + 20 lines per set vs 16 ways
	// at those protection windows) are jointly feasible. (A strictly
	// alternating interleave would alias against the sampler's
	// deterministic 1-in-M insertion; real traffic, like the benchmark
	// models, has no such lockstep.)
	g0 := trace.NewLoopGen("t0", 8*sets, 1, 1)
	g1 := trace.NewLoopGen("t1", 20*sets, 2, 2)
	rng := trace.NewRNG(3)
	for i := 0; i < 800000; i++ {
		if rng.Bernoulli(0.5) {
			a := g0.Next()
			a.Thread = 0
			c.Access(a)
		} else {
			a := g1.Next()
			a.Thread = 1
			c.Access(a)
		}
	}
	if p.Recomputes == 0 {
		t.Fatal("PD vector never recomputed")
	}
	pds := p.PDs()
	// Interleaving doubles each thread's set-level distances.
	if pds[0] < 12 || pds[0] > 28 {
		t.Errorf("thread 0 PD = %d, want near 16", pds[0])
	}
	if pds[1] < 32 || pds[1] > 64 {
		t.Errorf("thread 1 PD = %d, want near 40", pds[1])
	}
}

func TestPDPPartYieldsInfeasibleThread(t *testing.T) {
	// Two working sets that cannot jointly fit (10 + 40 lines per set vs
	// 16 ways): the capacity-aware refinement must yield one thread's
	// space rather than oversubscribe both.
	const sets, ways = 64, 16
	cfg := PDPPartConfig{Sets: sets, Ways: ways, Threads: 2, SC: 4, RecomputeEvery: 40000}
	p := NewPDPPart(cfg)
	c := cache.New(cache.Config{Name: "t", Sets: sets, Ways: ways, LineSize: 64, AllowBypass: true}, p)
	g0 := trace.NewLoopGen("t0", 10*sets, 1, 1)
	g1 := trace.NewLoopGen("t1", 40*sets, 2, 2)
	rng := trace.NewRNG(3)
	for i := 0; i < 800000; i++ {
		if rng.Bernoulli(0.5) {
			a := g0.Next()
			a.Thread = 0
			c.Access(a)
		} else {
			a := g1.Next()
			a.Thread = 1
			c.Access(a)
		}
	}
	pds := p.PDs()
	if pds[0] < 16 || pds[0] > 32 {
		t.Errorf("thread 0 PD = %d, want near 20 (its set fits)", pds[0])
	}
	if pds[1] != 1 && (pds[1] < 64 || pds[1] > 112) {
		t.Errorf("thread 1 PD = %d, want 1 (yielded) or near 80", pds[1])
	}
	// The fitting thread's working set must be retained.
	if c.Stats.HitRate() < 0.35 {
		t.Fatalf("hit rate %.3f: thread 0's working set should be retained", c.Stats.HitRate())
	}
}

func TestPDPPartNeverEvictsProtected(t *testing.T) {
	cfg := PDPPartConfig{Sets: 16, Ways: 4, Threads: 2, SC: 4, RecomputeEvery: 5000}
	p := NewPDPPart(cfg)
	c := cache.New(cache.Config{Name: "t", Sets: 16, Ways: 4, LineSize: 64, AllowBypass: true}, p)
	guard := &evictGuard{t: t, p: p}
	c.SetMonitor(guard)
	rng := trace.NewRNG(9)
	for i := 0; i < 100000; i++ {
		c.Access(trace.Access{Addr: uint64(rng.Intn(2048)) * 64, Thread: rng.Intn(2)})
	}
	if c.Stats.Evictions == 0 {
		t.Fatal("workload too tame")
	}
}

type evictGuard struct {
	t *testing.T
	p *PDPPart
}

func (g *evictGuard) Event(ev cache.Event) {
	if ev.Kind == cache.EvEvict && g.p.rpd[ev.Set*g.p.cfg.Ways+ev.Way] > 0 {
		g.t.Fatalf("protected line evicted (set %d way %d)", ev.Set, ev.Way)
	}
}

func TestPDPPartShrinksStreamingThread(t *testing.T) {
	// A streaming thread must end up with minimal protection so the
	// reusing thread keeps the cache.
	const sets, ways = 64, 16
	cfg := PDPPartConfig{Sets: sets, Ways: ways, Threads: 2, SC: 4, RecomputeEvery: 40000}
	p := NewPDPPart(cfg)
	c := cache.New(cache.Config{Name: "t", Sets: sets, Ways: ways, LineSize: 64, AllowBypass: true}, p)
	g0 := trace.NewLoopGen("t0", 12*sets, 1, 1)
	g1 := trace.NewStreamGen("t1", 2)
	rng := trace.NewRNG(5)
	for i := 0; i < 600000; i++ {
		if rng.Bernoulli(0.5) {
			a := g0.Next()
			a.Thread = 0
			c.Access(a)
		} else {
			a := g1.Next()
			a.Thread = 1
			c.Access(a)
		}
	}
	pds := p.PDs()
	if pds[1] >= pds[0] {
		t.Fatalf("PDs = %v: streaming thread must get a smaller PD", pds)
	}
	if c.Stats.HitRate() < 0.3 {
		t.Fatalf("hit rate %.3f: reuser's working set should be retained", c.Stats.HitRate())
	}
}
