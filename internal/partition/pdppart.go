package partition

import (
	"sort"

	"pdp/internal/cache"
	"pdp/internal/core"
	"pdp/internal/sampler"
	"pdp/internal/trace"
)

// PDPPartConfig parameterizes the PD-based shared-cache partitioning policy
// (paper Sec. 4).
type PDPPartConfig struct {
	Sets, Ways, Threads int
	// DMax, NC as in the single-core PDP; SC defaults to 16 (the paper's
	// multicore counter step).
	DMax, NC, SC int
	// RecomputeEvery is the PD-vector recomputation interval in accesses.
	RecomputeEvery uint64
	// DE overrides d_e (0 = Ways).
	DE int
	// PeaksPerThread bounds the per-thread peak candidates (paper: 3).
	PeaksPerThread int
}

func (c *PDPPartConfig) setDefaults() {
	if c.DMax == 0 {
		c.DMax = 256
	}
	if c.NC == 0 {
		c.NC = 8
	}
	if c.SC == 0 {
		c.SC = 16
	}
	if c.RecomputeEvery == 0 {
		c.RecomputeEvery = 512 * 1024
	}
	if c.DE == 0 {
		c.DE = c.Ways
	}
	if c.PeaksPerThread == 0 {
		c.PeaksPerThread = 3
	}
}

// PDPPart manages a shared LLC with one protecting distance per thread,
// chosen to maximize the multi-core hit-rate model E_m (paper Eq. 2):
// decreasing a thread's PD shrinks its effective partition; increasing it
// grows it. Replacement is the bypass PDP rule: victimize any unprotected
// line, else bypass.
type PDPPart struct {
	cfg    PDPPartConfig
	sd     int
	rpdMax uint16

	pds   []int
	rpd   []uint16
	owner []int16
	sdCnt []uint32
	smp   *sampler.MultiRDSampler
	accs  uint64

	// Recomputes counts PD-vector recomputations.
	Recomputes uint64
}

var _ cache.Policy = (*PDPPart)(nil)

// NewPDPPart builds the PD-based partitioning policy.
func NewPDPPart(cfg PDPPartConfig) *PDPPart {
	cfg.setDefaults()
	if cfg.Sets <= 0 || cfg.Ways <= 0 || cfg.Threads <= 0 {
		panic("partition: invalid PDPPart geometry")
	}
	sd := cfg.DMax >> uint(cfg.NC)
	if sd < 1 {
		sd = 1
	}
	p := &PDPPart{
		cfg:    cfg,
		sd:     sd,
		rpdMax: uint16(1<<uint(cfg.NC)) - 1,
		pds:    make([]int, cfg.Threads),
		rpd:    make([]uint16, cfg.Sets*cfg.Ways),
		owner:  make([]int16, cfg.Sets*cfg.Ways),
		sdCnt:  make([]uint32, cfg.Sets),
	}
	scfg := sampler.RealConfig(cfg.Sets, cfg.SC)
	scfg.DMax = cfg.DMax
	// Keep the paper's 1-in-64 set sampling ratio as the shared LLC grows
	// with the core count (32 sets is 1/64 of the single-core 2048).
	if s := cfg.Sets / 64; s > scfg.SampledSets {
		scfg.SampledSets = s
	}
	p.smp = sampler.NewMulti(scfg, cfg.Threads)
	for i := range p.owner {
		p.owner[i] = -1
	}
	for t := 0; t < cfg.Threads; t++ {
		p.pds[t] = cfg.Ways // LRU-like warm-up
	}
	return p
}

// Name implements cache.Policy.
func (p *PDPPart) Name() string { return "PDP-Part" }

// PDs returns the current per-thread protecting distances.
func (p *PDPPart) PDs() []int { return append([]int(nil), p.pds...) }

func (p *PDPPart) thread(acc trace.Access) int {
	if acc.Thread < 0 || acc.Thread >= p.cfg.Threads {
		return 0
	}
	return acc.Thread
}

func (p *PDPPart) steps(pd int) uint16 {
	s := (pd + p.sd - 1) / p.sd
	if s < 1 {
		s = 1
	}
	if s > int(p.rpdMax) {
		s = int(p.rpdMax)
	}
	return uint16(s)
}

// Hit implements cache.Policy: promote with the owning thread's PD.
func (p *PDPPart) Hit(set, way int, acc trace.Access) {
	i := set*p.cfg.Ways + way
	t := p.owner[i]
	if t < 0 {
		t = int16(p.thread(acc))
	}
	p.rpd[i] = p.steps(p.pds[t])
}

// Victim implements cache.Policy: any unprotected line, else bypass.
func (p *PDPPart) Victim(set int, _ trace.Access) (int, bool) {
	base := set * p.cfg.Ways
	for w := 0; w < p.cfg.Ways; w++ {
		if p.rpd[base+w] == 0 {
			return w, false
		}
	}
	return 0, true
}

// Insert implements cache.Policy.
func (p *PDPPart) Insert(set, way int, acc trace.Access) {
	i := set*p.cfg.Ways + way
	t := p.thread(acc)
	p.owner[i] = int16(t)
	p.rpd[i] = p.steps(p.pds[t])
}

// Evict implements cache.Policy.
func (p *PDPPart) Evict(set, way int) {
	i := set*p.cfg.Ways + way
	p.rpd[i] = 0
	p.owner[i] = -1
}

// PostAccess implements cache.Policy.
func (p *PDPPart) PostAccess(set int, acc trace.Access) {
	p.sdCnt[set]++
	if p.sdCnt[set] >= uint32(p.sd) {
		p.sdCnt[set] = 0
		base := set * p.cfg.Ways
		for w := 0; w < p.cfg.Ways; w++ {
			if p.rpd[base+w] > 0 {
				p.rpd[base+w]--
			}
		}
	}
	p.smp.Access(set, p.thread(acc), acc.Addr)
	p.accs++
	if p.accs%p.cfg.RecomputeEvery == 0 {
		p.recompute()
	}
}

// threadModel captures one thread's hit/occupancy curves for E_m.
type threadModel struct {
	t     int
	peaks []core.Peak
	// prefix sums over the counter array at each boundary k: hits H and
	// weighted occupancy sum(N_i * d_i).
	sumN  []float64
	sumNd []float64
	dist  []int
	nt    float64
	de    float64
	bestE float64
}

// ha returns (H_t(dp), A_t(dp)) for a protecting distance dp.
func (m *threadModel) ha(dp int) (float64, float64) {
	// Find the boundary covering dp.
	k := sort.SearchInts(m.dist, dp)
	if k >= len(m.dist) {
		k = len(m.dist) - 1
	}
	h := m.sumN[k]
	a := m.sumNd[k] + (m.nt-h)*(float64(m.dist[k])+m.de)
	return h, a
}

func (p *PDPPart) buildModel(t int) *threadModel {
	arr := p.smp.Array(t)
	k := arr.K()
	peaks := core.Peaks(arr, p.cfg.DE, p.cfg.PeaksPerThread)
	// Confidence filter: the shared FIFO's 16-bit partial tags produce a
	// trickle of false matches across threads (~0.05% of accesses). A
	// thread whose measured reuse is in that noise floor has no real peaks
	// — protecting it would be pure pollution. Note the sampler detects
	// only ~1-in-M reuses (entries are inserted every M-th access), so a
	// thread with 2% true reuse measures ~0.25%.
	var hits uint64
	for i := 0; i < k; i++ {
		hits += uint64(arr.Count(i))
	}
	if nt := arr.Total(); nt > 0 && float64(hits) < 0.0025*float64(nt) {
		peaks = nil
	}
	m := &threadModel{
		t:     t,
		peaks: peaks,
		sumN:  make([]float64, k),
		sumNd: make([]float64, k),
		dist:  make([]int, k),
		nt:    float64(arr.Total()),
		de:    float64(p.cfg.DE),
	}
	var sn, snd float64
	for i := 0; i < k; i++ {
		sn += float64(arr.Count(i))
		snd += float64(arr.Count(i)) * float64(arr.Dist(i))
		m.sumN[i] = sn
		m.sumNd[i] = snd
		m.dist[i] = arr.Dist(i)
	}
	if len(m.peaks) > 0 {
		m.bestE = m.peaks[0].E
	}
	return m
}

// em evaluates the multi-core hit-rate approximation E_m for an assignment
// of PDs to a subset of thread models.
func em(models []*threadModel, pds []int) float64 {
	var hits, accs float64
	for i, m := range models {
		h, a := m.ha(pds[i])
		hits += h
		accs += a
	}
	if accs == 0 {
		return 0
	}
	return hits / accs
}

// recompute runs the paper's greedy heuristic: sort threads by their
// standalone best E; add one thread at a time, trying only its top peaks
// and keeping the combination maximizing E_m.
func (p *PDPPart) recompute() {
	p.Recomputes++
	models := make([]*threadModel, p.cfg.Threads)
	for t := 0; t < p.cfg.Threads; t++ {
		models[t] = p.buildModel(t)
	}
	order := make([]int, p.cfg.Threads)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		return models[order[a]].bestE > models[order[b]].bestE
	})

	var chosen []*threadModel
	var pds []int
	for _, t := range order {
		m := models[t]
		// Candidates are the thread's top single-core E peaks (paper
		// Sec. 4: three peaks per thread suffice). A thread with no
		// measurable reuse below d_max gets minimal protection — its lines
		// die immediately, yielding the space (the "decrease the PD to
		// shrink the partition" lever).
		cands := m.peaks
		if len(cands) == 0 {
			cands = []core.Peak{{PD: 1}}
		}
		bestPD, bestEm := cands[0].PD, -1.0
		for _, c := range cands {
			v := em(append(chosen, m), append(pds, c.PD))
			if v > bestEm {
				bestEm, bestPD = v, c.PD
			}
		}
		chosen = append(chosen, m)
		pds = append(pds, bestPD)
	}

	// Refinement sweeps: re-optimize each thread's PD with all others
	// fixed (the paper's combination search is O(T^2 S); the greedy pass
	// alone locks in choices made before later threads were known). When
	// the assignment demands more total occupancy than the cache supplies
	// (W units per access — acute with many threads per way), yielding a
	// thread's space entirely becomes a candidate: E_m cannot deliver
	// H_t(d_p) hits for lines that never fit.
	supply := 0.0
	for _, m := range models {
		supply += m.nt
	}
	supply *= float64(p.cfg.Ways)
	demand := func() float64 {
		var a float64
		for i, m := range chosen {
			_, at := m.ha(pds[i])
			a += at
		}
		return a
	}
	for pass := 0; pass < 3; pass++ {
		changed := false
		oversub := demand() > supply
		for i, m := range chosen {
			cands := m.peaks
			if oversub {
				cands = append(append([]core.Peak(nil), cands...), core.Peak{PD: 1})
			}
			if len(cands) == 0 {
				continue
			}
			bestPD, bestEm := pds[i], em(chosen, pds)
			for _, c := range cands {
				old := pds[i]
				pds[i] = c.PD
				if v := em(chosen, pds); v > bestEm {
					bestEm, bestPD = v, c.PD
				}
				pds[i] = old
			}
			if bestPD != pds[i] {
				pds[i] = bestPD
				changed = true
			}
		}
		if !changed {
			break
		}
	}

	for i, t := range order {
		if pds[i] > 0 {
			p.pds[t] = pds[i]
		}
	}
	p.smp.ResetArrays()
}
