package partition

import (
	"pdp/internal/cache"
	"pdp/internal/trace"
)

// UCP is Utility-based Cache Partitioning: a UMON per thread, the lookahead
// algorithm computing a way allocation, and an LRU replacement that evicts
// from over-allocated threads first.
type UCP struct {
	sets, ways, threads int
	lru                 *cache.LRU
	umon                *UMON
	alloc               []int
	owner               []int16 // per line
	interval            uint64
	accs                uint64
	occScratch          []int // per-victim occupancy counts (avoids allocation)
}

var _ cache.Policy = (*UCP)(nil)

// NewUCP builds a UCP policy; interval is the repartitioning period in
// accesses (0 selects a default).
func NewUCP(sets, ways, threads int, interval uint64) *UCP {
	if interval == 0 {
		interval = 256 * 1024
	}
	p := &UCP{
		sets: sets, ways: ways, threads: threads,
		lru:        cache.NewLRU(sets, ways),
		umon:       NewUMON(sets, ways, threads),
		alloc:      make([]int, threads),
		owner:      make([]int16, sets*ways),
		interval:   interval,
		occScratch: make([]int, threads),
	}
	for i := range p.owner {
		p.owner[i] = -1
	}
	// Equal initial shares.
	for w := 0; w < ways; w++ {
		p.alloc[w%threads]++
	}
	return p
}

// Name implements cache.Policy.
func (p *UCP) Name() string { return "UCP" }

// Allocation returns the current per-thread way allocation.
func (p *UCP) Allocation() []int { return append([]int(nil), p.alloc...) }

// UMON exposes the monitor (testing).
func (p *UCP) UMON() *UMON { return p.umon }

func (p *UCP) thread(acc trace.Access) int {
	if acc.Thread < 0 || acc.Thread >= p.threads {
		return 0
	}
	return acc.Thread
}

// Hit implements cache.Policy.
func (p *UCP) Hit(set, way int, acc trace.Access) { p.lru.Hit(set, way, acc) }

// Victim implements cache.Policy: evict the LRU line of a thread occupying
// more ways than its allocation; fall back to global LRU.
func (p *UCP) Victim(set int, acc trace.Access) (int, bool) {
	base := set * p.ways
	occ := p.occScratch
	for i := range occ {
		occ[i] = 0
	}
	for w := 0; w < p.ways; w++ {
		if t := p.owner[base+w]; t >= 0 {
			occ[t]++
		}
	}
	// Prefer the requesting thread's own LRU line if it is over target;
	// otherwise any over-allocated thread's LRU line.
	me := p.thread(acc)
	victimOf := func(pred func(t int) bool) int {
		best := -1
		for _, w := range reverseStack(p.lru, set) { // LRU-first order
			t := int(p.owner[base+w])
			if t >= 0 && pred(t) {
				best = w
				break
			}
		}
		return best
	}
	if occ[me] > p.alloc[me] {
		if w := victimOf(func(t int) bool { return t == me }); w >= 0 {
			return w, false
		}
	}
	if w := victimOf(func(t int) bool { return occ[t] > p.alloc[t] }); w >= 0 {
		return w, false
	}
	return p.lru.Victim(set, acc)
}

// reverseStack returns ways ordered LRU-first.
func reverseStack(lru *cache.LRU, set int) []int {
	order := lru.StackOrder(set)
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	return order
}

// Insert implements cache.Policy.
func (p *UCP) Insert(set, way int, acc trace.Access) {
	p.lru.Insert(set, way, acc)
	p.owner[set*p.ways+way] = int16(p.thread(acc))
}

// Evict implements cache.Policy.
func (p *UCP) Evict(set, way int) {
	p.lru.Evict(set, way)
	p.owner[set*p.ways+way] = -1
}

// PostAccess implements cache.Policy: feeds the UMON and repartitions
// periodically.
func (p *UCP) PostAccess(set int, acc trace.Access) {
	if !acc.WB {
		p.umon.Access(set, p.thread(acc), acc.Addr)
	}
	p.accs++
	if p.accs%p.interval == 0 {
		p.alloc = p.umon.Lookahead()
		p.umon.Decay()
	}
}
