// Package partition implements the PDP paper's multi-core shared-LLC
// policies: the PD-based partitioning of Sec. 4 and its comparison points
// UCP (Qureshi & Patt, MICRO 2006) and PIPP (Xie & Loh, ISCA 2009).
// TA-DRRIP, the paper's multi-core baseline, lives in internal/rrip.
package partition

import (
	"fmt"

	"pdp/internal/trace"
)

// UMON is a utility monitor: one auxiliary tag directory (ATD) per thread
// over a few sampled sets, with true-LRU stack-distance hit counters. It
// answers "how many hits would thread t get with w ways?" and implements
// the lookahead partitioning algorithm used by both UCP and PIPP.
type UMON struct {
	threads, ways int
	stride        int
	sampledSets   int

	// atd[t][slot] is an LRU-ordered tag list (MRU first) per thread/slot.
	atd [][][]uint64
	// hits[t][pos] counts hits at 1-based LRU stack position pos.
	hits [][]uint64
	// misses[t] counts ATD misses.
	misses []uint64
}

// NewUMON builds a monitor with up to 32 sampled sets.
func NewUMON(sets, ways, threads int) *UMON {
	if threads < 1 || ways < 1 || sets < 1 {
		panic(fmt.Sprintf("partition: invalid UMON geometry sets=%d ways=%d threads=%d", sets, ways, threads))
	}
	sampled := 32
	if sampled > sets {
		sampled = sets
	}
	u := &UMON{
		threads:     threads,
		ways:        ways,
		stride:      sets / sampled,
		sampledSets: sampled,
		atd:         make([][][]uint64, threads),
		hits:        make([][]uint64, threads),
		misses:      make([]uint64, threads),
	}
	for t := 0; t < threads; t++ {
		u.atd[t] = make([][]uint64, sampled)
		u.hits[t] = make([]uint64, ways+1)
	}
	return u
}

// Access feeds one access into the monitor (no-op for unsampled sets).
func (u *UMON) Access(set, thread int, addr uint64) {
	if thread < 0 || thread >= u.threads || set%u.stride != 0 {
		return
	}
	slot := set / u.stride
	if slot >= u.sampledSets {
		return
	}
	tag := addr / trace.LineSize
	st := u.atd[thread][slot]
	for i, a := range st {
		if a == tag {
			u.hits[thread][i+1]++
			copy(st[1:i+1], st[:i])
			st[0] = tag
			return
		}
	}
	u.misses[thread]++
	if len(st) < u.ways {
		st = append(st, 0)
	}
	copy(st[1:], st)
	st[0] = tag
	u.atd[thread][slot] = st
}

// Utility returns the hits thread t would see with w ways (prefix sum of
// stack-distance counters).
func (u *UMON) Utility(t, w int) uint64 {
	if w > u.ways {
		w = u.ways
	}
	var s uint64
	for i := 1; i <= w; i++ {
		s += u.hits[t][i]
	}
	return s
}

// Misses returns the monitored miss count of thread t.
func (u *UMON) Misses(t int) uint64 { return u.misses[t] }

// Accesses returns the monitored access count of thread t.
func (u *UMON) Accesses(t int) uint64 {
	return u.misses[t] + u.Utility(t, u.ways)
}

// Decay halves all counters (periodic aging).
func (u *UMON) Decay() {
	for t := 0; t < u.threads; t++ {
		for i := range u.hits[t] {
			u.hits[t][i] /= 2
		}
		u.misses[t] /= 2
	}
}

// Lookahead runs the UCP lookahead partitioning algorithm: every thread
// gets at least one way; the remaining ways go, greedily, to the thread
// with the highest marginal utility per way over any lookahead extent.
func (u *UMON) Lookahead() []int {
	alloc := make([]int, u.threads)
	balance := u.ways
	for t := range alloc {
		alloc[t] = 1
		balance--
	}
	if balance < 0 {
		// More threads than ways: round-robin single ways (degenerate).
		for t := range alloc {
			alloc[t] = 0
		}
		for w := 0; w < u.ways; w++ {
			alloc[w%u.threads]++
		}
		return alloc
	}
	for balance > 0 {
		bestT, bestK := -1, 0
		bestMU := -1.0
		for t := 0; t < u.threads; t++ {
			base := u.Utility(t, alloc[t])
			for k := 1; k <= balance && alloc[t]+k <= u.ways; k++ {
				mu := float64(u.Utility(t, alloc[t]+k)-base) / float64(k)
				if mu > bestMU {
					bestMU, bestT, bestK = mu, t, k
				}
			}
		}
		if bestT < 0 {
			break
		}
		if bestMU <= 0 {
			// No thread benefits: spread the remainder round-robin.
			for i := 0; balance > 0; i = (i + 1) % u.threads {
				if alloc[i] < u.ways {
					alloc[i]++
					balance--
				}
			}
			break
		}
		alloc[bestT] += bestK
		balance -= bestK
	}
	return alloc
}
