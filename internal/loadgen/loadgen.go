// Package loadgen replays deterministic workload.ServiceStream request
// mixes against a kvserver over HTTP — the serving-layer analogue of the
// simulator's trace driver. Each worker owns a stream seeded from the base
// seed and its worker index, so a run is reproducible for any worker
// count, and the same seeded stream can be replayed against a PDP and an
// LRU server for an apples-to-apples hit-rate comparison.
package loadgen

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"pdp/internal/telemetry"
	"pdp/internal/workload"
)

// Config parameterizes a load run.
type Config struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:7070".
	BaseURL string
	// Mix is the request mix each worker replays.
	Mix workload.ServiceConfig
	// Workers is the number of concurrent client goroutines (default 1).
	Workers int
	// Ops is the number of operations per worker (default 10000).
	Ops int
	// Seed is the base seed; worker w uses Seed + w.
	Seed uint64
	// Registry, when set, receives the loadgen.latency_ns histogram; the
	// Result carries latency quantiles either way.
	Registry *telemetry.Registry
}

func (c *Config) setDefaults() error {
	if c.BaseURL == "" {
		return fmt.Errorf("loadgen: BaseURL required")
	}
	if c.Workers == 0 {
		c.Workers = 1
	}
	if c.Ops == 0 {
		c.Ops = 10000
	}
	if c.Workers < 0 || c.Ops < 0 {
		return fmt.Errorf("loadgen: Workers=%d Ops=%d must be positive", c.Workers, c.Ops)
	}
	return c.Mix.Validate()
}

// Result aggregates one load run.
type Result struct {
	Ops      uint64        `json:"ops"`
	Errors   uint64        `json:"errors"`
	Hits     uint64        `json:"hits"`
	Misses   uint64        `json:"misses"`
	Denies   uint64        `json:"denies"`
	Duration time.Duration `json:"duration_ns"`
	// Client-observed request latency in microseconds: the mean plus
	// quantiles interpolated from the log2 nanosecond histogram.
	MeanLatencyUS float64 `json:"mean_latency_us"`
	P50LatencyUS  float64 `json:"p50_latency_us"`
	P90LatencyUS  float64 `json:"p90_latency_us"`
	P99LatencyUS  float64 `json:"p99_latency_us"`
	P999LatencyUS float64 `json:"p999_latency_us"`
}

// HitRate returns Hits/(Hits+Misses) — the client-observed GET hit rate.
func (r Result) HitRate() float64 {
	if r.Hits+r.Misses == 0 {
		return 0
	}
	return float64(r.Hits) / float64(r.Hits+r.Misses)
}

// Throughput returns operations per second.
func (r Result) Throughput() float64 {
	if r.Duration <= 0 {
		return 0
	}
	return float64(r.Ops) / r.Duration.Seconds()
}

// Run replays the mix until every worker finishes its ops or ctx is
// cancelled. Transport errors are counted, not fatal (the harness's
// graceful-degradation convention).
func Run(ctx context.Context, cfg Config) (Result, error) {
	if err := cfg.setDefaults(); err != nil {
		return Result{}, err
	}
	base := strings.TrimSuffix(cfg.BaseURL, "/")
	hist := cfg.Registry.Histogram("loadgen.latency_ns")
	if hist == nil {
		// No registry: keep a private histogram so the Result still
		// reports quantiles.
		hist = &telemetry.Histogram{}
	}

	var (
		mu  sync.Mutex
		res Result
	)
	client := &http.Client{Timeout: 10 * time.Second}
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			stream := workload.NewServiceStream(cfg.Mix, cfg.Seed+uint64(w))
			worker := newWorker(client, base, hist)
			for i := 0; i < cfg.Ops; i++ {
				if ctx.Err() != nil {
					break
				}
				worker.do(stream.Next())
			}
			mu.Lock()
			res.Ops += worker.ops
			res.Errors += worker.errors
			res.Hits += worker.hits
			res.Misses += worker.misses
			res.Denies += worker.denies
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	res.Duration = time.Since(start)
	if hist.Count() > 0 {
		q := hist.Summary()
		res.MeanLatencyUS = hist.Mean() / 1e3
		res.P50LatencyUS = q.P50 / 1e3
		res.P90LatencyUS = q.P90 / 1e3
		res.P99LatencyUS = q.P99 / 1e3
		res.P999LatencyUS = q.P999 / 1e3
	}
	return res, ctx.Err()
}

// worker is one client goroutine's state.
type worker struct {
	client *http.Client
	base   string
	hist   *telemetry.Histogram
	buf    []byte

	ops, errors, hits, misses, denies uint64
}

func newWorker(client *http.Client, base string, hist *telemetry.Histogram) *worker {
	return &worker{client: client, base: base, hist: hist, buf: make([]byte, 1<<16)}
}

// do issues one operation cache-aside: a GET that misses is followed by a
// PUT of the key's deterministic value.
func (w *worker) do(op workload.Op) {
	key := fmt.Sprintf("k%016x", op.Key)
	switch op.Kind {
	case workload.OpGet:
		hit, err := w.get(key)
		if err != nil {
			w.errors++
			return
		}
		w.ops++
		if hit {
			w.hits++
		} else {
			w.misses++
			w.put(key, op.Size)
		}
	case workload.OpPut:
		w.ops++
		w.put(key, op.Size)
	case workload.OpDelete:
		w.ops++
		req, _ := http.NewRequest(http.MethodDelete, w.base+"/kv/"+key, nil)
		if resp, err := w.client.Do(req); err != nil {
			w.errors++
		} else {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}
}

func (w *worker) get(key string) (bool, error) {
	t0 := time.Now()
	resp, err := w.client.Get(w.base + "/kv/" + key)
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	w.hist.Observe(uint64(time.Since(t0).Nanoseconds()))
	switch resp.StatusCode {
	case http.StatusOK:
		return true, nil
	case http.StatusNotFound:
		return false, nil
	default:
		return false, fmt.Errorf("GET %s: %s", key, resp.Status)
	}
}

func (w *worker) put(key string, size int) {
	if size <= 0 {
		size = 64
	}
	for size > len(w.buf) {
		w.buf = append(w.buf, make([]byte, len(w.buf))...)
	}
	req, _ := http.NewRequest(http.MethodPut, w.base+"/kv/"+key, bytes.NewReader(w.buf[:size]))
	t0 := time.Now()
	resp, err := w.client.Do(req)
	if err != nil {
		w.errors++
		return
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	w.hist.Observe(uint64(time.Since(t0).Nanoseconds()))
	if resp.StatusCode == http.StatusNoContent && resp.Header.Get("X-Cache") == "deny" {
		w.denies++
	}
}
