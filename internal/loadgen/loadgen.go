// Package loadgen replays deterministic workload.ServiceStream request
// mixes against a kvserver over HTTP — the serving-layer analogue of the
// simulator's trace driver. Each worker owns a stream seeded from the base
// seed and its worker index, so a run is reproducible for any worker
// count, and the same seeded stream can be replayed against a PDP and an
// LRU server for an apples-to-apples hit-rate comparison.
//
// The client is overload-aware: it propagates a per-request deadline via
// X-Deadline, retries shed (503) and transport-failed requests with
// capped exponential backoff plus seeded jitter, and classifies every
// failure — shed vs timeout vs transport vs server error — so a chaos
// campaign can tell load shedding (availability working as designed)
// from actual unavailability. Sheds and failures never pollute the
// measured hit rate: hits and misses count only from definitive 200/404
// answers.
//
// With Batch > 1 the client switches to the batched wire protocol: each
// worker buffers Batch consecutive ops from its stream and ships them as
// one POST /batch, then books a per-op outcome from each response row.
// Latency is recorded amortized — the batch's wall time divided by its
// size, observed once per op — so quantiles and Throughput() stay
// per-operation comparable with the unbatched path.
package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"strings"
	"sync"
	"syscall"
	"time"

	"pdp/internal/telemetry"
	"pdp/internal/trace"
	"pdp/internal/workload"
)

// Config parameterizes a load run.
type Config struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:7070".
	BaseURL string
	// Targets, when set, drives several servers (a cluster) instead of the
	// single BaseURL: workers spread their traffic round-robin across the
	// list and rotate to the next target when a retryable failure (shed,
	// transport, connection refused) suggests the current one is in
	// trouble. The Result then carries per-target attribution.
	Targets []string
	// Mix is the request mix each worker replays.
	Mix workload.ServiceConfig
	// Workers is the number of concurrent client goroutines (default 1).
	Workers int
	// Ops is the number of operations per worker (default 10000).
	Ops int
	// Batch, when > 1, groups each worker's ops into POST /batch requests
	// of this size (a final short batch flushes the remainder). GET misses
	// are filled cache-aside through a follow-up fill batch. Per-op
	// accounting is preserved: each response row books one outcome, a
	// whole-batch shed or failure books one outcome per op it carried, and
	// Ops/Hits/Misses keep their per-operation meaning. 0 or 1 drives the
	// unbatched per-op protocol.
	Batch int
	// Seed is the base seed; worker w uses Seed + w.
	Seed uint64
	// Retries is how many times a shed (503) or transport-failed request
	// is re-issued after backoff (default 2; negative disables retries).
	// Timeouts are not retried — their budget is already spent.
	Retries int
	// RampRetries is the separate, larger budget for connection-refused
	// retries (default 8; negative disables). A refused connection during
	// a cluster's startup ramp — the process is booting, the port is not
	// bound yet — is a timing artifact, not unavailability, so it backs
	// off and retries under this budget instead of immediately counting
	// against availability. Only an operation that exhausts the budget
	// books a transport error.
	RampRetries int
	// RetryBase and RetryMax shape the capped exponential backoff between
	// retries (defaults 10ms and 250ms); each wait is jittered by a
	// seeded uniform factor in [0.5, 1.5) so synchronized workers do not
	// retry in lockstep.
	RetryBase, RetryMax time.Duration
	// Deadline, when positive, is each request's time budget: sent to the
	// server as X-Deadline and enforced client-side via the request
	// context.
	Deadline time.Duration
	// Registry, when set, receives the loadgen.latency_ns histogram; the
	// Result carries latency quantiles either way.
	Registry *telemetry.Registry
}

func (c *Config) setDefaults() error {
	if len(c.Targets) == 0 {
		if c.BaseURL == "" {
			return fmt.Errorf("loadgen: BaseURL or Targets required")
		}
		c.Targets = []string{c.BaseURL}
	}
	for i, t := range c.Targets {
		if t == "" {
			return fmt.Errorf("loadgen: empty target at index %d", i)
		}
		c.Targets[i] = strings.TrimSuffix(t, "/")
	}
	if c.Workers == 0 {
		c.Workers = 1
	}
	if c.Ops == 0 {
		c.Ops = 10000
	}
	if c.Workers < 0 || c.Ops < 0 {
		return fmt.Errorf("loadgen: Workers=%d Ops=%d must be positive", c.Workers, c.Ops)
	}
	if c.Batch < 0 {
		return fmt.Errorf("loadgen: Batch=%d must be >= 0", c.Batch)
	}
	if c.Retries == 0 {
		c.Retries = 2
	}
	if c.Retries < 0 {
		c.Retries = 0
	}
	if c.RampRetries == 0 {
		c.RampRetries = 8
	}
	if c.RampRetries < 0 {
		c.RampRetries = 0
	}
	if c.RetryBase <= 0 {
		c.RetryBase = 10 * time.Millisecond
	}
	if c.RetryMax <= 0 {
		c.RetryMax = 250 * time.Millisecond
	}
	if c.Deadline < 0 {
		return fmt.Errorf("loadgen: Deadline must be >= 0, got %v", c.Deadline)
	}
	return c.Mix.Validate()
}

// Result aggregates one load run.
type Result struct {
	Ops      uint64        `json:"ops"`
	Errors   uint64        `json:"errors"`
	Hits     uint64        `json:"hits"`
	Misses   uint64        `json:"misses"`
	Denies   uint64        `json:"denies"`
	Duration time.Duration `json:"duration_ns"`
	// The failure taxonomy, by final per-operation outcome after retries:
	// Sheds are 503 answers (overload protection working as designed, so
	// excluded from Errors), Timeouts are 504s plus client-side deadline
	// expiries, Transport connection-level failures, Server5xx any other
	// 5xx. Errors aggregates Timeouts + Transport + Server5xx. Retries
	// counts re-issued requests (attempts beyond each operation's first).
	Sheds     uint64 `json:"sheds"`
	Timeouts  uint64 `json:"timeouts"`
	Transport uint64 `json:"transport_errors"`
	Server5xx uint64 `json:"server_5xx"`
	Retries   uint64 `json:"retries"`
	// Refused counts connection-refused attempts retried under the ramp
	// budget (RampRetries). They are visible here but count against
	// availability only when an operation exhausts that budget (it then
	// books a transport error).
	Refused uint64 `json:"refused_retries"`
	// PerTarget attributes traffic to each driven server (present only
	// for multi-target runs). Counters are attempt-level — each attempt
	// is booked against the target that actually answered (or failed) —
	// so after a node dies its column stops growing and the survivors'
	// columns absorb the load.
	PerTarget map[string]*TargetResult `json:"per_target,omitempty"`
	// Client-observed request latency in microseconds: the mean plus
	// quantiles interpolated from the log2 nanosecond histogram.
	MeanLatencyUS float64 `json:"mean_latency_us"`
	P50LatencyUS  float64 `json:"p50_latency_us"`
	P90LatencyUS  float64 `json:"p90_latency_us"`
	P99LatencyUS  float64 `json:"p99_latency_us"`
	P999LatencyUS float64 `json:"p999_latency_us"`
}

// TargetResult is one target's attempt-level attribution in a
// multi-target run.
type TargetResult struct {
	// Answers counts definitive answers (2xx/404) this target served.
	Answers uint64 `json:"answers"`
	// Hits/Misses split this target's definitive GET answers.
	Hits   uint64 `json:"hits"`
	Misses uint64 `json:"misses"`
	// Sheds counts 503 answers; Errors counts failed attempts (timeout,
	// transport, refused, 5xx) against this target.
	Sheds  uint64 `json:"sheds"`
	Errors uint64 `json:"errors"`
	// HitRate is Hits/(Hits+Misses), 0 when undefined.
	HitRate float64 `json:"hit_rate"`
	// Client-observed latency for requests this target answered.
	MeanLatencyUS float64 `json:"mean_latency_us"`
	P99LatencyUS  float64 `json:"p99_latency_us"`
}

// HitRate returns Hits/(Hits+Misses) — the client-observed GET hit rate,
// over definitive answers only (sheds, timeouts and errors are excluded).
func (r Result) HitRate() float64 {
	if r.Hits+r.Misses == 0 {
		return 0
	}
	return float64(r.Hits) / float64(r.Hits+r.Misses)
}

// Availability returns the fraction of operations that received an
// orderly answer — success or an explicit shed — as opposed to a
// timeout, transport failure, or server error. An overloaded server that
// sheds cleanly is available; one that times out or 500s is not.
func (r Result) Availability() float64 {
	total := r.Ops + r.Sheds + r.Errors
	if total == 0 {
		return 1
	}
	return float64(r.Ops+r.Sheds) / float64(total)
}

// Throughput returns operations per second.
func (r Result) Throughput() float64 {
	if r.Duration <= 0 {
		return 0
	}
	return float64(r.Ops) / r.Duration.Seconds()
}

// finite clamps non-finite values (NaN, ±Inf — what an unguarded zero
// denominator produces) to 0. encoding/json refuses to encode NaN or Inf
// and fails the whole document, so every derived ratio passes through
// here before entering the JSON report.
func finite(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return v
}

// MarshalJSON emits the raw counters plus the derived ratios — hit_rate,
// availability, throughput_ops_s — precomputed and NaN-proofed, so the
// `pdpload -json` report stays valid JSON even for an all-shed or
// zero-operation run.
func (r Result) MarshalJSON() ([]byte, error) {
	type plain Result // drops the method set, avoiding recursion
	return json.Marshal(struct {
		plain
		HitRate        float64 `json:"hit_rate"`
		Availability   float64 `json:"availability"`
		ThroughputOpsS float64 `json:"throughput_ops_s"`
	}{
		plain:          plain(r),
		HitRate:        finite(r.HitRate()),
		Availability:   finite(r.Availability()),
		ThroughputOpsS: finite(r.Throughput()),
	})
}

// Run replays the mix until every worker finishes its ops or ctx is
// cancelled. Failures are counted, not fatal (the harness's
// graceful-degradation convention).
func Run(ctx context.Context, cfg Config) (Result, error) {
	if err := cfg.setDefaults(); err != nil {
		return Result{}, err
	}
	hist := cfg.Registry.Histogram("loadgen.latency_ns")
	if hist == nil {
		// No registry: keep a private histogram so the Result still
		// reports quantiles.
		hist = &telemetry.Histogram{}
	}

	var (
		mu  sync.Mutex
		res Result
	)
	// Per-target attribution for multi-target runs: counters merge under
	// mu at worker exit; the latency histograms are atomic, so workers
	// observe into the shared ones directly.
	var thists map[string]*telemetry.Histogram
	if len(cfg.Targets) > 1 {
		res.PerTarget = make(map[string]*TargetResult, len(cfg.Targets))
		thists = make(map[string]*telemetry.Histogram, len(cfg.Targets))
		for _, tgt := range cfg.Targets {
			res.PerTarget[tgt] = &TargetResult{}
			thists[tgt] = &telemetry.Histogram{}
		}
	}
	// The default transport keeps only 2 idle connections per host, so any
	// run with more than 2 workers would churn a fresh TCP connection on
	// nearly every request and measure connection setup instead of the
	// server. Size the pool to the worker count — each worker has at most
	// one request in flight — so every request after warmup reuses a
	// kept-alive connection, and cap total connections per host at the same
	// number so a retry storm cannot dial past the steady-state need.
	tr := &http.Transport{
		Proxy:               http.ProxyFromEnvironment,
		MaxIdleConns:        cfg.Workers * 2,
		MaxIdleConnsPerHost: cfg.Workers,
		MaxConnsPerHost:     cfg.Workers,
		IdleConnTimeout:     90 * time.Second,
	}
	client := &http.Client{Transport: tr, Timeout: 10 * time.Second}
	defer tr.CloseIdleConnections()
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			stream := workload.NewServiceStream(cfg.Mix, cfg.Seed+uint64(w))
			worker := newWorker(client, hist, thists, &cfg, cfg.Seed+uint64(w), w)
			if cfg.Batch > 1 {
				batch := make([]workload.Op, 0, cfg.Batch)
				for i := 0; i < cfg.Ops; i++ {
					if ctx.Err() != nil {
						break
					}
					batch = append(batch, stream.Next())
					if len(batch) == cfg.Batch {
						worker.doBatch(ctx, batch)
						batch = batch[:0]
					}
				}
				if len(batch) > 0 && ctx.Err() == nil {
					worker.doBatch(ctx, batch)
				}
			} else {
				for i := 0; i < cfg.Ops; i++ {
					if ctx.Err() != nil {
						break
					}
					worker.do(ctx, stream.Next())
				}
			}
			mu.Lock()
			res.Ops += worker.ops
			res.Hits += worker.hits
			res.Misses += worker.misses
			res.Denies += worker.denies
			res.Sheds += worker.sheds
			res.Timeouts += worker.timeouts
			res.Transport += worker.transport
			res.Server5xx += worker.server5xx
			res.Retries += worker.retries
			res.Refused += worker.refused
			for tgt, ts := range worker.tstats {
				tr := res.PerTarget[tgt]
				tr.Answers += ts.answers
				tr.Hits += ts.hits
				tr.Misses += ts.misses
				tr.Sheds += ts.sheds
				tr.Errors += ts.errors
			}
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	res.Duration = time.Since(start)
	res.Errors = res.Timeouts + res.Transport + res.Server5xx
	for tgt, tr := range res.PerTarget {
		if tr.Hits+tr.Misses > 0 {
			tr.HitRate = finite(float64(tr.Hits) / float64(tr.Hits+tr.Misses))
		}
		if th := thists[tgt]; th.Count() > 0 {
			tr.MeanLatencyUS = th.Mean() / 1e3
			tr.P99LatencyUS = th.Quantile(0.99) / 1e3
		}
	}
	if hist.Count() > 0 {
		q := hist.Summary()
		res.MeanLatencyUS = hist.Mean() / 1e3
		res.P50LatencyUS = q.P50 / 1e3
		res.P90LatencyUS = q.P90 / 1e3
		res.P99LatencyUS = q.P99 / 1e3
		res.P999LatencyUS = q.P999 / 1e3
	}
	return res, ctx.Err()
}

// outcome classifies one operation's final fate.
type outcome int

const (
	outOK        outcome = iota // a definitive answer (2xx/404)
	outShed                     // 503 after retries: shed by overload protection
	outTimeout                  // 504, or the client-side deadline expired
	outTransport                // connection-level failure after retries
	outServer                   // any other 5xx
	outRefused                  // connection refused: the target is not (yet) listening
)

// tstat is one worker's attempt-level attribution for one target.
type tstat struct {
	answers, hits, misses, sheds, errors uint64
}

// worker is one client goroutine's state.
type worker struct {
	client  *http.Client
	targets []string
	ti      int // current target index (rotates on retryable failures)
	hist    *telemetry.Histogram
	thists  map[string]*telemetry.Histogram // shared, atomic (nil single-target)
	tstats  map[string]*tstat               // private, merged at exit
	buf     []byte
	rng     *trace.RNG

	maxRetries          int
	rampRetries         int
	retryBase, retryMax time.Duration
	deadline            time.Duration

	ops, hits, misses, denies             uint64
	sheds, timeouts, transport, server5xx uint64
	retries, refused                      uint64
}

func newWorker(client *http.Client, hist *telemetry.Histogram, thists map[string]*telemetry.Histogram, cfg *Config, seed uint64, idx int) *worker {
	w := &worker{
		client:      client,
		targets:     cfg.Targets,
		ti:          idx % len(cfg.Targets), // spread workers across targets
		hist:        hist,
		thists:      thists,
		buf:         make([]byte, 1<<16),
		rng:         trace.NewRNG(seed ^ 0xA11A11A1),
		maxRetries:  cfg.Retries,
		rampRetries: cfg.RampRetries,
		retryBase:   cfg.RetryBase,
		retryMax:    cfg.RetryMax,
		deadline:    cfg.Deadline,
	}
	if len(cfg.Targets) > 1 {
		w.tstats = make(map[string]*tstat, len(cfg.Targets))
		for _, t := range cfg.Targets {
			w.tstats[t] = &tstat{}
		}
	}
	return w
}

// target returns the worker's current target; rotate moves to the next
// one (multi-target failover on retryable failures).
func (w *worker) target() string { return w.targets[w.ti] }

func (w *worker) rotate() {
	if len(w.targets) > 1 {
		w.ti = (w.ti + 1) % len(w.targets)
	}
}

// book counts one failed operation's final outcome.
func (w *worker) book(out outcome) {
	switch out {
	case outShed:
		w.sheds++
	case outTimeout:
		w.timeouts++
	case outTransport:
		w.transport++
	case outServer:
		w.server5xx++
	}
}

// do issues one operation cache-aside: a GET that misses is followed by a
// PUT of the key's deterministic value.
func (w *worker) do(ctx context.Context, op workload.Op) {
	key := fmt.Sprintf("k%016x", op.Key)
	switch op.Kind {
	case workload.OpGet:
		status, _, out := w.exchange(ctx, http.MethodGet, key, nil)
		if out != outOK {
			w.book(out)
			return
		}
		w.ops++
		if status == http.StatusOK {
			w.hits++
			return
		}
		w.misses++
		if fillOut, denied := w.put(ctx, key, op.Size); fillOut != outOK {
			w.book(fillOut)
		} else if denied {
			w.denies++
		}
	case workload.OpPut:
		out, denied := w.put(ctx, key, op.Size)
		if out != outOK {
			w.book(out)
			return
		}
		w.ops++
		if denied {
			w.denies++
		}
	case workload.OpDelete:
		_, _, out := w.exchange(ctx, http.MethodDelete, key, nil)
		if out != outOK {
			w.book(out)
			return
		}
		w.ops++
	}
}

// put PUTs a deterministic value of the given size, reporting the
// outcome and whether admission was denied (204 + X-Cache: deny).
func (w *worker) put(ctx context.Context, key string, size int) (outcome, bool) {
	status, xcache, out := w.exchange(ctx, http.MethodPut, key, w.val(size))
	return out, out == outOK && status == http.StatusNoContent && xcache == "deny"
}

// exchange issues one request with the retry loop: sheds and transport
// failures back off (capped exponential, seeded jitter) and retry up to
// maxRetries times; timeouts and server errors return immediately.
// Connection-refused failures — a node that has not bound its port yet,
// or just died — retry under the separate, larger rampRetries budget
// without consuming the regular one, and each retryable failure rotates
// to the next target so a multi-target run fails over instead of
// hammering the dead member. On outOK it returns the status and the
// X-Cache header.
func (w *worker) exchange(ctx context.Context, method, key string, body []byte) (int, string, outcome) {
	for attempt, ramp := 0, 0; ; {
		status, xcache, out := w.once(ctx, method, key, body)
		if out == outOK {
			return status, xcache, outOK
		}
		if out == outRefused {
			w.refused++
			if ramp >= w.rampRetries || ctx.Err() != nil {
				// Ramp budget exhausted: the target really is gone, and
				// from here the refusal is plain unavailability.
				return 0, "", outTransport
			}
			ramp++
			w.rotate()
			w.sleepBackoff(ramp)
			continue
		}
		retryable := out == outShed || out == outTransport
		if !retryable || attempt >= w.maxRetries || ctx.Err() != nil {
			return 0, "", out
		}
		attempt++
		w.retries++
		w.rotate()
		w.sleepBackoff(attempt)
	}
}

// sleepBackoff waits retryBase<<attempt, capped at retryMax, jittered by
// a seeded uniform factor in [0.5, 1.5).
func (w *worker) sleepBackoff(attempt int) {
	d := w.retryBase << uint(attempt)
	if d > w.retryMax || d <= 0 {
		d = w.retryMax
	}
	d = time.Duration(float64(d) * (0.5 + w.rng.Float64()))
	time.Sleep(d)
}

// once issues a single attempt against the current target and
// classifies it, booking attempt-level per-target attribution.
func (w *worker) once(ctx context.Context, method, key string, body []byte) (int, string, outcome) {
	tgt := w.target()
	status, xcache, out := w.attempt(ctx, tgt, method, key, body)
	if ts := w.tstats[tgt]; ts != nil {
		switch out {
		case outOK:
			ts.answers++
			if method == http.MethodGet {
				if status == http.StatusOK {
					ts.hits++
				} else if status == http.StatusNotFound {
					ts.misses++
				}
			}
		case outShed:
			ts.sheds++
		default:
			ts.errors++
		}
	}
	return status, xcache, out
}

func (w *worker) attempt(ctx context.Context, tgt, method, key string, body []byte) (int, string, outcome) {
	if w.deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, w.deadline)
		defer cancel()
	}
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, tgt+"/kv/"+key, rd)
	if err != nil {
		return 0, "", outTransport
	}
	if w.deadline > 0 {
		req.Header.Set("X-Deadline", w.deadline.String())
	}
	t0 := time.Now()
	resp, err := w.client.Do(req)
	if err != nil {
		switch {
		case isTimeout(err):
			return 0, "", outTimeout
		case errors.Is(err, syscall.ECONNREFUSED):
			return 0, "", outRefused
		default:
			return 0, "", outTransport
		}
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	lat := uint64(time.Since(t0).Nanoseconds())
	w.hist.Observe(lat)
	if th := w.thists[tgt]; th != nil {
		th.Observe(lat)
	}
	switch {
	case resp.StatusCode == http.StatusServiceUnavailable:
		return 0, "", outShed
	case resp.StatusCode == http.StatusGatewayTimeout:
		return 0, "", outTimeout
	case resp.StatusCode >= 500:
		return 0, "", outServer
	default:
		return resp.StatusCode, resp.Header.Get("X-Cache"), outOK
	}
}

// isTimeout reports whether a client-side error is a deadline expiry
// rather than a connection failure.
func isTimeout(err error) bool {
	if errors.Is(err, context.DeadlineExceeded) {
		return true
	}
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}
