package loadgen

import (
	"context"
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pdp/internal/workload"
)

// batchStub is an in-memory /batch endpoint with the server's wire
// vocabulary, so accounting tests control every row exactly.
type batchStub struct {
	mu    sync.Mutex
	store map[string][]byte

	batches atomic.Uint64 // POST /batch requests served
	maxOps  atomic.Int64  // largest batch seen
}

func newBatchStub() *batchStub {
	return &batchStub{store: make(map[string][]byte)}
}

func (s *batchStub) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	var ops []batchWireOp
	if err := json.NewDecoder(r.Body).Decode(&ops); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	s.batches.Add(1)
	if n := int64(len(ops)); n > s.maxOps.Load() {
		s.maxOps.Store(n)
	}
	rows := make([]batchWireResult, len(ops))
	s.mu.Lock()
	for i, op := range ops {
		switch op.Op {
		case "get":
			if v, ok := s.store[op.Key]; ok {
				rows[i] = batchWireResult{Status: "hit", Value: v}
			} else {
				rows[i] = batchWireResult{Status: "miss"}
			}
		case "put":
			s.store[op.Key] = append([]byte(nil), op.Value...)
			rows[i] = batchWireResult{Status: "stored"}
		case "delete":
			if _, ok := s.store[op.Key]; ok {
				delete(s.store, op.Key)
				rows[i] = batchWireResult{Status: "deleted"}
			} else {
				rows[i] = batchWireResult{Status: "not_found"}
			}
		default:
			rows[i] = batchWireResult{Status: "error", Error: "unknown op"}
		}
	}
	s.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(rows)
}

// TestBatchAccounting drives the batched client against the stub and
// checks that per-op accounting survives batching: every op books a
// definitive outcome, misses are filled cache-aside (so repeat GETs
// hit), the final short batch flushes, and amortized latency quantiles
// are reported.
func TestBatchAccounting(t *testing.T) {
	stub := newBatchStub()
	srv := httptest.NewServer(stub)
	defer srv.Close()

	const workers, ops, batchN = 2, 100, 8
	res, err := Run(context.Background(), Config{
		BaseURL: srv.URL,
		Mix:     workload.ServiceConfig{Keys: 16, ZipfS: 0.8, ValueBytes: 32, PutFrac: 0.1, DeleteFrac: 0.05},
		Workers: workers,
		Ops:     ops,
		Batch:   batchN,
		Seed:    3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops != workers*ops {
		t.Fatalf("ops=%d, want %d: batching dropped or double-counted operations", res.Ops, workers*ops)
	}
	if res.Errors != 0 || res.Sheds != 0 {
		t.Fatalf("errors=%d sheds=%d against a healthy stub", res.Errors, res.Sheds)
	}
	if res.Misses == 0 {
		t.Fatal("cold store produced no misses")
	}
	if res.Hits == 0 {
		t.Fatal("no hits: cache-aside fills did not reach the store")
	}
	if res.P50LatencyUS <= 0 || res.P99LatencyUS < res.P50LatencyUS {
		t.Fatalf("amortized latency quantiles broken: p50=%v p99=%v", res.P50LatencyUS, res.P99LatencyUS)
	}
	// 100 ops at batch 8 = 12 full batches + 1 flush of 4 per worker,
	// plus fill batches for the misses.
	if got, min := stub.batches.Load(), uint64(workers*13); got < min {
		t.Fatalf("stub served %d batches, want >= %d", got, min)
	}
	if max := stub.maxOps.Load(); max > batchN {
		t.Fatalf("a batch carried %d ops, over the configured %d", max, batchN)
	}
}

// TestBatchWholeBatchShed: a whole-batch 503 retries under the regular
// budget — per batch, not per op — and, once exhausted, books one shed
// per op carried. Orderly sheds stay out of Errors and availability.
func TestBatchWholeBatchShed(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "1")
		http.Error(w, "overloaded", http.StatusServiceUnavailable)
	}))
	defer srv.Close()

	res, err := Run(context.Background(), Config{
		BaseURL:   srv.URL,
		Mix:       getOnlyMix,
		Workers:   1,
		Ops:       4,
		Batch:     4,
		Seed:      1,
		Retries:   2,
		RetryBase: time.Millisecond,
		RetryMax:  2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Sheds != 4 || res.Ops != 0 {
		t.Fatalf("sheds=%d ops=%d, want 4/0: a shed batch books one shed per op", res.Sheds, res.Ops)
	}
	if res.Retries != 2 {
		t.Fatalf("retries=%d, want 2: batch retries are per batch, not per op", res.Retries)
	}
	if res.Errors != 0 || res.Availability() != 1 {
		t.Fatalf("errors=%d availability=%f; sheds are orderly answers", res.Errors, res.Availability())
	}
}

// TestBatchRowShed: a row-level shed (one op's owner refused its
// sub-batch) books a shed for that op alone; the batch's other rows keep
// their definitive outcomes and nothing is retried.
func TestBatchRowShed(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var ops []batchWireOp
		if err := json.NewDecoder(r.Body).Decode(&ops); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		rows := make([]batchWireResult, len(ops))
		for i := range ops {
			if i == 0 {
				rows[i] = batchWireResult{Status: "shed"}
			} else {
				rows[i] = batchWireResult{Status: "hit", Value: []byte("v")}
			}
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(rows)
	}))
	defer srv.Close()

	res, err := Run(context.Background(), Config{
		BaseURL: srv.URL,
		Mix:     getOnlyMix,
		Workers: 1,
		Ops:     4,
		Batch:   4,
		Seed:    1,
		Retries: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Sheds != 1 || res.Hits != 3 || res.Ops != 3 {
		t.Fatalf("sheds=%d hits=%d ops=%d, want 1/3/3", res.Sheds, res.Hits, res.Ops)
	}
	if res.Retries != 0 {
		t.Fatalf("retries=%d; a partially-shed 200 answer is not retryable", res.Retries)
	}
}

// TestConnectionReuse is the transport-tuning regression test: with the
// pool sized to the worker count, a run's connection count stays at the
// steady-state need (one per worker, plus dial races) instead of
// churning a fresh TCP connection per request — which is what the
// default transport's 2-idle-conns-per-host cap produces at 4+ workers.
func TestConnectionReuse(t *testing.T) {
	var newConns atomic.Int64
	srv := httptest.NewUnstartedServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodGet {
			w.Write([]byte("v"))
			return
		}
		w.WriteHeader(http.StatusNoContent)
	}))
	srv.Config.ConnState = func(c net.Conn, s http.ConnState) {
		if s == http.StateNew {
			newConns.Add(1)
		}
	}
	srv.Start()
	defer srv.Close()

	const workers, ops = 4, 200
	res, err := Run(context.Background(), Config{
		BaseURL: srv.URL,
		Mix:     workload.ServiceConfig{Keys: 16, ValueBytes: 16, PutFrac: 0.2},
		Workers: workers,
		Ops:     ops,
		Seed:    5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Fatalf("errors=%d against a healthy stub", res.Errors)
	}
	// workers*ops requests: with keep-alive reuse the server should see
	// about one connection per worker. Allow 2x for dial races; the
	// regression (no pooling past 2 idle conns) produces hundreds.
	if got := newConns.Load(); got > 2*workers {
		t.Fatalf("server saw %d new connections for %d requests from %d workers; transport is not reusing connections",
			got, workers*ops, workers)
	}
}
