package loadgen

// The batched client path: one POST /batch carries Batch consecutive ops
// from the worker's stream, and each row of the JSON answer books one
// per-op outcome, so every Result counter keeps its per-operation
// meaning. A row-level "shed" (the key's owner refused its sub-batch)
// books a shed for that op alone; a whole-batch 503 or transport failure
// retries under the same budgets as the unbatched path and, once
// exhausted, books its outcome once per op carried. GET misses fill
// cache-aside exactly like the per-op client, just grouped: all of a
// batch's misses go out together as one follow-up fill batch.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"syscall"
	"time"

	"pdp/internal/workload"
)

// batchWireOp mirrors the server's /batch request row.
type batchWireOp struct {
	Op    string `json:"op"`
	Key   string `json:"key"`
	Value []byte `json:"value,omitempty"`
}

// batchWireResult mirrors the server's /batch response row.
type batchWireResult struct {
	Status string `json:"status"`
	Value  []byte `json:"value,omitempty"`
	Node   string `json:"node,omitempty"`
	Error  string `json:"error,omitempty"`
}

// val returns the worker's deterministic value buffer sliced to size.
// json.Marshal copies the bytes, so every PUT row of a batch can alias
// the same buffer.
func (w *worker) val(size int) []byte {
	if size <= 0 {
		size = 64
	}
	for size > len(w.buf) {
		w.buf = append(w.buf, make([]byte, len(w.buf))...)
	}
	return w.buf[:size]
}

// doBatch issues one batch of ops and books per-op outcomes from the
// response rows, then fills the batch's GET misses cache-aside.
func (w *worker) doBatch(ctx context.Context, ops []workload.Op) {
	wops := make([]batchWireOp, len(ops))
	for i, op := range ops {
		key := fmt.Sprintf("k%016x", op.Key)
		switch op.Kind {
		case workload.OpGet:
			wops[i] = batchWireOp{Op: "get", Key: key}
		case workload.OpPut:
			wops[i] = batchWireOp{Op: "put", Key: key, Value: w.val(op.Size)}
		case workload.OpDelete:
			wops[i] = batchWireOp{Op: "delete", Key: key}
		}
	}
	rows, out := w.exchangeBatch(ctx, wops)
	if out != outOK {
		for range ops {
			w.book(out)
		}
		return
	}
	var fills []batchWireOp
	for i, row := range rows {
		switch row.Status {
		case "hit":
			w.ops++
			w.hits++
		case "miss":
			w.ops++
			w.misses++
			if wops[i].Op == "get" {
				fills = append(fills, batchWireOp{Op: "put", Key: wops[i].Key, Value: w.val(ops[i].Size)})
			}
		case "stored", "deleted", "not_found":
			w.ops++
		case "denied":
			w.ops++
			w.denies++
		case "shed":
			w.sheds++
		default: // "too_large", "error", or an unknown future status
			w.server5xx++
		}
	}
	if len(fills) == 0 || ctx.Err() != nil {
		return
	}
	// The fill batch mirrors the per-op client's miss-fill PUT: the misses
	// already counted as ops, so fill rows book only denies and failures.
	frows, fout := w.exchangeBatch(ctx, fills)
	if fout != outOK {
		for range fills {
			w.book(fout)
		}
		return
	}
	for _, row := range frows {
		switch row.Status {
		case "denied":
			w.denies++
		case "shed":
			w.sheds++
		case "stored":
		default:
			w.server5xx++
		}
	}
}

// exchangeBatch is the batch analogue of exchange: whole-batch sheds and
// transport failures back off and retry under the regular budget,
// refused connections under the ramp budget, and each retryable failure
// rotates targets. On outOK the returned rows are exactly one per op.
func (w *worker) exchangeBatch(ctx context.Context, wops []batchWireOp) ([]batchWireResult, outcome) {
	body, err := json.Marshal(wops)
	if err != nil {
		return nil, outTransport
	}
	for attempt, ramp := 0, 0; ; {
		rows, out := w.onceBatch(ctx, body, len(wops))
		if out == outOK {
			return rows, outOK
		}
		if out == outRefused {
			w.refused++
			if ramp >= w.rampRetries || ctx.Err() != nil {
				return nil, outTransport
			}
			ramp++
			w.rotate()
			w.sleepBackoff(ramp)
			continue
		}
		retryable := out == outShed || out == outTransport
		if !retryable || attempt >= w.maxRetries || ctx.Err() != nil {
			return nil, out
		}
		attempt++
		w.retries++
		w.rotate()
		w.sleepBackoff(attempt)
	}
}

// onceBatch issues a single batch attempt against the current target and
// books attempt-level per-target attribution, row by row on success.
func (w *worker) onceBatch(ctx context.Context, body []byte, n int) ([]batchWireResult, outcome) {
	tgt := w.target()
	rows, out := w.attemptBatch(ctx, tgt, body, n)
	if ts := w.tstats[tgt]; ts != nil {
		switch out {
		case outOK:
			for _, row := range rows {
				switch row.Status {
				case "hit":
					ts.answers++
					ts.hits++
				case "miss":
					ts.answers++
					ts.misses++
				case "shed":
					ts.sheds++
				case "too_large", "error":
					ts.errors++
				default:
					ts.answers++
				}
			}
		case outShed:
			ts.sheds += uint64(n)
		default:
			ts.errors += uint64(n)
		}
	}
	return rows, out
}

// attemptBatch posts one batch and classifies the answer. Latency is
// observed amortized: wall time divided by the batch size, once per op,
// so the histogram stays per-operation comparable with the unbatched
// path.
func (w *worker) attemptBatch(ctx context.Context, tgt string, body []byte, n int) ([]batchWireResult, outcome) {
	if w.deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, w.deadline)
		defer cancel()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, tgt+"/batch", bytes.NewReader(body))
	if err != nil {
		return nil, outTransport
	}
	req.Header.Set("Content-Type", "application/json")
	if w.deadline > 0 {
		req.Header.Set("X-Deadline", w.deadline.String())
	}
	t0 := time.Now()
	resp, err := w.client.Do(req)
	if err != nil {
		switch {
		case isTimeout(err):
			return nil, outTimeout
		case errors.Is(err, syscall.ECONNREFUSED):
			return nil, outRefused
		default:
			return nil, outTransport
		}
	}
	data, rerr := io.ReadAll(resp.Body)
	resp.Body.Close()
	per := uint64(time.Since(t0).Nanoseconds()) / uint64(n)
	w.hist.ObserveN(per, uint64(n))
	if th := w.thists[tgt]; th != nil {
		th.ObserveN(per, uint64(n))
	}
	switch {
	case resp.StatusCode == http.StatusServiceUnavailable:
		return nil, outShed
	case resp.StatusCode == http.StatusGatewayTimeout:
		return nil, outTimeout
	case resp.StatusCode != http.StatusOK:
		// Any other non-200 — 5xx, or a 4xx the client should never have
		// provoked — is the exchange misbehaving.
		return nil, outServer
	case rerr != nil:
		return nil, outTransport
	}
	var rows []batchWireResult
	if json.Unmarshal(data, &rows) != nil || len(rows) != n {
		return nil, outServer
	}
	return rows, outOK
}
