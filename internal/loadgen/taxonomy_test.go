package loadgen

import (
	"context"
	"net"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"pdp/internal/workload"
)

// getOnlyMix is a mix whose every operation is an OpGet, so each failure
// case maps to exactly one classified outcome.
var getOnlyMix = workload.ServiceConfig{Keys: 4, ValueBytes: 8}

func runAgainst(t *testing.T, url string, ops int) Result {
	t.Helper()
	res, err := Run(context.Background(), Config{
		BaseURL:   url,
		Mix:       getOnlyMix,
		Workers:   1,
		Ops:       ops,
		Seed:      1,
		Retries:   2,
		RetryBase: time.Millisecond,
		RetryMax:  2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestShedsRetriedAndExcludedFromErrors(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "1")
		http.Error(w, "overloaded", http.StatusServiceUnavailable)
	}))
	defer srv.Close()

	res := runAgainst(t, srv.URL, 3)
	if res.Sheds != 3 || res.Ops != 0 {
		t.Fatalf("sheds=%d ops=%d, want 3/0", res.Sheds, res.Ops)
	}
	if res.Retries != 6 {
		t.Fatalf("retries=%d, want 2 per op", res.Retries)
	}
	if res.Errors != 0 {
		t.Fatalf("sheds leaked into Errors: %d", res.Errors)
	}
	if res.Availability() != 1 {
		t.Fatalf("availability=%f; orderly sheds are available", res.Availability())
	}
	if res.Hits+res.Misses != 0 {
		t.Fatal("sheds polluted the hit-rate denominator")
	}
}

func TestServerErrorsNotRetried(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer srv.Close()

	res := runAgainst(t, srv.URL, 3)
	if res.Server5xx != 3 || res.Retries != 0 {
		t.Fatalf("server5xx=%d retries=%d, want 3/0", res.Server5xx, res.Retries)
	}
	if res.Errors != 3 || res.Availability() != 0 {
		t.Fatalf("errors=%d availability=%f", res.Errors, res.Availability())
	}
}

func TestGatewayTimeoutsNotRetried(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "deadline", http.StatusGatewayTimeout)
	}))
	defer srv.Close()

	res := runAgainst(t, srv.URL, 2)
	if res.Timeouts != 2 || res.Retries != 0 {
		t.Fatalf("timeouts=%d retries=%d, want 2/0", res.Timeouts, res.Retries)
	}
}

func TestRefusedRetriedUnderRampBudget(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	url := srv.URL
	srv.Close() // nothing is listening anymore

	// A refused connection retries under the separate ramp budget (here 3
	// per op), not the regular retry budget; an op that exhausts it books
	// a transport error.
	res, err := Run(context.Background(), Config{
		BaseURL:     url,
		Mix:         getOnlyMix,
		Workers:     1,
		Ops:         2,
		Seed:        1,
		Retries:     2,
		RampRetries: 3,
		RetryBase:   time.Millisecond,
		RetryMax:    2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Transport != 2 {
		t.Fatalf("transport=%d, want 2", res.Transport)
	}
	// Each op: 1 first attempt + 3 ramp retries, all refused.
	if res.Refused != 8 {
		t.Fatalf("refused=%d, want 4 refused attempts per op", res.Refused)
	}
	if res.Retries != 0 {
		t.Fatalf("retries=%d; refused retries must not consume the regular budget", res.Retries)
	}
}

// TestRefusedRampRecovers is the satellite scenario: a server that is
// not listening yet when the drive starts. The ramp retries bridge the
// gap, so availability stays 1 instead of the startup window counting
// as downtime.
func TestRefusedRampRecovers(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	url := "http://" + ln.Addr().String()
	ln.Close() // free the port; the "booting" server will bind it shortly

	go func() {
		time.Sleep(50 * time.Millisecond)
		ln2, err := net.Listen("tcp", url[len("http://"):])
		if err != nil {
			return
		}
		srv := &http.Server{Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			w.Write([]byte("v"))
		})}
		go srv.Serve(ln2)
	}()

	res, err := Run(context.Background(), Config{
		BaseURL:     url,
		Mix:         getOnlyMix,
		Workers:     1,
		Ops:         3,
		Seed:        1,
		RampRetries: 50,
		RetryBase:   5 * time.Millisecond,
		RetryMax:    20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 || res.Ops != 3 {
		t.Fatalf("errors=%d ops=%d; startup refusals counted against availability", res.Errors, res.Ops)
	}
	if res.Refused == 0 {
		t.Fatal("test raced: no refused attempt observed before the server came up")
	}
	if res.Availability() != 1 {
		t.Fatalf("availability=%f, want 1", res.Availability())
	}
}

func TestRecoveryAfterRetries(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			http.Error(w, "overloaded", http.StatusServiceUnavailable)
			return
		}
		w.Write([]byte("v"))
	}))
	defer srv.Close()

	res := runAgainst(t, srv.URL, 1)
	if res.Ops != 1 || res.Hits != 1 {
		t.Fatalf("ops=%d hits=%d; the op should succeed on the third attempt", res.Ops, res.Hits)
	}
	if res.Retries != 2 || res.Sheds != 0 {
		t.Fatalf("retries=%d sheds=%d; retried-then-successful ops are not sheds", res.Retries, res.Sheds)
	}
}

func TestDeadlinePropagatedAsHeader(t *testing.T) {
	var sawHeader atomic.Bool
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Header.Get("X-Deadline") == "250ms" {
			sawHeader.Store(true)
		}
		w.Write([]byte("v"))
	}))
	defer srv.Close()

	_, err := Run(context.Background(), Config{
		BaseURL:  srv.URL,
		Mix:      getOnlyMix,
		Workers:  1,
		Ops:      1,
		Deadline: 250 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !sawHeader.Load() {
		t.Fatal("X-Deadline header not propagated")
	}
}

func TestClientSideDeadlineIsTimeout(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(200 * time.Millisecond)
	}))
	defer srv.Close()

	res, err := Run(context.Background(), Config{
		BaseURL:  srv.URL,
		Mix:      getOnlyMix,
		Workers:  1,
		Ops:      1,
		Retries:  2,
		Deadline: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Timeouts != 1 || res.Retries != 0 {
		t.Fatalf("timeouts=%d retries=%d; an expired budget must not be retried", res.Timeouts, res.Retries)
	}
}
