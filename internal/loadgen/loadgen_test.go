package loadgen

import (
	"context"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"pdp/internal/telemetry"
	"pdp/internal/workload"
)

func TestConfigValidation(t *testing.T) {
	mix := workload.ServiceConfig{Keys: 10}
	bad := []Config{
		{Mix: mix}, // no BaseURL
		{BaseURL: "http://x", Mix: mix, Workers: -1},         // negative workers
		{BaseURL: "http://x", Mix: mix, Ops: -1},             // negative ops
		{BaseURL: "http://x", Mix: workload.ServiceConfig{}}, // invalid mix
	}
	for i, cfg := range bad {
		if _, err := Run(context.Background(), cfg); err == nil {
			t.Fatalf("config %d accepted: %+v", i, cfg)
		}
	}
}

func TestResultMath(t *testing.T) {
	r := Result{Ops: 1000, Hits: 300, Misses: 200, Duration: 2 * time.Second}
	if hr := r.HitRate(); hr != 0.6 {
		t.Fatalf("hit rate %.3f, want 0.6", hr)
	}
	if tp := r.Throughput(); tp != 500 {
		t.Fatalf("throughput %.1f, want 500", tp)
	}
	if (Result{}).HitRate() != 0 || (Result{}).Throughput() != 0 {
		t.Fatal("zero-value result must not divide by zero")
	}
}

// TestLatencyQuantilesReported runs against a stub server and asserts
// the Result carries an ordered latency digest — with and without a
// caller-supplied registry.
func TestLatencyQuantilesReported(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodGet {
			w.WriteHeader(http.StatusOK)
			w.Write([]byte("v"))
			return
		}
		w.WriteHeader(http.StatusNoContent)
	}))
	defer srv.Close()

	for _, reg := range []*telemetry.Registry{nil, telemetry.NewRegistry()} {
		res, err := Run(context.Background(), Config{
			BaseURL:  srv.URL,
			Mix:      workload.ServiceConfig{Keys: 20, ValueBytes: 8},
			Workers:  2,
			Ops:      200,
			Seed:     1,
			Registry: reg,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.P50LatencyUS <= 0 {
			t.Fatalf("registry=%v: p50 = %v", reg != nil, res.P50LatencyUS)
		}
		if res.P50LatencyUS > res.P90LatencyUS || res.P90LatencyUS > res.P99LatencyUS ||
			res.P99LatencyUS > res.P999LatencyUS {
			t.Fatalf("quantiles not monotone: %+v", res)
		}
		if reg != nil && reg.Histogram("loadgen.latency_ns").Count() == 0 {
			t.Fatal("registry histogram not fed")
		}
	}
}

func TestRunAgainstDeadServer(t *testing.T) {
	// No server on the port: transport errors are counted, not fatal.
	res, err := Run(context.Background(), Config{
		BaseURL: "http://127.0.0.1:1",
		Mix:     workload.ServiceConfig{Keys: 10},
		Workers: 2,
		Ops:     5,
	})
	if err != nil {
		t.Fatalf("transport failure escalated: %v", err)
	}
	if res.Errors == 0 {
		t.Fatal("no errors recorded against a dead server")
	}
}
