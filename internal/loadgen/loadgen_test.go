package loadgen

import (
	"context"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"pdp/internal/telemetry"
	"pdp/internal/workload"
)

func TestConfigValidation(t *testing.T) {
	mix := workload.ServiceConfig{Keys: 10}
	bad := []Config{
		{Mix: mix}, // no BaseURL
		{BaseURL: "http://x", Mix: mix, Workers: -1},         // negative workers
		{BaseURL: "http://x", Mix: mix, Ops: -1},             // negative ops
		{BaseURL: "http://x", Mix: workload.ServiceConfig{}}, // invalid mix
	}
	for i, cfg := range bad {
		if _, err := Run(context.Background(), cfg); err == nil {
			t.Fatalf("config %d accepted: %+v", i, cfg)
		}
	}
}

func TestResultMath(t *testing.T) {
	r := Result{Ops: 1000, Hits: 300, Misses: 200, Duration: 2 * time.Second}
	if hr := r.HitRate(); hr != 0.6 {
		t.Fatalf("hit rate %.3f, want 0.6", hr)
	}
	if tp := r.Throughput(); tp != 500 {
		t.Fatalf("throughput %.1f, want 500", tp)
	}
	if (Result{}).HitRate() != 0 || (Result{}).Throughput() != 0 {
		t.Fatal("zero-value result must not divide by zero")
	}
}

// TestLatencyQuantilesReported runs against a stub server and asserts
// the Result carries an ordered latency digest — with and without a
// caller-supplied registry.
func TestLatencyQuantilesReported(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodGet {
			w.WriteHeader(http.StatusOK)
			w.Write([]byte("v"))
			return
		}
		w.WriteHeader(http.StatusNoContent)
	}))
	defer srv.Close()

	for _, reg := range []*telemetry.Registry{nil, telemetry.NewRegistry()} {
		res, err := Run(context.Background(), Config{
			BaseURL:  srv.URL,
			Mix:      workload.ServiceConfig{Keys: 20, ValueBytes: 8},
			Workers:  2,
			Ops:      200,
			Seed:     1,
			Registry: reg,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.P50LatencyUS <= 0 {
			t.Fatalf("registry=%v: p50 = %v", reg != nil, res.P50LatencyUS)
		}
		if res.P50LatencyUS > res.P90LatencyUS || res.P90LatencyUS > res.P99LatencyUS ||
			res.P99LatencyUS > res.P999LatencyUS {
			t.Fatalf("quantiles not monotone: %+v", res)
		}
		if reg != nil && reg.Histogram("loadgen.latency_ns").Count() == 0 {
			t.Fatal("registry histogram not fed")
		}
	}
}

func TestRunAgainstDeadServer(t *testing.T) {
	// No server on the port: transport errors are counted, not fatal.
	res, err := Run(context.Background(), Config{
		BaseURL: "http://127.0.0.1:1",
		Mix:     workload.ServiceConfig{Keys: 10},
		Workers: 2,
		Ops:     5,
	})
	if err != nil {
		t.Fatalf("transport failure escalated: %v", err)
	}
	if res.Errors == 0 {
		t.Fatal("no errors recorded against a dead server")
	}
}

// TestAllShedResultJSON is the divide-by-zero regression test for the
// client math: a run where every request is shed records zero hits,
// zero misses and zero completed ops, and the JSON report must still be
// valid — finite hit_rate, availability and throughput_ops_s — instead
// of a NaN that encoding/json refuses to serialize.
func TestAllShedResultJSON(t *testing.T) {
	shedder := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "1")
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer shedder.Close()

	res, err := Run(context.Background(), Config{
		BaseURL: shedder.URL,
		Mix:     workload.ServiceConfig{Keys: 16, ZipfS: 0.8, ValueBytes: 8},
		Workers: 2,
		Ops:     20,
		Seed:    7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Sheds == 0 {
		t.Fatal("all-503 server recorded no sheds")
	}
	if res.Hits+res.Misses != 0 {
		t.Fatalf("all-shed run recorded %d definitive GET answers", res.Hits+res.Misses)
	}

	assertFiniteJSON(t, res)
	assertFiniteJSON(t, Result{})                       // zero-op run
	assertFiniteJSON(t, Result{Duration: -time.Second}) // clock went backwards
	assertFiniteJSON(t, Result{Ops: 1, Duration: 0})    // 1/0 throughput
}

// assertFiniteJSON marshals a Result and verifies the derived ratio
// fields exist and are finite numbers.
func assertFiniteJSON(t *testing.T, r Result) {
	t.Helper()
	out, err := json.Marshal(r)
	if err != nil {
		t.Fatalf("Result %+v does not marshal: %v", r, err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(out, &decoded); err != nil {
		t.Fatalf("report is not valid JSON: %v\n%s", err, out)
	}
	for _, field := range []string{"hit_rate", "availability", "throughput_ops_s"} {
		v, ok := decoded[field].(float64)
		if !ok {
			t.Fatalf("report missing derived field %q:\n%s", field, out)
		}
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("%s = %v is not finite", field, v)
		}
	}
}
