package loadgen

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"pdp/internal/workload"
)

// TestMultiTargetAttribution: a two-target run spreads traffic across
// both servers and attributes answers, hits and latency per target.
func TestMultiTargetAttribution(t *testing.T) {
	mk := func(hit bool) *httptest.Server {
		return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			switch r.Method {
			case http.MethodGet:
				if hit {
					w.Header().Set("X-Cache", "hit")
					w.Write([]byte("v"))
					return
				}
				w.Header().Set("X-Cache", "miss")
				http.Error(w, "not found", http.StatusNotFound)
			default:
				w.WriteHeader(http.StatusNoContent)
			}
		}))
	}
	hitSrv, missSrv := mk(true), mk(false)
	defer hitSrv.Close()
	defer missSrv.Close()

	res, err := Run(context.Background(), Config{
		Targets: []string{hitSrv.URL, missSrv.URL},
		Mix:     workload.ServiceConfig{Keys: 8, ValueBytes: 8},
		Workers: 2,
		Ops:     50,
		Seed:    1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerTarget) != 2 {
		t.Fatalf("per-target entries: %d, want 2", len(res.PerTarget))
	}
	ht, mt := res.PerTarget[hitSrv.URL], res.PerTarget[missSrv.URL]
	if ht == nil || mt == nil {
		t.Fatalf("missing per-target rows: %+v", res.PerTarget)
	}
	if ht.Answers == 0 || mt.Answers == 0 {
		t.Fatalf("traffic not spread: hit-target=%d miss-target=%d answers", ht.Answers, mt.Answers)
	}
	if ht.Misses != 0 || ht.HitRate != 1 {
		t.Fatalf("always-hit target: hits=%d misses=%d rate=%f", ht.Hits, ht.Misses, ht.HitRate)
	}
	if mt.Hits != 0 || mt.HitRate != 0 {
		t.Fatalf("always-miss target: hits=%d misses=%d rate=%f", mt.Hits, mt.Misses, mt.HitRate)
	}
	if ht.MeanLatencyUS <= 0 || mt.MeanLatencyUS <= 0 {
		t.Fatalf("per-target latency missing: %f / %f", ht.MeanLatencyUS, mt.MeanLatencyUS)
	}
}

// TestMultiTargetFailover: with one dead member in the target list,
// retryable failures rotate to the live one, so the run stays available
// and the dead target's errors are attributed to it.
func TestMultiTargetFailover(t *testing.T) {
	var served atomic.Int64
	live := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		served.Add(1)
		if r.Method == http.MethodGet {
			w.Header().Set("X-Cache", "hit")
			w.Write([]byte("v"))
			return
		}
		w.WriteHeader(http.StatusNoContent)
	}))
	defer live.Close()
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	deadURL := dead.URL
	dead.Close()

	res, err := Run(context.Background(), Config{
		Targets:     []string{deadURL, live.URL},
		Mix:         workload.ServiceConfig{Keys: 8, ValueBytes: 8},
		Workers:     1,
		Ops:         20,
		Seed:        1,
		RampRetries: 4,
		RetryBase:   time.Millisecond,
		RetryMax:    2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Worker 0 starts on the dead target, gets refused, rotates to the
	// live one, and stays there: every op completes.
	if res.Ops != 20 || res.Errors != 0 {
		t.Fatalf("ops=%d errors=%d; failover did not bridge the dead target", res.Ops, res.Errors)
	}
	if served.Load() == 0 {
		t.Fatal("live target served nothing")
	}
	if res.PerTarget[deadURL].Errors == 0 {
		t.Fatal("dead target's refused attempts not attributed")
	}
	if res.PerTarget[live.URL].Answers == 0 {
		t.Fatal("live target's answers not attributed")
	}
}
