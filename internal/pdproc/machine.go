// Package pdproc models the PDP paper's special-purpose "PD compute logic"
// processor (Sec. 3, Fig. 8): a tiny machine with eight 8-bit registers
// (R0-R7), eight 32-bit registers (R8-R15), and sixteen integer
// instructions (add/sub, logical, move, branch, mult8, div32). mult8
// multiplies a 32-bit register by an 8-bit register with shift-add (8
// cycles); div32 is a 33-cycle non-restoring division. The package runs the
// actual E-maximization program on this machine, cycle-counted, showing the
// computation fits the paper's hardware budget.
package pdproc

import "fmt"

// Op is an instruction opcode. The ISA has exactly sixteen instructions.
type Op uint8

// The sixteen instructions.
const (
	MOVI  Op = iota // Rd = Imm
	MOV             // Rd = Rs
	ADD             // Rd = Rs + Rt
	SUB             // Rd = Rs - Rt
	AND             // Rd = Rs & Rt
	OR              // Rd = Rs | Rt
	XOR             // Rd = Rs ^ Rt
	SHL             // Rd = Rs << Imm
	MULT8           // Rd = Rs * (Rt & 0xFF); Rt must be an 8-bit register
	DIV32           // Rd = Rs / Rt (unsigned; Rt==0 -> all-ones)
	LDC             // Rd = counters[Rs] (out of range -> 0)
	BEQ             // if Rs == Rt jump to Target
	BNE             // if Rs != Rt jump to Target
	BLT             // if Rs < Rt (unsigned) jump to Target
	JMP             // jump to Target
	HALT            // stop
)

var opNames = [...]string{
	"MOVI", "MOV", "ADD", "SUB", "AND", "OR", "XOR", "SHL",
	"MULT8", "DIV32", "LDC", "BEQ", "BNE", "BLT", "JMP", "HALT",
}

// String returns the mnemonic.
func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("OP(%d)", uint8(o))
}

// Cycles returns the latency of the operation (paper: div32 = 33 cycles,
// mult8 = shift-add over 8 multiplier bits).
func (o Op) Cycles() uint64 {
	switch o {
	case DIV32:
		return 33
	case MULT8:
		return 8
	default:
		return 1
	}
}

// Instr is one machine instruction. Branch targets are symbolic labels
// resolved by Assemble.
type Instr struct {
	Op     Op
	Rd     int
	Rs     int
	Rt     int
	Imm    uint32
	Target string
	// Label names this instruction's address.
	Label string
}

// Program is an assembled instruction sequence with resolved branches.
type Program struct {
	ins     []Instr
	targets []int
}

// Assemble resolves labels and validates register usage.
func Assemble(src []Instr) (*Program, error) {
	labels := map[string]int{}
	for i, in := range src {
		if in.Label != "" {
			if _, dup := labels[in.Label]; dup {
				return nil, fmt.Errorf("pdproc: duplicate label %q", in.Label)
			}
			labels[in.Label] = i
		}
	}
	p := &Program{ins: src, targets: make([]int, len(src))}
	for i, in := range src {
		if in.Op > HALT {
			return nil, fmt.Errorf("pdproc: instruction %d: unknown opcode", i)
		}
		for _, r := range []int{in.Rd, in.Rs, in.Rt} {
			if r < 0 || r > 15 {
				return nil, fmt.Errorf("pdproc: instruction %d: register %d out of range", i, r)
			}
		}
		if in.Op == MULT8 && in.Rt >= 8 {
			return nil, fmt.Errorf("pdproc: instruction %d: MULT8 multiplier must be an 8-bit register (R0-R7), got R%d", i, in.Rt)
		}
		switch in.Op {
		case BEQ, BNE, BLT, JMP:
			t, ok := labels[in.Target]
			if !ok {
				return nil, fmt.Errorf("pdproc: instruction %d: undefined label %q", i, in.Target)
			}
			p.targets[i] = t
		}
	}
	return p, nil
}

// Len returns the program length in instructions.
func (p *Program) Len() int { return len(p.ins) }

// Machine executes a Program against a read-only counter array input port.
type Machine struct {
	prog     *Program
	counters []uint32
	regs     [16]uint32
	pc       int
	cycles   uint64
	halted   bool
}

// NewMachine builds a machine with the given program and counter array.
func NewMachine(prog *Program, counters []uint32) *Machine {
	return &Machine{prog: prog, counters: counters}
}

// SetReg writes a register, applying the 8-bit mask for R0-R7.
func (m *Machine) SetReg(r int, v uint32) {
	if r < 8 {
		v &= 0xFF
	}
	m.regs[r] = v
}

// Reg reads a register.
func (m *Machine) Reg(r int) uint32 { return m.regs[r] }

// Cycles returns the cycles consumed so far.
func (m *Machine) Cycles() uint64 { return m.cycles }

// Halted reports whether HALT was executed.
func (m *Machine) Halted() bool { return m.halted }

// Step executes one instruction.
func (m *Machine) Step() error {
	if m.halted {
		return nil
	}
	if m.pc < 0 || m.pc >= len(m.prog.ins) {
		return fmt.Errorf("pdproc: pc %d out of range", m.pc)
	}
	in := m.prog.ins[m.pc]
	m.cycles += in.Op.Cycles()
	next := m.pc + 1
	switch in.Op {
	case MOVI:
		m.SetReg(in.Rd, in.Imm)
	case MOV:
		m.SetReg(in.Rd, m.regs[in.Rs])
	case ADD:
		m.SetReg(in.Rd, m.regs[in.Rs]+m.regs[in.Rt])
	case SUB:
		m.SetReg(in.Rd, m.regs[in.Rs]-m.regs[in.Rt])
	case AND:
		m.SetReg(in.Rd, m.regs[in.Rs]&m.regs[in.Rt])
	case OR:
		m.SetReg(in.Rd, m.regs[in.Rs]|m.regs[in.Rt])
	case XOR:
		m.SetReg(in.Rd, m.regs[in.Rs]^m.regs[in.Rt])
	case SHL:
		m.SetReg(in.Rd, m.regs[in.Rs]<<(in.Imm&31))
	case MULT8:
		m.SetReg(in.Rd, m.regs[in.Rs]*(m.regs[in.Rt]&0xFF))
	case DIV32:
		if m.regs[in.Rt] == 0 {
			m.SetReg(in.Rd, ^uint32(0))
		} else {
			m.SetReg(in.Rd, m.regs[in.Rs]/m.regs[in.Rt])
		}
	case LDC:
		idx := int(m.regs[in.Rs])
		var v uint32
		if idx >= 0 && idx < len(m.counters) {
			v = m.counters[idx]
		}
		m.SetReg(in.Rd, v)
	case BEQ:
		if m.regs[in.Rs] == m.regs[in.Rt] {
			next = m.prog.targets[m.pc]
		}
	case BNE:
		if m.regs[in.Rs] != m.regs[in.Rt] {
			next = m.prog.targets[m.pc]
		}
	case BLT:
		if m.regs[in.Rs] < m.regs[in.Rt] {
			next = m.prog.targets[m.pc]
		}
	case JMP:
		next = m.prog.targets[m.pc]
	case HALT:
		m.halted = true
		return nil
	}
	m.pc = next
	return nil
}

// Run executes until HALT or the cycle budget is exhausted.
func (m *Machine) Run(maxCycles uint64) error {
	for !m.halted {
		if m.cycles > maxCycles {
			return fmt.Errorf("pdproc: exceeded cycle budget %d", maxCycles)
		}
		if err := m.Step(); err != nil {
			return err
		}
	}
	return nil
}
