package pdproc

import (
	"fmt"

	"pdp/internal/sampler"
)

// Register allocation of the PD-search program.
//
//	R0  k (loop counter)          R8  sumN
//	R1  Sc                        R9  sumNd
//	R2  d_e                       R10 N_t
//	R3  K (number of counters)    R11 scratch / inv
//	R4  k+1                       R12 scratch / long / den
//	R5  constant 1                R13 best inv (minimized)
//	R6  constant 0                R14 best d_p (the result)
//	R7  (unused)                  R15 d_p + d_e
//
// The program minimizes inv(d_p) = (den << fracBits) / sumN, the fixed-point
// reciprocal of E(d_p) — the hardware-friendly equivalent of maximizing E.
const fracBits = 4

// searchProgram is the E-maximization algorithm expressed in the paper's
// sixteen-instruction ISA.
var searchProgram = []Instr{
	{Op: MOVI, Rd: 0, Imm: 0},               // k = 0
	{Op: MOVI, Rd: 8, Imm: 0},               // sumN = 0
	{Op: MOVI, Rd: 9, Imm: 0},               // sumNd = 0
	{Op: MOVI, Rd: 13, Imm: 0xFFFFFFFF},     // bestInv = +inf
	{Op: MOVI, Rd: 14, Imm: 0},              // bestDp = 0
	{Op: LDC, Rd: 11, Rs: 0, Label: "loop"}, // n = N[k]
	{Op: ADD, Rd: 8, Rs: 8, Rt: 11},         // sumN += n
	{Op: ADD, Rd: 4, Rs: 0, Rt: 5},          // R4 = k+1
	{Op: MULT8, Rd: 11, Rs: 11, Rt: 4},      // n*(k+1)
	{Op: MULT8, Rd: 11, Rs: 11, Rt: 1},      // n*dp
	{Op: ADD, Rd: 9, Rs: 9, Rt: 11},         // sumNd += n*dp
	{Op: MOV, Rd: 15, Rs: 4},                // R15 = k+1
	{Op: MULT8, Rd: 15, Rs: 15, Rt: 1},      // dp = (k+1)*Sc
	{Op: ADD, Rd: 15, Rs: 15, Rt: 2},        // R15 = dp + de
	{Op: SUB, Rd: 12, Rs: 10, Rt: 8},        // long = Nt - sumN
	{Op: MOV, Rd: 11, Rs: 12},               //
	{Op: MULT8, Rd: 11, Rs: 11, Rt: 4},      // long*(k+1)
	{Op: MULT8, Rd: 11, Rs: 11, Rt: 1},      // long*dp
	{Op: MULT8, Rd: 12, Rs: 12, Rt: 2},      // long*de
	{Op: ADD, Rd: 12, Rs: 12, Rt: 11},       // long*(dp+de)
	{Op: ADD, Rd: 12, Rs: 12, Rt: 9},        // den = sumNd + long*(dp+de)
	{Op: BEQ, Rs: 8, Rt: 6, Target: "next"}, // no hits yet: skip
	{Op: SHL, Rd: 12, Rs: 12, Imm: fracBits},
	{Op: DIV32, Rd: 11, Rs: 12, Rt: 8}, // inv = (den<<f)/sumN
	{Op: BLT, Rs: 11, Rt: 13, Target: "take"},
	{Op: JMP, Target: "next"},
	{Op: MOV, Rd: 13, Rs: 11, Label: "take"},      // bestInv = inv
	{Op: SUB, Rd: 14, Rs: 15, Rt: 2},              // bestDp = dp
	{Op: ADD, Rd: 0, Rs: 0, Rt: 5, Label: "next"}, // k++
	{Op: BLT, Rs: 0, Rt: 3, Target: "loop"},
	{Op: HALT},
}

// assembled is built once at package init; the program is static hardware.
var assembled = func() *Program {
	p, err := Assemble(searchProgram)
	if err != nil {
		panic(err)
	}
	return p
}()

// SearchProgram returns the assembled PD-search program (for inspection).
func SearchProgram() *Program { return assembled }

// Result reports one hardware PD computation.
type Result struct {
	// PD is the selected protecting distance (0 when the array held no
	// usable reuse information).
	PD int
	// Cycles is the machine time consumed — the quantity the paper argues
	// is negligible against the 512K-access recomputation interval.
	Cycles uint64
}

// Compute runs the PD search on the machine for the given counter array
// and d_e term.
func Compute(arr *sampler.CounterArray, de int) (Result, error) {
	k := arr.K()
	if k > 255 {
		return Result{}, fmt.Errorf("pdproc: K=%d exceeds the 8-bit loop counter; use Sc >= DMax/255", k)
	}
	if de > 255 {
		return Result{}, fmt.Errorf("pdproc: de=%d exceeds 8 bits", de)
	}
	counters := arr.Counts()
	nt := arr.Total()
	// Guard the 32-bit datapath: scale the whole array down when N_t is
	// large (shape-preserving, as a hardware implementation would). The
	// worst-case denominator is N_t*(DMax+d_e) and it is shifted left by
	// fracBits, so N_t < 2^19 keeps everything inside 32 bits for
	// DMax+d_e <= 512.
	shift := uint(0)
	for nt>>shift >= 1<<19 {
		shift++
	}
	if shift > 0 {
		for i := range counters {
			counters[i] >>= shift
		}
		nt >>= shift
	}

	m := NewMachine(assembled, counters)
	m.SetReg(1, uint32(arr.Sc()))
	m.SetReg(2, uint32(de))
	m.SetReg(3, uint32(k))
	m.SetReg(5, 1)
	m.SetReg(6, 0)
	m.SetReg(10, uint32(nt))
	if err := m.Run(1 << 20); err != nil {
		return Result{}, err
	}
	return Result{PD: int(m.Reg(14)), Cycles: m.Cycles()}, nil
}

// Solver adapts the hardware model to core.PDSolver.
type Solver struct {
	// TotalCycles accumulates machine time across recomputations.
	TotalCycles uint64
	// Runs counts invocations.
	Runs uint64
}

// FindPD implements core.PDSolver. Errors (which indicate configurations
// the hardware cannot represent) surface as panics: they are programming
// errors, not data conditions.
func (s *Solver) FindPD(arr *sampler.CounterArray, de int) int {
	res, err := Compute(arr, de)
	if err != nil {
		panic(err)
	}
	s.TotalCycles += res.Cycles
	s.Runs++
	return res.PD
}
