package pdproc

import (
	"testing"
	"testing/quick"

	"pdp/internal/core"
	"pdp/internal/sampler"
)

func TestAssembleErrors(t *testing.T) {
	cases := []struct {
		name string
		src  []Instr
	}{
		{"duplicate label", []Instr{{Op: HALT, Label: "a"}, {Op: HALT, Label: "a"}}},
		{"undefined target", []Instr{{Op: JMP, Target: "nowhere"}, {Op: HALT}}},
		{"bad register", []Instr{{Op: MOV, Rd: 16, Rs: 0}, {Op: HALT}}},
		{"mult8 32-bit multiplier", []Instr{{Op: MULT8, Rd: 8, Rs: 8, Rt: 9}, {Op: HALT}}},
	}
	for _, c := range cases {
		if _, err := Assemble(c.src); err == nil {
			t.Errorf("%s: expected assembly error", c.name)
		}
	}
}

func run(t *testing.T, src []Instr, counters []uint32, init map[int]uint32) *Machine {
	t.Helper()
	p, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMachine(p, counters)
	for r, v := range init {
		m.SetReg(r, v)
	}
	if err := m.Run(100000); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestMachineArithmetic(t *testing.T) {
	m := run(t, []Instr{
		{Op: MOVI, Rd: 8, Imm: 100},
		{Op: MOVI, Rd: 9, Imm: 42},
		{Op: ADD, Rd: 10, Rs: 8, Rt: 9},  // 142
		{Op: SUB, Rd: 11, Rs: 8, Rt: 9},  // 58
		{Op: AND, Rd: 12, Rs: 8, Rt: 9},  // 100 & 42 = 32
		{Op: OR, Rd: 13, Rs: 8, Rt: 9},   // 110
		{Op: XOR, Rd: 14, Rs: 8, Rt: 9},  // 78
		{Op: SHL, Rd: 15, Rs: 9, Imm: 3}, // 336
		{Op: HALT},
	}, nil, nil)
	for _, c := range []struct {
		r    int
		want uint32
	}{{10, 142}, {11, 58}, {12, 32}, {13, 110}, {14, 78}, {15, 336}} {
		if got := m.Reg(c.r); got != c.want {
			t.Errorf("R%d = %d, want %d", c.r, got, c.want)
		}
	}
}

func TestMachine8BitMasking(t *testing.T) {
	m := run(t, []Instr{
		{Op: MOVI, Rd: 0, Imm: 0x1FF}, // masked to 0xFF
		{Op: MOVI, Rd: 1, Imm: 2},
		{Op: ADD, Rd: 2, Rs: 0, Rt: 1}, // 0xFF+2 = 0x101 -> masked 0x01
		{Op: HALT},
	}, nil, nil)
	if m.Reg(0) != 0xFF {
		t.Errorf("R0 = %#x, want 0xFF", m.Reg(0))
	}
	if m.Reg(2) != 0x01 {
		t.Errorf("R2 = %#x, want 0x01 (8-bit wraparound)", m.Reg(2))
	}
}

func TestMachineMult8AndDiv32(t *testing.T) {
	m := run(t, []Instr{
		{Op: MOVI, Rd: 8, Imm: 1000},
		{Op: MOVI, Rd: 1, Imm: 7},
		{Op: MULT8, Rd: 9, Rs: 8, Rt: 1}, // 7000
		{Op: MOVI, Rd: 10, Imm: 13},
		{Op: DIV32, Rd: 11, Rs: 9, Rt: 10}, // 538
		{Op: MOVI, Rd: 12, Imm: 0},
		{Op: DIV32, Rd: 13, Rs: 9, Rt: 12}, // div by zero -> all ones
		{Op: HALT},
	}, nil, nil)
	if m.Reg(9) != 7000 {
		t.Errorf("MULT8 = %d, want 7000", m.Reg(9))
	}
	if m.Reg(11) != 538 {
		t.Errorf("DIV32 = %d, want 538", m.Reg(11))
	}
	if m.Reg(13) != ^uint32(0) {
		t.Errorf("div-by-zero = %#x, want all ones", m.Reg(13))
	}
}

func TestMachineBranchesAndLDC(t *testing.T) {
	// Sum the counter array via a loop.
	counters := []uint32{5, 10, 15, 20}
	m := run(t, []Instr{
		{Op: MOVI, Rd: 0, Imm: 0},
		{Op: MOVI, Rd: 3, Imm: 4},
		{Op: MOVI, Rd: 5, Imm: 1},
		{Op: MOVI, Rd: 8, Imm: 0},
		{Op: LDC, Rd: 9, Rs: 0, Label: "loop"},
		{Op: ADD, Rd: 8, Rs: 8, Rt: 9},
		{Op: ADD, Rd: 0, Rs: 0, Rt: 5},
		{Op: BLT, Rs: 0, Rt: 3, Target: "loop"},
		{Op: HALT},
	}, counters, nil)
	if m.Reg(8) != 50 {
		t.Errorf("loop sum = %d, want 50", m.Reg(8))
	}
	if !m.Halted() {
		t.Error("machine must halt")
	}
}

func TestMachineLDCOutOfRange(t *testing.T) {
	m := run(t, []Instr{
		{Op: MOVI, Rd: 0, Imm: 99},
		{Op: LDC, Rd: 8, Rs: 0},
		{Op: HALT},
	}, []uint32{1, 2}, nil)
	if m.Reg(8) != 0 {
		t.Errorf("out-of-range LDC = %d, want 0", m.Reg(8))
	}
}

func TestMachineCycleCosts(t *testing.T) {
	m := run(t, []Instr{
		{Op: MOVI, Rd: 8, Imm: 8},
		{Op: MOVI, Rd: 1, Imm: 2},
		{Op: MULT8, Rd: 8, Rs: 8, Rt: 1},
		{Op: DIV32, Rd: 8, Rs: 8, Rt: 8},
		{Op: HALT},
	}, nil, nil)
	// 1 + 1 + 8 + 33 + 1
	if m.Cycles() != 44 {
		t.Errorf("cycles = %d, want 44", m.Cycles())
	}
}

func TestMachineCycleBudget(t *testing.T) {
	p, err := Assemble([]Instr{{Op: JMP, Target: "l", Label: "l"}})
	if err != nil {
		t.Fatal(err)
	}
	m := NewMachine(p, nil)
	if err := m.Run(100); err == nil {
		t.Fatal("infinite loop must exceed the cycle budget")
	}
}

func mkArray(t *testing.T, sc int, hits map[int]int, extraAccesses int) *sampler.CounterArray {
	t.Helper()
	arr := sampler.NewCounterArray(256, sc)
	total := 0
	for d, n := range hits {
		for i := 0; i < n; i++ {
			arr.RecordHit(d)
		}
		total += n
	}
	for i := 0; i < total+extraAccesses; i++ {
		arr.RecordAccess()
	}
	return arr
}

func TestComputeMatchesSoftwareOnCleanPeak(t *testing.T) {
	arr := mkArray(t, 4, map[int]int{64: 5000}, 3000)
	swPD, _ := core.FindPD(arr, 16)
	res, err := Compute(arr, 16)
	if err != nil {
		t.Fatal(err)
	}
	if res.PD != swPD {
		t.Fatalf("hardware PD = %d, software PD = %d", res.PD, swPD)
	}
	if res.Cycles == 0 {
		t.Fatal("no cycles accounted")
	}
}

func TestComputeNearOptimalOnRandomArrays(t *testing.T) {
	// Property: the fixed-point hardware search selects a PD whose E is
	// within quantization error of the floating-point optimum.
	f := func(seed int64) bool {
		s := uint64(seed)
		next := func() uint64 { s = s*6364136223846793005 + 1442695040888963407; return s >> 33 }
		arr := sampler.NewCounterArray(256, 4)
		for k := 0; k < arr.K(); k++ {
			n := int(next() % 200)
			for i := 0; i < n; i++ {
				arr.RecordHit(k*4 + 1)
			}
		}
		var hits uint64
		for k := 0; k < arr.K(); k++ {
			hits += uint64(arr.Count(k))
		}
		for i := uint64(0); i < hits+next()%5000; i++ {
			arr.RecordAccess()
		}
		swPD, swE := core.FindPD(arr, 16)
		res, err := Compute(arr, 16)
		if err != nil {
			return false
		}
		if swPD == 0 {
			return res.PD == 0
		}
		ev := core.EValues(arr, 16)
		hwE := ev[res.PD/4-1]
		return hwE >= 0.9*swE
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestComputeEmptyArray(t *testing.T) {
	arr := sampler.NewCounterArray(256, 4)
	res, err := Compute(arr, 16)
	if err != nil {
		t.Fatal(err)
	}
	if res.PD != 0 {
		t.Fatalf("PD on empty array = %d, want 0", res.PD)
	}
}

func TestComputeCyclesNegligible(t *testing.T) {
	// The paper's argument: the search runs once per 512K LLC accesses, so
	// its cycle count must be a vanishing fraction of the interval.
	arr := mkArray(t, 4, map[int]int{16: 1000, 128: 2000, 250: 500}, 10000)
	res, err := Compute(arr, 16)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles > 10000 {
		t.Fatalf("PD search took %d cycles; paper budget is ~thousands", res.Cycles)
	}
	if float64(res.Cycles)/(512*1024) > 0.02 {
		t.Fatalf("search cost %.4f of the recompute interval, want negligible", float64(res.Cycles)/(512*1024))
	}
}

func TestComputeDownscalesHugeCounts(t *testing.T) {
	arr := sampler.NewCounterArray(256, 4)
	arr.NiMax = 1 << 30 // widen the counters for this stress test
	arr.NtMax = 1 << 40
	for i := 0; i < 2_000_000; i++ {
		arr.RecordHit(64)
	}
	for i := 0; i < 50_000_000; i++ {
		arr.RecordAccess()
	}
	res, err := Compute(arr, 16)
	if err != nil {
		t.Fatal(err)
	}
	if res.PD != 64 {
		t.Fatalf("PD = %d, want 64 despite down-scaling", res.PD)
	}
}

func TestComputeRejectsUnrepresentableConfigs(t *testing.T) {
	arr := sampler.NewCounterArray(256, 1) // K = 256 > 255
	if _, err := Compute(arr, 16); err == nil {
		t.Fatal("expected error for K > 255")
	}
	arr2 := sampler.NewCounterArray(256, 4)
	if _, err := Compute(arr2, 300); err == nil {
		t.Fatal("expected error for de > 255")
	}
}

func TestSolverAccumulates(t *testing.T) {
	s := &Solver{}
	arr := mkArray(t, 4, map[int]int{32: 100}, 50)
	pd := s.FindPD(arr, 16)
	if pd != 32 {
		t.Fatalf("solver PD = %d, want 32", pd)
	}
	if s.Runs != 1 || s.TotalCycles == 0 {
		t.Fatalf("solver accounting: runs=%d cycles=%d", s.Runs, s.TotalCycles)
	}
}
