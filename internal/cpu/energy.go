package cpu

// EnergyModel estimates LLC dynamic energy from access counts. The paper
// motivates bypass partly through power: "Bypassing a cache reduces its
// active power dissipation ... by not writing the data into the LLC"
// (Sec. 6.2). Default per-event energies are representative 32nm SRAM
// numbers (nanojoules); only ratios matter for the comparisons.
type EnergyModel struct {
	// ReadNJ is the energy of one LLC read (tag + data access).
	ReadNJ float64
	// WriteNJ is the energy of one LLC line fill or write.
	WriteNJ float64
	// TagNJ is the energy of a tag-only probe (a miss that bypasses still
	// checks the tags).
	TagNJ float64
	// MemNJ is the energy of one memory access (misses and bypasses).
	MemNJ float64
}

// DefaultEnergy returns a representative 2MB-LLC model.
func DefaultEnergy() EnergyModel {
	return EnergyModel{ReadNJ: 0.6, WriteNJ: 0.9, TagNJ: 0.1, MemNJ: 15}
}

// EnergyBreakdown reports where the nanojoules went.
type EnergyBreakdown struct {
	ReadNJ  float64
	WriteNJ float64
	TagNJ   float64
	MemNJ   float64
}

// Total returns the summed energy in nanojoules.
func (b EnergyBreakdown) Total() float64 {
	return b.ReadNJ + b.WriteNJ + b.TagNJ + b.MemNJ
}

// Estimate computes LLC + memory dynamic energy for a run: hits read the
// array, fills (inserts) write it, bypassed misses pay only the tag probe,
// and every miss (filled or bypassed) pays the memory access.
func (m EnergyModel) Estimate(hits, inserts, bypasses, misses uint64) EnergyBreakdown {
	return EnergyBreakdown{
		ReadNJ:  float64(hits) * m.ReadNJ,
		WriteNJ: float64(inserts) * m.WriteNJ,
		TagNJ:   float64(hits+inserts+bypasses) * m.TagNJ,
		MemNJ:   float64(misses) * m.MemNJ,
	}
}
