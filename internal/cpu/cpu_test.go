package cpu

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCyclesHandComputed(t *testing.T) {
	m := Model{Width: 4, LLCHitCycles: 30, MemCycles: 200, MLP: 1}
	// 1000 instructions, 10 LLC hits, 5 memory accesses:
	// 250 + 300 + 1000 = 1550 cycles.
	if got := m.Cycles(1000, 10, 5); got != 1550 {
		t.Fatalf("Cycles = %v, want 1550", got)
	}
	if got := m.IPC(1000, 10, 5); math.Abs(got-1000.0/1550) > 1e-12 {
		t.Fatalf("IPC = %v", got)
	}
}

func TestMLPDividesMemoryStall(t *testing.T) {
	m := Default()
	m.MLP = 2
	base := Default()
	if m.Cycles(1000, 0, 10) >= base.Cycles(1000, 0, 10) {
		t.Fatal("MLP must reduce memory stall cycles")
	}
	// Non-positive MLP falls back to blocking.
	m.MLP = 0
	if m.Cycles(1000, 0, 10) != base.Cycles(1000, 0, 10) {
		t.Fatal("MLP<=0 must behave as 1")
	}
}

func TestIPCMonotoneInHits(t *testing.T) {
	// More hits (fewer memory accesses) must never lower IPC — the property
	// the paper's relative comparisons rest on.
	m := Default()
	f := func(instr uint16, hits uint8, mem uint8) bool {
		in := uint64(instr) + 1
		h, mm := uint64(hits), uint64(mem)+1
		return m.IPC(in, h+1, mm-1) >= m.IPC(in, h, mm)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestInstructions(t *testing.T) {
	if got := Instructions(1000, 10); got != 100_000 {
		t.Fatalf("Instructions = %d, want 100000", got)
	}
	if got := Instructions(1000, 0); got != 0 {
		t.Fatalf("Instructions with zero APKI = %d, want 0", got)
	}
}

func TestMPKI(t *testing.T) {
	if got := MPKI(50, 10_000); got != 5 {
		t.Fatalf("MPKI = %v, want 5", got)
	}
	if got := MPKI(50, 0); got != 0 {
		t.Fatalf("MPKI with zero instructions = %v, want 0", got)
	}
}

func TestIPCZeroInstr(t *testing.T) {
	m := Default()
	if got := m.IPC(0, 0, 0); got != 0 {
		t.Fatalf("IPC(0) = %v, want 0", got)
	}
}

func TestEnergyEstimate(t *testing.T) {
	m := EnergyModel{ReadNJ: 1, WriteNJ: 2, TagNJ: 0.5, MemNJ: 10}
	// 10 hits, 4 inserts, 6 bypasses, 10 misses.
	b := m.Estimate(10, 4, 6, 10)
	if b.ReadNJ != 10 || b.WriteNJ != 8 || b.TagNJ != 10 || b.MemNJ != 100 {
		t.Fatalf("breakdown = %+v", b)
	}
	if b.Total() != 128 {
		t.Fatalf("total = %v, want 128", b.Total())
	}
}

func TestEnergyBypassSavesWrites(t *testing.T) {
	m := DefaultEnergy()
	// Same misses; one policy bypasses half its fills.
	fill := m.Estimate(100, 100, 0, 100)
	byp := m.Estimate(100, 50, 50, 100)
	if byp.Total() >= fill.Total() {
		t.Fatal("bypassing fills must reduce energy")
	}
	if byp.WriteNJ >= fill.WriteNJ {
		t.Fatal("bypass must cut write energy")
	}
}
