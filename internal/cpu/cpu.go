// Package cpu provides the analytic core timing model that converts cache
// behaviour into IPC and MPKI. It stands in for the paper's CMP$im-modelled
// 4-wide out-of-order core (Table 1): execution cost is issue-width-limited
// plus blocking memory latencies. Absolute IPC differs from the paper's
// testbed, but IPC is monotone in hit counts, which is what the paper's
// relative comparisons rest on (see DESIGN.md substitutions).
package cpu

// Model is the timing model.
type Model struct {
	// Width is the issue width (instructions per cycle upper bound).
	Width int
	// LLCHitCycles is the LLC hit latency seen past the L2 (paper: 30).
	LLCHitCycles int
	// MemCycles is the memory latency (paper: 200).
	MemCycles int
	// MLP divides the memory stall component, modelling overlap of
	// outstanding misses; 1 = fully blocking.
	MLP float64
}

// Default returns the paper-configured model.
func Default() Model {
	return Model{Width: 4, LLCHitCycles: 30, MemCycles: 200, MLP: 1}
}

// Cycles estimates execution time for instr instructions whose LLC-visible
// accesses split into llcHits and memAccesses (misses + bypasses).
func (m Model) Cycles(instr, llcHits, memAccesses uint64) float64 {
	mlp := m.MLP
	if mlp <= 0 {
		mlp = 1
	}
	return float64(instr)/float64(m.Width) +
		float64(llcHits)*float64(m.LLCHitCycles) +
		float64(memAccesses)*float64(m.MemCycles)/mlp
}

// IPC returns instructions per cycle under the model.
func (m Model) IPC(instr, llcHits, memAccesses uint64) float64 {
	c := m.Cycles(instr, llcHits, memAccesses)
	if c == 0 {
		return 0
	}
	return float64(instr) / c
}

// Instructions converts an LLC-visible access count into an instruction
// count given the workload's accesses-per-kiloinstruction rate.
func Instructions(accesses uint64, apki float64) uint64 {
	if apki <= 0 {
		return 0
	}
	return uint64(float64(accesses) * 1000.0 / apki)
}

// MPKI returns misses per kiloinstruction.
func MPKI(misses, instr uint64) float64 {
	if instr == 0 {
		return 0
	}
	return float64(misses) * 1000.0 / float64(instr)
}
