package parallel

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestJobsResolution(t *testing.T) {
	p := runtime.GOMAXPROCS(0)
	if want := min(4, p); Jobs(4) != want {
		t.Fatalf("Jobs(4) = %d on a %d-proc box, want %d", Jobs(4), p, want)
	}
	if Jobs(1) != 1 {
		t.Fatal("explicit jobs within the core count must pass through")
	}
	if Jobs(0) < 1 || Jobs(-3) < 1 {
		t.Fatal("jobs <= 0 must resolve to at least one worker")
	}
	if Jobs(p+100) != p {
		t.Fatalf("Jobs(%d) = %d; CPU-bound tasks must clamp to GOMAXPROCS=%d", p+100, Jobs(p+100), p)
	}
}

func TestDeriveSeedDeterministicAndDistinct(t *testing.T) {
	a := DeriveSeed(42, "fig10/403.gcc/DIP")
	b := DeriveSeed(42, "fig10/403.gcc/DIP")
	if a != b {
		t.Fatal("DeriveSeed not deterministic")
	}
	seen := map[uint64]string{}
	for _, id := range []string{"a", "b", "c", "fig12/mix0", "fig12/mix1", ""} {
		for _, base := range []uint64{0, 1, 42, 1 << 40} {
			s := DeriveSeed(base, id)
			key := fmt.Sprintf("%s/%d", id, base)
			if prev, dup := seen[s]; dup {
				t.Fatalf("seed collision: %q and %q -> %d", prev, key, s)
			}
			seen[s] = key
		}
	}
}

func TestMapOrdersResultsByTask(t *testing.T) {
	for _, jobs := range []int{1, 2, 8, 0} {
		got, err := Map(jobs, 100, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("jobs=%d: results[%d] = %d, want %d", jobs, i, v, i*i)
			}
		}
	}
}

func TestMapSerialAndParallelAgree(t *testing.T) {
	task := func(i int) (uint64, error) { return DeriveSeed(7, fmt.Sprint(i)), nil }
	serial, err := Map(1, 64, task)
	if err != nil {
		t.Fatal(err)
	}
	par, err := Map(8, 64, task)
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial {
		if serial[i] != par[i] {
			t.Fatalf("results diverge at %d: %d vs %d", i, serial[i], par[i])
		}
	}
}

func TestMapReturnsFirstErrorByIndex(t *testing.T) {
	sentinel := errors.New("boom")
	for _, jobs := range []int{1, 4} {
		_, err := Map(jobs, 32, func(i int) (int, error) {
			if i == 5 || i == 20 {
				return 0, fmt.Errorf("task-%d: %w", i, sentinel)
			}
			return i, nil
		})
		if err == nil || !errors.Is(err, sentinel) {
			t.Fatalf("jobs=%d: want wrapped sentinel, got %v", jobs, err)
		}
	}
}

func TestMapStopsLaunchingAfterFailure(t *testing.T) {
	var started atomic.Int64
	_, err := Map(2, 10_000, func(i int) (int, error) {
		started.Add(1)
		return 0, errors.New("immediate failure")
	})
	if err == nil {
		t.Fatal("want error")
	}
	if n := started.Load(); n > 100 {
		t.Fatalf("pool kept launching after failure: %d tasks started", n)
	}
}

func TestForEach(t *testing.T) {
	var sum atomic.Int64
	if err := ForEach(4, 50, func(i int) error {
		sum.Add(int64(i))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if sum.Load() != 49*50/2 {
		t.Fatalf("sum = %d", sum.Load())
	}
}

func TestGridShape(t *testing.T) {
	out, err := Grid(4, 3, 5, func(r, c int) (string, error) {
		return fmt.Sprintf("%d:%d", r, c), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 {
		t.Fatalf("rows = %d", len(out))
	}
	for r := range out {
		if len(out[r]) != 5 {
			t.Fatalf("row %d cols = %d", r, len(out[r]))
		}
		for c := range out[r] {
			if want := fmt.Sprintf("%d:%d", r, c); out[r][c] != want {
				t.Fatalf("out[%d][%d] = %q, want %q", r, c, out[r][c], want)
			}
		}
	}
}

func TestMapRepanicsOnCaller(t *testing.T) {
	// The resilience layer cancels runs by panicking a sentinel out of
	// guarded generators and recovering it in the supervisor — which only
	// works if worker panics resurface on the goroutine that called Map.
	type sentinel struct{ n int }
	for _, jobs := range []int{1, 4} {
		func() {
			defer func() {
				r := recover()
				if _, ok := r.(sentinel); !ok {
					t.Fatalf("jobs=%d: recovered %v, want sentinel", jobs, r)
				}
			}()
			Map(jobs, 16, func(i int) (int, error) {
				if i == 3 {
					panic(sentinel{i})
				}
				return i, nil
			})
			t.Fatalf("jobs=%d: Map returned instead of panicking", jobs)
		}()
	}
}

func TestMapZeroTasks(t *testing.T) {
	got, err := Map(8, 0, func(i int) (int, error) { return 0, errors.New("never") })
	if err != nil || len(got) != 0 {
		t.Fatalf("got %v, %v", got, err)
	}
}
