// Package parallel is the experiment engine's concurrency seam: a bounded
// worker pool that fans independent simulation tasks across cores while
// keeping every observable output deterministic.
//
// The design contract, relied on by cmd/repro's byte-identical-tables
// guarantee, has three legs:
//
//   - Tasks are pure with respect to shared state: a task derives
//     everything from its index (benchmark, policy spec, seed) and returns
//     a value. Rendering happens after the pool drains, in task order, so
//     `-jobs 1` and `-jobs N` produce identical bytes.
//   - Results are assembled by task index, never by completion order.
//   - Seeds are derived per task id (DeriveSeed), not drawn from a shared
//     stream, so no task's randomness depends on scheduling.
//
// The pool itself is deliberately dumb: no queues shared across calls, no
// global state, just bounded fan-out with ordered collection. Cancellation
// rides on the tasks' own context plumbing (resilience.GuardGenerator);
// the pool only stops launching new tasks once a task has failed.
package parallel

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Jobs resolves a user-facing jobs count: values <= 0 select
// runtime.GOMAXPROCS(0), and explicit values clamp to it. Simulation
// tasks are pure CPU with no blocking I/O, so workers beyond the
// schedulable cores cannot add throughput — they only add scheduler
// churn and cache pressure (oversubscription measured ~-8% on the
// experiment grid at jobs = 4x cores). The clamp makes `-jobs 64` on a
// 4-core box mean "all cores", not "thrash".
func Jobs(n int) int {
	p := runtime.GOMAXPROCS(0)
	if n <= 0 || n > p {
		return p
	}
	return n
}

// DeriveSeed deterministically derives a per-task seed from a base seed
// and a task id using FNV-1a over the id, folded into the base. Equal
// (base, id) pairs always yield the same seed, so a task's random streams
// are a function of its identity, never of worker scheduling.
func DeriveSeed(base uint64, taskID string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(taskID); i++ {
		h ^= uint64(taskID[i])
		h *= prime64
	}
	// Mix the base in with a final avalanche (splitmix64 finalizer) so
	// nearby base seeds do not produce nearby task seeds.
	h ^= base
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// Map runs fn(0..n-1) on up to jobs concurrent workers and returns the
// results indexed by task — results[i] is fn(i)'s value regardless of
// completion order. The first error (by task index, not by wall-clock)
// is returned alongside the full results slice; once any task errors, no
// new tasks start, but tasks already running finish. jobs <= 0 selects
// GOMAXPROCS. With jobs == 1 or n <= 1 the tasks run inline on the
// calling goroutine, so serial mode has zero scheduling variance.
//
// A task that panics does not crash the process from a worker goroutine:
// the pool drains and the first captured panic (by task index) is
// re-raised on the calling goroutine. This keeps the resilience
// machinery's panic-based cooperative cancellation (cancelAbort unwinding
// out of guarded generators) and supervisor panic recovery working
// unchanged when runs move onto workers.
func Map[T any](jobs, n int, fn func(i int) (T, error)) ([]T, error) {
	results := make([]T, n)
	if n == 0 {
		return results, nil
	}
	jobs = Jobs(jobs)
	if jobs > n {
		jobs = n
	}
	if jobs <= 1 {
		for i := 0; i < n; i++ {
			r, err := fn(i)
			if err != nil {
				return results, fmt.Errorf("task %d: %w", i, err)
			}
			results[i] = r
		}
		return results, nil
	}

	errs := make([]error, n)
	panics := make([]any, n)
	var next atomic.Int64
	var failed atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < jobs; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || failed.Load() {
					return
				}
				err := func() (err error) {
					defer func() {
						if r := recover(); r != nil {
							panics[i] = r
							failed.Store(true)
							err = fmt.Errorf("task %d panicked", i)
						}
					}()
					var r T
					r, err = fn(i)
					results[i] = r
					return err
				}()
				if err != nil {
					errs[i] = err
					failed.Store(true)
					return
				}
			}
		}()
	}
	wg.Wait()
	for _, p := range panics {
		if p != nil {
			panic(p)
		}
	}
	for i, err := range errs {
		if err != nil {
			return results, fmt.Errorf("task %d: %w", i, err)
		}
	}
	return results, nil
}

// ForEach is Map for tasks with no result value.
func ForEach(jobs, n int, fn func(i int) error) error {
	_, err := Map(jobs, n, func(i int) (struct{}, error) {
		return struct{}{}, fn(i)
	})
	return err
}

// Grid runs fn over an rows x cols task grid on up to jobs workers and
// returns out[r][c] = fn(r, c). It flattens the grid row-major into one
// Map call, so cells of different rows run concurrently — the shape most
// experiment tables want (benchmark rows x policy columns).
func Grid[T any](jobs, rows, cols int, fn func(r, c int) (T, error)) ([][]T, error) {
	flat, err := Map(jobs, rows*cols, func(i int) (T, error) {
		return fn(i/cols, i%cols)
	})
	out := make([][]T, rows)
	for r := 0; r < rows; r++ {
		out[r] = flat[r*cols : (r+1)*cols]
	}
	return out, err
}
