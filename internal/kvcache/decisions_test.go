package kvcache

import (
	"testing"

	"pdp/internal/telemetry"
	"pdp/internal/workload"
)

// fillKeys returns n distinct keys that all route to shard 0, set 0 of a
// 1-shard, 1-set cache (with one shard and one set, every key does).
func fillKeys(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = string(rune('a' + i))
	}
	return out
}

// TestDenyDoomsAndSaves walks the shadow-LRU attribution end to end on a
// fully deterministic 1x1x2 cache: a deny marks the LRU line doomed, the
// next hit on it is exactly one protection save, and the per-shard
// registry counters agree with the aggregate stats.
func TestDenyDoomsAndSaves(t *testing.T) {
	reg := telemetry.NewRegistry()
	c, err := New(Config{
		Policy: PolicyPDP, Shards: 1, Sets: 1, Ways: 2,
		DefaultPD: 64, RecomputeEvery: 1 << 30, Registry: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	k := fillKeys(3)
	c.Put(k[0], []byte("v0")) // way A, stamp 1
	c.Put(k[1], []byte("v1")) // way B, stamp 2

	// Both lines protected at PD=64: the third key must be denied, and
	// the least recently touched line — k[1] after this re-stamp pair —
	// gets the doomed mark.
	c.Put(k[1], []byte("v1")) // re-stamp k1 (stamp 3)
	c.Put(k[0], []byte("v0")) // re-stamp k0 (stamp 4): LRU line is k1
	if c.Put(k[2], []byte("v2")) {
		t.Fatal("fully protected set admitted a third key")
	}

	st := c.Stats()
	if st.Denies != 1 || st.Saves != 0 {
		t.Fatalf("after deny: denies=%d saves=%d", st.Denies, st.Saves)
	}

	// Hit the doomed line: one save, counted once.
	if _, ok := c.Get(k[1]); !ok {
		t.Fatal("doomed line vanished")
	}
	if _, ok := c.Get(k[1]); !ok {
		t.Fatal("line vanished after save")
	}
	st = c.Stats()
	if st.Saves != 1 {
		t.Fatalf("saves=%d, want exactly 1 (the mark must clear on touch)", st.Saves)
	}

	// Registry attribution mirrors the stats.
	if v := reg.Counter(`kv.shard.denies{shard="0"}`).Value(); v != 1 {
		t.Fatalf("shard deny counter = %d", v)
	}
	if v := reg.Counter(`kv.shard.saves{shard="0"}`).Value(); v != 1 {
		t.Fatalf("shard save counter = %d", v)
	}

	// Decision log: deny then save, in order, with the PD in force.
	tail := c.Decisions().Tail(10)
	if len(tail) != 2 || tail[0].Kind != DecisionDeny || tail[1].Kind != DecisionSave {
		t.Fatalf("decision tail = %+v", tail)
	}
	if tail[0].Way != -1 || tail[0].Key != k[2] || tail[0].PD != 64 {
		t.Fatalf("deny decision = %+v", tail[0])
	}
	if tail[1].Key != k[1] || tail[1].RPD <= 0 {
		t.Fatalf("save decision = %+v", tail[1])
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestForcedEvictionAttribution(t *testing.T) {
	reg := telemetry.NewRegistry()
	c, err := New(Config{
		Policy: PolicyPDP, Shards: 1, Sets: 1, Ways: 2,
		DefaultPD: 64, RecomputeEvery: 1 << 30, AdmitAll: true, Registry: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	k := fillKeys(3)
	c.Put(k[0], []byte("v0"))
	c.Put(k[1], []byte("v1"))
	if !c.Put(k[2], []byte("v2")) {
		t.Fatal("AdmitAll denied")
	}
	st := c.Stats()
	if st.Evictions != 1 || st.EvictionsForced != 1 || st.EvictionsUnprotected != 0 {
		t.Fatalf("evictions=%d forced=%d unprot=%d", st.Evictions, st.EvictionsForced, st.EvictionsUnprotected)
	}
	if v := reg.Counter(`kv.shard.evictions{shard="0",class="forced"}`).Value(); v != 1 {
		t.Fatalf("forced counter = %d", v)
	}
	tail := c.Decisions().Tail(1)
	if len(tail) != 1 || tail[0].Kind != DecisionEvictForced || tail[0].RPD <= 0 {
		t.Fatalf("forced decision = %+v", tail)
	}
}

func TestLRUEvictionsAreUnprotected(t *testing.T) {
	c, err := New(Config{Policy: PolicyLRU, Shards: 1, Sets: 1, Ways: 2})
	if err != nil {
		t.Fatal(err)
	}
	k := fillKeys(3)
	for _, key := range k {
		c.Put(key, []byte("v"))
	}
	st := c.Stats()
	if st.Evictions != 1 || st.EvictionsUnprotected != 1 || st.EvictionsForced != 0 || st.Saves != 0 {
		t.Fatalf("LRU attribution: %+v", st)
	}
	tail := c.Decisions().Tail(1)
	if len(tail) != 1 || tail[0].Kind != DecisionEvictUnprotected || tail[0].Key != k[0] {
		t.Fatalf("LRU eviction decision = %+v", tail)
	}
}

func TestDecisionLogRingAndDisable(t *testing.T) {
	l := NewDecisionLog(3)
	for i := 0; i < 5; i++ {
		l.add(Decision{Kind: DecisionDeny, Set: i})
	}
	if l.Len() != 3 || l.Total() != 5 || l.CountKind(DecisionDeny) != 5 {
		t.Fatalf("len=%d total=%d denies=%d", l.Len(), l.Total(), l.CountKind(DecisionDeny))
	}
	tail := l.Tail(10)
	if len(tail) != 3 || tail[0].Set != 2 || tail[2].Set != 4 {
		t.Fatalf("tail = %+v", tail)
	}
	if tail[0].Seq != 3 || tail[2].Seq != 5 {
		t.Fatalf("seqs = %d..%d, want 3..5", tail[0].Seq, tail[2].Seq)
	}

	// Nil log (disabled): every operation is a no-op.
	var nilLog *DecisionLog
	nilLog.add(Decision{})
	if nilLog.Len() != 0 || nilLog.Tail(5) != nil || nilLog.Total() != 0 {
		t.Fatal("nil decision log not inert")
	}

	c, err := New(Config{Shards: 1, Sets: 1, Ways: 2, DecisionLog: -1})
	if err != nil {
		t.Fatal(err)
	}
	if c.Decisions() != nil {
		t.Fatal("DecisionLog: -1 must disable the log")
	}
	c.Put("a", nil)
	c.Put("b", nil)
	c.Put("c", nil) // deny path with nil log must not panic
}

// TestPDMoveJournal asserts the pd_move contract: one record per
// recompute, gated records only when the evidence gate passes, and the
// per-shard sample attribution summing to the merged mass.
func TestPDMoveJournal(t *testing.T) {
	j := telemetry.NewJournal(256)
	c, err := New(Config{
		Policy: PolicyPDP, Shards: 2, Sets: 16, Ways: 8,
		RecomputeEvery: 1 << 30, MinSamples: 1, Journal: j,
	})
	if err != nil {
		t.Fatal(err)
	}

	// No traffic: the gate cannot pass, but pd_move still records why.
	c.Recompute()
	if n := j.CountKind(telemetry.KindPDMove); n != 1 {
		t.Fatalf("pd_move records = %d, want 1", n)
	}
	recs := j.Tail(1)
	mv, okType := recs[0].(telemetry.PDMoveRecord)
	if !okType {
		t.Fatalf("tail record %T", recs[0])
	}
	if mv.Moved || mv.Seq != 1 || mv.Samples != 0 || len(mv.ShardSamples) != 2 {
		t.Fatalf("idle pd_move = %+v", mv)
	}

	// Reusing traffic: drive the same small key set until the sampler has
	// measured reuse, then recompute — the record must attribute samples.
	mix := workload.ServiceConfig{Keys: 40, ZipfS: 0.6, ValueBytes: 16}
	runMix(c, mix, 7, 60000)
	c.Recompute()
	// The gated pd_recompute record lands after pd_move; scan back for
	// the latest pd_move.
	mv = telemetry.PDMoveRecord{}
	for _, r := range j.Tail(4) {
		if m, isMove := r.(telemetry.PDMoveRecord); isMove {
			mv = m
		}
	}
	if mv.Seq != 2 {
		t.Fatalf("latest pd_move seq = %d, want 2", mv.Seq)
	}
	if !mv.Moved {
		t.Fatalf("pd_move after reuse traffic did not move: %+v", mv)
	}
	var sum uint64
	for _, s := range mv.ShardSamples {
		sum += s
	}
	if sum == 0 || sum != mv.Samples {
		t.Fatalf("shard samples %v (sum %d) disagree with merged %d", mv.ShardSamples, sum, mv.Samples)
	}
	if mv.BestD != mv.NewPD {
		t.Fatalf("summary best_d=%d vs installed PD %d under the software solver", mv.BestD, mv.NewPD)
	}
	if mv.CurvePoints == 0 || mv.BestE <= 0 {
		t.Fatalf("curve summary empty: %+v", mv)
	}
}

func TestShardStatsAndRDDSnapshot(t *testing.T) {
	c, err := New(Config{Policy: PolicyPDP, Shards: 2, Sets: 16, Ways: 4, RecomputeEvery: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	mix := workload.ServiceConfig{Keys: 60, ZipfS: 0.7, ValueBytes: 16}
	runMix(c, mix, 9, 20000)

	per := c.ShardStats()
	if len(per) != 2 {
		t.Fatalf("%d shard stats", len(per))
	}
	agg := c.Stats()
	var gets, hits uint64
	var entries int
	for i, s := range per {
		if s.Shard != i {
			t.Fatalf("shard id %d at index %d", s.Shard, i)
		}
		gets += s.Gets
		hits += s.Hits
		entries += s.Entries
	}
	if gets != agg.Gets || hits != agg.Hits || entries != agg.Entries {
		t.Fatalf("shard sums (%d,%d,%d) != aggregate (%d,%d,%d)",
			gets, hits, entries, agg.Gets, agg.Hits, agg.Entries)
	}

	rdd := c.RDDSnapshot()
	if len(rdd.Counts) == 0 || rdd.SC == 0 || rdd.DMax == 0 {
		t.Fatalf("empty RDD view: %+v", rdd)
	}
	if rdd.Total == 0 {
		t.Fatal("RDD saw no sampler accesses after 20K ops")
	}
	// The snapshot must not disturb the live arrays: two reads agree.
	again := c.RDDSnapshot()
	if again.Total < rdd.Total {
		t.Fatalf("second snapshot went backwards: %d -> %d", rdd.Total, again.Total)
	}

	lru, _ := New(Config{Policy: PolicyLRU, Shards: 1, Sets: 4, Ways: 2})
	if v := lru.RDDSnapshot(); v.Counts != nil || v.Total != 0 {
		t.Fatalf("LRU RDD view not empty: %+v", v)
	}
}
