package kvcache

import (
	"fmt"
	"testing"

	"pdp/internal/telemetry"
	"pdp/internal/workload"
)

func TestBasicOps(t *testing.T) {
	for _, pol := range []Policy{PolicyPDP, PolicyLRU} {
		t.Run(string(pol), func(t *testing.T) {
			c, err := New(Config{Policy: pol, Shards: 2, Sets: 8, Ways: 2})
			if err != nil {
				t.Fatal(err)
			}
			if _, ok := c.Get("a"); ok {
				t.Fatal("hit on empty cache")
			}
			if !c.Put("a", []byte("alpha")) {
				t.Fatal("fill into empty cache denied")
			}
			v, ok := c.Get("a")
			if !ok || string(v) != "alpha" {
				t.Fatalf("Get(a) = %q, %v", v, ok)
			}
			if !c.Put("a", []byte("beta")) {
				t.Fatal("update of resident key denied")
			}
			if v, _ := c.Get("a"); string(v) != "beta" {
				t.Fatalf("update lost: %q", v)
			}
			if !c.Delete("a") {
				t.Fatal("delete of resident key reported miss")
			}
			if _, ok := c.Get("a"); ok {
				t.Fatal("hit after delete")
			}
			if c.Delete("a") {
				t.Fatal("second delete reported hit")
			}
			st := c.Stats()
			if st.Gets != 4 || st.Hits != 2 || st.Puts != 2 || st.Deletes != 2 {
				t.Fatalf("stats %+v", st)
			}
			if st.Entries != 0 || st.Bytes != 0 {
				t.Fatalf("occupancy after delete: %+v", st)
			}
			if err := c.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestPutCopiesValue(t *testing.T) {
	c, _ := New(Config{Shards: 1, Sets: 4, Ways: 2})
	buf := []byte("original")
	c.Put("k", buf)
	copy(buf, "CLOBBER!")
	if v, _ := c.Get("k"); string(v) != "original" {
		t.Fatalf("stored value aliases caller buffer: %q", v)
	}
}

func TestByteBudgetDeniesAndEvicts(t *testing.T) {
	// One shard, one set, 4 ways, 100-byte budget.
	c, _ := New(Config{Shards: 1, Sets: 1, Ways: 4, MaxBytes: 100, DefaultPD: 4})
	if !c.Put("a", make([]byte, 60)) {
		t.Fatal("first fill denied")
	}
	// 60 + 60 > 100 and "a" is protected (just inserted): the fill must be
	// denied rather than blow the budget or evict a protected line.
	if c.Put("b", make([]byte, 60)) {
		t.Fatal("over-budget fill admitted with only protected victims")
	}
	st := c.Stats()
	if st.Denies != 1 || st.Bytes != 60 {
		t.Fatalf("stats %+v", st)
	}
	// Age "a" out of protection (DefaultPD=4 accesses), then the budget is
	// reclaimable.
	for i := 0; i < 8; i++ {
		c.Get("miss" + fmt.Sprint(i))
	}
	if !c.Put("b", make([]byte, 60)) {
		t.Fatal("fill denied after the victim unprotected")
	}
	st = c.Stats()
	if st.Bytes != 60 || st.Entries != 1 {
		t.Fatalf("budget not enforced: %+v", st)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestNonPowerOfTwoGeometry(t *testing.T) {
	c, err := New(Config{Shards: 3, Sets: 48, Ways: 5})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10000; i++ {
		k := fmt.Sprintf("k%d", i%700)
		if _, ok := c.Get(k); !ok {
			c.Put(k, []byte(k))
		}
	}
	if _, _, ok := c.Recompute(); !ok {
		t.Fatal("recompute found no reuse in a 700-key loop")
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestConfigErrors(t *testing.T) {
	bad := []Config{
		{Policy: "fifo"},
		{Shards: -1},
		{MaxBytes: -5},
		{DMax: 100, SC: 3},
		{NC: 20},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Fatalf("config %d accepted: %+v", i, cfg)
		}
	}
}

// runMix drives a cache-aside client loop (Get; on miss Put) over a
// deterministic service mix and returns the final stats.
func runMix(c *Cache, cfg workload.ServiceConfig, seed uint64, ops int) Stats {
	s := workload.NewServiceStream(cfg, seed)
	for i := 0; i < ops; i++ {
		op := s.Next()
		key := fmt.Sprintf("k%016x", op.Key)
		switch op.Kind {
		case workload.OpGet:
			if _, ok := c.Get(key); !ok {
				c.Put(key, make([]byte, op.Size))
			}
		case workload.OpPut:
			c.Put(key, make([]byte, op.Size))
		case workload.OpDelete:
			c.Delete(key)
		}
	}
	return c.Stats()
}

func TestPDPBeatsLRUOnZipfWithScans(t *testing.T) {
	// The serving analogue of the paper's thrash argument: a Zipf-reused
	// hot set plus repeated scans cycling over a fixed pool whose per-set
	// reuse distance (~44) far exceeds the associativity. LRU admits every
	// scan key, churns the hot set, and scores zero on the cyclic pool;
	// PDP's recomputed PD converges to the pool's distance, keeps a
	// protected subset resident, and denies the excess. Single-goroutine
	// and seeded, so fully deterministic.
	mix := workload.ServiceConfig{
		Keys: 300, ZipfS: 0.8, ValueBytes: 64,
		ScanEvery: 200, ScanLen: 400, ScanLoop: 1600,
	}
	const ops = 200000
	geo := Config{Shards: 4, Sets: 16, Ways: 8, RecomputeEvery: 8192}

	lruCfg := geo
	lruCfg.Policy = PolicyLRU
	lru, _ := New(lruCfg)
	pdpCfg := geo
	pdpCfg.Policy = PolicyPDP
	pdp, _ := New(pdpCfg)

	lruSt := runMix(lru, mix, 42, ops)
	pdpSt := runMix(pdp, mix, 42, ops)

	t.Logf("PDP hit rate %.3f (PD=%d, %d recomputes, %d denies) vs LRU %.3f",
		pdpSt.HitRate(), pdpSt.PD, pdpSt.Recomputes, pdpSt.Denies, lruSt.HitRate())
	if pdpSt.Recomputes == 0 {
		t.Fatal("PD was never recomputed")
	}
	if pdpSt.HitRate() < lruSt.HitRate()+0.08 {
		t.Fatalf("PDP %.3f vs LRU %.3f: want a clear win on the scan mix",
			pdpSt.HitRate(), lruSt.HitRate())
	}
	if pdpSt.Denies == 0 {
		t.Fatal("admission control never engaged")
	}
	if pdpSt.PD < 20 || pdpSt.PD > 120 {
		t.Fatalf("PD=%d did not converge to the cyclic pool's distance", pdpSt.PD)
	}
	if err := pdp.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestPDAdaptsAfterPhaseChange(t *testing.T) {
	// Acceptance: a workload phase change must move the PD, and the journal
	// must show the move. Loop traffic at set-level distance ~K/sets, then
	// a 4x larger loop.
	journal := telemetry.NewJournal(0)
	c, _ := New(Config{
		Shards: 1, Sets: 64, Ways: 8,
		RecomputeEvery: 8192,
		Journal:        journal,
	})
	const sets = 64
	loop := func(keys, ops int) {
		for i := 0; i < ops; i++ {
			k := fmt.Sprintf("k%d", i%keys)
			if _, ok := c.Get(k); !ok {
				c.Put(k, []byte{1})
			}
		}
	}
	loop(20*sets, 120000) // phase 1: RD ~20
	pd1 := c.PD()
	if pd1 < 12 || pd1 > 40 {
		t.Fatalf("phase 1 PD = %d, want ~20", pd1)
	}
	loop(80*sets, 240000) // phase 2: RD ~80
	pd2 := c.PD()
	if pd2 < 60 {
		t.Fatalf("phase 2 PD = %d, want re-convergence to ~80", pd2)
	}
	if journal.CountKind(telemetry.KindPDRecompute) == 0 {
		t.Fatal("no pd_recompute records journaled")
	}
	// The journal must witness the move itself, not just the endpoints.
	moved := false
	for _, r := range journal.Tail(journal.Len()) {
		if rec, ok := r.(telemetry.RecomputeRecord); ok && rec.NewPD != rec.OldPD {
			moved = true
		}
	}
	if !moved {
		t.Fatal("journal never recorded a PD move")
	}
}

func TestRecomputeKeepsPDWithoutReuse(t *testing.T) {
	c, _ := New(Config{Shards: 1, Sets: 8, Ways: 2, DefaultPD: 7})
	// Never-reused traffic: the RDD holds no reuse, the PD must hold.
	for i := 0; i < 5000; i++ {
		c.Get(fmt.Sprintf("one-shot-%d", i))
	}
	old, pd, ok := c.Recompute()
	if ok {
		t.Fatalf("recompute claimed reuse: %d -> %d", old, pd)
	}
	if c.PD() != 7 {
		t.Fatalf("PD drifted to %d without reuse information", c.PD())
	}
}

func TestLRUEvictsLeastRecentlyUsed(t *testing.T) {
	c, _ := New(Config{Policy: PolicyLRU, Shards: 1, Sets: 1, Ways: 2})
	c.Put("a", []byte("a"))
	c.Put("b", []byte("b"))
	c.Get("a") // b is now LRU
	c.Put("c", []byte("c"))
	if _, ok := c.Get("b"); ok {
		t.Fatal("LRU kept the least recently used line")
	}
	if _, ok := c.Get("a"); !ok {
		t.Fatal("LRU evicted the most recently used line")
	}
}

func TestTelemetryCounters(t *testing.T) {
	reg := telemetry.NewRegistry()
	c, _ := New(Config{Shards: 1, Sets: 4, Ways: 2, Registry: reg})
	c.Put("x", []byte("1"))
	c.Get("x")
	c.Get("y")
	c.Stats()
	snap := reg.Snapshot()
	if snap["kv.gets"].(uint64) != 2 || snap["kv.hits"].(uint64) != 1 {
		t.Fatalf("registry snapshot %+v", snap)
	}
	if snap["kv.entries"].(float64) != 1 {
		t.Fatalf("kv.entries = %v", snap["kv.entries"])
	}
}
