package kvcache

import (
	"context"
	"fmt"
	"time"
)

// Adapter drives the wall-clock side of online PD adaptation: a goroutine
// that recomputes the protecting distance every Interval regardless of
// traffic volume, so a mostly idle service still converges (the inline
// count trigger in Cache.tick covers heavy traffic without timer skew).
type Adapter struct {
	cache    *Cache
	interval time.Duration
	cancel   context.CancelFunc
	done     chan struct{}
}

// NewAdapter validates the interval and binds an adapter to c. Zero and
// negative intervals are configuration errors, not silent no-ops: the
// caller asked for periodic adaptation, and "never" is not a period.
func NewAdapter(c *Cache, interval time.Duration) (*Adapter, error) {
	if interval <= 0 {
		return nil, fmt.Errorf("kvcache: adapt interval must be positive, got %v", interval)
	}
	return &Adapter{cache: c, interval: interval}, nil
}

// Start launches the recompute loop; it returns immediately. The loop
// stops when ctx is cancelled or Stop is called.
func (a *Adapter) Start(ctx context.Context) {
	ctx, a.cancel = context.WithCancel(ctx)
	a.done = make(chan struct{})
	go func() {
		defer close(a.done)
		t := time.NewTicker(a.interval)
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-t.C:
				a.cache.Recompute()
			}
		}
	}()
}

// Stop terminates the loop and waits for it to exit. Safe to call more
// than once; a no-op if Start never ran.
func (a *Adapter) Stop() {
	if a.cancel == nil {
		return
	}
	a.cancel()
	<-a.done
	a.cancel = nil
}
