package kvcache

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
)

// TestExecBatchSemantics drives one mixed batch through a small cache and
// checks every per-op outcome against the single-op contract: puts store,
// gets of stored keys hit with the right bytes, absent keys miss, deletes
// report residency, and a later op in the batch observes an earlier one
// on the same key.
func TestExecBatchSemantics(t *testing.T) {
	c, err := New(benchConfig(PolicyPDP, 4))
	if err != nil {
		t.Fatal(err)
	}
	c.Put("resident", []byte("old"))

	ops := []BatchOp{
		{Kind: BatchPut, Key: "a", Value: []byte("alpha")},
		{Kind: BatchGet, Key: "a"},                              // sees the put above
		{Kind: BatchGet, Key: "absent"},                         // miss
		{Kind: BatchPut, Key: "resident", Value: []byte("new")}, // update in place
		{Kind: BatchGet, Key: "resident"},
		{Kind: BatchDelete, Key: "a"},     // deletes this batch's own put
		{Kind: BatchGet, Key: "a"},        // ... so this misses
		{Kind: BatchDelete, Key: "never"}, // not found
	}
	results := make([]BatchResult, len(ops))
	dst := c.ExecBatch(ops, results, nil)

	want := []BatchStatus{
		BatchStored, BatchHit, BatchMiss, BatchStored,
		BatchHit, BatchDeleted, BatchMiss, BatchNotFound,
	}
	for i, w := range want {
		if results[i].Status != w {
			t.Errorf("op %d (%q): status %v, want %v", i, ops[i].Key, results[i].Status, w)
		}
	}
	if !bytes.Equal(results[1].Value, []byte("alpha")) {
		t.Errorf("op 1 value %q, want alpha", results[1].Value)
	}
	if !bytes.Equal(results[4].Value, []byte("new")) {
		t.Errorf("op 4 value %q, want new (update must land before the get)", results[4].Value)
	}
	if len(dst) != len("alpha")+len("new") {
		t.Errorf("dst holds %d bytes, want %d", len(dst), len("alpha")+len("new"))
	}

	// The batch's ops are fully booked in the aggregate counters.
	st := c.Stats()
	if st.Gets != 4 || st.Puts != 3 || st.Deletes != 2 {
		t.Errorf("stats gets/puts/deletes = %d/%d/%d, want 4/3/2", st.Gets, st.Puts, st.Deletes)
	}
	if st.Hits != 2 {
		t.Errorf("stats hits = %d, want 2", st.Hits)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestExecBatchMatchesSingleOps replays the same deterministic mixed
// stream through a batched cache and a single-op cache and requires
// identical outcome sequences and aggregate stats — ExecBatch is an
// execution strategy, not a different policy.
func TestExecBatchMatchesSingleOps(t *testing.T) {
	mk := func() *Cache {
		c, err := New(benchConfig(PolicyPDP, 4))
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	single, batched := mk(), mk()

	const rounds, per = 40, 32
	val := []byte("batch-equivalence-value")
	results := make([]BatchResult, per)
	var dst []byte
	for r := 0; r < rounds; r++ {
		ops := make([]BatchOp, per)
		for i := range ops {
			k := fmt.Sprintf("k%03d", (r*7+i*3)%100)
			switch (r + i) % 5 {
			case 0, 1:
				ops[i] = BatchOp{Kind: BatchPut, Key: k, Value: val}
			case 4:
				ops[i] = BatchOp{Kind: BatchDelete, Key: k}
			default:
				ops[i] = BatchOp{Kind: BatchGet, Key: k}
			}
		}
		dst = batched.ExecBatch(ops, results, dst[:0])
		for i, op := range ops {
			var want BatchStatus
			switch op.Kind {
			case BatchGet:
				if _, ok := single.Get(op.Key); ok {
					want = BatchHit
				} else {
					want = BatchMiss
				}
			case BatchPut:
				if single.Put(op.Key, op.Value) {
					want = BatchStored
				} else {
					want = BatchDenied
				}
			case BatchDelete:
				if single.Delete(op.Key) {
					want = BatchDeleted
				} else {
					want = BatchNotFound
				}
			}
			if results[i].Status != want {
				t.Fatalf("round %d op %d (%q kind %d): batched %v, single-op %v",
					r, i, op.Key, op.Kind, results[i].Status, want)
			}
		}
	}

	ss, bs := single.Stats(), batched.Stats()
	ss.PD, bs.PD = 0, 0 // PD gauges may differ by recompute timing; everything else must not
	ss.Recomputes, bs.Recomputes = 0, 0
	if ss != bs {
		t.Errorf("aggregate stats diverged:\n single: %+v\nbatched: %+v", ss, bs)
	}
	if err := batched.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestExecBatchConcurrent hammers ExecBatch from several goroutines with
// overlapping key ranges (run under -race in CI) and checks invariants
// afterwards — the per-shard grouping must not break the locking
// discipline.
func TestExecBatchConcurrent(t *testing.T) {
	c, err := New(benchConfig(PolicyPDP, 4))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			results := make([]BatchResult, 64)
			var dst []byte
			val := []byte("concurrent-value")
			for r := 0; r < 50; r++ {
				ops := make([]BatchOp, 64)
				for i := range ops {
					k := fmt.Sprintf("k%03d", (g*17+r*5+i)%200)
					switch i % 3 {
					case 0:
						ops[i] = BatchOp{Kind: BatchPut, Key: k, Value: val}
					case 1:
						ops[i] = BatchOp{Kind: BatchGet, Key: k}
					default:
						ops[i] = BatchOp{Kind: BatchDelete, Key: k}
					}
				}
				dst = c.ExecBatch(ops, results, dst[:0])
			}
		}(g)
	}
	wg.Wait()
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestExecBatchRecompute verifies the batch tick fires the count-driven
// PD recomputation when a batch crosses the epoch boundary — and that it
// fires outside the shard locks (a deadlock here would hang the test).
func TestExecBatchRecompute(t *testing.T) {
	cfg := benchConfig(PolicyPDP, 4)
	cfg.RecomputeEvery = 64
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ops := make([]BatchOp, 48)
	for i := range ops {
		ops[i] = BatchOp{Kind: BatchGet, Key: fmt.Sprintf("k%02d", i)}
	}
	results := make([]BatchResult, len(ops))
	c.ExecBatch(ops, results, nil) // accs 48: no boundary
	if got := c.Recomputes(); got != 0 {
		t.Fatalf("recomputes after 48 accesses: %d, want 0", got)
	}
	c.ExecBatch(ops, results, nil) // accs 96: crossed 64
	if got := c.Recomputes(); got != 1 {
		t.Fatalf("recomputes after 96 accesses: %d, want 1", got)
	}
}

// TestExecBatchAllocBudget is the acceptance-criteria guard: a
// steady-state mixed batch must amortize to at most one allocation per
// operation (scratch is pooled, PUT values ride the freelist, GET values
// land in the caller's reused buffer).
func TestExecBatchAllocBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are distorted under the race detector")
	}
	c, err := New(benchConfig(PolicyPDP, 16))
	if err != nil {
		t.Fatal(err)
	}
	keys := benchKeys(t, c, 256, 128)
	val := make([]byte, 128)

	const batch = 64
	ops := make([]BatchOp, batch)
	results := make([]BatchResult, batch)
	dst := make([]byte, 0, batch*256)
	round := 0
	fill := func() {
		for i := range ops {
			k := keys[(round*batch+i)%len(keys)]
			if i%10 == 9 {
				ops[i] = BatchOp{Kind: BatchPut, Key: k, Value: val}
			} else {
				ops[i] = BatchOp{Kind: BatchGet, Key: k}
			}
		}
		round++
	}
	fill()
	dst = c.ExecBatch(ops, results, dst[:0]) // warm pool + freelists

	if got := bestOfAllocs(100, func() {
		fill()
		dst = c.ExecBatch(ops, results, dst[:0])
	}); got > float64(batch) {
		t.Errorf("ExecBatch allocates %.1f per %d-op batch (%.3f/op), budget 1/op", got, batch, got/batch)
	}
}

// BenchmarkExecBatch measures the amortized per-op cost of the batched
// path at several batch sizes against the same 90/10 get/put mix the
// shards sweep uses; b.N counts logical ops, so ns/op is directly
// comparable to BenchmarkHotPathGetHit and friends.
func BenchmarkExecBatch(b *testing.B) {
	for _, size := range []int{1, 8, 32, 128} {
		b.Run(fmt.Sprintf("batch=%d", size), func(b *testing.B) {
			c, err := New(benchConfig(PolicyPDP, 16))
			if err != nil {
				b.Fatal(err)
			}
			keys := benchKeys(b, c, 1024, 128)
			val := make([]byte, 128)
			ops := make([]BatchOp, size)
			results := make([]BatchResult, size)
			dst := make([]byte, 0, size*256)
			b.ReportAllocs()
			b.ResetTimer()
			for done := 0; done < b.N; done += size {
				for i := range ops {
					k := keys[(done+i)%len(keys)]
					if (done+i)%10 == 9 {
						ops[i] = BatchOp{Kind: BatchPut, Key: k, Value: val}
					} else {
						ops[i] = BatchOp{Kind: BatchGet, Key: k}
					}
				}
				dst = c.ExecBatch(ops, results, dst[:0])
			}
		})
	}
}
