package kvcache

import "sync"

// Decision kinds — the attribution classes of the serving policy.
const (
	// DecisionEvictUnprotected: a fill evicted a line whose protection had
	// expired (RPD == 0) — the policy's intended victim class.
	DecisionEvictUnprotected = "evict_unprotected"
	// DecisionEvictForced: a fill evicted a still-protected line because
	// the whole set was protected and AdmitAll demanded an inclusive
	// victim (the PDP-NB analogue). In LRU mode every eviction is
	// unprotected; forced evictions never occur.
	DecisionEvictForced = "evict_forced"
	// DecisionDeny: admission control refused a fill (fully protected set
	// or uncoverable byte budget).
	DecisionDeny = "deny"
	// DecisionSave: a hit landed on a protected line a same-geometry LRU
	// baseline would already have evicted — the shadow-LRU approximation
	// of "protection saved this hit". A line is marked doomed when the
	// policy diverges from LRU (it evicts or denies while a *different*,
	// less recently used line exists, which LRU would have chosen); the
	// next hit on a doomed line counts as one save and clears the mark.
	DecisionSave = "save"
)

// Decision is one attributed policy event: which shard/set/way it hit,
// what kind of decision it was, the key concerned, the victim's remaining
// protecting distance (eviction kinds) and the PD in force at the time.
type Decision struct {
	// Seq is the log-lifetime ordinal (1-based, monotone across shards).
	Seq   uint64 `json:"seq"`
	Shard int    `json:"shard"`
	Set   int    `json:"set"`
	// Way is the affected way, -1 for denies (no line was touched).
	Way  int    `json:"way"`
	Kind string `json:"kind"`
	Key  string `json:"key,omitempty"`
	// RPD is the victim's remaining protecting distance at eviction
	// (> 0 exactly for forced evictions).
	RPD int `json:"rpd,omitempty"`
	// PD is the protecting distance in force when the decision was made.
	PD int `json:"pd"`
}

// DefaultDecisionLog bounds the in-memory decision history when the
// configuration does not say otherwise.
const DefaultDecisionLog = 512

// DecisionLog is a bounded ring of the most recent policy decisions,
// exported by the server at /debug/decisions. All methods are safe on a
// nil receiver (the disabled mode) and under concurrent use; appends are
// O(1) under one short mutex, so the per-decision cost on the serving
// path is a few tens of nanoseconds.
type DecisionLog struct {
	mu     sync.Mutex
	ring   []Decision
	next   int
	filled bool
	seq    uint64
	counts map[string]uint64
}

// NewDecisionLog builds a log retaining the last n decisions
// (DefaultDecisionLog when n <= 0).
func NewDecisionLog(n int) *DecisionLog {
	if n <= 0 {
		n = DefaultDecisionLog
	}
	return &DecisionLog{ring: make([]Decision, n), counts: map[string]uint64{}}
}

// add records d, stamping its sequence number.
func (l *DecisionLog) add(d Decision) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.seq++
	d.Seq = l.seq
	l.ring[l.next] = d
	l.next++
	if l.next == len(l.ring) {
		l.next = 0
		l.filled = true
	}
	l.counts[d.Kind]++
	l.mu.Unlock()
}

// Len returns the number of decisions currently held.
func (l *DecisionLog) Len() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.filled {
		return len(l.ring)
	}
	return l.next
}

// Total returns the number of decisions ever recorded.
func (l *DecisionLog) Total() uint64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq
}

// CountKind returns how many decisions of the given kind were recorded.
func (l *DecisionLog) CountKind(kind string) uint64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.counts[kind]
}

// Tail returns the most recent n decisions, oldest first.
func (l *DecisionLog) Tail(n int) []Decision {
	if l == nil || n <= 0 {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	held := l.next
	if l.filled {
		held = len(l.ring)
	}
	if n > held {
		n = held
	}
	out := make([]Decision, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, l.ring[(l.next-n+i+len(l.ring))%len(l.ring)])
	}
	return out
}
