package kvcache

import (
	"fmt"
	"sync"
	"time"

	"pdp/internal/core"
	"pdp/internal/sampler"
	"pdp/internal/telemetry"
)

// shard is one independently locked slice of the cache: a sets x ways
// bucket array with either PDP protection bookkeeping plus an RD sampler,
// or LRU stamps. All state below mu is guarded by it.
//
// PDP shards additionally run a shadow-LRU attribution layer: recency
// stamps are maintained exactly as in LRU mode, and whenever the policy
// diverges from LRU — it evicts or denies while a different, less
// recently used line exists — that LRU-victim line is marked doomed. A
// later hit on a doomed line is a "protection save": a hit the recency
// baseline would have lost. The layer costs one bool per line and one
// stamp write per access.
//
// Hot-path cost model: get/put/delete hold mu for the set walk, the PDP
// bookkeeping and (get) the copy-out of the value — never for a value
// copy-in (Cache.Put copies into a recycled buffer before locking) and
// never for an allocation in steady state (displaced value buffers are
// recycled through the per-shard freelist). The lock-hold watchdog is
// sampled (1 in holdEvery operations) so the common case pays no
// time.Now call at all.
//
// Field layout: the mutex, the freelist lock and the per-shard stat
// counters are each padded out to their own cache line. Shards are
// allocated independently, but the allocator is free to pack two small
// hot regions of neighbouring shards into one line; with GOMAXPROCS > 1
// that false sharing made the shards sweep *lose* throughput as cores
// were added (203 -> 409 ns/op at shards=4). A line-aligned mutex also
// keeps the lock word off the line holding the read-mostly geometry
// fields, so spinning waiters do not invalidate the owner's reads.
type shard struct {
	mu sync.Mutex
	_  [56]byte // pad the lock word to a full cache line

	id         int
	nshards    int
	sets, ways int
	maxBytes   int64
	admitAll   bool

	keys []string
	// hashes[i] is the line's in-shard key hash: find rejects non-matching
	// lines on one integer compare instead of a string compare.
	hashes []uint64
	vals   [][]byte
	valid  []bool

	// PDP mode.
	prot   *core.Protection
	smp    *sampler.RDSampler
	doomed []bool

	// deg is the degraded-mode breaker flag: while set the shard ignores
	// the protecting distance entirely and serves with plain LRU eviction
	// and unconditional admission — exactly the shadow baseline it already
	// maintains. The sampler and the protection clock keep running so
	// clean recomputes can re-arm the breaker. Guarded by mu; transitions
	// additionally serialize on the cache's bmu.
	deg bool

	// Recency stamps: the LRU policy in LRU mode, the shadow baseline in
	// PDP mode.
	stamp uint64
	last  []uint64

	// Hot mutable counters, padded on both sides: every operation writes
	// stamp/bytes/st under mu, and these lines must not be shared with a
	// neighbouring shard's lock or freelist.
	_     [64]byte
	bytes int64
	st    shardStats
	_     [64]byte

	// Value-buffer freelist: displaced buffers (updates, evictions,
	// deletes) parked for reuse by the next copy-in, so steady-state PUTs
	// allocate nothing. fmu is an innermost leaf lock — it is taken with
	// and without mu held, and never wraps another lock.
	fmu  sync.Mutex
	_    [56]byte // keep freelist contention off the stat counters' line
	free [][]byte

	// Decision attribution sinks (nil-tolerant).
	dlog                 *DecisionLog
	mEvUnprot, mEvForced *telemetry.Counter
	mDenies, mSaves      *telemetry.Counter

	// Robustness hooks: the chaos injector (nil when none), the journal
	// for lock-hold warnings, and the hold-time watchdog threshold
	// (0 disables it). holdEvery is the watchdog sampling period;
	// holdCount counts down to the next sampled operation (it starts at 0
	// so the very first operation is always sampled).
	chaos      Chaos
	journal    *telemetry.Journal
	holdWarn   time.Duration
	holdEvery  int
	holdCount  int
	mLockWarns *telemetry.Counter
}

// shardStats are the per-shard counters folded into Stats.
type shardStats struct {
	gets, hits, puts, deletes  uint64
	inserts, evictions, denies uint64
	evictUnprot, evictForced   uint64
	saves                      uint64
	degradedOps, lockWarns     uint64
	entries                    int
}

// putResult reports what one put did.
type putResult struct {
	inserted bool
	denied   bool
	evicted  int
}

func newShard(cfg *Config, id int, dlog *DecisionLog, mLockWarns *telemetry.Counter) *shard {
	sh := &shard{
		id:         id,
		nshards:    cfg.Shards,
		sets:       cfg.Sets,
		ways:       cfg.Ways,
		maxBytes:   cfg.MaxBytes,
		admitAll:   cfg.AdmitAll,
		keys:       make([]string, cfg.Sets*cfg.Ways),
		hashes:     make([]uint64, cfg.Sets*cfg.Ways),
		vals:       make([][]byte, cfg.Sets*cfg.Ways),
		valid:      make([]bool, cfg.Sets*cfg.Ways),
		last:       make([]uint64, cfg.Sets*cfg.Ways),
		dlog:       dlog,
		chaos:      cfg.Chaos,
		journal:    cfg.Journal,
		holdWarn:   cfg.LockHoldWarn,
		holdEvery:  cfg.HoldSampleEvery,
		mLockWarns: mLockWarns,
	}
	if cfg.Policy == PolicyPDP {
		sh.prot = core.NewProtection(cfg.Sets, cfg.Ways, cfg.DMax, cfg.NC)
		scfg := sampler.RealConfig(cfg.Sets, cfg.SC)
		scfg.DMax = cfg.DMax
		sh.smp = sampler.New(scfg)
		sh.doomed = make([]bool, cfg.Sets*cfg.Ways)
	}
	reg := cfg.Registry
	sh.mEvUnprot = reg.Counter(fmt.Sprintf(`kv.shard.evictions{shard="%d",class="unprotected"}`, id))
	sh.mEvForced = reg.Counter(fmt.Sprintf(`kv.shard.evictions{shard="%d",class="forced"}`, id))
	sh.mDenies = reg.Counter(fmt.Sprintf(`kv.shard.denies{shard="%d"}`, id))
	sh.mSaves = reg.Counter(fmt.Sprintf(`kv.shard.saves{shard="%d"}`, id))
	return sh
}

// setOf maps the in-shard hash to a set; the set count need not be a power
// of two.
func (sh *shard) setOf(h uint64) int { return int(h % uint64(sh.sets)) }

// maxFree bounds the freelist so an emptied cache does not pin its former
// working set forever: at most one parked buffer per line.
func (sh *shard) maxFree() int { return sh.sets * sh.ways }

// allocBuf returns a length-n buffer for a value copy-in, reusing a parked
// buffer when one is large enough. Called WITHOUT mu held — the copy it
// feeds happens outside the critical section.
func (sh *shard) allocBuf(n int) []byte {
	sh.fmu.Lock()
	if l := len(sh.free); l > 0 {
		b := sh.free[l-1]
		sh.free[l-1] = nil
		sh.free = sh.free[:l-1]
		sh.fmu.Unlock()
		if cap(b) >= n {
			return b[:n]
		}
		// Too small for this value: let it go rather than cycling it back
		// under every future caller's feet.
		return make([]byte, n)
	}
	sh.fmu.Unlock()
	return make([]byte, n)
}

// freeBuf parks a displaced value buffer for reuse. Safe under mu (fmu is
// a leaf lock); the append never allocates once the freelist has grown to
// its bound.
func (sh *shard) freeBuf(b []byte) {
	if b == nil {
		return
	}
	sh.fmu.Lock()
	if len(sh.free) < sh.maxFree() {
		sh.free = append(sh.free, b)
	}
	sh.fmu.Unlock()
}

// enterLocked runs the per-critical-section hooks under the shard lock —
// the chaos injection point (which may corrupt the live RDD array or
// sleep to provoke the watchdog), the degraded-ops count, and the
// sampled start of the lock-hold watchdog. n is the number of cache
// operations this critical section serves: 1 for the single-op paths, a
// batch group's size for execBatch (the watchdog and the chaos hook fire
// once per section — one lock acquisition, one timed hold — while the
// degraded-ops attribution stays per operation). It returns the watchdog
// start time (zero when this section is not sampled); callers pair it
// with one deferred exitLocked.
func (sh *shard) enterLocked(n int) (t0 time.Time) {
	if sh.chaos != nil {
		var arr ChaosArray
		if sh.smp != nil {
			arr = sh.smp.Array()
		}
		sh.chaos.Access(sh.id, arr)
	}
	if sh.deg {
		sh.st.degradedOps += uint64(n)
	}
	if sh.holdWarn > 0 {
		sh.holdCount--
		if sh.holdCount < 0 {
			sh.holdCount = sh.holdEvery - 1
			t0 = time.Now()
		}
	}
	return t0
}

// exitLocked closes one critical section: it books a lock-hold warning if
// this operation was sampled and overran the threshold, then unlocks.
func (sh *shard) exitLocked(t0 time.Time) {
	if !t0.IsZero() {
		sh.watchHold(t0)
	}
	sh.mu.Unlock()
}

// watchHold is the shard-lock hold-time watchdog body: called just before
// Unlock on sampled operations, it books any critical section held past
// holdWarn — the serving-path symptom of a stalled callback or an
// injected latency spike.
func (sh *shard) watchHold(start time.Time) {
	held := time.Since(start)
	if held <= sh.holdWarn {
		return
	}
	sh.st.lockWarns++
	sh.mLockWarns.Inc()
	sh.journal.Append(telemetry.LockHoldRecord{
		Kind: telemetry.KindLockHold, Shard: sh.id,
		HeldMS: float64(held) / float64(time.Millisecond),
		WarnMS: float64(sh.holdWarn) / float64(time.Millisecond),
	})
}

// samplerAddr renders the in-shard hash as the line-address the RD sampler
// hashes its 16-bit partial tags from (it discards the low 6 offset bits).
func samplerAddr(h uint64) uint64 { return h << 6 }

// observe runs the per-access PDP bookkeeping for one access to set: the
// S_d-stepped RPD decrement and the RD-sampler update. LRU shards keep
// their recency clock in touch/insert instead.
func (sh *shard) observe(set int, h uint64) {
	if sh.prot != nil {
		sh.prot.Tick(set)
		sh.smp.Access(set, samplerAddr(h))
	}
}

// find scans the set for key, returning its way or -1. The stored in-shard
// hash rejects non-matching lines on one integer compare; the string
// compare runs only on a hash match (i.e. almost only on the hit itself).
func (sh *shard) find(set int, h uint64, key string) int {
	base := set * sh.ways
	for w := 0; w < sh.ways; w++ {
		if sh.valid[base+w] && sh.hashes[base+w] == h && sh.keys[base+w] == key {
			return w
		}
	}
	return -1
}

// get looks key up and, on a hit, appends the value to dst under the lock
// (the store's buffers are recycled, so the bytes must be copied out
// before the lock is released). It returns the extended dst; on a miss dst
// is returned unchanged.
func (sh *shard) get(h uint64, key string, pd int, dst []byte) ([]byte, bool) {
	sh.mu.Lock()
	t0 := sh.enterLocked(1)
	defer sh.exitLocked(t0)
	return sh.getLocked(h, key, pd, dst)
}

// getLocked is the body of get, for callers already inside the critical
// section — the single-op wrapper above and execBatch's per-shard groups.
func (sh *shard) getLocked(h uint64, key string, pd int, dst []byte) ([]byte, bool) {
	set := sh.setOf(h)
	sh.st.gets++
	w := sh.find(set, h, key)
	if w < 0 {
		sh.observe(set, h)
		return dst, false
	}
	sh.st.hits++
	if sh.doomed != nil && !sh.deg && sh.doomed[set*sh.ways+w] {
		// The shadow LRU had already evicted this line; protection kept
		// it, and that protection just converted into a hit.
		sh.st.saves++
		sh.mSaves.Inc()
		sh.dlog.add(Decision{
			Shard: sh.id, Set: set, Way: w,
			Kind: DecisionSave, Key: key,
			RPD: sh.prot.RPD(set, w), PD: pd,
		})
	}
	sh.touch(set, w, pd)
	sh.observe(set, h)
	return append(dst, sh.vals[set*sh.ways+w]...), true
}

// touch promotes a hit line under the active policy and refreshes its
// shadow-LRU recency (which also retires any doomed mark: once re-touched
// the baseline would have re-admitted the key, so the divergence window
// closes).
func (sh *shard) touch(set, w, pd int) {
	if sh.prot != nil {
		if !sh.deg {
			sh.prot.Promote(set, w, pd)
		}
		sh.doomed[set*sh.ways+w] = false
	}
	sh.stamp++
	sh.last[set*sh.ways+w] = sh.stamp
}

// put installs val — an owned buffer the caller already copied the value
// into (Cache.Put routes it through allocBuf, so the copy happened outside
// the lock). Displaced buffers (update-in-place, evictions, a denied
// fill's own buffer) are parked on the freelist.
func (sh *shard) put(h uint64, key string, val []byte, pd int) putResult {
	sh.mu.Lock()
	t0 := sh.enterLocked(1)
	defer sh.exitLocked(t0)
	return sh.putLocked(h, key, val, pd)
}

// putLocked is the body of put, for callers already inside the critical
// section (see getLocked). val must be an owned buffer.
func (sh *shard) putLocked(h uint64, key string, val []byte, pd int) putResult {
	set := sh.setOf(h)
	sh.st.puts++
	var res putResult

	if w := sh.find(set, h, key); w >= 0 {
		// Update in place: resident keys are always writable.
		i := set*sh.ways + w
		sh.bytes += int64(len(val)) - int64(len(sh.vals[i]))
		sh.freeBuf(sh.vals[i])
		sh.vals[i] = val
		sh.touch(set, w, pd)
		sh.observe(set, h)
		return res
	}

	// From here on this is a fill (or a deny): the completion of a miss the
	// Get already observed. It must not tick the protection clock or feed
	// the sampler — a second observation per logical access would halve
	// every measured reuse distance and, worse, the fill's address would
	// match the miss's own FIFO entry at distance ~0, swamping the RDD with
	// a spurious near-zero spike that drags the computed PD down.
	w := sh.victimWay(set, pd, &res)
	if w < 0 {
		sh.deny(set, key, pd, &res)
		sh.freeBuf(val)
		return res
	}

	// Byte budget: evict further unprotected lines of this set while the
	// fill would overflow; deny when the budget still cannot be met (the
	// admission-control analogue of bypass for oversized working sets).
	if sh.maxBytes > 0 {
		for sh.bytes+int64(len(val)) > sh.maxBytes {
			v := sh.budgetVictim(set, w)
			if v < 0 {
				sh.deny(set, key, pd, &res)
				sh.freeBuf(val)
				return res
			}
			sh.evict(set, v, pd, &res)
		}
	}

	i := set*sh.ways + w
	sh.keys[i] = key
	sh.hashes[i] = h
	sh.vals[i] = val
	sh.valid[i] = true
	sh.bytes += int64(len(val))
	sh.st.entries++
	sh.st.inserts++
	res.inserted = true
	if sh.prot != nil && !sh.deg {
		sh.prot.Insert(set, w, pd)
	}
	sh.stamp++
	sh.last[i] = sh.stamp
	return res
}

// deny books one admission refusal: counters, the decision log, and the
// shadow-LRU mark (an LRU baseline would have evicted the set's least
// recently used line and admitted the key, so that line is now living on
// protection alone).
func (sh *shard) deny(set int, key string, pd int, res *putResult) {
	sh.st.denies++
	sh.mDenies.Inc()
	res.denied = true
	sh.doomLRU(set, -1)
	sh.dlog.add(Decision{
		Shard: sh.id, Set: set, Way: -1,
		Kind: DecisionDeny, Key: key, PD: pd,
	})
}

// doomLRU marks the set's least-recently-used valid line as doomed when
// it is not the line the policy actually targeted (actual = -1 marks it
// unconditionally). Called only at decision points where the set is full,
// so lruVictim never sees an invalid way.
func (sh *shard) doomLRU(set, actual int) {
	if sh.doomed == nil {
		return
	}
	if w := sh.lruVictim(set); w != actual {
		sh.doomed[set*sh.ways+w] = true
	}
}

// victimWay returns the way to fill, evicting its current resident if
// needed, or -1 when admission is denied (PDP with every line protected
// and AdmitAll off).
func (sh *shard) victimWay(set, pd int, res *putResult) int {
	base := set * sh.ways
	for w := 0; w < sh.ways; w++ {
		if !sh.valid[base+w] {
			return w
		}
	}
	if sh.prot == nil || sh.deg {
		// LRU mode, or a tripped breaker: plain recency eviction,
		// unconditional admission.
		w := sh.lruVictim(set)
		sh.evict(set, w, pd, res)
		return w
	}
	if w, ok := sh.prot.Unprotected(set); ok {
		sh.doomLRU(set, w)
		sh.evict(set, w, pd, res)
		return w
	}
	if sh.admitAll {
		w := sh.prot.InclusiveVictim(set)
		sh.doomLRU(set, w)
		sh.evict(set, w, pd, res)
		return w
	}
	return -1
}

// budgetVictim picks an additional victim to free bytes: any unprotected
// valid line (PDP) or the LRU line (LRU), excluding the way already chosen
// for the fill; -1 when none qualifies.
func (sh *shard) budgetVictim(set, exclude int) int {
	base := set * sh.ways
	if sh.prot == nil || sh.deg {
		best, bestStamp := -1, uint64(0)
		for w := 0; w < sh.ways; w++ {
			if w == exclude || !sh.valid[base+w] {
				continue
			}
			if best < 0 || sh.last[base+w] < bestStamp {
				best, bestStamp = w, sh.last[base+w]
			}
		}
		return best
	}
	for w := 0; w < sh.ways; w++ {
		if w != exclude && sh.valid[base+w] && !sh.prot.Protected(set, w) {
			return w
		}
	}
	return -1
}

// lruVictim returns the least recently used valid way.
func (sh *shard) lruVictim(set int) int {
	base := set * sh.ways
	best, bestStamp := 0, sh.last[base]
	for w := 1; w < sh.ways; w++ {
		if sh.last[base+w] < bestStamp {
			best, bestStamp = w, sh.last[base+w]
		}
	}
	return best
}

// evict drops the resident line in (set, w), classifying the eviction:
// unprotected (RPD expired — the policy's intended victim class) or
// forced (a still-protected line went because the whole set was
// protected under AdmitAll). The victim's value buffer goes back on the
// freelist.
func (sh *shard) evict(set, w, pd int, res *putResult) {
	i := set*sh.ways + w
	kind := DecisionEvictUnprotected
	rpd := 0
	if sh.prot != nil {
		if rpd = sh.prot.RPD(set, w); rpd > 0 {
			kind = DecisionEvictForced
		}
	}
	sh.dlog.add(Decision{
		Shard: sh.id, Set: set, Way: w,
		Kind: kind, Key: sh.keys[i], RPD: rpd, PD: pd,
	})
	if kind == DecisionEvictForced {
		sh.st.evictForced++
		sh.mEvForced.Inc()
	} else {
		sh.st.evictUnprot++
		sh.mEvUnprot.Inc()
	}
	sh.bytes -= int64(len(sh.vals[i]))
	sh.keys[i] = ""
	sh.hashes[i] = 0
	sh.freeBuf(sh.vals[i])
	sh.vals[i] = nil
	sh.valid[i] = false
	sh.last[i] = 0
	if sh.prot != nil {
		sh.prot.Clear(set, w)
		sh.doomed[i] = false
	}
	sh.st.entries--
	sh.st.evictions++
	res.evicted++
}

func (sh *shard) delete(h uint64, key string) bool {
	sh.mu.Lock()
	t0 := sh.enterLocked(1)
	defer sh.exitLocked(t0)
	return sh.deleteLocked(h, key)
}

// deleteLocked is the body of delete, for callers already inside the
// critical section (see getLocked).
func (sh *shard) deleteLocked(h uint64, key string) bool {
	set := sh.setOf(h)
	sh.st.deletes++
	w := sh.find(set, h, key)
	if w >= 0 {
		i := set*sh.ways + w
		sh.bytes -= int64(len(sh.vals[i]))
		sh.keys[i] = ""
		sh.hashes[i] = 0
		sh.freeBuf(sh.vals[i])
		sh.vals[i] = nil
		sh.valid[i] = false
		sh.last[i] = 0
		if sh.prot != nil {
			sh.prot.Clear(set, w)
			sh.doomed[i] = false
		}
		sh.st.entries--
	}
	sh.observe(set, h)
	return w >= 0
}

func (sh *shard) addStats(st *Stats) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	st.Gets += sh.st.gets
	st.Hits += sh.st.hits
	st.Misses += sh.st.gets - sh.st.hits
	st.Puts += sh.st.puts
	st.Deletes += sh.st.deletes
	st.Inserts += sh.st.inserts
	st.Evictions += sh.st.evictions
	st.EvictionsUnprotected += sh.st.evictUnprot
	st.EvictionsForced += sh.st.evictForced
	st.Denies += sh.st.denies
	st.Saves += sh.st.saves
	st.DegradedOps += sh.st.degradedOps
	st.LockHoldWarns += sh.st.lockWarns
	st.Entries += sh.st.entries
	st.Bytes += sh.bytes
	if sh.smp != nil {
		st.SamplerAccesses += sh.smp.Stats.Accesses
		st.SamplerHits += sh.smp.Stats.Hits
	}
}

// stats returns this shard's attribution view (under the shard lock).
func (sh *shard) stats() ShardStats {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return ShardStats{
		Shard:                sh.id,
		Gets:                 sh.st.gets,
		Hits:                 sh.st.hits,
		Entries:              sh.st.entries,
		Bytes:                sh.bytes,
		Evictions:            sh.st.evictions,
		EvictionsUnprotected: sh.st.evictUnprot,
		EvictionsForced:      sh.st.evictForced,
		Denies:               sh.st.denies,
		Saves:                sh.st.saves,
	}
}

func (sh *shard) checkInvariants() error {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	var entries int
	var bytes int64
	for set := 0; set < sh.sets; set++ {
		for w := 0; w < sh.ways; w++ {
			i := set*sh.ways + w
			if sh.valid[i] {
				entries++
				bytes += int64(len(sh.vals[i]))
				if sh.keys[i] == "" {
					return fmt.Errorf("valid line (%d,%d) with empty key", set, w)
				}
				if want := hash(sh.keys[i]) / uint64(sh.nshards); sh.hashes[i] != want {
					return fmt.Errorf("line (%d,%d) stored hash %#x != key hash %#x",
						set, w, sh.hashes[i], want)
				}
			} else {
				if sh.keys[i] != "" || sh.vals[i] != nil || sh.hashes[i] != 0 {
					return fmt.Errorf("invalid line (%d,%d) kept key/value/hash", set, w)
				}
				if sh.prot != nil && sh.prot.Protected(set, w) {
					return fmt.Errorf("invalid line (%d,%d) still protected", set, w)
				}
				if sh.doomed != nil && sh.doomed[i] {
					return fmt.Errorf("invalid line (%d,%d) still doomed", set, w)
				}
			}
			if sh.prot != nil {
				if rpd := sh.prot.RPD(set, w); rpd < 0 || rpd > sh.prot.MaxRPD() {
					return fmt.Errorf("line (%d,%d) RPD %d outside [0, %d]", set, w, rpd, sh.prot.MaxRPD())
				}
			}
		}
	}
	if entries != sh.st.entries {
		return fmt.Errorf("entry count drifted: counted %d, tracked %d", entries, sh.st.entries)
	}
	if bytes != sh.bytes {
		return fmt.Errorf("byte accounting drifted: counted %d, tracked %d", bytes, sh.bytes)
	}
	if sh.maxBytes > 0 && bytes > sh.maxBytes {
		return fmt.Errorf("bytes %d exceed budget %d", bytes, sh.maxBytes)
	}
	if sh.st.evictUnprot+sh.st.evictForced != sh.st.evictions {
		return fmt.Errorf("eviction attribution drifted: %d + %d != %d",
			sh.st.evictUnprot, sh.st.evictForced, sh.st.evictions)
	}
	return nil
}
