package kvcache

import (
	"fmt"
	"sync"

	"pdp/internal/core"
	"pdp/internal/sampler"
)

// shard is one independently locked slice of the cache: a sets x ways
// bucket array with either PDP protection bookkeeping plus an RD sampler,
// or LRU stamps. All state below mu is guarded by it.
type shard struct {
	mu         sync.Mutex
	sets, ways int
	maxBytes   int64
	admitAll   bool

	keys  []string
	vals  [][]byte
	valid []bool

	// PDP mode.
	prot *core.Protection
	smp  *sampler.RDSampler

	// LRU mode.
	stamp uint64
	last  []uint64

	bytes int64
	st    shardStats
}

// shardStats are the per-shard counters folded into Stats.
type shardStats struct {
	gets, hits, puts, deletes  uint64
	inserts, evictions, denies uint64
	entries                    int
}

// putResult reports what one put did.
type putResult struct {
	inserted bool
	denied   bool
	evicted  int
}

func newShard(cfg *Config) *shard {
	sh := &shard{
		sets:     cfg.Sets,
		ways:     cfg.Ways,
		maxBytes: cfg.MaxBytes,
		admitAll: cfg.AdmitAll,
		keys:     make([]string, cfg.Sets*cfg.Ways),
		vals:     make([][]byte, cfg.Sets*cfg.Ways),
		valid:    make([]bool, cfg.Sets*cfg.Ways),
	}
	if cfg.Policy == PolicyPDP {
		sh.prot = core.NewProtection(cfg.Sets, cfg.Ways, cfg.DMax, cfg.NC)
		scfg := sampler.RealConfig(cfg.Sets, cfg.SC)
		scfg.DMax = cfg.DMax
		sh.smp = sampler.New(scfg)
	} else {
		sh.last = make([]uint64, cfg.Sets*cfg.Ways)
	}
	return sh
}

// setOf maps the in-shard hash to a set; the set count need not be a power
// of two.
func (sh *shard) setOf(h uint64) int { return int(h % uint64(sh.sets)) }

// samplerAddr renders the in-shard hash as the line-address the RD sampler
// hashes its 16-bit partial tags from (it discards the low 6 offset bits).
func samplerAddr(h uint64) uint64 { return h << 6 }

// observe runs the per-access PDP bookkeeping for one access to set: the
// S_d-stepped RPD decrement and the RD-sampler update. LRU shards keep
// their recency clock in touch/insert instead.
func (sh *shard) observe(set int, h uint64) {
	if sh.prot != nil {
		sh.prot.Tick(set)
		sh.smp.Access(set, samplerAddr(h))
	}
}

// find scans the set for key, returning its way or -1.
func (sh *shard) find(set int, key string) int {
	base := set * sh.ways
	for w := 0; w < sh.ways; w++ {
		if sh.valid[base+w] && sh.keys[base+w] == key {
			return w
		}
	}
	return -1
}

func (sh *shard) get(h uint64, key string, pd int) ([]byte, bool) {
	set := sh.setOf(h)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.st.gets++
	w := sh.find(set, key)
	if w < 0 {
		sh.observe(set, h)
		return nil, false
	}
	sh.st.hits++
	sh.touch(set, w, pd)
	sh.observe(set, h)
	return sh.vals[set*sh.ways+w], true
}

// touch promotes a hit line under the active policy.
func (sh *shard) touch(set, w, pd int) {
	if sh.prot != nil {
		sh.prot.Promote(set, w, pd)
	} else {
		sh.stamp++
		sh.last[set*sh.ways+w] = sh.stamp
	}
}

func (sh *shard) put(h uint64, key string, value []byte, pd int) putResult {
	set := sh.setOf(h)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.st.puts++
	var res putResult

	if w := sh.find(set, key); w >= 0 {
		// Update in place: resident keys are always writable.
		i := set*sh.ways + w
		sh.bytes += int64(len(value)) - int64(len(sh.vals[i]))
		sh.vals[i] = append([]byte(nil), value...)
		sh.touch(set, w, pd)
		sh.observe(set, h)
		return res
	}

	// From here on this is a fill (or a deny): the completion of a miss the
	// Get already observed. It must not tick the protection clock or feed
	// the sampler — a second observation per logical access would halve
	// every measured reuse distance and, worse, the fill's address would
	// match the miss's own FIFO entry at distance ~0, swamping the RDD with
	// a spurious near-zero spike that drags the computed PD down.
	w := sh.victimWay(set, &res)
	if w < 0 {
		sh.st.denies++
		res.denied = true
		return res
	}

	// Byte budget: evict further unprotected lines of this set while the
	// fill would overflow; deny when the budget still cannot be met (the
	// admission-control analogue of bypass for oversized working sets).
	if sh.maxBytes > 0 {
		for sh.bytes+int64(len(value)) > sh.maxBytes {
			v := sh.budgetVictim(set, w)
			if v < 0 {
				sh.st.denies++
				res.denied = true
				return res
			}
			sh.evict(set, v, &res)
		}
	}

	i := set*sh.ways + w
	sh.keys[i] = key
	sh.vals[i] = append([]byte(nil), value...)
	sh.valid[i] = true
	sh.bytes += int64(len(value))
	sh.st.entries++
	sh.st.inserts++
	res.inserted = true
	if sh.prot != nil {
		sh.prot.Insert(set, w, pd)
	} else {
		sh.stamp++
		sh.last[i] = sh.stamp
	}
	return res
}

// victimWay returns the way to fill, evicting its current resident if
// needed, or -1 when admission is denied (PDP with every line protected
// and AdmitAll off).
func (sh *shard) victimWay(set int, res *putResult) int {
	base := set * sh.ways
	for w := 0; w < sh.ways; w++ {
		if !sh.valid[base+w] {
			return w
		}
	}
	if sh.prot == nil {
		w := sh.lruVictim(set)
		sh.evict(set, w, res)
		return w
	}
	if w, ok := sh.prot.Unprotected(set); ok {
		sh.evict(set, w, res)
		return w
	}
	if sh.admitAll {
		w := sh.prot.InclusiveVictim(set)
		sh.evict(set, w, res)
		return w
	}
	return -1
}

// budgetVictim picks an additional victim to free bytes: any unprotected
// valid line (PDP) or the LRU line (LRU), excluding the way already chosen
// for the fill; -1 when none qualifies.
func (sh *shard) budgetVictim(set, exclude int) int {
	base := set * sh.ways
	if sh.prot == nil {
		best, bestStamp := -1, uint64(0)
		for w := 0; w < sh.ways; w++ {
			if w == exclude || !sh.valid[base+w] {
				continue
			}
			if best < 0 || sh.last[base+w] < bestStamp {
				best, bestStamp = w, sh.last[base+w]
			}
		}
		return best
	}
	for w := 0; w < sh.ways; w++ {
		if w != exclude && sh.valid[base+w] && !sh.prot.Protected(set, w) {
			return w
		}
	}
	return -1
}

// lruVictim returns the least recently used valid way.
func (sh *shard) lruVictim(set int) int {
	base := set * sh.ways
	best, bestStamp := 0, sh.last[base]
	for w := 1; w < sh.ways; w++ {
		if sh.last[base+w] < bestStamp {
			best, bestStamp = w, sh.last[base+w]
		}
	}
	return best
}

// evict drops the resident line in (set, w).
func (sh *shard) evict(set, w int, res *putResult) {
	i := set*sh.ways + w
	sh.bytes -= int64(len(sh.vals[i]))
	sh.keys[i] = ""
	sh.vals[i] = nil
	sh.valid[i] = false
	if sh.prot != nil {
		sh.prot.Clear(set, w)
	}
	sh.st.entries--
	sh.st.evictions++
	res.evicted++
}

func (sh *shard) delete(h uint64, key string) bool {
	set := sh.setOf(h)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.st.deletes++
	w := sh.find(set, key)
	if w >= 0 {
		i := set*sh.ways + w
		sh.bytes -= int64(len(sh.vals[i]))
		sh.keys[i] = ""
		sh.vals[i] = nil
		sh.valid[i] = false
		if sh.prot != nil {
			sh.prot.Clear(set, w)
		}
		sh.st.entries--
	}
	sh.observe(set, h)
	return w >= 0
}

func (sh *shard) addStats(st *Stats) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	st.Gets += sh.st.gets
	st.Hits += sh.st.hits
	st.Misses += sh.st.gets - sh.st.hits
	st.Puts += sh.st.puts
	st.Deletes += sh.st.deletes
	st.Inserts += sh.st.inserts
	st.Evictions += sh.st.evictions
	st.Denies += sh.st.denies
	st.Entries += sh.st.entries
	st.Bytes += sh.bytes
	if sh.smp != nil {
		st.SamplerAccesses += sh.smp.Stats.Accesses
		st.SamplerHits += sh.smp.Stats.Hits
	}
}

func (sh *shard) checkInvariants() error {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	var entries int
	var bytes int64
	for set := 0; set < sh.sets; set++ {
		for w := 0; w < sh.ways; w++ {
			i := set*sh.ways + w
			if sh.valid[i] {
				entries++
				bytes += int64(len(sh.vals[i]))
				if sh.keys[i] == "" {
					return fmt.Errorf("valid line (%d,%d) with empty key", set, w)
				}
			} else {
				if sh.keys[i] != "" || sh.vals[i] != nil {
					return fmt.Errorf("invalid line (%d,%d) kept key/value", set, w)
				}
				if sh.prot != nil && sh.prot.Protected(set, w) {
					return fmt.Errorf("invalid line (%d,%d) still protected", set, w)
				}
			}
			if sh.prot != nil {
				if rpd := sh.prot.RPD(set, w); rpd < 0 || rpd > sh.prot.MaxRPD() {
					return fmt.Errorf("line (%d,%d) RPD %d outside [0, %d]", set, w, rpd, sh.prot.MaxRPD())
				}
			}
		}
	}
	if entries != sh.st.entries {
		return fmt.Errorf("entry count drifted: counted %d, tracked %d", entries, sh.st.entries)
	}
	if bytes != sh.bytes {
		return fmt.Errorf("byte accounting drifted: counted %d, tracked %d", bytes, sh.bytes)
	}
	if sh.maxBytes > 0 && bytes > sh.maxBytes {
		return fmt.Errorf("bytes %d exceed budget %d", bytes, sh.maxBytes)
	}
	return nil
}
