package kvcache

import (
	"fmt"
	"sort"
)

// SnapshotVersion is the current cache-snapshot format version.
const SnapshotVersion = 1

// SnapshotGeometry pins the configuration a snapshot was captured under.
// A restore refuses a snapshot whose geometry differs from the running
// cache's: key routing, set indexing and RPD quantization all depend on
// it, so restoring across geometries would scatter state incoherently.
type SnapshotGeometry struct {
	Policy Policy `json:"policy"`
	Shards int    `json:"shards"`
	Sets   int    `json:"sets"`
	Ways   int    `json:"ways"`
	DMax   int    `json:"d_max"`
	NC     int    `json:"n_c"`
	SC     int    `json:"s_c"`
}

// SnapshotEntry is one resident line: its key, value, and (PDP mode) the
// remaining protecting distance and reuse bit at capture time.
type SnapshotEntry struct {
	Key   string `json:"k"`
	Value []byte `json:"v"`
	// RPD is the line's remaining protecting distance in accesses
	// (step-quantized, 0 = unprotected); Reused its reuse bit.
	RPD    int  `json:"rpd,omitempty"`
	Reused bool `json:"reused,omitempty"`
}

// SnapshotShard is one shard's captured state.
type SnapshotShard struct {
	// Entries are the shard's resident lines in shadow-LRU recency order,
	// least recently used first, so replaying them in order reproduces
	// the recency ordering exactly.
	Entries []SnapshotEntry `json:"entries"`
	// Counts and Total are the shard's RDD counter array (N_i, N_t) —
	// the reuse evidence the first post-restart recompute works from
	// (PDP mode only).
	Counts []uint32 `json:"counts,omitempty"`
	Total  uint64   `json:"total,omitempty"`
}

// Snapshot is a point-in-time capture of the cache's warm state: the
// resident entries with their protection bookkeeping, each shard's RDD
// evidence, and the current protecting distance. It is everything a
// restarted process needs to serve at the pre-crash hit rate instead of
// re-warming from empty.
type Snapshot struct {
	Version  int              `json:"version"`
	Geometry SnapshotGeometry `json:"geometry"`
	PD       int              `json:"pd"`
	Accesses uint64           `json:"accesses"`
	Shards   []SnapshotShard  `json:"shards"`
}

// geometry returns the running cache's snapshot geometry.
func (c *Cache) geometry() SnapshotGeometry {
	return SnapshotGeometry{
		Policy: c.cfg.Policy,
		Shards: c.cfg.Shards,
		Sets:   c.cfg.Sets,
		Ways:   c.cfg.Ways,
		DMax:   c.cfg.DMax,
		NC:     c.cfg.NC,
		SC:     c.cfg.SC,
	}
}

// Snapshot captures the cache's warm state. It takes each shard lock in
// turn (never two at once), so the capture is per-shard consistent and
// serving continues concurrently; cross-shard skew is bounded by the
// capture's own duration and harmless — every line is independently
// valid.
func (c *Cache) Snapshot() *Snapshot {
	s := &Snapshot{
		Version:  SnapshotVersion,
		Geometry: c.geometry(),
		PD:       c.PD(),
		Accesses: c.accs.Load(),
		Shards:   make([]SnapshotShard, len(c.shards)),
	}
	for i, sh := range c.shards {
		s.Shards[i] = sh.snapshot()
	}
	return s
}

// Restore replays a snapshot into the cache, which should be freshly
// built and empty. It validates the format version and geometry (a
// mismatch returns an error and restores nothing — the caller logs it
// and cold-starts), then reinserts each entry through the normal routing
// path, restoring per-line protection state, per-shard RDD evidence, the
// protecting distance, and the access clock. Entries that no longer fit
// — a foreign key, a full set, a blown byte budget, all symptoms of a
// hand-edited or corrupt snapshot — are skipped, not fatal. It returns
// the number of entries restored.
func (c *Cache) Restore(s *Snapshot) (int, error) {
	if s == nil {
		return 0, fmt.Errorf("kvcache: nil snapshot")
	}
	if s.Version != SnapshotVersion {
		return 0, fmt.Errorf("kvcache: unsupported snapshot version %d", s.Version)
	}
	if got, want := s.Geometry, c.geometry(); got != want {
		return 0, fmt.Errorf("kvcache: snapshot geometry %+v does not match cache %+v", got, want)
	}
	if len(s.Shards) != len(c.shards) {
		return 0, fmt.Errorf("kvcache: snapshot has %d shards, cache %d", len(s.Shards), len(c.shards))
	}
	restored := 0
	for i, ss := range s.Shards {
		restored += c.shards[i].restore(ss, len(c.shards))
	}
	if s.PD >= 1 && s.PD <= c.cfg.DMax {
		c.pd.Store(int64(s.PD))
		c.gPD.Set(float64(s.PD))
	}
	c.accs.Store(s.Accesses)
	return restored, nil
}

// snapshot captures one shard's resident lines in shadow-LRU recency
// order plus its RDD evidence, under the shard lock.
func (sh *shard) snapshot() SnapshotShard {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	type line struct {
		stamp uint64
		e     SnapshotEntry
	}
	lines := make([]line, 0, sh.st.entries)
	for set := 0; set < sh.sets; set++ {
		for w := 0; w < sh.ways; w++ {
			i := set*sh.ways + w
			if !sh.valid[i] {
				continue
			}
			e := SnapshotEntry{
				Key:   sh.keys[i],
				Value: append([]byte(nil), sh.vals[i]...),
			}
			if sh.prot != nil {
				e.RPD = sh.prot.RPD(set, w)
				e.Reused = sh.prot.Reused(set, w)
			}
			lines = append(lines, line{sh.last[i], e})
		}
	}
	sort.Slice(lines, func(a, b int) bool { return lines[a].stamp < lines[b].stamp })
	ss := SnapshotShard{Entries: make([]SnapshotEntry, len(lines))}
	for i, l := range lines {
		ss.Entries[i] = l.e
	}
	if sh.smp != nil {
		arr := sh.smp.Array()
		ss.Counts = arr.Counts()
		ss.Total = arr.Total()
	}
	return ss
}

// restore replays one shard's snapshot under the shard lock, returning
// the number of entries reinserted. Entries are re-routed from their key
// (the snapshot's shard assignment is not trusted) and replayed in saved
// order so the recency stamps rebuild the captured LRU ordering.
func (sh *shard) restore(ss SnapshotShard, nshards int) int {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	restored := 0
	for _, e := range ss.Entries {
		h := hash(e.Key)
		if int(h%uint64(nshards)) != sh.id {
			continue
		}
		hh := h / uint64(nshards)
		set := sh.setOf(hh)
		if sh.find(set, hh, e.Key) >= 0 {
			continue
		}
		if sh.maxBytes > 0 && sh.bytes+int64(len(e.Value)) > sh.maxBytes {
			continue
		}
		base := set * sh.ways
		w := -1
		for cand := 0; cand < sh.ways; cand++ {
			if !sh.valid[base+cand] {
				w = cand
				break
			}
		}
		if w < 0 {
			continue
		}
		i := base + w
		sh.keys[i] = e.Key
		sh.hashes[i] = hh
		sh.vals[i] = append([]byte(nil), e.Value...)
		sh.valid[i] = true
		sh.bytes += int64(len(e.Value))
		sh.st.entries++
		sh.stamp++
		sh.last[i] = sh.stamp
		if sh.prot != nil && e.RPD > 0 {
			// Promote vs Insert re-derive the same RPD steps; the choice
			// only restores the reuse bit.
			if e.Reused {
				sh.prot.Promote(set, w, e.RPD)
			} else {
				sh.prot.Insert(set, w, e.RPD)
			}
		}
		restored++
	}
	if sh.smp != nil && ss.Counts != nil {
		sh.smp.Array().SetCounts(ss.Counts, ss.Total)
	}
	return restored
}
