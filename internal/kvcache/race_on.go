//go:build race

package kvcache

// raceEnabled gates perf-budget assertions that are meaningless under
// the race detector's instrumentation overhead.
const raceEnabled = true
