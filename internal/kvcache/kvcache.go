// Package kvcache is the serving-layer cache of the repository: a sharded,
// concurrency-safe in-memory key-value store whose eviction is driven by
// the PDP paper's protecting-distance machinery running *online*. Each
// shard maps keys into a set-associative bucket array with per-line RPD
// bookkeeping (core.Protection), feeds an RD sampler with its set-access
// stream, and the cache periodically recomputes the protecting distance
// from the merged reuse-distance distribution with the paper's E(d_p)
// model (core.FindPD) — so the admission/eviction policy adapts to the
// live workload exactly as the simulated policy adapts to a trace. An LRU
// mode with the identical bucket layout serves as the serving baseline.
//
// Unlike the simulator's cache.Cache, set counts need not be powers of two
// and values are byte slices of arbitrary size counted against a per-shard
// byte budget.
package kvcache

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"pdp/internal/core"
	"pdp/internal/sampler"
	"pdp/internal/telemetry"
)

// Policy selects the eviction policy of a Cache.
type Policy string

// Supported policies.
const (
	// PolicyPDP protects lines for the dynamically recomputed protecting
	// distance; unprotected-first victim selection, admission deny when a
	// set is fully protected (unless AdmitAll).
	PolicyPDP Policy = "pdp"
	// PolicyLRU evicts the least recently used line of the set and always
	// admits — the serving baseline.
	PolicyLRU Policy = "lru"
)

// Config parameterizes a Cache.
type Config struct {
	// Policy is PolicyPDP (default) or PolicyLRU.
	Policy Policy
	// Shards is the number of independently locked shards (default 16).
	Shards int
	// Sets and Ways give each shard's bucket geometry (defaults 64x8).
	// Sets need not be a power of two.
	Sets, Ways int
	// MaxBytes bounds the value bytes per shard (0 = unbounded). When a
	// fill would exceed it, unprotected victims are evicted from the
	// incoming key's set first; if the budget still cannot be met the fill
	// is denied.
	MaxBytes int64

	// DMax, NC, SC, DE are the PDP hardware parameters (paper Sec. 3);
	// defaults 256, 8, 4, Ways.
	DMax, NC, SC, DE int
	// DefaultPD seeds the policy before the first recomputation (default
	// Ways, LRU-like warm-up).
	DefaultPD int
	// RecomputeEvery recomputes the PD inline after that many cache
	// accesses (default 64K; 0 disables the count trigger — use the
	// Adapter's wall-clock trigger instead).
	RecomputeEvery uint64
	// EpochDecayShift right-shifts the merged RDD counters at each
	// recompute (default 1, exponential forgetting; see
	// sampler.CounterArray.Decay).
	EpochDecayShift uint
	// MinSamples is the least measured-reuse mass (sum of the merged RDD's
	// N_i counters) a recomputation needs before it moves the PD (default
	// 64). The
	// sampler's 16-bit partial tags occasionally collide, so a handful of
	// "reuses" in an otherwise reuse-free stream is noise, not evidence.
	MinSamples uint64
	// AdmitAll disables admission deny: when a set is fully protected the
	// inclusive victim rules evict instead (the PDP-NB analogue).
	AdmitAll bool
	// DecisionLog bounds the in-memory ring of attributed policy
	// decisions served at /debug/decisions (0 = DefaultDecisionLog;
	// negative disables the log entirely).
	DecisionLog int
	// Solver computes the PD from the merged counter array; nil means
	// core.SoftwareSolver.
	Solver core.PDSolver

	// RearmAfter is the number of consecutive clean recomputations a
	// degraded shard needs before its breaker re-arms from shadow-LRU
	// fallback back to PDP (default 3).
	RearmAfter int
	// RecomputeTimeout bounds one PD recomputation's wall-clock time; a
	// recompute that stalls past it trips every shard into degraded mode
	// (0 disables the watchdog and runs recomputes inline).
	RecomputeTimeout time.Duration
	// LockHoldWarn is the shard-lock hold-time watchdog threshold: a
	// sampled cache operation holding a shard lock longer than this is
	// counted and journaled (0 disables the watchdog).
	LockHoldWarn time.Duration
	// HoldSampleEvery is the watchdog sampling period: 1 in this many
	// operations per shard is timed against LockHoldWarn (default 64;
	// 1 restores the always-on watchdog). The first operation on each
	// shard is always sampled, so even a single timed call can trip the
	// watchdog in tests. Sampling keeps the two time.Now calls off the
	// common hot path while a persistent stall (which afflicts every
	// operation) is still caught within one period.
	HoldSampleEvery int
	// Chaos, when non-nil, receives the serving-path fault-injection
	// callbacks (see the Chaos interface). Production configs leave it
	// nil; chaos campaigns install a seeded servefault.Injector.
	Chaos Chaos

	// Registry and Journal attach telemetry (both optional): operation
	// counters and PD/occupancy gauges in the registry, one
	// telemetry.RecomputeRecord per PD recomputation in the journal.
	Registry *telemetry.Registry
	Journal  *telemetry.Journal
}

func (c *Config) setDefaults() error {
	if c.Policy == "" {
		c.Policy = PolicyPDP
	}
	if c.Policy != PolicyPDP && c.Policy != PolicyLRU {
		return fmt.Errorf("kvcache: unknown policy %q", c.Policy)
	}
	if c.Shards == 0 {
		c.Shards = 16
	}
	if c.Sets == 0 {
		c.Sets = 64
	}
	if c.Ways == 0 {
		c.Ways = 8
	}
	if c.Shards < 0 || c.Sets < 0 || c.Ways < 0 || c.MaxBytes < 0 {
		return fmt.Errorf("kvcache: negative geometry %d/%d/%d/%d", c.Shards, c.Sets, c.Ways, c.MaxBytes)
	}
	if c.DMax == 0 {
		c.DMax = 256
	}
	if c.NC == 0 {
		c.NC = 8
	}
	if c.SC == 0 {
		c.SC = 4
	}
	if c.DE == 0 {
		c.DE = c.Ways
	}
	if c.DefaultPD == 0 {
		c.DefaultPD = c.Ways
	}
	if c.RecomputeEvery == 0 {
		c.RecomputeEvery = 64 * 1024
	}
	if c.EpochDecayShift == 0 {
		c.EpochDecayShift = 1
	}
	if c.MinSamples == 0 {
		c.MinSamples = 64
	}
	if c.Solver == nil {
		c.Solver = core.SoftwareSolver{}
	}
	if c.RearmAfter == 0 {
		c.RearmAfter = 3
	}
	if c.RearmAfter < 0 {
		return fmt.Errorf("kvcache: RearmAfter must be positive, got %d", c.RearmAfter)
	}
	if c.RecomputeTimeout < 0 {
		return fmt.Errorf("kvcache: RecomputeTimeout must be >= 0, got %v", c.RecomputeTimeout)
	}
	if c.LockHoldWarn < 0 {
		return fmt.Errorf("kvcache: LockHoldWarn must be >= 0, got %v", c.LockHoldWarn)
	}
	if c.HoldSampleEvery == 0 {
		c.HoldSampleEvery = 64
	}
	if c.HoldSampleEvery < 0 {
		return fmt.Errorf("kvcache: HoldSampleEvery must be positive, got %d", c.HoldSampleEvery)
	}
	if c.DMax < 1 || c.DMax%c.SC != 0 {
		return fmt.Errorf("kvcache: DMax=%d not a positive multiple of SC=%d", c.DMax, c.SC)
	}
	if c.NC < 1 || c.NC > 16 {
		return fmt.Errorf("kvcache: NC=%d out of range", c.NC)
	}
	return nil
}

// Stats is a point-in-time aggregate over all shards. Counter fields are
// cumulative since construction.
type Stats struct {
	Gets    uint64 `json:"gets"`
	Hits    uint64 `json:"hits"`
	Misses  uint64 `json:"misses"`
	Puts    uint64 `json:"puts"`
	Deletes uint64 `json:"deletes"`
	// Inserts counts fills (Put of an absent key that was admitted).
	Inserts   uint64 `json:"inserts"`
	Evictions uint64 `json:"evictions"`
	// EvictionsUnprotected/Forced split Evictions by attribution: victims
	// whose protection had expired vs still-protected lines forced out by
	// AdmitAll's inclusive victim selection.
	EvictionsUnprotected uint64 `json:"evictions_unprotected"`
	EvictionsForced      uint64 `json:"evictions_forced"`
	// Denies counts fills refused by admission control (fully protected
	// set, or byte budget not coverable by unprotected victims).
	Denies uint64 `json:"denies"`
	// Saves counts protection saves: hits on lines a same-geometry shadow
	// LRU would already have evicted (see DecisionSave).
	Saves uint64 `json:"protection_saves"`
	// Entries and Bytes describe current occupancy.
	Entries    int    `json:"entries"`
	Bytes      int64  `json:"bytes"`
	PD         int    `json:"pd"`
	Recomputes uint64 `json:"recomputes"`
	// SamplerAccesses/Hits are cumulative RD-sampler activity (PDP only).
	SamplerAccesses uint64 `json:"sampler_accesses,omitempty"`
	SamplerHits     uint64 `json:"sampler_hits,omitempty"`
	// DegradedShards is the number of shards currently serving in
	// shadow-LRU fallback; DegradedOps counts operations served while
	// degraded. BreakerTrips/Rearms are cumulative transition counts.
	DegradedShards int    `json:"degraded_shards"`
	DegradedOps    uint64 `json:"degraded_ops,omitempty"`
	BreakerTrips   uint64 `json:"breaker_trips,omitempty"`
	BreakerRearms  uint64 `json:"breaker_rearms,omitempty"`
	// LockHoldWarns counts cache operations that held a shard lock past
	// the configured watchdog threshold.
	LockHoldWarns uint64 `json:"lock_hold_warns,omitempty"`
}

// HitRate returns Hits/Gets (0 when idle).
func (s Stats) HitRate() float64 {
	if s.Gets == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Gets)
}

// Cache is the sharded key-value cache. All methods are goroutine-safe.
type Cache struct {
	cfg    Config
	shards []*shard
	dlog   *DecisionLog

	pd   atomic.Int64 // current protecting distance (accesses)
	accs atomic.Uint64

	// recompute serialization + cross-epoch sampler stats accumulation.
	rmu        sync.Mutex
	recomputes atomic.Uint64
	seq        uint64
	smpAccs    uint64 // sampler accesses from closed epochs
	smpHits    uint64

	// breaker state: bmu serializes trip/re-arm transitions and guards the
	// per-shard clean-recompute streaks; degCount mirrors the number of
	// degraded shards for lock-free reads on /healthz and /stats.
	bmu      sync.Mutex
	streaks  []int
	degCount atomic.Int64
	trips    atomic.Uint64
	rearms   atomic.Uint64

	// telemetry handles (nil-tolerant).
	mGets, mHits, mMisses, mPuts, mDeletes *telemetry.Counter
	mInserts, mEvictions, mDenies          *telemetry.Counter
	mTrips, mRearms, mLockWarns            *telemetry.Counter
	gPD, gEntries, gBytes, gHitRate        *telemetry.Gauge
	gDegraded                              *telemetry.Gauge
}

// New builds a Cache; it returns an error on invalid configuration (the
// serving layer validates flags, it does not panic).
func New(cfg Config) (*Cache, error) {
	if err := cfg.setDefaults(); err != nil {
		return nil, err
	}
	c := &Cache{cfg: cfg}
	c.pd.Store(int64(cfg.DefaultPD))
	if cfg.DecisionLog >= 0 {
		c.dlog = NewDecisionLog(cfg.DecisionLog)
	}
	c.streaks = make([]int, cfg.Shards)
	reg := cfg.Registry
	c.mLockWarns = reg.Counter("kv.lock_hold_warns")
	c.shards = make([]*shard, cfg.Shards)
	for i := range c.shards {
		c.shards[i] = newShard(&cfg, i, c.dlog, c.mLockWarns)
	}
	c.mGets = reg.Counter("kv.gets")
	c.mHits = reg.Counter("kv.hits")
	c.mMisses = reg.Counter("kv.misses")
	c.mPuts = reg.Counter("kv.puts")
	c.mDeletes = reg.Counter("kv.deletes")
	c.mInserts = reg.Counter("kv.inserts")
	c.mEvictions = reg.Counter("kv.evictions")
	c.mDenies = reg.Counter("kv.denies")
	c.mTrips = reg.Counter("kv.breaker_trips")
	c.mRearms = reg.Counter("kv.breaker_rearms")
	c.gDegraded = reg.Gauge("kv.degraded_shards")
	c.gPD = reg.Gauge("kv.pd")
	c.gEntries = reg.Gauge("kv.entries")
	c.gBytes = reg.Gauge("kv.bytes")
	c.gHitRate = reg.Gauge("kv.hit_rate")
	c.gPD.Set(float64(cfg.DefaultPD))
	return c, nil
}

// Config returns the configuration with defaults applied.
func (c *Cache) Config() Config { return c.cfg }

// PD returns the current protecting distance (Ways-seeded before the
// first recomputation; constant in LRU mode).
func (c *Cache) PD() int { return int(c.pd.Load()) }

// Accesses returns the cache-lifetime operation count.
func (c *Cache) Accesses() uint64 { return c.accs.Load() }

// Recomputes returns the number of PD recomputations performed.
func (c *Cache) Recomputes() uint64 { return c.recomputes.Load() }

// AutoShards picks a shard count scaled to GOMAXPROCS for serving
// configs: the next power of two at or above 4x the processor count,
// clamped to [8, 256]. Oversharding relative to cores is deliberate —
// shards are cheap (a mutex and slice headers) and the 4x factor keeps
// the collision probability of two running goroutines on one lock low
// even under a skewed key distribution.
func AutoShards() int {
	want := 4 * runtime.GOMAXPROCS(0)
	n := 8
	for n < want && n < 256 {
		n <<= 1
	}
	return n
}

// hash is FNV-1a over the key.
func hash(key string) uint64 {
	const offset, prime = 14695981039346656037, 1099511628211
	h := uint64(offset)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime
	}
	return h
}

// route locates the shard and its in-shard hash for a key.
func (c *Cache) route(key string) (*shard, uint64) {
	h := hash(key)
	return c.shards[h%uint64(len(c.shards))], h / uint64(len(c.shards))
}

// Get returns a copy of the value stored for key. The returned slice is
// owned by the caller (the store's internal buffers are recycled, so
// aliasing them out would race with later writes); callers on the hot
// path that want to amortize the copy's allocation use GetAppend.
func (c *Cache) Get(key string) ([]byte, bool) {
	val, ok := c.GetAppend(key, nil)
	if !ok {
		return nil, false
	}
	return val, true
}

// GetAppend appends the value stored for key to dst and returns the
// extended slice — the allocation-free variant of Get for callers that
// reuse a buffer across requests. On a miss dst is returned unchanged.
// The copy happens under the shard lock, so the result never aliases
// store memory.
func (c *Cache) GetAppend(key string, dst []byte) ([]byte, bool) {
	sh, h := c.route(key)
	val, ok := sh.get(h, key, c.PD(), dst)
	c.mGets.Inc()
	if ok {
		c.mHits.Inc()
	} else {
		c.mMisses.Inc()
	}
	c.tick()
	return val, ok
}

// Put stores value under key, copying it. The copy happens before the
// shard lock is taken, into a buffer recycled from the shard's freelist,
// so the critical section never pays a copy-in or an allocation. It
// reports whether the value was admitted (an update of a resident key
// always is).
func (c *Cache) Put(key string, value []byte) bool {
	sh, h := c.route(key)
	buf := sh.allocBuf(len(value))
	copy(buf, value)
	res := sh.put(h, key, buf, c.PD())
	c.mPuts.Inc()
	c.mEvictions.Add(uint64(res.evicted))
	switch {
	case res.denied:
		c.mDenies.Inc()
	case res.inserted:
		c.mInserts.Inc()
	}
	c.tick()
	return !res.denied
}

// Delete removes key, reporting whether it was resident.
func (c *Cache) Delete(key string) bool {
	sh, h := c.route(key)
	ok := sh.delete(h, key)
	c.mDeletes.Inc()
	c.tick()
	return ok
}

// tick advances global access time and fires the count-driven PD
// recomputation on epoch boundaries.
func (c *Cache) tick() {
	n := c.accs.Add(1)
	if c.cfg.Policy == PolicyPDP && c.cfg.RecomputeEvery > 0 && n%c.cfg.RecomputeEvery == 0 {
		c.Recompute()
	}
}

// tickN books n accesses at once — the batch path's amortized tick. It
// fires the count-driven recomputation when the batch crossed an epoch
// boundary (at most one recompute per batch: a batch larger than an epoch
// still folds into the current merge, which sees all its sampler
// evidence anyway). Must not be called with any shard lock held —
// Recompute takes every shard lock.
func (c *Cache) tickN(n int) {
	if n <= 0 {
		return
	}
	now := c.accs.Add(uint64(n))
	if c.cfg.Policy == PolicyPDP && c.cfg.RecomputeEvery > 0 &&
		now/c.cfg.RecomputeEvery != (now-uint64(n))/c.cfg.RecomputeEvery {
		c.Recompute()
	}
}

// Stats aggregates shard counters; it takes each shard lock briefly.
func (c *Cache) Stats() Stats {
	var st Stats
	for _, sh := range c.shards {
		sh.addStats(&st)
	}
	st.PD = c.PD()
	st.Recomputes = c.recomputes.Load()
	st.DegradedShards = c.DegradedShards()
	st.BreakerTrips = c.trips.Load()
	st.BreakerRearms = c.rearms.Load()
	c.rmu.Lock()
	st.SamplerAccesses += c.smpAccs
	st.SamplerHits += c.smpHits
	c.rmu.Unlock()
	c.gEntries.Set(float64(st.Entries))
	c.gBytes.Set(float64(st.Bytes))
	c.gHitRate.Set(st.HitRate())
	return st
}

// Recompute runs one supervised PD recomputation: the merge + E(d_p)
// search under panic recovery, the optional stall watchdog
// (Config.RecomputeTimeout), and invariant validation (PD in [1, d_max],
// internally consistent RDD evidence). A failed recomputation never
// propagates — it trips the degraded-mode breaker and keeps the previous
// PD — and each clean one advances degraded shards toward re-arming. It
// reports the old and new PD and whether the RDD held enough reuse to
// choose one (the previous PD is kept otherwise). LRU caches return
// (0, 0, false).
func (c *Cache) Recompute() (oldPD, newPD int, ok bool) {
	if c.cfg.Policy != PolicyPDP {
		return 0, 0, false
	}
	out := c.superviseRecompute()
	return out.old, out.pd, out.moved
}

// recomputeLocked is the recompute body: merge every shard's RDD, run the
// E(d_p) search, install the resulting PD, and epoch-decay the per-shard
// counter arrays so the next recomputation sees an exponentially weighted
// recent window. It reports invariant violations and corrupt shards
// upward instead of acting on them; superviseRecompute owns the breaker.
func (c *Cache) recomputeLocked() recomputeOutcome {
	c.rmu.Lock()
	defer c.rmu.Unlock()

	if c.cfg.Chaos != nil {
		// The chaos hook may stall (tripping the watchdog in
		// superviseRecompute) or panic (unwinding through the deferred
		// unlock into the recovery there).
		c.cfg.Chaos.Recompute(c.recomputes.Load() + 1)
	}

	var out recomputeOutcome
	merged := sampler.NewCounterArray(c.cfg.DMax, c.cfg.SC)
	shardSamples := make([]uint64, len(c.shards))
	for i, sh := range c.shards {
		sh.mu.Lock()
		arr := sh.smp.Array()
		if arr.Reuses() > arr.Total() {
			// More measured reuses than accesses: the counter array was
			// corrupted (an N_i flipped high). Its evidence is poison —
			// reset it and report the shard for a breaker trip.
			arr.Reset()
			out.corrupt = append(out.corrupt, i)
		} else {
			shardSamples[i] = arr.Reuses()
			merged.Merge(arr)
			arr.Decay(c.cfg.EpochDecayShift)
		}
		// Close the epoch's sampler stats into the cumulative totals so
		// Stats always reports lifetime activity while the sampler's own
		// window stays recent (long-running services must not accumulate
		// unbounded cumulative-only counters).
		c.smpAccs += sh.smp.Stats.Accesses
		c.smpHits += sh.smp.Stats.Hits
		sh.smp.ResetStats()
		sh.mu.Unlock()
	}

	old := c.PD()
	out.old, out.pd = old, old
	pd := old
	if merged.Reuses() > merged.Total() {
		out.violation = "rdd_inconsistent"
		return out
	}
	enough := merged.Reuses() >= c.cfg.MinSamples
	if enough {
		if found := c.cfg.Solver.FindPD(merged, c.cfg.DE); found != 0 {
			if found < 1 || found > c.cfg.DMax {
				// The solver's answer violates the paper's own invariant
				// (PD in [1, d_max]); installing it would corrupt every
				// shard's protection bookkeeping.
				out.violation = "pd_out_of_range"
				return out
			}
			pd, out.moved = found, true
		}
	}
	if pd < 1 {
		pd = 1
	}
	if pd > c.cfg.DMax {
		pd = c.cfg.DMax
	}
	out.pd = pd
	c.pd.Store(int64(pd))
	c.gPD.Set(float64(pd))
	c.recomputes.Add(1)
	c.seq++
	if c.cfg.Journal != nil {
		// pd_move fires on every recompute — the attribution record an
		// operator greps first: did the PD move, on how much evidence,
		// and from which shards. Its E-curve summary comes from the
		// software model, which matches the decision exactly under the
		// default solver.
		bestD, bestE := core.FindPD(merged, c.cfg.DE)
		c.cfg.Journal.Append(telemetry.PDMoveRecord{
			Kind:         telemetry.KindPDMove,
			Access:       c.accs.Load(),
			Seq:          c.seq,
			OldPD:        old,
			NewPD:        pd,
			Moved:        out.moved,
			Samples:      merged.Reuses(),
			Total:        merged.Total(),
			ShardSamples: shardSamples,
			BestE:        bestE,
			BestD:        bestD,
			CurvePoints:  merged.K(),
		})
		if enough {
			c.cfg.Journal.Append(telemetry.RecomputeRecord{
				Kind:     telemetry.KindPDRecompute,
				Access:   c.accs.Load(),
				Policy:   "kvcache-pdp",
				Seq:      c.seq,
				OldPD:    old,
				NewPD:    pd,
				RDD:      merged.Counts(),
				RDDTotal: merged.Total(),
				Frozen:   merged.Frozen(),
				E:        core.EValues(merged, c.cfg.DE),
			})
		}
	}
	return out
}

// ShardStats is one shard's attribution view: traffic, occupancy and the
// decision counters, for the per-shard skew section of /stats.
type ShardStats struct {
	Shard                int    `json:"shard"`
	Gets                 uint64 `json:"gets"`
	Hits                 uint64 `json:"hits"`
	Entries              int    `json:"entries"`
	Bytes                int64  `json:"bytes"`
	Evictions            uint64 `json:"evictions"`
	EvictionsUnprotected uint64 `json:"evictions_unprotected"`
	EvictionsForced      uint64 `json:"evictions_forced"`
	Denies               uint64 `json:"denies"`
	Saves                uint64 `json:"protection_saves"`
}

// HitRate returns Hits/Gets (0 when idle).
func (s ShardStats) HitRate() float64 {
	if s.Gets == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Gets)
}

// ShardStats returns every shard's view, indexed by shard id. Each shard
// lock is taken briefly in turn, so the slices of different shards are
// not one global atomic snapshot (the same contract as Stats).
func (c *Cache) ShardStats() []ShardStats {
	out := make([]ShardStats, len(c.shards))
	for i, sh := range c.shards {
		out[i] = sh.stats()
	}
	return out
}

// Decisions returns the cache's decision log (nil when disabled via
// Config.DecisionLog < 0).
func (c *Cache) Decisions() *DecisionLog { return c.dlog }

// RDDView is a point-in-time copy of the merged online reuse-distance
// distribution — the paper's key observable, exported raw so /stats can
// show what the next recompute will decide from.
type RDDView struct {
	// Counts[i] is N_i for the distance bucket ending at (i+1)*SC.
	Counts []uint32 `json:"counts"`
	Total  uint64   `json:"total"`
	Reuses uint64   `json:"reuses"`
	SC     int      `json:"sc"`
	DMax   int      `json:"dmax"`
}

// RDDSnapshot merges every shard's current counter array without decaying
// or otherwise disturbing them. LRU caches return a zero view (no sampler
// runs).
func (c *Cache) RDDSnapshot() RDDView {
	if c.cfg.Policy != PolicyPDP {
		return RDDView{}
	}
	merged := sampler.NewCounterArray(c.cfg.DMax, c.cfg.SC)
	for _, sh := range c.shards {
		sh.mu.Lock()
		merged.Merge(sh.smp.Array())
		sh.mu.Unlock()
	}
	return RDDView{
		Counts: merged.Counts(),
		Total:  merged.Total(),
		Reuses: merged.Reuses(),
		SC:     c.cfg.SC,
		DMax:   c.cfg.DMax,
	}
}

// CheckInvariants verifies, under the shard locks, that every resident
// line's remaining protecting distance lies in [0, d_max], that reuse bits
// and byte accounting are consistent, and that no line outlived its key.
// The race tests call it concurrently with traffic.
func (c *Cache) CheckInvariants() error {
	for i, sh := range c.shards {
		if err := sh.checkInvariants(); err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
	}
	return nil
}
