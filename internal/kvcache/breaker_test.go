package kvcache

import (
	"testing"
	"time"

	"pdp/internal/sampler"
)

// chaosFunc adapts plain functions to the Chaos interface.
type chaosFunc struct {
	access    func(shard int, arr ChaosArray)
	recompute func(seq uint64)
}

func (c chaosFunc) Access(shard int, arr ChaosArray) {
	if c.access != nil {
		c.access(shard, arr)
	}
}

func (c chaosFunc) Recompute(seq uint64) {
	if c.recompute != nil {
		c.recompute(seq)
	}
}

// fixedSolver always answers the same PD — the hostile solver of the
// invariant-violation tests.
type fixedSolver struct{ pd int }

func (s fixedSolver) FindPD(arr *sampler.CounterArray, de int) int { return s.pd }

// seedEvidence plants consistent reuse evidence in shard 0 so a
// recompute reaches the solver (Reuses >= MinSamples, Reuses <= Total).
func seedEvidence(c *Cache) {
	arr := c.shards[0].smp.Array()
	counts := make([]uint32, arr.K())
	counts[0] = 50
	arr.SetCounts(counts, 200)
}

func breakerCache(t *testing.T, cfg Config) *Cache {
	t.Helper()
	if cfg.Sets == 0 {
		cfg.Sets = 8
	}
	if cfg.Ways == 0 {
		cfg.Ways = 2
	}
	if cfg.Shards == 0 {
		cfg.Shards = 2
	}
	cfg.RecomputeEvery = 1 << 30 // recompute only when the test says so
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func rearm(t *testing.T, c *Cache) {
	t.Helper()
	for i := 0; i < c.Config().RearmAfter && c.Degraded(); i++ {
		c.Recompute()
	}
	if c.Degraded() {
		t.Fatalf("still degraded after %d clean recomputes", c.Config().RearmAfter)
	}
}

func TestBreakerTripsOnRecomputePanic(t *testing.T) {
	boom := 1
	c := breakerCache(t, Config{
		RearmAfter: 2,
		Chaos: chaosFunc{recompute: func(uint64) {
			if boom > 0 {
				boom--
				panic("injected recompute panic")
			}
		}},
	})
	c.Put("a", []byte("x"))
	before := c.PD()

	old, pd, moved := c.Recompute()
	if moved || old != before || pd != before {
		t.Fatalf("panicked recompute moved the PD: old=%d pd=%d moved=%v", old, pd, moved)
	}
	if !c.Degraded() || c.DegradedShards() != c.Config().Shards {
		t.Fatalf("breaker did not trip all shards: degraded=%d", c.DegradedShards())
	}
	if got := c.BreakerTrips(); got != uint64(c.Config().Shards) {
		t.Fatalf("trips = %d, want %d", got, c.Config().Shards)
	}

	// Degraded shards still serve — with LRU eviction and unconditional
	// admission — and the ops are attributed.
	if !c.Put("b", []byte("y")) {
		t.Fatal("degraded put denied")
	}
	if v, ok := c.Get("b"); !ok || string(v) != "y" {
		t.Fatal("degraded get lost the value")
	}
	if st := c.Stats(); st.DegradedOps == 0 || st.DegradedShards != c.Config().Shards {
		t.Fatalf("degraded serving not attributed: %+v", st)
	}

	// Two clean recomputes re-arm every shard.
	rearm(t, c)
	if got := c.BreakerRearms(); got != uint64(c.Config().Shards) {
		t.Fatalf("rearms = %d, want %d", got, c.Config().Shards)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestBreakerTripsOnStall(t *testing.T) {
	stall := 1
	c := breakerCache(t, Config{
		RearmAfter:       1,
		RecomputeTimeout: 20 * time.Millisecond,
		Chaos: chaosFunc{recompute: func(uint64) {
			if stall > 0 {
				stall--
				time.Sleep(150 * time.Millisecond)
			}
		}},
	})
	c.Put("a", []byte("x"))
	c.Recompute()
	if !c.Degraded() {
		t.Fatal("stalled recompute did not trip the breaker")
	}
	// The stalled goroutine finishes on its own and releases the
	// recompute lock; a recompute queued behind it would itself trip the
	// watchdog (queue wait counts as stall), so let it drain first.
	time.Sleep(200 * time.Millisecond)
	rearm(t, c)
}

func TestBreakerTripsOnPDOutOfRange(t *testing.T) {
	c := breakerCache(t, Config{
		DMax:       64,
		MinSamples: 1,
		RearmAfter: 1,
		Solver:     fixedSolver{pd: 1000}, // far above DMax
	})
	seedEvidence(c)
	before := c.PD()
	if _, pd, moved := c.Recompute(); moved || pd != before {
		t.Fatalf("out-of-range PD was installed: pd=%d moved=%v", pd, moved)
	}
	if !c.Degraded() {
		t.Fatal("out-of-range PD did not trip the breaker")
	}
}

func TestBreakerTripsCorruptShardOnly(t *testing.T) {
	c := breakerCache(t, Config{Shards: 4, RearmAfter: 1})
	// Shard 0's evidence claims more measured reuses than accesses —
	// impossible, therefore corrupt.
	arr := c.shards[0].smp.Array()
	counts := make([]uint32, arr.K())
	counts[0] = 100
	arr.SetCounts(counts, 0)
	arr.SetCounts(counts, 2) // Reuses()=100 > Total()=2

	c.Recompute()
	if got := c.DegradedShards(); got != 1 {
		t.Fatalf("degraded shards = %d, want exactly the corrupt one", got)
	}
	if !c.shards[0].degraded() {
		t.Fatal("the corrupt shard is not the degraded one")
	}
	if a := c.shards[0].smp.Array(); a.Reuses() > a.Total() {
		t.Fatal("corrupt evidence was not reset")
	}
	rearm(t, c)
}

func TestManualTrip(t *testing.T) {
	c := breakerCache(t, Config{RearmAfter: 1})
	c.Trip("manual")
	if !c.Degraded() {
		t.Fatal("manual trip ignored")
	}
	c.Trip("manual") // idempotent
	if got := c.BreakerTrips(); got != uint64(c.Config().Shards) {
		t.Fatalf("double trip double-counted: %d", got)
	}
	rearm(t, c)
}

func TestLockHoldWatchdog(t *testing.T) {
	c := breakerCache(t, Config{
		LockHoldWarn: time.Nanosecond,
		Chaos: chaosFunc{access: func(int, ChaosArray) {
			time.Sleep(100 * time.Microsecond)
		}},
	})
	c.Put("a", []byte("x"))
	c.Get("a")
	if st := c.Stats(); st.LockHoldWarns == 0 {
		t.Fatalf("no lock-hold warnings booked: %+v", st)
	}
}

// degraded reads the shard's breaker flag under its lock (test helper).
func (sh *shard) degraded() bool {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.deg
}
