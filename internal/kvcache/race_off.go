//go:build !race

package kvcache

const raceEnabled = false
